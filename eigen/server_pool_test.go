package eigen

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"tridiag/internal/pool"
)

// TestServerIdleTrimReleasesPool drives a few solves through a server with a
// short idle-trim delay and asserts that a quiet server eventually holds no
// pooled scratch at all: the idle timer fires once no job is queued or
// running and drops every retained buffer.
func TestServerIdleTrimReleasesPool(t *testing.T) {
	s := NewServer(ServerConfig{MaxConcurrent: 2, PoolIdleTrimDelay: 50 * time.Millisecond})
	rng := rand.New(rand.NewSource(99))
	tri := randomTridiag(rng, 400)
	for i := 0; i < 3; i++ {
		if _, err := s.Solve(context.Background(), tri, &Options{Workers: 2, MinPartition: 32}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for pool.RetainedBytes() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle trim never fired: %d bytes still retained", pool.RetainedBytes())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := pool.RetainedBytes(); got != 0 {
		t.Fatalf("drained server retains %d bytes of scratch", got)
	}
}

// TestServerBusyKeepsPoolWarm asserts the opposite direction: back-to-back
// solves must not lose their warm buffers to the idle trimmer (the timer is
// disarmed while work is queued or running), so steady traffic sees pool
// hits, not fresh allocations.
func TestServerBusyKeepsPoolWarm(t *testing.T) {
	s := NewServer(ServerConfig{MaxConcurrent: 1, PoolIdleTrimDelay: time.Hour})
	defer s.Shutdown(context.Background())
	rng := rand.New(rand.NewSource(100))
	tri := randomTridiag(rng, 400)
	if _, err := s.Solve(context.Background(), tri, &Options{Workers: 2, MinPartition: 32}); err != nil {
		t.Fatal(err)
	}
	warm := pool.RetainedBytes()
	if warm == 0 {
		t.Skip("first solve retained nothing; cannot observe reuse")
	}
	before := pool.Counters()
	if _, err := s.Solve(context.Background(), tri, &Options{Workers: 2, MinPartition: 32}); err != nil {
		t.Fatal(err)
	}
	after := pool.Counters()
	if hits := (after.Hits + after.Steals) - (before.Hits + before.Steals); hits == 0 {
		t.Errorf("second solve reused no pooled buffers (gets %d)", after.Gets-before.Gets)
	}
}
