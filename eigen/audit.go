package eigen

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"tridiag/internal/faultinject"
	"tridiag/internal/lapack"
	"tridiag/internal/simd"
)

// This file is the always-on result audit (DESIGN.md §18): every solve that
// is about to be returned — from any tier, including the clean first-choice
// path — is checked against the original matrix before the caller sees it.
// The audit is independent of every solver in the library: the Sturm-count
// inertia check only evaluates shifted LDLᵀ factorizations of the input, and
// the residual sweep only multiplies the input by the computed vectors, so a
// corrupted solver cannot validate its own corruption. A failed audit is
// classified as transient corruption (CorruptionError) and routed through the
// same retry/degrade ladders as an ABFT checksum failure: the next tier (or
// the server's retry policy) recomputes instead of shipping a wrong answer.

// AuditOptions tunes the always-on result audit. The zero value enables the
// audit with library defaults; set Disable to opt out (benchmark baselines,
// callers running their own verification).
type AuditOptions struct {
	// Disable turns the result audit off. The audit is on by default: its
	// cost is O(n·SpectrumSamples) Sturm counts for every solve plus an
	// O(n²) residual/norm sweep for vector solves — a few percent of the
	// solve at most, parallelized over the solve's worker budget.
	Disable bool
	// SpectrumSamples is how many eigenvalue indices the Sturm-count inertia
	// check probes (<=0: 32, capped at n). Endpoints are always included.
	SpectrumSamples int
	// ResidualColumns bounds how many eigenvector columns the residual and
	// unit-norm sweep checks for vector solves (<=0: every column — the
	// default, since only a full sweep deterministically catches a single
	// corrupted column). A positive budget checks that many columns, evenly
	// spread with both endpoints included.
	ResidualColumns int
}

// CorruptionError reports a failed result audit: the computed spectrum or an
// eigenvector column disagrees with the input matrix beyond the validation
// thresholds. Like a checksum or invariant violation it is classified as
// transient corruption — recomputing (on the same tier or the next one) is
// expected to clear it — and carries a TaskClass for the server's circuit
// breakers and failure accounting.
type CorruptionError struct {
	// Check names the audit that failed: "spectrum", "residual" or "norm".
	Check  string
	Detail string
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("eigen: result audit failed (%s): %s", e.Check, e.Detail)
}

// Corruption marks the failure as detected silent data corruption.
func (e *CorruptionError) Corruption() bool { return true }

// Transient reports true: a recompute is expected to clear it.
func (e *CorruptionError) Transient() bool { return true }

// TaskClass attributes audit failures to their own breaker class.
func (e *CorruptionError) TaskClass() string { return "audit" }

// IsCorruption reports whether err (or anything it wraps) was classified as
// detected silent data corruption — an ABFT checksum mismatch, a violated
// merge invariant, a failed result audit, or a cluster response-checksum
// mismatch. Use it to separate SDC detections from genuine numerical
// failures when inspecting SolveStats.TierErrors or server dispositions.
func IsCorruption(err error) bool { return faultinject.Corruption(err) }

// auditResult verifies a served result against the matrix it was computed
// from: the Sturm-count inertia check on the spectrum for every solve, plus
// the residual and unit-norm sweep over the eigenvector columns for vector
// solves. Returns the worst normalized column residual measured (0 for
// values-only solves) and the first violation as a *CorruptionError.
func auditResult(t Tridiagonal, res *Result, o *Options) (worst float64, err error) {
	n := t.N()
	if n == 0 {
		return 0, nil
	}
	samples := o.Audit.SpectrumSamples
	if samples <= 0 {
		samples = spectrumSamples
	}
	if verr := validateSpectrumN(t, res.Values, samples); verr != nil {
		return 0, &CorruptionError{Check: "spectrum", Detail: verr.Error()}
	}
	if res.Vectors == nil {
		return 0, nil
	}
	return auditVectors(t, res, o)
}

// auditVectors sweeps the eigenvector columns: each audited column j must
// satisfy ‖T·v_j − λ_j·v_j‖ ≤ maxResidual·‖T‖·n (the degraded-tier residual
// bar, per column) and |v_jᵀv_j − 1| ≤ maxOrthogonality·n (the diagonal of
// the orthogonality metric, which catches scaling corruption the residual is
// blind to on near-diagonal matrices). The sweep is O(n) per column — T is
// tridiagonal — and parallelized over the solve's worker budget.
func auditVectors(t Tridiagonal, res *Result, o *Options) (worst float64, err error) {
	n := t.N()
	nrm := lapack.Dlanst('M', n, t.D, t.E)
	if nrm == 0 {
		nrm = 1
	}
	cols := auditColumns(n, o.Audit.ResidualColumns)
	rtol := maxResidual * float64(n) * nrm
	rtol2 := rtol * rtol // the sweep compares squared norms to skip per-column sqrts
	ntol := maxOrthogonality * float64(n)
	rscale := 1 / (nrm * float64(n))

	workers := o.Workers
	if p := runtime.GOMAXPROCS(0); workers <= 0 || workers > p {
		// The sweep is pure compute with no blocking, so fan-out past the
		// scheduler's parallelism only adds handoff cost.
		workers = p
	}
	if small := 64 * 1024; len(cols)*n < small {
		workers = 1 // below the point where goroutine fan-out pays for itself
	}
	if workers > len(cols) {
		workers = len(cols)
	}

	var (
		mu       sync.Mutex
		firstErr error
	)
	var wg sync.WaitGroup
	chunk := (len(cols) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(cols))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(cs []int) {
			defer wg.Done()
			localWorst := 0.0
			var lerr error
			for _, j := range cs {
				v := res.Vector(j)
				lam := res.Values[j]
				rnrm2, vnrm := simd.TridiagResidual(t.D, t.E, v, lam)
				if rnrm2 > localWorst {
					localWorst = rnrm2
				}
				if rnrm2 > rtol2 {
					lerr = &CorruptionError{Check: "residual", Detail: fmt.Sprintf(
						"column %d: ‖T·v−λ·v‖/(‖T‖·n) = %.3e exceeds %.1e", j, math.Sqrt(rnrm2)*rscale, maxResidual)}
					break
				}
				if d := math.Abs(vnrm - 1); d > ntol {
					lerr = &CorruptionError{Check: "norm", Detail: fmt.Sprintf(
						"column %d: |vᵀv − 1| = %.3e exceeds %.3e", j, d, ntol)}
					break
				}
			}
			mu.Lock()
			if localWorst > worst {
				worst = localWorst
			}
			if lerr != nil && firstErr == nil {
				firstErr = lerr
			}
			mu.Unlock()
		}(cols[lo:hi])
	}
	wg.Wait()
	// worst accumulated as a squared 2-norm; normalize once on the way out.
	return math.Sqrt(worst) * rscale, firstErr
}

// auditColumns selects the eigenvector columns the sweep checks: every column
// when the budget is unset or covers them all, else an even spread over
// [0, n-1] with both endpoints included.
func auditColumns(n, budget int) []int {
	if budget <= 0 || budget >= n {
		cols := make([]int, n)
		for i := range cols {
			cols[i] = i
		}
		return cols
	}
	cols := make([]int, budget)
	for s := 0; s < budget; s++ {
		i := 0
		if budget > 1 {
			i = s * (n - 1) / (budget - 1)
		}
		cols[s] = i
	}
	return cols
}
