package eigen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"tridiag/internal/testmat"
)

// wilkinson builds the Wilkinson W⁺ matrix of odd order n: diagonal
// |i-(n-1)/2|, unit couplings — eigenvalues pair up in notoriously tight
// clusters.
func wilkinson(n int) Tridiagonal {
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = math.Abs(float64(i) - float64(n-1)/2)
	}
	for i := range e {
		e[i] = 1
	}
	return Tridiagonal{D: d, E: e}
}

// gluedWilkinson couples k Wilkinson blocks with tiny off-diagonals,
// producing clusters of k nearly identical eigenvalues.
func gluedWilkinson(k, blockN int, glue float64) Tridiagonal {
	n := k * blockN
	d := make([]float64, n)
	e := make([]float64, n-1)
	w := wilkinson(blockN)
	for b := 0; b < k; b++ {
		copy(d[b*blockN:], w.D)
		copy(e[b*blockN:], w.E)
		if b > 0 {
			e[b*blockN-1] = glue
		}
	}
	return Tridiagonal{D: d, E: e}
}

func scaled(t Tridiagonal, s float64) Tridiagonal {
	d := make([]float64, len(t.D))
	e := make([]float64, len(t.E))
	for i, v := range t.D {
		d[i] = v * s
	}
	for i, v := range t.E {
		e[i] = v * s
	}
	return Tridiagonal{D: d, E: e}
}

// TestPathologicalMatrices runs every Method over the classic hard cases and
// asserts the paper's Figure 9 accuracy order (both metrics are normalized
// by n and the matrix norm).
func TestPathologicalMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	w21, err := testmat.Type(11, 21, rng)
	if err != nil {
		t.Fatal(err)
	}
	base := randomTridiag(rng, 60)
	zeroOff := randomTridiag(rng, 50)
	for i := range zeroOff.E {
		zeroOff.E[i] = 0
	}
	allEqual := randomTridiag(rng, 60)
	for i := range allEqual.D {
		allEqual.D[i] = 3.5
	}
	cases := []struct {
		name string
		tri  Tridiagonal
	}{
		{"wilkinson-w21", Tridiagonal{D: w21.D, E: w21.E}},
		{"wilkinson-w61", wilkinson(61)},
		{"glued-wilkinson", gluedWilkinson(4, 21, 1e-6)},
		{"zero-offdiagonals", zeroOff},
		{"all-zero", Tridiagonal{D: make([]float64, 40), E: make([]float64, 39)}},
		{"near-overflow", scaled(base, 1e300)},
		{"near-underflow", scaled(base, 1e-300)},
		{"all-equal-diagonals", allEqual},
	}
	methods := []Method{MethodDC, MethodDCSequential, MethodMRRR, MethodQR}
	for _, tc := range cases {
		for _, m := range methods {
			res, err := Solve(tc.tri, &Options{Method: m, Workers: 3})
			if err != nil {
				t.Errorf("%s/%v: %v", tc.name, m, err)
				continue
			}
			if r := Residual(tc.tri, res); r > 1e-13 {
				t.Errorf("%s/%v: residual %.3e", tc.name, m, r)
			}
			if o := Orthogonality(res); o > 1e-13 {
				t.Errorf("%s/%v: orthogonality %.3e", tc.name, m, o)
			}
			for i := 1; i < res.N; i++ {
				if res.Values[i-1] > res.Values[i] {
					t.Errorf("%s/%v: eigenvalues not ascending at %d", tc.name, m, i)
					break
				}
			}
		}
	}
}

// TestAuditPathologicalNoFalsePositives holds the always-on result audit to
// its contract on the classic hard cases: across every method, worker count
// and both request classes, the audit must pass every clean solve — a false
// positive would send healthy solves through pointless (and slower) degraded
// recomputes in production. Wilkinson and glued-Wilkinson stress the
// sampled-inertia check with pathologically tight eigenvalue clusters, the
// 1e±300 scalings stress it at the edge of the exponent range (the audit
// runs against the pre-scaled problem, so its Sturm pivots must not
// over/underflow), and the tight-cluster case puts every sampled count on
// the edge of a cluster boundary.
func TestAuditPathologicalNoFalsePositives(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	base := randomTridiag(rng, 60)
	clustered := randomTridiag(rng, 64)
	for i := range clustered.D {
		clustered.D[i] = 1
	}
	for i := range clustered.E {
		clustered.E[i] = 1e-13 * float64(i%5+1)
	}
	cases := []struct {
		name string
		tri  Tridiagonal
	}{
		{"wilkinson-w61", wilkinson(61)},
		{"glued-wilkinson", gluedWilkinson(4, 21, 1e-6)},
		{"glued-tight", gluedWilkinson(3, 21, 1e-12)},
		{"near-overflow", scaled(base, 1e300)},
		{"near-underflow", scaled(base, 1e-300)},
		{"clustered-spectrum", clustered},
		{"zero-offdiagonals", Tridiagonal{D: base.D, E: make([]float64, len(base.E))}},
	}
	methods := []Method{MethodDC, MethodDCSequential, MethodMRRR, MethodQR}
	check := func(label string, res *Result, err error) {
		t.Helper()
		if err != nil {
			t.Errorf("%s: clean solve failed: %v", label, err)
			return
		}
		if !res.Stats.Audited {
			t.Errorf("%s: served result was never audited", label)
		}
		if res.Stats.CorruptionsDetected != 0 {
			t.Errorf("%s: audit false positive: %d corruptions detected on a clean solve", label, res.Stats.CorruptionsDetected)
		}
		for _, terr := range res.Stats.TierErrors {
			if IsCorruption(terr) {
				t.Errorf("%s: audit false positive forced a tier retry: %v", label, terr)
			}
		}
	}
	for _, tc := range cases {
		for _, m := range methods {
			for _, w := range []int{1, 4, 8} {
				res, err := Solve(tc.tri, &Options{Method: m, Workers: w})
				check(fmt.Sprintf("%s/%v/w%d", tc.name, m, w), res, err)
			}
		}
		for _, w := range []int{1, 4, 8} {
			res, err := Solve(tc.tri, &Options{Workers: w, ValuesOnly: true})
			check(fmt.Sprintf("%s/values-only/w%d", tc.name, w), res, err)
		}
	}
}

// TestPathologicalScalingRoundTrip: the pre-scaling of extreme-norm inputs
// must scale the eigenvalues back — compare against the unscaled spectrum.
func TestPathologicalScalingRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	base := randomTridiag(rng, 50)
	ref, err := Solve(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []float64{1e300, 1e-300} {
		res, err := Solve(scaled(base, s), nil)
		if err != nil {
			t.Fatalf("scale %g: %v", s, err)
		}
		for i := range ref.Values {
			want := ref.Values[i] * s
			if math.Abs(res.Values[i]-want) > 1e-12*math.Abs(want)+1e-15*s {
				t.Errorf("scale %g: eigenvalue %d: %g, want %g", s, i, res.Values[i], want)
			}
		}
	}
}

// TestScreeningRejectsNaNInf: non-finite inputs are rejected up front with
// the offending index, wrapped with the solve's n and method.
func TestScreeningRejectsNaNInf(t *testing.T) {
	for _, tc := range []struct {
		name    string
		mutate  func(tri *Tridiagonal)
		wantSub string
	}{
		{"nan-diagonal", func(tri *Tridiagonal) { tri.D[3] = math.NaN() }, "D[3]"},
		{"inf-diagonal", func(tri *Tridiagonal) { tri.D[0] = math.Inf(1) }, "D[0]"},
		{"nan-offdiagonal", func(tri *Tridiagonal) { tri.E[7] = math.NaN() }, "E[7]"},
		{"inf-offdiagonal", func(tri *Tridiagonal) { tri.E[2] = math.Inf(-1) }, "E[2]"},
	} {
		tri := randomTridiag(rand.New(rand.NewSource(9)), 20)
		tc.mutate(&tri)
		res, err := Solve(tri, nil)
		if err == nil {
			t.Errorf("%s: solve accepted a non-finite input", tc.name)
			continue
		}
		if res != nil {
			t.Errorf("%s: non-nil result alongside error", tc.name)
		}
		for _, sub := range []string{tc.wantSub, "invalid input", "n=20", "method="} {
			if !strings.Contains(err.Error(), sub) {
				t.Errorf("%s: error %q missing %q", tc.name, err, sub)
			}
		}
		if _, err := Values(tri); err == nil {
			t.Errorf("%s: Values accepted a non-finite input", tc.name)
		}
	}
}
