package eigen

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// TestSolveContextPreCancelled: an already-cancelled context must return
// ctx.Err() without running any task.
func TestSolveContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tri := randomTridiag(rand.New(rand.NewSource(1)), 200)
	res, err := SolveContext(ctx, tri, &Options{Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("non-nil result from a pre-cancelled solve")
	}
}

// TestSolveContextMidSolveCancel: cancelling mid-solve on a large matrix must
// return promptly — within one task granularity, not after finishing the DAG.
func TestSolveContextMidSolveCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("n=4000 solve in -short mode")
	}
	tri := randomTridiag(rand.New(rand.NewSource(2)), 4000)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	begin := time.Now()
	go func() {
		res, err := SolveContext(ctx, tri, &Options{Workers: runtime.GOMAXPROCS(0)})
		done <- outcome{res, err}
	}()
	// Let the solve get well into the task flow, then pull the plug.
	time.Sleep(100 * time.Millisecond)
	cancel()
	cancelAt := time.Since(begin)

	select {
	case out := <-done:
		if !errors.Is(out.err, context.Canceled) {
			// The solve may legitimately have finished before the cancel on a
			// very fast machine; anything else is a bug.
			if out.err != nil {
				t.Fatalf("err = %v, want context.Canceled", out.err)
			}
			t.Logf("solve finished in %v, before the cancel took effect", time.Since(begin))
			return
		}
		if out.res != nil {
			t.Error("non-nil result from a cancelled solve")
		}
		latency := time.Since(begin) - cancelAt
		// One task granularity: the in-flight kernels (at n=4000, a panel
		// GEMM) must finish, everything pending is skipped. Seconds would
		// mean the DAG drained instead of aborting.
		if latency > 2*time.Second {
			t.Errorf("cancellation latency %v, want within one task granularity", latency)
		}
		t.Logf("cancelled after %v, returned %v later", cancelAt, latency)
	case <-time.After(30 * time.Second):
		t.Fatal("solve did not return after cancellation")
	}
}

// TestSolveContextDeadline: a deadline expiry surfaces as DeadlineExceeded.
func TestSolveContextDeadline(t *testing.T) {
	tri := randomTridiag(rand.New(rand.NewSource(3)), 1500)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := SolveContext(ctx, tri, &Options{Workers: 2})
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded or success", err)
	}
}

// TestSolveContextCancelNotRetried: with Fallback enabled a cancellation must
// surface as ctx.Err(), never be retried on a lower tier.
func TestSolveContextCancelNotRetried(t *testing.T) {
	tri := randomTridiag(rand.New(rand.NewSource(4)), 2000)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := SolveContext(ctx, tri, &Options{Workers: 4, Fallback: true})
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled or success", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled solve with Fallback did not return")
	}
}
