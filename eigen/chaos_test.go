package eigen

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"tridiag/internal/faultinject"
	"tridiag/internal/pool"
)

// chaosClasses are the task kernel classes of the task-flow D&C pipeline;
// every one of them is fault-injected by the suite below.
var chaosClasses = []string{
	"STEDC", "ComputeDeflation", "PermuteV", "LAED4", "ComputeLocalW",
	"ReduceW", "CopyBackDeflated", "ComputeVect", "UpdateVect",
	"Dlamrg", "Scale", "SortEigenvectors",
}

// chaosOptions forces a real task tree (small leaves) so probes have tasks
// to fire on even at the modest sizes the suite uses.
func chaosOptions(fallback bool) *Options {
	return &Options{Workers: 4, MinPartition: 24, Fallback: fallback}
}

// checkGoroutines asserts the goroutine count returns to the pre-test level
// (small slack for the runtime's own helpers), polling because worker
// teardown is asynchronous.
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		now := runtime.NumGoroutine()
		if now <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, now, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// checkAccountant asserts the pool accountant returned to its pre-solve
// baseline: an injected failure abandons merge workspaces mid-flight, and
// the leak sweep must write every one of them off (pool.Forget) so the
// server's admission budget is not silently consumed by failed solves.
func checkAccountant(t *testing.T, label string, baseline int64) {
	t.Helper()
	if got := pool.InUseBytes(); got != baseline {
		t.Fatalf("%s: pool accountant off baseline after solve: %d bytes checked out, want %d", label, got, baseline)
	}
}

// TestChaosFallbackAlwaysServes injects a panic and a forced error into every
// task class across randomized solves with Fallback enabled: every solve must
// still produce a verified result — the sequential tier is injection-free, so
// resilience, not luck, is what the assertion tests.
func TestChaosFallbackAlwaysServes(t *testing.T) {
	before := runtime.NumGoroutine()
	baseline := pool.InUseBytes()
	defer faultinject.Disable()
	rng := rand.New(rand.NewSource(1234))
	solves, injected := 0, 0
	for _, kind := range []faultinject.Kind{faultinject.KindPanic, faultinject.KindError} {
		for ci, class := range chaosClasses {
			faultinject.Enable(int64(100*ci)+int64(kind), faultinject.Probe{Class: class, Kind: kind, P: 0.1})
			tri := randomTridiag(rng, 90+rng.Intn(80))
			res, err := SolveContext(context.Background(), tri, chaosOptions(true))
			solves++
			checkAccountant(t, "class="+class, baseline)
			if err != nil {
				t.Fatalf("class=%s kind=%v: solve failed despite fallback: %v", class, kind, err)
			}
			if r := Residual(tri, res); r > 1e-12 {
				t.Errorf("class=%s kind=%v: residual %.3e (tier %s)", class, kind, r, res.Stats.Tier)
			}
			if o := Orthogonality(res); o > 1e-12 {
				t.Errorf("class=%s kind=%v: orthogonality %.3e (tier %s)", class, kind, o, res.Stats.Tier)
			}
			if fired := faultinject.Fired()[class]; fired > 0 {
				injected++
				if kind == faultinject.KindPanic || kind == faultinject.KindError {
					// A fired fault must be visible as the degradation's root
					// cause, never silently swallowed.
					if len(res.Stats.TierErrors) == 0 {
						t.Errorf("class=%s kind=%v: fault fired but no tier error recorded", class, kind)
					} else {
						var inj *faultinject.ErrInjected
						if !errors.As(res.Stats.TierErrors[0], &inj) {
							t.Errorf("class=%s kind=%v: tier error lost the injected cause: %v", class, kind, res.Stats.TierErrors[0])
						}
					}
					if res.Stats.Tier == "task-flow" {
						t.Errorf("class=%s kind=%v: fault fired but result still credited to task-flow", class, kind)
					}
					if !res.Stats.Validated {
						t.Errorf("class=%s kind=%v: degraded result was not validated", class, kind)
					}
				}
			}
			faultinject.Disable()
		}
	}
	if injected == 0 {
		t.Fatal("no probe ever fired; the chaos suite tested nothing")
	}
	t.Logf("chaos: %d solves, %d with at least one injected fault", solves, injected)
	checkGoroutines(t, before)
}

// TestChaosNoFallbackRootCause runs the same plans without Fallback: every
// affected solve must fail fast with a clean error chain that still carries
// the *faultinject.ErrInjected root cause through quark, core and eigen.
func TestChaosNoFallbackRootCause(t *testing.T) {
	before := runtime.NumGoroutine()
	baseline := pool.InUseBytes()
	defer faultinject.Disable()
	rng := rand.New(rand.NewSource(4321))
	failed, clean := 0, 0
	for _, kind := range []faultinject.Kind{faultinject.KindPanic, faultinject.KindError} {
		for ci, class := range chaosClasses {
			faultinject.Enable(int64(7000+100*ci)+int64(kind), faultinject.Probe{Class: class, Kind: kind, P: 0.1})
			tri := randomTridiag(rng, 90+rng.Intn(80))
			res, err := SolveContext(context.Background(), tri, chaosOptions(false))
			checkAccountant(t, "class="+class, baseline)
			if err != nil {
				failed++
				if res != nil {
					t.Errorf("class=%s kind=%v: non-nil result alongside error", class, kind)
				}
				var inj *faultinject.ErrInjected
				if !errors.As(err, &inj) {
					t.Errorf("class=%s kind=%v: error chain lost the injected cause: %v", class, kind, err)
				} else if inj.Class != class {
					t.Errorf("class=%s kind=%v: root cause blames class %q", class, kind, inj.Class)
				}
			} else {
				clean++
				if r := Residual(tri, res); r > 1e-12 {
					t.Errorf("class=%s kind=%v: clean solve residual %.3e", class, kind, r)
				}
			}
			faultinject.Disable()
		}
	}
	if failed == 0 {
		t.Fatal("no solve ever failed; the probes never fired")
	}
	t.Logf("chaos: %d failed with root cause, %d untouched", failed, clean)
	checkGoroutines(t, before)
}

// TestChaosDelayAndMixedPlans stalls tasks (scheduler-level chaos that must
// not affect correctness at all) and then arms wildcard plans mixing all
// three failure modes at once.
func TestChaosDelayAndMixedPlans(t *testing.T) {
	before := runtime.NumGoroutine()
	baseline := pool.InUseBytes()
	defer faultinject.Disable()
	rng := rand.New(rand.NewSource(555))
	for i := 0; i < 6; i++ {
		faultinject.Enable(int64(i), faultinject.Probe{Class: "*", Kind: faultinject.KindDelay, P: 0.1, Delay: time.Millisecond})
		tri := randomTridiag(rng, 80+rng.Intn(60))
		res, err := Solve(tri, chaosOptions(false))
		if err != nil {
			t.Fatalf("delay run %d: %v", i, err)
		}
		if r := Residual(tri, res); r > 1e-12 {
			t.Errorf("delay run %d: residual %.3e", i, r)
		}
		if res.Stats.Degraded() {
			t.Errorf("delay run %d: delays must not degrade the solve: %+v", i, res.Stats)
		}
		faultinject.Disable()
	}
	for i := 0; i < 8; i++ {
		faultinject.Enable(int64(9000+i),
			faultinject.Probe{Class: "*", Kind: faultinject.KindDelay, P: 0.05, Delay: time.Millisecond},
			faultinject.Probe{Class: "*", Kind: faultinject.KindError, P: 0.05},
			faultinject.Probe{Class: "*", Kind: faultinject.KindPanic, P: 0.05},
		)
		tri := randomTridiag(rng, 80+rng.Intn(60))
		res, err := Solve(tri, chaosOptions(true))
		checkAccountant(t, "mixed plan", baseline)
		if err != nil {
			t.Fatalf("mixed run %d: solve failed despite fallback: %v", i, err)
		}
		if r := Residual(tri, res); r > 1e-12 {
			t.Errorf("mixed run %d: residual %.3e (tier %s)", i, r, res.Stats.Tier)
		}
		if o := Orthogonality(res); o > 1e-12 {
			t.Errorf("mixed run %d: orthogonality %.3e (tier %s)", i, o, res.Stats.Tier)
		}
		faultinject.Disable()
	}
	checkGoroutines(t, before)
}
