package eigen

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tridiag/internal/faultinject"
	"tridiag/internal/pool"
)

// TestServerStress is the acceptance gate of the serving layer (make
// stress): 64 concurrent clients with mixed problem sizes against a
// memory-budgeted server while wildcard chaos probes inject panics, errors
// and delays into the task-flow kernels. Every job must end in a classified
// disposition other than failed, the admission reservations must never
// exceed the configured budget, the pool accountant must return to its
// baseline, and no goroutines may leak.
func TestServerStress(t *testing.T) {
	before := runtime.NumGoroutine()
	baseInUse := pool.InUseBytes()
	defer faultinject.Disable()
	faultinject.Enable(42,
		faultinject.Probe{Class: "*", Kind: faultinject.KindError, P: 0.004},
		faultinject.Probe{Class: "*", Kind: faultinject.KindPanic, P: 0.002},
		faultinject.Probe{Class: "*", Kind: faultinject.KindDelay, P: 0.01, Delay: 5 * time.Millisecond},
	)

	const jobs = 64
	cfg := ServerConfig{
		MaxConcurrent:    4,
		MaxQueue:         12,
		MemoryBudget:     48 << 20, // tight enough that some jobs are rejected
		StallWindow:      2 * time.Second,
		MaxRetries:       1,
		RetryBase:        time.Millisecond,
		BreakerThreshold: 5,
		BreakerCooldown:  100 * time.Millisecond,
	}
	s := NewServer(cfg)

	// A sampler races the workload, asserting the budget invariants while
	// jobs are actually in flight, not just at the end.
	samplerDone := make(chan struct{})
	var budgetViolations atomic.Int64
	go func() {
		defer close(samplerDone)
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-samplerDone:
				return
			case <-tick.C:
				if st := s.Stats(); st.ReservedBytes > cfg.MemoryBudget {
					budgetViolations.Add(1)
				}
			}
		}
	}()

	counts := make([]atomic.Int64, dispositionCount)
	var wg sync.WaitGroup
	for c := 0; c < jobs; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + c)))
			tri := randomTridiag(rng, 60+rng.Intn(140))
			o := &Options{Workers: 2, MinPartition: 24}
			ctx := context.Background()
			if c%8 == 3 { // a slice of clients carries deadlines
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, 10*time.Second)
				defer cancel()
			}
			// Real tenants back off and retry on overload; that keeps
			// admission under sustained pressure instead of one burst.
			var sr *ServeResult
			var err error
			for try := 0; try < 40; try++ {
				sr, err = s.Solve(ctx, tri, o)
				if !errors.Is(err, ErrOverloaded) {
					break
				}
				time.Sleep(time.Duration(2+rng.Intn(5)) * time.Millisecond)
			}
			if sr == nil {
				t.Errorf("client %d: nil ServeResult", c)
				return
			}
			counts[sr.Disposition].Add(1)
			switch sr.Disposition {
			case DispositionCompleted, DispositionRetried, DispositionDegraded:
				if err != nil || sr.Result == nil {
					t.Errorf("client %d: served disposition %v but err=%v", c, sr.Disposition, err)
					return
				}
				if r := Residual(tri, sr.Result); r > 1e-12 {
					t.Errorf("client %d: residual %.3e (disposition %v)", c, r, sr.Disposition)
				}
			case DispositionRejected:
				if !errors.Is(err, ErrOverloaded) && !errors.Is(err, ErrServerClosed) {
					t.Errorf("client %d: rejected with unexpected error %v", c, err)
				}
			case DispositionCancelled:
				if err == nil {
					t.Errorf("client %d: cancelled without error", c)
				}
			default:
				t.Errorf("client %d: unclassified disposition %v (err=%v)", c, sr.Disposition, err)
			}
		}(c)
	}
	wg.Wait()
	samplerDone <- struct{}{}
	<-samplerDone

	st := s.Stats()
	if got := counts[DispositionFailed].Load(); got != 0 || st.Failed != 0 {
		t.Errorf("%d jobs failed outright; the fallback tier must always serve", got)
	}
	var classified int64
	for d := 0; d < dispositionCount; d++ {
		classified += counts[d].Load()
	}
	if classified != jobs {
		t.Errorf("%d of %d jobs classified", classified, jobs)
	}
	if st.PeakReservedBytes > cfg.MemoryBudget {
		t.Errorf("peak reservation %d exceeds budget %d", st.PeakReservedBytes, cfg.MemoryBudget)
	}
	if v := budgetViolations.Load(); v != 0 {
		t.Errorf("sampler saw %d in-flight budget violations", v)
	}
	served := st.Completed + st.Retried + st.Degraded
	if served == 0 {
		t.Error("no job was ever served; the stress test exercised nothing")
	}
	t.Logf("stress: completed=%d retried=%d degraded=%d rejected=%d cancelled=%d retries=%d stalls=%d breakerOpens=%d peakReserved=%dMiB",
		st.Completed, st.Retried, st.Degraded, st.Rejected, st.Cancelled,
		st.Retries, st.WatchdogAborts, st.BreakerOpens, st.PeakReservedBytes>>20)

	if _, err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	faultinject.Disable()
	// The pool accountant must return to its baseline: every pooled byte was
	// either recycled or written off by the leak sweep of an aborted solve.
	deadline := time.Now().Add(3 * time.Second)
	for pool.InUseBytes() != baseInUse {
		if time.Now().After(deadline) {
			t.Errorf("pool accountant off baseline after stress: %d, want %d", pool.InUseBytes(), baseInUse)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	checkGoroutines(t, before)
}
