package eigen

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"tridiag/internal/faultinject"
)

// TestCancellationLeaksNoGoroutines cancels solves mid-flight across every
// solve mode — with delay probes armed so cancellation regularly lands while
// an injected delay is pending — and asserts the goroutine count returns to
// its baseline. This is the regression gate for the context-bounded
// faultinject delays and the runtime's abort path: before delays were
// context-bounded, a cancelled solve left its workers parked in time.Sleep
// long after the caller had moved on.
func TestCancellationLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	defer faultinject.Disable()
	rng := rand.New(rand.NewSource(77))
	methods := []Method{MethodDC, MethodDCSequential, MethodMRRR, MethodQR}
	for i, m := range methods {
		// Long injected delays: only the task-flow tier consults probes, but
		// running every mode under the same armed plan also proves the
		// sequential tiers ignore them.
		faultinject.Enable(int64(i), faultinject.Probe{Class: "*", Kind: faultinject.KindDelay, P: 0.5, Delay: 10 * time.Second})
		for run := 0; run < 3; run++ {
			tri := randomTridiag(rng, 100+rng.Intn(60))
			ctx, cancel := context.WithCancel(context.Background())
			delay := time.Duration(1+rng.Intn(10)) * time.Millisecond
			go func() {
				time.Sleep(delay)
				cancel()
			}()
			o := &Options{Method: m, Workers: 4, MinPartition: 24}
			res, err := SolveContext(ctx, tri, o)
			cancel()
			// Mid-solve cancellation must yield ctx.Err or a clean result
			// (the solve may win the race); partial results are forbidden.
			if err == nil {
				if r := Residual(tri, res); r > 1e-12 {
					t.Errorf("method=%v run=%d: completed solve has residual %.3e", m, run, r)
				}
			} else if ctx.Err() == nil {
				t.Errorf("method=%v run=%d: error without cancellation: %v", m, run, err)
			}
		}
		faultinject.Disable()
		checkGoroutines(t, before)
	}
}

// TestWatchdogAbortLeaksNoGoroutines hammers the server's watchdog abort
// path: every attempt stalls on an injected delay and is cancelled by the
// watchdog, retried, then degraded. After shutdown the process must be back
// to its goroutine baseline — no watchdogs, workers or timers left behind.
func TestWatchdogAbortLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	defer faultinject.Disable()
	faultinject.Enable(88, faultinject.Probe{Class: "*", Kind: faultinject.KindDelay, P: 0.3, Delay: 10 * time.Second})
	cfg := ServerConfig{
		MaxConcurrent: 2,
		StallWindow:   60 * time.Millisecond,
		MaxRetries:    1,
		RetryBase:     time.Millisecond,
	}
	s := NewServer(cfg)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 4; i++ {
		tri := randomTridiag(rng, 100+rng.Intn(60))
		sr, err := s.Solve(context.Background(), tri, chaosOptions(false))
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if sr.Disposition == DispositionFailed {
			t.Fatalf("run %d: job failed outright", i)
		}
	}
	if st := s.Stats(); st.WatchdogAborts == 0 {
		t.Error("no watchdog abort ever fired; the test exercised nothing")
	}
	if _, err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	faultinject.Disable()
	checkGoroutines(t, before)
}
