package eigen_test

import (
	"fmt"

	"tridiag/eigen"
)

// Solve the 4×4 (1,2,1) matrix with the task-flow divide & conquer solver.
func ExampleSolve() {
	t := eigen.Tridiagonal{
		D: []float64{2, 2, 2, 2},
		E: []float64{1, 1, 1},
	}
	res, err := eigen.Solve(t, nil)
	if err != nil {
		panic(err)
	}
	for _, v := range res.Values {
		fmt.Printf("%.4f\n", v)
	}
	// Output:
	// 0.3820
	// 1.3820
	// 2.6180
	// 3.6180
}

// Eigenvalues only, via the root-free QR iteration.
func ExampleValues() {
	t := eigen.Tridiagonal{D: []float64{1, 2, 3}, E: []float64{0, 0}}
	w, err := eigen.Values(t)
	if err != nil {
		panic(err)
	}
	fmt.Println(w)
	// Output: [1 2 3]
}

// Compute only the two smallest eigenpairs of a larger matrix.
func ExampleSolveRange() {
	n := 100
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = 2
	}
	for i := range e {
		e[i] = 1
	}
	res, err := eigen.SolveRange(eigen.Tridiagonal{D: d, E: e}, 0, 1, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.6f %.6f\n", res.Values[0], res.Values[1])
	// Output: 0.000967 0.003869
}

// Full eigendecomposition of a dense symmetric matrix.
func ExampleSymEigen() {
	n := 3
	// column-major symmetric matrix [[2,1,0],[1,3,1],[0,1,2]]
	a := []float64{2, 1, 0, 1, 3, 1, 0, 1, 2}
	res, err := eigen.SymEigen(n, a, n, nil)
	if err != nil {
		panic(err)
	}
	for _, v := range res.Values {
		fmt.Printf("%.4f\n", v)
	}
	// Output:
	// 1.0000
	// 2.0000
	// 4.0000
}

// Singular value decomposition through the Golub–Kahan route.
func ExampleSVD() {
	// 3×2 matrix [[3,0],[0,2],[0,0]] has singular values 3 and 2.
	a := []float64{3, 0, 0, 0, 2, 0}
	r, err := eigen.SVD(3, 2, a, 3, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.1f %.1f\n", r.S[0], r.S[1])
	// Output: 3.0 2.0
}
