// Package eigen is the public API of the tridiag library: symmetric
// tridiagonal and dense symmetric eigensolvers for multicore machines.
//
// The flagship solver is the task-flow divide & conquer algorithm of Pichon,
// Haidar, Faverge and Kurzak (IPDPS 2015), which decomposes each merge of
// Cuppen's D&C into panel-granular tasks scheduled out of order by a
// dependency-tracking runtime. MRRR and QR-iteration solvers are provided
// for comparison, along with a full dense symmetric driver (Householder
// tridiagonalization, tridiagonal eigensolve, back-transformation).
//
// Quick start:
//
//	t := eigen.Tridiagonal{D: d, E: e}
//	res, err := eigen.Solve(t, nil) // task-flow D&C on all cores
//	// res.Values ascending, res.Vectors column-major (res.Vector(j))
package eigen

import (
	"fmt"

	"tridiag/internal/blas"
	"tridiag/internal/core"
	"tridiag/internal/lapack"
	"tridiag/internal/mrrr"
)

// Tridiagonal is a symmetric tridiagonal matrix: diagonal D (length n) and
// off-diagonal E (length n-1).
type Tridiagonal struct {
	D []float64
	E []float64
}

// N returns the matrix order.
func (t Tridiagonal) N() int { return len(t.D) }

func (t Tridiagonal) validate() error {
	if len(t.E) != max(t.N()-1, 0) {
		return fmt.Errorf("eigen: len(E)=%d, want n-1=%d", len(t.E), t.N()-1)
	}
	return nil
}

// Method selects the eigensolver algorithm.
type Method int

const (
	// MethodDC is the task-flow divide & conquer solver (the default).
	MethodDC Method = iota
	// MethodDCSequential is the sequential LAPACK-style DSTEDC.
	MethodDCSequential
	// MethodMRRR is the Multiple Relatively Robust Representations solver.
	MethodMRRR
	// MethodQR is the implicit QL/QR iteration (DSTEQR).
	MethodQR
)

func (m Method) String() string {
	switch m {
	case MethodDC:
		return "dc"
	case MethodDCSequential:
		return "dc-seq"
	case MethodMRRR:
		return "mrrr"
	case MethodQR:
		return "qr"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Options tunes the solvers; the zero value selects the task-flow D&C with
// library defaults on all available cores.
type Options struct {
	// Method selects the algorithm (default MethodDC).
	Method Method
	// Workers is the number of worker goroutines (<=0: GOMAXPROCS).
	Workers int
	// PanelSize is the D&C task panel width nb (<=0: default).
	PanelSize int
	// MinPartition is the D&C leaf cutoff (<=0: default).
	MinPartition int
	// ExtraWorkspace enables the paper's extra-workspace task overlap.
	ExtraWorkspace bool
}

// Result holds an eigendecomposition: ascending eigenvalues and the matching
// orthonormal eigenvectors stored column-major with leading dimension N.
type Result struct {
	N       int
	Values  []float64
	Vectors []float64
}

// Vector returns the j-th eigenvector (aliasing the result storage).
func (r *Result) Vector(j int) []float64 {
	return r.Vectors[j*r.N : j*r.N+r.N]
}

// Solve computes all eigenvalues and eigenvectors of the symmetric
// tridiagonal matrix t. The input is not modified.
func Solve(t Tridiagonal, opts *Options) (*Result, error) {
	if err := t.validate(); err != nil {
		return nil, err
	}
	var o Options
	if opts != nil {
		o = *opts
	}
	n := t.N()
	res := &Result{N: n, Values: make([]float64, n), Vectors: make([]float64, n*n)}
	if n == 0 {
		return res, nil
	}
	copy(res.Values, t.D)
	e := append([]float64(nil), t.E...)

	switch o.Method {
	case MethodDC:
		_, err := core.SolveDC(n, res.Values, e, res.Vectors, n, &core.Options{
			Workers:        o.Workers,
			PanelSize:      o.PanelSize,
			MinPartition:   o.MinPartition,
			ExtraWorkspace: o.ExtraWorkspace,
		})
		return res, err
	case MethodDCSequential:
		_, err := core.SolveDC(n, res.Values, e, res.Vectors, n, &core.Options{
			Mode:         core.ModeSequential,
			MinPartition: o.MinPartition,
		})
		return res, err
	case MethodMRRR:
		w := make([]float64, n)
		err := mrrr.Solve(n, t.D, t.E, w, res.Vectors, n, &mrrr.Options{Workers: o.Workers})
		copy(res.Values, w)
		return res, err
	case MethodQR:
		err := lapack.Dsteqr(lapack.CompIdentity, n, res.Values, e, res.Vectors, n)
		return res, err
	}
	return nil, fmt.Errorf("eigen: unknown method %v", o.Method)
}

// Values computes the eigenvalues only (ascending), using the root-free QR
// iteration — the cheapest route when no eigenvectors are needed.
func Values(t Tridiagonal) ([]float64, error) {
	if err := t.validate(); err != nil {
		return nil, err
	}
	n := t.N()
	d := append([]float64(nil), t.D...)
	e := append([]float64(nil), t.E...)
	if err := lapack.Dsterf(n, d, e); err != nil {
		return nil, err
	}
	return d, nil
}

// SymEigen computes the full eigendecomposition of a dense symmetric matrix
// given in the lower triangle of the column-major n×n array a (leading
// dimension lda ≥ n): Householder tridiagonalization, tridiagonal
// eigensolve with the selected method, and back-transformation of the
// eigenvectors. a is overwritten with reduction data.
func SymEigen(n int, a []float64, lda int, opts *Options) (*Result, error) {
	if n < 0 || lda < n {
		return nil, fmt.Errorf("eigen: bad dimensions n=%d lda=%d", n, lda)
	}
	workers := 1
	if opts != nil && opts.Workers > 1 {
		workers = opts.Workers
	}
	d := make([]float64, n)
	e := make([]float64, max(n-1, 1))
	tau := make([]float64, max(n-1, 1))
	if err := lapack.DsytrdParallel(n, a, lda, d, e, tau, 32, workers); err != nil {
		return nil, err
	}
	res, err := Solve(Tridiagonal{D: d, E: e[:max(n-1, 0)]}, opts)
	if err != nil {
		return nil, err
	}
	lapack.Dormtr(false, n, n, a, lda, tau, res.Vectors, n)
	return res, nil
}

// SymEigen2Stage is SymEigen with the two-stage reduction (dense → band of
// width b → tridiagonal; the successive-band-reduction approach of the
// paper's companion reduction work): better locality for the reduction at
// the cost of a costlier back-transformation, which here uses the explicitly
// accumulated orthogonal factor. b <= 0 selects a default bandwidth.
func SymEigen2Stage(n int, a []float64, lda, b int, opts *Options) (*Result, error) {
	if n < 0 || lda < n {
		return nil, fmt.Errorf("eigen: bad dimensions n=%d lda=%d", n, lda)
	}
	if b <= 0 {
		b = max(8, min(64, n/16))
	}
	d := make([]float64, n)
	e := make([]float64, max(n-1, 1))
	q := make([]float64, n*n)
	if err := lapack.Dsytrd2Stage(n, a, lda, b, d, e, q, n); err != nil {
		return nil, err
	}
	res, err := Solve(Tridiagonal{D: d, E: e[:max(n-1, 0)]}, opts)
	if err != nil {
		return nil, err
	}
	// V = Q · Z
	v := make([]float64, n*n)
	blas.Dgemm(false, false, n, n, n, 1, q, n, res.Vectors, n, 0, v, n)
	res.Vectors = v
	return res, nil
}

// SymGeneralized solves the generalized symmetric-definite eigenproblem
// A·x = λ·B·x with B positive definite: Cholesky B = L·Lᵀ, reduction to the
// standard problem L⁻¹·A·L⁻ᵀ·y = λ·y, tridiagonal D&C, and back-substitution
// x = L⁻ᵀ·y. a and b are n×n column-major full symmetric matrices (both
// overwritten). The returned eigenvectors are B-orthonormal (XᵀBX = I).
func SymGeneralized(n int, a []float64, lda int, b []float64, ldb int, opts *Options) (*Result, error) {
	if n < 0 || lda < n || ldb < n {
		return nil, fmt.Errorf("eigen: bad dimensions n=%d lda=%d ldb=%d", n, lda, ldb)
	}
	if err := lapack.Dpotrf(n, b, ldb, 32); err != nil {
		return nil, fmt.Errorf("eigen: B is not positive definite: %w", err)
	}
	lapack.Dsygst(n, a, lda, b, ldb)
	res, err := SymEigen(n, a, lda, opts)
	if err != nil {
		return nil, err
	}
	// x_j = L⁻ᵀ y_j
	blas.DtrsmLeftLowerTrans(n, n, b, ldb, res.Vectors, n)
	return res, nil
}

// Residual returns max_j ‖T v_j - λ_j v_j‖₂ / (‖T‖ n): the paper's
// Figure 9(b) metric for verifying a tridiagonal eigendecomposition.
func Residual(t Tridiagonal, r *Result) float64 {
	n := t.N()
	if n == 0 {
		return 0
	}
	nrm := lapack.Dlanst('M', n, t.D, t.E)
	if nrm == 0 {
		nrm = 1
	}
	worst := 0.0
	y := make([]float64, n)
	for j := 0; j < n; j++ {
		v := r.Vector(j)
		for i := 0; i < n; i++ {
			s := t.D[i] * v[i]
			if i > 0 {
				s += t.E[i-1] * v[i-1]
			}
			if i < n-1 {
				s += t.E[i] * v[i+1]
			}
			y[i] = s - r.Values[j]*v[i]
		}
		if nv := blas.Dnrm2(n, y, 1); nv > worst {
			worst = nv
		}
	}
	return worst / (nrm * float64(n))
}

// Orthogonality returns ‖I - VᵀV‖_max / n: the paper's Figure 9(a) metric.
func Orthogonality(r *Result) float64 {
	n := r.N
	worst := 0.0
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			s := blas.Ddot(n, r.Vector(i), 1, r.Vector(j), 1)
			if i == j {
				s -= 1
			}
			if s < 0 {
				s = -s
			}
			if s > worst {
				worst = s
			}
		}
	}
	return worst / float64(max(n, 1))
}
