// Package eigen is the public API of the tridiag library: symmetric
// tridiagonal and dense symmetric eigensolvers for multicore machines.
//
// The flagship solver is the task-flow divide & conquer algorithm of Pichon,
// Haidar, Faverge and Kurzak (IPDPS 2015), which decomposes each merge of
// Cuppen's D&C into panel-granular tasks scheduled out of order by a
// dependency-tracking runtime. MRRR and QR-iteration solvers are provided
// for comparison, along with a full dense symmetric driver (Householder
// tridiagonalization, tridiagonal eigensolve, back-transformation).
//
// Quick start:
//
//	t := eigen.Tridiagonal{D: d, E: e}
//	res, err := eigen.Solve(t, nil) // task-flow D&C on all cores
//	// res.Values ascending, res.Vectors column-major (res.Vector(j))
package eigen

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"

	"tridiag/internal/blas"
	"tridiag/internal/core"
	"tridiag/internal/faultinject"
	"tridiag/internal/lapack"
	"tridiag/internal/mrrr"
)

// Tridiagonal is a symmetric tridiagonal matrix: diagonal D (length n) and
// off-diagonal E (length n-1).
type Tridiagonal struct {
	D []float64
	E []float64
}

// ErrBadInput marks malformed problem input — a shape mismatch
// (len(E) != n-1) or non-finite entries — so service front ends can map it
// to a client error (HTTP 400) instead of an internal failure. Every
// validation and screening error wraps it; match with errors.Is.
var ErrBadInput = errors.New("eigen: invalid input")

// N returns the matrix order.
func (t Tridiagonal) N() int { return len(t.D) }

func (t Tridiagonal) validate() error {
	if len(t.E) != max(t.N()-1, 0) {
		return fmt.Errorf("%w: len(E)=%d, want n-1=%d", ErrBadInput, len(t.E), t.N()-1)
	}
	return nil
}

// Validate checks the shape invariant (len(E) == n-1) without touching the
// entries. Service front ends call it at admission so malformed requests
// are rejected as client errors before they consume a solve slot; the error
// wraps ErrBadInput.
func (t Tridiagonal) Validate() error { return t.validate() }

// screen rejects non-finite entries up front with an indexed error, so a NaN
// or Inf surfaces as a clean diagnostic at the API boundary instead of a
// numerical breakdown deep inside a solver kernel.
func (t Tridiagonal) screen() error {
	for i, v := range t.D {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: D[%d] is %v", ErrBadInput, i, v)
		}
	}
	for i, v := range t.E {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: E[%d] is %v", ErrBadInput, i, v)
		}
	}
	return nil
}

// Method selects the eigensolver algorithm.
type Method int

const (
	// MethodDC is the task-flow divide & conquer solver (the default).
	MethodDC Method = iota
	// MethodDCSequential is the sequential LAPACK-style DSTEDC.
	MethodDCSequential
	// MethodMRRR is the Multiple Relatively Robust Representations solver.
	MethodMRRR
	// MethodQR is the implicit QL/QR iteration (DSTEQR).
	MethodQR
)

func (m Method) String() string {
	switch m {
	case MethodDC:
		return "dc"
	case MethodDCSequential:
		return "dc-seq"
	case MethodMRRR:
		return "mrrr"
	case MethodQR:
		return "qr"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Options tunes the solvers; the zero value selects the task-flow D&C with
// library defaults on all available cores.
type Options struct {
	// Method selects the algorithm (default MethodDC).
	Method Method
	// Workers is the number of worker goroutines (<=0: GOMAXPROCS).
	Workers int
	// PanelSize is the D&C task panel width nb (<=0: adaptive, chosen per
	// merge from the merge width, post-deflation size and worker count).
	PanelSize int
	// MinPartition is the D&C leaf cutoff (<=0: default).
	MinPartition int
	// ExtraWorkspace enables the paper's extra-workspace task overlap.
	ExtraWorkspace bool
	// ValuesOnly computes eigenvalues without eigenvectors through the
	// values-only fast lane: the task-flow D&C propagates each merge's
	// rank-one z-vector from O(n) per-node carrier rows instead of the n×n
	// eigenvector matrix, so no eigenvector tasks run and the workspace is
	// O(n·depth) instead of O(n²). Result.Vectors is nil. MethodDC uses the
	// task-flow lane with Dsterf as the fallback tier; every other method
	// serves values-only requests with Dsterf directly (the root-free QR
	// iteration is itself the classical values-only algorithm). Degraded
	// tiers are validated by Sturm-count spectrum checks instead of the
	// Residual/Orthogonality metrics (which need vectors).
	ValuesOnly bool
	// Fallback enables tier-by-tier degradation: if the selected solver
	// fails (or its result does not pass the Residual/Orthogonality
	// validation), the solve is retried on the next, more conservative
	// tier — task-flow D&C → sequential DSTEDC → QR iteration — and the
	// tier that served the result is recorded in Result.Stats. Fallback
	// never taxes the clean path: validation runs only for results
	// produced by a degraded tier.
	Fallback bool
	// Audit tunes the always-on result audit: every solve that is about to
	// be returned — from any tier, including the clean first-choice path —
	// is verified against the input matrix (sampled Sturm-count inertia
	// check on the spectrum, plus a residual/unit-norm sweep over the
	// eigenvector columns for vector solves). An audit failure is classified
	// as transient corruption (CorruptionError) and the solve moves to the
	// next tier instead of shipping a wrong answer. The zero value enables
	// the audit with defaults; see AuditOptions.
	Audit AuditOptions
	// DisableABFT turns off the in-flight ABFT defenses of the task-flow
	// tiers (packed-GEMM checksum verification, per-merge trace and
	// interlacing invariants, task-granular recompute of failed checks).
	// They are on by default; the audit above is the independent last line
	// and stays on separately.
	DisableABFT bool
	// Progress, when non-nil, is called after every executed task of a
	// task-flow solve and at every tier transition: the heartbeat external
	// watchdogs (eigen.Server) use to tell a stalled solve from a running
	// one. It runs on worker goroutines, so it must be concurrency-safe and
	// cheap — storing a timestamp into an atomic is the intended shape.
	// Sequential tiers emit no per-task heartbeats; watchdog stall windows
	// must cover the longest expected sequential phase.
	Progress func()
}

// SolveStats reports how a solve was served: the execution tier that
// produced the result, the errors of any tiers that failed before it, and
// the in-tier numerical rescues that degraded speed without failing the
// solve.
type SolveStats struct {
	// Method is the requested algorithm.
	Method Method
	// Tier names the execution tier that produced the result: "task-flow",
	// "dstedc", "mrrr" or "qr".
	Tier string
	// TierErrors holds one error per tier that failed (or failed
	// validation) before the serving tier; empty on the clean path.
	TierErrors []error
	// Fallbacks counts in-tier numerical rescues: secular roots recomputed
	// by the guaranteed bisection safeguard and leaf QR solves retried via
	// Dsterf + inverse iteration. Zero on the clean path.
	Fallbacks int64
	// Validated reports whether the result was verified against the
	// Residual/Orthogonality checks (done whenever a degraded tier served
	// the result); Residual and Orthogonality hold the measured values.
	Validated     bool
	Residual      float64
	Orthogonality float64
	// Audited reports whether the always-on result audit ran and passed for
	// the served result (false when Options.Audit.Disable is set);
	// AuditResidual is the worst normalized column residual the audit
	// measured (0 for values-only solves — the spectrum check has no
	// residual).
	Audited       bool
	AuditResidual float64
	// CorruptionsDetected counts silent-corruption detections during this
	// solve: ABFT checksum mismatches, violated merge invariants and failed
	// result audits. CorruptionsHealed is how many of them were healed —
	// by an in-place task recompute or by a later tier serving an audited
	// result. On a successful solve the two are equal: every detection was
	// contained.
	CorruptionsDetected, CorruptionsHealed int64
	// LeakedBytes is the pooled workspace the solve's failed or cancelled
	// merges abandoned to the GC (the pool accountant's per-solve ledger);
	// zero on every clean solve.
	LeakedBytes int64
	// BatchSize is the number of matrices that shared the runtime when this
	// result was produced by SolveBatch (0 for single solves).
	BatchSize int
	// BatchTaskNanos is the total task-kernel time the shared batch runtime
	// executed (the same value on every member of a batch; 0 for single
	// solves and for members retried outside the batch).
	BatchTaskNanos int64
}

// Degraded reports whether the result came from a lower tier or needed
// in-tier numerical rescues.
func (s *SolveStats) Degraded() bool {
	return len(s.TierErrors) > 0 || s.Fallbacks > 0
}

// Result holds an eigendecomposition: ascending eigenvalues and the matching
// orthonormal eigenvectors stored column-major with leading dimension N.
type Result struct {
	N       int
	Values  []float64
	Vectors []float64
	// Stats describes how the solve was served (tier, fallbacks,
	// validation); nil for results not produced by Solve/SolveContext.
	Stats *SolveStats
}

// Vector returns the j-th eigenvector (aliasing the result storage).
func (r *Result) Vector(j int) []float64 {
	return r.Vectors[j*r.N : j*r.N+r.N]
}

// Solve computes all eigenvalues and eigenvectors of the symmetric
// tridiagonal matrix t. The input is not modified.
func Solve(t Tridiagonal, opts *Options) (*Result, error) {
	return SolveContext(context.Background(), t, opts)
}

// Validation thresholds for results produced by a degraded tier, the order
// of the paper's Figure 9 accuracy metrics (both are normalized by n).
const (
	maxResidual      = 1e-12
	maxOrthogonality = 1e-12
)

// tiersFor returns the execution tiers tried for a method, most capable
// first. Without Fallback only the first tier runs. Values-only solves have
// their own ladder: the task-flow values-only lane for MethodDC with Dsterf
// as the degraded tier, and Dsterf alone for every other method (root-free
// QR iteration is the classical eigenvalue-only algorithm, so there is no
// cheaper tier to fall to).
func tiersFor(m Method, fallback, valuesOnly bool) []string {
	var tiers []string
	if valuesOnly {
		switch m {
		case MethodDC:
			tiers = []string{"task-flow", "dsterf"}
		case MethodDCSequential, MethodMRRR, MethodQR:
			tiers = []string{"dsterf"}
		default:
			return nil
		}
		if !fallback {
			return tiers[:1]
		}
		return tiers
	}
	switch m {
	case MethodDC:
		tiers = []string{"task-flow", "dstedc", "qr"}
	case MethodDCSequential:
		tiers = []string{"dstedc", "qr"}
	case MethodMRRR:
		tiers = []string{"mrrr", "qr"}
	case MethodQR:
		tiers = []string{"qr"}
	default:
		return nil
	}
	if !fallback {
		return tiers[:1]
	}
	return tiers
}

// SolveContext is Solve bounded by a context: an already-cancelled context
// returns ctx.Err() before any task runs, and cancellation (or deadline
// expiry) during a task-flow solve aborts within one task granularity.
// Cancellation is never retried on a lower tier.
//
// Inputs are screened for NaN/Inf up front, and matrices with extreme norms
// (near overflow or underflow) are scaled into the safe range and the
// eigenvalues scaled back on return. The input is not modified.
func SolveContext(ctx context.Context, t Tridiagonal, opts *Options) (*Result, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	n := t.N()
	wrap := func(err error) error {
		return fmt.Errorf("eigen: Solve(n=%d, method=%s): %w", n, o.Method, err)
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	if err := t.screen(); err != nil {
		return nil, wrap(err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tiers := tiersFor(o.Method, o.Fallback, o.ValuesOnly)
	if tiers == nil {
		return nil, fmt.Errorf("eigen: unknown method %v", o.Method)
	}
	res := &Result{
		N: n, Values: make([]float64, n),
		Stats: &SolveStats{Method: o.Method, Tier: tiers[0]},
	}
	if !o.ValuesOnly {
		// The values-only lane never touches an n×n block; the allocation
		// alone would defeat its O(n·depth) workspace bound.
		res.Vectors = make([]float64, n*n)
	}
	if n == 0 {
		return res, nil
	}

	// Master copies of the input, pre-scaled to the safe range when the
	// norm is within a square root of overflow or underflow (the existing
	// Scale path; the D&C core additionally normalizes internally).
	d, e, scale := preScale(t)
	ework := make([]float64, len(e))

	var lastErr error
	var unhealed int64 // corruption detections from failed tiers, healed when a later tier serves
	for ti, tier := range tiers {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if o.Progress != nil {
			// Tier transitions count as progress: a fallback tier starting
			// over must not be mistaken for a stall.
			o.Progress()
		}
		// Fresh inputs per attempt; a failed tier leaves partial data in
		// the outputs, and the leaf solvers require a zeroed q.
		copy(res.Values, d)
		copy(ework, e)
		if ti > 0 && res.Vectors != nil {
			for i := range res.Vectors {
				res.Vectors[i] = 0
			}
		}
		ts, err := runTier(ctx, tier, n, &o, res.Values, ework, res.Vectors, e)
		res.Stats.Fallbacks += ts.fallbacks
		res.Stats.LeakedBytes += ts.leaked
		res.Stats.CorruptionsDetected += ts.detected
		res.Stats.CorruptionsHealed += ts.healed
		unhealed += ts.detected - ts.healed
		if err != nil {
			if ctx.Err() != nil {
				// Cancelled, not broken: report the cancellation, never a
				// degraded retry.
				return nil, ctx.Err()
			}
			if faultinject.Corruption(err) && ts.detected == 0 {
				// A corruption-classified failure the tier's own counters did
				// not capture (e.g. a sequential tier): count the detection
				// here so the ledger stays complete.
				res.Stats.CorruptionsDetected++
				unhealed++
			}
			lastErr = err
			res.Stats.TierErrors = append(res.Stats.TierErrors, fmt.Errorf("tier %s: %w", tier, err))
			continue
		}
		if ti > 0 {
			// A degraded tier served the result: verify it before trusting
			// it (the clean first-choice path skips this, so resilience
			// does not tax the hot path). With vectors the check is the
			// Residual/Orthogonality pair; values-only results are checked
			// against sampled Sturm counts of the original matrix instead
			// (Residual and Orthogonality stay 0 — they need vectors).
			res.Stats.Validated = true
			if o.ValuesOnly {
				if verr := validateSpectrum(Tridiagonal{D: d, E: e}, res.Values); verr != nil {
					lastErr = fmt.Errorf("validation failed: %w", verr)
					res.Stats.TierErrors = append(res.Stats.TierErrors, fmt.Errorf("tier %s: %w", tier, lastErr))
					continue
				}
			} else {
				rres := Residual(Tridiagonal{D: d, E: e}, res)
				orth := Orthogonality(res)
				res.Stats.Residual, res.Stats.Orthogonality = rres, orth
				if rres > maxResidual || orth > maxOrthogonality {
					lastErr = fmt.Errorf("validation failed: residual=%.3e orthogonality=%.3e", rres, orth)
					res.Stats.TierErrors = append(res.Stats.TierErrors, fmt.Errorf("tier %s: %w", tier, lastErr))
					continue
				}
			}
		}
		if !o.Audit.Disable {
			// The always-on audit: every serving tier — the clean first
			// choice included — is verified against the input before the
			// result ships. It runs in scaled units like the validation
			// above; every audit metric is scale-invariant.
			worst, aerr := auditResult(Tridiagonal{D: d, E: e}, res, &o)
			if aerr != nil {
				res.Stats.CorruptionsDetected++
				unhealed++
				lastErr = aerr
				res.Stats.TierErrors = append(res.Stats.TierErrors, fmt.Errorf("tier %s: %w", tier, aerr))
				continue
			}
			res.Stats.Audited = true
			res.Stats.AuditResidual = worst
		}
		// The result is served: every corruption detected along the way was
		// contained by a recompute or a tier fallback.
		res.Stats.CorruptionsHealed += unhealed
		res.Stats.Tier = tier
		if scale != 1 {
			// Validation (if any) ran in scaled units; both metrics are
			// scale-invariant, so they stand after the scale-back.
			lapack.Dlascl(n, 1, 1, scale, res.Values, n)
		}
		return res, nil
	}
	return nil, wrap(fmt.Errorf("all tiers failed: %w", lastErr))
}

// preScale copies t's entries into fresh working arrays, scaling matrices
// with extreme norms (within a square root of overflow or underflow) into the
// safe range. The returned scale is 1 when no scaling was applied; callers
// must scale the computed eigenvalues back by it.
func preScale(t Tridiagonal) (d, e []float64, scale float64) {
	n := t.N()
	d = append([]float64(nil), t.D...)
	e = append([]float64(nil), t.E...)
	scale = 1.0
	if orgnrm := lapack.Dlanst('M', n, d, e); orgnrm != 0 {
		rmin := math.Sqrt(lapack.SafeMin)
		if orgnrm < rmin || orgnrm > 1/rmin {
			lapack.Dlascl(n, 1, orgnrm, 1, d, n)
			if n > 1 {
				lapack.Dlascl(n-1, 1, orgnrm, 1, e, n-1)
			}
			scale = orgnrm
		}
	}
	return d, e, scale
}

// tierStats is what one tier attempt reports up into SolveStats beyond its
// error: in-tier numerical rescues, the pool accountant's leak ledger, and
// the ABFT corruption detections/heals of the task-flow modes.
type tierStats struct {
	fallbacks int64
	leaked    int64
	detected  int64
	healed    int64
}

// coreTierStats harvests a core solve's ledger: ABFT checksum and invariant
// failures are detections; the runtime's in-place task retries count as heals
// only when the tier served (a retry that failed again aborted the tier).
func coreTierStats(cres *core.Result, err error) tierStats {
	var ts tierStats
	if cres == nil || cres.Stats == nil {
		return ts
	}
	ts.fallbacks = cres.Stats.Fallbacks()
	ts.leaked = cres.Stats.LeakedBytes()
	ab := cres.Stats.ABFT()
	ts.detected = ab.ChecksumFailures + ab.InvariantFailures
	if err == nil {
		ts.healed = ab.Retries
	}
	return ts
}

// runTier executes one tier: d/ework are working copies (overwritten), q
// receives the eigenvectors, eorig is the untouched off-diagonal for solvers
// that read rather than consume their input.
func runTier(ctx context.Context, tier string, n int, o *Options, d, ework, q, eorig []float64) (tierStats, error) {
	switch tier {
	case "task-flow":
		ldq := n
		if o.ValuesOnly {
			ldq = 0 // q is nil: the lane carries O(n) rows, not the matrix
		}
		cres, err := core.SolveDCContext(ctx, n, d, ework, q, ldq, &core.Options{
			Workers:        o.Workers,
			PanelSize:      o.PanelSize,
			MinPartition:   o.MinPartition,
			ExtraWorkspace: o.ExtraWorkspace,
			ValuesOnly:     o.ValuesOnly,
			DisableABFT:    o.DisableABFT,
			Progress:       o.Progress,
		})
		return coreTierStats(cres, err), err
	case "dstedc":
		cres, err := core.SolveDCContext(ctx, n, d, ework, q, n, &core.Options{
			Mode:         core.ModeSequential,
			MinPartition: o.MinPartition,
		})
		return coreTierStats(cres, err), err
	case "mrrr":
		w := make([]float64, n)
		err := mrrr.Solve(n, d, eorig, w, q, n, &mrrr.Options{Workers: o.Workers})
		copy(d, w)
		return tierStats{}, err
	case "qr":
		fellBack, err := lapack.DsteqrRobust(n, d, ework, q, n)
		var ts tierStats
		if fellBack {
			ts.fallbacks = 1
		}
		return ts, err
	case "dsterf":
		return tierStats{}, lapack.Dsterf(n, d, ework)
	}
	return tierStats{}, fmt.Errorf("unknown tier %q", tier)
}

// Values computes the eigenvalues only (ascending) through the values-only
// fast lane: the task-flow D&C with O(n·depth) workspace and no eigenvector
// tasks, falling back to the root-free QR iteration (Dsterf) if the lane
// fails. Equivalent to SolveContext with Options{ValuesOnly: true,
// Fallback: true} and returns just the spectrum.
func Values(t Tridiagonal) ([]float64, error) {
	res, err := Solve(t, &Options{ValuesOnly: true, Fallback: true})
	if err != nil {
		return nil, err
	}
	return res.Values, nil
}

// SymEigen computes the full eigendecomposition of a dense symmetric matrix
// given in the lower triangle of the column-major n×n array a (leading
// dimension lda ≥ n): Householder tridiagonalization, tridiagonal
// eigensolve with the selected method, and back-transformation of the
// eigenvectors. a is overwritten with reduction data.
func SymEigen(n int, a []float64, lda int, opts *Options) (*Result, error) {
	if n < 0 || lda < n {
		return nil, fmt.Errorf("eigen: bad dimensions n=%d lda=%d", n, lda)
	}
	// Same worker default as Solve: all cores unless explicitly limited.
	workers := runtime.GOMAXPROCS(0)
	if opts != nil && opts.Workers > 0 {
		workers = opts.Workers
	}
	d := make([]float64, n)
	e := make([]float64, max(n-1, 1))
	tau := make([]float64, max(n-1, 1))
	if err := lapack.DsytrdParallel(n, a, lda, d, e, tau, 32, workers); err != nil {
		return nil, fmt.Errorf("eigen: SymEigen(n=%d): reduction: %w", n, err)
	}
	res, err := Solve(Tridiagonal{D: d, E: e[:max(n-1, 0)]}, opts)
	if err != nil {
		return nil, fmt.Errorf("eigen: SymEigen(n=%d): %w", n, err)
	}
	lapack.Dormtr(false, n, n, a, lda, tau, res.Vectors, n)
	return res, nil
}

// SymEigen2Stage is SymEigen with the two-stage reduction (dense → band of
// width b → tridiagonal; the successive-band-reduction approach of the
// paper's companion reduction work): better locality for the reduction at
// the cost of a costlier back-transformation, which here uses the explicitly
// accumulated orthogonal factor. b <= 0 selects a default bandwidth.
func SymEigen2Stage(n int, a []float64, lda, b int, opts *Options) (*Result, error) {
	if n < 0 || lda < n {
		return nil, fmt.Errorf("eigen: bad dimensions n=%d lda=%d", n, lda)
	}
	if b <= 0 {
		b = max(8, min(64, n/16))
	}
	d := make([]float64, n)
	e := make([]float64, max(n-1, 1))
	q := make([]float64, n*n)
	if err := lapack.Dsytrd2Stage(n, a, lda, b, d, e, q, n); err != nil {
		return nil, fmt.Errorf("eigen: SymEigen2Stage(n=%d, b=%d): reduction: %w", n, b, err)
	}
	res, err := Solve(Tridiagonal{D: d, E: e[:max(n-1, 0)]}, opts)
	if err != nil {
		return nil, fmt.Errorf("eigen: SymEigen2Stage(n=%d, b=%d): %w", n, b, err)
	}
	// V = Q · Z
	v := make([]float64, n*n)
	blas.Dgemm(false, false, n, n, n, 1, q, n, res.Vectors, n, 0, v, n)
	res.Vectors = v
	return res, nil
}

// SymGeneralized solves the generalized symmetric-definite eigenproblem
// A·x = λ·B·x with B positive definite: Cholesky B = L·Lᵀ, reduction to the
// standard problem L⁻¹·A·L⁻ᵀ·y = λ·y, tridiagonal D&C, and back-substitution
// x = L⁻ᵀ·y. a and b are n×n column-major full symmetric matrices (both
// overwritten). The returned eigenvectors are B-orthonormal (XᵀBX = I).
func SymGeneralized(n int, a []float64, lda int, b []float64, ldb int, opts *Options) (*Result, error) {
	if n < 0 || lda < n || ldb < n {
		return nil, fmt.Errorf("eigen: bad dimensions n=%d lda=%d ldb=%d", n, lda, ldb)
	}
	if err := lapack.Dpotrf(n, b, ldb, 32); err != nil {
		return nil, fmt.Errorf("eigen: B is not positive definite: %w", err)
	}
	lapack.Dsygst(n, a, lda, b, ldb)
	res, err := SymEigen(n, a, lda, opts)
	if err != nil {
		return nil, fmt.Errorf("eigen: SymGeneralized(n=%d): %w", n, err)
	}
	// x_j = L⁻ᵀ y_j
	blas.DtrsmLeftLowerTrans(n, n, b, ldb, res.Vectors, n)
	return res, nil
}

// Residual returns max_j ‖T v_j - λ_j v_j‖₂ / (‖T‖ n): the paper's
// Figure 9(b) metric for verifying a tridiagonal eigendecomposition.
func Residual(t Tridiagonal, r *Result) float64 {
	n := t.N()
	if n == 0 {
		return 0
	}
	nrm := lapack.Dlanst('M', n, t.D, t.E)
	if nrm == 0 {
		nrm = 1
	}
	worst := 0.0
	y := make([]float64, n)
	for j := 0; j < n; j++ {
		v := r.Vector(j)
		for i := 0; i < n; i++ {
			s := t.D[i] * v[i]
			if i > 0 {
				s += t.E[i-1] * v[i-1]
			}
			if i < n-1 {
				s += t.E[i] * v[i+1]
			}
			y[i] = s - r.Values[j]*v[i]
		}
		if nv := blas.Dnrm2(n, y, 1); nv > worst {
			worst = nv
		}
	}
	return worst / (nrm * float64(n))
}

// Orthogonality returns ‖I - VᵀV‖_max / n: the paper's Figure 9(a) metric.
func Orthogonality(r *Result) float64 {
	n := r.N
	worst := 0.0
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			s := blas.Ddot(n, r.Vector(i), 1, r.Vector(j), 1)
			if i == j {
				s -= 1
			}
			if s < 0 {
				s = -s
			}
			if s > worst {
				worst = s
			}
		}
	}
	return worst / float64(max(n, 1))
}
