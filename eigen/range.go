package eigen

import (
	"fmt"

	"tridiag/internal/core"
	"tridiag/internal/mrrr"
	"tridiag/internal/svd"
)

// SolveRange computes eigenpairs il..iu (0-based, inclusive, counted in
// ascending eigenvalue order) of the symmetric tridiagonal matrix t, using
// the MRRR machinery — the subset capability the paper highlights as
// Θ(nk) for k eigenpairs. The returned Result holds iu-il+1 values and
// vectors.
func SolveRange(t Tridiagonal, il, iu int, opts *Options) (*Result, error) {
	if err := t.validate(); err != nil {
		return nil, err
	}
	n := t.N()
	if il < 0 || iu >= n || il > iu {
		return nil, fmt.Errorf("eigen: bad index range [%d, %d] for n=%d", il, iu, n)
	}
	m := iu - il + 1
	var o Options
	if opts != nil {
		o = *opts
	}
	res := &Result{N: n, Values: make([]float64, m), Vectors: make([]float64, n*m)}
	err := mrrr.SolveRange(n, t.D, t.E, il, iu, res.Values, res.Vectors, n, &mrrr.Options{Workers: o.Workers})
	return res, err
}

// ValuesRange computes eigenvalues il..iu (0-based, inclusive, ascending)
// only. Narrow ranges use Sturm-count bisection; wide ranges (a quarter of
// the spectrum or more) route through the values-only D&C fast lane, which
// computes the whole spectrum in parallel with O(n·depth) workspace —
// neither path ever allocates an n×n eigenvector block.
func ValuesRange(t Tridiagonal, il, iu int) ([]float64, error) {
	if err := t.validate(); err != nil {
		return nil, err
	}
	n := t.N()
	if il < 0 || iu >= n || il > iu {
		return nil, fmt.Errorf("eigen: bad index range [%d, %d] for n=%d", il, iu, n)
	}
	if m := iu - il + 1; 4*m >= n {
		// The bisection below resolves every eigenvalue of every unreduced
		// block before selecting, so once a sizable fraction of the spectrum
		// is requested the multicore values-only lane is strictly faster.
		res, err := Solve(t, &Options{ValuesOnly: true, Fallback: true})
		if err != nil {
			return nil, err
		}
		return append([]float64(nil), res.Values[il:iu+1]...), nil
	}
	return mrrr.ValuesRange(n, t.D, t.E, il, iu)
}

// SVDResult is a thin singular value decomposition A = U Σ Vᵀ.
type SVDResult struct {
	M, N int
	S    []float64 // descending singular values
	U    []float64 // m×n column-major left singular vectors
	V    []float64 // n×n column-major right singular vectors
}

// UCol returns the j-th left singular vector.
func (r *SVDResult) UCol(j int) []float64 { return r.U[j*r.M : j*r.M+r.M] }

// VCol returns the j-th right singular vector.
func (r *SVDResult) VCol(j int) []float64 { return r.V[j*r.N : j*r.N+r.N] }

// SVD computes the thin singular value decomposition of the m×n (m ≥ n)
// column-major matrix a (leading dimension lda) through bidiagonalization
// and the Golub–Kahan tridiagonal form solved with the task-flow D&C — the
// extension the paper's conclusion proposes. a is overwritten.
func SVD(m, n int, a []float64, lda int, opts *Options) (*SVDResult, error) {
	var co *core.Options
	if opts != nil {
		co = &core.Options{
			Workers:        opts.Workers,
			PanelSize:      opts.PanelSize,
			MinPartition:   opts.MinPartition,
			ExtraWorkspace: opts.ExtraWorkspace,
		}
	}
	r, err := svd.Decompose(m, n, a, lda, co)
	if err != nil {
		return nil, err
	}
	return &SVDResult{M: r.M, N: r.N, S: r.S, U: r.U, V: r.V}, nil
}
