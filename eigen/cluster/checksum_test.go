package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"

	"tridiag/eigen"
)

// TestSpectrumChecksum: the seal must be deterministic, order-sensitive and
// bit-exact — a single flipped low-order mantissa bit anywhere in the
// payload must change it.
func TestSpectrumChecksum(t *testing.T) {
	v := []float64{1.5, -2.25, 0, 3.75e-9, 1e300}
	if got, again := SpectrumChecksum(v), SpectrumChecksum(v); got != again {
		t.Fatalf("not deterministic: %x vs %x", got, again)
	}
	if SpectrumChecksum(nil) == 0 {
		t.Fatal("empty payload must still have a nonzero FNV offset seal")
	}
	swapped := []float64{-2.25, 1.5, 0, 3.75e-9, 1e300}
	if SpectrumChecksum(v) == SpectrumChecksum(swapped) {
		t.Fatal("order-insensitive seal")
	}
	for i := range v {
		flipped := append([]float64(nil), v...)
		flipped[i] = math.Float64frombits(math.Float64bits(flipped[i]) ^ 1)
		if SpectrumChecksum(v) == SpectrumChecksum(flipped) {
			t.Fatalf("low-bit flip of value %d not visible in the seal", i)
		}
	}
	// -0 and +0 differ in bit pattern, so the bit-exact seal distinguishes
	// them — the coordinator verifies the bytes that crossed the wire, not a
	// numerical property.
	if SpectrumChecksum([]float64{0}) == SpectrumChecksum([]float64{math.Copysign(0, -1)}) {
		t.Fatal("seal is not bit-exact over signed zeros")
	}
}

// bitflipProxy forwards requests to the real worker handler and flips one
// low-order mantissa bit of the first eigenvalue in every successful /solve
// response AFTER the worker sealed it — the wire/proxy-buffer corruption the
// response checksum exists to catch.
type bitflipProxy struct{ next http.Handler }

func (p *bitflipProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/solve" {
		p.next.ServeHTTP(w, r)
		return
	}
	rec := httptest.NewRecorder()
	p.next.ServeHTTP(rec, r)
	var resp SolveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err == nil && resp.Error == "" && len(resp.Values) > 0 {
		resp.Values[0] = math.Float64frombits(math.Float64bits(resp.Values[0]) ^ 1)
		var buf bytes.Buffer
		if json.NewEncoder(&buf).Encode(&resp) == nil {
			rec.Body = &buf
		}
	}
	for k, vs := range rec.Header() {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(rec.Code)
	w.Write(rec.Body.Bytes())
}

// TestCoordinatorChecksumMismatchFailsOver: a worker whose responses are
// corrupted in transit must never have its payload served — the coordinator
// re-derives the seal after decoding, counts the mismatch, marks the worker
// failing, and serves through the degraded-local tier instead.
func TestCoordinatorChecksumMismatchFailsOver(t *testing.T) {
	before := runtime.NumGoroutine()
	w := newTestWorker(workerServerConfig())
	defer w.close()
	// Interpose the bit-flipping proxy between the gate and the handler.
	w.gate.next = &bitflipProxy{next: w.gate.next}

	cfg := testCoordConfig([]string{w.ts.URL}, http.DefaultClient)
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		c.Shutdown(context.Background())
		checkGoroutines(t, before)
	}()

	rng := rand.New(rand.NewSource(7))
	req := randomRequest(rng, 80)
	want, err := eigen.Solve(req.Tri(), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Solve(context.Background(), req)
	if err != nil {
		t.Fatalf("solve failed instead of failing over: %v", err)
	}
	if resp.Worker != "local" {
		t.Errorf("corrupted remote served the job: worker %q", resp.Worker)
	}
	for i := range want.Values {
		if math.Abs(resp.Values[i]-want.Values[i]) > 1e-12 {
			t.Fatalf("served values differ from reference at %d", i)
		}
	}
	st := c.Stats()
	if st.ChecksumMismatches == 0 {
		t.Error("checksum mismatch not counted")
	}
	if st.DegradedLocal == 0 {
		t.Error("degraded-local disposition not counted")
	}
}

// TestWorkerResponseSealed: every successful worker response carries a seal
// that matches its own payload.
func TestWorkerResponseSealed(t *testing.T) {
	w := newTestWorker(workerServerConfig())
	defer w.close()
	rng := rand.New(rand.NewSource(8))
	body, _ := json.Marshal(randomRequest(rng, 60))
	httpResp, err := http.Post(w.ts.URL+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var resp SolveResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error != "" {
		t.Fatalf("solve error: %s", resp.Error)
	}
	if resp.Checksum == 0 {
		t.Fatal("response carries no seal")
	}
	if got := SpectrumChecksum(resp.Values); got != resp.Checksum {
		t.Fatalf("seal %x does not match payload seal %x", resp.Checksum, got)
	}
}
