package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"tridiag/eigen"
	"tridiag/internal/faultinject"
)

// manualProbeConfig disables the background prober (interval far beyond the
// test) so breaker transitions are driven only by jobs and explicit probe()
// calls — the deterministic setting for unit-testing the state machine.
func manualProbeConfig(urls []string, client *http.Client) Config {
	cfg := testCoordConfig(urls, client)
	cfg.ProbeInterval = time.Hour
	return cfg
}

func newCoord(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	return c
}

func mustClusterSolve(t *testing.T, c *Coordinator, req *SolveRequest) *SolveResponse {
	t.Helper()
	resp, err := c.Solve(context.Background(), req)
	if err != nil {
		t.Fatalf("cluster solve n=%d: %v", len(req.D), err)
	}
	checkSpectrum(t, req, resp)
	return resp
}

func TestRingDeterministicAndComplete(t *testing.T) {
	names := []string{"http://a:1", "http://b:1", "http://c:1"}
	rg := newRing(names, 64)
	all := func(int) bool { return true }
	counts := make([]int, len(names))
	for i := 0; i < 1000; i++ {
		key := affinityKey([]float64{float64(i), 2}, []float64{0.5})
		w := rg.pick(key, all)
		if w < 0 || w >= len(names) {
			t.Fatalf("pick(%d) = %d out of range", key, w)
		}
		if again := rg.pick(key, all); again != w {
			t.Fatalf("pick(%d) unstable: %d then %d", key, w, again)
		}
		counts[w]++
		// Losing the owner moves the key to another worker, deterministically.
		failedOver := rg.pick(key, func(i int) bool { return i != w })
		if failedOver == w || failedOver < 0 {
			t.Fatalf("pick(%d) without %d = %d", key, w, failedOver)
		}
		if rg.pick(key, func(int) bool { return false }) != -1 {
			t.Fatal("pick with no eligible worker must return -1")
		}
	}
	for i, got := range counts {
		if got < 100 { // 1000 keys over 3 workers: each owns a real share
			t.Errorf("worker %d owns only %d/1000 keys; ring is unbalanced", i, got)
		}
	}
}

func TestAffinityKeyContentBased(t *testing.T) {
	d := []float64{1, 2, 3}
	e := []float64{0.5, 0.25}
	k1 := affinityKey(d, e)
	k2 := affinityKey(append([]float64(nil), d...), append([]float64(nil), e...))
	if k1 != k2 {
		t.Error("same content must hash to the same key regardless of identity")
	}
	if affinityKey([]float64{1, 2, 3.0000001}, e) == k1 {
		t.Error("different content hashed to the same key")
	}
}

// TestRemoteErrorClassification: the duck-typed Transient()/TaskClass()
// convention that feeds the breakers and the failover policy.
func TestRemoteErrorClassification(t *testing.T) {
	cases := []struct {
		status    int
		transient bool
	}{
		{0, true},   // transport-level: reset, refused, truncated
		{500, true}, // worker-side failure; another worker may serve
		{502, true},
		{http.StatusRequestTimeout, true},
		{http.StatusTooManyRequests, true},
		{400, false}, // definitive client error: replay reproduces it
		{404, false},
		{413, false},
	}
	for _, tc := range cases {
		re := &RemoteError{Worker: "http://w:1", Status: tc.status, Err: errors.New("x")}
		if got := faultinject.Transient(re); got != tc.transient {
			t.Errorf("status %d: Transient = %v, want %v", tc.status, got, tc.transient)
		}
	}
	re := &RemoteError{Worker: "http://w:1", Err: context.DeadlineExceeded}
	if got, want := faultinject.ClassOf(re), faultinject.NetClass("http://w:1"); got != want {
		t.Errorf("ClassOf = %q, want %q", got, want)
	}
	if !errors.Is(fmt.Errorf("attempt: %w", re), context.DeadlineExceeded) {
		t.Error("RemoteError must unwrap to its cause")
	}
}

func TestNewCoordinatorValidation(t *testing.T) {
	if _, err := NewCoordinator(Config{}); err == nil {
		t.Error("no workers: want error")
	}
	if _, err := NewCoordinator(Config{Workers: []string{"not a url"}}); err == nil {
		t.Error("scheme-less worker URL: want error")
	}
	if _, err := NewCoordinator(Config{Workers: []string{"://nope"}}); err == nil {
		t.Error("malformed worker URL: want error")
	}
}

// TestCoordinatorRejectsBadInput: malformed jobs are rejected at admission
// with eigen.ErrBadInput — they never become cluster jobs.
func TestCoordinatorRejectsBadInput(t *testing.T) {
	w := newTestWorker(workerServerConfig())
	defer w.close()
	c := newCoord(t, manualProbeConfig([]string{w.ts.URL}, nil))
	defer c.Shutdown(context.Background())

	for _, req := range []*SolveRequest{
		{D: []float64{1, 2, 3}, E: []float64{0.5}},
		{D: []float64{1, 2}, E: []float64{0.5}, Method: "cholesky"},
	} {
		resp, err := c.Solve(context.Background(), req)
		if !errors.Is(err, eigen.ErrBadInput) {
			t.Fatalf("bad input: err = %v, want ErrBadInput", err)
		}
		if resp.Disposition != "rejected" {
			t.Fatalf("bad input: disposition %q, want rejected", resp.Disposition)
		}
	}
	if st := c.Stats(); st.Rejected != 2 || st.Admitted != 0 {
		t.Errorf("stats rejected=%d admitted=%d, want 2/0", st.Rejected, st.Admitted)
	}
}

// TestCoordinatorSmallJobAffinity: resubmitting the same small system lands
// on the same worker every time.
func TestCoordinatorSmallJobAffinity(t *testing.T) {
	var workers []*testWorker
	var urls []string
	for i := 0; i < 3; i++ {
		w := newTestWorker(workerServerConfig())
		defer w.close()
		workers = append(workers, w)
		urls = append(urls, w.ts.URL)
	}
	c := newCoord(t, manualProbeConfig(urls, nil))
	defer c.Shutdown(context.Background())

	req := randomRequest(rand.New(rand.NewSource(11)), 32)
	first := mustClusterSolve(t, c, req)
	if first.Disposition != "completed" || first.Worker == "" {
		t.Fatalf("disposition=%q worker=%q", first.Disposition, first.Worker)
	}
	for i := 0; i < 3; i++ {
		if resp := mustClusterSolve(t, c, req); resp.Worker != first.Worker {
			t.Fatalf("resubmission %d went to %s, want affinity to %s", i, resp.Worker, first.Worker)
		}
	}
}

// TestCoordinatorFailoverAndBreaker walks the full breaker state machine with
// job traffic only (probes disabled): a partitioned worker causes failovers,
// opens after the threshold, stops receiving traffic, and re-closes through
// the half-open probe after revival.
func TestCoordinatorFailoverAndBreaker(t *testing.T) {
	w0 := newTestWorker(workerServerConfig())
	defer w0.close()
	w1 := newTestWorker(workerServerConfig())
	defer w1.close()
	c := newCoord(t, manualProbeConfig([]string{w0.ts.URL, w1.ts.URL}, nil))
	defer c.Shutdown(context.Background())

	rng := rand.New(rand.NewSource(21))
	// n > SmallN routes least-loaded; with equal load the tie goes to the
	// first configured worker, so every fresh job tries w0 first.
	large := func() *SolveRequest { return randomRequest(rng, 300) }

	w0.gate.down.Store(true)
	for i := 0; i < c.cfg.BreakerThreshold; i++ {
		resp := mustClusterSolve(t, c, large())
		if resp.Disposition != "failed-over" || resp.Worker != w1.ts.URL || resp.Failovers != 1 {
			t.Fatalf("job %d: disposition=%q worker=%q failovers=%d, want failed-over to w1",
				i, resp.Disposition, resp.Worker, resp.Failovers)
		}
	}
	if got := c.workers[0].breakerState(); got != "open" {
		t.Fatalf("w0 breaker %q after %d failures, want open", got, c.cfg.BreakerThreshold)
	}

	// Open circuit: w0 gets no traffic, jobs complete on w1 first try.
	sentBefore := c.workers[0].sent.Load()
	if resp := mustClusterSolve(t, c, large()); resp.Disposition != "completed" || resp.Worker != w1.ts.URL {
		t.Fatalf("open-circuit job: disposition=%q worker=%q", resp.Disposition, resp.Worker)
	}
	if got := c.workers[0].sent.Load(); got != sentBefore {
		t.Fatalf("open-circuit worker still received %d attempts", got-sentBefore)
	}

	// Revive; after the cooldown the breaker reads half-open and the next
	// health probe re-closes it.
	w0.gate.down.Store(false)
	waitFor(t, 2*time.Second, "cooldown expiry", func() bool {
		return c.workers[0].breakerState() == "half-open"
	})
	c.probe(c.workers[0])
	if got := c.workers[0].breakerState(); got != "closed" {
		t.Fatalf("w0 breaker %q after successful half-open probe, want closed", got)
	}
	if resp := mustClusterSolve(t, c, large()); resp.Disposition != "completed" || resp.Worker != w0.ts.URL {
		t.Fatalf("post-revival job: disposition=%q worker=%q, want completed on w0", resp.Disposition, resp.Worker)
	}

	st := c.Stats()
	if st.BreakerOpens != 1 || st.BreakerCloses != 1 {
		t.Errorf("breaker opens=%d closes=%d, want 1/1", st.BreakerOpens, st.BreakerCloses)
	}
	if st.FailedOver != int64(c.cfg.BreakerThreshold) {
		t.Errorf("failed-over=%d, want %d", st.FailedOver, c.cfg.BreakerThreshold)
	}
	if st.Completed != 2 || st.Failed != 0 {
		t.Errorf("completed=%d failed=%d, want 2/0", st.Completed, st.Failed)
	}
	if st.Retries != int64(c.cfg.BreakerThreshold) {
		t.Errorf("retries=%d, want %d", st.Retries, c.cfg.BreakerThreshold)
	}
}

// TestCoordinatorProbeEWMA: probe outcomes move the health estimate both
// ways, and an unreachable worker reads unhealthy within a few probes.
func TestCoordinatorProbeEWMA(t *testing.T) {
	w := newTestWorker(workerServerConfig())
	defer w.close()
	c := newCoord(t, manualProbeConfig([]string{w.ts.URL}, nil))
	defer c.Shutdown(context.Background())

	wk := c.workers[0]
	w.gate.down.Store(true)
	for i := 0; i < 4; i++ {
		c.probe(wk)
		if wk.breakerState() == "open" {
			break // probes feed the breaker too; stop before cooling down
		}
	}
	if wk.healthy() {
		t.Error("worker still healthy after consecutive probe failures")
	}
	st := c.Stats()
	if st.Workers[0].ProbeFailEWMA < 0.5 || st.Workers[0].LastProbeErr == "" {
		t.Errorf("worker status %+v, want ewma ≥ 0.5 with a probe error", st.Workers[0])
	}

	w.gate.down.Store(false)
	waitFor(t, 2*time.Second, "cooldown expiry", func() bool { return !wk.coolingDown() })
	for i := 0; i < 4 && !wk.healthy(); i++ {
		c.probe(wk)
	}
	if !wk.healthy() {
		t.Error("worker not healthy again after consecutive probe successes")
	}
	// A healthy probe round also refreshes the load snapshot from /stats.
	if st := c.Stats(); st.Workers[0].LastProbeErr != "" {
		t.Errorf("probe error %q survived recovery", st.Workers[0].LastProbeErr)
	}
}

// TestCoordinatorShutdown: admission stops, later Shutdowns are no-ops, and
// a job in flight at drain time is cancelled at the deadline and reported
// under the worker it was trying.
func TestCoordinatorShutdown(t *testing.T) {
	before := runtime.NumGoroutine()
	w := newTestWorker(workerServerConfig())
	defer w.close()
	c := newCoord(t, manualProbeConfig([]string{w.ts.URL}, nil))

	// A network-path delay keeps one job in flight long past the drain
	// deadline; FireCtx is context-bounded, so the drain cancels it.
	defer faultinject.Disable()
	faultinject.Enable(13, faultinject.Probe{
		Class: faultinject.NetClass(w.ts.URL), Kind: faultinject.KindDelay, P: 1, Delay: time.Minute,
	})
	type out struct {
		resp *SolveResponse
		err  error
	}
	done := make(chan out, 1)
	go func() {
		resp, err := c.Solve(context.Background(), randomRequest(rand.New(rand.NewSource(31)), 48))
		done <- out{resp, err}
	}()
	waitFor(t, 5*time.Second, "job admitted", func() bool { return c.Stats().Inflight == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	rep, err := c.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown err = %v, want DeadlineExceeded (deadline forced a cancellation)", err)
	}
	o := <-done
	if o.err == nil || o.resp.Disposition != "cancelled" {
		t.Fatalf("drained job: err=%v disposition=%q, want cancelled", o.err, o.resp.Disposition)
	}
	if len(rep.Workers) != 1 || rep.Workers[0].Worker != w.ts.URL {
		t.Fatalf("drain report %+v, want the job grouped under %s", rep.Workers, w.ts.URL)
	}
	if jobs := rep.Workers[0].Jobs; len(jobs) != 1 || jobs[0].Disposition != DispositionCancelled {
		t.Fatalf("drain report jobs %+v, want one cancelled job", jobs)
	}
	if rep.Local == nil {
		t.Fatal("drain report must include the local tier's report")
	}

	// Admission is closed, and Shutdown is idempotent.
	if _, err := c.Solve(context.Background(), randomRequest(rand.New(rand.NewSource(32)), 16)); !errors.Is(err, eigen.ErrServerClosed) {
		t.Fatalf("post-drain solve err = %v, want ErrServerClosed", err)
	}
	if rep2, err := c.Shutdown(context.Background()); err != nil || len(rep2.Workers) != 0 {
		t.Fatalf("second Shutdown: rep=%+v err=%v, want empty/nil", rep2, err)
	}
	faultinject.Disable()
	checkGoroutines(t, before)
}

// TestCoordinatorHTTPRoundTrip: the coordinator behind its HTTP handler
// serves the same API as a worker, and /readyz flips on drain.
func TestCoordinatorHTTPRoundTrip(t *testing.T) {
	w := newTestWorker(workerServerConfig())
	defer w.close()
	c := newCoord(t, manualProbeConfig([]string{w.ts.URL}, nil))
	ts := httptest.NewServer(NewCoordinatorHandler(c, HTTPConfig{Logf: discardLogf}))
	defer ts.Close()

	req := randomRequest(rand.New(rand.NewSource(41)), 24)
	resp, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(mustJSON(t, req)))
	if err != nil {
		t.Fatalf("POST /solve: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var sr SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	checkSpectrum(t, req, &sr)
	if sr.Worker != w.ts.URL || sr.Disposition != "completed" {
		t.Fatalf("worker=%q disposition=%q", sr.Worker, sr.Disposition)
	}

	// Shape mismatch over the wire is a 400 from the coordinator too.
	bad, _ := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(`{"d": [1, 2], "e": []}`))
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad shape via coordinator: status %d, want 400", bad.StatusCode)
	}

	rs, _ := http.Get(ts.URL + "/readyz")
	rs.Body.Close()
	if rs.StatusCode != http.StatusOK {
		t.Fatalf("/readyz: %d, want 200", rs.StatusCode)
	}
	if _, err := c.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	rs, _ = http.Get(ts.URL + "/readyz")
	rs.Body.Close()
	if rs.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after drain: %d, want 503", rs.StatusCode)
	}
}
