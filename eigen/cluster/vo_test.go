package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"testing"

	"tridiag/eigen"
)

// TestWorkerHTTPValuesOnlyRoundTrip: a values_only solve round-trips through
// the worker API with the spectrum and without any eigenvector payload, and
// the contradictory values_only+vectors class is a 400 before it costs a
// solve slot.
func TestWorkerHTTPValuesOnlyRoundTrip(t *testing.T) {
	w := newTestWorker(workerServerConfig())
	defer w.close()

	req := randomRequest(rand.New(rand.NewSource(21)), 200)
	req.ValuesOnly = true
	resp := postSolve(t, w.ts.URL, mustJSON(t, req))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("values_only solve: status %d, want 200", resp.StatusCode)
	}
	var sr SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	checkSpectrum(t, req, &sr)
	if len(sr.Vectors) != 0 {
		t.Errorf("values_only response carries %d vector floats", len(sr.Vectors))
	}
	if sr.Disposition != "completed" || sr.Tier != "task-flow" {
		t.Errorf("disposition=%q tier=%q, want completed/task-flow", sr.Disposition, sr.Tier)
	}
	if st := w.srv.Stats(); st.ValuesOnlyAdmitted != 1 || st.ValuesOnlyCompleted != 1 {
		t.Errorf("per-class counters: admitted=%d completed=%d, want 1/1",
			st.ValuesOnlyAdmitted, st.ValuesOnlyCompleted)
	}

	// values_only + vectors is a contradiction: 400, classified like any
	// other malformed job.
	bad := randomRequest(rand.New(rand.NewSource(22)), 24)
	bad.ValuesOnly = true
	bad.Vectors = true
	resp2 := postSolve(t, w.ts.URL, mustJSON(t, bad))
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("values_only+vectors: status %d, want 400", resp2.StatusCode)
	}
}

// TestWorkerHTTPValuesOnlyBatch: a homogeneous values_only batch serves every
// member without vectors; a batch mixing request classes is rejected whole
// with 400 (one flush, one class).
func TestWorkerHTTPValuesOnlyBatch(t *testing.T) {
	w := newTestWorker(workerServerConfig())
	defer w.close()
	rng := rand.New(rand.NewSource(31))

	jobs := make([]SolveRequest, 5)
	for i := range jobs {
		r := randomRequest(rng, 40+20*i)
		r.ValuesOnly = true
		jobs[i] = *r
	}
	resp := postBatch(t, w.ts.URL, mustJSON(t, &BatchRequest{Jobs: jobs}))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("values_only batch: status %d, want 200", resp.StatusCode)
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(br.Results) != len(jobs) {
		t.Fatalf("%d results for %d jobs", len(br.Results), len(jobs))
	}
	for i := range br.Results {
		checkSpectrum(t, &jobs[i], &br.Results[i])
		if len(br.Results[i].Vectors) != 0 {
			t.Errorf("member %d: values_only batch member carries vectors", i)
		}
		if br.Results[i].Disposition != "completed" {
			t.Errorf("member %d: disposition %q", i, br.Results[i].Disposition)
		}
	}

	// One full-solve member in a values_only window: the whole batch is a
	// client error — a flush has exactly one request class.
	mixed := append(append([]SolveRequest(nil), jobs...), *randomRequest(rng, 30))
	resp2 := postBatch(t, w.ts.URL, mustJSON(t, &BatchRequest{Jobs: mixed}))
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("mixed-class batch: status %d, want 400", resp2.StatusCode)
	}

	// A conflicted member (values_only+vectors) also rejects the batch.
	conflicted := append([]SolveRequest(nil), jobs...)
	conflicted[2].Vectors = true
	resp3 := postBatch(t, w.ts.URL, mustJSON(t, &BatchRequest{Jobs: conflicted}))
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("conflicted batch member: status %d, want 400", resp3.StatusCode)
	}
}

// TestCoordinatorValuesOnly: the coordinator forwards the request class to
// workers, rejects contradictory classes as ErrBadInput before routing, and
// its degraded-local tier honors values_only when every worker is gone.
func TestCoordinatorValuesOnly(t *testing.T) {
	w := newTestWorker(workerServerConfig())
	defer w.close()
	c := newCoord(t, testCoordConfig([]string{w.ts.URL}, nil))
	defer c.Shutdown(context.Background())
	rng := rand.New(rand.NewSource(41))

	req := randomRequest(rng, 180)
	req.ValuesOnly = true
	resp := mustClusterSolve(t, c, req)
	if len(resp.Vectors) != 0 {
		t.Errorf("values_only cluster response carries vectors")
	}

	bad := randomRequest(rng, 20)
	bad.ValuesOnly = true
	bad.Vectors = true
	if _, err := c.Solve(context.Background(), bad); !errors.Is(err, eigen.ErrBadInput) {
		t.Fatalf("values_only+vectors through coordinator: err=%v, want ErrBadInput", err)
	}

	// Mixed-class batches die at the coordinator, before any worker attempt.
	mixedJobs := []SolveRequest{*req, *randomRequest(rng, 30)}
	if _, err := c.SolveBatch(context.Background(), &BatchRequest{Jobs: mixedJobs}); !errors.Is(err, eigen.ErrBadInput) {
		t.Fatalf("mixed-class batch through coordinator: err=%v, want ErrBadInput", err)
	}

	// Partition the only worker away: the degraded-local tier must still
	// serve the values_only class, vectors-free.
	w.gate.down.Store(true)
	req2 := randomRequest(rng, 160)
	req2.ValuesOnly = true
	resp2, err := c.Solve(context.Background(), req2)
	if err != nil {
		t.Fatalf("degraded-local values_only solve: %v", err)
	}
	checkSpectrum(t, req2, resp2)
	if len(resp2.Vectors) != 0 {
		t.Errorf("degraded-local values_only response carries vectors")
	}
	if resp2.Worker != "local" {
		t.Errorf("worker %q, want local (the only worker is partitioned)", resp2.Worker)
	}
}
