package cluster

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestClusterPartitionChaos is the acceptance gate of the cluster tier (make
// stress-cluster): 3 workers serve a mixed-size workload from 16 concurrent
// clients while one worker is partitioned away mid-load and revived later.
// Invariants:
//
//   - zero lost jobs: every job ends in exactly one served disposition, with
//     a full ascending spectrum — no errors, no unclassified outcomes;
//   - the dead worker's breaker opens, receives no further solve traffic
//     while open, and re-closes through the prober's half-open probe after
//     revival;
//   - the revived worker serves jobs again;
//   - the coordinator drains cleanly and leaks no goroutines.
func TestClusterPartitionChaos(t *testing.T) {
	before := runtime.NumGoroutine()
	var workers []*testWorker
	var urls []string
	for i := 0; i < 3; i++ {
		w := newTestWorker(workerServerConfig())
		defer w.close()
		workers = append(workers, w)
		urls = append(urls, w.ts.URL)
	}
	c, err := NewCoordinator(testCoordConfig(urls, nil))
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer c.Shutdown(context.Background())

	const jobs = 220
	const clients = 16
	sizes := []int{16, 48, 120, 300} // 300 > SmallN exercises least-loaded routing
	rng := rand.New(rand.NewSource(99))
	reqs := make([]*SolveRequest, jobs)
	for i := range reqs {
		reqs[i] = randomRequest(rng, sizes[i%len(sizes)])
		if i%7 == 0 {
			reqs[i].Vectors = true
		}
	}

	victim := c.workers[1]
	var completed atomic.Int64
	var killed, revived atomic.Bool
	dispositions := make([]string, jobs)
	errs := make([]error, jobs)

	// The partition controller kills worker 1 mid-load and revives it once
	// its breaker has opened and the load has moved on.
	ctrl := make(chan struct{})
	go func() {
		defer close(ctrl)
		for completed.Load() < 70 {
			time.Sleep(time.Millisecond)
		}
		workers[1].gate.down.Store(true)
		killed.Store(true)
		for victim.breakerState() != "open" {
			time.Sleep(time.Millisecond)
		}
		for completed.Load() < 150 {
			time.Sleep(time.Millisecond)
		}
		workers[1].gate.down.Store(false)
		revived.Store(true)
	}()

	next := make(chan int, jobs)
	for i := 0; i < jobs; i++ {
		next <- i
	}
	close(next)
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				resp, err := c.Solve(context.Background(), reqs[i])
				errs[i] = err
				if resp != nil {
					dispositions[i] = resp.Disposition
					if err == nil {
						checkSpectrum(t, reqs[i], resp)
					}
				}
				completed.Add(1)
			}
		}()
	}
	wg.Wait()
	<-ctrl
	if !killed.Load() || !revived.Load() {
		t.Fatal("partition controller never ran; the workload finished too fast to chaos-test")
	}

	// Zero lost jobs: every job served, every disposition classified.
	served := map[string]int{}
	for i := 0; i < jobs; i++ {
		if errs[i] != nil {
			t.Fatalf("job %d (n=%d): lost to error %v", i, len(reqs[i].D), errs[i])
		}
		switch dispositions[i] {
		case "completed", "retried-then-completed", "failed-over", "degraded-local":
			served[dispositions[i]]++
		default:
			t.Fatalf("job %d: unclassified disposition %q", i, dispositions[i])
		}
	}
	total := 0
	for _, n := range served {
		total += n
	}
	if total != jobs {
		t.Fatalf("%d of %d jobs classified", total, jobs)
	}

	st := c.Stats()
	if st.Failed != 0 {
		t.Errorf("%d jobs failed; the degradation ladder must always serve", st.Failed)
	}
	if st.BreakerOpens < 1 {
		t.Errorf("breaker never opened across a partition (opens=%d)", st.BreakerOpens)
	}

	// The revived worker's breaker re-closes through the half-open probe...
	waitFor(t, 5*time.Second, "victim breaker to re-close", func() bool {
		return victim.breakerState() == "closed"
	})
	if st := c.Stats(); st.BreakerCloses < 1 {
		t.Errorf("breaker never re-closed after revival (closes=%d)", st.BreakerCloses)
	}
	// ...and it serves jobs again: small-problem affinity spreads over all
	// three workers, so a handful of fresh problems must hit the victim.
	post := rand.New(rand.NewSource(777))
	backOnline := false
	for i := 0; i < 50 && !backOnline; i++ {
		resp, err := c.Solve(context.Background(), randomRequest(post, 32))
		if err != nil {
			t.Fatalf("post-revival job: %v", err)
		}
		backOnline = resp.Worker == victim.name
	}
	if !backOnline {
		t.Error("revived worker never served again in 50 post-revival jobs")
	}

	t.Logf("chaos: %v retries=%d localSolves=%d breakerOpens=%d breakerCloses=%d",
		served, st.Retries, st.LocalSolves, st.BreakerOpens, st.BreakerCloses)

	if _, err := c.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for _, w := range workers {
		w.close()
	}
	checkGoroutines(t, before)
}

// TestClusterAllWorkersDown: with every worker partitioned away the
// coordinator keeps serving through its degraded-local tier and stays
// responsive over HTTP; reviving one worker restores remote serving.
func TestClusterAllWorkersDown(t *testing.T) {
	before := runtime.NumGoroutine()
	var workers []*testWorker
	var urls []string
	for i := 0; i < 2; i++ {
		w := newTestWorker(workerServerConfig())
		defer w.close()
		workers = append(workers, w)
		urls = append(urls, w.ts.URL)
	}
	c, err := NewCoordinator(testCoordConfig(urls, nil))
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer c.Shutdown(context.Background())
	ts := httptest.NewServer(NewCoordinatorHandler(c, HTTPConfig{Logf: discardLogf}))
	defer ts.Close()

	for _, w := range workers {
		w.gate.down.Store(true)
	}
	waitFor(t, 5*time.Second, "all breakers to open", func() bool {
		for _, w := range c.workers {
			if w.breakerState() != "open" {
				return false
			}
		}
		return true
	})

	// 20 concurrent jobs against a dead cluster: all must complete through
	// the local tier without a single remote attempt (no worker is routable).
	rng := rand.New(rand.NewSource(55))
	reqs := make([]*SolveRequest, 20)
	for i := range reqs {
		reqs[i] = randomRequest(rng, 16+8*i)
	}
	var wg sync.WaitGroup
	resps := make([]*SolveResponse, len(reqs))
	errs := make([]error, len(reqs))
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = c.Solve(context.Background(), reqs[i])
		}(i)
	}
	wg.Wait()
	for i := range reqs {
		if errs[i] != nil {
			t.Fatalf("job %d with all workers down: %v", i, errs[i])
		}
		checkSpectrum(t, reqs[i], resps[i])
		if resps[i].Disposition != "degraded-local" || resps[i].Worker != "local" {
			t.Fatalf("job %d: disposition=%q worker=%q, want degraded-local/local",
				i, resps[i].Disposition, resps[i].Worker)
		}
	}
	st := c.Stats()
	if st.DegradedLocal < int64(len(reqs)) || st.LocalSolves < int64(len(reqs)) {
		t.Errorf("degraded-local=%d localSolves=%d, want ≥ %d", st.DegradedLocal, st.LocalSolves, len(reqs))
	}
	if st.Failed != 0 {
		t.Errorf("%d jobs failed with the local tier available", st.Failed)
	}

	// The coordinator itself stays alive and observable over HTTP.
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s with all workers down: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d, want 200", path, resp.StatusCode)
		}
	}
	hr, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	var hst Stats
	if err := json.NewDecoder(hr.Body).Decode(&hst); err != nil {
		t.Fatalf("decode /stats: %v", err)
	}
	hr.Body.Close()
	for _, ws := range hst.Workers {
		if ws.Breaker == "closed" {
			t.Errorf("worker %s reports a closed breaker while partitioned", ws.Name)
		}
	}

	// Revive one worker: its breaker re-closes via the half-open probe and
	// remote serving resumes.
	workers[0].gate.down.Store(false)
	waitFor(t, 5*time.Second, "revived breaker to close", func() bool {
		return c.workers[0].breakerState() == "closed"
	})
	resp, err := c.Solve(context.Background(), randomRequest(rng, 300))
	if err != nil {
		t.Fatalf("post-revival solve: %v", err)
	}
	if resp.Worker != c.workers[0].name {
		t.Errorf("post-revival job served by %q, want %q", resp.Worker, c.workers[0].name)
	}

	if _, err := c.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	ts.Close()
	for _, w := range workers {
		w.close()
	}
	checkGoroutines(t, before)
}
