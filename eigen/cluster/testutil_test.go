package cluster

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"tridiag/eigen"
)

// partitionGate simulates a network partition in front of one worker: while
// down, every connection is hijacked and closed abruptly, so the client sees
// a connection reset/EOF — the transport failure a dead host produces —
// rather than a graceful HTTP error. Flipping the flag back "revives" the
// worker on the same address, which real kill/restart tests cannot do
// without racing on port reuse.
type partitionGate struct {
	down atomic.Bool
	next http.Handler
}

func (g *partitionGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if g.down.Load() {
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		panic(http.ErrAbortHandler)
	}
	g.next.ServeHTTP(w, r)
}

// testWorker is one in-process worker: a real eigen.Server behind the real
// worker HTTP handler, fronted by a partition gate on an httptest listener.
type testWorker struct {
	srv  *eigen.Server
	gate *partitionGate
	ts   *httptest.Server
}

func newTestWorker(cfg eigen.ServerConfig) *testWorker {
	s := eigen.NewServer(cfg)
	gate := &partitionGate{next: NewWorkerHandler(s, HTTPConfig{Logf: discardLogf})}
	return &testWorker{srv: s, gate: gate, ts: httptest.NewServer(gate)}
}

func (w *testWorker) close() {
	w.gate.down.Store(false) // let the listener shut down cleanly
	w.srv.Shutdown(context.Background())
	w.ts.Close()
}

// discardLogf swallows handler diagnostics: partition tests tear connections
// down on purpose, and t.Logf would race test completion on stragglers.
func discardLogf(string, ...any) {}

func workerServerConfig() eigen.ServerConfig {
	return eigen.ServerConfig{
		MaxConcurrent: 4,
		MaxQueue:      256,
		StallWindow:   time.Minute,
		MaxRetries:    1,
		RetryBase:     time.Millisecond,
	}
}

// testCoordConfig is the suite's fast-timing coordinator: probes every 20ms,
// breakers open after 3 failures and rest 150ms, so partition→open and
// revive→half-open→closed transitions complete in tens of milliseconds.
func testCoordConfig(urls []string, client *http.Client) Config {
	return Config{
		Workers:          urls,
		Client:           client,
		Local:            eigen.NewServer(eigen.ServerConfig{MaxConcurrent: 2, MaxQueue: 256, StallWindow: time.Minute}),
		ProbeInterval:    20 * time.Millisecond,
		ProbeTimeout:     500 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  150 * time.Millisecond,
		MaxAttempts:      4,
		RetryBase:        time.Millisecond,
		AttemptTimeout:   30 * time.Second,
		SmallN:           256,
		MaxInflight:      1024,
	}
}

func randomRequest(rng *rand.Rand, n int) *SolveRequest {
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = 2 * rng.NormFloat64()
	}
	for i := range e {
		e[i] = rng.NormFloat64()
	}
	return &SolveRequest{D: d, E: e}
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %v waiting for %s", timeout, what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		now := runtime.NumGoroutine()
		if now <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, now, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// checkSpectrum asserts the basic contract of a served job: n values,
// ascending.
func checkSpectrum(t *testing.T, req *SolveRequest, resp *SolveResponse) {
	t.Helper()
	n := len(req.D)
	if resp.N != n || len(resp.Values) != n {
		t.Fatalf("response n=%d values=%d, want %d", resp.N, len(resp.Values), n)
	}
	for i := 1; i < n; i++ {
		if resp.Values[i] < resp.Values[i-1] {
			t.Fatalf("values not ascending at %d: %g < %g", i, resp.Values[i], resp.Values[i-1])
		}
	}
}
