// Package cluster scales the eigen.Server solve service across processes: a
// coordinator routes solve jobs to a set of worker eigserve instances and
// keeps serving through worker failures.
//
// The hard part of a sharded solve tier is not routing — it is surviving a
// worker dying mid-solve without losing the job. The coordinator lifts the
// in-process resilience ladder of eigen.Server (retry → degrade → classify,
// with every job ending in exactly one disposition) to the cluster level:
//
//   - Routing: small solves go through a consistent-hash ring keyed on the
//     problem content (cache/affinity for repeated systems); large solves go
//     to the least-loaded worker, estimated from the coordinator's own
//     in-flight counts plus each worker's polled /stats.
//   - Health: a per-worker prober hits /healthz on an interval and keeps a
//     failure EWMA; routing prefers healthy workers.
//   - Circuit breakers: per-worker, fed by transport-level failures from
//     jobs and probes alike (classified with the same duck-typed
//     Transient()/TaskClass() convention as quark.TaskError and
//     faultinject). An open worker gets no traffic; after the cooldown the
//     prober's half-open probe decides between re-closing and another
//     cooldown.
//   - Failover: a job whose attempt dies from a timeout, connection reset,
//     truncated response or 5xx is retried with bounded exponential backoff
//     on a surviving worker.
//   - Degraded-local tier: when every worker is down or open-circuit (or a
//     job exhausts its remote attempts on transient failures), the
//     coordinator solves in-process through its own eigen.Server, so the
//     cluster keeps answering with zero live workers.
//   - Drain: Shutdown stops admission, lets in-flight remote jobs finish
//     (cancelling them only at the drain deadline) and aggregates the final
//     dispositions per worker, alongside the local tier's own DrainReport.
//
// Every job ends in exactly one Disposition: completed, retried-then-
// completed, failed-over, degraded-local, rejected, cancelled or failed.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tridiag/eigen"
	"tridiag/internal/faultinject"
)

// Config tunes a Coordinator; zero values select the documented defaults.
type Config struct {
	// Workers lists the base URLs of the worker eigserve instances
	// ("http://host:port"). At least one is required.
	Workers []string
	// Local is the degraded-local solve tier. Nil: NewCoordinator creates
	// one with default ServerConfig. Either way the coordinator owns it from
	// then on — Shutdown drains it and includes its DrainReport.
	Local *eigen.Server
	// Client is the HTTP client for all worker traffic (default: keep-alive
	// transport with a 5s dial timeout).
	Client *http.Client
	// ProbeInterval is the per-worker /healthz cadence (default 250ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe (default 1s).
	ProbeTimeout time.Duration
	// BreakerThreshold opens a worker's circuit after this many consecutive
	// transport-level failures (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rests before the half-open
	// probe (default 2s).
	BreakerCooldown time.Duration
	// MaxAttempts bounds the remote attempts per job — the first try plus
	// failovers/retries (default 3). A job that exhausts them on transient
	// failures degrades to the local tier.
	MaxAttempts int
	// RetryBase is the first failover backoff delay; attempt k waits
	// RetryBase·2^(k-1) with ±50% jitter, capped at 16×RetryBase
	// (default 10ms).
	RetryBase time.Duration
	// AttemptTimeout caps one remote attempt (default 60s) so a hung worker
	// turns into a failover instead of a stuck job. It must exceed the
	// worst-case solve the cluster is expected to serve; negative disables
	// the cap (jobs then rely on their own deadlines).
	AttemptTimeout time.Duration
	// SmallN is the affinity threshold: jobs with n ≤ SmallN route by
	// consistent hash of the problem content, larger jobs go least-loaded
	// (default 256).
	SmallN int
	// HashReplicas is the virtual-node count per worker on the ring
	// (default 64).
	HashReplicas int
	// MaxInflight bounds coordinator-admitted unfinished jobs (default 256);
	// beyond it jobs are rejected with eigen.ErrOverloaded.
	MaxInflight int
}

func (c Config) withDefaults() Config {
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{
			DialContext:         (&net.Dialer{Timeout: 5 * time.Second}).DialContext,
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 10 * time.Millisecond
	}
	if c.AttemptTimeout == 0 {
		c.AttemptTimeout = 60 * time.Second
	}
	if c.SmallN <= 0 {
		c.SmallN = 256
	}
	if c.HashReplicas <= 0 {
		c.HashReplicas = 64
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 256
	}
	return c
}

// Disposition classifies how the coordinator finished with a job. Every
// Solve call ends in exactly one disposition.
type Disposition int

const (
	// DispositionCompleted: served by the first worker tried, first attempt.
	DispositionCompleted Disposition = iota
	// DispositionRetried: served remotely after at least one retry on the
	// same worker (the only one available at the time).
	DispositionRetried
	// DispositionFailedOver: served by a different worker than the first
	// attempt after that attempt died (timeout, connection reset, 5xx).
	DispositionFailedOver
	// DispositionDegradedLocal: served in-process by the coordinator's local
	// tier because no worker could.
	DispositionDegradedLocal
	// DispositionRejected: refused at admission (malformed input, overload,
	// or closed coordinator).
	DispositionRejected
	// DispositionCancelled: the job's context was cancelled, its deadline
	// expired, or the coordinator drain cancelled it.
	DispositionCancelled
	// DispositionFailed: a definitive non-retryable failure (e.g. a worker's
	// solve failed on every tier), or the local tier failed too.
	DispositionFailed

	dispositionCount = int(DispositionFailed) + 1
)

func (d Disposition) String() string {
	switch d {
	case DispositionCompleted:
		return "completed"
	case DispositionRetried:
		return "retried-then-completed"
	case DispositionFailedOver:
		return "failed-over"
	case DispositionDegradedLocal:
		return "degraded-local"
	case DispositionRejected:
		return "rejected"
	case DispositionCancelled:
		return "cancelled"
	case DispositionFailed:
		return "failed"
	}
	return fmt.Sprintf("Disposition(%d)", int(d))
}

// RemoteError is a failed remote attempt against one worker. Status is the
// HTTP status when the worker answered; 0 marks transport-level failures
// (connection refused/reset, attempt timeout, truncated response, injected
// network fault).
type RemoteError struct {
	Worker string
	Status int
	Err    error
}

func (e *RemoteError) Error() string {
	if e.Status != 0 {
		return fmt.Sprintf("cluster: worker %s: HTTP %d: %v", e.Worker, e.Status, e.Err)
	}
	return fmt.Sprintf("cluster: worker %s: %v", e.Worker, e.Err)
}

func (e *RemoteError) Unwrap() error { return e.Err }

// Transient reports whether failing over to another worker can still serve
// the job: transport failures and server-side conditions (5xx, 408, 429)
// are worth a failover, definitive client errors (4xx otherwise) are not.
// Read through faultinject.Transient, the same duck-typed convention
// quark.TaskError failures and watchdog stalls use.
func (e *RemoteError) Transient() bool {
	switch {
	case e.Status == 0:
		return true
	case e.Status >= 500:
		return true
	case e.Status == http.StatusRequestTimeout, e.Status == http.StatusTooManyRequests:
		return true
	}
	return false
}

// TaskClass attributes the failure to the worker's network path (read
// through faultinject.ClassOf; the per-worker breakers key on the worker
// directly, but logs and error chains keep the class).
func (e *RemoteError) TaskClass() string { return faultinject.NetClass(e.Worker) }

// clusterJob tracks one admitted job for the drain report. worker and
// disposition are written by the serving goroutine before close(done) and
// read only after <-done.
type clusterJob struct {
	id          uint64
	n           int
	done        chan struct{}
	worker      string // last instance attempted ("local" for the local tier)
	disposition Disposition
}

// Coordinator routes solve jobs across worker eigserve instances. Create
// with NewCoordinator, serve with Solve (or NewCoordinatorHandler over
// HTTP), stop with Shutdown.
type Coordinator struct {
	cfg     Config
	client  *http.Client
	local   *eigen.Server
	workers []*worker
	ring    hashRing

	mu       sync.Mutex
	closed   bool
	inflight int
	jobs     map[uint64]*clusterJob

	nextID      atomic.Uint64
	drainCtx    context.Context
	drainCancel context.CancelFunc
	stopProbe   chan struct{}
	probeWG     sync.WaitGroup

	counts           [dispositionCount]atomic.Int64
	admitted         atomic.Int64
	retries          atomic.Int64
	localSolves      atomic.Int64
	breakerOpens     atomic.Int64
	breakerCloses    atomic.Int64
	checksumMismatch atomic.Int64
}

// NewCoordinator validates the worker list, starts the health probers and
// returns a serving coordinator.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return nil, errors.New("cluster: no workers configured")
	}
	names := make([]string, len(cfg.Workers))
	for i, raw := range cfg.Workers {
		u, err := url.Parse(strings.TrimRight(raw, "/"))
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: worker %q is not a base URL", raw)
		}
		names[i] = u.String()
	}
	local := cfg.Local
	if local == nil {
		local = eigen.NewServer(eigen.ServerConfig{})
	}
	drainCtx, drainCancel := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:         cfg,
		client:      cfg.Client,
		local:       local,
		ring:        newRing(names, cfg.HashReplicas),
		jobs:        make(map[uint64]*clusterJob),
		drainCtx:    drainCtx,
		drainCancel: drainCancel,
		stopProbe:   make(chan struct{}),
	}
	for _, name := range names {
		c.workers = append(c.workers, &worker{name: name})
	}
	for _, w := range c.workers {
		c.probeWG.Add(1)
		go c.probeLoop(w)
	}
	return c, nil
}

// Solve runs one job through the cluster: admission, routing, the
// failover/retry ladder, and — when no worker can serve — the degraded-local
// tier. The returned response is non-nil even on error and always carries
// the job's disposition.
func (c *Coordinator) Solve(ctx context.Context, req *SolveRequest) (*SolveResponse, error) {
	n := len(req.D)
	resp := &SolveResponse{N: n, Disposition: DispositionRejected.String()}

	// Validation before admission: malformed requests are client errors, not
	// jobs — they never reach a worker or the job table.
	if _, err := ParseMethod(req.Method); err != nil {
		c.counts[DispositionRejected].Add(1)
		return resp, fmt.Errorf("%w: %v", eigen.ErrBadInput, err)
	}
	if err := req.Tri().Validate(); err != nil {
		c.counts[DispositionRejected].Add(1)
		return resp, err
	}
	if err := req.ValidateClass(); err != nil {
		c.counts[DispositionRejected].Add(1)
		return resp, fmt.Errorf("%w: %v", eigen.ErrBadInput, err)
	}

	// Admission.
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.counts[DispositionRejected].Add(1)
		return resp, eigen.ErrServerClosed
	}
	if c.inflight >= c.cfg.MaxInflight {
		inflight := c.inflight
		c.mu.Unlock()
		c.counts[DispositionRejected].Add(1)
		return resp, fmt.Errorf("%w: %d jobs in flight", eigen.ErrOverloaded, inflight)
	}
	job := &clusterJob{id: c.nextID.Add(1), n: n, done: make(chan struct{})}
	c.inflight++
	c.jobs[job.id] = job
	c.mu.Unlock()
	c.admitted.Add(1)

	disp := DispositionFailed // every exit path below overwrites this
	defer func() {
		c.mu.Lock()
		c.inflight--
		delete(c.jobs, job.id)
		c.mu.Unlock()
		c.counts[disp].Add(1)
		job.disposition = disp
		close(job.done)
	}()
	fail := func(d Disposition, err error) (*SolveResponse, error) {
		disp = d
		resp.Disposition = d.String()
		resp.Error = err.Error()
		return resp, err
	}

	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	// The drain deadline cancels in-flight work through the normal context
	// path, exactly like eigen.Server attempts.
	actx, acancel := context.WithCancel(ctx)
	defer acancel()
	stopDrain := context.AfterFunc(c.drainCtx, acancel)
	defer stopDrain()

	body, err := json.Marshal(req)
	if err != nil {
		return fail(DispositionRejected, fmt.Errorf("%w: %v", eigen.ErrBadInput, err))
	}
	key := affinityKey(req.D, req.E)
	rng := rand.New(rand.NewSource(int64(job.id)))

	tried := make(map[string]bool)
	var first string
	attempts := 0
	var lastErr error
	for attempts < c.cfg.MaxAttempts {
		w := c.route(key, n, tried)
		if w == nil {
			break // all workers down or open-circuit: degrade locally
		}
		attempts++
		tried[w.name] = true
		if first == "" {
			first = w.name
		}
		job.worker = w.name
		sr, err := c.send(actx, w, body)
		if err == nil {
			if w.noteSuccess() {
				c.breakerCloses.Add(1)
			}
			sr.Worker = w.name
			sr.Attempts = attempts
			switch {
			case attempts == 1:
				disp = DispositionCompleted
			case w.name == first && len(tried) == 1:
				disp = DispositionRetried
			default:
				disp = DispositionFailedOver
				sr.Failovers = attempts - 1
			}
			sr.Disposition = disp.String()
			return sr, nil
		}
		lastErr = err
		if actx.Err() != nil {
			return fail(DispositionCancelled, c.cancelCause(ctx))
		}
		if !faultinject.Transient(err) {
			// The worker answered and the verdict is final (e.g. the solve
			// failed on every tier): replaying it elsewhere reproduces it.
			return fail(DispositionFailed,
				fmt.Errorf("cluster: job n=%d failed on worker %s: %w", n, w.name, err))
		}
		if w.noteFailure(c.cfg.BreakerThreshold, c.cfg.BreakerCooldown) {
			c.breakerOpens.Add(1)
		}
		c.retries.Add(1)
		if !c.backoff(actx, rng, attempts) {
			return fail(DispositionCancelled, c.cancelCause(ctx))
		}
	}

	// Degraded-local tier: the coordinator's own eigen.Server, with its full
	// in-process ladder (watchdog, retries, sequential fallback tiers).
	c.localSolves.Add(1)
	job.worker = "local"
	method, _ := ParseMethod(req.Method)
	ssr, err := c.local.Solve(actx, req.Tri(), &eigen.Options{Method: method, Workers: req.Workers, ValuesOnly: req.ValuesOnly})
	if err == nil {
		disp = DispositionDegradedLocal
		out := &SolveResponse{
			N:           n,
			Values:      ssr.Result.Values,
			Disposition: disp.String(),
			Attempts:    attempts + ssr.Attempts,
			Stalls:      ssr.Stalls,
			Worker:      "local",
			Failovers:   attempts,
		}
		if req.Vectors {
			out.Vectors = ssr.Result.Vectors
		}
		if ssr.Result.Stats != nil {
			out.Tier = ssr.Result.Stats.Tier
		}
		return out, nil
	}
	if lastErr != nil {
		err = fmt.Errorf("%w (remote attempts: %v)", err, lastErr)
	}
	switch {
	case errors.Is(err, eigen.ErrOverloaded), errors.Is(err, eigen.ErrServerClosed):
		return fail(DispositionRejected, err)
	case actx.Err() != nil:
		return fail(DispositionCancelled, c.cancelCause(ctx))
	}
	return fail(DispositionFailed, fmt.Errorf("cluster: job n=%d failed on every tier: %w", n, err))
}

// SolveBatch routes a whole batch through the cluster as one unit: one
// admission slot, one routing decision, one remote request — so batch-mates
// land in the serving worker's coalescing window together and flush as one
// shared-runtime solve. Failover re-sends the entire batch to a surviving
// worker (per-matrix results come back from whichever worker finally serves
// it — zero matrices lost), and when no worker can serve, the batch degrades
// to the coordinator's local tier member by member. The batch ends in exactly
// one coordinator disposition; per-matrix dispositions ride in the results.
func (c *Coordinator) SolveBatch(ctx context.Context, req *BatchRequest) (*BatchResponse, error) {
	resp := &BatchResponse{}

	// Validation before admission, exactly like Solve: a malformed member
	// rejects the whole batch before it consumes a slot.
	if len(req.Jobs) == 0 {
		c.counts[DispositionRejected].Add(1)
		return resp, fmt.Errorf("%w: empty batch", eigen.ErrBadInput)
	}
	maxN := 0
	for i := range req.Jobs {
		if _, err := ParseMethod(req.Jobs[i].Method); err != nil {
			c.counts[DispositionRejected].Add(1)
			return resp, fmt.Errorf("%w: job %d: %v", eigen.ErrBadInput, i, err)
		}
		if err := req.Jobs[i].Tri().Validate(); err != nil {
			c.counts[DispositionRejected].Add(1)
			return resp, fmt.Errorf("job %d: %w", i, err)
		}
		if err := req.Jobs[i].ValidateClass(); err != nil {
			c.counts[DispositionRejected].Add(1)
			return resp, fmt.Errorf("%w: job %d: %v", eigen.ErrBadInput, i, err)
		}
		if req.Jobs[i].ValuesOnly != req.Jobs[0].ValuesOnly {
			c.counts[DispositionRejected].Add(1)
			return resp, fmt.Errorf("%w: job %d: batch mixes values_only and full solves", eigen.ErrBadInput, i)
		}
		if n := len(req.Jobs[i].D); n > maxN {
			maxN = n
		}
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.counts[DispositionRejected].Add(1)
		return resp, eigen.ErrServerClosed
	}
	if c.inflight >= c.cfg.MaxInflight {
		inflight := c.inflight
		c.mu.Unlock()
		c.counts[DispositionRejected].Add(1)
		return resp, fmt.Errorf("%w: %d jobs in flight", eigen.ErrOverloaded, inflight)
	}
	job := &clusterJob{id: c.nextID.Add(1), n: maxN, done: make(chan struct{})}
	c.inflight++
	c.jobs[job.id] = job
	c.mu.Unlock()
	c.admitted.Add(1)

	disp := DispositionFailed
	defer func() {
		c.mu.Lock()
		c.inflight--
		delete(c.jobs, job.id)
		c.mu.Unlock()
		c.counts[disp].Add(1)
		job.disposition = disp
		close(job.done)
	}()
	fail := func(d Disposition, err error) (*BatchResponse, error) {
		disp = d
		resp.Error = err.Error()
		return resp, err
	}

	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	actx, acancel := context.WithCancel(ctx)
	defer acancel()
	stopDrain := context.AfterFunc(c.drainCtx, acancel)
	defer stopDrain()

	body, err := json.Marshal(req)
	if err != nil {
		return fail(DispositionRejected, fmt.Errorf("%w: %v", eigen.ErrBadInput, err))
	}

	// Batches always route least-loaded: they are an aggregate, so the
	// content-affinity cache win of small single solves does not apply.
	rng := rand.New(rand.NewSource(int64(job.id)))
	tried := make(map[string]bool)
	var first string
	attempts := 0
	var lastErr error
	for attempts < c.cfg.MaxAttempts {
		w := c.route(0, c.cfg.SmallN+1, tried)
		if w == nil {
			break
		}
		attempts++
		tried[w.name] = true
		if first == "" {
			first = w.name
		}
		job.worker = w.name
		br, err := c.sendBatch(actx, w, body)
		if err == nil {
			if w.noteSuccess() {
				c.breakerCloses.Add(1)
			}
			br.Worker = w.name
			switch {
			case attempts == 1:
				disp = DispositionCompleted
			case w.name == first && len(tried) == 1:
				disp = DispositionRetried
			default:
				disp = DispositionFailedOver
				br.Failovers = attempts - 1
			}
			return br, nil
		}
		lastErr = err
		if actx.Err() != nil {
			return fail(DispositionCancelled, c.cancelCause(ctx))
		}
		if !faultinject.Transient(err) {
			return fail(DispositionFailed,
				fmt.Errorf("cluster: batch of %d failed on worker %s: %w", len(req.Jobs), w.name, err))
		}
		if w.noteFailure(c.cfg.BreakerThreshold, c.cfg.BreakerCooldown) {
			c.breakerOpens.Add(1)
		}
		c.retries.Add(1)
		if !c.backoff(actx, rng, attempts) {
			return fail(DispositionCancelled, c.cancelCause(ctx))
		}
	}

	// Degraded-local tier: the batch runs member by member through the
	// coordinator's own eigen.Server (whose coalescing window reassembles it
	// when enabled).
	c.localSolves.Add(1)
	job.worker = "local"
	results, errs := serveBatch(actx, c.local, req.Jobs)
	served := false
	var firstErr error
	for _, e := range errs {
		if e == nil {
			served = true
		} else if firstErr == nil {
			firstErr = e
		}
	}
	if served {
		disp = DispositionDegradedLocal
		resp.Results = results
		resp.Worker = "local"
		resp.Failovers = attempts
		return resp, nil
	}
	err = firstErr
	if lastErr != nil {
		err = fmt.Errorf("%w (remote attempts: %v)", err, lastErr)
	}
	switch {
	case errors.Is(err, eigen.ErrOverloaded), errors.Is(err, eigen.ErrServerClosed):
		return fail(DispositionRejected, err)
	case actx.Err() != nil:
		return fail(DispositionCancelled, c.cancelCause(ctx))
	}
	return fail(DispositionFailed, fmt.Errorf("cluster: batch of %d failed on every tier: %w", len(req.Jobs), err))
}

// sendBatch runs one remote batch attempt against w's /solve/batch, with the
// same transport-failure classification as send.
func (c *Coordinator) sendBatch(ctx context.Context, w *worker, body []byte) (*BatchResponse, error) {
	if faultinject.Active() {
		if err := faultinject.FireCtx(ctx, faultinject.NetClass(w.name)); err != nil {
			w.sent.Add(1)
			w.failures.Add(1)
			return nil, &RemoteError{Worker: w.name, Err: err}
		}
	}
	w.sent.Add(1)
	w.inflight.Add(1)
	defer w.inflight.Add(-1)
	actx := ctx
	if c.cfg.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.cfg.AttemptTimeout)
		defer cancel()
	}
	hreq, err := http.NewRequestWithContext(actx, http.MethodPost, w.name+"/solve/batch", bytes.NewReader(body))
	if err != nil {
		return nil, &RemoteError{Worker: w.name, Err: err}
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.client.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		w.failures.Add(1)
		return nil, &RemoteError{Worker: w.name, Err: err}
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 4096))
		var br BatchResponse
		text := strings.TrimSpace(string(msg))
		if json.Unmarshal(msg, &br) == nil && br.Error != "" {
			text = br.Error
		}
		w.failures.Add(1)
		return nil, &RemoteError{Worker: w.name, Status: hresp.StatusCode, Err: errors.New(text)}
	}
	var br BatchResponse
	if err := json.NewDecoder(hresp.Body).Decode(&br); err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		w.failures.Add(1)
		return nil, &RemoteError{Worker: w.name, Err: fmt.Errorf("truncated response: %w", err)}
	}
	// Every served member's spectrum seal is verified; one corrupted member
	// fails the whole batch over (the batch is the routing unit, and the
	// re-sent batch recomputes every member on the surviving worker).
	for i := range br.Results {
		if err := c.verifyChecksum(w, &br.Results[i]); err != nil {
			return nil, err
		}
	}
	return &br, nil
}

// route picks the worker for the next attempt: breaker-closed workers not
// yet tried, by content-hash affinity for small jobs and least load for
// large ones, preferring probe-healthy workers. When every available worker
// has been tried, a same-worker retry is allowed. Open-circuit workers are
// never routed — their revival goes through the prober's half-open probe.
func (c *Coordinator) route(key uint64, n int, tried map[string]bool) *worker {
	passes := []func(*worker) bool{
		func(w *worker) bool { return !tried[w.name] && w.healthy() },
		func(w *worker) bool { return !tried[w.name] && w.available() },
		func(w *worker) bool { return w.available() },
	}
	for _, ok := range passes {
		if n <= c.cfg.SmallN {
			if i := c.ring.pick(key, func(i int) bool { return ok(c.workers[i]) }); i >= 0 {
				return c.workers[i]
			}
			continue
		}
		var best *worker
		var bestLoad int64
		for _, w := range c.workers {
			if !ok(w) {
				continue
			}
			if l := w.load(); best == nil || l < bestLoad {
				best, bestLoad = w, l
			}
		}
		if best != nil {
			return best
		}
	}
	return nil
}

// send runs one remote attempt. Transport-level failures — including a
// worker dying mid-response — come back as transient *RemoteError; a job
// whose own context fired comes back as that context's error.
func (c *Coordinator) send(ctx context.Context, w *worker, body []byte) (*SolveResponse, error) {
	if faultinject.Active() {
		if err := faultinject.FireCtx(ctx, faultinject.NetClass(w.name)); err != nil {
			w.sent.Add(1)
			w.failures.Add(1)
			return nil, &RemoteError{Worker: w.name, Err: err}
		}
	}
	w.sent.Add(1)
	w.inflight.Add(1)
	defer w.inflight.Add(-1)
	actx := ctx
	if c.cfg.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.cfg.AttemptTimeout)
		defer cancel()
	}
	hreq, err := http.NewRequestWithContext(actx, http.MethodPost, w.name+"/solve", bytes.NewReader(body))
	if err != nil {
		return nil, &RemoteError{Worker: w.name, Err: err}
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.client.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err() // the job died, not the worker
		}
		w.failures.Add(1)
		return nil, &RemoteError{Worker: w.name, Err: err}
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		// Error payloads are small: JSON with an "error" field from the
		// solve path, plain text from http.Error rejections.
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 4096))
		var sr SolveResponse
		text := strings.TrimSpace(string(msg))
		if json.Unmarshal(msg, &sr) == nil && sr.Error != "" {
			text = sr.Error
		}
		w.failures.Add(1)
		return nil, &RemoteError{Worker: w.name, Status: hresp.StatusCode, Err: errors.New(text)}
	}
	var sr SolveResponse
	if err := json.NewDecoder(hresp.Body).Decode(&sr); err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		w.failures.Add(1)
		return nil, &RemoteError{Worker: w.name, Err: fmt.Errorf("truncated response: %w", err)}
	}
	if err := c.verifyChecksum(w, &sr); err != nil {
		return nil, err
	}
	return &sr, nil
}

// verifyChecksum recomputes the worker's spectrum seal over the decoded
// payload. A mismatch means the eigenvalues were corrupted somewhere between
// the worker's solve and this decode — wire, proxy, or encoder — and is
// classified as transient corruption so the ladder fails over to another
// worker instead of shipping the damaged spectrum. Responses without a seal
// (Checksum 0: error responses, workers predating the field) pass.
func (c *Coordinator) verifyChecksum(w *worker, sr *SolveResponse) error {
	if sr.Error != "" || sr.Checksum == 0 {
		return nil
	}
	if got := SpectrumChecksum(sr.Values); got != sr.Checksum {
		c.checksumMismatch.Add(1)
		w.failures.Add(1)
		return &RemoteError{Worker: w.name, Err: &eigen.CorruptionError{
			Check: "response-checksum",
			Detail: fmt.Sprintf("worker %s: spectrum checksum %#x does not match response seal %#x (%d values)",
				w.name, got, sr.Checksum, len(sr.Values)),
		}}
	}
	return nil
}

// backoff sleeps the exponential-with-jitter failover delay, drawing the
// jitter from the job's own seeded stream (no process-global RNG contention,
// reproducible per job); false means the job's context (or the drain) fired
// first.
func (c *Coordinator) backoff(ctx context.Context, rng *rand.Rand, attempt int) bool {
	d := c.cfg.RetryBase << uint(min(attempt-1, 4)) // cap at 16×base
	d = d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
	tm := time.NewTimer(d)
	defer tm.Stop()
	select {
	case <-tm.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// cancelCause picks the context error a cancelled job reports: the job's own
// context if it fired, else the coordinator drain.
func (c *Coordinator) cancelCause(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return fmt.Errorf("%w: drained mid-job", eigen.ErrServerClosed)
}

// probeLoop drives one worker's health probes until Shutdown.
func (c *Coordinator) probeLoop(w *worker) {
	defer c.probeWG.Done()
	tk := time.NewTicker(c.cfg.ProbeInterval)
	defer tk.Stop()
	for {
		select {
		case <-c.stopProbe:
			return
		case <-tk.C:
		}
		c.probe(w)
	}
}

// probe runs one /healthz round trip: it feeds the failure EWMA, drives the
// breaker (probe failures count like job failures; a success after the
// cooldown is the half-open probe that re-closes the circuit), and — when
// healthy — refreshes the worker's /stats load snapshot for the
// least-loaded router.
func (c *Coordinator) probe(w *worker) {
	if w.coolingDown() {
		return // open circuit: wait out the cooldown before the half-open probe
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	defer cancel()
	err := c.get(ctx, w, "/healthz", nil)
	w.noteProbe(err)
	if err != nil {
		if w.noteFailure(c.cfg.BreakerThreshold, c.cfg.BreakerCooldown) {
			c.breakerOpens.Add(1)
		}
		return
	}
	if w.noteSuccess() {
		c.breakerCloses.Add(1)
	}
	var st eigen.ServerStats
	sctx, scancel := context.WithTimeout(context.Background(), c.cfg.ProbeTimeout)
	defer scancel()
	if err := c.get(sctx, w, "/stats", &st); err == nil {
		w.noteStats(st.Queued, st.Running)
	}
}

// get is the probe-path GET helper (also subject to injected network
// faults, so a simulated partition blinds the prober too).
func (c *Coordinator) get(ctx context.Context, w *worker, path string, out any) error {
	if faultinject.Active() {
		if err := faultinject.FireCtx(ctx, faultinject.NetClass(w.name)); err != nil {
			return err
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.name+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	return nil
}

// Draining reports whether Shutdown has been called (the /readyz signal).
func (c *Coordinator) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// WorkerStatus is one worker's row in the coordinator stats.
type WorkerStatus struct {
	Name string
	// Breaker is the circuit state: "closed", "open" or "half-open".
	Breaker string
	// Healthy reports a closed breaker plus a clean probe-failure EWMA.
	Healthy       bool
	ProbeFailEWMA float64
	LastProbeErr  string `json:",omitempty"`
	// Inflight is the coordinator's own in-flight count on this worker;
	// Queued/Running are the worker's last self-reported load.
	Inflight        int64
	Queued, Running int
	// Sent and Failures count solve attempts routed here and the
	// transport-level failures among them.
	Sent, Failures int64
}

// Stats is a snapshot of the coordinator counters.
type Stats struct {
	// Admitted counts jobs that passed admission control.
	Admitted int64
	// Per-disposition totals.
	Completed, Retried, FailedOver, DegradedLocal, Rejected, Cancelled, Failed int64
	// Retries counts abandoned remote attempts (failovers and same-worker
	// retries).
	Retries int64
	// LocalSolves counts jobs that reached the degraded-local tier.
	LocalSolves int64
	// BreakerOpens / BreakerCloses count circuit transitions.
	BreakerOpens, BreakerCloses int64
	// ChecksumMismatches counts remote responses whose spectrum seal failed
	// verification — corruption caught between a worker's solve and this
	// coordinator's decode, each one failed over instead of shipped.
	ChecksumMismatches int64
	// Inflight is the number of admitted, unfinished jobs.
	Inflight int
	Workers  []WorkerStatus
	// Local is the degraded-local tier's full eigen.ServerStats snapshot —
	// most importantly its LeakedBytes ledger, pool gauges
	// (PoolInUseBytes/PoolRetainedBytes) and corruption counters, which a
	// fleet operator could not otherwise see through the coordinator's
	// /stats endpoint.
	Local eigen.ServerStats
}

// Stats returns a snapshot of the coordinator counters.
func (c *Coordinator) Stats() Stats {
	st := Stats{
		Admitted:           c.admitted.Load(),
		Completed:          c.counts[DispositionCompleted].Load(),
		Retried:            c.counts[DispositionRetried].Load(),
		FailedOver:         c.counts[DispositionFailedOver].Load(),
		DegradedLocal:      c.counts[DispositionDegradedLocal].Load(),
		Rejected:           c.counts[DispositionRejected].Load(),
		Cancelled:          c.counts[DispositionCancelled].Load(),
		Failed:             c.counts[DispositionFailed].Load(),
		Retries:            c.retries.Load(),
		LocalSolves:        c.localSolves.Load(),
		BreakerOpens:       c.breakerOpens.Load(),
		BreakerCloses:      c.breakerCloses.Load(),
		ChecksumMismatches: c.checksumMismatch.Load(),
		Local:              c.local.Stats(),
	}
	c.mu.Lock()
	st.Inflight = c.inflight
	c.mu.Unlock()
	for _, w := range c.workers {
		ws := WorkerStatus{
			Name:     w.name,
			Breaker:  w.breakerState(),
			Healthy:  w.healthy(),
			Inflight: w.inflight.Load(),
			Sent:     w.sent.Load(),
			Failures: w.failures.Load(),
		}
		w.mu.Lock()
		ws.ProbeFailEWMA = w.ewma
		ws.LastProbeErr = w.lastProbeErr
		ws.Queued, ws.Running = w.queued, w.running
		w.mu.Unlock()
		st.Workers = append(st.Workers, ws)
	}
	return st
}

// JobReport is one job's final disposition in a drain report.
type JobReport struct {
	ID          uint64
	N           int
	Disposition Disposition
}

// WorkerDrain groups the drain-time in-flight jobs of one instance
// ("local" for the degraded-local tier, "" for jobs still unrouted).
type WorkerDrain struct {
	Worker string
	Jobs   []JobReport
}

// DrainReport aggregates a coordinator drain: the final dispositions of the
// jobs that were in flight when Shutdown was called, grouped per worker,
// plus the local tier's own eigen drain report.
type DrainReport struct {
	Workers []WorkerDrain
	Local   *eigen.DrainReport
}

// Shutdown drains the coordinator: admission stops immediately (new jobs get
// eigen.ErrServerClosed), in-flight jobs run to completion, and jobs still
// unfinished when ctx fires are cancelled through their attempt contexts.
// The health probers stop and the local tier is drained under the same
// deadline. Returns ctx.Err() when the deadline forced cancellations.
// Shutdown is idempotent; later calls return an empty report.
func (c *Coordinator) Shutdown(ctx context.Context) (*DrainReport, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return &DrainReport{}, nil
	}
	c.closed = true
	inflight := make([]*clusterJob, 0, len(c.jobs))
	for _, j := range c.jobs {
		inflight = append(inflight, j)
	}
	c.mu.Unlock()
	sort.Slice(inflight, func(i, j int) bool { return inflight[i].id < inflight[j].id })

	done := make(chan struct{})
	go func() {
		for _, j := range inflight {
			<-j.done
		}
		close(done)
	}()
	var ctxErr error
	select {
	case <-done:
	case <-ctx.Done():
		ctxErr = ctx.Err()
		c.drainCancel()
		// Cancellation aborts every in-flight attempt (remote HTTP calls and
		// local solves share the drain context), so this second wait is short.
		<-done
	}
	c.drainCancel()
	close(c.stopProbe)
	c.probeWG.Wait()
	c.client.CloseIdleConnections()

	// The local tier drains under whatever remains of the same deadline; an
	// already-expired ctx just cancels its leftovers immediately.
	lrep, _ := c.local.Shutdown(ctx)

	byWorker := make(map[string][]JobReport)
	var order []string
	for _, j := range inflight {
		if _, seen := byWorker[j.worker]; !seen {
			order = append(order, j.worker)
		}
		byWorker[j.worker] = append(byWorker[j.worker],
			JobReport{ID: j.id, N: j.n, Disposition: j.disposition})
	}
	sort.Strings(order)
	rep := &DrainReport{Local: lrep}
	for _, name := range order {
		rep.Workers = append(rep.Workers, WorkerDrain{Worker: name, Jobs: byWorker[name]})
	}
	return rep, ctxErr
}
