package cluster

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// hashRing is a consistent-hash ring over worker indices: each worker owns
// `replicas` pseudo-random points on the 64-bit circle, and a key is served
// by the first eligible worker clockwise from it. Small solves route through
// it so repeated problems land on the same worker's warm caches, and a
// worker going down only redistributes its own arc instead of reshuffling
// every key.
type hashRing struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	worker int
}

func newRing(names []string, replicas int) hashRing {
	pts := make([]ringPoint, 0, len(names)*replicas)
	for i, name := range names {
		for r := 0; r < replicas; r++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s#%d", name, r)
			pts = append(pts, ringPoint{hash: h.Sum64(), worker: i})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].hash != pts[j].hash {
			return pts[i].hash < pts[j].hash
		}
		return pts[i].worker < pts[j].worker
	})
	return hashRing{points: pts}
}

// pick walks clockwise from key and returns the first worker for which
// eligible reports true, or -1 when none qualifies. Each worker is consulted
// at most once per walk.
func (rg hashRing) pick(key uint64, eligible func(worker int) bool) int {
	if len(rg.points) == 0 {
		return -1
	}
	start := sort.Search(len(rg.points), func(i int) bool { return rg.points[i].hash >= key })
	seen := make(map[int]bool)
	for k := 0; k < len(rg.points); k++ {
		p := rg.points[(start+k)%len(rg.points)]
		if seen[p.worker] {
			continue
		}
		seen[p.worker] = true
		if eligible(p.worker) {
			return p.worker
		}
	}
	return -1
}

// affinityKey hashes a problem's content (not its identity) so resubmissions
// of the same small system — parameter sweeps, iterative refinement loops —
// keep hitting the same worker.
func affinityKey(d, e []float64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range d {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h.Write(b[:])
	}
	for _, v := range e {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h.Write(b[:])
	}
	return h.Sum64()
}
