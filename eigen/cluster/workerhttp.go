package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"

	"tridiag/eigen"
)

// HTTPConfig tunes an HTTP front end (worker or coordinator); zero values
// select the documented defaults.
type HTTPConfig struct {
	// MaxBodyBytes caps the /solve request body (default 64 MiB). Larger
	// bodies are rejected with 413 before the decoder buffers them.
	MaxBodyBytes int64
	// Logf sinks handler diagnostics — most importantly response-encode
	// failures, which happen after the status line is committed and would
	// otherwise vanish (default log.Printf).
	Logf func(format string, args ...any)
}

func (c HTTPConfig) withDefaults() HTTPConfig {
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// NewWorkerHandler exposes an eigen.Server over HTTP — the worker side of
// the cluster tier, and the whole API of a standalone eigserve:
//
//	POST /solve        run one job ({"d": [...], "e": [...], ...})
//	POST /solve/batch  run a batch ({"jobs": [{...}, ...]}) as one unit,
//	                   per-matrix results in job order
//	GET  /stats    the server's ServerStats counters
//	GET  /healthz  liveness: 200 while the process can answer at all
//	GET  /readyz   readiness: 503 once a drain has started or the queue
//	               is full, 200 otherwise
//
// Coordinators probe /healthz and poll /stats for load; deployments point
// load-balancer health checks at /readyz.
func NewWorkerHandler(s *eigen.Server, cfg HTTPConfig) http.Handler {
	cfg = cfg.withDefaults()
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", workerSolveHandler(s, cfg))
	mux.HandleFunc("/solve/batch", workerBatchHandler(s, cfg))
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if !requireMethod(w, r, http.MethodGet) {
			return
		}
		writeJSON(w, http.StatusOK, s.Stats(), cfg.Logf)
	})
	mux.HandleFunc("/healthz", healthzHandler)
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !requireMethod(w, r, http.MethodGet) {
			return
		}
		switch {
		case s.Draining():
			http.Error(w, "draining", http.StatusServiceUnavailable)
		case s.QueueFull():
			http.Error(w, "queue full", http.StatusServiceUnavailable)
		default:
			fmt.Fprintln(w, "ok")
		}
	})
	return mux
}

func workerSolveHandler(s *eigen.Server, cfg HTTPConfig) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		req, ok := decodeSolveRequest(w, r, cfg)
		if !ok {
			return
		}
		ctx := r.Context()
		if req.TimeoutMS > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
			defer cancel()
		}
		method, _ := ParseMethod(req.Method) // validated by decodeSolveRequest
		sr, err := s.Solve(ctx, req.Tri(), &eigen.Options{Method: method, Workers: req.Workers, ValuesOnly: req.ValuesOnly})
		resp := SolveResponse{
			N:           req.Tri().N(),
			Disposition: sr.Disposition.String(),
			Attempts:    sr.Attempts,
			Stalls:      sr.Stalls,
		}
		if err != nil {
			resp.Error = err.Error()
		} else {
			resp.Values = sr.Result.Values
			resp.Checksum = SpectrumChecksum(resp.Values)
			if req.Vectors {
				resp.Vectors = sr.Result.Vectors
			}
			if sr.Result.Stats != nil {
				resp.Tier = sr.Result.Stats.Tier
			}
		}
		writeJSON(w, StatusOf(err), &resp, cfg.Logf)
	}
}

func workerBatchHandler(s *eigen.Server, cfg HTTPConfig) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		req, ok := decodeBatchRequest(w, r, cfg)
		if !ok {
			return
		}
		ctx := r.Context()
		if req.TimeoutMS > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
			defer cancel()
		}
		results, errs := serveBatch(ctx, s, req.Jobs)
		writeJSON(w, batchStatus(errs), &BatchResponse{Results: results}, cfg.Logf)
	}
}

// serveBatch runs every member of a decoded batch through srv concurrently —
// the members land in the server's coalescing window together and flush as
// one shared-runtime solve. Each member keeps its own options, deadline and
// disposition; the error slice is indexed like jobs.
func serveBatch(ctx context.Context, srv *eigen.Server, jobs []SolveRequest) ([]SolveResponse, []error) {
	results := make([]SolveResponse, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			job := &jobs[i]
			jctx := ctx
			if job.TimeoutMS > 0 {
				var cancel context.CancelFunc
				jctx, cancel = context.WithTimeout(ctx, time.Duration(job.TimeoutMS)*time.Millisecond)
				defer cancel()
			}
			method, _ := ParseMethod(job.Method) // validated by decodeBatchRequest
			sr, err := srv.Solve(jctx, job.Tri(), &eigen.Options{Method: method, Workers: job.Workers, ValuesOnly: job.ValuesOnly})
			resp := SolveResponse{
				N:           job.Tri().N(),
				Disposition: sr.Disposition.String(),
				Attempts:    sr.Attempts,
				Stalls:      sr.Stalls,
			}
			if err != nil {
				resp.Error = err.Error()
				errs[i] = err
			} else {
				resp.Values = sr.Result.Values
				resp.Checksum = SpectrumChecksum(resp.Values)
				if job.Vectors {
					resp.Vectors = sr.Result.Vectors
				}
				if sr.Result.Stats != nil {
					resp.Tier = sr.Result.Stats.Tier
				}
			}
			results[i] = resp
		}(i)
	}
	wg.Wait()
	return results, errs
}

// batchStatus maps a batch's member errors to the response status: any
// served member makes the batch a 200 (per-matrix errors ride inside), a
// batch where every member failed reports the first member's status so
// coordinators classify it like a single-job failure.
func batchStatus(errs []error) int {
	var first error
	for _, err := range errs {
		if err == nil {
			return http.StatusOK
		}
		if first == nil {
			first = err
		}
	}
	return StatusOf(first)
}

// decodeBatchRequest enforces the /solve/batch preconditions shared by
// workers and coordinators: POST only (405), body under MaxBodyBytes (413),
// well-formed JSON with at least one job and every member carrying a known
// method and a consistent shape (400). A malformed member rejects the whole
// batch — the coalescing tiers only ever see well-formed jobs.
func decodeBatchRequest(w http.ResponseWriter, r *http.Request, cfg HTTPConfig) (*BatchRequest, bool) {
	if !requireMethod(w, r, http.MethodPost) {
		return nil, false
	}
	r.Body = http.MaxBytesReader(w, r.Body, cfg.MaxBodyBytes)
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", mbe.Limit),
				http.StatusRequestEntityTooLarge)
			return nil, false
		}
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return nil, false
	}
	if len(req.Jobs) == 0 {
		http.Error(w, "empty batch", http.StatusBadRequest)
		return nil, false
	}
	for i := range req.Jobs {
		if _, err := ParseMethod(req.Jobs[i].Method); err != nil {
			http.Error(w, fmt.Sprintf("job %d: %v", i, err), http.StatusBadRequest)
			return nil, false
		}
		if err := req.Jobs[i].Tri().Validate(); err != nil {
			http.Error(w, fmt.Sprintf("job %d: %v", i, err), http.StatusBadRequest)
			return nil, false
		}
		if err := req.Jobs[i].ValidateClass(); err != nil {
			http.Error(w, fmt.Sprintf("job %d: %v", i, err), http.StatusBadRequest)
			return nil, false
		}
		if req.Jobs[i].ValuesOnly != req.Jobs[0].ValuesOnly {
			// A batch flushes as ONE SolveBatch with one request class; mixed
			// windows would force the coalescer to split what the client
			// asked to run as a unit.
			http.Error(w, fmt.Sprintf("job %d: batch mixes values_only and full solves", i), http.StatusBadRequest)
			return nil, false
		}
	}
	return &req, true
}

// decodeSolveRequest enforces the /solve preconditions shared by workers and
// coordinators: POST only (405), body under MaxBodyBytes (413), well-formed
// JSON with a known method and a consistent shape (400). Malformed jobs are
// client errors — they must be rejected here, before they consume a solve
// slot and surface as spurious internal failures.
func decodeSolveRequest(w http.ResponseWriter, r *http.Request, cfg HTTPConfig) (*SolveRequest, bool) {
	if !requireMethod(w, r, http.MethodPost) {
		return nil, false
	}
	r.Body = http.MaxBytesReader(w, r.Body, cfg.MaxBodyBytes)
	var req SolveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			http.Error(w, fmt.Sprintf("request body exceeds %d bytes", mbe.Limit),
				http.StatusRequestEntityTooLarge)
			return nil, false
		}
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return nil, false
	}
	if _, err := ParseMethod(req.Method); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return nil, false
	}
	if err := req.Tri().Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return nil, false
	}
	if err := req.ValidateClass(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return nil, false
	}
	return &req, true
}

func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		http.Error(w, method+" only", http.StatusMethodNotAllowed)
		return false
	}
	return true
}

func healthzHandler(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	fmt.Fprintln(w, "ok")
}

// writeJSON commits the status line and encodes v. An encode failure at this
// point (client hung up, response write timed out) cannot change the status
// anymore, so it is logged instead of silently dropped.
func writeJSON(w http.ResponseWriter, status int, v any, logf func(string, ...any)) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		logf("cluster: encoding %d response: %v", status, err)
	}
}
