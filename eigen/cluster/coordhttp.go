package cluster

import (
	"fmt"
	"net/http"
)

// NewCoordinatorHandler exposes a Coordinator over the same HTTP surface as
// a worker, so clients cannot tell which tier they are talking to:
//
//	POST /solve        route one job through the cluster
//	POST /solve/batch  route a batch as one unit, per-matrix results back
//	GET  /stats    the coordinator's cluster Stats (per-worker breaker and
//	               health state included)
//	GET  /healthz  liveness
//	GET  /readyz   503 once a drain has started
func NewCoordinatorHandler(c *Coordinator, cfg HTTPConfig) http.Handler {
	cfg = cfg.withDefaults()
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", func(w http.ResponseWriter, r *http.Request) {
		req, ok := decodeSolveRequest(w, r, cfg)
		if !ok {
			return
		}
		resp, err := c.Solve(r.Context(), req)
		if err != nil {
			resp.Error = err.Error()
		}
		writeJSON(w, StatusOf(err), resp, cfg.Logf)
	})
	mux.HandleFunc("/solve/batch", func(w http.ResponseWriter, r *http.Request) {
		req, ok := decodeBatchRequest(w, r, cfg)
		if !ok {
			return
		}
		resp, err := c.SolveBatch(r.Context(), req)
		if err != nil {
			resp.Error = err.Error()
		}
		writeJSON(w, StatusOf(err), resp, cfg.Logf)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if !requireMethod(w, r, http.MethodGet) {
			return
		}
		writeJSON(w, http.StatusOK, c.Stats(), cfg.Logf)
	})
	mux.HandleFunc("/healthz", healthzHandler)
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !requireMethod(w, r, http.MethodGet) {
			return
		}
		if c.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}
