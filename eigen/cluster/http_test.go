package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tridiag/eigen"
	"tridiag/internal/faultinject"
)

func postSolve(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /solve: %v", err)
	}
	return resp
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

// TestWorkerHTTPMethodRejection: every endpoint rejects the wrong verb with
// 405 instead of misbehaving.
func TestWorkerHTTPMethodRejection(t *testing.T) {
	w := newTestWorker(workerServerConfig())
	defer w.close()
	cases := []struct{ method, path string }{
		{http.MethodGet, "/solve"},
		{http.MethodDelete, "/solve"},
		{http.MethodPost, "/stats"},
		{http.MethodPost, "/healthz"},
		{http.MethodPost, "/readyz"},
	}
	for _, tc := range cases {
		req, _ := http.NewRequest(tc.method, w.ts.URL+tc.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", tc.method, tc.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", tc.method, tc.path, resp.StatusCode)
		}
	}
}

// TestWorkerHTTPBadRequests: malformed JSON, unknown methods and shape
// mismatches are client errors (400), not internal solve failures (500).
func TestWorkerHTTPBadRequests(t *testing.T) {
	w := newTestWorker(workerServerConfig())
	defer w.close()
	cases := []struct{ name, body string }{
		{"truncated JSON", `{"d": [1, 2`},
		{"not JSON", `eigenvalues please`},
		{"unknown method", `{"d": [1, 2], "e": [0.5], "method": "cholesky"}`},
		{"shape mismatch", `{"d": [1, 2, 3], "e": [0.5, 0.5, 0.5]}`},
		{"missing off-diagonal", `{"d": [1, 2, 3]}`},
	}
	for _, tc := range cases {
		resp := postSolve(t, w.ts.URL, tc.body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

// TestWorkerHTTPOversizedBody: bodies beyond MaxBodyBytes get 413 before the
// decoder buffers them.
func TestWorkerHTTPOversizedBody(t *testing.T) {
	s := eigen.NewServer(workerServerConfig())
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(NewWorkerHandler(s, HTTPConfig{MaxBodyBytes: 1 << 10, Logf: discardLogf}))
	defer ts.Close()

	var b bytes.Buffer
	b.WriteString(`{"d": [`)
	for i := 0; i < 1000; i++ {
		fmt.Fprintf(&b, "%d,", i)
	}
	b.WriteString(`1], "e": []}`)
	resp := postSolve(t, ts.URL, b.String())
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}

	// A body under the cap still works.
	resp = postSolve(t, ts.URL, `{"d": [2.0], "e": []}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small body: status %d, want 200", resp.StatusCode)
	}
}

// TestWorkerHTTPTimeoutMaps408: a job whose timeout_ms expires mid-solve
// reports 408, disposition cancelled.
func TestWorkerHTTPTimeoutMaps408(t *testing.T) {
	w := newTestWorker(workerServerConfig())
	defer w.close()
	req := randomRequest(rand.New(rand.NewSource(3)), 1500)
	req.TimeoutMS = 1
	resp := postSolve(t, w.ts.URL, mustJSON(t, req))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("status %d, want 408", resp.StatusCode)
	}
	var sr SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if sr.Disposition != "cancelled" {
		t.Fatalf("disposition %q, want cancelled", sr.Disposition)
	}
}

// TestWorkerHTTPOverloadMaps503: a full queue rejects with 503, and /readyz
// flips to 503 while the backlog lasts.
func TestWorkerHTTPOverloadMaps503(t *testing.T) {
	cfg := workerServerConfig()
	cfg.MaxConcurrent = 1
	cfg.MaxQueue = 1
	w := newTestWorker(cfg)
	defer w.close()
	defer faultinject.Disable()
	// Injected per-task delays keep the first job on the slot and the second
	// in the queue long enough to observe the backlog deterministically.
	faultinject.Enable(7, faultinject.Probe{Class: "*", Kind: faultinject.KindDelay, P: 1, Delay: 100 * time.Millisecond})

	slow := mustJSON(t, randomRequest(rand.New(rand.NewSource(4)), 96))
	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(w.ts.URL+"/solve", "application/json", strings.NewReader(slow))
			if err != nil {
				results <- -1
				return
			}
			resp.Body.Close()
			results <- resp.StatusCode
		}()
		if i == 0 {
			waitFor(t, 5*time.Second, "job 1 running", func() bool { return w.srv.Stats().Running == 1 })
		}
	}
	waitFor(t, 5*time.Second, "job 2 queued", func() bool { return w.srv.Stats().Queued == 1 })

	if rs, err := http.Get(w.ts.URL + "/readyz"); err != nil {
		t.Fatalf("GET /readyz: %v", err)
	} else {
		rs.Body.Close()
		if rs.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("/readyz with full queue: status %d, want 503", rs.StatusCode)
		}
	}

	resp := postSolve(t, w.ts.URL, slow)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("third job: status %d, want 503", resp.StatusCode)
	}
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Fatalf("queued job finished with status %d, want 200", code)
		}
	}
}

// TestWorkerHTTPVectorsRoundTrip: a vectors-included solve round-trips and
// the eigenpairs verify against the input matrix.
func TestWorkerHTTPVectorsRoundTrip(t *testing.T) {
	w := newTestWorker(workerServerConfig())
	defer w.close()
	req := randomRequest(rand.New(rand.NewSource(5)), 24)
	req.Vectors = true
	resp := postSolve(t, w.ts.URL, mustJSON(t, req))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var sr SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	checkSpectrum(t, req, &sr)
	n := len(req.D)
	if len(sr.Vectors) != n*n {
		t.Fatalf("vectors length %d, want %d", len(sr.Vectors), n*n)
	}
	res := &eigen.Result{N: n, Values: sr.Values, Vectors: sr.Vectors}
	if r := eigen.Residual(req.Tri(), res); r > 1e-12 {
		t.Errorf("residual %.3e beyond 1e-12", r)
	}
	if o := eigen.Orthogonality(res); o > 1e-12 {
		t.Errorf("orthogonality %.3e beyond 1e-12", o)
	}
	if sr.Disposition != "completed" || sr.Tier != "task-flow" {
		t.Errorf("disposition=%q tier=%q, want completed/task-flow", sr.Disposition, sr.Tier)
	}

	// Without the flag, the n×n payload stays home.
	req.Vectors = false
	resp2 := postSolve(t, w.ts.URL, mustJSON(t, req))
	defer resp2.Body.Close()
	var sr2 SolveResponse
	if err := json.NewDecoder(resp2.Body).Decode(&sr2); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(sr2.Vectors) != 0 {
		t.Errorf("vectors returned without vectors flag")
	}
}

// TestWorkerHTTPReadiness: /healthz stays 200 for a live process; /readyz
// flips to 503 once a drain starts.
func TestWorkerHTTPReadiness(t *testing.T) {
	w := newTestWorker(workerServerConfig())
	defer w.ts.Close()
	get := func(path string) int {
		resp, err := http.Get(w.ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz: %d, want 200", code)
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz: %d, want 200", code)
	}
	if _, err := w.srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after drain: %d, want 503", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz after drain: %d, want 200 (process is alive)", code)
	}
	if resp := postSolve(t, w.ts.URL, `{"d": [1.0], "e": []}`); true {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("solve after drain: %d, want 503", resp.StatusCode)
		}
	}
}

// TestStatusOf: the error→HTTP mapping, including the bad-input class that
// used to surface as a generic 500.
func TestStatusOf(t *testing.T) {
	badInput := eigen.Tridiagonal{D: []float64{1, math.NaN()}, E: []float64{0.5}}
	_, screenErr := eigen.Solve(badInput, nil)
	if screenErr == nil {
		t.Fatal("NaN input solved")
	}
	cases := []struct {
		err  error
		want int
	}{
		{nil, http.StatusOK},
		{screenErr, http.StatusBadRequest},
		{eigen.Tridiagonal{D: []float64{1, 2}, E: nil}.Validate(), http.StatusBadRequest},
		{fmt.Errorf("wrap: %w", eigen.ErrOverloaded), http.StatusServiceUnavailable},
		{fmt.Errorf("wrap: %w", eigen.ErrServerClosed), http.StatusServiceUnavailable},
		{context.DeadlineExceeded, http.StatusRequestTimeout},
		{context.Canceled, http.StatusRequestTimeout},
		{fmt.Errorf("numerical breakdown"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got := StatusOf(tc.err); got != tc.want {
			t.Errorf("StatusOf(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}
