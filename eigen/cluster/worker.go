package cluster

import (
	"sync"
	"sync/atomic"
	"time"
)

// worker is the coordinator's view of one remote eigserve instance: its
// circuit breaker, probe-health EWMA and load estimate. The breaker is fed
// by transport-level failures from both solve attempts and health probes, so
// a worker that dies idle is discovered by the prober and a worker that dies
// under load is discovered by the first failed-over job — whichever happens
// first.
//
// Breaker states: closed (routing on), open (fails ≥ threshold, cooling
// down, routing off), half-open (cooldown expired; the next health probe —
// or a racing job success — decides between re-closing and another
// cooldown).
type worker struct {
	name string // base URL: the routing, breaker and report key

	inflight atomic.Int64 // coordinator-side in-flight jobs
	sent     atomic.Int64 // solve attempts sent
	failures atomic.Int64 // solve attempts failed (transport-level)

	mu           sync.Mutex
	fails        int // consecutive transport-level failures while closed
	open         bool
	openUntil    time.Time
	ewma         float64 // probe-failure EWMA in [0,1]; ≥0.5 reads unhealthy
	lastProbeErr string
	queued       int // worker-reported load, from its last /stats poll
	running      int
}

// ewmaAlpha is the probe-failure EWMA step: ~two consecutive outcomes
// dominate the estimate, so a worker flips health state in a couple of probe
// intervals rather than instantly on one lost packet.
const ewmaAlpha = 0.4

// available reports whether the breaker admits routing to this worker.
func (w *worker) available() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return !w.open
}

// healthy is available plus a clean probe record; routing prefers healthy
// workers and falls back to merely-available ones.
func (w *worker) healthy() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return !w.open && w.ewma < 0.5
}

// load estimates the worker's queue pressure: the coordinator's own
// in-flight count (exact, current) plus the worker's last self-reported
// queued+running (covers load from other clients, possibly stale by one
// probe interval).
func (w *worker) load() int64 {
	w.mu.Lock()
	q, r := w.queued, w.running
	w.mu.Unlock()
	return w.inflight.Load() + int64(q) + int64(r)
}

// coolingDown reports whether the breaker is open with its cooldown still
// running — the window in which even health probes leave the worker alone.
func (w *worker) coolingDown() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.open && time.Now().Before(w.openUntil)
}

// breakerState renders the state machine for stats and tests.
func (w *worker) breakerState() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	switch {
	case !w.open:
		return "closed"
	case time.Now().Before(w.openUntil):
		return "open"
	}
	return "half-open"
}

// noteFailure records one transport-level failure against the breaker and
// reports whether this one opened the circuit. A failure while already open
// (a racing in-flight job, or a failed half-open probe) re-arms the cooldown
// instead of recounting.
func (w *worker) noteFailure(threshold int, cooldown time.Duration) (opened bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.open {
		w.openUntil = time.Now().Add(cooldown)
		return false
	}
	w.fails++
	if w.fails >= threshold {
		w.open = true
		w.openUntil = time.Now().Add(cooldown)
		return true
	}
	return false
}

// noteSuccess closes the breaker (a half-open probe succeeded, or a routed
// job came back clean) and reports whether it was open.
func (w *worker) noteSuccess() (closed bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	closed = w.open
	w.open = false
	w.fails = 0
	return closed
}

// noteProbe folds one health-probe outcome into the failure EWMA.
func (w *worker) noteProbe(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err != nil {
		w.ewma = (1-ewmaAlpha)*w.ewma + ewmaAlpha
		w.lastProbeErr = err.Error()
		return
	}
	w.ewma = (1 - ewmaAlpha) * w.ewma
	w.lastProbeErr = ""
}

// noteStats stores the worker's self-reported load snapshot.
func (w *worker) noteStats(queued, running int) {
	w.mu.Lock()
	w.queued, w.running = queued, running
	w.mu.Unlock()
}
