package cluster

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"tridiag/eigen"
	"tridiag/internal/faultinject"
)

func postBatch(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/solve/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /solve/batch: %v", err)
	}
	return resp
}

func decodeBatch(t *testing.T, resp *http.Response) *BatchResponse {
	t.Helper()
	defer resp.Body.Close()
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatalf("decoding batch response: %v", err)
	}
	return &br
}

func randomBatch(rng *rand.Rand, sizes ...int) *BatchRequest {
	req := &BatchRequest{}
	for _, n := range sizes {
		req.Jobs = append(req.Jobs, *randomRequest(rng, n))
	}
	return req
}

// checkBatchSpectra asserts the per-matrix round trip: results in job order,
// each a valid ascending spectrum for its own input.
func checkBatchSpectra(t *testing.T, req *BatchRequest, br *BatchResponse) {
	t.Helper()
	if len(br.Results) != len(req.Jobs) {
		t.Fatalf("batch returned %d results for %d jobs", len(br.Results), len(req.Jobs))
	}
	for i := range req.Jobs {
		if br.Results[i].Error != "" {
			t.Fatalf("job %d: %s", i, br.Results[i].Error)
		}
		checkSpectrum(t, &req.Jobs[i], &br.Results[i])
	}
}

// TestClusterBatchWorkerHTTPErrors pins the /solve/batch preconditions on the
// worker tier: wrong verb is 405, malformed/empty/invalid-member bodies are
// 400, oversized bodies are 413 — all before any member consumes a slot.
func TestClusterBatchWorkerHTTPErrors(t *testing.T) {
	w := newTestWorker(workerServerConfig())
	defer w.close()

	hreq, _ := http.NewRequest(http.MethodGet, w.ts.URL+"/solve/batch", nil)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatalf("GET /solve/batch: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", resp.StatusCode)
	}

	for _, tc := range []struct{ name, body string }{
		{"truncated JSON", `{"jobs": [{"d": [1`},
		{"not JSON", `a batch please`},
		{"empty batch", `{"jobs": []}`},
		{"no jobs field", `{}`},
		{"unknown member method", `{"jobs": [{"d": [1, 2], "e": [1], "method": "cholesky"}]}`},
		{"member shape mismatch", `{"jobs": [{"d": [1, 2], "e": [1]}, {"d": [1, 2, 3], "e": [1]}]}`},
	} {
		resp := postBatch(t, w.ts.URL, tc.body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}

	big := &BatchRequest{}
	n := 512
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := 0; i < 40; i++ {
		big.Jobs = append(big.Jobs, SolveRequest{D: d, E: e})
	}
	ts := httptest.NewServer(NewWorkerHandler(eigen.NewServer(workerServerConfig()), HTTPConfig{MaxBodyBytes: 1 << 16, Logf: discardLogf}))
	defer ts.Close()
	resp = postBatch(t, ts.URL, mustJSON(t, big))
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: status %d, want 413", resp.StatusCode)
	}
}

// TestClusterBatchWorkerRoundTrip serves a real batch through a coalescing
// worker: per-matrix results come back in job order, each member keeps its
// own vectors flag, and every disposition is a served one.
func TestClusterBatchWorkerRoundTrip(t *testing.T) {
	cfg := workerServerConfig()
	cfg.BatchWindow = 2 * time.Millisecond
	w := newTestWorker(cfg)
	defer w.close()
	rng := rand.New(rand.NewSource(60))
	req := randomBatch(rng, 24, 40, 16, 33, 48, 28)
	req.Jobs[2].Vectors = true
	resp := postBatch(t, w.ts.URL, mustJSON(t, req))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	br := decodeBatch(t, resp)
	checkBatchSpectra(t, req, br)
	for i := range br.Results {
		wantVec := 0
		if i == 2 {
			n := len(req.Jobs[2].D)
			wantVec = n * n
		}
		if len(br.Results[i].Vectors) != wantVec {
			t.Errorf("job %d: %d vector entries, want %d", i, len(br.Results[i].Vectors), wantVec)
		}
	}
	st := w.srv.Stats()
	if st.CoalescedJobs == 0 {
		t.Errorf("no jobs coalesced on a coalescing worker (batch window ignored?)")
	}
}

// TestClusterBatchCoordinatorHTTPRoundTrip drives the coordinator's
// /solve/batch end to end over real HTTP: the batch routes to a worker as
// one unit and every matrix's result survives the round trip.
func TestClusterBatchCoordinatorHTTPRoundTrip(t *testing.T) {
	w1 := newTestWorker(workerServerConfig())
	defer w1.close()
	w2 := newTestWorker(workerServerConfig())
	defer w2.close()
	c, err := NewCoordinator(testCoordConfig([]string{w1.ts.URL, w2.ts.URL}, nil))
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer c.Shutdown(context.Background())
	ts := httptest.NewServer(NewCoordinatorHandler(c, HTTPConfig{Logf: discardLogf}))
	defer ts.Close()

	rng := rand.New(rand.NewSource(61))
	req := randomBatch(rng, 30, 45, 20, 36)
	resp := postBatch(t, ts.URL, mustJSON(t, req))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	br := decodeBatch(t, resp)
	checkBatchSpectra(t, req, br)
	if br.Worker != w1.ts.URL && br.Worker != w2.ts.URL {
		t.Errorf("batch served by %q, want one of the workers", br.Worker)
	}
	for _, tc := range []struct{ name, body string }{
		{"empty", `{"jobs": []}`},
		{"invalid member", `{"jobs": [{"d": [1, 2], "e": []}]}`},
	} {
		resp := postBatch(t, ts.URL, tc.body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
	if st := c.Stats(); st.Completed != 1 {
		t.Errorf("coordinator completed %d batches, want 1", st.Completed)
	}
}

// TestClusterBatchFailover kills the batch's first two remote attempts with
// deterministic injected network faults: the batch must fail over and come
// back complete from a surviving attempt — zero lost matrices, exactly one
// batch-level disposition.
func TestClusterBatchFailover(t *testing.T) {
	before := runtime.NumGoroutine()
	w1 := newTestWorker(workerServerConfig())
	defer w1.close()
	w2 := newTestWorker(workerServerConfig())
	defer w2.close()
	cfg := testCoordConfig([]string{w1.ts.URL, w2.ts.URL}, nil)
	cfg.ProbeInterval = time.Hour // probes must not consume the single-shot faults
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}

	// One single-shot network fault per worker: whichever two attempts run
	// first die as transport failures, the third serves the whole batch.
	faultinject.Enable(17,
		faultinject.Probe{Class: faultinject.NetClass(w1.ts.URL), Kind: faultinject.KindError, P: 1, MaxFires: 1},
		faultinject.Probe{Class: faultinject.NetClass(w2.ts.URL), Kind: faultinject.KindError, P: 1, MaxFires: 1},
	)
	rng := rand.New(rand.NewSource(62))
	req := randomBatch(rng, 25, 40, 18, 31, 22)
	br, err := c.SolveBatch(context.Background(), req)
	faultinject.Disable()
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}
	checkBatchSpectra(t, req, br)
	if br.Failovers < 1 {
		t.Errorf("batch failovers=%d, want >= 1", br.Failovers)
	}
	st := c.Stats()
	if st.FailedOver != 1 || st.Completed+st.Retried+st.Failed+st.Cancelled != 0 {
		t.Errorf("dispositions failed-over=%d completed=%d retried=%d failed=%d cancelled=%d, want exactly one failed-over",
			st.FailedOver, st.Completed, st.Retried, st.Failed, st.Cancelled)
	}
	if st.Retries < 2 {
		t.Errorf("retries=%d, want >= 2 (two injected attempt deaths)", st.Retries)
	}
	if _, err := c.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	checkGoroutines(t, before)
}

// TestClusterBatchDegradedLocal partitions every worker: the batch must still
// be served, member by member, by the coordinator's local tier.
func TestClusterBatchDegradedLocal(t *testing.T) {
	w1 := newTestWorker(workerServerConfig())
	defer w1.close()
	w2 := newTestWorker(workerServerConfig())
	defer w2.close()
	w1.gate.down.Store(true)
	w2.gate.down.Store(true)
	c, err := NewCoordinator(testCoordConfig([]string{w1.ts.URL, w2.ts.URL}, nil))
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	defer c.Shutdown(context.Background())

	rng := rand.New(rand.NewSource(63))
	req := randomBatch(rng, 20, 35, 27)
	br, err := c.SolveBatch(context.Background(), req)
	if err != nil {
		t.Fatalf("SolveBatch with all workers down: %v", err)
	}
	checkBatchSpectra(t, req, br)
	if br.Worker != "local" {
		t.Errorf("batch served by %q, want local", br.Worker)
	}
	if st := c.Stats(); st.DegradedLocal != 1 || st.LocalSolves != 1 {
		t.Errorf("degraded-local=%d local-solves=%d, want 1/1", st.DegradedLocal, st.LocalSolves)
	}
}
