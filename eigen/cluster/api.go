package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"

	"tridiag/eigen"
)

// SolveRequest is the wire form of one solve job, shared by the worker and
// coordinator /solve endpoints.
type SolveRequest struct {
	D      []float64 `json:"d"`
	E      []float64 `json:"e"`
	Method string    `json:"method,omitempty"` // dc | dc-seq | mrrr | qr
	// Workers is the per-solve worker-goroutine cap on the serving instance.
	Workers int `json:"workers,omitempty"`
	// TimeoutMS is the job's deadline; admission rejects jobs whose deadline
	// cannot be met given the current load.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Vectors includes the n×n eigenvector matrix in the response
	// (column-major, column j = eigenvector j). Off by default: for large n
	// the payload dwarfs the eigenvalues.
	Vectors bool `json:"vectors,omitempty"`
	// ValuesOnly requests the eigenvalue-only fast lane: no eigenvector
	// tasks run, the solve's workspace is O(n·depth) instead of O(n²), and
	// admission charges the much smaller EstimateValuesOnlySolveBytes
	// footprint — so a loaded instance admits far more values_only jobs than
	// full solves under the same memory budget. Mutually exclusive with
	// Vectors (rejected with 400).
	ValuesOnly bool `json:"values_only,omitempty"`
}

// ValidateClass rejects contradictory request classes — values_only together
// with vectors — as a client error before the job consumes a solve slot.
func (r *SolveRequest) ValidateClass() error {
	if r.ValuesOnly && r.Vectors {
		return fmt.Errorf("values_only and vectors are mutually exclusive")
	}
	return nil
}

// Tri views the request's problem as an eigen.Tridiagonal (aliasing the
// request slices).
func (r *SolveRequest) Tri() eigen.Tridiagonal {
	return eigen.Tridiagonal{D: r.D, E: r.E}
}

// SolveResponse is the wire form of one solve outcome. A worker reports its
// eigen.Server disposition; a coordinator overwrites Disposition with the
// cluster-level one and fills Worker/Failovers.
type SolveResponse struct {
	N           int       `json:"n"`
	Values      []float64 `json:"values,omitempty"`
	Vectors     []float64 `json:"vectors,omitempty"`
	Disposition string    `json:"disposition"`
	Attempts    int       `json:"attempts"`
	Stalls      int       `json:"stalls"`
	Tier        string    `json:"tier,omitempty"`
	// Worker names the instance that served the job ("local" for the
	// coordinator's degraded-local tier); set by coordinators only.
	Worker string `json:"worker,omitempty"`
	// Failovers counts the remote attempts that were abandoned before a
	// different worker served the job; set by coordinators only.
	Failovers int    `json:"failovers,omitempty"`
	Error     string `json:"error,omitempty"`
	// Checksum is the serving worker's SpectrumChecksum over Values: an
	// end-to-end integrity seal on the wire payload. Coordinators recompute
	// it after decoding and treat a mismatch like a truncated response — a
	// transient corruption worth a failover — so a bit flip in transit, in
	// a proxy buffer, or in the worker's encoder never ships to the client.
	// Zero means the worker predates the seal (nothing to verify).
	Checksum uint64 `json:"checksum,omitempty"`
}

// SpectrumChecksum seals a result's eigenvalue payload: FNV-64a over the
// IEEE-754 bit patterns of the values in order. Bit-exact by construction —
// the coordinator verifies the bytes that crossed the wire, not a numerical
// property — and cheap enough (one multiply-xor per value) to run on every
// response.
func SpectrumChecksum(values []float64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range values {
		b := math.Float64bits(v)
		for i := 0; i < 64; i += 8 {
			h ^= (b >> i) & 0xff
			h *= prime64
		}
	}
	return h
}

// BatchRequest is the wire form of a coalesced solve batch, shared by the
// worker and coordinator /solve/batch endpoints. Members keep their own
// method, worker cap, deadline and vector flag; the batch-level TimeoutMS
// bounds the whole request.
type BatchRequest struct {
	Jobs []SolveRequest `json:"jobs"`
	// TimeoutMS bounds the whole batch; member TimeoutMS values bound their
	// own jobs within it.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// BatchResponse is the wire form of a batch outcome: per-matrix results in
// job order (each with its own disposition and error — one member failing
// never voids its batch-mates), plus batch-level routing facts filled by
// coordinators.
type BatchResponse struct {
	Results []SolveResponse `json:"results"`
	// Worker names the instance that served the batch ("local" for the
	// coordinator's degraded tier); set by coordinators only.
	Worker string `json:"worker,omitempty"`
	// Failovers counts abandoned remote attempts before a worker served the
	// batch; set by coordinators only.
	Failovers int    `json:"failovers,omitempty"`
	Error     string `json:"error,omitempty"`
}

// ParseMethod maps the wire method name to the eigen.Method ("" selects the
// task-flow D&C default).
func ParseMethod(s string) (eigen.Method, error) {
	switch s {
	case "", "dc":
		return eigen.MethodDC, nil
	case "dc-seq":
		return eigen.MethodDCSequential, nil
	case "mrrr":
		return eigen.MethodMRRR, nil
	case "qr":
		return eigen.MethodQR, nil
	}
	return 0, fmt.Errorf("unknown method %q", s)
}

// StatusOf maps a serve error to its HTTP status: malformed input is the
// client's fault (400), overload backpressure asks the client to back off
// and retry (503), cancellation/deadline expiry is 408, and anything else is
// an internal failure (500).
func StatusOf(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, eigen.ErrBadInput):
		return http.StatusBadRequest
	case errors.Is(err, eigen.ErrOverloaded), errors.Is(err, eigen.ErrServerClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusRequestTimeout
	}
	return http.StatusInternalServerError
}
