package eigen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomTridiag(rng *rand.Rand, n int) Tridiagonal {
	d := make([]float64, n)
	e := make([]float64, max(n-1, 0))
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	for i := range e {
		e[i] = rng.NormFloat64()
	}
	return Tridiagonal{D: d, E: e}
}

func TestSolveAllMethodsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	n := 90
	tri := randomTridiag(rng, n)
	var ref []float64
	for _, m := range []Method{MethodDC, MethodDCSequential, MethodMRRR, MethodQR} {
		res, err := Solve(tri, &Options{Method: m, Workers: 3})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if got := Residual(tri, res); got > 1e-13 {
			t.Errorf("%v: residual %.3e", m, got)
		}
		if got := Orthogonality(res); got > 1e-13 {
			t.Errorf("%v: orthogonality %.3e", m, got)
		}
		if ref == nil {
			ref = res.Values
			continue
		}
		for i := 0; i < n; i++ {
			if math.Abs(res.Values[i]-ref[i]) > 1e-11 {
				t.Errorf("%v: eigenvalue %d differs: %v vs %v", m, i, res.Values[i], ref[i])
			}
		}
	}
}

func TestValuesMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	tri := randomTridiag(rng, 60)
	w, err := Values(tri)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(tri, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w {
		if math.Abs(w[i]-res.Values[i]) > 1e-11 {
			t.Errorf("eigenvalue %d: %v vs %v", i, w[i], res.Values[i])
		}
	}
}

func TestSolveDoesNotModifyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(405))
	tri := randomTridiag(rng, 40)
	d0 := append([]float64(nil), tri.D...)
	e0 := append([]float64(nil), tri.E...)
	if _, err := Solve(tri, nil); err != nil {
		t.Fatal(err)
	}
	for i := range d0 {
		if tri.D[i] != d0[i] {
			t.Fatal("Solve modified D")
		}
	}
	for i := range e0 {
		if tri.E[i] != e0[i] {
			t.Fatal("Solve modified E")
		}
	}
}

func TestSymEigen(t *testing.T) {
	rng := rand.New(rand.NewSource(407))
	n := 70
	a := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			v := rng.NormFloat64()
			a[i+j*n] = v
			a[j+i*n] = v
		}
	}
	aorig := append([]float64(nil), a...)
	res, err := SymEigen(n, a, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A v = λ v
	worst := 0.0
	var anorm float64
	for _, v := range aorig {
		anorm = math.Max(anorm, math.Abs(v))
	}
	for j := 0; j < n; j++ {
		v := res.Vector(j)
		for i := 0; i < n; i++ {
			var s float64
			for l := 0; l < n; l++ {
				s += aorig[i+l*n] * v[l]
			}
			worst = math.Max(worst, math.Abs(s-res.Values[j]*v[i]))
		}
	}
	if worst/(anorm*float64(n)) > 1e-14 {
		t.Errorf("SymEigen residual %.3e", worst/(anorm*float64(n)))
	}
	if got := Orthogonality(res); got > 1e-14 {
		t.Errorf("SymEigen orthogonality %.3e", got)
	}
}

func TestSolveEdgeCases(t *testing.T) {
	// empty
	res, err := Solve(Tridiagonal{}, nil)
	if err != nil || res.N != 0 {
		t.Errorf("empty: %v %v", res, err)
	}
	// 1x1
	res, err = Solve(Tridiagonal{D: []float64{7}, E: []float64{}}, nil)
	if err != nil || res.Values[0] != 7 || res.Vector(0)[0] != 1 {
		t.Errorf("1x1: %+v %v", res, err)
	}
	// wrong E length
	if _, err := Solve(Tridiagonal{D: []float64{1, 2}, E: []float64{}}, nil); err == nil {
		t.Error("bad E length must error")
	}
	// bad method
	if _, err := Solve(Tridiagonal{D: []float64{1}, E: []float64{}}, &Options{Method: Method(99)}); err == nil {
		t.Error("unknown method must error")
	}
	// SymEigen validation
	if _, err := SymEigen(4, make([]float64, 16), 2, nil); err == nil {
		t.Error("lda<n must error")
	}
}

// Property: for random tridiagonals, eigenvalues are ascending, the trace is
// preserved, and vectors are orthonormal.
func TestSolveQuickProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(409))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		tri := randomTridiag(r, n)
		res, err := Solve(tri, &Options{Workers: 2, MinPartition: 8, PanelSize: 8})
		if err != nil {
			return false
		}
		var trT, trL float64
		for i := 0; i < n; i++ {
			trT += tri.D[i]
			trL += res.Values[i]
			if i > 0 && res.Values[i] < res.Values[i-1] {
				return false
			}
		}
		if math.Abs(trT-trL) > 1e-10*float64(n)*(math.Abs(trT)+1) {
			return false
		}
		return Orthogonality(res) < 1e-13
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMethodString(t *testing.T) {
	if MethodDC.String() != "dc" || MethodMRRR.String() != "mrrr" {
		t.Error("method names")
	}
}

func TestSymEigen2Stage(t *testing.T) {
	rng := rand.New(rand.NewSource(411))
	n := 90
	a := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			v := rng.NormFloat64()
			a[i+j*n] = v
			a[j+i*n] = v
		}
	}
	aorig := append([]float64(nil), a...)
	res, err := SymEigen2Stage(n, a, n, 12, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A v = λ v
	worst := 0.0
	var anorm float64
	for _, v := range aorig {
		anorm = math.Max(anorm, math.Abs(v))
	}
	for j := 0; j < n; j++ {
		v := res.Vector(j)
		for i := 0; i < n; i++ {
			var s float64
			for l := 0; l < n; l++ {
				s += aorig[i+l*n] * v[l]
			}
			worst = math.Max(worst, math.Abs(s-res.Values[j]*v[i]))
		}
	}
	if worst/(anorm*float64(n)) > 1e-14 {
		t.Errorf("two-stage residual %.3e", worst/(anorm*float64(n)))
	}
	if o := Orthogonality(res); o > 1e-14 {
		t.Errorf("two-stage orthogonality %.3e", o)
	}
	// must match the one-stage pipeline's eigenvalues
	a2 := append([]float64(nil), aorig...)
	one, err := SymEigen(n, a2, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if math.Abs(res.Values[i]-one.Values[i]) > 1e-11*(anorm+1) {
			t.Errorf("eig %d: two-stage %v one-stage %v", i, res.Values[i], one.Values[i])
		}
	}
}

func TestSymGeneralized(t *testing.T) {
	rng := rand.New(rand.NewSource(421))
	n := 60
	a := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			v := rng.NormFloat64()
			a[i+j*n] = v
			a[j+i*n] = v
		}
	}
	// SPD B = M Mᵀ + n I
	m := make([]float64, n*n)
	for i := range m {
		m[i] = rng.NormFloat64()
	}
	b := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			var s float64
			for l := 0; l < n; l++ {
				s += m[i+l*n] * m[j+l*n]
			}
			b[i+j*n] = s
		}
		b[j+j*n] += float64(n)
	}
	aorig := append([]float64(nil), a...)
	borig := append([]float64(nil), b...)
	res, err := SymGeneralized(n, a, n, b, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A x = λ B x and Xᵀ B X = I
	var anorm float64
	for _, x := range aorig {
		anorm = math.Max(anorm, math.Abs(x))
	}
	bx := make([]float64, n)
	for j := 0; j < n; j++ {
		v := res.Vector(j)
		for i := 0; i < n; i++ {
			var ax float64
			bx[i] = 0
			for l := 0; l < n; l++ {
				ax += aorig[i+l*n] * v[l]
				bx[i] += borig[i+l*n] * v[l]
			}
			if math.Abs(ax-res.Values[j]*bx[i]) > 1e-11*anorm*float64(n) {
				t.Fatalf("generalized residual at (%d,%d)", i, j)
			}
		}
		// B-orthonormality against earlier vectors
		for k := 0; k <= j; k++ {
			var s float64
			vk := res.Vector(k)
			for i := 0; i < n; i++ {
				s += vk[i] * bx[i]
			}
			want := 0.0
			if k == j {
				want = 1
			}
			if math.Abs(s-want) > 1e-11*float64(n) {
				t.Fatalf("XᵀBX (%d,%d) = %v", k, j, s)
			}
		}
	}
	// indefinite B must be rejected
	bad := make([]float64, 4)
	bad[0], bad[3] = 1, -1
	if _, err := SymGeneralized(2, make([]float64, 4), 2, bad, 2, nil); err == nil {
		t.Error("indefinite B must error")
	}
}
