package eigen

import (
	"context"
	"fmt"
	"strings"

	"tridiag/internal/core"
	"tridiag/internal/faultinject"
	"tridiag/internal/lapack"
)

// BatchError aggregates the per-matrix failures of a SolveBatch: Errs is
// indexed like the input slice, nil at every position that succeeded.
type BatchError struct {
	Errs []error
}

func (e *BatchError) Error() string {
	var b strings.Builder
	n := 0
	for i, err := range e.Errs {
		if err == nil {
			continue
		}
		if n == 0 {
			fmt.Fprintf(&b, "eigen: SolveBatch: matrix %d: %v", i, err)
		}
		n++
	}
	if n > 1 {
		fmt.Fprintf(&b, " (and %d more)", n-1)
	}
	return b.String()
}

// Failed returns how many matrices failed.
func (e *BatchError) Failed() int {
	n := 0
	for _, err := range e.Errs {
		if err != nil {
			n++
		}
	}
	return n
}

// SolveBatch solves many independent tridiagonal matrices as one task DAG on
// one shared worker pool. For small matrices this is the throughput path: a
// single small solve cannot feed the work-stealing scheduler (per-solve tree
// setup and runtime startup dwarf the math), but a batch's leaf and merge
// tasks interleave across workers, and packed-GEMM buffers and secular
// scratch recycle across batch-mates through the shared pool.
//
// The result slice is indexed like tris; a failed matrix has a nil entry and
// its error is reported through the returned *BatchError (also indexed like
// tris). One matrix failing never poisons its batch-mates: each matrix's
// tasks run in their own failure-attribution scope, so a fault's skip cascade
// stays inside that matrix's subtree. With opts.Fallback set, a matrix whose
// batched task-flow attempt fails is retried alone on the degraded tiers
// (sequential DSTEDC, then QR) with validation, exactly like Solve.
//
// Only MethodDC batches; other methods are served by a per-matrix Solve loop
// (they have no task graph to share). Inputs are not modified. Cancellation
// aborts the whole batch and returns (nil, ctx.Err()).
func SolveBatch(ctx context.Context, tris []Tridiagonal, opts *Options) ([]*Result, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	results := make([]*Result, len(tris))
	if len(tris) == 0 {
		return results, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	errs := make([]error, len(tris))

	if o.Method != MethodDC {
		// No shared DAG for sequential/MRRR/QR solves; serve the batch as a
		// loop so the API still composes.
		anyErr := false
		for i, t := range tris {
			res, err := SolveContext(ctx, t, &o)
			if err != nil {
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				errs[i] = err
				anyErr = true
				continue
			}
			res.Stats.BatchSize = len(tris)
			results[i] = res
		}
		if anyErr {
			return results, &BatchError{Errs: errs}
		}
		return results, nil
	}

	// Screen and pre-scale each matrix, building the core batch from the
	// admissible ones. scales[i] is the per-matrix scale-back factor.
	probs := make([]core.BatchProblem, 0, len(tris))
	probIdx := make([]int, 0, len(tris))
	scales := make([]float64, len(tris))
	for i, t := range tris {
		n := t.N()
		if err := t.validate(); err != nil {
			errs[i] = err
			continue
		}
		if err := t.screen(); err != nil {
			errs[i] = fmt.Errorf("eigen: SolveBatch(n=%d): %w", n, err)
			continue
		}
		res := &Result{
			N: n, Values: make([]float64, n),
			Stats: &SolveStats{Method: o.Method, Tier: "task-flow", BatchSize: len(tris)},
		}
		if !o.ValuesOnly {
			res.Vectors = make([]float64, n*n)
		}
		results[i] = res
		if n == 0 {
			continue
		}
		d, e, scale := preScale(t)
		scales[i] = scale
		copy(res.Values, d)
		p := core.BatchProblem{N: n, D: res.Values, E: e}
		if !o.ValuesOnly {
			p.Q, p.LDQ = res.Vectors, n
		}
		probs = append(probs, p)
		probIdx = append(probIdx, i)
	}

	br, err := core.SolveDCBatchContext(ctx, probs, &core.Options{
		Workers:        o.Workers,
		PanelSize:      o.PanelSize,
		MinPartition:   o.MinPartition,
		ExtraWorkspace: o.ExtraWorkspace,
		ValuesOnly:     o.ValuesOnly,
		DisableABFT:    o.DisableABFT,
		Progress:       o.Progress,
	})
	if err != nil {
		// Batch-level errors are context cancellation only; per-matrix
		// failures live in the items.
		return nil, err
	}

	var batchTaskNanos int64
	for _, d := range br.Stats.TaskTimes() {
		batchTaskNanos += int64(d)
	}

	anyErr := false
	for i := range errs {
		if errs[i] != nil {
			anyErr = true
			results[i] = nil
		}
	}
	for p, item := range br.Items {
		i := probIdx[p]
		res := results[i]
		memberErr := item.Err
		// The member's corruption ledger: in-DAG ABFT detections (checksum
		// mismatches, violated merge invariants) from the per-item core stats,
		// plus one for a corruption-classified member error the in-DAG
		// counters did not see (an audit miss, below).
		ab := item.Result.Stats.ABFT()
		detected := ab.ChecksumFailures + ab.InvariantFailures
		if memberErr == nil {
			res.Stats.Fallbacks = item.Result.Stats.Fallbacks()
			res.Stats.BatchTaskNanos = batchTaskNanos
			if scales[i] != 1 {
				lapack.Dlascl(res.N, 1, 1, scales[i], res.Values, res.N)
			}
			if !o.Audit.Disable {
				// The always-on audit, per member, against the original
				// (unscaled) matrix — every audit metric is scale-invariant,
				// so it runs after the scale-back. A member that fails its
				// audit is treated exactly like a failed batched attempt:
				// solo degraded retry under Fallback, else an error.
				worst, aerr := auditResult(tris[i], res, &o)
				if aerr != nil {
					detected++
					memberErr = aerr
				} else {
					res.Stats.Audited = true
					res.Stats.AuditResidual = worst
				}
			}
			if memberErr == nil {
				// Served clean: every in-DAG detection was healed by a task
				// retry (an unhealed one would have failed the member).
				res.Stats.CorruptionsDetected += detected
				res.Stats.CorruptionsHealed += detected
				continue
			}
		} else if detected == 0 && faultinject.Corruption(memberErr) {
			detected++
		}
		batchErr := fmt.Errorf("tier task-flow (batched): %w", memberErr)
		if o.Fallback {
			// Retry this matrix alone on the degraded tiers, validated, with
			// the batched attempt recorded as the first tier error.
			o2 := o
			o2.Method = MethodDCSequential
			fres, ferr := SolveContext(ctx, tris[i], &o2)
			if ferr == nil && !fres.Stats.Validated {
				// The sequential ladder's first tier serves unvalidated (it
				// is that method's first choice); here it is a degraded
				// replacement for the batched attempt, so hold it to the
				// same validation bar Solve applies to its fallback tiers.
				// Values-only results have no vectors, so the bar is the
				// Sturm-count spectrum check instead.
				fres.Stats.Validated = true
				if o.ValuesOnly {
					if verr := validateSpectrum(tris[i], fres.Values); verr != nil {
						ferr = fmt.Errorf("fallback validation failed: %w", verr)
					}
				} else {
					rres, orth := Residual(tris[i], fres), Orthogonality(fres)
					fres.Stats.Residual, fres.Stats.Orthogonality = rres, orth
					if rres > maxResidual || orth > maxOrthogonality {
						ferr = fmt.Errorf("fallback validation failed: residual=%.3e orthogonality=%.3e", rres, orth)
					}
				}
			}
			if ferr == nil {
				fres.Stats.Method = o.Method
				fres.Stats.BatchSize = len(tris)
				fres.Stats.TierErrors = append([]error{batchErr}, fres.Stats.TierErrors...)
				// The degraded retry healed whatever the batched attempt
				// detected; carry that ledger onto the serving result.
				fres.Stats.CorruptionsDetected += detected
				fres.Stats.CorruptionsHealed += detected
				results[i] = fres
				continue
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			errs[i] = fmt.Errorf("eigen: SolveBatch(n=%d): %w (fallback: %v)", tris[i].N(), batchErr, ferr)
		} else {
			errs[i] = fmt.Errorf("eigen: SolveBatch(n=%d): %w", tris[i].N(), batchErr)
		}
		results[i] = nil
		anyErr = true
	}
	if anyErr {
		return results, &BatchError{Errs: errs}
	}
	return results, nil
}
