package eigen

import (
	"math"
	"math/rand"
	"testing"
)

func TestSolveRangeMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	for _, n := range []int{10, 50, 120} {
		tri := randomTridiag(rng, n)
		full, err := Solve(tri, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range [][2]int{{0, 2}, {n / 2, n/2 + 4}, {n - 3, n - 1}, {0, n - 1}} {
			il, iu := r[0], r[1]
			sub, err := SolveRange(tri, il, iu, &Options{Workers: 2})
			if err != nil {
				t.Fatalf("n=%d range %v: %v", n, r, err)
			}
			for j := 0; j <= iu-il; j++ {
				if math.Abs(sub.Values[j]-full.Values[il+j]) > 1e-10 {
					t.Errorf("n=%d range %v value %d: %v vs %v", n, r, j, sub.Values[j], full.Values[il+j])
				}
				// vectors agree up to sign
				v1, v2 := sub.Vector(j), full.Vector(il+j)
				var dot float64
				for i := 0; i < n; i++ {
					dot += v1[i] * v2[i]
				}
				if math.Abs(math.Abs(dot)-1) > 1e-8 {
					t.Errorf("n=%d range %v vector %d: |<v1,v2>|=%v", n, r, j, math.Abs(dot))
				}
			}
		}
	}
}

func TestSolveRangeSplitMatrix(t *testing.T) {
	// A matrix with zero couplings (multiple blocks).
	rng := rand.New(rand.NewSource(603))
	n := 30
	tri := randomTridiag(rng, n)
	tri.E[9] = 0
	tri.E[19] = 0
	full, err := Solve(tri, nil)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := SolveRange(tri, 5, 24, nil)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 20; j++ {
		if math.Abs(sub.Values[j]-full.Values[5+j]) > 1e-10 {
			t.Errorf("value %d: %v vs %v", j, sub.Values[j], full.Values[5+j])
		}
	}
}

func TestSolveRangeResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(605))
	n := 80
	tri := randomTridiag(rng, n)
	sub, err := SolveRange(tri, 10, 19, nil)
	if err != nil {
		t.Fatal(err)
	}
	// each returned pair satisfies T v = λ v
	for j := 0; j < 10; j++ {
		v := sub.Vector(j)
		lam := sub.Values[j]
		worst := 0.0
		for i := 0; i < n; i++ {
			s := tri.D[i] * v[i]
			if i > 0 {
				s += tri.E[i-1] * v[i-1]
			}
			if i < n-1 {
				s += tri.E[i] * v[i+1]
			}
			worst = math.Max(worst, math.Abs(s-lam*v[i]))
		}
		if worst > 1e-12*float64(n) {
			t.Errorf("pair %d residual %.3e", j, worst)
		}
	}
}

func TestSolveRangeErrors(t *testing.T) {
	tri := Tridiagonal{D: []float64{1, 2, 3}, E: []float64{0.1, 0.2}}
	if _, err := SolveRange(tri, -1, 1, nil); err == nil {
		t.Error("il<0 must error")
	}
	if _, err := SolveRange(tri, 2, 1, nil); err == nil {
		t.Error("il>iu must error")
	}
	if _, err := SolveRange(tri, 0, 3, nil); err == nil {
		t.Error("iu>=n must error")
	}
}

func TestSVDPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(607))
	m, n := 20, 12
	a := make([]float64, m*n)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	orig := append([]float64(nil), a...)
	r, err := SVD(m, n, a, m, &Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.S) != n || len(r.UCol(0)) != m || len(r.VCol(0)) != n {
		t.Fatal("shape")
	}
	// reconstruction
	worst := 0.0
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			var s float64
			for k := 0; k < n; k++ {
				s += r.U[i+k*m] * r.S[k] * r.V[j+k*n]
			}
			worst = math.Max(worst, math.Abs(s-orig[i+j*m]))
		}
	}
	if worst > 1e-12*float64(n) {
		t.Errorf("SVD reconstruction %.3e", worst)
	}
}

func TestValuesRange(t *testing.T) {
	rng := rand.New(rand.NewSource(609))
	n := 70
	tri := randomTridiag(rng, n)
	full, err := Values(tri)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := ValuesRange(tri, 20, 29)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 10; j++ {
		if math.Abs(sub[j]-full[20+j]) > 1e-12 {
			t.Errorf("value %d: %v vs %v", j, sub[j], full[20+j])
		}
	}
	if _, err := ValuesRange(tri, 5, 3); err == nil {
		t.Error("il>iu must error")
	}
}
