package eigen

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tridiag/internal/faultinject"
)

// coalescingConfig is the suite's base coalescing setup: a real window, a
// queue deep enough that members holding their slots through the window
// never starve admission.
func coalescingConfig() ServerConfig {
	cfg := serverConfig()
	cfg.MaxConcurrent = 2
	cfg.MaxQueue = 128
	cfg.BatchWindow = 4 * time.Millisecond
	return cfg
}

// TestServerCoalescingWindow floods a coalescing server with eligible small
// solves: every job is served through a batch, results verify against their
// own inputs, and the flush/served counters reconcile.
func TestServerCoalescingWindow(t *testing.T) {
	s := NewServer(coalescingConfig())
	rng := rand.New(rand.NewSource(20))
	const jobs = 24
	tris := make([]Tridiagonal, jobs)
	for i := range tris {
		tris[i] = randomTridiag(rng, 24+rng.Intn(40))
	}
	var wg sync.WaitGroup
	for i := range tris {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sr, err := s.Solve(context.Background(), tris[i], nil)
			if err != nil {
				t.Errorf("job %d: %v", i, err)
				return
			}
			if sr.Disposition != DispositionCompleted {
				t.Errorf("job %d: disposition %v, want completed", i, sr.Disposition)
				return
			}
			if rres := Residual(tris[i], sr.Result); rres > maxResidual {
				t.Errorf("job %d: residual %.3e (mis-attributed result?)", i, rres)
			}
		}(i)
	}
	wg.Wait()
	st := s.Stats()
	if st.Completed != jobs || st.Failed != 0 || st.Cancelled != 0 || st.Rejected != 0 {
		t.Fatalf("dispositions completed=%d failed=%d cancelled=%d rejected=%d, want %d/0/0/0",
			st.Completed, st.Failed, st.Cancelled, st.Rejected, jobs)
	}
	if st.CoalescedJobs != jobs || st.BatchServedJobs != jobs {
		t.Fatalf("coalesced=%d batch-served=%d, want %d/%d", st.CoalescedJobs, st.BatchServedJobs, jobs, jobs)
	}
	if st.BatchesFlushed < 1 {
		t.Fatalf("no batches flushed")
	}
	if st.FlushByTimer+st.FlushBySize+st.FlushByBytes != st.BatchesFlushed {
		t.Fatalf("flush reasons %d+%d+%d do not sum to %d flushes",
			st.FlushByTimer, st.FlushBySize, st.FlushByBytes, st.BatchesFlushed)
	}
	var hist int64
	for _, c := range st.BatchSizeHist {
		hist += c
	}
	if hist != st.BatchesFlushed {
		t.Fatalf("size histogram sums to %d, want %d flushes", hist, st.BatchesFlushed)
	}
	if st.BatchWindow <= 0 {
		t.Fatalf("stats report no batch window on a coalescing server")
	}
	if st.BatchTaskNanos <= 0 {
		t.Fatalf("no batch task time recorded")
	}
	if st.Queued != 0 || st.ReservedBytes != 0 {
		t.Fatalf("leftover queue/reservation after flood: queued=%d reserved=%d", st.Queued, st.ReservedBytes)
	}
}

// TestServerCoalescingEligibility pins what bypasses the batcher: jobs above
// BatchMaxN, with explicit tuning knobs, or on a server without a window all
// go direct.
func TestServerCoalescingEligibility(t *testing.T) {
	cfg := coalescingConfig()
	cfg.BatchMaxN = 64
	s := NewServer(cfg)
	rng := rand.New(rand.NewSource(21))
	mustSolve(t, s, randomTridiag(rng, 128), nil)                       // above BatchMaxN
	mustSolve(t, s, randomTridiag(rng, 40), &Options{Workers: 2})       // explicit workers
	mustSolve(t, s, randomTridiag(rng, 40), &Options{MinPartition: 16}) // explicit partition
	mustSolve(t, s, randomTridiag(rng, 40), &Options{Method: MethodQR}) // no task graph
	st := s.Stats()
	if st.CoalescedJobs != 0 || st.DirectJobs != 4 {
		t.Fatalf("coalesced=%d direct=%d, want 0/4", st.CoalescedJobs, st.DirectJobs)
	}
	s2 := NewServer(serverConfig()) // no window: coalescing off
	mustSolve(t, s2, randomTridiag(rng, 40), nil)
	if st2 := s2.Stats(); st2.CoalescedJobs != 0 || st2.BatchWindow != 0 {
		t.Fatalf("window-less server coalesced=%d window=%v", st2.CoalescedJobs, st2.BatchWindow)
	}
}

// TestServerSolveBatchSizeFlush submits one full batch through the batch
// entry point: it must flush by the size cap as a single batch, with every
// member's ServeResult completed and attributable.
func TestServerSolveBatchSizeFlush(t *testing.T) {
	cfg := coalescingConfig()
	cfg.BatchWindow = 200 * time.Millisecond // only the size cap can flush in test time
	cfg.BatchMaxSize = 8
	s := NewServer(cfg)
	rng := rand.New(rand.NewSource(22))
	tris := make([]Tridiagonal, 8)
	for i := range tris {
		tris[i] = randomTridiag(rng, 32+4*i)
	}
	out := s.SolveBatch(context.Background(), tris, nil)
	if len(out) != len(tris) {
		t.Fatalf("got %d results, want %d", len(out), len(tris))
	}
	for i, sr := range out {
		if sr.Err != nil {
			t.Fatalf("member %d: %v", i, sr.Err)
		}
		if sr.Disposition != DispositionCompleted {
			t.Fatalf("member %d: disposition %v", i, sr.Disposition)
		}
		if rres := Residual(tris[i], sr.Result); rres > maxResidual {
			t.Errorf("member %d: residual %.3e", i, rres)
		}
		if sr.Result.Stats.BatchSize != 8 {
			t.Errorf("member %d: BatchSize=%d, want 8", i, sr.Result.Stats.BatchSize)
		}
	}
	st := s.Stats()
	if st.FlushBySize != 1 || st.BatchesFlushed != 1 {
		t.Fatalf("flushes=%d by-size=%d, want 1/1", st.BatchesFlushed, st.FlushBySize)
	}
}

// TestServerSolveBatchInvalidMember sends one malformed matrix in a server
// batch: its ServeResult carries the error, batch-mates are served.
func TestServerSolveBatchInvalidMember(t *testing.T) {
	s := NewServer(coalescingConfig())
	rng := rand.New(rand.NewSource(23))
	tris := []Tridiagonal{
		randomTridiag(rng, 30),
		{D: []float64{1, math.NaN()}, E: []float64{1}},
		randomTridiag(rng, 45),
	}
	out := s.SolveBatch(context.Background(), tris, nil)
	if out[1].Err == nil || out[1].Disposition == DispositionCompleted {
		t.Fatalf("invalid member served: err=%v disposition=%v", out[1].Err, out[1].Disposition)
	}
	for _, i := range []int{0, 2} {
		if out[i].Err != nil || out[i].Disposition != DispositionCompleted {
			t.Fatalf("member %d: err=%v disposition=%v", i, out[i].Err, out[i].Disposition)
		}
		if rres := Residual(tris[i], out[i].Result); rres > maxResidual {
			t.Errorf("member %d: residual %.3e", i, rres)
		}
	}
}

// TestServerCoalescedFaultRetriesSolo injects a deterministic single-shot
// kernel fault into a coalesced batch: the one member it hits falls back to
// the solo ladder (its batch attempt consumed from the retry budget) and is
// still served; batch-mates are unaffected.
func TestServerCoalescedFaultRetriesSolo(t *testing.T) {
	cfg := coalescingConfig()
	cfg.BatchWindow = 200 * time.Millisecond
	cfg.BatchMaxSize = 8
	s := NewServer(cfg)
	rng := rand.New(rand.NewSource(24))
	tris := make([]Tridiagonal, 8)
	for i := range tris {
		tris[i] = randomTridiag(rng, 40)
	}
	faultinject.Enable(3, faultinject.Probe{Class: "STEDC", Kind: faultinject.KindError, P: 1, MaxFires: 1})
	out := s.SolveBatch(context.Background(), tris, nil)
	faultinject.Disable()
	retried := 0
	for i, sr := range out {
		if sr.Err != nil {
			t.Fatalf("member %d: %v", i, sr.Err)
		}
		if rres := Residual(tris[i], sr.Result); rres > maxResidual {
			t.Errorf("member %d: residual %.3e", i, rres)
		}
		switch sr.Disposition {
		case DispositionCompleted:
		case DispositionRetried, DispositionDegraded:
			retried++
		default:
			t.Fatalf("member %d: disposition %v", i, sr.Disposition)
		}
	}
	if retried != 1 {
		t.Fatalf("%d members took the solo fallback, want 1", retried)
	}
	if st := s.Stats(); st.BatchServedJobs != 7 {
		t.Fatalf("batch-served=%d, want 7", st.BatchServedJobs)
	}
}

// TestServerStressSmallSolveFlood is the coalescing stress gate (picked up
// by the race-enabled stress target): 64 clients flood the server with small
// eligible solves, and every job must come back served, attributed to its own
// matrix, with the disposition ledger balancing exactly — zero lost jobs.
func TestServerStressSmallSolveFlood(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := ServerConfig{
		MaxConcurrent: 4,
		MaxQueue:      256,
		StallWindow:   time.Minute,
		MaxRetries:    2,
		RetryBase:     time.Millisecond,
		BatchWindow:   2 * time.Millisecond,
	}
	s := NewServer(cfg)
	const clients = 64
	perClient := 4
	if testing.Short() {
		perClient = 2
	}
	var served, badAttr atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + c)))
			for j := 0; j < perClient; j++ {
				tri := randomTridiag(rng, 16+rng.Intn(48))
				sr, err := s.Solve(context.Background(), tri, nil)
				if err != nil {
					t.Errorf("client %d job %d: %v", c, j, err)
					continue
				}
				if sr.Disposition != DispositionCompleted && sr.Disposition != DispositionRetried {
					t.Errorf("client %d job %d: disposition %v", c, j, sr.Disposition)
					continue
				}
				if rres := Residual(tri, sr.Result); rres > maxResidual {
					badAttr.Add(1)
					t.Errorf("client %d job %d: residual %.3e — result not for this matrix", c, j, rres)
					continue
				}
				served.Add(1)
			}
		}(c)
	}
	wg.Wait()
	total := int64(clients * perClient)
	if served.Load() != total {
		t.Fatalf("served %d of %d jobs (mis-attributed: %d)", served.Load(), total, badAttr.Load())
	}
	st := s.Stats()
	if st.Admitted != total {
		t.Fatalf("admitted %d, want %d", st.Admitted, total)
	}
	if st.Completed+st.Retried != total || st.Failed != 0 || st.Cancelled != 0 || st.Degraded != 0 {
		t.Fatalf("disposition ledger completed=%d retried=%d degraded=%d cancelled=%d failed=%d, want sum %d with no losses",
			st.Completed, st.Retried, st.Degraded, st.Cancelled, st.Failed, total)
	}
	if st.CoalescedJobs+st.DirectJobs < total {
		t.Fatalf("coalesced=%d + direct=%d < %d jobs", st.CoalescedJobs, st.DirectJobs, total)
	}
	if st.Queued != 0 || st.Running != 0 || st.ReservedBytes != 0 {
		t.Fatalf("leftover state: queued=%d running=%d reserved=%d", st.Queued, st.Running, st.ReservedBytes)
	}
	checkGoroutines(t, before)
}
