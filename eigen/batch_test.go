package eigen

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"tridiag/internal/faultinject"
	"tridiag/internal/pool"
)

// batchSpectrum asserts one batch member's result against the paper's
// Figure 9 accuracy bars (both metrics normalized by n inside the helpers).
func batchSpectrum(t *testing.T, i int, tri Tridiagonal, res *Result) {
	t.Helper()
	if res == nil {
		t.Fatalf("matrix %d: nil result", i)
	}
	n := tri.N()
	if res.N != n || len(res.Values) != n || len(res.Vectors) != n*n {
		t.Fatalf("matrix %d: result shape n=%d values=%d vectors=%d", i, res.N, len(res.Values), len(res.Vectors))
	}
	for j := 1; j < n; j++ {
		if res.Values[j] < res.Values[j-1] {
			t.Fatalf("matrix %d: eigenvalues not ascending at %d", i, j)
		}
	}
	if n == 0 {
		return
	}
	if rres := Residual(tri, res); rres > maxResidual {
		t.Errorf("matrix %d: residual %.3e > %.0e", i, rres, maxResidual)
	}
	if orth := Orthogonality(res); orth > maxOrthogonality {
		t.Errorf("matrix %d: orthogonality %.3e > %.0e", i, orth, maxOrthogonality)
	}
}

// TestSolveBatchMatchesSolve pins the batched path against per-matrix Solve:
// same eigenvalues, valid spectra, and per-batch stats stamped, across mixed
// sizes including the n=0 and n=1 edges.
func TestSolveBatchMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	sizes := []int{0, 1, 5, 33, 64, 90, 2}
	tris := make([]Tridiagonal, len(sizes))
	for i, n := range sizes {
		tris[i] = randomTridiag(rng, n)
	}
	opts := &Options{Workers: 4, MinPartition: 24}
	results, err := SolveBatch(context.Background(), tris, opts)
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}
	if len(results) != len(tris) {
		t.Fatalf("got %d results for %d matrices", len(results), len(tris))
	}
	for i, tri := range tris {
		res := results[i]
		batchSpectrum(t, i, tri, res)
		if res.Stats.BatchSize != len(tris) {
			t.Errorf("matrix %d: BatchSize=%d, want %d", i, res.Stats.BatchSize, len(tris))
		}
		solo, err := Solve(tri, opts)
		if err != nil {
			t.Fatalf("matrix %d: Solve: %v", i, err)
		}
		for j := range solo.Values {
			if d := math.Abs(solo.Values[j] - res.Values[j]); d > 1e-10*(1+math.Abs(solo.Values[j])) {
				t.Fatalf("matrix %d: eigenvalue %d differs: batch %.17g solo %.17g", i, j, res.Values[j], solo.Values[j])
			}
		}
	}
}

// TestSolveBatchEmptyAndNonDC covers the degenerate batch and the loop path
// taken by methods without a task graph to share.
func TestSolveBatchEmptyAndNonDC(t *testing.T) {
	if res, err := SolveBatch(context.Background(), nil, nil); err != nil || len(res) != 0 {
		t.Fatalf("empty batch: res=%v err=%v", res, err)
	}
	rng := rand.New(rand.NewSource(809))
	tris := []Tridiagonal{randomTridiag(rng, 20), randomTridiag(rng, 31)}
	results, err := SolveBatch(context.Background(), tris, &Options{Method: MethodQR})
	if err != nil {
		t.Fatalf("QR batch: %v", err)
	}
	for i, tri := range tris {
		batchSpectrum(t, i, tri, results[i])
	}
}

// TestSolveBatchInvalidMember feeds one malformed matrix into a batch and
// requires an indexed BatchError with every other member still served.
func TestSolveBatchInvalidMember(t *testing.T) {
	rng := rand.New(rand.NewSource(810))
	tris := []Tridiagonal{
		randomTridiag(rng, 40),
		{D: []float64{1, math.NaN(), 3}, E: []float64{1, 1}},
		randomTridiag(rng, 28),
	}
	results, err := SolveBatch(context.Background(), tris, &Options{Workers: 2, MinPartition: 16})
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("want *BatchError, got %v", err)
	}
	if be.Failed() != 1 || be.Errs[1] == nil {
		t.Fatalf("want exactly matrix 1 failed, got %v", be.Errs)
	}
	if results[1] != nil {
		t.Fatalf("failed member should have nil result")
	}
	batchSpectrum(t, 0, tris[0], results[0])
	batchSpectrum(t, 2, tris[2], results[2])
}

// TestSolveBatchCancelled pins the cancellation contract: an already-dead
// context returns (nil, ctx.Err()) before any task runs.
func TestSolveBatchCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(811))
	res, err := SolveBatch(ctx, []Tridiagonal{randomTridiag(rng, 50)}, nil)
	if !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("cancelled batch: res=%v err=%v", res, err)
	}
}

// TestSolveBatchFaultIsolation is the batch failure-isolation gate: a
// deterministic single-shot fault in one matrix of a 16-matrix batch must
// leave the other 15 completed and validated, the pool accountant back at
// baseline, and no goroutines behind. Run under -race by the stress target's
// chaos siblings.
func TestSolveBatchFaultIsolation(t *testing.T) {
	before := runtime.NumGoroutine()
	baseline := pool.InUseBytes()
	for _, probe := range []faultinject.Probe{
		{Class: "LAED4", Kind: faultinject.KindError, P: 1, MaxFires: 1},
		{Class: "STEDC", Kind: faultinject.KindPanic, P: 1, MaxFires: 1},
		{Class: "UpdateVect", Kind: faultinject.KindError, P: 1, MaxFires: 1},
	} {
		t.Run(probe.Class, func(t *testing.T) {
			rng := rand.New(rand.NewSource(812))
			tris := make([]Tridiagonal, 16)
			for i := range tris {
				tris[i] = randomTridiag(rng, 64)
			}
			faultinject.Enable(7, probe)
			results, err := SolveBatch(context.Background(), tris, chaosOptions(false))
			faultinject.Disable()

			var be *BatchError
			if !errors.As(err, &be) {
				t.Fatalf("want *BatchError, got %v", err)
			}
			if got := be.Failed(); got != 1 {
				t.Fatalf("single-shot fault failed %d matrices, want 1: %v", got, be.Errs)
			}
			served := 0
			for i, tri := range tris {
				if be.Errs[i] != nil {
					if results[i] != nil {
						t.Fatalf("matrix %d: failed but has a result", i)
					}
					continue
				}
				batchSpectrum(t, i, tri, results[i])
				served++
			}
			if served != 15 {
				t.Fatalf("served %d matrices, want 15", served)
			}
			checkAccountant(t, "batch/"+probe.Class, baseline)
		})
	}

	// With Fallback, the faulted matrix is retried alone on the degraded
	// tiers and the whole batch is served.
	rng := rand.New(rand.NewSource(813))
	tris := make([]Tridiagonal, 16)
	for i := range tris {
		tris[i] = randomTridiag(rng, 64)
	}
	faultinject.Enable(11, faultinject.Probe{Class: "LAED4", Kind: faultinject.KindError, P: 1, MaxFires: 1})
	results, err := SolveBatch(context.Background(), tris, chaosOptions(true))
	faultinject.Disable()
	if err != nil {
		t.Fatalf("fallback batch: %v", err)
	}
	recovered := 0
	for i, tri := range tris {
		batchSpectrum(t, i, tri, results[i])
		if len(results[i].Stats.TierErrors) > 0 {
			recovered++
			if !results[i].Stats.Validated {
				t.Fatalf("matrix %d: fallback result not validated", i)
			}
		}
	}
	if recovered != 1 {
		t.Fatalf("fallback recovered %d matrices, want 1", recovered)
	}
	checkAccountant(t, "batch/fallback", baseline)
	checkGoroutines(t, before)
}

// TestEstimateBatchSolveBytes pins the batch-aware admission estimate: exact
// for a singleton, never above the sum of per-job estimates (the shared pool
// reuses packed buffers across batch-mates, so per-job reservation would
// over-reserve ~Nx and starve admission), and with positive marginals so the
// coalescer's telescoped reservations stay sane.
func TestEstimateBatchSolveBytes(t *testing.T) {
	const workers = 4
	for _, n := range []int{1, 16, 64, 128, 256} {
		single := EstimateSolveBytes(n, workers)
		batch1 := EstimateBatchSolveBytes([]int{n}, workers)
		if single != batch1 {
			t.Errorf("n=%d: singleton batch estimate %d != EstimateSolveBytes %d", n, batch1, single)
		}
	}
	ns := []int{32, 256, 64, 64, 128, 32, 96, 256, 16, 48}
	var sum int64
	for _, n := range ns {
		sum += EstimateSolveBytes(n, workers)
	}
	batch := EstimateBatchSolveBytes(ns, workers)
	if batch > sum {
		t.Fatalf("batch estimate %d exceeds sum of singles %d", batch, sum)
	}
	if batch <= sum/4 {
		t.Fatalf("batch estimate %d implausibly small vs sum %d", batch, sum)
	}
	// Monotone in the member set: adding a matrix never shrinks the
	// estimate, so marginal (telescoped) reservations are non-negative.
	prefix := []int(nil)
	prev := EstimateBatchSolveBytes(prefix, workers)
	for _, n := range ns {
		prefix = append(prefix, n)
		cur := EstimateBatchSolveBytes(prefix, workers)
		if cur < prev {
			t.Fatalf("estimate shrank from %d to %d when adding n=%d", prev, cur, n)
		}
		if cur-prev <= 0 {
			t.Fatalf("non-positive marginal adding n=%d", n)
		}
		prev = cur
	}
	if EstimateBatchSolveBytes(nil, workers) != 0 {
		t.Fatalf("empty batch estimate should be 0")
	}
}
