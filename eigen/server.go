package eigen

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"tridiag/internal/faultinject"
	"tridiag/internal/pool"
)

// Server is a multi-tenant solve service: many goroutines call Solve
// concurrently against one process-wide pool of workers and workspace.
// It wraps the task-flow solver with the arbitration a long-running service
// needs and a single library solve does not:
//
//   - Admission control: a bounded queue plus an explicit workspace budget.
//     A job whose queue slot, memory reservation, or deadline cannot be
//     honored is rejected immediately with ErrOverloaded instead of degrading
//     every other tenant.
//   - Watchdog: a per-solve goroutine observes task-completion heartbeats
//     (Options.Progress → quark.WithProgress) and aborts a solve that makes
//     no progress within the stall window through the normal context
//     cancellation path.
//   - Retries: transient failures (injected faults, stalls — classified by
//     faultinject.Transient) are retried on the primary tier with exponential
//     backoff and jitter; persistent numerical failures fall through to the
//     PR 2 degradation tiers (sequential DSTEDC → QR with validation).
//   - Circuit breaker: a kernel class that keeps failing stops being retried;
//     new jobs route straight to the fallback tier until a half-open probe
//     succeeds.
//   - Graceful drain: Shutdown stops admission, lets in-flight solves finish
//     (or cancels them at the drain deadline) and reports every job's
//     disposition.
type Server struct {
	cfg ServerConfig

	mu           sync.Mutex
	closed       bool
	queued       int   // admitted, waiting for a worker slot
	running      int   // holding a worker slot
	reserved     int64 // admitted-but-unfinished workspace reservations
	peakReserved int64
	avgNanos     float64 // EWMA of completed full-solve service time
	avgNanosVO   float64 // EWMA of completed values-only service time
	jobs         map[uint64]*serverJob
	idleTimer    *time.Timer // pending idle pool trim, nil when disarmed
	idleGen      uint64      // invalidates stale idle-trim timer firings

	nextID      atomic.Uint64
	slots       chan struct{}
	drainCtx    context.Context
	drainCancel context.CancelFunc

	breakers breakerSet
	counts   [dispositionCount]atomic.Int64
	retries  atomic.Int64
	stalls   atomic.Int64
	admitted atomic.Int64

	leakedBytes  atomic.Int64 // pooled bytes served jobs leaked to the GC
	corrDetected atomic.Int64 // silent-corruption detections across served jobs
	corrHealed   atomic.Int64 // detections healed by recompute, retry or fallback

	b   batcher // full-solve request-coalescing window (enabled by BatchWindow > 0)
	bVO batcher // values-only coalescing window: the two classes never mix in a batch

	voAdmitted     atomic.Int64 // values_only jobs past admission
	voCompleted    atomic.Int64 // values_only jobs served (completed/retried/degraded)
	batchesFlushed atomic.Int64
	coalesced      atomic.Int64
	batchServed    atomic.Int64
	direct         atomic.Int64
	flushTimer     atomic.Int64
	flushSize      atomic.Int64
	flushBytes     atomic.Int64
	batchHist      [batchHistBuckets]atomic.Int64
	batchTaskNanos atomic.Int64
}

// ServerConfig tunes a Server; zero values select the documented defaults.
type ServerConfig struct {
	// MaxConcurrent is the number of solves executing at once
	// (default GOMAXPROCS). Each admitted job beyond it waits in the queue.
	MaxConcurrent int
	// MaxQueue bounds how many admitted jobs may wait for a slot
	// (default 4×MaxConcurrent). Beyond it, Solve returns ErrOverloaded.
	MaxQueue int
	// MemoryBudget caps the summed workspace reservations of admitted jobs,
	// in bytes (estimated per job by EstimateSolveBytes from its n and
	// worker count, and tracked for real by the pool accountant). 0 means
	// unlimited. A job whose reservation would exceed the budget is
	// rejected with ErrOverloaded.
	MemoryBudget int64
	// StallWindow is the watchdog's no-progress abort threshold per attempt
	// (default 10s; negative disables the watchdog). It must cover the
	// longest sequential phase of a solve: only task-flow tiers emit
	// per-task heartbeats.
	StallWindow time.Duration
	// MaxRetries is how many same-tier retries a transient failure earns
	// before the job degrades to the fallback tier (default 2).
	MaxRetries int
	// RetryBase is the first backoff delay; attempt k waits
	// RetryBase·2^(k-1) with ±50% jitter, capped at 16×RetryBase
	// (default 10ms).
	RetryBase time.Duration
	// BreakerThreshold opens a failure class's circuit after this many
	// consecutive failures (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit routes jobs straight to
	// the fallback tier before one half-open probe may try the primary
	// tier again (default 2s).
	BreakerCooldown time.Duration
	// PoolRetainBytes, when positive, sets the scratch pool's retention
	// cap (pool.SetRetainLimit) for the whole process: the ceiling on idle
	// pooled workspace kept warm between solves. 0 leaves the pool's
	// default in place. The pool is process-global, so the last server
	// configured wins.
	PoolRetainBytes int64
	// PoolIdleTrimDelay is how long the server must be completely idle
	// (no queued or running jobs) before it releases ALL idle pooled
	// scratch back to the GC (default 2s; negative disables idle
	// trimming). Busy periods never trigger it: any admission re-arms the
	// timer.
	PoolIdleTrimDelay time.Duration
	// BatchWindow enables request coalescing when positive: eligible small
	// solves (MethodDC, n ≤ BatchMaxN, default tuning options) are held up
	// to this long and flushed as ONE SolveBatch on ONE worker slot, giving
	// the scheduler cross-matrix width that a single small solve cannot.
	// The window adapts to traffic like the solver's PanelSize does: a
	// window that keeps flushing near-empty (one waiter) halves, down to
	// BatchWindow/8, so sparse traffic pays almost no added latency; a
	// window that keeps filling by size doubles back toward BatchWindow.
	// 0 disables coalescing (the default — existing deployments are
	// unchanged). Each held request keeps its own deadline, retry/degrade
	// policy and disposition.
	BatchWindow time.Duration
	// BatchMaxSize flushes the window early when this many requests are
	// waiting (default 64). The queue bound still applies: coalesced
	// requests occupy queue slots while they wait, so the effective batch
	// size is also capped by MaxQueue.
	BatchMaxSize int
	// BatchMaxN is the largest matrix order admitted into the coalescing
	// window (default 256); larger solves have enough width of their own
	// and are served directly.
	BatchMaxN int
	// BatchMaxBytes flushes the window early when the batch-aware
	// workspace estimate (EstimateBatchSolveBytes) of the waiting requests
	// reaches this many bytes (default MemoryBudget/4 when a budget is
	// set, else unbounded).
	BatchMaxBytes int64
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	if c.StallWindow == 0 {
		c.StallWindow = 10 * time.Second
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 10 * time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.PoolIdleTrimDelay == 0 {
		c.PoolIdleTrimDelay = 2 * time.Second
	}
	if c.BatchWindow > 0 {
		if c.BatchMaxSize <= 0 {
			c.BatchMaxSize = 64
		}
		if c.BatchMaxN <= 0 {
			c.BatchMaxN = 256
		}
		if c.BatchMaxBytes == 0 && c.MemoryBudget > 0 {
			c.BatchMaxBytes = c.MemoryBudget / 4
		}
	}
	return c
}

// Sentinel errors of the admission layer. ErrOverloaded is always wrapped
// with the specific reason (queue full, budget exceeded, deadline
// unserviceable); match with errors.Is.
var (
	ErrOverloaded   = errors.New("eigen: server overloaded")
	ErrServerClosed = errors.New("eigen: server closed")
)

// StallError is a watchdog abort: the solve made no task progress within
// the stall window. It is transient — the stall may have been an injected
// delay, a descheduled worker, or scheduler pathology — so the retry policy
// treats it like an injected fault.
type StallError struct {
	Window time.Duration
}

func (e *StallError) Error() string {
	return fmt.Sprintf("eigen: watchdog: no task progress within %v", e.Window)
}

// Transient marks stalls retryable (read by faultinject.Transient).
func (e *StallError) Transient() bool { return true }

// TaskClass attributes stalls to their own breaker class: a stall carries no
// kernel identity, but repeated stalls should trip a circuit all the same.
func (e *StallError) TaskClass() string { return "stall" }

// Disposition classifies how the server finished with a job. Every Solve
// call ends in exactly one disposition, reported in ServeResult and
// aggregated in ServerStats.
type Disposition int

const (
	// DispositionCompleted: served by the primary tier on the first attempt.
	DispositionCompleted Disposition = iota
	// DispositionRetried: served by the primary tier after at least one
	// transient-failure retry.
	DispositionRetried
	// DispositionDegraded: served by a fallback tier (validated result).
	DispositionDegraded
	// DispositionRejected: refused at admission (overload or closed server).
	DispositionRejected
	// DispositionCancelled: the job's context was cancelled, its deadline
	// expired, or the server drain cancelled it.
	DispositionCancelled
	// DispositionFailed: every tier failed persistently.
	DispositionFailed

	dispositionCount = int(DispositionFailed) + 1
)

func (d Disposition) String() string {
	switch d {
	case DispositionCompleted:
		return "completed"
	case DispositionRetried:
		return "retried-then-completed"
	case DispositionDegraded:
		return "degraded"
	case DispositionRejected:
		return "rejected"
	case DispositionCancelled:
		return "cancelled"
	case DispositionFailed:
		return "failed"
	}
	return fmt.Sprintf("Disposition(%d)", int(d))
}

// ServeResult is what the server reports for one job: the decomposition (nil
// when the job did not produce one) plus how it was served. It is non-nil
// even when Solve returns an error, so callers always get a classified
// disposition.
type ServeResult struct {
	*Result
	// Disposition classifies the outcome.
	Disposition Disposition
	// Attempts counts solve attempts (0 for rejected jobs).
	Attempts int
	// Stalls counts watchdog aborts this job suffered.
	Stalls int
	// Err is this job's error when served through Server.SolveBatch (nil
	// on success); single-job Solve reports its error through the return
	// value instead.
	Err error
}

// ServerStats is a snapshot of the service counters.
type ServerStats struct {
	// Admitted counts jobs that passed admission control.
	Admitted int64
	// Per-disposition totals. Completed+Retried+Degraded+Cancelled+Failed
	// equals the number of finished admitted jobs; Rejected counts
	// admission refusals.
	Completed, Retried, Degraded, Rejected, Cancelled, Failed int64
	// Retries is the total number of same-tier retry attempts.
	Retries int64
	// WatchdogAborts counts solves aborted for lack of progress.
	WatchdogAborts int64
	// BreakerOpens counts circuit-breaker open transitions.
	BreakerOpens int64
	// OpenBreakers lists the failure classes currently routed to fallback.
	OpenBreakers []string
	// Queued and Running are the current queue depth and in-flight count.
	Queued, Running int
	// ReservedBytes and PeakReservedBytes track the admission-control
	// workspace reservations (the pool accountant, pool.InUseBytes, tracks
	// actual checked-out bytes).
	ReservedBytes, PeakReservedBytes int64
	// PoolInUseBytes is the scratch currently checked out of the pool;
	// PoolRetainedBytes is the idle scratch kept warm for the next solve
	// (bounded by the retention cap and dropped after idle trimming).
	PoolInUseBytes, PoolRetainedBytes int64
	// BatchesFlushed counts coalescing-window flushes; FlushByTimer,
	// FlushBySize and FlushByBytes break them down by trigger.
	BatchesFlushed                          int64
	FlushByTimer, FlushBySize, FlushByBytes int64
	// CoalescedJobs counts jobs that entered a coalescing batch;
	// BatchServedJobs those served by their batch (the rest fell back to
	// the solo path); DirectJobs counts jobs served without a batch.
	CoalescedJobs, BatchServedJobs, DirectJobs int64
	// BatchSizeHist is a power-of-two histogram of flushed batch sizes:
	// bucket i counts batches of size in (2^(i-1), 2^i] (bucket 0 = size
	// 1, last bucket = everything larger).
	BatchSizeHist []int64
	// BatchTaskNanos totals the task-kernel time executed inside coalesced
	// batches (the per-batch task-time totals, summed over batches).
	BatchTaskNanos int64
	// ValuesOnlyAdmitted and ValuesOnlyCompleted are the values_only request
	// class's share of Admitted and of the served dispositions
	// (completed + retried + degraded). The class has its own admission
	// estimate (EstimateValuesOnlySolveBytes), coalescing window and
	// service-time EWMA, so these counters are what capacity planning needs
	// to see the two classes separately.
	ValuesOnlyAdmitted, ValuesOnlyCompleted int64
	// LeakedBytes totals the pooled workspace served jobs leaked to the GC
	// through failed or cancelled merges (the per-solve
	// SolveStats.LeakedBytes ledgers, summed). Steady growth means retries
	// or corruption heals are abandoning workspace — expected under fault
	// injection, a red flag in production.
	LeakedBytes int64
	// CorruptionsDetected counts silent-corruption detections across all
	// jobs: ABFT checksum mismatches, violated merge invariants, failed
	// result audits, and corruption-classified attempt failures.
	// CorruptionsHealed is how many of them were contained — the job was
	// still served a verified result (task recompute, same-tier retry, or
	// tier fallback). Detected > Healed means corrupted jobs failed outright;
	// detections NEVER ship: a result that failed its audit is not returned.
	CorruptionsDetected, CorruptionsHealed int64
	// AvgServiceNanos and ValuesOnlyAvgServiceNanos are the per-class
	// service-time EWMAs feeding the deadline-aware admission check
	// (0 until a job of that class completes).
	AvgServiceNanos, ValuesOnlyAvgServiceNanos int64
	// BatchWindow is the coalescer's current adaptive flush window
	// (0 when coalescing is disabled).
	BatchWindow time.Duration
}

// JobReport is one job's final disposition in a drain report.
type JobReport struct {
	ID          uint64
	N           int
	Disposition Disposition
}

// DrainReport lists the dispositions of the jobs that were in flight when
// Shutdown was called.
type DrainReport struct {
	Jobs []JobReport
}

type serverJob struct {
	id          uint64
	n           int
	done        chan struct{}
	disposition Disposition // written before close(done)
}

// NewServer starts a solve service. Call Shutdown to drain it.
func NewServer(cfg ServerConfig) *Server {
	cfg = cfg.withDefaults()
	if cfg.PoolRetainBytes > 0 {
		pool.SetRetainLimit(cfg.PoolRetainBytes)
	}
	drainCtx, drainCancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:         cfg,
		jobs:        make(map[uint64]*serverJob),
		slots:       make(chan struct{}, cfg.MaxConcurrent),
		drainCtx:    drainCtx,
		drainCancel: drainCancel,
		breakers: breakerSet{
			threshold: cfg.BreakerThreshold,
			cooldown:  cfg.BreakerCooldown,
			m:         make(map[string]*breaker),
		},
	}
	s.b.window.Store(int64(cfg.BatchWindow))
	s.bVO.window.Store(int64(cfg.BatchWindow))
	return s
}

// batcherFor returns the coalescing window of a request class. Values-only
// and full solves never share a batch: one SolveBatch runs with one Options,
// and the two classes differ in workspace shape, runtime and result payload.
func (s *Server) batcherFor(valuesOnly bool) *batcher {
	if valuesOnly {
		return &s.bVO
	}
	return &s.b
}

// batchReq is one job waiting in (or flushed from) the coalescing window.
// The flusher writes exactly one of res/err and then closes done; the
// waiting Solve call reads them only after done.
type batchReq struct {
	t    Tridiagonal
	res  *Result
	err  error
	done chan struct{}
}

// batcher is the request-coalescing window: eligible jobs accumulate in
// pending and are flushed as one SolveBatch when the adaptive window timer
// fires, the size cap is reached, or the batch-aware workspace estimate hits
// the bytes cap.
type batcher struct {
	mu      sync.Mutex
	pending []*batchReq
	bytes   int64        // telescoped batch-aware estimate of pending
	gen     uint64       // invalidates stale timer firings
	timer   *time.Timer  // armed while pending is non-empty, nil otherwise
	window  atomic.Int64 // current adaptive flush window, nanoseconds
}

// takeLocked removes and returns the pending window; the caller holds b.mu.
func (b *batcher) takeLocked() []*batchReq {
	reqs := b.pending
	b.pending = nil
	b.bytes = 0
	b.gen++
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return reqs
}

// EstimateSolveBytes is the admission-control estimate of the pooled
// workspace one task-flow solve of order n with the given worker count can
// have checked out at once, in pool size-class bytes (pool.ClassBytes): the
// root merge's secular matrix, compressed operands, deflated columns and
// packed GEMM panels, doubled because the concurrently-live lower tree
// levels sum to at most one more root merge, plus per-worker small scratch.
// It deliberately over-reserves — the budget bounds the worst case, and the
// pool accountant reports what solves actually use.
func EstimateSolveBytes(n, workers int) int64 {
	if n <= 0 {
		return 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return 2*estimateMergeBytes(n) + int64(workers+1)*poolClassBytes(int64(8*n)+1)
}

// poolClassBytes rounds a float64-element count up to its pool size class in
// bytes, falling back to the plain allocation size beyond the largest class.
func poolClassBytes(f int64) int64 {
	if f > int64(int(^uint(0)>>1)) { // overflow guard for huge n
		return f * 8
	}
	if b := pool.ClassBytes(int(f)); b > 0 {
		return b
	}
	return f * 8 // beyond the largest pool class: plain allocation
}

// estimateMergeBytes is the pooled footprint of one order-n root merge:
// S (k×k ≤ n²) + Q2Top/Q2Bot (≤ n²/2 each) + Q2Defl (≤ n²) + packed panels
// (≈ Q2 again). EstimateSolveBytes doubles it for the concurrently-live
// lower tree levels.
func estimateMergeBytes(n int) int64 {
	nn := int64(n) * int64(n)
	return poolClassBytes(nn) + 2*poolClassBytes(nn/2+1) + poolClassBytes(nn) + 2*poolClassBytes(nn/2+1)
}

// EstimateBatchSolveBytes is the admission-control estimate for a coalesced
// batch of task-flow solves of the given orders sharing one runtime. A
// per-job EstimateSolveBytes sum over-reserves a batch severely: the
// per-worker small scratch is pooled across the batch (one set per runtime,
// not per matrix), and with every matrix sharing one worker pool at most
// ~workers matrices can sit at their peak (doubled, lower-levels-live)
// footprint at once — the rest hold at most one live root merge each. The
// estimate is exact for a single matrix (it equals EstimateSolveBytes) and
// never exceeds the sum of the per-job singles; adding a matrix to a batch
// never decreases it, so marginal (telescoped) reservations are safe.
func EstimateBatchSolveBytes(ns []int, workers int) int64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	sorted := make([]int, 0, len(ns))
	for _, n := range ns {
		if n > 0 {
			sorted = append(sorted, n)
		}
	}
	if len(sorted) == 0 {
		return 0
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	var total int64
	for i, n := range sorted {
		m := estimateMergeBytes(n)
		if i < workers {
			m *= 2 // concurrently-live lower levels, as in the single estimate
		}
		total += m
	}
	// One set of per-worker O(n) scratch for the shared runtime, sized by
	// the largest matrix.
	total += int64(workers+1) * poolClassBytes(int64(8*sorted[0])+1)
	return total
}

// voLeafCutoff is the default D&C leaf size (core.Options.MinPartition's
// default): values-only leaves solve on a pooled m×m scratch with m bounded
// by it, the only super-linear term of the lane's footprint.
const voLeafCutoff = 48

// estimateValuesOnlyJobBytes is the per-job part of the values-only
// admission estimate, without the shared per-worker scratch: the 2×n carrier
// rows plus O(n) merge slices (g2, weights, secular roots, gathered carrier
// rows, sort scratch) on each of the ~log₂(n/leaf) concurrently-live tree
// levels.
func estimateValuesOnlyJobBytes(n int) int64 {
	if n <= 0 {
		return 0
	}
	depth := bits.Len(uint((n + voLeafCutoff - 1) / voLeafCutoff))
	return poolClassBytes(int64(2*n)) + int64(depth+1)*poolClassBytes(int64(8*n)+1)
}

// EstimateValuesOnlySolveBytes is the admission-control estimate for one
// values-only task-flow solve of order n: O(n·depth) merge state plus
// per-worker leaf and secular scratch, instead of the full solve's O(n²)
// eigenvector workspace. It is monotone in n and never exceeds
// EstimateSolveBytes, so a values_only job always reserves no more than the
// same job with vectors — the property that lets one memory budget admit far
// more values-only concurrency.
func EstimateValuesOnlySolveBytes(n, workers int) int64 {
	if n <= 0 {
		return 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	leaf := int64(voLeafCutoff * voLeafCutoff)
	if nn := int64(n) * int64(n); nn < leaf {
		leaf = nn
	}
	est := estimateValuesOnlyJobBytes(n) +
		int64(workers+1)*(poolClassBytes(leaf)+poolClassBytes(int64(4*n)+1))
	if full := EstimateSolveBytes(n, workers); est > full {
		return full
	}
	return est
}

// EstimateBatchValuesOnlySolveBytes is the batch-aware analogue for a
// coalesced values-only window: per-job carrier and merge slices summed over
// the members, one set of shared per-worker scratch sized by the largest
// member. Exact for a single member (it equals EstimateValuesOnlySolveBytes)
// and monotone in the member set, so marginal (telescoped) reservations are
// safe.
func EstimateBatchValuesOnlySolveBytes(ns []int, workers int) int64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var total int64
	maxN := 0
	for _, n := range ns {
		if n <= 0 {
			continue
		}
		total += estimateValuesOnlyJobBytes(n)
		if n > maxN {
			maxN = n
		}
	}
	if maxN == 0 {
		return 0
	}
	leaf := int64(voLeafCutoff * voLeafCutoff)
	if nn := int64(maxN) * int64(maxN); nn < leaf {
		leaf = nn
	}
	total += int64(workers+1) * (poolClassBytes(leaf) + poolClassBytes(int64(4*maxN)+1))
	if full := EstimateBatchSolveBytes(ns, workers); total > full {
		return full
	}
	return total
}

// Solve runs one job through the service: admission, queueing, the
// watchdog-guarded attempt/retry loop, and disposition accounting. It blocks
// until the job is served, rejected, or cancelled. The returned ServeResult
// is non-nil even on error and always carries the job's disposition.
//
// opts follows SolveContext semantics except that Fallback and Progress are
// owned by the server (the retry and degradation policy replaces them).
func (s *Server) Solve(ctx context.Context, t Tridiagonal, opts *Options) (*ServeResult, error) {
	sr := &ServeResult{Disposition: DispositionRejected}
	var o Options
	if opts != nil {
		o = *opts
	}
	n := t.N()
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	eligible := s.batchEligible(n, &o)
	var est int64
	switch {
	case eligible:
		// A coalesced job shares the batch's workspace: reserve only its
		// marginal contribution to the batch-aware estimate, not a full
		// per-job footprint (which would starve admission ~Nx under floods
		// of small solves).
		est = s.batchMarginalEstimate(n, workers, o.ValuesOnly)
	case o.ValuesOnly:
		// The values-only lane never materializes the n×n eigenvector
		// block: charge its O(n·depth) footprint so one memory budget
		// admits far more values-only concurrency.
		est = EstimateValuesOnlySolveBytes(n, workers)
	default:
		est = EstimateSolveBytes(n, workers)
	}

	// Admission: all-or-nothing under the server lock.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.counts[DispositionRejected].Add(1)
		return sr, ErrServerClosed
	}
	if s.queued >= s.cfg.MaxQueue {
		q := s.queued
		s.mu.Unlock()
		s.counts[DispositionRejected].Add(1)
		return sr, fmt.Errorf("%w: queue full (%d jobs waiting)", ErrOverloaded, q)
	}
	if s.cfg.MemoryBudget > 0 && s.reserved+est > s.cfg.MemoryBudget {
		have := s.cfg.MemoryBudget - s.reserved
		s.mu.Unlock()
		s.counts[DispositionRejected].Add(1)
		return sr, fmt.Errorf("%w: workspace budget exceeded (job n=%d needs %d bytes, %d available)",
			ErrOverloaded, n, est, have)
	}
	if dl, ok := ctx.Deadline(); ok {
		if wait := s.expectedLatencyLocked(o.ValuesOnly); wait > 0 && time.Until(dl) < wait {
			s.mu.Unlock()
			s.counts[DispositionRejected].Add(1)
			return sr, fmt.Errorf("%w: deadline %v away, expected service latency %v",
				ErrOverloaded, time.Until(dl).Round(time.Millisecond), wait.Round(time.Millisecond))
		}
	}
	job := &serverJob{id: s.nextID.Add(1), n: n, done: make(chan struct{})}
	s.queued++
	// The server is no longer idle: a pending idle pool trim must not fire
	// under this job's feet.
	s.idleGen++
	if s.idleTimer != nil {
		s.idleTimer.Stop()
		s.idleTimer = nil
	}
	s.reserved += est
	if s.reserved > s.peakReserved {
		s.peakReserved = s.reserved
	}
	s.jobs[job.id] = job
	s.mu.Unlock()
	s.admitted.Add(1)
	if o.ValuesOnly {
		s.voAdmitted.Add(1)
	}

	start := time.Now()
	ran := false
	defer func() {
		s.mu.Lock()
		s.reserved -= est
		delete(s.jobs, job.id)
		if ran {
			// Per-class EWMA of service time feeds the deadline-aware
			// admission check (values-only jobs are far faster; mixing the
			// classes would reject short-deadline values_only requests on
			// full-solve history).
			d := float64(time.Since(start))
			avg := &s.avgNanos
			if o.ValuesOnly {
				avg = &s.avgNanosVO
			}
			if *avg == 0 {
				*avg = d
			} else {
				*avg = 0.8**avg + 0.2*d
			}
		}
		s.mu.Unlock()
		s.counts[sr.Disposition].Add(1)
		if o.ValuesOnly && sr.Disposition <= DispositionDegraded {
			s.voCompleted.Add(1)
		}
		job.disposition = sr.Disposition
		close(job.done)
	}()

	// Every stochastic delay of this job draws from its own seeded stream:
	// concurrent jobs sharing the process-global RNG would contend on its
	// lock under load, and their backoff schedules would be irreproducible —
	// with the job ID as seed, a replayed job jitters identically.
	rng := rand.New(rand.NewSource(int64(job.id)))
	// jobCorrupt counts this job's corruption-classified attempt failures;
	// they are healed if a later attempt (or the fallback tier) serves.
	var jobCorrupt int64

	// Coalescing: an eligible job joins the batch window and waits for its
	// flush; only members whose batched attempt fails fall through to the
	// solo ladder below (keeping their queue slot, with the batch attempt
	// counted against their retry budget).
	var lastErr error
	if eligible {
		out, oerr := s.awaitBatched(ctx, t, est, sr, o.ValuesOnly)
		switch out {
		case batchServed:
			ran = true
			return sr, nil
		case batchCancelled:
			sr.Disposition = DispositionCancelled
			return sr, oerr
		case batchFailed:
			lastErr = oerr
			if faultinject.Corruption(oerr) {
				s.corrDetected.Add(1)
				jobCorrupt++
			}
		}
	}

	// Queue for a worker slot.
	var slotErr error
	select {
	case s.slots <- struct{}{}:
	case <-ctx.Done():
		slotErr = ctx.Err()
	case <-s.drainCtx.Done():
		slotErr = fmt.Errorf("%w: drained while queued", ErrServerClosed)
	}
	s.mu.Lock()
	s.queued--
	if slotErr == nil {
		s.running++
	}
	s.mu.Unlock()
	if slotErr != nil {
		sr.Disposition = DispositionCancelled
		return sr, slotErr
	}
	defer func() {
		s.mu.Lock()
		s.running--
		s.mu.Unlock()
		<-s.slots
		s.afterJob()
	}()
	ran = true
	s.direct.Add(1)

	// Primary-tier attempts with transient retries.
	for {
		probe, primary := s.breakers.route()
		if !primary {
			break // every new job routes straight to the fallback tier
		}
		po := o
		po.Fallback = false
		sr.Attempts++
		res, err := s.attempt(ctx, t, &po)
		if err == nil {
			s.breakers.success(probe)
			s.absorb(res)
			s.corrHealed.Add(jobCorrupt)
			sr.Result = res
			if sr.Attempts > 1 {
				sr.Disposition = DispositionRetried
			} else {
				sr.Disposition = DispositionCompleted
			}
			return sr, nil
		}
		lastErr = err
		if ctx.Err() != nil || s.drainCtx.Err() != nil {
			sr.Disposition = DispositionCancelled
			return sr, cancelCause(ctx, s.drainCtx)
		}
		var stall *StallError
		if errors.As(err, &stall) {
			sr.Stalls++
			s.stalls.Add(1)
		}
		if faultinject.Corruption(err) {
			s.corrDetected.Add(1)
			jobCorrupt++
		}
		s.breakers.failure(faultinject.ClassOf(err), probe)
		if !faultinject.Transient(err) || sr.Attempts > s.cfg.MaxRetries {
			break // persistent, or retries exhausted: degrade
		}
		s.retries.Add(1)
		if !s.backoff(ctx, rng, sr.Attempts) {
			sr.Disposition = DispositionCancelled
			return sr, cancelCause(ctx, s.drainCtx)
		}
	}

	// Fallback tier: the PR 2 degradation chain, injected-fault free
	// (sequential tiers bypass the task runtime) and validated.
	fo := o
	fo.Method = fallbackMethod(o.Method)
	fo.Fallback = true
	sr.Attempts++
	res, err := s.attempt(ctx, t, &fo)
	if err == nil {
		s.absorb(res)
		s.corrHealed.Add(jobCorrupt)
		sr.Result = res
		sr.Disposition = DispositionDegraded
		return sr, nil
	}
	if ctx.Err() != nil || s.drainCtx.Err() != nil {
		sr.Disposition = DispositionCancelled
		return sr, cancelCause(ctx, s.drainCtx)
	}
	sr.Disposition = DispositionFailed
	if lastErr != nil && !errors.Is(err, lastErr) {
		err = fmt.Errorf("%w (primary tier: %v)", err, lastErr)
	}
	return sr, fmt.Errorf("eigen: server: job n=%d failed on every tier: %w", n, err)
}

// startWatchdog arms the per-attempt no-progress watchdog: the returned
// heartbeat is plugged into Options.Progress, and the watchdog cancels the
// attempt (setting stalled) when no heartbeat lands within the stall window.
// stop must be called when the attempt returns; a nil heartbeat means the
// watchdog is disabled.
func (s *Server) startWatchdog(actx context.Context, cancel context.CancelFunc) (heartbeat, stop func(), stalled *atomic.Bool) {
	window := s.cfg.StallWindow
	stalled = new(atomic.Bool)
	if window <= 0 {
		return nil, func() {}, stalled
	}
	var last atomic.Int64
	last.Store(time.Now().UnixNano())
	wdDone := make(chan struct{})
	go func() {
		tick := window / 4
		if tick < time.Millisecond {
			tick = time.Millisecond
		}
		tk := time.NewTicker(tick)
		defer tk.Stop()
		for {
			select {
			case <-wdDone:
				return
			case <-actx.Done():
				return
			case <-tk.C:
				if time.Duration(time.Now().UnixNano()-last.Load()) > window {
					stalled.Store(true)
					cancel()
					return
				}
			}
		}
	}()
	return func() { last.Store(time.Now().UnixNano()) },
		func() { close(wdDone) },
		stalled
}

// attempt runs one watchdog-guarded SolveContext. A solve that emits no
// progress heartbeat within the stall window is cancelled and the error
// rewritten to *StallError (unless the caller's context was the cause).
func (s *Server) attempt(ctx context.Context, t Tridiagonal, o *Options) (*Result, error) {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	stopDrain := context.AfterFunc(s.drainCtx, cancel)
	defer stopDrain()

	heartbeat, stop, stalled := s.startWatchdog(actx, cancel)
	defer stop()
	if heartbeat != nil {
		ao := *o
		ao.Progress = heartbeat
		o = &ao
	}
	res, err := SolveContext(actx, t, o)
	if stalled.Load() && ctx.Err() == nil && s.drainCtx.Err() == nil {
		// The watchdog declared a stall and cancelled the attempt. The solve
		// may still have raced to a clean finish (cancellation unblocks
		// injected delays, and quark only aborts between tasks), but the
		// attempt exceeded its no-progress window either way: report the
		// stall so the retry policy — and the abort-to-retry latency bound —
		// stays deterministic instead of depending on who wins that race.
		return nil, &StallError{Window: s.cfg.StallWindow}
	}
	return res, err
}

// batchOutcome is how a coalesced job left the batch window.
type batchOutcome int

const (
	// batchServed: the batched attempt produced this member's result.
	batchServed batchOutcome = iota
	// batchCancelled: the member's context, deadline, or the drain fired.
	batchCancelled
	// batchFailed: the batched attempt failed for this member; the job
	// continues on the solo retry/degrade ladder.
	batchFailed
)

// batchEligible reports whether a job may be served through the coalescing
// window: small MethodDC solves with default tuning. A batch runs with one
// shared adaptive configuration, so jobs pinning their own panel size, leaf
// cutoff, workspace mode or worker count are served directly. Values-only
// jobs are eligible too — they coalesce in their own window (batcherFor), so
// a flushed batch is always single-class.
func (s *Server) batchEligible(n int, o *Options) bool {
	return s.cfg.BatchWindow > 0 && o.Method == MethodDC &&
		n > 0 && n <= s.cfg.BatchMaxN &&
		o.PanelSize <= 0 && o.MinPartition <= 0 && !o.ExtraWorkspace && o.Workers <= 0
}

// batchMarginalEstimate is the admission reservation for a job joining its
// class's coalescing window: the increase of the class's batch-aware
// workspace estimate over the currently-pending window. Both batch estimates
// are monotone in their member set, so the marginal is always positive, and
// the telescoped sum of the members' reservations equals the batch estimate
// instead of N full per-job estimates.
func (s *Server) batchMarginalEstimate(n, workers int, valuesOnly bool) int64 {
	b := s.batcherFor(valuesOnly)
	b.mu.Lock()
	ns := make([]int, len(b.pending), len(b.pending)+1)
	for i, r := range b.pending {
		ns[i] = r.t.N()
	}
	b.mu.Unlock()
	estimate := EstimateBatchSolveBytes
	if valuesOnly {
		estimate = EstimateBatchValuesOnlySolveBytes
	}
	return estimate(append(ns, n), workers) - estimate(ns, workers)
}

// awaitBatched enqueues an admitted job into the coalescing window, flushes
// the window if this job tripped the size or bytes cap, and waits for the
// member's outcome. The job keeps its queue slot throughout; it is released
// here for outcomes that end the job (served, cancelled) and kept for
// batchFailed, whose caller proceeds to the solo slot wait.
func (s *Server) awaitBatched(ctx context.Context, t Tridiagonal, est int64, sr *ServeResult, valuesOnly bool) (batchOutcome, error) {
	req := &batchReq{t: t, done: make(chan struct{})}
	b := s.batcherFor(valuesOnly)
	b.mu.Lock()
	b.pending = append(b.pending, req)
	b.bytes += est
	var flush []*batchReq
	reason := ""
	switch {
	case len(b.pending) >= s.cfg.BatchMaxSize:
		flush, reason = b.takeLocked(), "size"
	case s.cfg.BatchMaxBytes > 0 && b.bytes >= s.cfg.BatchMaxBytes:
		flush, reason = b.takeLocked(), "bytes"
	case len(b.pending) == 1:
		b.gen++
		gen := b.gen
		w := time.Duration(b.window.Load())
		b.timer = time.AfterFunc(w, func() { s.timerFlush(gen, valuesOnly) })
	}
	b.mu.Unlock()
	s.coalesced.Add(1)
	if flush != nil {
		go s.runBatch(flush, reason, valuesOnly)
	}

	select {
	case <-req.done:
	case <-ctx.Done():
		// The member abandons; if its matrix is already mid-flush the
		// flusher's write lands on a req nobody reads. Its queue slot and
		// reservation are released now (the finalize deferred in Solve).
		s.unqueue()
		return batchCancelled, ctx.Err()
	case <-s.drainCtx.Done():
		s.unqueue()
		return batchCancelled, fmt.Errorf("%w: drained while queued", ErrServerClosed)
	}
	sr.Attempts++
	if req.err == nil {
		s.unqueue()
		s.batchServed.Add(1)
		s.breakers.success("")
		s.absorb(req.res)
		sr.Result = req.res
		sr.Disposition = DispositionCompleted
		return batchServed, nil
	}
	if ctx.Err() != nil || s.drainCtx.Err() != nil {
		s.unqueue()
		return batchCancelled, cancelCause(ctx, s.drainCtx)
	}
	var stall *StallError
	if errors.As(req.err, &stall) {
		sr.Stalls++
	}
	s.breakers.failure(faultinject.ClassOf(req.err), "")
	return batchFailed, req.err
}

// unqueue releases a coalesced job's queue slot.
func (s *Server) unqueue() {
	s.mu.Lock()
	s.queued--
	s.mu.Unlock()
}

// timerFlush fires from the window timer: if no size/bytes flush got there
// first (the generation still matches), the pending window runs as a batch
// on this (timer) goroutine.
func (s *Server) timerFlush(gen uint64, valuesOnly bool) {
	b := s.batcherFor(valuesOnly)
	b.mu.Lock()
	if gen != b.gen || len(b.pending) == 0 {
		b.mu.Unlock()
		return
	}
	flush := b.takeLocked()
	b.mu.Unlock()
	s.runBatch(flush, "timer", valuesOnly)
}

// runBatch executes one flushed window as a single SolveBatch on ONE worker
// slot (the members keep their queue slots while it runs) and delivers each
// member's result or error.
func (s *Server) runBatch(reqs []*batchReq, reason string, valuesOnly bool) {
	s.batchesFlushed.Add(1)
	switch reason {
	case "timer":
		s.flushTimer.Add(1)
	case "size":
		s.flushSize.Add(1)
	case "bytes":
		s.flushBytes.Add(1)
	}
	s.batchHist[batchHistBucket(len(reqs))].Add(1)
	s.adaptWindow(reason, len(reqs), valuesOnly)

	deliverAll := func(err error) {
		for _, r := range reqs {
			r.err = err
			close(r.done)
		}
	}
	select {
	case s.slots <- struct{}{}:
	case <-s.drainCtx.Done():
		deliverAll(fmt.Errorf("%w: drained while queued", ErrServerClosed))
		return
	}
	s.mu.Lock()
	s.running++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.running--
		s.mu.Unlock()
		<-s.slots
		s.afterJob()
	}()

	results, err := s.attemptBatch(reqs, valuesOnly)
	if results == nil {
		// Batch-level abort: a watchdog stall or the drain — every member
		// gets the same classified error and decides its own next step
		// (retry solo, degrade, or report cancellation).
		var stall *StallError
		if errors.As(err, &stall) {
			s.stalls.Add(1)
		}
		deliverAll(err)
		return
	}
	var be *BatchError
	errors.As(err, &be)
	counted := false
	for i, r := range reqs {
		switch {
		case results[i] != nil:
			r.res = results[i]
			if !counted {
				counted = true
				if st := results[i].Stats; st != nil {
					s.batchTaskNanos.Add(st.BatchTaskNanos)
				}
			}
		case be != nil && be.Errs[i] != nil:
			r.err = be.Errs[i]
		default:
			r.err = err
		}
		close(r.done)
	}
	if counted {
		s.breakers.success("")
	}
}

// attemptBatch runs one watchdog-guarded SolveBatch over a flushed window,
// mirroring attempt: no task progress within the stall window cancels the
// whole batch and rewrites the outcome to *StallError. The batch is bounded
// by the drain, not by any single member's context — each member enforces
// its own deadline while waiting.
func (s *Server) attemptBatch(reqs []*batchReq, valuesOnly bool) ([]*Result, error) {
	actx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stopDrain := context.AfterFunc(s.drainCtx, cancel)
	defer stopDrain()

	heartbeat, stop, stalled := s.startWatchdog(actx, cancel)
	defer stop()
	o := Options{Method: MethodDC, ValuesOnly: valuesOnly, Progress: heartbeat}
	tris := make([]Tridiagonal, len(reqs))
	for i, r := range reqs {
		tris[i] = r.t
	}
	results, err := SolveBatch(actx, tris, &o)
	if results == nil && stalled.Load() && s.drainCtx.Err() == nil {
		return nil, &StallError{Window: s.cfg.StallWindow}
	}
	return results, err
}

// adaptWindow tunes the flush window the way PanelSize adapts per merge:
// timer flushes that caught at most one waiter mean traffic is too sparse
// for the current window — halve it (down to BatchWindow/8) so lone requests
// stop paying coalescing latency for nothing; size- or bytes-capped flushes
// mean the window over-fills — double it back toward the configured ceiling
// so the timer, not the cap, paces the batches.
func (s *Server) adaptWindow(reason string, size int, valuesOnly bool) {
	b := s.batcherFor(valuesOnly)
	cur := b.window.Load()
	ceil := int64(s.cfg.BatchWindow)
	switch {
	case reason == "timer" && size <= 1:
		if nw := cur / 2; nw >= ceil/8 {
			b.window.Store(nw)
		}
	case reason == "size" || reason == "bytes":
		if nw := cur * 2; nw <= ceil {
			b.window.Store(nw)
		} else if cur < ceil {
			b.window.Store(ceil)
		}
	}
}

// batchHistBuckets sizes the flushed-batch-size histogram: bucket i counts
// batches of size in (2^(i-1), 2^i] (bucket 0 = singletons, the last bucket
// open-ended).
const batchHistBuckets = 8

func batchHistBucket(size int) int {
	b := 0
	for s := 1; s < size && b < batchHistBuckets-1; s <<= 1 {
		b++
	}
	return b
}

// SolveBatch serves many matrices through the service in one call: each
// member is admitted, accounted and classified exactly like a Solve job
// (deadline via ctx, watchdog, retries, degradation, its own disposition),
// and eligible members coalesce into shared batch flushes — a full window
// arriving at once flushes immediately on the size cap, as one SolveBatch.
// The result slice is indexed like ts; every entry is non-nil and carries
// its member's disposition, with Err set for members that failed.
func (s *Server) SolveBatch(ctx context.Context, ts []Tridiagonal, opts *Options) []*ServeResult {
	out := make([]*ServeResult, len(ts))
	var wg sync.WaitGroup
	for i := range ts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sr, err := s.Solve(ctx, ts[i], opts)
			sr.Err = err
			out[i] = sr
		}(i)
	}
	wg.Wait()
	return out
}

// absorb folds one served result's per-solve ledgers (leaked workspace,
// corruption detections and heals) into the service counters.
func (s *Server) absorb(res *Result) {
	if res == nil || res.Stats == nil {
		return
	}
	s.leakedBytes.Add(res.Stats.LeakedBytes)
	s.corrDetected.Add(res.Stats.CorruptionsDetected)
	s.corrHealed.Add(res.Stats.CorruptionsHealed)
}

// backoff sleeps the exponential-with-jitter retry delay for the given
// attempt number, drawing the jitter from the job's own seeded stream; false
// means the job's context (or the drain) fired first.
func (s *Server) backoff(ctx context.Context, rng *rand.Rand, attempt int) bool {
	d := s.cfg.RetryBase << uint(min(attempt-1, 4)) // cap at 16×base
	d = d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
	tm := time.NewTimer(d)
	defer tm.Stop()
	select {
	case <-tm.C:
		return true
	case <-ctx.Done():
		return false
	case <-s.drainCtx.Done():
		return false
	}
}

// expectedLatencyLocked estimates a new job's time-to-completion from its
// class's service-time EWMA and the current occupancy; 0 when there is no
// history. A values-only job with no class history falls back to the full
// EWMA — conservative, since the lane is strictly cheaper.
func (s *Server) expectedLatencyLocked(valuesOnly bool) time.Duration {
	avg := s.avgNanos
	if valuesOnly && s.avgNanosVO != 0 {
		avg = s.avgNanosVO
	}
	if avg == 0 {
		return 0
	}
	waves := 1 + (s.queued+s.running)/s.cfg.MaxConcurrent
	return time.Duration(avg * float64(waves))
}

// fallbackMethod maps a job's method to its degradation route: the most
// capable injected-fault-free tier chain below it.
func fallbackMethod(m Method) Method {
	switch m {
	case MethodDC, MethodDCSequential:
		return MethodDCSequential // dstedc → qr chain under Fallback
	default:
		return MethodQR
	}
}

// cancelCause picks the context error a cancelled job reports: the job's own
// context if it fired, else the server drain.
func cancelCause(ctx, drain context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return fmt.Errorf("%w: drained mid-solve", ErrServerClosed)
}

// afterJob runs once per finished job, after its worker slot is released:
// it enforces the pool's retention cap (covering the sequential and
// fork-join tiers, which have no task-runtime shutdown of their own) and,
// when the server just went idle, arms the idle trim that drops all pooled
// scratch after PoolIdleTrimDelay of quiet.
func (s *Server) afterJob() {
	pool.TrimToCap()
	d := s.cfg.PoolIdleTrimDelay
	if d < 0 {
		return
	}
	s.mu.Lock()
	if s.queued == 0 && s.running == 0 {
		s.idleGen++
		gen := s.idleGen
		if s.idleTimer != nil {
			s.idleTimer.Stop()
		}
		s.idleTimer = time.AfterFunc(d, func() { s.idleTrim(gen) })
	}
	s.mu.Unlock()
}

// idleTrim fires from the idle timer: if no job arrived since it was armed
// (the generation still matches and the server is still quiet), every idle
// pooled buffer is released so a quiet process holds no solver memory.
func (s *Server) idleTrim(gen uint64) {
	s.mu.Lock()
	stale := gen != s.idleGen || s.queued != 0 || s.running != 0
	if !stale {
		s.idleTimer = nil
	}
	s.mu.Unlock()
	if stale {
		return
	}
	pool.TrimAll()
}

// Draining reports whether Shutdown has been called: the readiness signal
// that tells load balancers and cluster coordinators to stop routing work
// here while in-flight jobs finish.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// QueueFull reports whether a new job would be rejected right now for queue
// depth — the readiness probe's backpressure signal.
func (s *Server) QueueFull() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued >= s.cfg.MaxQueue
}

// Stats returns a snapshot of the service counters.
func (s *Server) Stats() ServerStats {
	st := ServerStats{
		Admitted:       s.admitted.Load(),
		Completed:      s.counts[DispositionCompleted].Load(),
		Retried:        s.counts[DispositionRetried].Load(),
		Degraded:       s.counts[DispositionDegraded].Load(),
		Rejected:       s.counts[DispositionRejected].Load(),
		Cancelled:      s.counts[DispositionCancelled].Load(),
		Failed:         s.counts[DispositionFailed].Load(),
		Retries:        s.retries.Load(),
		WatchdogAborts: s.stalls.Load(),
	}
	st.PoolInUseBytes = pool.InUseBytes()
	st.PoolRetainedBytes = pool.RetainedBytes()
	st.BreakerOpens, st.OpenBreakers = s.breakers.snapshot()
	st.BatchesFlushed = s.batchesFlushed.Load()
	st.FlushByTimer = s.flushTimer.Load()
	st.FlushBySize = s.flushSize.Load()
	st.FlushByBytes = s.flushBytes.Load()
	st.CoalescedJobs = s.coalesced.Load()
	st.BatchServedJobs = s.batchServed.Load()
	st.DirectJobs = s.direct.Load()
	st.BatchTaskNanos = s.batchTaskNanos.Load()
	st.ValuesOnlyAdmitted = s.voAdmitted.Load()
	st.ValuesOnlyCompleted = s.voCompleted.Load()
	st.LeakedBytes = s.leakedBytes.Load()
	st.CorruptionsDetected = s.corrDetected.Load()
	st.CorruptionsHealed = s.corrHealed.Load()
	if s.cfg.BatchWindow > 0 {
		st.BatchWindow = time.Duration(s.b.window.Load())
		st.BatchSizeHist = make([]int64, batchHistBuckets)
		for i := range st.BatchSizeHist {
			st.BatchSizeHist[i] = s.batchHist[i].Load()
		}
	}
	s.mu.Lock()
	st.Queued, st.Running = s.queued, s.running
	st.ReservedBytes, st.PeakReservedBytes = s.reserved, s.peakReserved
	st.AvgServiceNanos = int64(s.avgNanos)
	st.ValuesOnlyAvgServiceNanos = int64(s.avgNanosVO)
	s.mu.Unlock()
	return st
}

// Shutdown drains the server: admission stops immediately (new jobs get
// ErrServerClosed), in-flight and queued jobs run to completion, and jobs
// still unfinished when ctx fires are cancelled. It returns every affected
// job's disposition, and ctx.Err() when the drain deadline forced
// cancellations. Shutdown is idempotent; later calls return an empty report.
func (s *Server) Shutdown(ctx context.Context) (*DrainReport, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return &DrainReport{}, nil
	}
	s.closed = true
	inflight := make([]*serverJob, 0, len(s.jobs))
	for _, j := range s.jobs {
		inflight = append(inflight, j)
	}
	s.mu.Unlock()
	sort.Slice(inflight, func(i, j int) bool { return inflight[i].id < inflight[j].id })

	done := make(chan struct{})
	go func() {
		for _, j := range inflight {
			<-j.done
		}
		close(done)
	}()
	var ctxErr error
	select {
	case <-done:
	case <-ctx.Done():
		ctxErr = ctx.Err()
		s.drainCancel()
		// Cancellation aborts each solve within one task granularity (and
		// unblocks queued jobs immediately), so this second wait is short.
		<-done
	}
	s.drainCancel()
	// A drained server runs nothing again: release the warm scratch too.
	s.mu.Lock()
	if s.idleTimer != nil {
		s.idleTimer.Stop()
		s.idleTimer = nil
	}
	s.idleGen++
	s.mu.Unlock()
	pool.TrimAll()

	rep := &DrainReport{Jobs: make([]JobReport, 0, len(inflight))}
	for _, j := range inflight {
		rep.Jobs = append(rep.Jobs, JobReport{ID: j.id, N: j.n, Disposition: j.disposition})
	}
	return rep, ctxErr
}

// breaker tracks one failure class. States: closed (fails < threshold),
// open (fails ≥ threshold, cooling down), half-open (cooldown expired, one
// probe in flight).
type breaker struct {
	fails     int
	openUntil time.Time
	probing   bool
}

type breakerSet struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	m         map[string]*breaker
	opens     int64
}

// route decides the tier for a new job: primary when every breaker is
// closed, or when an open breaker's cooldown has expired and this job wins
// its half-open probe (probe = the class being probed). Otherwise the job
// goes straight to the fallback tier.
func (bs *breakerSet) route() (probe string, primary bool) {
	now := time.Now()
	bs.mu.Lock()
	defer bs.mu.Unlock()
	open := false
	for class, b := range bs.m {
		if b.fails < bs.threshold {
			continue
		}
		open = true
		if !b.probing && !now.Before(b.openUntil) {
			b.probing = true
			return class, true
		}
	}
	return "", !open
}

// success closes the probed breaker (if any) and resets the consecutive-
// failure counters of every still-closed class.
func (bs *breakerSet) success(probe string) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if probe != "" {
		delete(bs.m, probe)
	}
	for class, b := range bs.m {
		if b.fails < bs.threshold {
			delete(bs.m, class)
		}
	}
}

// failure records a classified failure ("" → "unclassified"): the class's
// consecutive-failure count grows and opens the circuit at the threshold. A
// failed half-open probe re-opens its breaker for another cooldown.
func (bs *breakerSet) failure(class, probe string) {
	now := time.Now()
	bs.mu.Lock()
	defer bs.mu.Unlock()
	if probe != "" {
		if b := bs.m[probe]; b != nil {
			b.probing = false
			b.openUntil = now.Add(bs.cooldown)
		}
	}
	if class == "" {
		class = "unclassified"
	}
	b := bs.m[class]
	if b == nil {
		b = &breaker{}
		bs.m[class] = b
	}
	b.fails++
	if b.fails == bs.threshold {
		b.openUntil = now.Add(bs.cooldown)
		bs.opens++
	}
}

func (bs *breakerSet) snapshot() (opens int64, open []string) {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	for class, b := range bs.m {
		if b.fails >= bs.threshold {
			open = append(open, class)
		}
	}
	sort.Strings(open)
	return bs.opens, open
}
