package eigen

import (
	"context"
	"errors"
	"math"
	"math/bits"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tridiag/internal/faultinject"
	"tridiag/internal/lapack"
	"tridiag/internal/pool"
)

// voSpectrumUlps mirrors the calibrated bar of the core values-only tests:
// 8 ulp of spectrum scale per merge level of the D&C tree (the two lanes form
// each merge's z-vector differently — sequential dot products vs. rows of a
// blocked GEMM — so the secular roots drift a few ulp per level, and a
// borderline deflation flip perturbs the spectrum by the threshold itself).
// Single-leaf problems run Dsterf against DsteqrRobust, two different
// algorithms, and get a flat 64-ulp bar.
func voSpectrumUlps(n int) float64 {
	leaves := len(lapack.PartitionSizes(n, 48))
	if leaves <= 1 {
		return 64
	}
	return 8 * float64(bits.Len(uint(leaves-1)))
}

// voSpectrumTol converts the ulp bar to an absolute tolerance at the
// spectrum's scale (zero for an identically-zero spectrum: exact match).
func voSpectrumTol(values []float64, ulps float64) float64 {
	var scale float64
	for _, v := range values {
		scale = math.Max(scale, math.Abs(v))
	}
	return ulps * lapack.Eps * scale
}

// checkVOResult asserts the values-only result contract: right order, no
// eigenvector block, ascending spectrum.
func checkVOResult(t *testing.T, name string, n int, res *Result) {
	t.Helper()
	if res.N != n || len(res.Values) != n {
		t.Fatalf("%s: result n=%d values=%d, want %d", name, res.N, len(res.Values), n)
	}
	if res.Vectors != nil {
		t.Fatalf("%s: values-only result carries an eigenvector block (%d floats)", name, len(res.Vectors))
	}
	for i := 1; i < n; i++ {
		if res.Values[i] < res.Values[i-1] {
			t.Fatalf("%s: values not ascending at %d", name, i)
		}
	}
}

// TestValuesOnlySpectraMatchFull: across the pathological suite, the
// eigenvalue-only lane must reproduce the full solve's spectrum to the
// calibrated ulp bar — same clusters, same extreme scalings, no vectors.
func TestValuesOnlySpectraMatchFull(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	base := randomTridiag(rng, 150)
	clustered := randomTridiag(rng, 200)
	for i := range clustered.D {
		clustered.D[i] = 3.5
	}
	zeroOff := randomTridiag(rng, 120)
	for i := range zeroOff.E {
		zeroOff.E[i] = 0
	}
	cases := []struct {
		name string
		tri  Tridiagonal
	}{
		{"wilkinson-w61", wilkinson(61)},
		{"wilkinson-w201", wilkinson(201)},
		{"glued-wilkinson", gluedWilkinson(4, 21, 1e-6)},
		{"glued-wilkinson-big", gluedWilkinson(6, 41, 1e-9)},
		{"clustered-deflating", clustered},
		{"zero-offdiagonals", zeroOff},
		{"all-zero", Tridiagonal{D: make([]float64, 100), E: make([]float64, 99)}},
		{"random", randomTridiag(rng, 300)},
		{"near-overflow", scaled(base, 1e300)},
		{"near-underflow", scaled(base, 1e-300)},
	}
	for _, tc := range cases {
		n := tc.tri.N()
		full, err := Solve(tc.tri, &Options{Workers: 3})
		if err != nil {
			t.Errorf("%s: full solve: %v", tc.name, err)
			continue
		}
		vo, err := Solve(tc.tri, &Options{Workers: 3, ValuesOnly: true})
		if err != nil {
			t.Errorf("%s: values-only solve: %v", tc.name, err)
			continue
		}
		checkVOResult(t, tc.name, n, vo)
		if vo.Stats.Tier != "task-flow" {
			t.Errorf("%s: values-only tier %q, want task-flow", tc.name, vo.Stats.Tier)
		}
		tol := voSpectrumTol(full.Values, voSpectrumUlps(n))
		for i := 0; i < n; i++ {
			if diff := math.Abs(vo.Values[i] - full.Values[i]); diff > tol {
				t.Errorf("%s: eigenvalue %d differs: full=%.17g vo=%.17g (|Δ|=%.3e > tol=%.3e)",
					tc.name, i, full.Values[i], vo.Values[i], diff, tol)
				break
			}
		}

		// Values() routes through the same lane; same bar.
		vals, err := Values(tc.tri)
		if err != nil {
			t.Errorf("%s: Values: %v", tc.name, err)
			continue
		}
		for i := range vals {
			if diff := math.Abs(vals[i] - full.Values[i]); diff > tol {
				t.Errorf("%s: Values()[%d] differs by %.3e (> %.3e)", tc.name, i, diff, tol)
				break
			}
		}
	}
}

// voChaosClasses are the task classes a values-only DAG actually submits —
// faults land on real tasks, not on eigenvector classes the lane never runs.
var voChaosClasses = []string{
	"STEDC", "ComputeDeflation", "LAED4", "ReduceW",
	"UpdateZ", "SortEigenvalues", "Dlamrg", "Scale",
}

// TestValuesOnlyChaosFallback injects panics and errors into every
// values-only task class with Fallback on: each solve must still serve a
// validated spectrum (the fired faults push it down the ladder to the Dsterf
// tier), the pool accountant must return to baseline, and no goroutines may
// leak — the lane inherits the full resilience contract.
func TestValuesOnlyChaosFallback(t *testing.T) {
	before := runtime.NumGoroutine()
	baseline := pool.InUseBytes()
	defer faultinject.Disable()
	rng := rand.New(rand.NewSource(2026))
	opts := func() *Options {
		return &Options{Workers: 4, MinPartition: 24, Fallback: true, ValuesOnly: true}
	}
	injected := 0
	for _, kind := range []faultinject.Kind{faultinject.KindPanic, faultinject.KindError} {
		for ci, class := range voChaosClasses {
			faultinject.Enable(int64(3000+100*ci)+int64(kind), faultinject.Probe{Class: class, Kind: kind, P: 0.15})
			n := 90 + rng.Intn(80)
			tri := randomTridiag(rng, n)
			res, err := SolveContext(context.Background(), tri, opts())
			checkAccountant(t, "vo class="+class, baseline)
			if err != nil {
				t.Fatalf("class=%s kind=%v: values-only solve failed despite fallback: %v", class, kind, err)
			}
			checkVOResult(t, "chaos "+class, n, res)
			if fired := faultinject.Fired()[class]; fired > 0 {
				injected++
				if res.Stats.Tier == "task-flow" {
					t.Errorf("class=%s kind=%v: fault fired but result still credited to task-flow", class, kind)
				}
				if !res.Stats.Validated {
					t.Errorf("class=%s kind=%v: degraded values-only result was not validated", class, kind)
				}
				if len(res.Stats.TierErrors) == 0 {
					t.Errorf("class=%s kind=%v: fault fired but no tier error recorded", class, kind)
				} else {
					var inj *faultinject.ErrInjected
					if !errors.As(res.Stats.TierErrors[0], &inj) {
						t.Errorf("class=%s kind=%v: tier error lost the injected cause: %v",
							class, kind, res.Stats.TierErrors[0])
					}
				}
				// Degraded values-only results are validated by Sturm counts,
				// not residuals — there are no vectors to form residuals with.
				if res.Stats.Residual != 0 || res.Stats.Orthogonality != 0 {
					t.Errorf("class=%s kind=%v: values-only result reports vector metrics (%g, %g)",
						class, kind, res.Stats.Residual, res.Stats.Orthogonality)
				}
			}
			faultinject.Disable()
		}
	}
	if injected == 0 {
		t.Fatal("no probe ever fired; the values-only chaos suite tested nothing")
	}
	t.Logf("values-only chaos: %d solves with at least one injected fault", injected)
	checkGoroutines(t, before)
}

// TestValuesOnlyWorkspaceBound: the lane's actual peak pooled footprint at
// n=4000 must stay within 2% of the full solve's admission charge — the
// O(n·depth) claim measured, not estimated. The peak is sampled from the pool
// accountant after every executed task via the Progress heartbeat.
func TestValuesOnlyWorkspaceBound(t *testing.T) {
	const n = 4000
	workers := 4
	tri := randomTridiag(rand.New(rand.NewSource(44)), n)
	base := pool.InUseBytes()
	var peak atomic.Int64
	progress := func() {
		v := pool.InUseBytes()
		for {
			cur := peak.Load()
			if v <= cur || peak.CompareAndSwap(cur, v) {
				return
			}
		}
	}
	res, err := SolveContext(context.Background(), tri, &Options{
		Workers: workers, ValuesOnly: true, Progress: progress,
	})
	if err != nil {
		t.Fatalf("values-only n=%d: %v", n, err)
	}
	checkVOResult(t, "workspace", n, res)

	voPeak := peak.Load() - base
	fullCharge := EstimateSolveBytes(n, workers)
	if voPeak <= 0 {
		t.Fatal("progress sampling observed no pooled workspace; the probe is broken")
	}
	if limit := fullCharge / 50; voPeak > limit {
		t.Errorf("values-only peak pooled workspace %d bytes exceeds 2%% of the full-solve charge (%d of %d)",
			voPeak, limit, fullCharge)
	}
	// The lane's own admission charge must cover what it actually used.
	if voEst := EstimateValuesOnlySolveBytes(n, workers); voPeak > voEst {
		t.Errorf("values-only peak %d bytes exceeds its admission estimate %d", voPeak, voEst)
	}
	t.Logf("n=%d: values-only peak=%d bytes, full-solve charge=%d (%.3f%%)",
		n, voPeak, fullCharge, 100*float64(voPeak)/float64(fullCharge))
}

// TestEstimateValuesOnlySolveBytesProperties: the per-class admission
// estimates must be monotone in n (telescoped marginal reservations depend on
// it) and never exceed the full-solve charge of the same job.
func TestEstimateValuesOnlySolveBytesProperties(t *testing.T) {
	for _, w := range []int{1, 4, 8} {
		if EstimateValuesOnlySolveBytes(0, w) != 0 || EstimateValuesOnlySolveBytes(-3, w) != 0 {
			t.Fatalf("workers=%d: non-positive n must estimate to 0", w)
		}
		prev := int64(0)
		for n := 1; n <= 6000; n += 37 {
			est := EstimateValuesOnlySolveBytes(n, w)
			if est <= 0 {
				t.Fatalf("workers=%d n=%d: non-positive estimate %d", w, n, est)
			}
			if est < prev {
				t.Fatalf("workers=%d: estimate not monotone at n=%d: %d < %d", w, n, est, prev)
			}
			prev = est
			if full := EstimateSolveBytes(n, w); est > full {
				t.Fatalf("workers=%d n=%d: values-only estimate %d exceeds full estimate %d", w, n, est, full)
			}
		}
	}

	// Batch analogue: exact for one member, monotone under member growth,
	// never above the full batch charge.
	for _, n := range []int{1, 17, 48, 300, 2000} {
		solo := EstimateValuesOnlySolveBytes(n, 4)
		if batch := EstimateBatchValuesOnlySolveBytes([]int{n}, 4); batch != solo {
			t.Errorf("single-member batch estimate %d != solo estimate %d at n=%d", batch, solo, n)
		}
	}
	var ns []int
	prev := int64(0)
	for _, n := range []int{64, 512, 128, 2000, 96, 4000} {
		ns = append(ns, n)
		est := EstimateBatchValuesOnlySolveBytes(ns, 4)
		if est < prev {
			t.Fatalf("batch estimate not monotone adding n=%d: %d < %d", n, est, prev)
		}
		prev = est
		if full := EstimateBatchSolveBytes(ns, 4); est > full {
			t.Fatalf("batch values-only estimate %d exceeds full batch estimate %d (%v)", est, full, ns)
		}
	}
}

// TestServerValuesOnlyAdmissionConcurrency: under one memory budget sized to
// admit a single full solve of order n, the server must admit and complete a
// whole flood of values_only jobs of the same order concurrently — the ≥5×
// request-class headroom, asserted deterministically via the estimates and
// then exercised live with per-class stats.
func TestServerValuesOnlyAdmissionConcurrency(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	for _, n := range []int{512, 2000, 4000} {
		full := EstimateSolveBytes(n, workers)
		vo := EstimateValuesOnlySolveBytes(n, workers)
		if full < 5*vo {
			t.Fatalf("n=%d: full-solve charge %d admits fewer than 5 values-only jobs (%d each)", n, full, vo)
		}
	}

	const n, flood = 600, 32
	budget := EstimateSolveBytes(n, workers)
	if need := int64(flood) * EstimateValuesOnlySolveBytes(n, workers); need > budget {
		t.Fatalf("flood of %d values-only jobs needs %d bytes, over the single-full-solve budget %d",
			flood, need, budget)
	}
	s := NewServer(ServerConfig{
		MaxConcurrent: 4,
		MaxQueue:      flood + 4,
		MemoryBudget:  budget,
		StallWindow:   time.Minute,
	})
	defer s.Shutdown(context.Background())

	rng := rand.New(rand.NewSource(606))
	tris := make([]Tridiagonal, flood)
	for i := range tris {
		tris[i] = randomTridiag(rng, n)
	}
	errs := make([]error, flood)
	results := make([]*ServeResult, flood)
	var wg sync.WaitGroup
	for i := range tris {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Solve(context.Background(), tris[i], &Options{ValuesOnly: true})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("values-only job %d rejected or failed under the full-solve budget: %v", i, err)
		}
		if results[i].Result.Vectors != nil {
			t.Fatalf("values-only job %d returned an eigenvector block", i)
		}
	}
	st := s.Stats()
	if st.ValuesOnlyAdmitted != flood || st.ValuesOnlyCompleted != flood {
		t.Errorf("per-class counters: admitted=%d completed=%d, want %d/%d",
			st.ValuesOnlyAdmitted, st.ValuesOnlyCompleted, flood, flood)
	}
	if st.Rejected != 0 {
		t.Errorf("%d rejections in a flood the budget must fully admit", st.Rejected)
	}
	if st.ValuesOnlyAvgServiceNanos <= 0 {
		t.Error("values-only service-time EWMA never updated")
	}
}
