package eigen

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"tridiag/internal/faultinject"
)

// serverConfig is the suite's base configuration: small and fast, with the
// watchdog effectively disabled unless a test arms it.
func serverConfig() ServerConfig {
	return ServerConfig{
		MaxConcurrent: 2,
		MaxQueue:      8,
		StallWindow:   time.Minute,
		MaxRetries:    2,
		RetryBase:     time.Millisecond,
	}
}

func mustSolve(t *testing.T, s *Server, tri Tridiagonal, o *Options) *ServeResult {
	t.Helper()
	sr, err := s.Solve(context.Background(), tri, o)
	if err != nil {
		t.Fatalf("server solve n=%d: %v", tri.N(), err)
	}
	if sr.Result == nil {
		t.Fatalf("server solve n=%d: nil result without error", tri.N())
	}
	return sr
}

// TestServerBasic serves concurrent clean jobs: all complete on the primary
// tier, results verify, and the counters add up.
func TestServerBasic(t *testing.T) {
	before := runtime.NumGoroutine()
	s := NewServer(serverConfig())
	rng := rand.New(rand.NewSource(1))
	tris := make([]Tridiagonal, 8)
	for i := range tris {
		tris[i] = randomTridiag(rng, 60+rng.Intn(60))
	}
	var wg sync.WaitGroup
	for i := range tris {
		wg.Add(1)
		go func(tri Tridiagonal) {
			defer wg.Done()
			sr, err := s.Solve(context.Background(), tri, chaosOptions(false))
			if err != nil {
				t.Errorf("n=%d: %v", tri.N(), err)
				return
			}
			if sr.Disposition != DispositionCompleted || sr.Attempts != 1 {
				t.Errorf("n=%d: disposition=%v attempts=%d, want completed/1", tri.N(), sr.Disposition, sr.Attempts)
			}
			if r := Residual(tri, sr.Result); r > 1e-12 {
				t.Errorf("n=%d: residual %.3e", tri.N(), r)
			}
		}(tris[i])
	}
	wg.Wait()
	st := s.Stats()
	if st.Admitted != 8 || st.Completed != 8 || st.Rejected != 0 {
		t.Errorf("stats %+v, want 8 admitted and completed", st)
	}
	if st.Queued != 0 || st.Running != 0 || st.ReservedBytes != 0 {
		t.Errorf("server not quiescent after jobs: %+v", st)
	}
	if _, err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	checkGoroutines(t, before)
}

// TestServerQueueFull fills the single slot and the single queue seat with
// delay-stalled jobs; the next job must be rejected with ErrOverloaded and
// counted, without being admitted.
func TestServerQueueFull(t *testing.T) {
	defer faultinject.Disable()
	faultinject.Enable(1, faultinject.Probe{Class: "*", Kind: faultinject.KindDelay, P: 1, Delay: 10 * time.Second})
	cfg := serverConfig()
	cfg.MaxConcurrent, cfg.MaxQueue = 1, 1
	s := NewServer(cfg)
	rng := rand.New(rand.NewSource(2))
	tri := randomTridiag(rng, 80)

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Solve(context.Background(), tri, chaosOptions(false))
		}()
	}
	waitFor(t, func() bool {
		st := s.Stats()
		return st.Running == 1 && st.Queued == 1
	})

	if _, err := s.Solve(context.Background(), tri, chaosOptions(false)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third job: err=%v, want ErrOverloaded", err)
	}
	st := s.Stats()
	if st.Rejected != 1 || st.Admitted != 2 {
		t.Errorf("stats %+v, want 1 rejected / 2 admitted", st)
	}

	// Forced drain unblocks the stalled jobs (the delay probes are bounded
	// by the solve context — PR 5's faultinject change).
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	rep, err := s.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain err=%v, want DeadlineExceeded", err)
	}
	if len(rep.Jobs) != 2 {
		t.Fatalf("drain report has %d jobs, want 2", len(rep.Jobs))
	}
	wg.Wait()
	for _, j := range rep.Jobs {
		if j.Disposition != DispositionCancelled {
			t.Errorf("job %d: disposition %v, want cancelled", j.ID, j.Disposition)
		}
	}
}

// TestServerMemoryBudget rejects a job whose workspace estimate exceeds the
// remaining budget and admits it once the budget fits, tracking the peak.
func TestServerMemoryBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tri := randomTridiag(rng, 96)
	o := chaosOptions(false)
	est := EstimateSolveBytes(tri.N(), o.Workers)
	if est <= 0 {
		t.Fatalf("estimate for n=%d is %d", tri.N(), est)
	}

	cfg := serverConfig()
	cfg.MemoryBudget = est - 1
	s := NewServer(cfg)
	if _, err := s.Solve(context.Background(), tri, o); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("under-budget server: err=%v, want ErrOverloaded", err)
	}

	cfg.MemoryBudget = est
	s2 := NewServer(cfg)
	sr := mustSolve(t, s2, tri, o)
	if sr.Disposition != DispositionCompleted {
		t.Errorf("disposition %v, want completed", sr.Disposition)
	}
	st := s2.Stats()
	if st.PeakReservedBytes != est || st.ReservedBytes != 0 {
		t.Errorf("peak=%d reserved=%d, want peak=%d reserved=0", st.PeakReservedBytes, st.ReservedBytes, est)
	}
}

// TestServerDeadlineReject primes the service-time EWMA and then offers a job
// whose deadline cannot possibly be met: admission must reject it up front
// instead of letting it burn a slot and time out mid-solve.
func TestServerDeadlineReject(t *testing.T) {
	s := NewServer(serverConfig())
	rng := rand.New(rand.NewSource(4))
	tri := randomTridiag(rng, 120)
	mustSolve(t, s, tri, chaosOptions(false)) // primes avgNanos

	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	_, err := s.Solve(ctx, tri, chaosOptions(false))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err=%v, want ErrOverloaded", err)
	}
	if st := s.Stats(); st.Rejected != 1 {
		t.Errorf("rejected=%d, want 1", st.Rejected)
	}
}

// TestServerWatchdogStallDegrades stalls every LAED4 task far beyond the
// stall window: the watchdog must abort each primary attempt within ~2× the
// window, the retries must be counted as stalls, and the job must still be
// served by the injection-free fallback tier.
func TestServerWatchdogStallDegrades(t *testing.T) {
	defer faultinject.Disable()
	faultinject.Enable(5, faultinject.Probe{Class: "LAED4", Kind: faultinject.KindDelay, P: 1, Delay: 10 * time.Second})
	const window = 150 * time.Millisecond
	cfg := serverConfig()
	cfg.StallWindow = window
	cfg.MaxRetries = 1
	s := NewServer(cfg)
	rng := rand.New(rand.NewSource(6))
	tri := randomTridiag(rng, 120)

	start := time.Now()
	sr := mustSolve(t, s, tri, chaosOptions(false))
	elapsed := time.Since(start)

	if sr.Disposition != DispositionDegraded {
		t.Errorf("disposition %v, want degraded", sr.Disposition)
	}
	if sr.Stalls < 1 {
		t.Errorf("stalls=%d, want >=1", sr.Stalls)
	}
	if sr.Attempts != 3 { // primary + 1 retry + fallback
		t.Errorf("attempts=%d, want 3", sr.Attempts)
	}
	if sr.Result.Stats.Tier == "task-flow" {
		t.Errorf("stalled job still credited to the task-flow tier")
	}
	if r := Residual(tri, sr.Result); r > 1e-12 {
		t.Errorf("residual %.3e", r)
	}
	// Acceptance bound: abort-to-retry latency ≤ 2× the stall window per
	// stalled attempt (ticker granularity is window/4), plus backoff and the
	// fast sequential fallback.
	if limit := 2*2*window + time.Second; elapsed > limit {
		t.Errorf("stalled job took %v, want < %v", elapsed, limit)
	}
	if st := s.Stats(); st.WatchdogAborts < 2 {
		t.Errorf("watchdog aborts=%d, want >=2", st.WatchdogAborts)
	}
}

// TestServerBreaker drives a kernel class to persistent failure: the breaker
// must open at the threshold, route subsequent jobs straight to the fallback
// tier (one attempt, no retries), and close again via a half-open probe once
// the fault clears and the cooldown expires.
func TestServerBreaker(t *testing.T) {
	defer faultinject.Disable()
	faultinject.Enable(7, faultinject.Probe{Class: "ComputeDeflation", Kind: faultinject.KindError, P: 1})
	cfg := serverConfig()
	cfg.MaxRetries = -1 // no same-tier retries: each job fails primary once
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = 50 * time.Millisecond
	s := NewServer(cfg)
	rng := rand.New(rand.NewSource(8))

	for i := 0; i < 2; i++ {
		sr := mustSolve(t, s, randomTridiag(rng, 100), chaosOptions(false))
		if sr.Disposition != DispositionDegraded || sr.Attempts != 2 {
			t.Fatalf("job %d: disposition=%v attempts=%d, want degraded/2", i, sr.Disposition, sr.Attempts)
		}
	}
	st := s.Stats()
	if st.BreakerOpens != 1 || len(st.OpenBreakers) != 1 || st.OpenBreakers[0] != "ComputeDeflation" {
		t.Fatalf("breaker state %+v, want ComputeDeflation open", st)
	}

	// Open circuit: jobs skip the primary tier entirely.
	sr := mustSolve(t, s, randomTridiag(rng, 100), chaosOptions(false))
	if sr.Disposition != DispositionDegraded || sr.Attempts != 1 {
		t.Fatalf("open-circuit job: disposition=%v attempts=%d, want degraded/1", sr.Disposition, sr.Attempts)
	}

	// Fault clears, cooldown expires: the next job is the half-open probe,
	// succeeds on the primary tier and closes the circuit.
	faultinject.Disable()
	time.Sleep(cfg.BreakerCooldown + 10*time.Millisecond)
	sr = mustSolve(t, s, randomTridiag(rng, 100), chaosOptions(false))
	if sr.Disposition != DispositionCompleted || sr.Result.Stats.Tier != "task-flow" {
		t.Fatalf("probe job: disposition=%v tier=%s, want completed on task-flow", sr.Disposition, sr.Result.Stats.Tier)
	}
	if st := s.Stats(); len(st.OpenBreakers) != 0 {
		t.Errorf("breakers still open after successful probe: %v", st.OpenBreakers)
	}
}

// TestServerRetriedDisposition makes the first attempts fail with a transient
// injected error at low probability: some jobs should complete on a retry and
// be classified retried-then-completed.
func TestServerRetriedDisposition(t *testing.T) {
	defer faultinject.Disable()
	cfg := serverConfig()
	cfg.BreakerThreshold = 1000 // keep the circuit out of this test's way
	s := NewServer(cfg)
	rng := rand.New(rand.NewSource(9))
	retried := 0
	for i := 0; i < 12 && retried == 0; i++ {
		faultinject.Enable(int64(100+i), faultinject.Probe{Class: "*", Kind: faultinject.KindError, P: 0.02})
		sr := mustSolve(t, s, randomTridiag(rng, 90+rng.Intn(60)), chaosOptions(false))
		if sr.Disposition == DispositionRetried {
			retried++
			if sr.Attempts < 2 {
				t.Errorf("retried disposition with attempts=%d", sr.Attempts)
			}
		}
		faultinject.Disable()
	}
	if retried == 0 {
		t.Skip("no transient fault fired on a retryable attempt; nothing to assert")
	}
	if st := s.Stats(); st.Retries < 1 || st.Retried < 1 {
		t.Errorf("stats %+v, want >=1 retries and retried", s.Stats())
	}
}

// TestServerShutdownGraceful drains a busy server with a generous deadline:
// every in-flight job finishes normally and appears in the report.
func TestServerShutdownGraceful(t *testing.T) {
	s := NewServer(serverConfig())
	rng := rand.New(rand.NewSource(10))
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		tri := randomTridiag(rng, 100+rng.Intn(60))
		wg.Add(1)
		go func() {
			defer wg.Done()
			sr, err := s.Solve(context.Background(), tri, chaosOptions(false))
			if err != nil {
				t.Errorf("drained job failed: %v", err)
			} else if sr.Disposition != DispositionCompleted {
				t.Errorf("drained job disposition %v", sr.Disposition)
			}
		}()
	}
	// Wait until all four jobs are simultaneously in flight (not merely
	// admitted): a fast job that already completed would be gone from the
	// drain snapshot and flake the report-size assertion below.
	waitFor(t, func() bool {
		st := s.Stats()
		return st.Queued+st.Running == 4
	})
	rep, err := s.Shutdown(context.Background())
	if err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	if len(rep.Jobs) != 4 {
		t.Fatalf("report has %d jobs, want 4", len(rep.Jobs))
	}
	for _, j := range rep.Jobs {
		if j.Disposition != DispositionCompleted {
			t.Errorf("job %d: %v, want completed", j.ID, j.Disposition)
		}
	}
	if _, err := s.Solve(context.Background(), randomTridiag(rng, 50), nil); !errors.Is(err, ErrServerClosed) {
		t.Errorf("post-shutdown solve err=%v, want ErrServerClosed", err)
	}
	if rep2, err := s.Shutdown(context.Background()); err != nil || len(rep2.Jobs) != 0 {
		t.Errorf("second shutdown: rep=%+v err=%v, want empty/nil", rep2, err)
	}
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
