package eigen

import (
	"fmt"
	"math"

	"tridiag/internal/lapack"
)

// This file holds the values-only validation path. A degraded tier serving a
// full eigendecomposition is checked with the Residual/Orthogonality pair;
// a values-only result has no vectors to form a residual with, so the
// spectrum is verified directly against the matrix via Sturm sequence
// counts: for the i-th computed eigenvalue λᵢ (ascending), the LDLᵀ inertia
// count at λᵢ+tol must include at least i+1 eigenvalues and the count at
// λᵢ−tol at most i. The check is independent of every eigenvalue algorithm
// in the library (it only evaluates the shifted factorization), so a broken
// solver cannot validate itself.

// sturmCountBelow returns the number of eigenvalues of the symmetric
// tridiagonal matrix (d, e) that are strictly below x, by counting negative
// pivots of the LDLᵀ recurrence t_i = (d_i − x) − e_{i−1}²/t_{i−1}. pivmin
// is the smallest admissible |pivot|; a tiny pivot is replaced by −pivmin
// (the LAPACK dlaneg safeguard) so the recurrence never divides by zero.
func sturmCountBelow(d, e []float64, x, pivmin float64) int {
	count := 0
	t := d[0] - x
	if math.Abs(t) < pivmin {
		t = -pivmin
	}
	if t < 0 {
		count++
	}
	for i := 1; i < len(d); i++ {
		t = (d[i] - x) - e[i-1]*e[i-1]/t
		if math.Abs(t) < pivmin {
			t = -pivmin
		}
		if t < 0 {
			count++
		}
	}
	return count
}

// spectrumSamples is how many eigenvalue indices validateSpectrum probes.
// Each probe is two O(n) Sturm counts, so the whole check is O(n·samples) —
// negligible next to any solve — while still bracketing the spectrum's ends
// and a spread of interior eigenvalues.
const spectrumSamples = 32

// validateSpectrum checks a computed ascending spectrum w against the matrix
// t by Sturm counts at sampled indices (always including the first and last
// eigenvalue). The tolerance is the values-only analogue of the maxResidual
// bar: maxResidual · n · ‖T‖.
func validateSpectrum(t Tridiagonal, w []float64) error {
	n := t.N()
	if n == 0 {
		return nil
	}
	if len(w) != n {
		return fmt.Errorf("spectrum has %d values, want %d", len(w), n)
	}
	for i := 1; i < n; i++ {
		if w[i] < w[i-1] {
			return fmt.Errorf("eigenvalues not ascending at index %d", i)
		}
	}
	nrm := lapack.Dlanst('M', n, t.D, t.E)
	if nrm == 0 {
		// The zero matrix: every eigenvalue must be exactly zero.
		for i, v := range w {
			if v != 0 {
				return fmt.Errorf("eigenvalue %d of the zero matrix is %g", i, v)
			}
		}
		return nil
	}
	tol := maxResidual * float64(n) * nrm
	var maxE2 float64
	for _, v := range t.E {
		maxE2 = math.Max(maxE2, v*v)
	}
	pivmin := math.Max(lapack.SafeMin, lapack.SafeMin*maxE2)

	samples := spectrumSamples
	if samples > n {
		samples = n
	}
	for s := 0; s < samples; s++ {
		// Even spread over [0, n-1], endpoints always included.
		i := 0
		if samples > 1 {
			i = s * (n - 1) / (samples - 1)
		}
		// At least i+1 eigenvalues at or below λᵢ+tol…
		if got := sturmCountBelow(t.D, t.E, w[i]+tol, pivmin); got < i+1 {
			return fmt.Errorf("eigenvalue %d = %.6g: only %d eigenvalues below λ+tol, want ≥ %d", i, w[i], got, i+1)
		}
		// …and at most i strictly below λᵢ−tol.
		if got := sturmCountBelow(t.D, t.E, w[i]-tol, pivmin); got > i {
			return fmt.Errorf("eigenvalue %d = %.6g: %d eigenvalues below λ−tol, want ≤ %d", i, w[i], got, i)
		}
	}
	return nil
}
