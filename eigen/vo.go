package eigen

import (
	"fmt"
	"math"

	"tridiag/internal/lapack"
)

// This file holds the values-only validation path. A degraded tier serving a
// full eigendecomposition is checked with the Residual/Orthogonality pair;
// a values-only result has no vectors to form a residual with, so the
// spectrum is verified directly against the matrix via Sturm sequence
// counts: for the i-th computed eigenvalue λᵢ (ascending), the LDLᵀ inertia
// count at λᵢ+tol must include at least i+1 eigenvalues and the count at
// λᵢ−tol at most i. The check is independent of every eigenvalue algorithm
// in the library (it only evaluates the shifted factorization), so a broken
// solver cannot validate itself.

// sturmCountBelow returns the number of eigenvalues of the symmetric
// tridiagonal matrix (d, e) that are strictly below x, by counting negative
// pivots of the LDLᵀ recurrence t_i = (d_i − x) − e_{i−1}²/t_{i−1}. pivmin
// is the smallest admissible |pivot|; a tiny pivot is replaced by −pivmin
// (the LAPACK dlaneg safeguard) so the recurrence never divides by zero.
func sturmCountBelow(d, e []float64, x, pivmin float64) int {
	count := 0
	t := d[0] - x
	if math.Abs(t) < pivmin {
		t = -pivmin
	}
	if t < 0 {
		count++
	}
	for i := 1; i < len(d); i++ {
		t = (d[i] - x) - e[i-1]*e[i-1]/t
		if math.Abs(t) < pivmin {
			t = -pivmin
		}
		if t < 0 {
			count++
		}
	}
	return count
}

// sturmCountBelow4 runs four independent Sturm counts in one pass over the
// matrix, returning exactly what four sturmCountBelow calls would. The four
// recurrences share no state, so their long-latency pivot divisions
// pipeline instead of serializing.
func sturmCountBelow4(d, e []float64, x [4]float64, pivmin float64) [4]int {
	var c0, c1, c2, c3 int
	t0 := d[0] - x[0]
	t1 := d[0] - x[1]
	t2 := d[0] - x[2]
	t3 := d[0] - x[3]
	if math.Abs(t0) < pivmin {
		t0 = -pivmin
	}
	if math.Abs(t1) < pivmin {
		t1 = -pivmin
	}
	if math.Abs(t2) < pivmin {
		t2 = -pivmin
	}
	if math.Abs(t3) < pivmin {
		t3 = -pivmin
	}
	if t0 < 0 {
		c0++
	}
	if t1 < 0 {
		c1++
	}
	if t2 < 0 {
		c2++
	}
	if t3 < 0 {
		c3++
	}
	for i := 1; i < len(d); i++ {
		e2 := e[i-1] * e[i-1]
		di := d[i]
		t0 = (di - x[0]) - e2/t0
		t1 = (di - x[1]) - e2/t1
		t2 = (di - x[2]) - e2/t2
		t3 = (di - x[3]) - e2/t3
		if math.Abs(t0) < pivmin {
			t0 = -pivmin
		}
		if math.Abs(t1) < pivmin {
			t1 = -pivmin
		}
		if math.Abs(t2) < pivmin {
			t2 = -pivmin
		}
		if math.Abs(t3) < pivmin {
			t3 = -pivmin
		}
		if t0 < 0 {
			c0++
		}
		if t1 < 0 {
			c1++
		}
		if t2 < 0 {
			c2++
		}
		if t3 < 0 {
			c3++
		}
	}
	return [4]int{c0, c1, c2, c3}
}

// spectrumSamples is how many eigenvalue indices validateSpectrum probes.
// Each probe is two O(n) Sturm counts, so the whole check is O(n·samples) —
// negligible next to any solve — while still bracketing the spectrum's ends
// and a spread of interior eigenvalues.
const spectrumSamples = 32

// validateSpectrum checks a computed ascending spectrum w against the matrix
// t by Sturm counts at sampled indices (always including the first and last
// eigenvalue). The tolerance is the values-only analogue of the maxResidual
// bar: maxResidual · n · ‖T‖.
func validateSpectrum(t Tridiagonal, w []float64) error {
	return validateSpectrumN(t, w, spectrumSamples)
}

// validateSpectrumN is validateSpectrum with a caller-chosen probe count —
// the always-on audit's knob (AuditOptions.SpectrumSamples).
func validateSpectrumN(t Tridiagonal, w []float64, samples int) error {
	n := t.N()
	if n == 0 {
		return nil
	}
	if len(w) != n {
		return fmt.Errorf("spectrum has %d values, want %d", len(w), n)
	}
	for i := 1; i < n; i++ {
		if w[i] < w[i-1] {
			return fmt.Errorf("eigenvalues not ascending at index %d", i)
		}
	}
	nrm := lapack.Dlanst('M', n, t.D, t.E)
	if nrm == 0 {
		// The zero matrix: every eigenvalue must be exactly zero.
		for i, v := range w {
			if v != 0 {
				return fmt.Errorf("eigenvalue %d of the zero matrix is %g", i, v)
			}
		}
		return nil
	}
	tol := maxResidual * float64(n) * nrm
	var maxE2 float64
	for _, v := range t.E {
		maxE2 = math.Max(maxE2, v*v)
	}
	pivmin := math.Max(lapack.SafeMin, lapack.SafeMin*maxE2)

	if samples <= 0 {
		samples = spectrumSamples
	}
	if samples > n {
		samples = n
	}
	// Gather every probe shift up front and run the counts four at a time:
	// the LDLᵀ recurrences are independent, so interleaving four chains
	// pipelines the per-pivot division latency that dominates a single
	// count (~4× over sequential counts on the always-on audit path).
	idx := make([]int, samples)
	shifts := make([]float64, 2*samples)
	for s := 0; s < samples; s++ {
		// Even spread over [0, n-1], endpoints always included.
		i := 0
		if samples > 1 {
			i = s * (n - 1) / (samples - 1)
		}
		idx[s] = i
		shifts[2*s] = w[i] + tol
		shifts[2*s+1] = w[i] - tol
	}
	counts := make([]int, len(shifts))
	for s := 0; s < len(shifts); s += 4 {
		var x [4]float64
		for l := 0; l < 4; l++ {
			if s+l < len(shifts) {
				x[l] = shifts[s+l]
			} else {
				x[l] = shifts[len(shifts)-1]
			}
		}
		c := sturmCountBelow4(t.D, t.E, x, pivmin)
		for l := 0; l < 4 && s+l < len(shifts); l++ {
			counts[s+l] = c[l]
		}
	}
	for s, i := range idx {
		// At least i+1 eigenvalues at or below λᵢ+tol…
		if got := counts[2*s]; got < i+1 {
			return fmt.Errorf("eigenvalue %d = %.6g: only %d eigenvalues below λ+tol, want ≥ %d", i, w[i], got, i+1)
		}
		// …and at most i strictly below λᵢ−tol.
		if got := counts[2*s+1]; got > i {
			return fmt.Errorf("eigenvalue %d = %.6g: %d eigenvalues below λ−tol, want ≤ %d", i, w[i], got, i)
		}
	}
	return nil
}
