package eigen

import (
	"math"
	"math/rand"
	"testing"
)

// TestAuditColumns: the sampling schedule must cover both endpoints, stay
// strictly increasing and in range, and degenerate to the full sweep when
// the budget covers every column.
func TestAuditColumns(t *testing.T) {
	for _, n := range []int{1, 2, 7, 100} {
		for _, budget := range []int{0, -1, n, n + 5} {
			cols := auditColumns(n, budget)
			if len(cols) != n {
				t.Fatalf("n=%d budget=%d: want full sweep, got %d columns", n, budget, len(cols))
			}
		}
	}
	cols := auditColumns(100, 5)
	if len(cols) != 5 || cols[0] != 0 || cols[len(cols)-1] != 99 {
		t.Fatalf("spread misses endpoints: %v", cols)
	}
	for i := 1; i < len(cols); i++ {
		if cols[i] <= cols[i-1] {
			t.Fatalf("columns not strictly increasing: %v", cols)
		}
	}
}

// TestAuditResultDetectsCorruption: the audit must flag a flipped bit in an
// eigenvalue (spectrum check), a flipped bit in an eigenvector entry
// (residual check) and a rescaled eigenvector (unit-norm check) — and pass
// the untouched result.
func TestAuditResultDetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	tri := randomTridiag(rng, 120)
	o := &Options{Workers: 2}
	res, err := Solve(tri, o)
	if err != nil {
		t.Fatal(err)
	}
	if worst, aerr := auditResult(tri, res, o); aerr != nil {
		t.Fatalf("false positive on clean result: %v (worst %g)", aerr, worst)
	}

	corrupt := func(mutate func(r *Result)) error {
		cp := &Result{N: res.N, Values: append([]float64(nil), res.Values...),
			Vectors: append([]float64(nil), res.Vectors...), Stats: &SolveStats{}}
		mutate(cp)
		_, aerr := auditResult(tri, cp, o)
		return aerr
	}

	flip := func(v float64) float64 { return math.Float64frombits(math.Float64bits(v) ^ (1 << 57)) }
	if err := corrupt(func(r *Result) { r.Values[37] = flip(r.Values[37]) }); err == nil {
		t.Error("flipped eigenvalue escaped the audit")
	} else if !IsCorruption(err) {
		t.Errorf("spectrum failure not classified as corruption: %v", err)
	}
	// Flip the largest entry of one eigenvector column (a flip in a
	// denormal-range entry is harmless by construction — 2^32 of ~1e-300 is
	// still negligible — and the argmax is what the chaos probes flip too).
	if err := corrupt(func(r *Result) {
		col := r.Vectors[61*r.N : 62*r.N]
		arg, mx := 0, 0.0
		for i, v := range col {
			if a := math.Abs(v); a > mx {
				arg, mx = i, a
			}
		}
		col[arg] = flip(col[arg])
	}); err == nil {
		t.Error("flipped eigenvector entry escaped the audit")
	} else if !IsCorruption(err) {
		t.Errorf("residual failure not classified as corruption: %v", err)
	}
	if err := corrupt(func(r *Result) {
		for i := 0; i < r.N; i++ {
			r.Vectors[25*r.N+i] *= 1 + 1e-6
		}
	}); err == nil {
		t.Error("rescaled eigenvector escaped the unit-norm audit")
	}
}

// TestAuditDisable: Options.Audit.Disable must skip the audit entirely — the
// served result reports Audited false, and a corrupt result ships (that is
// the caller's explicit choice).
func TestAuditDisable(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	tri := randomTridiag(rng, 60)
	res, err := Solve(tri, &Options{Audit: AuditOptions{Disable: true}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Audited {
		t.Error("audit ran despite Disable")
	}
	on, err := Solve(tri, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !on.Stats.Audited {
		t.Error("audit skipped by default")
	}
	if on.Stats.AuditResidual < 0 {
		t.Errorf("negative audit residual %g", on.Stats.AuditResidual)
	}
}
