package eigen

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"tridiag/internal/faultinject"
	"tridiag/internal/pool"
)

// sdcFullClasses are the task kernel classes of the full (vectors) task-flow
// lane that carry a KindCorrupt hook on their output buffer; the SDC gate
// injects a silent bit flip into every one of them.
var sdcFullClasses = []string{
	"Scale", "STEDC", "SortEigenvectors", "ComputeDeflation", "PermuteV",
	"LAED4", "ComputeLocalW", "ReduceW", "CopyBackDeflated", "ComputeVect",
	"UpdateVect", "Dlamrg", "PackV",
}

// sdcVOClasses are the corrupt-hooked classes of the eigenvalue-only lane.
var sdcVOClasses = []string{
	"Scale", "STEDC", "SortEigenvalues", "ComputeDeflation", "LAED4",
	"ReduceW", "UpdateZ", "Dlamrg",
}

// sdcProbe arms a deterministic single-shot silent corruption of one task of
// the given class: the task SUCCEEDS and hands plausible-looking wrong data
// downstream — only the ABFT checks and the result audit stand between the
// flip and a wrong answer served to the caller.
func sdcProbe(seed int64, class string) {
	faultinject.Enable(seed, faultinject.Probe{
		Class: class, Kind: faultinject.KindCorrupt, P: 1, MaxFires: 1,
	})
}

// sdcLedgerCheck asserts the served result's corruption accounting: a result
// that was served must have healed everything it detected — detection
// without healing would mean a known-corrupt answer shipped. Detection
// itself is asserted per class across a lane's whole run, not per solve: a
// flip can land in provably-dead data (a K<=2 merge never reads its ẑ
// buffer; pooled scratch is dirty by contract) or perturb the spectrum below
// the audit tolerance — both are harmless by the test-side oracle, and the
// defense contract is detect-or-harmless, not detect-always.
func sdcLedgerCheck(t *testing.T, label string, st *SolveStats) {
	t.Helper()
	if st.CorruptionsHealed != st.CorruptionsDetected {
		t.Errorf("%s: served result detected %d corruptions but healed %d", label, st.CorruptionsDetected, st.CorruptionsHealed)
	}
}

// TestChaosSDCGate is the silent-data-corruption gate: a single-shot bit
// flip is injected into every corrupt-hooked kernel class, across the full,
// values-only and batched lanes, over randomized matrices. Every solve must
// serve a verified-correct result (checked test-side, independently of the
// in-tree defenses), every fired flip must appear in the corruption ledger as
// detected-and-healed, the pool accountant must return to baseline, and no
// goroutines may leak. Zero silent wrong-answer escapes, by construction of
// the assertions: a flip the defenses missed fails the test-side check.
func TestChaosSDCGate(t *testing.T) {
	before := runtime.NumGoroutine()
	baseline := pool.InUseBytes()
	defer faultinject.Disable()

	const (
		fullPerClass  = 20 // full-lane solves per class
		batchRuns     = 5  // batched runs per class ...
		batchMembers  = 8  // ... of this many member solves each (40/class)
		voPerClass    = 60 // values-only solves per class
		valueTolScale = 1e-8
	)

	// Full lane: every served result is re-verified test-side with the
	// residual and orthogonality of the ORIGINAL matrix — a check no in-tree
	// defense can influence.
	rng := rand.New(rand.NewSource(42))
	for ci, class := range sdcFullClasses {
		var fired, solvesFired, detected int64
		for it := 0; it < fullPerClass; it++ {
			seed := int64(1000*ci + it)
			sdcProbe(seed, class)
			tri := randomTridiag(rng, 64+rng.Intn(64))
			res, err := SolveContext(context.Background(), tri, chaosOptions(true))
			f := faultinject.Fired()[class]
			faultinject.Disable()
			checkAccountant(t, "full/"+class, baseline)
			if err != nil {
				t.Fatalf("full/%s it=%d: corruption was not healed: %v", class, it, err)
			}
			if r := Residual(tri, res); r > 1e-12 {
				t.Errorf("full/%s it=%d: WRONG ANSWER ESCAPED: residual %.3e (tier %s)", class, it, r, res.Stats.Tier)
			}
			if o := Orthogonality(res); o > 1e-12 {
				t.Errorf("full/%s it=%d: WRONG ANSWER ESCAPED: orthogonality %.3e (tier %s)", class, it, o, res.Stats.Tier)
			}
			sdcLedgerCheck(t, "full/"+class, res.Stats)
			fired += f
			detected += res.Stats.CorruptionsDetected
			if f > 0 {
				solvesFired++
			}
		}
		if fired == 0 {
			t.Errorf("full/%s: probe never fired in %d solves; the gate tested nothing for this class", class, fullPerClass)
		}
		if detected == 0 {
			t.Errorf("full/%s: %d flips injected, zero ever detected — the class has no working defense", class, fired)
		}
		t.Logf("full/%s: %d solves, %d with an injected flip, %d detections", class, fullPerClass, solvesFired, detected)
	}

	// Values-only lane: no vectors to verify, so the test-side oracle is a
	// clean (probe-free) solve of the same matrix; the spectra must agree to
	// rounding.
	rng = rand.New(rand.NewSource(43))
	voOpts := func() *Options {
		o := chaosOptions(true)
		o.ValuesOnly = true
		return o
	}
	for ci, class := range sdcVOClasses {
		var fired, detected int64
		for it := 0; it < voPerClass; it++ {
			seed := int64(2000*ci + it)
			tri := randomTridiag(rng, 64+rng.Intn(64))
			ref, err := SolveContext(context.Background(), tri, voOpts())
			if err != nil {
				t.Fatalf("vo/%s it=%d: clean reference solve failed: %v", class, it, err)
			}
			sdcProbe(seed, class)
			res, err := SolveContext(context.Background(), tri, voOpts())
			f := faultinject.Fired()[class]
			faultinject.Disable()
			checkAccountant(t, "vo/"+class, baseline)
			if err != nil {
				t.Fatalf("vo/%s it=%d: corruption was not healed: %v", class, it, err)
			}
			tol := valueTolScale * spectrumScale(ref.Values)
			for j := range ref.Values {
				if d := math.Abs(res.Values[j] - ref.Values[j]); d > tol {
					t.Errorf("vo/%s it=%d: WRONG ANSWER ESCAPED: eigenvalue %d off by %.3e (tier %s)", class, it, j, d, res.Stats.Tier)
					break
				}
			}
			sdcLedgerCheck(t, "vo/"+class, res.Stats)
			fired += f
			detected += res.Stats.CorruptionsDetected
		}
		if fired == 0 {
			t.Errorf("vo/%s: probe never fired in %d solves; the gate tested nothing for this class", class, voPerClass)
		}
		if detected == 0 {
			t.Errorf("vo/%s: %d flips injected, zero ever detected — the class has no working defense", class, fired)
		}
	}

	// Batched lane: one member of each shared-DAG batch takes the flip; its
	// batch-mates must be untouched and the hit member must still serve a
	// correct result through the batched audit + solo-degraded-retry path.
	rng = rand.New(rand.NewSource(44))
	for ci, class := range sdcFullClasses {
		var fired, classDetected int64
		for it := 0; it < batchRuns; it++ {
			seed := int64(3000*ci + it)
			tris := make([]Tridiagonal, batchMembers)
			for i := range tris {
				tris[i] = randomTridiag(rng, 48+rng.Intn(48))
			}
			sdcProbe(seed, class)
			results, err := SolveBatch(context.Background(), tris, chaosOptions(true))
			f := faultinject.Fired()[class]
			faultinject.Disable()
			checkAccountant(t, "batch/"+class, baseline)
			if err != nil {
				t.Fatalf("batch/%s it=%d: corruption was not healed: %v", class, it, err)
			}
			var detected int64
			for i, res := range results {
				if res == nil {
					t.Fatalf("batch/%s it=%d: member %d has no result", class, it, i)
				}
				if r := Residual(tris[i], res); r > 1e-12 {
					t.Errorf("batch/%s it=%d member=%d: WRONG ANSWER ESCAPED: residual %.3e (tier %s)", class, it, i, r, res.Stats.Tier)
				}
				if o := Orthogonality(res); o > 1e-12 {
					t.Errorf("batch/%s it=%d member=%d: WRONG ANSWER ESCAPED: orthogonality %.3e (tier %s)", class, it, i, o, res.Stats.Tier)
				}
				if res.Stats.CorruptionsHealed != res.Stats.CorruptionsDetected {
					t.Errorf("batch/%s it=%d member=%d: detected %d but healed %d", class, it, i, res.Stats.CorruptionsDetected, res.Stats.CorruptionsHealed)
				}
				detected += res.Stats.CorruptionsDetected
			}
			classDetected += detected
			fired += f
		}
		if fired == 0 {
			t.Errorf("batch/%s: probe never fired in %d batches; the gate tested nothing for this class", class, batchRuns)
		}
		if classDetected == 0 {
			t.Errorf("batch/%s: %d flips injected, zero ever detected — the class has no working defense", class, fired)
		}
	}

	checkGoroutines(t, before)
}

// spectrumScale is the magnitude scale eigenvalue comparisons are relative
// to: the largest absolute eigenvalue, floored at 1 to keep tolerances
// meaningful for near-zero spectra.
func spectrumScale(values []float64) float64 {
	s := 1.0
	for _, v := range values {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	return s
}
