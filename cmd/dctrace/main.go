// dctrace renders execution traces of the task-flow solver: the textual
// analogue of the paper's Figures 3 and 4. The solver runs once on one
// worker with graph capture, then the schedule is replayed on P virtual
// workers (see DESIGN.md §2) under the selected execution model.
//
//	dctrace -type 4 -n 1500 -p 16 -model taskflow
//	dctrace -type 1 -n 1500 -p 16 -csv trace.csv
//
// With -batch B, B matrices of the same type and size are solved as ONE
// shared task DAG (the batched small-solve engine) and the combined graph is
// traced: the gantt shows leaves and merges of different matrices
// interleaving across workers, and the task-time report totals the whole
// batch.
//
//	dctrace -type 4 -n 200 -batch 16 -p 8
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"tridiag/internal/core"
	"tridiag/internal/quark"
	"tridiag/internal/sched"
	"tridiag/internal/testmat"
	"tridiag/internal/trace"
)

// taskTimeReport formats the measured per-task-kind wall-time totals of the
// capture run (secular-vs-GEMM balance), sorted by descending share. The
// returned csvLine is a single `#`-comment line for the CSV output.
func taskTimeReport(times map[string]time.Duration) (report, csvLine string) {
	if len(times) == 0 {
		return "", ""
	}
	classes := make([]string, 0, len(times))
	var total time.Duration
	for c, t := range times {
		classes = append(classes, c)
		total += t
	}
	sort.Slice(classes, func(i, j int) bool { return times[classes[i]] > times[classes[j]] })
	var b, csv strings.Builder
	b.WriteString("measured kernel time per task kind:\n")
	csv.WriteString("# task_times_us:")
	for _, c := range classes {
		t := times[c]
		fmt.Fprintf(&b, "  %-18s %10s  %5.1f%%\n", c, t.Round(time.Microsecond), 100*float64(t)/float64(total))
		fmt.Fprintf(&csv, " %s=%d", c, t.Microseconds())
	}
	csv.WriteString("\n")
	return b.String(), csv.String()
}

// abftReport formats the solve's silent-corruption defense ledger: the
// check/detection totals and a per-merge table of the trace-preservation
// defect each Dlamrg join measured (DESIGN.md §18). A clean run shows
// defects around the rounding floor; a corrupted-and-healed run shows
// nonzero detection counters with the defects still at the floor.
func abftReport(st *core.Stats) string {
	ab := st.ABFT()
	var b strings.Builder
	fmt.Fprintf(&b, "ABFT: checksums=%d invariants=%d detected=%d healed-by-retry=%d\n",
		ab.Checksums, ab.Invariants, ab.ChecksumFailures+ab.InvariantFailures, ab.Retries)
	if len(st.Merges) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-6s %6s %6s %6s %13s\n", "level", "n", "k", "nb", "trace-defect")
	for _, m := range st.Merges {
		fmt.Fprintf(&b, "%-6d %6d %6d %6d %13.3e\n", m.Level, m.N, m.K, m.NB, m.TraceDefect)
	}
	return b.String()
}

func main() {
	typ := flag.Int("type", 4, "Table III matrix type")
	n := flag.Int("n", 1000, "matrix size")
	p := flag.Int("p", 16, "simulated workers")
	model := flag.String("model", "taskflow", "execution model: taskflow | levelsync | forkjoin | mergepar")
	bw := flag.Float64("bw", 4, "memory streams per socket (0: bandwidth model off)")
	width := flag.Int("width", 120, "gantt width in characters")
	csv := flag.String("csv", "", "write the timeline as CSV to this file")
	seed := flag.Int64("seed", 1, "random seed")
	real := flag.Bool("real", false, "show the real measured trace of a concurrent run instead of a simulation")
	batch := flag.Int("batch", 1, "solve this many matrices as one shared DAG and trace the combined graph")
	valuesOnly := flag.Bool("values-only", false, "trace the eigenvalue-only lane (no eigenvector task classes, no n×n block)")
	flag.Parse()

	m, err := testmat.Type(*typ, *n, rand.New(rand.NewSource(*seed)))
	fail(err)

	mode := core.ModeTaskFlow
	if *model == "levelsync" {
		mode = core.ModeLevelSync
	}
	if *valuesOnly && *model == "levelsync" {
		fail(fmt.Errorf("the values-only lane runs as a task flow; the levelsync model does not apply"))
	}

	workers := 1
	if *real {
		workers = *p
	}
	var g *quark.Graph
	var taskTimes map[string]time.Duration
	var statsLines string
	if *batch > 1 {
		if *model == "levelsync" {
			fail(fmt.Errorf("-batch runs as one task flow; the levelsync model does not apply"))
		}
		probs := make([]core.BatchProblem, *batch)
		for i := range probs {
			mi, err := testmat.Type(*typ, *n, rand.New(rand.NewSource(*seed+int64(i))))
			fail(err)
			probs[i] = core.BatchProblem{
				N: *n,
				D: append([]float64(nil), mi.D...),
				E: append([]float64(nil), mi.E...),
			}
			if !*valuesOnly {
				probs[i].Q = make([]float64, *n**n)
				probs[i].LDQ = *n
			}
		}
		br, err := core.SolveDCBatch(probs, &core.Options{
			Workers: workers, CaptureGraph: true, ValuesOnly: *valuesOnly,
			PanelSize: max(16, *n/16), MinPartition: max(32, *n/16),
		})
		fail(err)
		for i := range br.Items {
			if br.Items[i].Err != nil {
				fail(fmt.Errorf("batch matrix %d: %w", i, br.Items[i].Err))
			}
		}
		g = br.Graph
		taskTimes = br.Stats.TaskTimes()
		var total time.Duration
		for _, t := range taskTimes {
			total += t
		}
		statsLines = fmt.Sprintf("matrix %s n=%d × batch %d, one shared DAG\n", m.Name, *n, *batch) +
			fmt.Sprintf("per-batch task time total: %s\n", total.Round(time.Microsecond)) +
			fmt.Sprintf("workspace leaked to GC: %d bytes\n", br.Stats.LeakedBytes()) +
			abftReport(br.Stats)
	} else {
		d := append([]float64(nil), m.D...)
		e := append([]float64(nil), m.E...)
		var q []float64
		ldq := 0
		if !*valuesOnly {
			q = make([]float64, *n**n)
			ldq = *n
		}
		res, err := core.SolveDC(*n, d, e, q, ldq, &core.Options{
			Workers: workers, CaptureGraph: true, Mode: mode, ValuesOnly: *valuesOnly,
			PanelSize: max(16, *n/16), MinPartition: max(32, *n/16),
		})
		fail(err)
		g = res.Graph
		taskTimes = res.Stats.TaskTimes()
		statsLines = fmt.Sprintf("matrix %s n=%d, deflation %.1f%%\n", m.Name, *n, 100*res.Stats.DeflationRatio())
		if *valuesOnly {
			statsLines += "values-only lane: no eigenvector tasks, no n×n block\n"
		} else {
			hits, misses, bytes, rate := res.Stats.PackReuse()
			statsLines += fmt.Sprintf("UpdateVect pack: hits=%d misses=%d packed_bytes=%d reuse_rate=%.3f\n", hits, misses, bytes, rate)
		}
		statsLines += fmt.Sprintf("workspace leaked to GC: %d bytes\n", res.Stats.LeakedBytes())
		statsLines += abftReport(res.Stats)
	}

	var tl *trace.Timeline
	if *real {
		tl = trace.FromGraph(g)
		fmt.Printf("real concurrent run, %d workers\n", workers)
	} else {
		switch *model {
		case "forkjoin":
			g = sched.ForkJoinGraph(g, sched.ParallelBLASClasses)
		case "mergepar":
			g = sched.ForkJoinGraph(g, sched.ParallelMergeClasses)
		case "taskflow", "levelsync":
		default:
			fail(fmt.Errorf("unknown model %q", *model))
		}
		r, err := sched.Simulate(g, sched.Config{Workers: *p, StreamsPerSocket: *bw, WorkersPerSocket: 8})
		fail(err)
		tl = trace.FromSimulation(g, r, *p)
		fmt.Printf("model %s, P=%d simulated (bandwidth cap %.0f)\n", *model, *p, *bw)
	}
	fmt.Print(statsLines)
	fmt.Println()
	fmt.Print(tl.Gantt(*width))
	fmt.Println()
	fmt.Print(tl.BreakdownReport())
	timeReport, timeCSV := taskTimeReport(taskTimes)
	fmt.Print(timeReport)

	if *csv != "" {
		var header strings.Builder
		for _, line := range strings.Split(strings.TrimRight(statsLines, "\n"), "\n") {
			header.WriteString("# " + line + "\n")
		}
		header.WriteString(timeCSV)
		fail(os.WriteFile(*csv, []byte(header.String()+tl.CSV()), 0o644))
		fmt.Printf("wrote %s\n", *csv)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dctrace:", err)
		os.Exit(1)
	}
}
