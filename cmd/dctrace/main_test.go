package main

import (
	"math/rand"
	"strings"
	"testing"

	"tridiag/internal/core"
	"tridiag/internal/sched"
	"tridiag/internal/trace"
)

// vectorClasses are the task classes that must never appear in a values-only
// DAG: they exist only to move or accumulate eigenvector columns.
var vectorClasses = []string{
	"LASET", "SortEigenvectors", "PermuteV", "CopyBackDeflated",
	"ComputeVect", "PackV", "UpdateVect",
}

func randomTridiag(n int, seed int64) (d, e []float64) {
	rng := rand.New(rand.NewSource(seed))
	d = make([]float64, n)
	e = make([]float64, n-1)
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	for i := range e {
		e[i] = rng.NormFloat64()
	}
	return d, e
}

// TestValuesOnlyTrace is the dctrace regression for the eigenvalue-only
// lane: the captured graph must contain no eigenvector task classes, must
// still carry the eigenvalue pipeline (leaves, deflation, secular solves,
// the carrier UpdateZ and final SortEigenvalues stages), and must replay
// through the schedule simulator and timeline renderer exactly like a full
// graph does.
func TestValuesOnlyTrace(t *testing.T) {
	n := 600
	d, e := randomTridiag(n, 7)
	res, err := core.SolveDC(n, d, e, nil, 0, &core.Options{
		Workers: 1, CaptureGraph: true, ValuesOnly: true,
		PanelSize: max(16, n/16), MinPartition: max(32, n/16),
	})
	if err != nil {
		t.Fatalf("values-only capture solve: %v", err)
	}
	if res.Graph == nil {
		t.Fatal("CaptureGraph produced no graph")
	}

	counts := res.Graph.ClassCounts()
	for _, c := range vectorClasses {
		if counts[c] > 0 {
			t.Errorf("values-only graph contains %d %s tasks; want none", counts[c], c)
		}
	}
	for _, c := range []string{"STEDC", "ComputeDeflation", "LAED4", "UpdateZ", "SortEigenvalues"} {
		if counts[c] == 0 {
			t.Errorf("values-only graph missing task class %s", c)
		}
	}

	// The replay pipeline dctrace runs: simulate on P virtual workers, then
	// render the gantt and breakdown. A graph the simulator rejects or the
	// renderer draws empty would make the tool useless on VO traces.
	r, err := sched.Simulate(res.Graph, sched.Config{Workers: 8, StreamsPerSocket: 4, WorkersPerSocket: 8})
	if err != nil {
		t.Fatalf("simulating values-only graph: %v", err)
	}
	tl := trace.FromSimulation(res.Graph, r, 8)
	gantt := tl.Gantt(100)
	if strings.TrimSpace(gantt) == "" {
		t.Error("empty gantt for values-only graph")
	}
	if rep := tl.BreakdownReport(); strings.TrimSpace(rep) == "" {
		t.Error("empty breakdown report for values-only graph")
	}

	// The per-class wall-time report must total only eigenvalue-side kernels.
	report, csvLine := taskTimeReport(res.Stats.TaskTimes())
	if report == "" || csvLine == "" {
		t.Fatal("empty task-time report for values-only run")
	}
	for _, c := range vectorClasses {
		if strings.Contains(report, c) || strings.Contains(csvLine, c) {
			t.Errorf("task-time report mentions eigenvector class %s:\n%s", c, report)
		}
	}
}

// TestValuesOnlyBatchTrace covers the -batch path of dctrace under
// -values-only: several matrices solved as one shared DAG with no Q blocks
// at all, and the combined graph still free of eigenvector classes.
func TestValuesOnlyBatchTrace(t *testing.T) {
	const n, batch = 150, 4
	probs := make([]core.BatchProblem, batch)
	for i := range probs {
		d, e := randomTridiag(n, int64(10+i))
		probs[i] = core.BatchProblem{N: n, D: d, E: e}
	}
	br, err := core.SolveDCBatch(probs, &core.Options{
		Workers: 1, CaptureGraph: true, ValuesOnly: true,
		PanelSize: max(16, n/16), MinPartition: max(32, n/16),
	})
	if err != nil {
		t.Fatalf("values-only batch capture: %v", err)
	}
	for i := range br.Items {
		if br.Items[i].Err != nil {
			t.Fatalf("batch matrix %d: %v", i, br.Items[i].Err)
		}
	}
	if br.Graph == nil {
		t.Fatal("CaptureGraph produced no batch graph")
	}
	counts := br.Graph.ClassCounts()
	for _, c := range vectorClasses {
		if counts[c] > 0 {
			t.Errorf("values-only batch graph contains %d %s tasks; want none", counts[c], c)
		}
	}
	if counts["STEDC"] == 0 {
		t.Error("values-only batch graph has no leaf STEDC tasks")
	}
	if _, err := sched.Simulate(br.Graph, sched.Config{Workers: 4, StreamsPerSocket: 4, WorkersPerSocket: 8}); err != nil {
		t.Fatalf("simulating values-only batch graph: %v", err)
	}
}
