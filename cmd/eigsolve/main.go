// eigsolve is a command-line symmetric tridiagonal eigensolver.
//
// Input is either a file (-i) with the matrix order n on the first line,
// then n diagonal values, then n-1 off-diagonal values (whitespace
// separated), or a generated Table III test matrix (-type/-n).
//
//	eigsolve -i matrix.txt -method dc -vectors
//	eigsolve -type 11 -n 500 -method mrrr
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"tridiag/eigen"
	"tridiag/internal/lapack"
	"tridiag/internal/svd"
	"tridiag/internal/testmat"
)

func readMatrix(path string) (eigen.Tridiagonal, error) {
	f, err := os.Open(path)
	if err != nil {
		return eigen.Tridiagonal{}, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	sc.Split(bufio.ScanWords)
	var n int
	if !sc.Scan() {
		return eigen.Tridiagonal{}, fmt.Errorf("empty input")
	}
	if _, err := fmt.Sscan(sc.Text(), &n); err != nil {
		return eigen.Tridiagonal{}, fmt.Errorf("bad order: %w", err)
	}
	read := func(k int) ([]float64, error) {
		out := make([]float64, k)
		for i := 0; i < k; i++ {
			if !sc.Scan() {
				return nil, fmt.Errorf("unexpected end of input at value %d", i)
			}
			if _, err := fmt.Sscan(sc.Text(), &out[i]); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	d, err := read(n)
	if err != nil {
		return eigen.Tridiagonal{}, err
	}
	e, err := read(n - 1)
	if err != nil {
		return eigen.Tridiagonal{}, err
	}
	return eigen.Tridiagonal{D: d, E: e}, nil
}

func main() {
	input := flag.String("i", "", "input tridiagonal file (n, then d, then e)")
	dense := flag.String("dense", "", "input dense symmetric file (n, then n² column-major values)")
	svdIn := flag.String("svd", "", "input dense file for SVD (m n, then m·n column-major values)")
	typ := flag.Int("type", 0, "generate a Table III matrix of this type instead")
	n := flag.Int("n", 500, "generated matrix size")
	method := flag.String("method", "dc", "solver: dc | dc-seq | mrrr | qr (tridiagonal); pipeline | 2stage | jacobi (dense)")
	workers := flag.Int("workers", 0, "worker goroutines (0: all cores)")
	vectors := flag.Bool("vectors", false, "print eigenvectors too")
	valuesOnly := flag.Bool("values-only", false, "compute eigenvalues only (root-free QR / dqds)")
	seed := flag.Int64("seed", 1, "random seed for generated matrices")
	flag.Parse()

	if *svdIn != "" {
		runSVD(*svdIn, *valuesOnly)
		return
	}
	if *dense != "" {
		runDense(*dense, *method, *workers, *vectors)
		return
	}

	var t eigen.Tridiagonal
	switch {
	case *input != "":
		var err error
		t, err = readMatrix(*input)
		fail(err)
	case *typ > 0:
		m, err := testmat.Type(*typ, *n, rand.New(rand.NewSource(*seed)))
		fail(err)
		t = eigen.Tridiagonal{D: m.D, E: m.E}
		fmt.Fprintf(os.Stderr, "generated %s, n=%d\n", m.Name, m.N())
	default:
		fmt.Fprintln(os.Stderr, "eigsolve: need -i FILE or -type N (see -h)")
		os.Exit(2)
	}

	if *valuesOnly {
		t0 := time.Now()
		w, err := eigen.Values(t)
		fail(err)
		fmt.Fprintf(os.Stderr, "eigenvalues in %v\n", time.Since(t0))
		for _, v := range w {
			fmt.Printf("%.17g\n", v)
		}
		return
	}

	var m eigen.Method
	switch *method {
	case "dc":
		m = eigen.MethodDC
	case "dc-seq":
		m = eigen.MethodDCSequential
	case "mrrr":
		m = eigen.MethodMRRR
	case "qr":
		m = eigen.MethodQR
	default:
		fail(fmt.Errorf("unknown method %q", *method))
	}

	t0 := time.Now()
	res, err := eigen.Solve(t, &eigen.Options{Method: m, Workers: *workers})
	fail(err)
	el := time.Since(t0)
	fmt.Fprintf(os.Stderr, "solved n=%d with %s in %v\n", t.N(), m, el)
	fmt.Fprintf(os.Stderr, "orthogonality %.2e, residual %.2e\n",
		eigen.Orthogonality(res), eigen.Residual(t, res))

	for j, v := range res.Values {
		fmt.Printf("%.17g", v)
		if *vectors {
			for _, x := range res.Vector(j) {
				fmt.Printf(" %.17g", x)
			}
		}
		fmt.Println()
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "eigsolve:", err)
		os.Exit(1)
	}
}

// readFloats reads the given count of whitespace-separated numbers after an
// integer header of headN values.
func readDense(path string, headN int) ([]int, []float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	sc.Split(bufio.ScanWords)
	head := make([]int, headN)
	for i := range head {
		if !sc.Scan() {
			return nil, nil, fmt.Errorf("missing header value %d", i)
		}
		if _, err := fmt.Sscan(sc.Text(), &head[i]); err != nil {
			return nil, nil, err
		}
	}
	var vals []float64
	for sc.Scan() {
		var v float64
		if _, err := fmt.Sscan(sc.Text(), &v); err != nil {
			return nil, nil, err
		}
		vals = append(vals, v)
	}
	return head, vals, nil
}

func runDense(path, method string, workers int, vectors bool) {
	head, vals, err := readDense(path, 1)
	fail(err)
	n := head[0]
	if len(vals) != n*n {
		fail(fmt.Errorf("dense input: got %d values, want %d", len(vals), n*n))
	}
	t0 := time.Now()
	var res *eigen.Result
	switch method {
	case "pipeline", "dc", "":
		res, err = eigen.SymEigen(n, vals, n, &eigen.Options{Workers: workers})
	case "2stage":
		res, err = eigen.SymEigen2Stage(n, vals, n, 0, &eigen.Options{Workers: workers})
	case "jacobi":
		w := make([]float64, n)
		v := make([]float64, n*n)
		err = lapack.JacobiEigen(n, vals, n, w, v, n)
		if err == nil {
			res = &eigen.Result{N: n, Values: w, Vectors: v}
		}
	default:
		fail(fmt.Errorf("unknown dense method %q", method))
	}
	fail(err)
	fmt.Fprintf(os.Stderr, "dense n=%d solved with %s in %v (orthogonality %.2e)\n",
		n, method, time.Since(t0), eigen.Orthogonality(res))
	for j, v := range res.Values {
		fmt.Printf("%.17g", v)
		if vectors {
			for _, x := range res.Vector(j) {
				fmt.Printf(" %.17g", x)
			}
		}
		fmt.Println()
	}
}

func runSVD(path string, valuesOnly bool) {
	head, vals, err := readDense(path, 2)
	fail(err)
	m, n := head[0], head[1]
	if len(vals) != m*n {
		fail(fmt.Errorf("svd input: got %d values, want %d", len(vals), m*n))
	}
	t0 := time.Now()
	if valuesOnly {
		s, err := svd.Values(m, n, vals, m)
		fail(err)
		fmt.Fprintf(os.Stderr, "singular values (%dx%d) in %v\n", m, n, time.Since(t0))
		for _, v := range s {
			fmt.Printf("%.17g\n", v)
		}
		return
	}
	r, err := svd.Decompose(m, n, vals, m, nil)
	fail(err)
	fmt.Fprintf(os.Stderr, "SVD (%dx%d) in %v\n", m, n, time.Since(t0))
	for _, v := range r.S {
		fmt.Printf("%.17g\n", v)
	}
}
