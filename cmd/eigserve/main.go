// eigserve runs the tridiag solve service behind an HTTP JSON API, in one of
// two roles.
//
// Worker (the default): a long-lived multi-tenant eigensolver with admission
// control, watchdog retries, circuit breakers and graceful drain:
//
//	eigserve -addr :8081 -budget 256 -stall 10s
//
// Coordinator: routes solves across a set of workers with per-worker health
// probes and circuit breakers, failover on timeout/connection-reset/5xx, and
// a degraded-local tier that keeps answering when every worker is down:
//
//	eigserve -role coordinator -addr :8080 \
//	    -worker http://host1:8081 -worker http://host2:8081
//
// Both roles serve the same API:
//
//	POST /solve    {"d": [...], "e": [...], "method": "dc", "vectors": false}
//	            →  {"values": [...], "disposition": "completed", ...}
//	POST /solve/batch  {"jobs": [{"d": [...], "e": [...]}, ...]}
//	            →  {"results": [{...}, ...]} — one result per job, in order;
//	               routed/served as one unit so small solves share a runtime
//	GET  /stats    service counters (per-worker breaker state on coordinators)
//	GET  /healthz  liveness
//	GET  /readyz   readiness (503 while draining or backed up)
//
// SIGINT/SIGTERM starts a graceful drain: admission stops, in-flight jobs
// finish (up to -drain), and the per-job dispositions are logged — grouped
// per worker on coordinators.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tridiag/eigen"
	"tridiag/eigen/cluster"
)

// urlList collects repeatable -worker flags.
type urlList []string

func (u *urlList) String() string     { return strings.Join(*u, ",") }
func (u *urlList) Set(v string) error { *u = append(*u, v); return nil }

func main() {
	role := flag.String("role", "worker", `"worker" serves solves; "coordinator" routes them to -worker instances`)
	var workers urlList
	flag.Var(&workers, "worker", "worker base URL (coordinator role; repeat per worker)")
	addr := flag.String("addr", ":8080", "listen address")
	concurrent := flag.Int("concurrent", 0, "max concurrent solves (0: all cores)")
	queue := flag.Int("queue", 0, "max queued jobs (0: 4x concurrent)")
	budget := flag.Int64("budget", 0, "workspace budget in MiB (0: unlimited)")
	stall := flag.Duration("stall", 10*time.Second, "watchdog no-progress abort window")
	retries := flag.Int("retries", 2, "same-tier retries for transient failures")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond,
		"coalescing window for small /solve jobs (0 disables batching)")
	batchMax := flag.Int("batch-max", 64, "max jobs per coalesced batch")
	batchMaxN := flag.Int("batch-maxn", 256, "max matrix order admitted into a coalesced batch")
	drain := flag.Duration("drain", 30*time.Second, "graceful-drain deadline on SIGINT/SIGTERM")
	maxBody := flag.Int64("max-body", 64, "max /solve request body in MiB (413 beyond)")
	readTimeout := flag.Duration("read-timeout", 2*time.Minute, "HTTP read deadline (headers+body)")
	writeTimeout := flag.Duration("write-timeout", 10*time.Minute,
		"HTTP write deadline; must cover the longest solve plus its response")
	probe := flag.Duration("probe", 250*time.Millisecond, "coordinator health-probe interval")
	attemptTimeout := flag.Duration("attempt-timeout", 60*time.Second,
		"coordinator per-attempt cap before failing a job over to another worker")
	breakerThreshold := flag.Int("breaker-threshold", 3, "consecutive failures that open a worker's circuit")
	breakerCooldown := flag.Duration("breaker-cooldown", 2*time.Second, "open-circuit rest before the half-open probe")
	flag.Parse()

	httpCfg := cluster.HTTPConfig{MaxBodyBytes: *maxBody << 20}
	// Both roles run an eigen.Server: it is the whole service on a worker and
	// the degraded-local tier on a coordinator.
	s := eigen.NewServer(eigen.ServerConfig{
		MaxConcurrent: *concurrent,
		MaxQueue:      *queue,
		MemoryBudget:  *budget << 20,
		StallWindow:   *stall,
		MaxRetries:    *retries,
		BatchWindow:   *batchWindow,
		BatchMaxSize:  *batchMax,
		BatchMaxN:     *batchMaxN,
	})

	var handler http.Handler
	var drainFn func(ctx context.Context)
	var statsFn func()
	switch *role {
	case "worker":
		handler = cluster.NewWorkerHandler(s, httpCfg)
		drainFn = func(ctx context.Context) {
			rep, err := s.Shutdown(ctx)
			for _, j := range rep.Jobs {
				log.Printf("  job %d (n=%d): %s", j.ID, j.N, j.Disposition)
			}
			if err != nil {
				log.Printf("drain deadline hit, remaining jobs cancelled: %v", err)
			}
		}
		statsFn = func() {
			st := s.Stats()
			log.Printf("served: completed=%d retried=%d degraded=%d rejected=%d cancelled=%d failed=%d",
				st.Completed, st.Retried, st.Degraded, st.Rejected, st.Cancelled, st.Failed)
			if st.ValuesOnlyAdmitted > 0 {
				log.Printf("values-only class: admitted=%d completed=%d avg-service=%v (full-solve avg=%v)",
					st.ValuesOnlyAdmitted, st.ValuesOnlyCompleted,
					time.Duration(st.ValuesOnlyAvgServiceNanos).Round(time.Microsecond),
					time.Duration(st.AvgServiceNanos).Round(time.Microsecond))
			}
			if st.BatchesFlushed > 0 {
				log.Printf("batched: flushes=%d (timer=%d size=%d bytes=%d) coalesced=%d batch-served=%d direct=%d",
					st.BatchesFlushed, st.FlushByTimer, st.FlushBySize, st.FlushByBytes,
					st.CoalescedJobs, st.BatchServedJobs, st.DirectJobs)
			}
			if st.CorruptionsDetected > 0 || st.LeakedBytes > 0 {
				log.Printf("silent-error defense: corruptions detected=%d healed=%d workspace-leaked=%d bytes",
					st.CorruptionsDetected, st.CorruptionsHealed, st.LeakedBytes)
			}
		}
	case "coordinator":
		c, err := cluster.NewCoordinator(cluster.Config{
			Workers:          workers,
			Local:            s,
			ProbeInterval:    *probe,
			AttemptTimeout:   *attemptTimeout,
			BreakerThreshold: *breakerThreshold,
			BreakerCooldown:  *breakerCooldown,
		})
		if err != nil {
			log.Fatal(err)
		}
		handler = cluster.NewCoordinatorHandler(c, httpCfg)
		drainFn = func(ctx context.Context) {
			rep, err := c.Shutdown(ctx)
			for _, wd := range rep.Workers {
				log.Printf("  worker %s:", wd.Worker)
				for _, j := range wd.Jobs {
					log.Printf("    job %d (n=%d): %s", j.ID, j.N, j.Disposition)
				}
			}
			if rep.Local != nil {
				for _, j := range rep.Local.Jobs {
					log.Printf("  local job %d (n=%d): %s", j.ID, j.N, j.Disposition)
				}
			}
			if err != nil {
				log.Printf("drain deadline hit, remaining jobs cancelled: %v", err)
			}
		}
		statsFn = func() {
			st := c.Stats()
			log.Printf("routed: completed=%d retried=%d failed-over=%d degraded-local=%d rejected=%d cancelled=%d failed=%d",
				st.Completed, st.Retried, st.FailedOver, st.DegradedLocal, st.Rejected, st.Cancelled, st.Failed)
			if st.ChecksumMismatches > 0 || st.Local.CorruptionsDetected > 0 {
				log.Printf("silent-error defense: wire checksum mismatches=%d local detected=%d healed=%d",
					st.ChecksumMismatches, st.Local.CorruptionsDetected, st.Local.CorruptionsHealed)
			}
		}
	default:
		log.Fatalf("unknown -role %q (want worker or coordinator)", *role)
	}

	hs := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Slowloris protection and bounded request/response lifetimes; the
		// write deadline must cover the longest solve the deployment serves.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
	}

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("draining (deadline %v)...", *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		drainFn(ctx)
		// The HTTP shutdown shares the drain deadline: a client that never
		// reads its response must not hold the process open forever.
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("http shutdown: %v; closing remaining connections", err)
			hs.Close()
		}
	}()

	log.Printf("eigserve %s listening on %s", *role, *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	statsFn()
}
