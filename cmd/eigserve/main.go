// eigserve runs the eigen.Server solve service behind an HTTP JSON API:
// a long-lived multi-tenant eigensolver with admission control, watchdog
// retries, circuit breakers and graceful drain.
//
//	eigserve -addr :8080 -budget 256 -stall 10s
//
//	POST /solve   {"d": [...], "e": [...], "method": "dc", "vectors": false}
//	           →  {"values": [...], "disposition": "completed", ...}
//	GET  /stats   → the server's ServerStats counters
//
// SIGINT/SIGTERM starts a graceful drain: admission stops, in-flight jobs
// finish (up to -drain), and the per-job dispositions are logged.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tridiag/eigen"
)

type solveRequest struct {
	D       []float64 `json:"d"`
	E       []float64 `json:"e"`
	Method  string    `json:"method,omitempty"`  // dc | dc-seq | mrrr | qr
	Workers int       `json:"workers,omitempty"` // per-solve worker cap
	// TimeoutMS is the job's deadline; admission rejects jobs whose
	// deadline cannot be met given the current load.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Vectors includes the n×n eigenvector matrix in the response
	// (column-major, column j = eigenvector j). Off by default: for large n
	// the payload dwarfs the eigenvalues.
	Vectors bool `json:"vectors,omitempty"`
}

type solveResponse struct {
	N           int       `json:"n"`
	Values      []float64 `json:"values,omitempty"`
	Vectors     []float64 `json:"vectors,omitempty"`
	Disposition string    `json:"disposition"`
	Attempts    int       `json:"attempts"`
	Stalls      int       `json:"stalls"`
	Tier        string    `json:"tier,omitempty"`
	Error       string    `json:"error,omitempty"`
}

func parseMethod(s string) (eigen.Method, error) {
	switch s {
	case "", "dc":
		return eigen.MethodDC, nil
	case "dc-seq":
		return eigen.MethodDCSequential, nil
	case "mrrr":
		return eigen.MethodMRRR, nil
	case "qr":
		return eigen.MethodQR, nil
	}
	return 0, fmt.Errorf("unknown method %q", s)
}

// status maps a server outcome to an HTTP status: overload backpressure is
// 503 (clients should back off and retry), cancellation 408, persistent
// failure 500, bad input 400.
func status(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, eigen.ErrOverloaded), errors.Is(err, eigen.ErrServerClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusRequestTimeout
	default:
		return http.StatusInternalServerError
	}
}

func solveHandler(s *eigen.Server) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req solveRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		method, err := parseMethod(req.Method)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		ctx := r.Context()
		if req.TimeoutMS > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
			defer cancel()
		}
		tri := eigen.Tridiagonal{D: req.D, E: req.E}
		sr, err := s.Solve(ctx, tri, &eigen.Options{Method: method, Workers: req.Workers})
		resp := solveResponse{
			N:           tri.N(),
			Disposition: sr.Disposition.String(),
			Attempts:    sr.Attempts,
			Stalls:      sr.Stalls,
		}
		if err != nil {
			resp.Error = err.Error()
		} else {
			resp.Values = sr.Result.Values
			if req.Vectors {
				resp.Vectors = sr.Result.Vectors
			}
			if sr.Result.Stats != nil {
				resp.Tier = sr.Result.Stats.Tier
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status(err))
		json.NewEncoder(w).Encode(&resp)
	}
}

func statsHandler(s *eigen.Server) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.Stats())
	}
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	concurrent := flag.Int("concurrent", 0, "max concurrent solves (0: all cores)")
	queue := flag.Int("queue", 0, "max queued jobs (0: 4x concurrent)")
	budget := flag.Int64("budget", 0, "workspace budget in MiB (0: unlimited)")
	stall := flag.Duration("stall", 10*time.Second, "watchdog no-progress abort window")
	retries := flag.Int("retries", 2, "same-tier retries for transient failures")
	drain := flag.Duration("drain", 30*time.Second, "graceful-drain deadline on SIGINT/SIGTERM")
	flag.Parse()

	s := eigen.NewServer(eigen.ServerConfig{
		MaxConcurrent: *concurrent,
		MaxQueue:      *queue,
		MemoryBudget:  *budget << 20,
		StallWindow:   *stall,
		MaxRetries:    *retries,
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", solveHandler(s))
	mux.HandleFunc("/stats", statsHandler(s))
	hs := &http.Server{Addr: *addr, Handler: mux}

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("draining (deadline %v)...", *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		rep, err := s.Shutdown(ctx)
		for _, j := range rep.Jobs {
			log.Printf("  job %d (n=%d): %s", j.ID, j.N, j.Disposition)
		}
		if err != nil {
			log.Printf("drain deadline hit, remaining jobs cancelled: %v", err)
		}
		hs.Shutdown(context.Background())
	}()

	log.Printf("eigserve listening on %s", *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	st := s.Stats()
	log.Printf("served: completed=%d retried=%d degraded=%d rejected=%d cancelled=%d failed=%d",
		st.Completed, st.Retried, st.Degraded, st.Rejected, st.Cancelled, st.Failed)
}
