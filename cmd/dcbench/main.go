// dcbench regenerates the paper's tables and figures (see DESIGN.md §4 for
// the experiment index). Each subcommand prints the rows/series of one
// table or figure:
//
//	dcbench table1            merge kernel cost scaling (Table I)
//	dcbench table3            the 15-type matrix suite (Table III)
//	dcbench fig3              optimization-level traces (Figure 3 a-c)
//	dcbench fig4              high-deflation trace (Figure 4)
//	dcbench fig5              scalability curves (Figure 5)
//	dcbench fig6              speedup vs fork/join LAPACK model (Figure 6)
//	dcbench fig7              speedup vs level-sync ScaLAPACK model (Figure 7)
//	dcbench fig8              MRRR vs D&C timing (Figure 8)
//	dcbench fig9              accuracy comparison (Figure 9 a+b)
//	dcbench fig10             application matrix set (Figure 10)
//	dcbench perf              performance snapshot (task-flow medians + GEMM)
//	dcbench perf -steady N    + N in-process solves per worker count
//	                            (steady-state medians and GC stats)
//	dcbench perf -values-only eigenvalue-only lane vs full solve: wall time
//	                            and peak pooled workspace per (n, workers)
//	dcbench secular           secular-phase kernels, scalar vs SIMD
//	dcbench batch             batched small-solve throughput: sequential
//	                            Solve loop vs SolveBatch vs coalescing server
//	                            (-values-only runs it through the fast lane)
//	dcbench audit             silent-error defense overhead: ABFT + result
//	                            audit on (the default) vs both layers off
//	dcbench all               everything above in sequence
//
// Flags: -sizes 500,1000 -types 2,3,4 -workers 1,2,4,8,16 -seed 7 -quick -bw 4
// With -json, the perf snapshot is additionally written to
// BENCH_taskflow.json in the working directory (dcbench secular -json merges
// its record into the same file under the "secular" key).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tridiag/internal/bench"
)

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	fs := flag.NewFlagSet("dcbench", flag.ExitOnError)
	sizes := fs.String("sizes", "", "comma-separated matrix sizes (default: per-experiment)")
	types := fs.String("types", "", "comma-separated Table III types (default: per-experiment)")
	workers := fs.String("workers", "", "comma-separated worker counts for simulation")
	seed := fs.Int64("seed", 0, "random seed (0: fixed default)")
	quick := fs.Bool("quick", false, "smaller sizes for a fast smoke run")
	valuesOnly := fs.Bool("values-only", false,
		"perf: compare the eigenvalue-only lane against the full solve; batch: run the batch suite through the values-only lane")
	steady := fs.Int("steady", 0, "perf: run N solves per worker count in one process and report steady-state medians + GC stats")
	bw := fs.Float64("bw", 0, "bandwidth cap in concurrent streams (0: default 4)")
	jsonOut := fs.Bool("json", false, "write the perf snapshot to BENCH_taskflow.json")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dcbench [flags] <table1|table3|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|perf|secular|batch|audit|ablate|theory|all>\n")
		fs.PrintDefaults()
	}
	if len(os.Args) < 2 {
		fs.Usage()
		os.Exit(2)
	}
	// Accept flags before or after the subcommand.
	args := os.Args[1:]
	var cmds []string
	var flagArgs []string
	for i := 0; i < len(args); i++ {
		if strings.HasPrefix(args[i], "-") {
			flagArgs = append(flagArgs, args[i])
			if !strings.Contains(args[i], "=") && i+1 < len(args) && !strings.HasPrefix(args[i+1], "-") &&
				args[i] != "-quick" && args[i] != "-json" && args[i] != "-values-only" {
				flagArgs = append(flagArgs, args[i+1])
				i++
			}
		} else {
			cmds = append(cmds, args[i])
		}
	}
	if err := fs.Parse(flagArgs); err != nil {
		os.Exit(2)
	}
	if len(cmds) == 0 {
		fs.Usage()
		os.Exit(2)
	}

	sz, err := parseInts(*sizes)
	fail(err)
	ty, err := parseInts(*types)
	fail(err)
	wk, err := parseInts(*workers)
	fail(err)
	cfg := &bench.Config{
		Sizes: sz, Types: ty, Workers: wk,
		Seed: *seed, Quick: *quick, ValuesOnly: *valuesOnly, Steady: *steady, BandwidthStreams: *bw,
		Out: os.Stdout,
	}

	run := func(name string) {
		fmt.Printf("\n================ %s ================\n", name)
		switch name {
		case "table1":
			_, _, err = bench.Table1(cfg)
		case "table3":
			_, err = bench.Table3(cfg)
		case "fig3":
			_, err = bench.Fig3(cfg)
		case "fig4":
			_, err = bench.Fig4(cfg)
		case "fig5":
			_, err = bench.Fig5(cfg)
		case "fig6":
			_, err = bench.Fig6(cfg)
		case "fig7":
			_, err = bench.Fig7(cfg)
		case "fig8":
			_, err = bench.Fig8(cfg)
		case "fig9":
			_, err = bench.Fig9(cfg)
		case "fig10":
			_, err = bench.Fig10(cfg)
		case "perf":
			if *valuesOnly {
				var rec *bench.ValuesOnlyRecord
				rec, err = bench.ValuesOnly(cfg)
				if err == nil && *jsonOut {
					err = rec.MergeJSON("BENCH_taskflow.json")
					if err == nil {
						fmt.Println("merged values-only record into BENCH_taskflow.json")
					}
				}
				break
			}
			var rec *bench.PerfRecord
			rec, err = bench.Perf(cfg)
			if err == nil && *jsonOut {
				err = rec.MergeJSON("BENCH_taskflow.json")
				if err == nil {
					fmt.Println("wrote BENCH_taskflow.json")
				}
			}
		case "secular":
			var rec *bench.SecularRecord
			rec, err = bench.Secular(cfg)
			if err == nil && *jsonOut {
				err = rec.MergeJSON("BENCH_taskflow.json")
				if err == nil {
					fmt.Println("merged secular record into BENCH_taskflow.json")
				}
			}
		case "batch":
			var rec *bench.BatchRecord
			rec, err = bench.Batch(cfg)
			if err == nil && *jsonOut {
				err = rec.MergeJSON("BENCH_taskflow.json")
				if err == nil {
					fmt.Println("merged batch record into BENCH_taskflow.json")
				}
			}
		case "audit":
			var rec *bench.AuditRecord
			rec, err = bench.Audit(cfg)
			if err == nil && *jsonOut {
				err = rec.MergeJSON("BENCH_taskflow.json")
				if err == nil {
					fmt.Println("merged audit record into BENCH_taskflow.json")
				}
			}
		case "ablate":
			err = bench.Ablate(cfg)
		case "theory":
			_, _, err = bench.Theory(cfg)
		default:
			fail(fmt.Errorf("unknown experiment %q", name))
		}
		fail(err)
	}

	for _, c := range cmds {
		if c == "all" {
			for _, name := range []string{"table1", "table3", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"} {
				run(name)
			}
			continue
		}
		run(c)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcbench:", err)
		os.Exit(1)
	}
}
