// dcdag dumps the task DAG of a divide & conquer solve in Graphviz dot
// format (the paper's Figure 2) along with a task census and critical-path
// report. With -tree it prints only the partition tree (Figure 1).
//
//	dcdag -n 1000 -minpart 300 -nb 500 -o dag.dot
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"tridiag/internal/core"
	"tridiag/internal/lapack"
	"tridiag/internal/testmat"
)

func main() {
	n := flag.Int("n", 1000, "matrix size")
	minpart := flag.Int("minpart", 300, "minimal partition size (leaf cutoff)")
	nb := flag.Int("nb", 500, "panel size")
	typ := flag.Int("type", 0, "Table III matrix type (0: random)")
	out := flag.String("o", "", "write dot to this file (default stdout)")
	tree := flag.Bool("tree", false, "print the partition tree only (Figure 1)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	if *tree {
		sizes := lapack.PartitionSizes(*n, *minpart)
		fmt.Printf("partition of n=%d with minimal size %d: %d leaves\n", *n, *minpart, len(sizes))
		level := sizes
		for len(level) >= 1 {
			fmt.Printf("  level: %v\n", level)
			if len(level) == 1 {
				break
			}
			var next []int
			for i := 0; i+1 < len(level); i += 2 {
				next = append(next, level[i]+level[i+1])
			}
			if len(level)%2 == 1 {
				next = append(next, level[len(level)-1])
			}
			level = next
		}
		return
	}

	d, e := buildMatrix(*typ, *n, *seed)
	q := make([]float64, *n**n)
	res, err := core.SolveDC(*n, d, e, q, *n, &core.Options{
		Workers: 1, MinPartition: *minpart, PanelSize: *nb, CaptureGraph: true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcdag:", err)
		os.Exit(1)
	}
	g := res.Graph
	dot := g.Dot()
	if *out != "" {
		if err := os.WriteFile(*out, []byte(dot), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dcdag:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d tasks, %d edges)\n", *out, len(g.Tasks), len(g.Edges))
	} else {
		fmt.Print(dot)
	}
	fmt.Fprintf(os.Stderr, "task census: %v\n", g.ClassCounts())
	cp, path := g.CriticalPath()
	fmt.Fprintf(os.Stderr, "total work %.4fs, critical path %.4fs over %d tasks (max speedup %.1fx)\n",
		g.TotalWork(), cp, len(path), g.TotalWork()/cp)
}

func buildMatrix(typ, n int, seed int64) (d, e []float64) {
	rng := rand.New(rand.NewSource(seed))
	if typ > 0 {
		m, err := testmat.Type(typ, n, rng)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcdag:", err)
			os.Exit(1)
		}
		return m.D, m.E
	}
	d = make([]float64, n)
	e = make([]float64, n-1)
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	for i := range e {
		e[i] = rng.NormFloat64()
	}
	return d, e
}
