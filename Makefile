GO ?= go

.PHONY: all build vet test test-pooldebug race bench-smoke bench-gemm bench-secular bench-steady bench-batch bench-values bench-audit chaos chaos-sdc stress stress-cluster ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The scratch pool's ownership-map build: foreign or double Put panics at
# the violation site instead of being clamp-and-counted.
test-pooldebug:
	$(GO) test -tags pooldebug ./internal/pool/

race:
	$(GO) test -race ./...

# A short benchmark pass that exercises the scheduler and the hot kernels
# without running the full experiment suite.
bench-smoke:
	$(GO) test -run '^$$' -bench 'SolveDCTaskFlow2000|SortEigen|Steqr400' -benchtime 1x .
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/quark/

# The GEMM kernel benchmarks: the square reference shape, the compressed
# UpdateVect shapes, and the per-merge packed-operand reuse pattern.
bench-gemm:
	$(GO) test -run '^$$' -bench 'Gemm' -benchtime 1x .

# The secular-phase kernel benchmarks: the SIMD dispatch micro-kernels plus
# the scalar-vs-SIMD Dlaed4/LocalW/ComputeVect comparison of dcbench secular.
bench-secular:
	$(GO) test -run '^$$' -bench 'SecularSums|ShiftedSumRatios|RatioSumSq' -benchtime 10x ./internal/simd/
	$(GO) run ./cmd/dcbench -quick secular

# Steady-state regression detector: N in-process solves per worker count
# with a reused workspace (the pattern that once degraded 2.5×), medians of
# the last half vs the first quarter plus GC stats, written to
# BENCH_taskflow.json.
bench-steady:
	$(GO) run ./cmd/dcbench perf -steady 12 -json

# Batched small-solve throughput: a sequential Solve loop vs one SolveBatch
# DAG vs a coalescing server flood over the same matrices, with every batch
# member validated against the residual/orthogonality bars. Merged into
# BENCH_taskflow.json under the "batch" key. The batch/server speedups scale
# with core count (a single-core CI box only shows the runtime-amortization
# fraction of the win).
bench-batch:
	$(GO) run ./cmd/dcbench batch -quick -json

# Eigenvalue-only fast lane vs the full task-flow solve: wall-time medians
# and peak pooled workspace per (n, workers), merged into BENCH_taskflow.json
# under "values_only"; the batch suite rerun through the lane lands under
# "batch_values_only". The workspace ratio is the headline — carrier rows
# replace the O(n²) eigenvector state.
bench-values:
	$(GO) run ./cmd/dcbench perf -values-only -quick -json
	$(GO) run ./cmd/dcbench batch -values-only -quick -json

# Silent-error defense overhead: the shipping default (ABFT + result audit)
# vs the audit-disabled and fully bare builds on the n=2000 task-flow point,
# medians of paired per-rep ratios, merged into BENCH_taskflow.json under
# "audit". The acceptance bar is audit overhead ≤ 5% at every worker count.
bench-audit:
	$(GO) run ./cmd/dcbench audit -json

# Fault-injection suite: panic/error/delay probes in every task class across
# randomized solves, repeated under the race detector; the tests themselves
# assert zero goroutine leaks and that every fault ends in a verified result
# (fallback on) or a clean root-cause error (fallback off).
chaos:
	$(GO) test -race -count=3 -run 'Chaos' ./eigen/
	$(GO) test -race -count=3 ./internal/faultinject/
	$(GO) test -race -count=3 -run 'Cancelled|Cancellation|Deadline|TaskFailure' ./internal/quark/

# Silent-data-corruption gate: randomized bit flips injected into packed GEMM
# operands, merge outputs, and served results across every lane (direct solve,
# values-only, batch, server) under the race detector. Asserts every injected
# corruption is either detected-and-healed or surfaces as a classified error —
# zero silent wrong-answer escapes — plus the ABFT checksum/invariant unit
# tests and the pathological no-false-positive audit suite.
chaos-sdc:
	$(GO) test -race -count=1 -timeout 10m -run 'TestChaosSDCGate|TestAuditPathologicalNoFalsePositives|TestAuditResultDetectsCorruption' ./eigen/
	$(GO) test -race -count=1 -run 'TestPackAChecked|TestVerifyCatches' ./internal/blas/
	$(GO) test -race -count=1 -run 'TestCheckInterlacing|TestCheckTrace|TestDlaed4Interlacing' ./internal/lapack/
	$(GO) test -race -count=1 -run 'TestTridiagResidual|TestDotPairAbs|TestSum' ./internal/simd/
	$(GO) test -race -count=1 -run 'TestSpectrumChecksum|TestCoordinatorChecksumMismatchFailsOver' ./eigen/cluster/

# Serving-layer acceptance gate: 64 concurrent mixed-size solves against a
# memory-budgeted eigen.Server under wildcard chaos probes and the race
# detector, plus the watchdog/cancellation goroutine-leak regression tests.
# Asserts every job ends in a classified disposition, reservations never
# exceed the budget, the pool accountant returns to baseline, and no
# goroutines leak.
stress:
	$(GO) test -race -count=1 -timeout 5m -run 'TestServerStress|LeaksNoGoroutines' ./eigen/

# Cluster-tier acceptance gate: the partition chaos suite under the race
# detector — 3 httptest workers behind a real coordinator serving 220 mixed
# jobs while one worker is partitioned away mid-load and revived, plus the
# all-workers-down degraded-local test. Asserts zero lost jobs, the full
# breaker open/half-open/close cycle, and no goroutine leaks.
stress-cluster:
	$(GO) test -race -count=1 -timeout 5m -run 'TestCluster' ./eigen/cluster/

ci: vet build test test-pooldebug race bench-smoke bench-steady bench-batch bench-values chaos chaos-sdc stress stress-cluster
