GO ?= go

.PHONY: all build vet test race bench-smoke ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# A short benchmark pass that exercises the scheduler and the hot kernels
# without running the full experiment suite.
bench-smoke:
	$(GO) test -run '^$$' -bench 'SolveDCTaskFlow2000|SortEigen|Steqr400' -benchtime 1x .
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/quark/

ci: vet build test race bench-smoke
