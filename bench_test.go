package tridiag

// One benchmark per table and figure of the paper's evaluation section (see
// DESIGN.md §4). Each drives the same harness as cmd/dcbench at reduced
// sizes so `go test -bench=.` regenerates every experiment's shape; run
// `go run ./cmd/dcbench all` for the full-size tables.
//
// Micro-benchmarks of the hot kernels follow at the bottom.

import (
	"io"
	"math"
	"math/rand"
	"testing"

	"tridiag/eigen"
	"tridiag/internal/bench"
	"tridiag/internal/blas"
	"tridiag/internal/core"
	"tridiag/internal/lapack"
	"tridiag/internal/mrrr"
	"tridiag/internal/testmat"
)

func quickCfg() *bench.Config {
	return &bench.Config{Quick: true, Out: io.Discard}
}

func BenchmarkTable1MergeCosts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := quickCfg()
		cfg.Sizes = []int{200, 400}
		if _, _, err := bench.Table1(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3MatrixSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := quickCfg()
		cfg.Sizes = []int{200}
		if _, err := bench.Table3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3OptimizationLevels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := quickCfg()
		cfg.Sizes = []int{400}
		if _, err := bench.Fig3(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4HighDeflationTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := quickCfg()
		cfg.Sizes = []int{400}
		if _, err := bench.Fig4(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := quickCfg()
		cfg.Sizes = []int{400}
		if _, err := bench.Fig5(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6VsLAPACKModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := quickCfg()
		cfg.Sizes = []int{400}
		cfg.Types = []int{3, 4}
		if _, err := bench.Fig6(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7VsScaLAPACKModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := quickCfg()
		cfg.Sizes = []int{400}
		cfg.Types = []int{3, 4}
		if _, err := bench.Fig7(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8VsMRRR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := quickCfg()
		cfg.Sizes = []int{250}
		cfg.Types = []int{2, 4, 10, 14}
		if _, err := bench.Fig8(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9Accuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := quickCfg()
		cfg.Sizes = []int{250}
		cfg.Types = []int{3, 10, 11}
		if _, err := bench.Fig9(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10ApplicationSet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := quickCfg()
		cfg.Sizes = []int{200}
		if _, err := bench.Fig10(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ----------------------------------------------------------- micro-benches

func benchTridiag(n int) (d, e []float64) {
	rng := rand.New(rand.NewSource(42))
	d = make([]float64, n)
	e = make([]float64, n-1)
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	for i := range e {
		e[i] = rng.NormFloat64()
	}
	return
}

func BenchmarkSolveDCTaskFlow1000(b *testing.B) {
	d0, e0 := benchTridiag(1000)
	q := make([]float64, 1000*1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := append([]float64(nil), d0...)
		e := append([]float64(nil), e0...)
		if _, err := core.SolveDC(1000, d, e, q, 1000, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveDCSequential1000(b *testing.B) {
	d0, e0 := benchTridiag(1000)
	q := make([]float64, 1000*1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := append([]float64(nil), d0...)
		e := append([]float64(nil), e0...)
		if _, err := core.SolveDC(1000, d, e, q, 1000, &core.Options{Mode: core.ModeSequential}); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSolveDCTaskFlow(b *testing.B, n, workers int) {
	d0, e0 := benchTridiag(n)
	q := make([]float64, n*n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := append([]float64(nil), d0...)
		e := append([]float64(nil), e0...)
		if _, err := core.SolveDC(n, d, e, q, n, &core.Options{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

// The scheduler acceptance benchmarks: the n>=2000 task-flow solve at one
// worker (pure overhead measurement) and at several workers (queue contention
// and wakeup policy measurement).
func BenchmarkSolveDCTaskFlow2000W1(b *testing.B) { benchSolveDCTaskFlow(b, 2000, 1) }
func BenchmarkSolveDCTaskFlow2000W4(b *testing.B) { benchSolveDCTaskFlow(b, 2000, 4) }
func BenchmarkSolveDCTaskFlow2000W8(b *testing.B) { benchSolveDCTaskFlow(b, 2000, 8) }

func BenchmarkMRRR1000(b *testing.B) {
	d0, e0 := benchTridiag(1000)
	w := make([]float64, 1000)
	z := make([]float64, 1000*1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mrrr.Solve(1000, d0, e0, w, z, 1000, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSteqr400(b *testing.B) {
	d0, e0 := benchTridiag(400)
	z := make([]float64, 400*400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := append([]float64(nil), d0...)
		e := append([]float64(nil), e0...)
		if err := lapack.Dsteqr(lapack.CompIdentity, 400, d, e, z, 400); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDgemm256(b *testing.B) {
	n := 256
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, n*n)
	bb := make([]float64, n*n)
	c := make([]float64, n*n)
	for i := range a {
		a[i] = rng.NormFloat64()
		bb[i] = rng.NormFloat64()
	}
	b.SetBytes(int64(8 * n * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blas.Dgemm(false, false, n, n, n, 1, a, n, bb, n, 0, c, n)
	}
	b.ReportMetric(2*float64(n)*float64(n)*float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

// benchGemmShape measures one C = A·B shape with the GFLOPS metric.
func benchGemmShape(b *testing.B, m, n, k int) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, m*k)
	bb := make([]float64, k*n)
	c := make([]float64, m*n)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range bb {
		bb[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blas.Dgemm(false, false, m, n, k, 1, a, m, bb, k, 0, c, m)
	}
	b.ReportMetric(2*float64(m)*float64(n)*float64(k)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

// The compressed UpdateVect GEMM shapes of a large merge: tall C (all n rows),
// panel-width columns, k contracted over the non-deflated columns.
func BenchmarkGemmUpdateVect1000x128x900(b *testing.B) { benchGemmShape(b, 1000, 128, 900) }
func BenchmarkGemmUpdateVect500x128x400(b *testing.B)  { benchGemmShape(b, 500, 128, 400) }
func BenchmarkGemmSkinny2000x32x256(b *testing.B)      { benchGemmShape(b, 2000, 32, 256) }

// BenchmarkGemmPanelsUnpacked vs BenchmarkGemmPanelsPacked: the per-merge
// reuse pattern — one m×k operand multiplied against 8 column panels — with
// the operand re-packed per call versus packed once and shared (PackV).
func benchGemmPanels(b *testing.B, packed bool) {
	m, k, n, nb := 1000, 900, 1024, 128
	rng := rand.New(rand.NewSource(2))
	a := make([]float64, m*k)
	bb := make([]float64, k*n)
	c := make([]float64, m*n)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range bb {
		bb[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if packed {
			pa := blas.PackA(false, m, k, a, m)
			for j0 := 0; j0 < n; j0 += nb {
				blas.PackedGemm(pa, min(nb, n-j0), 1, bb[j0*k:], k, 0, c[j0*m:], m)
			}
			pa.Release()
		} else {
			for j0 := 0; j0 < n; j0 += nb {
				blas.Dgemm(false, false, m, min(nb, n-j0), k, 1, a, m, bb[j0*k:], k, 0, c[j0*m:], m)
			}
		}
	}
	b.ReportMetric(2*float64(m)*float64(n)*float64(k)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

func BenchmarkGemmPanelsUnpacked(b *testing.B) { benchGemmPanels(b, false) }
func BenchmarkGemmPanelsPacked(b *testing.B)   { benchGemmPanels(b, true) }

func BenchmarkSecularSolve(b *testing.B) {
	k := 500
	rng := rand.New(rand.NewSource(2))
	d := make([]float64, k)
	z := make([]float64, k)
	cur := 0.0
	var nrm float64
	for i := 0; i < k; i++ {
		cur += 0.1 + rng.Float64()
		d[i] = cur
		z[i] = 0.1 + rng.Float64()
		nrm += z[i] * z[i]
	}
	nrm = 1 / math.Sqrt(nrm)
	for i := range z {
		z[i] *= nrm
	}
	delta := make([]float64, k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lapack.Dlaed4(k, i%k, d, z, delta, 1.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSytrd300(b *testing.B) {
	n := 300
	rng := rand.New(rand.NewSource(3))
	a0 := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			v := rng.NormFloat64()
			a0[i+j*n] = v
			a0[j+i*n] = v
		}
	}
	d := make([]float64, n)
	e := make([]float64, n-1)
	tau := make([]float64, n-1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := append([]float64(nil), a0...)
		if err := lapack.Dsytrd(n, a, n, d, e, tau, 32); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateType4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := testmat.Type(4, 300, rand.New(rand.NewSource(int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPublicSolve500(b *testing.B) {
	d, e := benchTridiag(500)
	t := eigen.Tridiagonal{D: d, E: e}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eigen.Solve(t, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTheoryErrorModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := quickCfg()
		cfg.Sizes = []int{100, 200}
		if _, _, err := bench.Theory(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReductionOneStage300(b *testing.B) {
	n := 300
	rng := rand.New(rand.NewSource(5))
	a0 := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			v := rng.NormFloat64()
			a0[i+j*n] = v
			a0[j+i*n] = v
		}
	}
	d := make([]float64, n)
	e := make([]float64, n-1)
	tau := make([]float64, n-1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := append([]float64(nil), a0...)
		if err := lapack.Dsytrd(n, a, n, d, e, tau, 32); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReductionTwoStage300(b *testing.B) {
	n := 300
	rng := rand.New(rand.NewSource(5))
	a0 := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			v := rng.NormFloat64()
			a0[i+j*n] = v
			a0[j+i*n] = v
		}
	}
	d := make([]float64, n)
	e := make([]float64, n-1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := append([]float64(nil), a0...)
		if err := lapack.Dsytrd2Stage(n, a, n, 32, d, e, nil, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSolveDCValuesOnly(b *testing.B, n, workers int) {
	d0, e0 := benchTridiag(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := append([]float64(nil), d0...)
		e := append([]float64(nil), e0...)
		if _, err := core.SolveDC(n, d, e, nil, 0, &core.Options{Workers: workers, ValuesOnly: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// The values-only acceptance benchmarks: the same shapes as the task-flow
// scheduler benchmarks with Options.ValuesOnly set (no eigenvector tasks, no
// n×n block anywhere).
func BenchmarkSolveDCValuesOnly2000W1(b *testing.B) { benchSolveDCValuesOnly(b, 2000, 1) }
func BenchmarkSolveDCValuesOnly2000W4(b *testing.B) { benchSolveDCValuesOnly(b, 2000, 4) }
func BenchmarkSolveDCValuesOnly2000W8(b *testing.B) { benchSolveDCValuesOnly(b, 2000, 8) }
