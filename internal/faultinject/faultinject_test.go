package faultinject

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestDisabledByDefault(t *testing.T) {
	Disable()
	if Active() {
		t.Fatal("Active() true with no plan armed")
	}
	if err := Fire("LAED4"); err != nil {
		t.Fatalf("Fire on disabled registry: %v", err)
	}
}

func TestErrorProbeFiresAtP1(t *testing.T) {
	Enable(1, Probe{Class: "LAED4", Kind: KindError, P: 1})
	defer Disable()
	if !Active() {
		t.Fatal("Active() false after Enable")
	}
	err := Fire("LAED4")
	var inj *ErrInjected
	if !errors.As(err, &inj) {
		t.Fatalf("Fire: %v, want *ErrInjected", err)
	}
	if inj.Class != "LAED4" || inj.Mode != KindError {
		t.Errorf("injected %+v", inj)
	}
	if err := Fire("STEDC"); err != nil {
		t.Errorf("probe fired for unmatched class: %v", err)
	}
	if got := Fired()["LAED4"]; got != 1 {
		t.Errorf("Fired[LAED4] = %d, want 1", got)
	}
}

func TestPanicProbe(t *testing.T) {
	Enable(2, Probe{Class: "*", Kind: KindPanic, P: 1})
	defer Disable()
	defer func() {
		r := recover()
		inj, ok := r.(*ErrInjected)
		if !ok {
			t.Fatalf("recovered %v, want *ErrInjected", r)
		}
		if inj.Mode != KindPanic || inj.Class != "STEDC" {
			t.Errorf("injected %+v", inj)
		}
	}()
	Fire("STEDC")
	t.Fatal("panic probe did not panic")
}

func TestDelayProbeStalls(t *testing.T) {
	Enable(3, Probe{Class: "ReduceW", Kind: KindDelay, P: 1, Delay: 30 * time.Millisecond})
	defer Disable()
	start := time.Now()
	if err := Fire("ReduceW"); err != nil {
		t.Fatalf("delay probe returned error: %v", err)
	}
	if el := time.Since(start); el < 25*time.Millisecond {
		t.Errorf("delay probe stalled only %v", el)
	}
}

func TestDelayProbeBoundedByContext(t *testing.T) {
	Enable(5, Probe{Class: "ReduceW", Kind: KindDelay, P: 1, Delay: 10 * time.Second})
	defer Disable()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if err := FireCtx(ctx, "ReduceW"); err != nil {
		t.Fatalf("delay probe returned error: %v", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Errorf("cancelled delay probe stalled %v; the injected delay outlived the solve", el)
	}
}

func TestTransientAndClassOf(t *testing.T) {
	inj := &ErrInjected{Class: "LAED4", Mode: KindError}
	wrapped := fmt.Errorf("solve: %w", fmt.Errorf("tier: %w", inj))
	if !Transient(wrapped) {
		t.Error("Transient lost the injected cause through wrapping")
	}
	if got := ClassOf(wrapped); got != "LAED4" {
		t.Errorf("ClassOf = %q, want LAED4", got)
	}
	plain := errors.New("dlaed4 did not converge")
	if Transient(plain) {
		t.Error("plain numerical error classified transient")
	}
	if got := ClassOf(plain); got != "" {
		t.Errorf("ClassOf(plain) = %q, want empty", got)
	}
}

func TestProbabilityIsApproximate(t *testing.T) {
	Enable(4, Probe{Class: "V", Kind: KindError, P: 0.1})
	defer Disable()
	hits := 0
	for i := 0; i < 2000; i++ {
		if Fire("V") != nil {
			hits++
		}
	}
	if hits < 120 || hits > 300 {
		t.Errorf("P=0.1 fired %d/2000 times", hits)
	}
	if got := Fired()["V"]; got != int64(hits) {
		t.Errorf("Fired[V] = %d, want %d", got, hits)
	}
}

func TestDeterministicSeed(t *testing.T) {
	run := func() []bool {
		Enable(99, Probe{Class: "*", Kind: KindError, P: 0.3})
		defer Disable()
		out := make([]bool, 50)
		for i := range out {
			out[i] = Fire("X") != nil
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}
