// Package faultinject provides per-task-kind fault probes for chaos testing
// the task-flow pipeline: a registered plan can make tasks of a given kernel
// class panic, fail with a forced error, or stall for a configured delay,
// each with an independent probability.
//
// The package is a registry, not a build flavour: probes are compiled into
// every binary but cost exactly one atomic load per task while disabled
// (the default), so the production hot path is untouched. Tests enable a
// plan with a deterministic seed, run the pipeline, and assert that the
// resilience machinery (task cancellation, numerical fallbacks, solver tier
// degradation) turns every injected fault into either a verified-correct
// result or a clean root-cause error.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is the failure mode a probe injects.
type Kind int

const (
	// KindPanic makes the task panic, as a latent kernel bug would.
	KindPanic Kind = iota
	// KindError makes the task fail with a forced error, as a numerical
	// breakdown (non-convergence, singular pivot) would.
	KindError
	// KindDelay stalls the task, as a descheduled or page-faulting worker
	// would; it exercises timeout/cancellation paths without failing.
	KindDelay
	// KindCorrupt silently flips a high exponent bit of one output element,
	// as a DRAM bit flip or a buggy SIMD lane would: the task *succeeds* and
	// hands plausible-looking wrong data downstream. Unlike the fail-stop
	// kinds, KindCorrupt probes are not consulted by Fire/FireCtx before the
	// kernel; kernels (or their submitting task bodies) call Corrupt on their
	// output buffer after computing it, so the flip lands where the ABFT
	// checksums and merge invariants must catch it.
	KindCorrupt
)

func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindError:
		return "error"
	case KindDelay:
		return "delay"
	case KindCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ErrInjected marks a forced task failure so tests can tell injected faults
// from genuine numerical errors.
type ErrInjected struct {
	Class string
	Mode  Kind
}

func (e *ErrInjected) Error() string {
	return fmt.Sprintf("faultinject: forced %v in task class %q", e.Mode, e.Class)
}

// TaskClass returns the kernel class the fault was injected into, so
// ClassOf can attribute a failure without importing the runtime package.
func (e *ErrInjected) TaskClass() string { return e.Class }

// Transient reports true: injected faults model environmental failures
// (descheduled worker, flipped bit, spurious kernel error) that a retry on
// the same tier is expected to clear.
func (e *ErrInjected) Transient() bool { return true }

// NetClassPrefix prefixes the probe classes of the cluster tier's network
// paths (see NetClass); arming them simulates partitions and slow links
// between a coordinator and its workers.
const NetClassPrefix = "net:"

// NetClass returns the probe class of the coordinator→worker network path
// for the given worker name. eigen/cluster consults it before every request
// it sends to that worker — solve forwards and health probes alike — so a
// KindError probe behaves like a network partition (the injected error
// surfaces as a transient transport failure, trips the worker's circuit
// breaker and triggers failover) and a KindDelay probe like a slow or lossy
// link. Task-kernel wildcard plans ("*") also match these classes, which
// extends whole-pipeline chaos runs across the cluster hop.
func NetClass(worker string) string { return NetClassPrefix + worker }

// Probe arms one task class with one failure mode.
type Probe struct {
	// Class is the task kernel class the probe fires on ("LAED4",
	// "STEDC", ...); "*" matches every class.
	Class string
	// Kind is the injected failure mode.
	Kind Kind
	// P is the per-task firing probability in [0, 1].
	P float64
	// Delay is the stall duration for KindDelay probes.
	Delay time.Duration
	// MaxFires, when positive, caps how many times this probe fires; after
	// the cap it is inert. A P=1/MaxFires=1 probe is a deterministic
	// single-shot fault: exactly one task of the class fails, the rest run
	// clean — the shape batch failure-isolation tests need.
	MaxFires int64
}

type registry struct {
	mu     sync.Mutex
	rng    *rand.Rand
	probes []Probe
	fired  map[string]int64
	fires  []int64 // per-probe fire counts, parallel to probes (MaxFires)
}

var (
	active atomic.Bool
	reg    registry
)

// Enable arms the given probes with a deterministic seed. It replaces any
// previous plan. Probes fire until Disable is called.
func Enable(seed int64, probes ...Probe) {
	reg.mu.Lock()
	reg.rng = rand.New(rand.NewSource(seed))
	reg.probes = append([]Probe(nil), probes...)
	reg.fired = make(map[string]int64)
	reg.fires = make([]int64, len(probes))
	reg.mu.Unlock()
	active.Store(len(probes) > 0)
}

// Disable disarms all probes; Active returns to false and Fire becomes a
// no-op again.
func Disable() {
	active.Store(false)
	reg.mu.Lock()
	reg.probes = nil
	reg.mu.Unlock()
}

// Active reports whether any probe is armed. This is the only call on the
// disabled fast path: a single atomic load.
func Active() bool { return active.Load() }

// Fired returns how many times probes fired per class since Enable.
func Fired() map[string]int64 {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	out := make(map[string]int64, len(reg.fired))
	for c, n := range reg.fired {
		out[c] = n
	}
	return out
}

// Fire consults the armed plan for the given task class: it sleeps for
// KindDelay probes, returns an *ErrInjected for KindError probes, and panics
// for KindPanic probes. Callers (the quark runtime) invoke it only when
// Active() is true, immediately before running a task's kernel.
func Fire(class string) error { return FireCtx(context.Background(), class) }

// FireCtx is Fire bounded by a context: an injected delay ends as soon as
// ctx is cancelled, so a stalled task can never outlive a cancelled solve —
// the worker running it unblocks within the cancellation, not within the
// configured delay. A nil ctx behaves like context.Background().
func FireCtx(ctx context.Context, class string) error {
	var hit *Probe
	reg.mu.Lock()
	for i := range reg.probes {
		p := &reg.probes[i]
		if p.Kind == KindCorrupt {
			continue // consulted by Corrupt at the kernel's output, not here
		}
		if p.Class != "*" && p.Class != class {
			continue
		}
		if p.MaxFires > 0 && reg.fires[i] >= p.MaxFires {
			continue
		}
		if reg.rng.Float64() < p.P {
			hit = p
			reg.fired[class]++
			reg.fires[i]++
			break
		}
	}
	reg.mu.Unlock()
	if hit == nil {
		return nil
	}
	switch hit.Kind {
	case KindDelay:
		if ctx == nil {
			ctx = context.Background()
		}
		if ctx.Done() == nil {
			time.Sleep(hit.Delay)
			return nil
		}
		t := time.NewTimer(hit.Delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
		}
		return nil
	case KindError:
		return &ErrInjected{Class: class, Mode: KindError}
	default:
		panic(&ErrInjected{Class: class, Mode: KindPanic})
	}
}

// Corrupt consults the armed plan for a KindCorrupt probe on the given task
// class and, when one fires, silently flips exponent bit 57 of the
// largest-magnitude element of data (multiplying it by 2^32 while keeping it
// finite — a massive, detectable, deterministic corruption). Kernels call it
// on their output buffer after computing it, guarded by Active(); probes of
// other kinds never fire here. Returns whether a flip was applied. A buffer
// of all zeros is left untouched (flipping a zero's exponent still yields
// zero, so there is nothing meaningful to corrupt).
func Corrupt(class string, data []float64) bool {
	if len(data) == 0 {
		return false
	}
	var hit bool
	reg.mu.Lock()
	for i := range reg.probes {
		p := &reg.probes[i]
		if p.Kind != KindCorrupt {
			continue
		}
		if p.Class != "*" && p.Class != class {
			continue
		}
		if p.MaxFires > 0 && reg.fires[i] >= p.MaxFires {
			continue
		}
		if reg.rng.Float64() < p.P {
			hit = true
			reg.fired[class]++
			reg.fires[i]++
			break
		}
	}
	reg.mu.Unlock()
	if !hit {
		return false
	}
	arg, mx := -1, 0.0
	for i, v := range data {
		if a := math.Abs(v); a > mx {
			arg, mx = i, a
		}
	}
	if arg < 0 {
		return false
	}
	data[arg] = math.Float64frombits(math.Float64bits(data[arg]) ^ (1 << 57))
	return true
}

// Transient classifies an error for retry policy: it reports whether the
// chain contains a transient environmental fault — an injected fault, or any
// error exposing `Transient() bool` as true (e.g. a watchdog stall abort) —
// as opposed to a persistent numerical failure (non-convergence, validation
// miss), which a same-tier retry will just reproduce and which should
// degrade to a more conservative tier instead.
func Transient(err error) bool {
	for e := err; e != nil; e = errors.Unwrap(e) {
		if t, ok := e.(interface{ Transient() bool }); ok && t.Transient() {
			return true
		}
	}
	return false
}

// Corruption reports whether the chain contains a silent-data-corruption
// detection — any error exposing `Corruption() bool` as true (an ABFT
// checksum mismatch, a violated merge invariant, a failed result audit).
// Corruption errors are also Transient (a recompute is expected to clear
// them), but callers that want to count detected corruptions separately from
// ordinary environmental faults key on this.
func Corruption(err error) bool {
	for e := err; e != nil; e = errors.Unwrap(e) {
		if c, ok := e.(interface{ Corruption() bool }); ok && c.Corruption() {
			return true
		}
	}
	return false
}

// ClassOf returns the task kernel class a failure is attributed to, or ""
// when the chain carries no class. Both the runtime's task-failure wrapper
// and ErrInjected expose `TaskClass() string`; circuit breakers key on this.
func ClassOf(err error) string {
	for e := err; e != nil; e = errors.Unwrap(e) {
		if c, ok := e.(interface{ TaskClass() string }); ok {
			return c.TaskClass()
		}
	}
	return ""
}
