package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"tridiag/eigen"
)

// BatchPoint is one small-solve throughput measurement at matrix order n:
// median solves/sec for a sequential Solve loop, one SolveBatch call, and a
// coalescing eigen.Server flooded by concurrent clients — all over the same
// matrices on the same worker count — plus the worst accuracy metrics across
// every batch member (both normalized by n, the paper's Figure 9 bars).
type BatchPoint struct {
	N                  int     `json:"n"`
	SeqSolvesPerSec    float64 `json:"seq_solves_per_sec"`
	BatchSolvesPerSec  float64 `json:"batch_solves_per_sec"`
	ServerSolvesPerSec float64 `json:"server_solves_per_sec"`
	BatchSpeedup       float64 `json:"batch_speedup"`
	ServerSpeedup      float64 `json:"server_speedup"`
	MaxResidual        float64 `json:"max_residual"`
	MaxOrthogonality   float64 `json:"max_orthogonality"`
}

// BatchRecord is the machine-readable output of `dcbench batch`. With
// ValuesOnly set, every path ran the eigenvalue-only lane and the accuracy
// columns are zero (no eigenvectors exist to form residuals against).
type BatchRecord struct {
	Workers    int          `json:"workers"`
	BatchSize  int          `json:"batch_size"`
	Reps       int          `json:"reps"`
	ValuesOnly bool         `json:"values_only,omitempty"`
	Points     []BatchPoint `json:"points"`
}

// Batch measures the batched small-solve engine: many independent matrices
// too small to feed the work-stealing scheduler alone, solved (a) one
// Solve call at a time, (b) as one SolveBatch DAG on a shared runtime, and
// (c) through a coalescing server's /solve admission path. The batch and
// server paths must win on throughput without giving up accuracy — every
// batch member is validated against the residual/orthogonality bars.
func Batch(cfg *Config) (*BatchRecord, error) {
	sizes := []int{32, 64, 128, 256}
	batch := 64
	reps := 3
	if cfg.Quick {
		sizes = []int{32, 64}
		batch, reps = 16, 2
	}
	if len(cfg.Sizes) > 0 {
		sizes = cfg.Sizes
	}
	workers := runtime.GOMAXPROCS(0)
	if len(cfg.Workers) > 0 {
		workers = cfg.Workers[0]
	}

	rec := &BatchRecord{Workers: workers, BatchSize: batch, Reps: reps, ValuesOnly: cfg.ValuesOnly}
	lane := ""
	if cfg.ValuesOnly {
		lane = ", values-only lane"
	}
	fmt.Fprintf(cfg.out(), "batched small-solve throughput: batch=%d workers=%d reps=%d (medians)%s\n", batch, workers, reps, lane)
	fmt.Fprintf(cfg.out(), "      n   seq solves/s   batch solves/s   server solves/s   batch-x  server-x   max resid  max orth\n")

	opts := &eigen.Options{Workers: workers, ValuesOnly: cfg.ValuesOnly}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(cfg.seed() + int64(n)))
		tris := make([]eigen.Tridiagonal, batch)
		for i := range tris {
			d := make([]float64, n)
			e := make([]float64, n-1)
			for j := range d {
				d[j] = rng.NormFloat64()
			}
			for j := range e {
				e[j] = rng.NormFloat64()
			}
			tris[i] = eigen.Tridiagonal{D: d, E: e}
		}

		var seqT, batchT, srvT []float64
		p := BatchPoint{N: n}
		for r := 0; r < reps; r++ {
			// (a) Sequential loop: one runtime spin-up per matrix.
			t0 := time.Now()
			for i := range tris {
				if _, err := eigen.Solve(tris[i], opts); err != nil {
					return nil, fmt.Errorf("seq solve n=%d: %w", n, err)
				}
			}
			seqT = append(seqT, time.Since(t0).Seconds())

			// (b) One shared-runtime batch.
			t0 = time.Now()
			results, err := eigen.SolveBatch(context.Background(), tris, opts)
			if err != nil {
				return nil, fmt.Errorf("batch solve n=%d: %w", n, err)
			}
			batchT = append(batchT, time.Since(t0).Seconds())
			if !cfg.ValuesOnly {
				for i, res := range results {
					p.MaxResidual = math.Max(p.MaxResidual, eigen.Residual(tris[i], res))
					p.MaxOrthogonality = math.Max(p.MaxOrthogonality, eigen.Orthogonality(res))
				}
			}

			// (c) Coalescing server under a concurrent client flood.
			srv := eigen.NewServer(eigen.ServerConfig{
				MaxConcurrent: workers,
				MaxQueue:      2 * batch,
				StallWindow:   time.Minute,
				BatchWindow:   2 * time.Millisecond,
				BatchMaxSize:  batch,
			})
			t0 = time.Now()
			var wg sync.WaitGroup
			errCh := make(chan error, len(tris))
			for i := range tris {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					if _, err := srv.Solve(context.Background(), tris[i], &eigen.Options{ValuesOnly: cfg.ValuesOnly}); err != nil {
						errCh <- fmt.Errorf("server solve n=%d: %w", n, err)
					}
				}(i)
			}
			wg.Wait()
			srvT = append(srvT, time.Since(t0).Seconds())
			close(errCh)
			if err := <-errCh; err != nil {
				return nil, err
			}
			if _, err := srv.Shutdown(context.Background()); err != nil {
				return nil, fmt.Errorf("server shutdown: %w", err)
			}
		}

		per := float64(batch)
		p.SeqSolvesPerSec = per / medianOf(seqT)
		p.BatchSolvesPerSec = per / medianOf(batchT)
		p.ServerSolvesPerSec = per / medianOf(srvT)
		p.BatchSpeedup = ratio(p.BatchSolvesPerSec, p.SeqSolvesPerSec)
		p.ServerSpeedup = ratio(p.ServerSolvesPerSec, p.SeqSolvesPerSec)
		rec.Points = append(rec.Points, p)
		fmt.Fprintf(cfg.out(), "  %5d  %13.0f  %15.0f  %16.0f  %7.2fx  %7.2fx   %.2e  %.2e\n",
			n, p.SeqSolvesPerSec, p.BatchSolvesPerSec, p.ServerSolvesPerSec,
			p.BatchSpeedup, p.ServerSpeedup, p.MaxResidual, p.MaxOrthogonality)
	}
	return rec, nil
}

// MergeJSON merges the record into path — under the "batch" key normally,
// "batch_values_only" when the run measured the eigenvalue-only lane —
// preserving any other keys already in the file.
func (r *BatchRecord) MergeJSON(path string) error {
	doc := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("existing %s is not a JSON object: %w", path, err)
		}
	}
	key := "batch"
	if r.ValuesOnly {
		key = "batch_values_only"
	}
	doc[key] = r
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
