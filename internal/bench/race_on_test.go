//go:build race

package bench

// raceEnabled reports whether the race detector is active; timing-slope
// assertions are skipped under it (see race_off_test.go).
const raceEnabled = true
