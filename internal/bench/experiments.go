package bench

import (
	"fmt"
	"math"

	"tridiag/internal/core"
	"tridiag/internal/quark"
	"tridiag/internal/sched"
	"tridiag/internal/testmat"
	"tridiag/internal/trace"
)

// ---------------------------------------------------------------- Table I

// Table1Row reports, for one matrix size, the measured per-kernel-class busy
// time of a full task-flow solve.
type Table1Row struct {
	N         int
	ClassTime map[string]float64 // seconds per kernel class
}

// Table1 verifies the merge cost model of the paper's Table I: per-kernel
// wall time is measured across a size sweep and log-log slopes are fitted.
// Expected orders: UpdateVect ≈ n³ (slope 3), the secular/stabilization
// kernels ≈ n² (slope 2), Compute deflation ≈ n (slope ≈1).
func Table1(cfg *Config) ([]Table1Row, map[string]float64, error) {
	sizes := cfg.sizes([]int{250, 500, 1000, 2000})
	w := cfg.out()
	var rows []Table1Row
	for _, n := range sizes {
		m := rampMatrix(n)
		g, _, _, err := captureRun(m, core.ModeTaskFlow, false)
		if err != nil {
			return nil, nil, err
		}
		ct := map[string]float64{}
		for _, t := range g.Tasks {
			ct[t.Class] += t.Duration().Seconds()
		}
		rows = append(rows, Table1Row{N: n, ClassTime: ct})
	}
	classes := []string{"ComputeDeflation", "PermuteV", "LAED4", "ComputeLocalW", "CopyBackDeflated", "ComputeVect", "UpdateVect"}
	fmt.Fprintf(w, "Table I: measured kernel time (ms) per size, low-deflation matrix\n")
	fmt.Fprintf(w, "%-18s", "kernel \\ n")
	for _, r := range rows {
		fmt.Fprintf(w, " %10d", r.N)
	}
	fmt.Fprintf(w, " %8s %s\n", "slope", "(paper's order)")
	model := map[string]string{
		"ComputeDeflation": "Θ(n)", "PermuteV": "Θ(n²)", "LAED4": "Θ(k²)",
		"ComputeLocalW": "Θ(k²)", "CopyBackDeflated": "Θ(n(n-k))",
		"ComputeVect": "Θ(k²)", "UpdateVect": "Θ(nk²)",
	}
	slopes := map[string]float64{}
	for _, c := range classes {
		fmt.Fprintf(w, "%-18s", c)
		for _, r := range rows {
			fmt.Fprintf(w, " %10.3f", 1000*r.ClassTime[c])
		}
		s := fitSlope(rows, c)
		slopes[c] = s
		fmt.Fprintf(w, " %8.2f %s\n", s, model[c])
	}
	return rows, slopes, nil
}

// rampMatrix is the low-deflation workhorse: (1,2,1) plus a diagonal ramp
// (dense z vectors, no degenerate symmetry).
func rampMatrix(n int) testmat.Matrix {
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = 2 + 0.001*float64(i)
	}
	for i := range e {
		e[i] = 1
	}
	return testmat.Matrix{Name: "ramp121", D: d, E: e}
}

// fitSlope least-squares fits log(time) against log(n) for one class.
func fitSlope(rows []Table1Row, class string) float64 {
	var xs, ys []float64
	for _, r := range rows {
		t := r.ClassTime[class]
		if t <= 0 {
			continue
		}
		xs = append(xs, math.Log(float64(r.N)))
		ys = append(ys, math.Log(t))
	}
	if len(xs) < 2 {
		return math.NaN()
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	nf := float64(len(xs))
	return (nf*sxy - sx*sy) / (nf*sxx - sx*sx)
}

// ---------------------------------------------------------------- Table III

// Table3Row characterizes one Table III matrix type.
type Table3Row struct {
	Type           int
	Name           string
	N              int
	DeflationRatio float64
	TimeDCms       float64
	TimeMRms       float64
}

// Table3 generates all fifteen Table III types, solves each with D&C and
// MRRR, and reports deflation ratios and solve times — the workload
// characterization behind the paper's experiments.
func Table3(cfg *Config) ([]Table3Row, error) {
	n := 500
	if s := cfg.sizes(nil); len(s) > 0 {
		n = s[0]
	} else if cfg.Quick {
		n = 250
	}
	w := cfg.out()
	fmt.Fprintf(w, "Table III matrix suite at n=%d (k=%.0e)\n", n, testmat.CondK)
	fmt.Fprintf(w, "%-5s %-22s %10s %12s %12s\n", "type", "name", "deflation", "t_DC (ms)", "t_MRRR (ms)")
	var rows []Table3Row
	for _, typ := range cfg.types([]int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}) {
		m, err := matrix(typ, n, cfg.seed())
		if err != nil {
			return nil, err
		}
		tDC, st, err := timeDC(m, 0)
		if err != nil {
			return nil, fmt.Errorf("type %d: DC: %w", typ, err)
		}
		tMR, err := timeMRRR(m, 0)
		if err != nil {
			return nil, fmt.Errorf("type %d: MRRR: %w", typ, err)
		}
		row := Table3Row{
			Type: typ, Name: m.Name, N: m.N(),
			DeflationRatio: st.DeflationRatio(),
			TimeDCms:       tDC.Seconds() * 1000,
			TimeMRms:       tMR.Seconds() * 1000,
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-5d %-22s %9.1f%% %12.1f %12.1f\n",
			typ, m.Name, 100*row.DeflationRatio, row.TimeDCms, row.TimeMRms)
	}
	return rows, nil
}

// ---------------------------------------------------------------- Fig 3 & 4

// TraceResult is one simulated execution trace.
type TraceResult struct {
	Label     string
	Makespan  float64
	Idle      float64
	Speedup   float64 // vs the same graph on one worker
	Gantt     string
	Breakdown string
}

// Fig3 reproduces the optimization-level traces of Figure 3 on a
// low-deflation (type-4-like) matrix: (a) parallel GEMM only, (b) parallel
// merge kernels with a sequential algorithm skeleton, (c) the full task
// flow. P virtual workers (default 16) replay the measured task graph.
func Fig3(cfg *Config) ([]TraceResult, error) {
	n := 1500
	if s := cfg.sizes(nil); len(s) > 0 {
		n = s[0]
	} else if cfg.Quick {
		n = 600
	}
	workers := 16
	if len(cfg.Workers) > 0 {
		workers = cfg.Workers[len(cfg.Workers)-1]
	}
	typ := 4
	if ts := cfg.types(nil); len(ts) > 0 {
		typ = ts[0]
	}
	m, err := matrix(typ, n, cfg.seed())
	if err != nil {
		return nil, err
	}
	g, _, _, err := captureRun(m, core.ModeTaskFlow, false)
	if err != nil {
		return nil, err
	}
	out := []TraceResult{}
	bw := cfg.bandwidth()
	for _, v := range []traceVariant{
		{"(a) parallel GEMM only (fork/join BLAS model)", sched.ForkJoinGraph(g, sched.ParallelBLASClasses)},
		{"(b) + parallel merge kernels", sched.ForkJoinGraph(g, sched.ParallelMergeClasses)},
		{"(c) + independent subproblems (full task flow)", g},
	} {
		r, err := simulate(v.graph, workers, bw)
		if err != nil {
			return nil, err
		}
		r1, err := simulate(v.graph, 1, bw)
		if err != nil {
			return nil, err
		}
		tl := trace.FromSimulation(v.graph, r, workers)
		tr := TraceResult{
			Label:     v.label,
			Makespan:  r.Makespan,
			Idle:      r.IdleFraction,
			Speedup:   r1.Makespan / r.Makespan,
			Gantt:     tl.Gantt(100),
			Breakdown: tl.BreakdownReport(),
		}
		out = append(out, tr)
		fmt.Fprintf(cfg.out(), "\n%s  [type %d, n=%d, P=%d simulated]\nmakespan %.4fs  speedup %.1fx  idle %.1f%%\n%s",
			v.label, typ, n, workers, tr.Makespan, tr.Speedup, 100*tr.Idle, tr.Gantt)
	}
	return out, nil
}

type traceVariant struct {
	label string
	graph *quark.Graph
}

// Fig4 is the Figure 4 trace: a near-total-deflation (type-5-like in the
// trace section: the paper uses its type 5 there) matrix under the full task
// flow, where permutation copies dominate and the bandwidth cap limits
// speedup.
func Fig4(cfg *Config) (*TraceResult, error) {
	n := 1500
	if s := cfg.sizes(nil); len(s) > 0 {
		n = s[0]
	} else if cfg.Quick {
		n = 600
	}
	workers := 16
	if len(cfg.Workers) > 0 {
		workers = cfg.Workers[len(cfg.Workers)-1]
	}
	typ := 1 // near-total deflation
	if ts := cfg.types(nil); len(ts) > 0 {
		typ = ts[0]
	}
	m, err := matrix(typ, n, cfg.seed())
	if err != nil {
		return nil, err
	}
	g, _, _, err := captureRun(m, core.ModeTaskFlow, false)
	if err != nil {
		return nil, err
	}
	bw := cfg.bandwidth()
	r, err := simulate(g, workers, bw)
	if err != nil {
		return nil, err
	}
	r1, err := simulate(g, 1, bw)
	if err != nil {
		return nil, err
	}
	tl := trace.FromSimulation(g, r, workers)
	tr := &TraceResult{
		Label:     "full task flow, ~100% deflation",
		Makespan:  r.Makespan,
		Idle:      r.IdleFraction,
		Speedup:   r1.Makespan / r.Makespan,
		Gantt:     tl.Gantt(100),
		Breakdown: tl.BreakdownReport(),
	}
	fmt.Fprintf(cfg.out(), "\nFigure 4 [type %d, n=%d, P=%d simulated]\nmakespan %.4fs  speedup %.1fx  idle %.1f%%\n%s%s",
		typ, n, workers, tr.Makespan, tr.Speedup, 100*tr.Idle, tr.Gantt, tr.Breakdown)
	return tr, nil
}
