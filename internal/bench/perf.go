package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/metrics"
	"sort"
	"time"

	"tridiag/internal/blas"
	"tridiag/internal/core"
	"tridiag/internal/pool"
)

// PerfWorkerPoint is one task-flow timing: the median of Reps solves of an
// n×n random tridiagonal at the given worker count, with the GC behaviour
// observed across those solves.
type PerfWorkerPoint struct {
	Workers  int     `json:"workers"`
	MedianMS float64 `json:"median_ms"`
	GCStats
}

// GCStats summarizes allocator/GC pressure over one timed run: collection
// count and total stop-the-world pauses, the fraction of CPU the GC
// consumed, and the heap-sys high-water mark sampled after each solve.
type GCStats struct {
	GCCycles      uint32  `json:"gc_cycles"`
	GCPauseMS     float64 `json:"gc_pause_ms"`
	GCCPUFraction float64 `json:"gc_cpu_frac"`
	HeapSysPeakMB float64 `json:"heap_sys_peak_mb"`
}

// SteadyPoint is one worker count's steady-state result: medians of the
// first quarter and last half of the in-process solve sequence (their ratio
// is the drift detector), GC behaviour over the whole sequence, and the
// pool's idle retention when the sequence ended.
type SteadyPoint struct {
	Workers              int     `json:"workers"`
	MedianFirstQuarterMS float64 `json:"median_first_quarter_ms"`
	MedianLastHalfMS     float64 `json:"median_last_half_ms"`
	SteadyRatio          float64 `json:"steady_ratio"`
	GCStats
	PoolRetainedMB float64 `json:"pool_retained_mb"`
}

// SteadyRecord is the `dcbench perf -steady N` summary: N solves per worker
// count in one process, the regression detector for the in-process slowdown
// this repo once shipped.
type SteadyRecord struct {
	N      int           `json:"n"`
	Solves int           `json:"solves"`
	Points []SteadyPoint `json:"points"`
}

// PerfRecord is the machine-readable performance snapshot emitted by
// `dcbench perf -json`: the scheduler acceptance numbers (task-flow medians
// at several worker counts), the GEMM kernel throughput, the UpdateVect
// pack-reuse counters of the timed solves, and — with -steady N — the
// steady-state record.
type PerfRecord struct {
	N             int               `json:"n"`
	Reps          int               `json:"reps"`
	TaskFlow      []PerfWorkerPoint `json:"taskflow"`
	Steady        *SteadyRecord     `json:"steady,omitempty"`
	GemmN         int               `json:"gemm_n"`
	GemmGFLOPS    float64           `json:"gemm_gflops"`
	PackHits      int64             `json:"pack_hits"`
	PackMisses    int64             `json:"pack_misses"`
	PackedBytes   int64             `json:"packed_bytes"`
	PackReuseRate float64           `json:"pack_reuse_rate"`
}

// gcProbe samples the GC counters needed for before/after deltas.
type gcProbe struct {
	cycles     uint32
	pauseNs    uint64
	gcCPU      float64
	totalCPU   float64
	heapSysMax uint64
}

func readGCProbe() gcProbe {
	samples := []metrics.Sample{
		{Name: "/cpu/classes/gc/total:cpu-seconds"},
		{Name: "/cpu/classes/total:cpu-seconds"},
	}
	metrics.Read(samples)
	var p gcProbe
	if samples[0].Value.Kind() == metrics.KindFloat64 {
		p.gcCPU = samples[0].Value.Float64()
	}
	if samples[1].Value.Kind() == metrics.KindFloat64 {
		p.totalCPU = samples[1].Value.Float64()
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p.cycles = ms.NumGC
	p.pauseNs = ms.PauseTotalNs
	p.heapSysMax = ms.HeapSys
	return p
}

// sampleHeapSys updates the probe's heap-sys high-water mark (called
// between solves; cheap relative to a solve).
func (p *gcProbe) sampleHeapSys() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapSys > p.heapSysMax {
		p.heapSysMax = ms.HeapSys
	}
}

// delta summarizes the GC activity between two probes.
func (p *gcProbe) delta(start gcProbe) GCStats {
	st := GCStats{
		GCCycles:      p.cycles - start.cycles,
		GCPauseMS:     float64(p.pauseNs-start.pauseNs) / 1e6,
		HeapSysPeakMB: float64(p.heapSysMax) / (1 << 20),
	}
	if dt := p.totalCPU - start.totalCPU; dt > 0 {
		st.GCCPUFraction = (p.gcCPU - start.gcCPU) / dt
	}
	return st
}

// Perf measures the performance snapshot: median-of-reps task-flow solve
// times at 1/4/8 workers (overridden by cfg.Workers), the square Dgemm
// throughput, and the pack-reuse statistics accumulated over the timed runs.
func Perf(cfg *Config) (*PerfRecord, error) {
	n := 2000
	reps := 3
	if cfg.Quick {
		n, reps = 500, 1
	}
	if len(cfg.Sizes) > 0 {
		n = cfg.Sizes[0]
	}
	workers := cfg.Workers
	if len(workers) == 0 {
		workers = []int{1, 4, 8}
	}

	rng := rand.New(rand.NewSource(cfg.seed()))
	d0 := make([]float64, n)
	e0 := make([]float64, n-1)
	for i := range d0 {
		d0[i] = rng.NormFloat64()
	}
	for i := range e0 {
		e0[i] = rng.NormFloat64()
	}

	rec := &PerfRecord{N: n, Reps: reps}
	q := make([]float64, n*n)
	fmt.Fprintf(cfg.out(), "task-flow solve, n=%d, median of %d:\n", n, reps)
	for _, w := range workers {
		times := make([]float64, 0, reps)
		probe := readGCProbe()
		start := probe
		for r := 0; r < reps; r++ {
			d := append([]float64(nil), d0...)
			e := append([]float64(nil), e0...)
			t0 := time.Now()
			res, err := core.SolveDC(n, d, e, q, n, &core.Options{Workers: w})
			if err != nil {
				return nil, fmt.Errorf("perf n=%d w=%d: %w", n, w, err)
			}
			times = append(times, float64(time.Since(t0).Microseconds())/1000)
			hits, misses, bytes, _ := res.Stats.PackReuse()
			rec.PackHits += hits
			rec.PackMisses += misses
			rec.PackedBytes += bytes
			probe.sampleHeapSys()
		}
		end := readGCProbe()
		if probe.heapSysMax > end.heapSysMax {
			end.heapSysMax = probe.heapSysMax
		}
		sort.Float64s(times)
		med := times[len(times)/2]
		pt := PerfWorkerPoint{Workers: w, MedianMS: med, GCStats: end.delta(start)}
		rec.TaskFlow = append(rec.TaskFlow, pt)
		fmt.Fprintf(cfg.out(), "  W%-2d  %8.1f ms   gc=%d pause=%.2fms gc-cpu=%.1f%% heap-sys≤%.0fMB\n",
			w, med, pt.GCCycles, pt.GCPauseMS, 100*pt.GCCPUFraction, pt.HeapSysPeakMB)
	}
	if rec.PackHits+rec.PackMisses > 0 {
		rec.PackReuseRate = float64(rec.PackHits) / float64(rec.PackHits+rec.PackMisses)
	}
	fmt.Fprintf(cfg.out(), "UpdateVect pack: hits=%d misses=%d packed=%d B reuse=%.1f%%\n",
		rec.PackHits, rec.PackMisses, rec.PackedBytes, 100*rec.PackReuseRate)

	if cfg.Steady > 0 {
		st, err := steady(cfg, n, cfg.Steady, workers, d0, e0)
		if err != nil {
			return nil, err
		}
		rec.Steady = st
	}

	// Square GEMM throughput at the reference size.
	gn := 256
	if cfg.Quick {
		gn = 128
	}
	a := make([]float64, gn*gn)
	b := make([]float64, gn*gn)
	c := make([]float64, gn*gn)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	best := 0.0
	for r := 0; r < 3; r++ {
		t0 := time.Now()
		blas.Dgemm(false, false, gn, gn, gn, 1, a, gn, b, gn, 0, c, gn)
		el := time.Since(t0).Seconds()
		if g := 2 * float64(gn) * float64(gn) * float64(gn) / el / 1e9; g > best {
			best = g
		}
	}
	rec.GemmN, rec.GemmGFLOPS = gn, best
	fmt.Fprintf(cfg.out(), "Dgemm %d: %.1f GFLOPS\n", gn, best)
	return rec, nil
}

// steady is the in-process steady-state mode (`dcbench perf -steady N`):
// for each worker count it runs N solves back to back in this process,
// reusing one eigenvector workspace — exactly the pattern that once
// degraded 2.5× — and reports the medians of the first quarter and the
// last half of the sequence plus the GC behaviour across it. A healthy
// solver has steady_ratio ≈ 1.
func steady(cfg *Config, n, solves int, workers []int, d0, e0 []float64) (*SteadyRecord, error) {
	rec := &SteadyRecord{N: n, Solves: solves}
	q := make([]float64, n*n) // reused across every solve, never cleared
	d := make([]float64, n)
	e := make([]float64, n-1)
	fmt.Fprintf(cfg.out(), "steady state: %d in-process solves per worker count, n=%d, reused workspace:\n", solves, n)
	for _, w := range workers {
		times := make([]float64, 0, solves)
		probe := readGCProbe()
		start := probe
		for r := 0; r < solves; r++ {
			copy(d, d0)
			copy(e, e0)
			t0 := time.Now()
			if _, err := core.SolveDC(n, d, e, q, n, &core.Options{Workers: w}); err != nil {
				return nil, fmt.Errorf("steady n=%d w=%d rep %d: %w", n, w, r, err)
			}
			times = append(times, float64(time.Since(t0).Microseconds())/1000)
			probe.sampleHeapSys()
		}
		end := readGCProbe()
		if probe.heapSysMax > end.heapSysMax {
			end.heapSysMax = probe.heapSysMax
		}
		pt := SteadyPoint{
			Workers:              w,
			MedianFirstQuarterMS: medianOf(times[:max(len(times)/4, 1)]),
			MedianLastHalfMS:     medianOf(times[len(times)/2:]),
			GCStats:              end.delta(start),
			PoolRetainedMB:       float64(pool.RetainedBytes()) / (1 << 20),
		}
		if pt.MedianFirstQuarterMS > 0 {
			pt.SteadyRatio = pt.MedianLastHalfMS / pt.MedianFirstQuarterMS
		}
		rec.Points = append(rec.Points, pt)
		fmt.Fprintf(cfg.out(), "  W%-2d  first¼ %8.1f ms   last½ %8.1f ms   ratio %.2f   gc=%d pause=%.2fms gc-cpu=%.1f%% heap-sys≤%.0fMB retained=%.0fMB\n",
			w, pt.MedianFirstQuarterMS, pt.MedianLastHalfMS, pt.SteadyRatio,
			pt.GCCycles, pt.GCPauseMS, 100*pt.GCCPUFraction, pt.HeapSysPeakMB, pt.PoolRetainedMB)
	}
	return rec, nil
}

func medianOf(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// JSON renders the record as indented JSON (for BENCH_taskflow.json).
func (r *PerfRecord) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// MergeJSON writes the record's fields into path at the top level (the
// historical layout), preserving any foreign keys already in the file —
// notably the "secular" record written by `dcbench secular -json`.
func (r *PerfRecord) MergeJSON(path string) error {
	doc := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("existing %s is not a JSON object: %w", path, err)
		}
	}
	self, err := json.Marshal(r)
	if err != nil {
		return err
	}
	fields := map[string]any{}
	if err := json.Unmarshal(self, &fields); err != nil {
		return err
	}
	for k, v := range fields {
		doc[k] = v
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
