package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"tridiag/internal/blas"
	"tridiag/internal/core"
)

// PerfWorkerPoint is one task-flow timing: the median of Reps solves of an
// n×n random tridiagonal at the given worker count.
type PerfWorkerPoint struct {
	Workers  int     `json:"workers"`
	MedianMS float64 `json:"median_ms"`
}

// PerfRecord is the machine-readable performance snapshot emitted by
// `dcbench perf -json`: the scheduler acceptance numbers (task-flow medians
// at several worker counts), the GEMM kernel throughput, and the UpdateVect
// pack-reuse counters of the timed solves.
type PerfRecord struct {
	N             int               `json:"n"`
	Reps          int               `json:"reps"`
	TaskFlow      []PerfWorkerPoint `json:"taskflow"`
	GemmN         int               `json:"gemm_n"`
	GemmGFLOPS    float64           `json:"gemm_gflops"`
	PackHits      int64             `json:"pack_hits"`
	PackMisses    int64             `json:"pack_misses"`
	PackedBytes   int64             `json:"packed_bytes"`
	PackReuseRate float64           `json:"pack_reuse_rate"`
}

// Perf measures the performance snapshot: median-of-reps task-flow solve
// times at 1/4/8 workers (overridden by cfg.Workers), the square Dgemm
// throughput, and the pack-reuse statistics accumulated over the timed runs.
func Perf(cfg *Config) (*PerfRecord, error) {
	n := 2000
	reps := 3
	if cfg.Quick {
		n, reps = 500, 1
	}
	if len(cfg.Sizes) > 0 {
		n = cfg.Sizes[0]
	}
	workers := cfg.Workers
	if len(workers) == 0 {
		workers = []int{1, 4, 8}
	}

	rng := rand.New(rand.NewSource(cfg.seed()))
	d0 := make([]float64, n)
	e0 := make([]float64, n-1)
	for i := range d0 {
		d0[i] = rng.NormFloat64()
	}
	for i := range e0 {
		e0[i] = rng.NormFloat64()
	}

	rec := &PerfRecord{N: n, Reps: reps}
	q := make([]float64, n*n)
	fmt.Fprintf(cfg.out(), "task-flow solve, n=%d, median of %d:\n", n, reps)
	for _, w := range workers {
		times := make([]float64, 0, reps)
		for r := 0; r < reps; r++ {
			d := append([]float64(nil), d0...)
			e := append([]float64(nil), e0...)
			t0 := time.Now()
			res, err := core.SolveDC(n, d, e, q, n, &core.Options{Workers: w})
			if err != nil {
				return nil, fmt.Errorf("perf n=%d w=%d: %w", n, w, err)
			}
			times = append(times, float64(time.Since(t0).Microseconds())/1000)
			hits, misses, bytes, _ := res.Stats.PackReuse()
			rec.PackHits += hits
			rec.PackMisses += misses
			rec.PackedBytes += bytes
		}
		sort.Float64s(times)
		med := times[len(times)/2]
		rec.TaskFlow = append(rec.TaskFlow, PerfWorkerPoint{Workers: w, MedianMS: med})
		fmt.Fprintf(cfg.out(), "  W%-2d  %8.1f ms\n", w, med)
	}
	if rec.PackHits+rec.PackMisses > 0 {
		rec.PackReuseRate = float64(rec.PackHits) / float64(rec.PackHits+rec.PackMisses)
	}
	fmt.Fprintf(cfg.out(), "UpdateVect pack: hits=%d misses=%d packed=%d B reuse=%.1f%%\n",
		rec.PackHits, rec.PackMisses, rec.PackedBytes, 100*rec.PackReuseRate)

	// Square GEMM throughput at the reference size.
	gn := 256
	if cfg.Quick {
		gn = 128
	}
	a := make([]float64, gn*gn)
	b := make([]float64, gn*gn)
	c := make([]float64, gn*gn)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	best := 0.0
	for r := 0; r < 3; r++ {
		t0 := time.Now()
		blas.Dgemm(false, false, gn, gn, gn, 1, a, gn, b, gn, 0, c, gn)
		el := time.Since(t0).Seconds()
		if g := 2 * float64(gn) * float64(gn) * float64(gn) / el / 1e9; g > best {
			best = g
		}
	}
	rec.GemmN, rec.GemmGFLOPS = gn, best
	fmt.Fprintf(cfg.out(), "Dgemm %d: %.1f GFLOPS\n", gn, best)
	return rec, nil
}

// JSON renders the record as indented JSON (for BENCH_taskflow.json).
func (r *PerfRecord) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// MergeJSON writes the record's fields into path at the top level (the
// historical layout), preserving any foreign keys already in the file —
// notably the "secular" record written by `dcbench secular -json`.
func (r *PerfRecord) MergeJSON(path string) error {
	doc := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("existing %s is not a JSON object: %w", path, err)
		}
	}
	self, err := json.Marshal(r)
	if err != nil {
		return err
	}
	fields := map[string]any{}
	if err := json.Unmarshal(self, &fields); err != nil {
		return err
	}
	for k, v := range fields {
		doc[k] = v
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
