package bench

import (
	"fmt"
	"math"

	"tridiag/internal/lapack"
)

// TheoryRow holds raw (not n-normalized) orthogonality errors at one size.
type TheoryRow struct {
	N                       int
	OrthDC, OrthMR, OrthJac float64
}

// Theory tests the paper's §V error-model claim: "for a matrix of size n and
// a machine precision ε, D&C achieves errors of size O(√n·ε), whereas MRRR
// error is in O(n·ε)". Raw orthogonality ‖I−VVᵀ‖_max is measured across a
// size sweep and log-log slopes are fitted; expected ≈0.5 for D&C and ≈1 for
// MRRR. The cyclic Jacobi method — the most accurate dense eigensolver — is
// included as the accuracy floor on the smaller sizes.
func Theory(cfg *Config) ([]TheoryRow, map[string]float64, error) {
	sizes := cfg.sizes([]int{100, 200, 400, 800, 1600})
	w := cfg.out()
	fmt.Fprintf(w, "Error-model check: raw ‖I-VVᵀ‖ vs n (paper: D&C O(√n·ε), MRRR O(n·ε))\n")
	fmt.Fprintf(w, "%8s %12s %12s %12s\n", "n", "DC", "MRRR", "Jacobi")
	var rows []TheoryRow
	for _, n := range sizes {
		m := rampMatrix(n)
		oDC, _, err := solveAccuracy(m, false)
		if err != nil {
			return nil, nil, err
		}
		oMR, _, err := solveAccuracy(m, true)
		if err != nil {
			return nil, nil, err
		}
		row := TheoryRow{N: n, OrthDC: oDC * float64(n), OrthMR: oMR * float64(n)}
		if n <= 400 {
			oj, err := jacobiOrth(m.D, m.E)
			if err != nil {
				return nil, nil, err
			}
			row.OrthJac = oj
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%8d %12.2e %12.2e %12.2e\n", n, row.OrthDC, row.OrthMR, row.OrthJac)
	}
	slopes := map[string]float64{
		"DC":   orthSlope(rows, func(r TheoryRow) float64 { return r.OrthDC }),
		"MRRR": orthSlope(rows, func(r TheoryRow) float64 { return r.OrthMR }),
	}
	fmt.Fprintf(w, "fitted error-growth exponents: DC %.2f (theory 0.5), MRRR %.2f (theory 1.0)\n",
		slopes["DC"], slopes["MRRR"])
	return rows, slopes, nil
}

func orthSlope(rows []TheoryRow, get func(TheoryRow) float64) float64 {
	var xs, ys []float64
	for _, r := range rows {
		v := get(r)
		if v <= 0 {
			continue
		}
		xs = append(xs, math.Log(float64(r.N)))
		ys = append(ys, math.Log(v))
	}
	if len(xs) < 2 {
		return math.NaN()
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	nf := float64(len(xs))
	return (nf*sxy - sx*sy) / (nf*sxx - sx*sx)
}

// jacobiOrth solves the tridiagonal (as a dense matrix) with the cyclic
// Jacobi method and returns the raw orthogonality error.
func jacobiOrth(d, e []float64) (float64, error) {
	n := len(d)
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		a[i+i*n] = d[i]
		if i < n-1 {
			a[i+1+i*n] = e[i]
			a[i+(i+1)*n] = e[i]
		}
	}
	w := make([]float64, n)
	v := make([]float64, n*n)
	if err := lapack.JacobiEigen(n, a, n, w, v, n); err != nil {
		return 0, err
	}
	worst := 0.0
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			var s float64
			vi, vj := v[i*n:i*n+n], v[j*n:j*n+n]
			for k := 0; k < n; k++ {
				s += vi[k] * vj[k]
			}
			if i == j {
				s -= 1
			}
			worst = math.Max(worst, math.Abs(s))
		}
	}
	return worst, nil
}
