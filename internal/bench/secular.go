package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"time"

	"tridiag/internal/lapack"
	"tridiag/internal/simd"
)

// SecularPoint is one secular-phase kernel measurement at secular size k:
// median times for the scalar (forced portable) and SIMD dispatch paths.
type SecularPoint struct {
	K              int     `json:"k"`
	Dlaed4ScalarUS float64 `json:"dlaed4_scalar_us"`
	Dlaed4SimdUS   float64 `json:"dlaed4_simd_us"`
	Dlaed4Speedup  float64 `json:"dlaed4_speedup"`
	LocalWScalarUS float64 `json:"localw_scalar_us"`
	LocalWSimdUS   float64 `json:"localw_simd_us"`
	VectScalarUS   float64 `json:"vect_scalar_us"`
	VectSimdUS     float64 `json:"vect_simd_us"`
	FinishScalarUS float64 `json:"finishw_scalar_us"`
	FinishSimdUS   float64 `json:"finishw_simd_us"`
}

// SecularRecord is the machine-readable output of `dcbench secular`.
type SecularRecord struct {
	SIMDAvailable bool           `json:"simd_available"`
	Reps          int            `json:"reps"`
	Points        []SecularPoint `json:"points"`
}

// secularProblem builds a well-separated secular system of size k: ascending
// poles d, a unit-norm z with no small components, and a positive rho — the
// post-deflation invariants Dlaed4 requires.
func secularProblem(rng *rand.Rand, k int) (d, z []float64, rho float64) {
	d = make([]float64, k)
	z = make([]float64, k)
	acc := 0.0
	var nrm float64
	for i := 0; i < k; i++ {
		acc += 0.1 + rng.Float64()
		d[i] = acc
		z[i] = 0.1 + rng.Float64()
		nrm += z[i] * z[i]
	}
	nrm = math.Sqrt(nrm)
	for i := range z {
		z[i] /= nrm
	}
	return d, z, 0.5 + rng.Float64()
}

// medianTime runs f reps times, timing each run individually (setup callbacks
// run outside the timed region), and returns the median in microseconds.
func medianTime(reps int, setup, f func()) float64 {
	times := make([]float64, 0, reps)
	setup()
	f() // warmup
	for r := 0; r < reps; r++ {
		setup()
		t0 := time.Now()
		f()
		times = append(times, float64(time.Since(t0).Nanoseconds())/1000)
	}
	sort.Float64s(times)
	return times[len(times)/2]
}

// Secular benchmarks the secular-phase kernels — all-roots Dlaed4
// (SecularPanel), LocalWPanel, VectorsPanel and FinishW — across k sizes with
// the SIMD kernels forced off and on. The scalar column exercises the
// portable fallbacks the solver uses on non-AVX2 hardware.
func Secular(cfg *Config) (*SecularRecord, error) {
	ks := []int{64, 256, 1024}
	if len(cfg.Sizes) > 0 {
		ks = cfg.Sizes
	}
	reps := 5
	if cfg.Quick {
		reps = 2
	}
	defer simd.SetSIMD(simd.Available())
	rec := &SecularRecord{SIMDAvailable: simd.Available(), Reps: reps}
	if !simd.Available() {
		fmt.Fprintf(cfg.out(), "note: no AVX2+FMA kernels on this platform; both columns run the portable path\n")
	}
	fmt.Fprintf(cfg.out(), "secular kernels, median of %d, scalar / SIMD µs (speedup):\n", reps)
	fmt.Fprintf(cfg.out(), "  %5s  %26s  %22s  %22s  %20s\n", "k", "Dlaed4(all roots)", "ComputeLocalW", "ComputeVect", "FinishW")

	rng := rand.New(rand.NewSource(cfg.seed()))
	for _, k := range ks {
		d, z, rho := secularProblem(rng, k)
		perm := make([]int, k)
		for i := range perm {
			perm[i] = i
		}
		df := &lapack.Deflation{N: k, N1: k / 2, K: k, Rho: rho, Dlamda: d, W: z, GroupToSecular: perm}
		ws := &lapack.MergeWorkspace{S: make([]float64, k*k)}
		dd := make([]float64, k)
		wloc := make([]float64, k)
		what := make([]float64, k)
		var sOrig []float64

		var p SecularPoint
		p.K = k
		for _, mode := range []struct {
			on              bool
			laed4, lw, v, f *float64
		}{
			{false, &p.Dlaed4ScalarUS, &p.LocalWScalarUS, &p.VectScalarUS, &p.FinishScalarUS},
			{true, &p.Dlaed4SimdUS, &p.LocalWSimdUS, &p.VectSimdUS, &p.FinishSimdUS},
		} {
			simd.SetSIMD(mode.on)
			var serr error
			*mode.laed4 = medianTime(reps, func() {}, func() {
				if _, err := df.SecularPanel(ws, dd, 0, k); err != nil {
					serr = err
				}
			})
			if serr != nil {
				return nil, fmt.Errorf("secular k=%d: %w", k, serr)
			}
			sOrig = append(sOrig[:0], ws.S...)
			*mode.lw = medianTime(reps, func() {
				for i := range wloc {
					wloc[i] = 1
				}
			}, func() {
				df.LocalWPanel(ws, wloc, 0, k)
			})
			*mode.f = medianTime(reps, func() {}, func() {
				df.FinishW(what, wloc)
			})
			// VectorsPanel overwrites the delta columns of S in place, so the
			// restore runs outside the timed region.
			*mode.v = medianTime(reps, func() {
				copy(ws.S, sOrig)
			}, func() {
				df.VectorsPanel(ws, what, 0, k)
			})
		}
		if p.Dlaed4SimdUS > 0 {
			p.Dlaed4Speedup = p.Dlaed4ScalarUS / p.Dlaed4SimdUS
		}
		rec.Points = append(rec.Points, p)
		fmt.Fprintf(cfg.out(), "  %5d  %9.1f /%9.1f (%3.1fx)  %8.1f /%8.1f (%3.1fx)  %8.1f /%8.1f (%3.1fx)  %7.1f /%7.1f (%3.1fx)\n",
			k,
			p.Dlaed4ScalarUS, p.Dlaed4SimdUS, p.Dlaed4Speedup,
			p.LocalWScalarUS, p.LocalWSimdUS, ratio(p.LocalWScalarUS, p.LocalWSimdUS),
			p.VectScalarUS, p.VectSimdUS, ratio(p.VectScalarUS, p.VectSimdUS),
			p.FinishScalarUS, p.FinishSimdUS, ratio(p.FinishScalarUS, p.FinishSimdUS))
	}
	return rec, nil
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// MergeJSON merges the record into path under the "secular" key, preserving
// any other keys already in the file (e.g. the perf snapshot written by
// `dcbench perf -json`).
func (r *SecularRecord) MergeJSON(path string) error {
	doc := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("existing %s is not a JSON object: %w", path, err)
		}
	}
	doc["secular"] = r
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
