// Package bench implements the reproduction harness: one entry point per
// table and figure of the paper's evaluation section (see DESIGN.md §4).
// Each function runs the experiment at laptop scale, prints the same rows or
// series the paper reports, and returns structured data for the tests.
//
// Performance shapes that require 16 cores come from the measured-replay
// schedule simulator (internal/sched): the real task graph with real
// measured task durations is list-scheduled on P virtual workers
// (substitution documented in DESIGN.md §2).
package bench

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"
	"time"

	"tridiag/internal/core"
	"tridiag/internal/lapack"
	"tridiag/internal/mrrr"
	"tridiag/internal/quark"
	"tridiag/internal/sched"
	"tridiag/internal/testmat"
)

// Config controls experiment scale. Zero values select paper-shaped
// defaults scaled to laptop budgets.
type Config struct {
	Sizes            []int
	Types            []int
	Workers          []int
	Seed             int64
	Quick            bool
	ValuesOnly       bool    // perf/batch: measure the eigenvalue-only lane against the full solve
	Steady           int     // perf: solves per worker count in one process (0: fresh-style reps)
	BandwidthStreams float64 // memory-bound concurrency cap for simulation
	Out              io.Writer
}

func (c *Config) out() io.Writer {
	if c.Out == nil {
		return io.Discard
	}
	return c.Out
}

func (c *Config) seed() int64 {
	if c.Seed == 0 {
		return 20150525 // IPDPS 2015 :-)
	}
	return c.Seed
}

func (c *Config) sizes(def []int) []int {
	if len(c.Sizes) > 0 {
		return c.Sizes
	}
	if c.Quick {
		q := def[:0:0]
		for _, s := range def {
			q = append(q, s/2)
		}
		return q[:min(2, len(q))]
	}
	return def
}

func (c *Config) types(def []int) []int {
	if len(c.Types) > 0 {
		return c.Types
	}
	return def
}

func (c *Config) bandwidth() float64 {
	if c.BandwidthStreams == 0 {
		return 4 // single-socket saturation observed in the paper (Fig. 5)
	}
	return c.BandwidthStreams
}

// matCache avoids regenerating expensive inverse-eigenvalue matrices.
var matCache sync.Map // key string -> testmat.Matrix

func matrix(typ, n int, seed int64) (testmat.Matrix, error) {
	key := fmt.Sprintf("%d/%d/%d", typ, n, seed)
	if v, ok := matCache.Load(key); ok {
		return v.(testmat.Matrix), nil
	}
	m, err := testmat.Type(typ, n, rand.New(rand.NewSource(seed+int64(typ)*1000+int64(n))))
	if err != nil {
		return m, err
	}
	matCache.Store(key, m)
	return m, nil
}

// dcOptions are the solver settings shared across experiments.
func dcOptions(n int) (panel, minpart int) {
	minpart = max(32, min(128, n/8))
	panel = max(16, min(128, n/8))
	return panel, minpart
}

// captureRun solves the matrix with the task-flow solver on one worker,
// capturing the task graph with clean per-task timings. Returns the graph,
// the stats, and the wall time.
func captureRun(m testmat.Matrix, mode core.Mode, extraWS bool) (*quark.Graph, *core.Stats, time.Duration, error) {
	n := m.N()
	d := append([]float64(nil), m.D...)
	e := append([]float64(nil), m.E...)
	q := make([]float64, n*n)
	panel, minpart := dcOptions(n)
	t0 := time.Now()
	res, err := core.SolveDC(n, d, e, q, n, &core.Options{
		Workers: 1, PanelSize: panel, MinPartition: minpart,
		CaptureGraph: true, Mode: mode, ExtraWorkspace: extraWS,
	})
	el := time.Since(t0)
	if err != nil {
		return nil, nil, el, err
	}
	return res.Graph, res.Stats, el, nil
}

// timeDC measures the wall time of one task-flow solve (no capture).
func timeDC(m testmat.Matrix, workers int) (time.Duration, *core.Stats, error) {
	n := m.N()
	d := append([]float64(nil), m.D...)
	e := append([]float64(nil), m.E...)
	q := make([]float64, n*n)
	panel, minpart := dcOptions(n)
	t0 := time.Now()
	res, err := core.SolveDC(n, d, e, q, n, &core.Options{
		Workers: workers, PanelSize: panel, MinPartition: minpart,
	})
	return time.Since(t0), res.Stats, err
}

// timeMRRR measures the wall time of one MRRR solve.
func timeMRRR(m testmat.Matrix, workers int) (time.Duration, error) {
	n := m.N()
	w := make([]float64, n)
	z := make([]float64, n*n)
	t0 := time.Now()
	err := mrrr.Solve(n, m.D, m.E, w, z, n, &mrrr.Options{Workers: workers})
	return time.Since(t0), err
}

// solveAccuracy solves with the given method and returns the paper's two
// accuracy metrics (orthogonality, residual).
func solveAccuracy(m testmat.Matrix, useMRRR bool) (orth, resid float64, err error) {
	n := m.N()
	d := append([]float64(nil), m.D...)
	e := append([]float64(nil), m.E...)
	z := make([]float64, n*n)
	if useMRRR {
		w := make([]float64, n)
		if err := mrrr.Solve(n, m.D, m.E, w, z, n, nil); err != nil {
			return 0, 0, err
		}
		copy(d, w)
	} else {
		panel, minpart := dcOptions(n)
		if _, err := core.SolveDC(n, d, e, z, n, &core.Options{PanelSize: panel, MinPartition: minpart}); err != nil {
			return 0, 0, err
		}
	}
	return accuracy(m, d, z)
}

func accuracy(m testmat.Matrix, lam, z []float64) (orth, resid float64, err error) {
	n := m.N()
	nrm := lapack.Dlanst('M', n, m.D, m.E)
	if nrm == 0 {
		nrm = 1
	}
	worstR := 0.0
	for j := 0; j < n; j++ {
		v := z[j*n : j*n+n]
		var s2 float64
		for i := 0; i < n; i++ {
			s := m.D[i] * v[i]
			if i > 0 {
				s += m.E[i-1] * v[i-1]
			}
			if i < n-1 {
				s += m.E[i] * v[i+1]
			}
			r := s - lam[j]*v[i]
			s2 += r * r
		}
		if s2 > worstR {
			worstR = s2
		}
	}
	resid = math.Sqrt(worstR) / (nrm * float64(n))
	worstO := 0.0
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			var s float64
			zi, zj := z[i*n:i*n+n], z[j*n:j*n+n]
			for k := 0; k < n; k++ {
				s += zi[k] * zj[k]
			}
			if i == j {
				s -= 1
			}
			if s < 0 {
				s = -s
			}
			if s > worstO {
				worstO = s
			}
		}
	}
	orth = worstO / float64(n)
	return orth, resid, nil
}

// alignDurations overwrites dst's task durations with src's, matching tasks
// by (class, label) identity. Tasks without a counterpart (e.g. barrier
// tasks) get zero duration. This lets two dependency structures of the same
// computation be simulated over identical measured costs.
func alignDurations(dst, src *quark.Graph) {
	m := make(map[string]time.Duration, len(src.Tasks))
	for _, t := range src.Tasks {
		m[t.Class+"|"+t.Label] = t.Duration()
	}
	for i := range dst.Tasks {
		ti := &dst.Tasks[i]
		if d, ok := m[ti.Class+"|"+ti.Label]; ok {
			ti.Start = 0
			ti.End = d
		}
		// tasks with no counterpart (barriers, redistribution) keep their
		// own measured duration
	}
}

// simulate is a small wrapper with the default two-socket bandwidth model
// (bw streams per socket, 8 workers per socket, as on the paper's machine).
func simulate(g *quark.Graph, workers int, bw float64) (*sched.Result, error) {
	return sched.Simulate(g, sched.Config{Workers: workers, StreamsPerSocket: bw, WorkersPerSocket: 8})
}
