package bench

import (
	"bytes"
	"strings"
	"testing"
)

func quickCfg(sizes ...int) *Config {
	var b bytes.Buffer
	return &Config{Sizes: sizes, Quick: true, Out: &b}
}

func TestTable1SlopesOrdered(t *testing.T) {
	if raceEnabled {
		// The race detector skews the fitted slopes: it multiplies the cost
		// of instrumented Go code (packing, copies) but not of the assembly
		// GEMM micro-kernel, so the cubic UpdateVect term no longer
		// dominates at these sizes and the log-log fit flattens.
		t.Skip("timing-slope fit is not meaningful under the race detector")
	}
	cfg := &Config{Sizes: []int{200, 400, 800}, Out: &bytes.Buffer{}}
	rows, slopes, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	// The cubic kernel must scale visibly faster than the linear one; with
	// small sizes the constants are noisy, so only the ordering is checked.
	if !(slopes["UpdateVect"] > slopes["ComputeDeflation"]) {
		t.Errorf("slopes not ordered: update=%v deflation=%v", slopes["UpdateVect"], slopes["ComputeDeflation"])
	}
	if slopes["UpdateVect"] < 1.8 {
		t.Errorf("UpdateVect slope %v too flat for a cubic kernel", slopes["UpdateVect"])
	}
}

func TestTable3Runs(t *testing.T) {
	cfg := &Config{Sizes: []int{150}, Types: []int{2, 4, 10, 12}, Out: &bytes.Buffer{}}
	rows, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows: %d", len(rows))
	}
	// type 2 is the near-total-deflation case
	for _, r := range rows {
		if r.Type == 2 && r.DeflationRatio < 0.8 {
			t.Errorf("type 2 deflation %v, want ~1", r.DeflationRatio)
		}
	}
}

func TestFig3TraceOrdering(t *testing.T) {
	var b bytes.Buffer
	cfg := &Config{Sizes: []int{400}, Workers: []int{16}, Out: &b}
	rows, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 optimization levels, got %d", len(rows))
	}
	// Each optimization level must not be slower than the previous.
	if rows[1].Makespan > rows[0].Makespan*1.05 {
		t.Errorf("(b) %v slower than (a) %v", rows[1].Makespan, rows[0].Makespan)
	}
	if rows[2].Makespan > rows[1].Makespan*1.05 {
		t.Errorf("(c) %v slower than (b) %v", rows[2].Makespan, rows[1].Makespan)
	}
	if !strings.Contains(b.String(), "legend") {
		t.Error("missing gantt output")
	}
}

func TestFig4Runs(t *testing.T) {
	cfg := &Config{Sizes: []int{300}, Workers: []int{8}, Out: &bytes.Buffer{}}
	tr, err := Fig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Makespan <= 0 || tr.Speedup < 1 {
		t.Errorf("trace: %+v", tr)
	}
}

func TestFig5ShapeHolds(t *testing.T) {
	cfg := &Config{Sizes: []int{500}, Workers: []int{1, 4, 16}, Types: []int{2, 4}, Out: &bytes.Buffer{}}
	rows, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byType := map[int]SpeedupRow{}
	for _, r := range rows {
		byType[r.Type] = r
		if r.Speedup[0] < 0.99 || r.Speedup[0] > 1.01 {
			t.Errorf("type %d: P=1 speedup %v", r.Type, r.Speedup[0])
		}
		for i := 1; i < len(r.Speedup); i++ {
			if r.Speedup[i] < r.Speedup[i-1]-0.25 {
				t.Errorf("type %d: speedup not (weakly) increasing: %v", r.Type, r.Speedup)
			}
		}
	}
	// High deflation (type 2, memory bound) must scale worse than low
	// deflation (type 4) at 16 workers — the paper's plateau.
	if byType[2].Speedup[2] >= byType[4].Speedup[2] {
		t.Errorf("expected type 2 plateau below type 4: %v vs %v",
			byType[2].Speedup[2], byType[4].Speedup[2])
	}
}

func TestFig6TaskFlowWins(t *testing.T) {
	cfg := &Config{Sizes: []int{500}, Types: []int{3, 4}, Workers: []int{16}, Out: &bytes.Buffer{}}
	rows, err := Fig6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Ratio < 1 {
			t.Errorf("type %d n=%d: task flow slower than fork/join model (ratio %v)", r.Type, r.N, r.Ratio)
		}
	}
}

func TestFig7TaskFlowWins(t *testing.T) {
	cfg := &Config{Sizes: []int{500}, Types: []int{4}, Workers: []int{16}, Out: &bytes.Buffer{}}
	rows, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Ratio < 0.95 {
			t.Errorf("type %d n=%d: task flow much slower than level-sync (ratio %v)", r.Type, r.N, r.Ratio)
		}
	}
}

func TestFig8Runs(t *testing.T) {
	cfg := &Config{Sizes: []int{200}, Types: []int{2, 10, 14}, Out: &bytes.Buffer{}}
	rows, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		if r.TimeDC <= 0 || r.TimeMR <= 0 {
			t.Errorf("non-positive times: %+v", r)
		}
	}
}

func TestFig9AccuracyShape(t *testing.T) {
	cfg := &Config{Sizes: []int{200}, Types: []int{3, 4, 10}, Out: &bytes.Buffer{}}
	rows, err := Fig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.OrthDC > 1e-13 || r.ResidDC > 1e-13 {
			t.Errorf("type %d: DC accuracy out of range: %+v", r.Type, r)
		}
		if r.OrthMR > 1e-10 || r.ResidMR > 1e-10 {
			t.Errorf("type %d: MRRR accuracy out of range: %+v", r.Type, r)
		}
	}
}

func TestFig10Runs(t *testing.T) {
	cfg := &Config{Sizes: []int{150}, Out: &bytes.Buffer{}}
	rows, err := Fig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 6 {
		t.Fatalf("appset rows: %d", len(rows))
	}
	for _, r := range rows {
		if r.OrthDC > 1e-12 {
			t.Errorf("%s: DC orthogonality %v", r.Name, r.OrthDC)
		}
	}
}

func TestAblations(t *testing.T) {
	cfg := &Config{Sizes: []int{300}, Workers: []int{8}, Out: &bytes.Buffer{}}
	rows, err := AblatePanelSize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatalf("nb rows: %d", len(rows))
	}
	// the largest panel size serializes each merge: worst simulated speedup
	if rows[len(rows)-1].Speedup > rows[1].Speedup {
		t.Errorf("nb=n should not beat small panels: %+v", rows)
	}
	if _, err := AblateMinPartition(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := AblateExtraWorkspace(cfg); err != nil {
		t.Fatal(err)
	}
	if err := AblateGatherv(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTheoryErrorModel(t *testing.T) {
	cfg := &Config{Sizes: []int{100, 200, 400}, Out: &bytes.Buffer{}}
	rows, slopes, err := Theory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	// D&C must be the more accurate method at every size and its error must
	// grow more slowly than MRRR's (the paper's O(√n·ε) vs O(n·ε) claim).
	for _, r := range rows {
		if r.OrthDC >= r.OrthMR {
			t.Errorf("n=%d: DC error %v not below MRRR %v", r.N, r.OrthDC, r.OrthMR)
		}
	}
	if !(slopes["DC"] < slopes["MRRR"]+0.5) {
		t.Errorf("DC slope %v should be below MRRR %v", slopes["DC"], slopes["MRRR"])
	}
}
