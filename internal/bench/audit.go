package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"tridiag/eigen"
)

// AuditPoint is one worker count's silent-error-defense cost measurement.
// The acceptance comparison is OnMedianMS (shipping default: ABFT plus the
// result audit) against OffMedianMS (audit disabled, ABFT still on) — the
// "always-on audit overhead" bar is ≤5%. BareMedianMS additionally switches
// the ABFT checksums and merge invariants off, so On vs Bare is the cost of
// the entire silent-error defense.
type AuditPoint struct {
	Workers      int     `json:"workers"`
	OnMedianMS   float64 `json:"audit_on_median_ms"`
	OffMedianMS  float64 `json:"audit_off_median_ms"`
	BareMedianMS float64 `json:"bare_median_ms"`
	OverheadPct  float64 `json:"overhead_pct"`
	DefensePct   float64 `json:"defense_pct"`
}

// AuditRecord is the machine-readable output of `dcbench audit`: the
// defense-overhead points plus the count of defended solves whose served
// result carried the Audited flag (so the record proves the defense was
// actually live, not silently disabled, when the overhead was measured).
type AuditRecord struct {
	N       int          `json:"n"`
	Reps    int          `json:"reps"`
	Audited int          `json:"audited_solves"`
	Points  []AuditPoint `json:"points"`
}

// Audit measures what the always-on result audit costs on the paper's
// task-flow acceptance point (n=2000 random tridiagonal, medians over reps,
// workers 1/4/8): round-robin audited/audit-disabled/bare solves of the
// same matrix, so allocator and frequency drift hit every column equally.
// The acceptance bar is audit overhead ≤ 5% at every worker count.
func Audit(cfg *Config) (*AuditRecord, error) {
	n := 2000
	reps := 9
	if cfg.Quick {
		n, reps = 500, 3
	}
	if len(cfg.Sizes) > 0 {
		n = cfg.Sizes[0]
	}
	workers := cfg.Workers
	if len(workers) == 0 {
		workers = []int{1, 4, 8}
	}

	rng := rand.New(rand.NewSource(cfg.seed()))
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	for i := range e {
		e[i] = rng.NormFloat64()
	}
	tri := eigen.Tridiagonal{D: d, E: e}

	rec := &AuditRecord{N: n, Reps: reps}
	fmt.Fprintf(cfg.out(), "silent-error defense overhead, n=%d, median of %d:\n", n, reps)
	for _, w := range workers {
		// Warm the scratch pools at this worker count so the first timed
		// column doesn't absorb the allocation spike.
		if _, err := eigen.Solve(tri, &eigen.Options{Workers: w}); err != nil {
			return nil, fmt.Errorf("audit bench n=%d w=%d (warmup): %w", n, w, err)
		}
		onTimes := make([]float64, 0, reps)
		offTimes := make([]float64, 0, reps)
		bareTimes := make([]float64, 0, reps)
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			res, err := eigen.Solve(tri, &eigen.Options{Workers: w})
			if err != nil {
				return nil, fmt.Errorf("audit bench n=%d w=%d (defended): %w", n, w, err)
			}
			onTimes = append(onTimes, float64(time.Since(t0).Microseconds())/1000)
			if !res.Stats.Audited {
				return nil, fmt.Errorf("audit bench n=%d w=%d: defended solve was not audited", n, w)
			}
			rec.Audited++

			t0 = time.Now()
			if _, err := eigen.Solve(tri, &eigen.Options{
				Workers: w,
				Audit:   eigen.AuditOptions{Disable: true},
			}); err != nil {
				return nil, fmt.Errorf("audit bench n=%d w=%d (audit off): %w", n, w, err)
			}
			offTimes = append(offTimes, float64(time.Since(t0).Microseconds())/1000)

			t0 = time.Now()
			if _, err := eigen.Solve(tri, &eigen.Options{
				Workers:     w,
				DisableABFT: true,
				Audit:       eigen.AuditOptions{Disable: true},
			}); err != nil {
				return nil, fmt.Errorf("audit bench n=%d w=%d (bare): %w", n, w, err)
			}
			bareTimes = append(bareTimes, float64(time.Since(t0).Microseconds())/1000)
		}
		// Each rep's three solves run back to back, so the per-rep ratios are
		// paired samples: frequency and co-tenant drift that spans a rep
		// cancels out of the ratio even when it moves the absolute medians.
		// The overhead columns are medians of those paired ratios.
		overheads := make([]float64, reps)
		defenses := make([]float64, reps)
		for r := 0; r < reps; r++ {
			overheads[r] = 100 * (onTimes[r] - offTimes[r]) / offTimes[r]
			defenses[r] = 100 * (onTimes[r] - bareTimes[r]) / bareTimes[r]
		}
		sort.Float64s(onTimes)
		sort.Float64s(offTimes)
		sort.Float64s(bareTimes)
		sort.Float64s(overheads)
		sort.Float64s(defenses)
		pt := AuditPoint{
			Workers:      w,
			OnMedianMS:   onTimes[len(onTimes)/2],
			OffMedianMS:  offTimes[len(offTimes)/2],
			BareMedianMS: bareTimes[len(bareTimes)/2],
			OverheadPct:  overheads[len(overheads)/2],
			DefensePct:   defenses[len(defenses)/2],
		}
		rec.Points = append(rec.Points, pt)
		fmt.Fprintf(cfg.out(), "  W%-2d  defended %8.1f ms   audit-off %8.1f ms   bare %8.1f ms   audit %+.1f%%   defense %+.1f%%\n",
			w, pt.OnMedianMS, pt.OffMedianMS, pt.BareMedianMS, pt.OverheadPct, pt.DefensePct)
	}
	fmt.Fprintf(cfg.out(), "defense activity over defended runs: audited=%d\n", rec.Audited)
	return rec, nil
}

// MergeJSON merges the record into path under the "audit" key, preserving
// any other keys already in the file.
func (r *AuditRecord) MergeJSON(path string) error {
	doc := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("existing %s is not a JSON object: %w", path, err)
		}
	}
	doc["audit"] = r
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
