package bench

import (
	"fmt"
	"time"

	"tridiag/internal/core"
	"tridiag/internal/quark"
	"tridiag/internal/testmat"
)

// AblationRow is one configuration's outcome.
type AblationRow struct {
	Param    string
	Value    int
	Tasks    int
	Edges    int
	Makespan float64 // simulated at P workers
	Speedup  float64 // vs one worker on the same graph
	WallTime float64 // measured single-worker seconds
	CritPath float64
}

// captureWith captures a task-flow run with explicit solver options.
func captureWith(m testmat.Matrix, panel, minpart int, extraWS bool) (*quark.Graph, time.Duration, error) {
	n := m.N()
	d := append([]float64(nil), m.D...)
	e := append([]float64(nil), m.E...)
	q := make([]float64, n*n)
	t0 := time.Now()
	res, err := core.SolveDC(n, d, e, q, n, &core.Options{
		Workers: 1, PanelSize: panel, MinPartition: minpart,
		CaptureGraph: true, ExtraWorkspace: extraWS,
	})
	if err != nil {
		return nil, 0, err
	}
	return res.Graph, time.Since(t0), nil
}

func ablateRow(param string, value int, g *quark.Graph, wall time.Duration, workers int, bw float64) (AblationRow, error) {
	rp, err := simulate(g, workers, bw)
	if err != nil {
		return AblationRow{}, err
	}
	r1, err := simulate(g, 1, bw)
	if err != nil {
		return AblationRow{}, err
	}
	cp, _ := g.CriticalPath()
	return AblationRow{
		Param: param, Value: value,
		Tasks: len(g.Tasks), Edges: len(g.Edges),
		Makespan: rp.Makespan, Speedup: r1.Makespan / rp.Makespan,
		WallTime: wall.Seconds(), CritPath: cp,
	}, nil
}

// AblatePanelSize sweeps the task panel width nb (the paper's granularity
// knob: "nb has to be tuned to take advantage of ... the number of cores ...
// and the efficiency of the kernel itself").
func AblatePanelSize(cfg *Config) ([]AblationRow, error) {
	n := 1000
	if s := cfg.sizes(nil); len(s) > 0 {
		n = s[0]
	} else if cfg.Quick {
		n = 500
	}
	workers := 16
	if len(cfg.Workers) > 0 {
		workers = cfg.Workers[len(cfg.Workers)-1]
	}
	m := rampMatrix(n)
	w := cfg.out()
	fmt.Fprintf(w, "Ablation: panel size nb (n=%d, P=%d simulated, minpart=%d)\n", n, workers, n/8)
	fmt.Fprintf(w, "%8s %8s %8s %12s %8s %12s\n", "nb", "tasks", "edges", "makespan", "speedup", "crit.path")
	var rows []AblationRow
	for _, nb := range []int{16, 32, 64, 128, 256, n} {
		g, wall, err := captureWith(m, nb, n/8, false)
		if err != nil {
			return nil, err
		}
		row, err := ablateRow("nb", nb, g, wall, workers, cfg.bandwidth())
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%8d %8d %8d %12.4f %8.2f %12.4f\n",
			nb, row.Tasks, row.Edges, row.Makespan, row.Speedup, row.CritPath)
	}
	return rows, nil
}

// AblateMinPartition sweeps the leaf cutoff: small leaves deepen the tree
// (more merge overhead), large leaves grow the cubic Dsteqr leaf cost.
func AblateMinPartition(cfg *Config) ([]AblationRow, error) {
	n := 1000
	if s := cfg.sizes(nil); len(s) > 0 {
		n = s[0]
	} else if cfg.Quick {
		n = 500
	}
	workers := 16
	if len(cfg.Workers) > 0 {
		workers = cfg.Workers[len(cfg.Workers)-1]
	}
	m := rampMatrix(n)
	w := cfg.out()
	fmt.Fprintf(w, "Ablation: minimal partition size (n=%d, P=%d simulated, nb=%d)\n", n, workers, max(16, n/8))
	fmt.Fprintf(w, "%8s %8s %8s %12s %8s %12s %12s\n", "minpart", "tasks", "edges", "makespan", "speedup", "wall(1w)", "crit.path")
	var rows []AblationRow
	for _, mp := range []int{25, 50, 100, 200, 400} {
		if mp >= n {
			continue
		}
		g, wall, err := captureWith(m, max(16, n/8), mp, false)
		if err != nil {
			return nil, err
		}
		row, err := ablateRow("minpart", mp, g, wall, workers, cfg.bandwidth())
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%8d %8d %8d %12.4f %8.2f %12.4f %12.4f\n",
			mp, row.Tasks, row.Edges, row.Makespan, row.Speedup, row.WallTime, row.CritPath)
	}
	return rows, nil
}

// AblateExtraWorkspace toggles the paper's extra-workspace option, which
// lets PermuteV overlap LAED4 and CopyBack overlap ComputeVect. The paper:
// "the effect of this option can be seen on a machine with large number of
// cores".
func AblateExtraWorkspace(cfg *Config) ([]AblationRow, error) {
	n := 1000
	if s := cfg.sizes(nil); len(s) > 0 {
		n = s[0]
	} else if cfg.Quick {
		n = 500
	}
	m := rampMatrix(n)
	w := cfg.out()
	fmt.Fprintf(w, "Ablation: extra workspace (n=%d)\n", n)
	fmt.Fprintf(w, "%8s %12s %12s %12s\n", "extraWS", "P=4", "P=16", "P=64")
	var rows []AblationRow
	for _, extra := range []bool{false, true} {
		g, wall, err := captureWith(m, max(16, n/16), n/8, extra)
		if err != nil {
			return nil, err
		}
		val := 0
		if extra {
			val = 1
		}
		var mk [3]float64
		for i, p := range []int{4, 16, 64} {
			r, err := simulate(g, p, cfg.bandwidth())
			if err != nil {
				return nil, err
			}
			mk[i] = r.Makespan
		}
		row, err := ablateRow("extraWS", val, g, wall, 16, cfg.bandwidth())
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%8v %12.4f %12.4f %12.4f\n", extra, mk[0], mk[1], mk[2])
	}
	return rows, nil
}

// AblateGatherv reports the dependency-count statistics that motivate the
// GATHERV mode: per-task declared dependencies stay constant while join
// tasks absorb the group in-degree.
func AblateGatherv(cfg *Config) error {
	n := 1000
	if s := cfg.sizes(nil); len(s) > 0 {
		n = s[0]
	} else if cfg.Quick {
		n = 500
	}
	m := rampMatrix(n)
	g, _, err := captureWith(m, max(16, n/16), n/8, false)
	if err != nil {
		return err
	}
	indeg := map[int]int{}
	for _, e := range g.Edges {
		indeg[e[1]]++
	}
	maxIn := map[string]int{}
	sumIn := map[string]int{}
	cnt := map[string]int{}
	for _, t := range g.Tasks {
		if indeg[t.ID] > maxIn[t.Class] {
			maxIn[t.Class] = indeg[t.ID]
		}
		sumIn[t.Class] += indeg[t.ID]
		cnt[t.Class]++
	}
	w := cfg.out()
	fmt.Fprintf(w, "Gatherv dependency profile (n=%d, %d tasks, %d edges)\n", n, len(g.Tasks), len(g.Edges))
	fmt.Fprintf(w, "%-20s %8s %10s %8s\n", "class", "tasks", "avg indeg", "max")
	for _, c := range []string{"PermuteV", "LAED4", "ComputeLocalW", "ComputeVect", "UpdateVect", "CopyBackDeflated", "ComputeDeflation", "ReduceW", "Dlamrg"} {
		if cnt[c] == 0 {
			continue
		}
		fmt.Fprintf(w, "%-20s %8d %10.1f %8d\n", c, cnt[c], float64(sumIn[c])/float64(cnt[c]), maxIn[c])
	}
	fmt.Fprintf(w, "panel tasks keep O(1) average in-degree; the joins (ComputeDeflation,\nReduceW, Dlamrg) absorb the Gatherv group edges, as in the paper.\n")
	return nil
}

// Ablate runs all ablation studies.
func Ablate(cfg *Config) error {
	if _, err := AblatePanelSize(cfg); err != nil {
		return err
	}
	fmt.Fprintln(cfg.out())
	if _, err := AblateMinPartition(cfg); err != nil {
		return err
	}
	fmt.Fprintln(cfg.out())
	if _, err := AblateExtraWorkspace(cfg); err != nil {
		return err
	}
	fmt.Fprintln(cfg.out())
	return AblateGatherv(cfg)
}
