package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"tridiag/internal/core"
	"tridiag/internal/pool"
)

// ValuesOnlyPoint compares one (n, workers) cell of the eigenvalue-only fast
// lane against the full task-flow solve: wall-time medians, their ratio, and
// the peak pooled workspace each lane touched (sampled from pool.InUseBytes
// at every executed task via the Progress heartbeat). The workspace ratio is
// the headline number — the values-only lane replaces the O(n²) eigenvector
// state with O(n·depth) carrier rows.
type ValuesOnlyPoint struct {
	N              int     `json:"n"`
	Workers        int     `json:"workers"`
	FullMedianMS   float64 `json:"full_median_ms"`
	VOMedianMS     float64 `json:"values_only_median_ms"`
	Speedup        float64 `json:"speedup"`
	FullPeakPoolMB float64 `json:"full_peak_pool_mb"`
	VOPeakPoolMB   float64 `json:"values_only_peak_pool_mb"`
	WorkspaceRatio float64 `json:"workspace_ratio"`
}

// ValuesOnlyRecord is the machine-readable output of
// `dcbench perf -values-only`.
type ValuesOnlyRecord struct {
	Reps   int               `json:"reps"`
	Points []ValuesOnlyPoint `json:"points"`
}

// poolPeak tracks the high-water mark of pool.InUseBytes across a solve; the
// Progress callback samples after every executed task, so the peak reflects
// the pooled footprint the scheduler actually held, not just the admission
// estimate.
type poolPeak struct{ max atomic.Int64 }

func (p *poolPeak) sample() {
	v := pool.InUseBytes()
	for {
		cur := p.max.Load()
		if v <= cur || p.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// timedSolve runs one task-flow solve and returns (wall ms, peak pooled MB).
// valuesOnly selects the fast lane; q/ldq are ignored in that case.
func timedSolve(n int, d0, e0, q []float64, w int, valuesOnly bool) (float64, float64, error) {
	d := append([]float64(nil), d0...)
	e := append([]float64(nil), e0...)
	var peak poolPeak
	opts := &core.Options{Workers: w, Progress: peak.sample}
	ldq := n
	if valuesOnly {
		opts.ValuesOnly = true
		q, ldq = nil, 0
	}
	t0 := time.Now()
	_, err := core.SolveDC(n, d, e, q, ldq, opts)
	if err != nil {
		return 0, 0, err
	}
	ms := float64(time.Since(t0).Microseconds()) / 1000
	return ms, float64(peak.max.Load()) / (1 << 20), nil
}

// ValuesOnly measures the eigenvalue-only fast lane: for each matrix order
// and worker count it solves the same random tridiagonal with the full
// task-flow (eigenvectors accumulated into an n×n block) and with
// Options.ValuesOnly (carrier rows only, no eigenvector tasks), reporting
// median wall time and peak pooled workspace for both.
func ValuesOnly(cfg *Config) (*ValuesOnlyRecord, error) {
	sizes := cfg.sizes([]int{512, 2000, 4000})
	workers := cfg.Workers
	if len(workers) == 0 {
		workers = []int{1, 4, 8}
	}
	reps := 3
	if cfg.Quick {
		reps = 1
	}

	rec := &ValuesOnlyRecord{Reps: reps}
	fmt.Fprintf(cfg.out(), "values-only lane vs full task-flow solve, median of %d:\n", reps)
	fmt.Fprintf(cfg.out(), "      n   W    full ms      vo ms   speedup   full pool MB   vo pool MB   ws ratio\n")
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(cfg.seed() + int64(n)))
		d0 := make([]float64, n)
		e0 := make([]float64, n-1)
		for i := range d0 {
			d0[i] = rng.NormFloat64()
		}
		for i := range e0 {
			e0[i] = rng.NormFloat64()
		}
		q := make([]float64, n*n)
		for _, w := range workers {
			var fullT, voT []float64
			var fullPeak, voPeak float64
			for r := 0; r < reps; r++ {
				ms, mb, err := timedSolve(n, d0, e0, q, w, false)
				if err != nil {
					return nil, fmt.Errorf("values-only bench: full n=%d w=%d: %w", n, w, err)
				}
				fullT = append(fullT, ms)
				fullPeak = max(fullPeak, mb)
				ms, mb, err = timedSolve(n, d0, e0, nil, w, true)
				if err != nil {
					return nil, fmt.Errorf("values-only bench: vo n=%d w=%d: %w", n, w, err)
				}
				voT = append(voT, ms)
				voPeak = max(voPeak, mb)
			}
			sort.Float64s(fullT)
			sort.Float64s(voT)
			pt := ValuesOnlyPoint{
				N:              n,
				Workers:        w,
				FullMedianMS:   fullT[len(fullT)/2],
				VOMedianMS:     voT[len(voT)/2],
				FullPeakPoolMB: fullPeak,
				VOPeakPoolMB:   voPeak,
			}
			pt.Speedup = ratio(pt.FullMedianMS, pt.VOMedianMS)
			pt.WorkspaceRatio = ratio(pt.VOPeakPoolMB, pt.FullPeakPoolMB)
			rec.Points = append(rec.Points, pt)
			fmt.Fprintf(cfg.out(), "  %5d  %2d  %9.1f  %9.1f  %7.2fx  %13.1f  %11.2f  %9.3f\n",
				n, w, pt.FullMedianMS, pt.VOMedianMS, pt.Speedup,
				pt.FullPeakPoolMB, pt.VOPeakPoolMB, pt.WorkspaceRatio)
		}
	}
	return rec, nil
}

// MergeJSON merges the record into path under the "values_only" key,
// preserving any other keys already in the file.
func (r *ValuesOnlyRecord) MergeJSON(path string) error {
	doc := map[string]any{}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("existing %s is not a JSON object: %w", path, err)
		}
	}
	doc["values_only"] = r
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
