package bench

import (
	"fmt"
	"math/rand"

	"tridiag/internal/core"
	"tridiag/internal/quark"
	"tridiag/internal/sched"
	"tridiag/internal/testmat"
)

// ---------------------------------------------------------------- Fig 5

// SpeedupRow is the simulated scalability curve for one matrix type.
type SpeedupRow struct {
	Type      int
	Deflation float64
	Workers   []int
	Speedup   []float64
}

// Fig5 reproduces the scalability study of Figure 5: speedup of the
// task-flow solver from 1 to 16 workers for the three deflation regimes
// (paper types 2 ≈100%, 3 ≈50%, 4 ≈20% deflation). Speedups come from the
// replay simulator with the bandwidth cap on memory-bound kernels, which
// produces the paper's plateau for the high-deflation (memory-bound) case.
func Fig5(cfg *Config) ([]SpeedupRow, error) {
	n := 1500
	if s := cfg.sizes(nil); len(s) > 0 {
		n = s[0]
	} else if cfg.Quick {
		n = 600
	}
	workers := cfg.Workers
	if len(workers) == 0 {
		workers = []int{1, 2, 4, 8, 12, 16}
	}
	w := cfg.out()
	var rows []SpeedupRow
	fmt.Fprintf(w, "Figure 5: simulated speedup vs workers (n=%d, bandwidth cap %.0f streams)\n", n, cfg.bandwidth())
	fmt.Fprintf(w, "%-6s %10s", "type", "deflation")
	for _, p := range workers {
		fmt.Fprintf(w, " %7s", fmt.Sprintf("P=%d", p))
	}
	fmt.Fprintln(w)
	for _, typ := range cfg.types([]int{2, 3, 4}) {
		m, err := matrix(typ, n, cfg.seed())
		if err != nil {
			return nil, err
		}
		g, st, _, err := captureRun(m, core.ModeTaskFlow, false)
		if err != nil {
			return nil, err
		}
		curve, err := sched.SpeedupCurve(g, workers, cfg.bandwidth())
		if err != nil {
			return nil, err
		}
		row := SpeedupRow{Type: typ, Deflation: st.DeflationRatio(), Workers: workers, Speedup: curve}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-6d %9.1f%%", typ, 100*row.Deflation)
		for _, s := range curve {
			fmt.Fprintf(w, " %7.2f", s)
		}
		fmt.Fprintln(w)
	}
	return rows, nil
}

// ---------------------------------------------------------------- Fig 6 & 7

// RatioRow is one speedup-over-baseline measurement.
type RatioRow struct {
	Type      int
	N         int
	Deflation float64
	Ratio     float64 // t_baseline / t_taskflow (>1: task flow wins)
}

// Fig6 reproduces Figure 6: speedup of the task-flow solver over the
// fork/join model of LAPACK DSTEDC on a multithreaded BLAS. Both run the
// same measured task graph on P simulated workers; only the dependency
// structure differs.
func Fig6(cfg *Config) ([]RatioRow, error) {
	return figRatio(cfg, "Figure 6: t_MKL-LAPACK-model / t_task-flow (P=%d simulated)",
		func(g *quark.Graph) *quark.Graph { return sched.ForkJoinGraph(g, sched.ParallelBLASClasses) })
}

// Fig7 reproduces Figure 7: speedup over the level-synchronous execution of
// ScaLAPACK's PDSTEDC (parallel subproblems and parallel merge kernels, but
// a barrier between tree levels).
func Fig7(cfg *Config) ([]RatioRow, error) {
	return figRatioModes(cfg, "Figure 7: t_ScaLAPACK-model / t_task-flow (P=%d simulated)")
}

func figRatio(cfg *Config, header string, transform func(*quark.Graph) *quark.Graph) ([]RatioRow, error) {
	sizes := cfg.sizes([]int{500, 1000, 1500, 2000})
	workers := 16
	if len(cfg.Workers) > 0 {
		workers = cfg.Workers[len(cfg.Workers)-1]
	}
	w := cfg.out()
	fmt.Fprintf(w, header+"\n", workers)
	fmt.Fprintf(w, "%-6s %8s %10s %10s\n", "type", "n", "deflation", "ratio")
	var rows []RatioRow
	for _, typ := range cfg.types([]int{2, 3, 4}) {
		for _, n := range sizes {
			m, err := matrix(typ, n, cfg.seed())
			if err != nil {
				return nil, err
			}
			g, st, _, err := captureRun(m, core.ModeTaskFlow, false)
			if err != nil {
				return nil, err
			}
			base, err := simulate(transform(g), workers, cfg.bandwidth())
			if err != nil {
				return nil, err
			}
			tf, err := simulate(g, workers, cfg.bandwidth())
			if err != nil {
				return nil, err
			}
			row := RatioRow{Type: typ, N: n, Deflation: st.DeflationRatio(), Ratio: base.Makespan / tf.Makespan}
			rows = append(rows, row)
			fmt.Fprintf(w, "%-6d %8d %9.1f%% %10.2f\n", typ, n, 100*row.Deflation, row.Ratio)
		}
	}
	return rows, nil
}

// figRatioModes compares the task-flow capture against a level-synchronous
// capture of the same problem (real barrier tasks in the graph).
func figRatioModes(cfg *Config, header string) ([]RatioRow, error) {
	sizes := cfg.sizes([]int{500, 1000, 1500, 2000})
	workers := 16
	if len(cfg.Workers) > 0 {
		workers = cfg.Workers[len(cfg.Workers)-1]
	}
	w := cfg.out()
	fmt.Fprintf(w, header+"\n", workers)
	fmt.Fprintf(w, "%-6s %8s %10s %10s\n", "type", "n", "deflation", "ratio")
	var rows []RatioRow
	for _, typ := range cfg.types([]int{2, 3, 4}) {
		for _, n := range sizes {
			m, err := matrix(typ, n, cfg.seed())
			if err != nil {
				return nil, err
			}
			gTF, st, _, err := captureRun(m, core.ModeTaskFlow, false)
			if err != nil {
				return nil, err
			}
			gLS, _, _, err := captureRun(m, core.ModeScaLAPACK, false)
			if err != nil {
				return nil, err
			}
			// Both schedules must replay the SAME measured durations; the
			// level-sync capture is a separate (cache-warm) run, so copy the
			// task-flow run's timings onto it by task identity.
			alignDurations(gLS, gTF)
			base, err := simulate(gLS, workers, cfg.bandwidth())
			if err != nil {
				return nil, err
			}
			tf, err := simulate(gTF, workers, cfg.bandwidth())
			if err != nil {
				return nil, err
			}
			row := RatioRow{Type: typ, N: n, Deflation: st.DeflationRatio(), Ratio: base.Makespan / tf.Makespan}
			rows = append(rows, row)
			fmt.Fprintf(w, "%-6d %8d %9.1f%% %10.2f\n", typ, n, 100*row.Deflation, row.Ratio)
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------- Fig 8

// Fig8Row compares the MRRR and D&C wall times for one matrix.
type Fig8Row struct {
	Type    int
	N       int
	TimeDC  float64 // seconds, measured
	TimeMR  float64
	RatioMR float64 // t_MRRR / t_DC (>1: D&C faster)
}

// Fig8 reproduces Figure 8: time(MR³)/time(D&C) across all fifteen Table III
// types and a size sweep. Wall times are measured on this host (both solvers
// with the same worker budget); the matrix-dependent crossover is the shape
// under test.
func Fig8(cfg *Config) ([]Fig8Row, error) {
	sizes := cfg.sizes([]int{400, 800})
	w := cfg.out()
	fmt.Fprintf(w, "Figure 8: t_MRRR / t_DC, measured wall time\n")
	fmt.Fprintf(w, "%-6s %8s %12s %12s %10s\n", "type", "n", "t_DC (ms)", "t_MRRR (ms)", "ratio")
	var rows []Fig8Row
	for _, typ := range cfg.types([]int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}) {
		for _, n := range sizes {
			m, err := matrix(typ, n, cfg.seed())
			if err != nil {
				return nil, err
			}
			tDC, _, err := timeDC(m, 0)
			if err != nil {
				return nil, fmt.Errorf("type %d n %d DC: %w", typ, n, err)
			}
			tMR, err := timeMRRR(m, 0)
			if err != nil {
				return nil, fmt.Errorf("type %d n %d MRRR: %w", typ, n, err)
			}
			row := Fig8Row{Type: typ, N: n, TimeDC: tDC.Seconds(), TimeMR: tMR.Seconds(),
				RatioMR: tMR.Seconds() / tDC.Seconds()}
			rows = append(rows, row)
			fmt.Fprintf(w, "%-6d %8d %12.1f %12.1f %10.2f\n",
				typ, n, 1000*row.TimeDC, 1000*row.TimeMR, row.RatioMR)
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------- Fig 9

// AccRow holds the Figure 9 accuracy metrics for one matrix.
type AccRow struct {
	Type             int
	N                int
	OrthDC, OrthMR   float64
	ResidDC, ResidMR float64
}

// Fig9 reproduces Figure 9: eigenvector orthogonality ‖I-VVᵀ‖/n (9a) and
// decomposition residual ‖T-VΛVᵀ‖/(‖T‖n) (9b) for D&C and MRRR across the
// matrix suite. The expected shape: D&C one to two digits more accurate.
func Fig9(cfg *Config) ([]AccRow, error) {
	sizes := cfg.sizes([]int{250, 500, 750})
	w := cfg.out()
	fmt.Fprintf(w, "Figure 9: accuracy (orthogonality and residual)\n")
	fmt.Fprintf(w, "%-6s %7s %12s %12s %12s %12s\n", "type", "n", "orth DC", "orth MRRR", "resid DC", "resid MRRR")
	var rows []AccRow
	for _, typ := range cfg.types([]int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}) {
		for _, n := range sizes {
			m, err := matrix(typ, n, cfg.seed())
			if err != nil {
				return nil, err
			}
			oDC, rDC, err := solveAccuracy(m, false)
			if err != nil {
				return nil, fmt.Errorf("type %d n %d DC: %w", typ, n, err)
			}
			oMR, rMR, err := solveAccuracy(m, true)
			if err != nil {
				return nil, fmt.Errorf("type %d n %d MRRR: %w", typ, n, err)
			}
			row := AccRow{Type: typ, N: n, OrthDC: oDC, OrthMR: oMR, ResidDC: rDC, ResidMR: rMR}
			rows = append(rows, row)
			fmt.Fprintf(w, "%-6d %7d %12.2e %12.2e %12.2e %12.2e\n", typ, n, oDC, oMR, rDC, rMR)
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------- Fig 10

// Fig10Row is one application-set measurement.
type Fig10Row struct {
	Name           string
	N              int
	TimeDC, TimeMR float64
	OrthDC, OrthMR float64
}

// Fig10 reproduces Figure 10 on the application-like matrix set that stands
// in for the LAPACK stetester application files (DESIGN.md §2): wall time of
// D&C vs MRRR with accuracy alongside.
func Fig10(cfg *Config) ([]Fig10Row, error) {
	n := 500
	if s := cfg.sizes(nil); len(s) > 0 {
		n = s[0]
	} else if cfg.Quick {
		n = 250
	}
	w := cfg.out()
	set := testmat.AppSet(n, rand.New(rand.NewSource(cfg.seed())))
	fmt.Fprintf(w, "Figure 10: application matrix set (n≈%d)\n", n)
	fmt.Fprintf(w, "%-18s %6s %12s %12s %12s %12s\n", "matrix", "n", "t_DC (ms)", "t_MRRR (ms)", "orth DC", "orth MRRR")
	var rows []Fig10Row
	for _, m := range set {
		tDC, _, err := timeDC(m, 0)
		if err != nil {
			return nil, fmt.Errorf("%s DC: %w", m.Name, err)
		}
		tMR, err := timeMRRR(m, 0)
		if err != nil {
			return nil, fmt.Errorf("%s MRRR: %w", m.Name, err)
		}
		oDC, _, err := solveAccuracy(m, false)
		if err != nil {
			return nil, err
		}
		oMR, _, err := solveAccuracy(m, true)
		if err != nil {
			return nil, err
		}
		row := Fig10Row{Name: m.Name, N: m.N(), TimeDC: tDC.Seconds(), TimeMR: tMR.Seconds(), OrthDC: oDC, OrthMR: oMR}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-18s %6d %12.1f %12.1f %12.2e %12.2e\n",
			m.Name, m.N(), 1000*row.TimeDC, 1000*row.TimeMR, row.OrthDC, row.OrthMR)
	}
	return rows, nil
}
