//go:build amd64

package blas

// cpuidProbe and xgetbvProbe are implemented in ukernel_amd64.s.
func cpuidProbe(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
func xgetbvProbe() (eax, edx uint32)

// ukernel8x4avx is the AVX2+FMA register micro-kernel (ukernel_amd64.s):
// C(0:8, 0:4) += alpha * Ap·Bp over kc packed k steps. Only called when
// haveAsmKernel is true and the tile is full (edges go through the generic
// kernel on zero-padded panels).
//
//go:noescape
func ukernel8x4avx(kc int, ap, bp []float64, c []float64, ldc int, alpha float64)

// haveAsmKernel reports whether the AVX2+FMA micro-kernel may be used. The
// blocked GEMM path is only profitable with it; without it the
// register-blocked kernels in level3.go already sit at the scalar FP-port
// ceiling, so Dgemm keeps routing to them.
var haveAsmKernel = detectAVX2FMA()

// detectAVX2FMA checks CPUID for AVX2 and FMA support and XGETBV for OS
// ymm-state saving (the standard AVX usability test).
func detectAVX2FMA() bool {
	maxID, _, _, _ := cpuidProbe(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidProbe(1, 0)
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
	)
	if ecx1&osxsave == 0 || ecx1&fma == 0 {
		return false
	}
	if xa, _ := xgetbvProbe(); xa&6 != 6 {
		return false
	}
	_, ebx7, _, _ := cpuidProbe(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}
