package blas

import (
	"fmt"
	"math"

	"tridiag/internal/pool"
	"tridiag/internal/simd"
)

// Algorithm-based fault tolerance for the packed GEMM path (DESIGN.md §18).
//
// PackAChecked appends two checksum rows to the packed operand: the plain
// column sums e_l = Σ_i A[i,l] and the absolute column sums ê_l = Σ_i |A[i,l]|.
// After a C = alpha·A·B panel multiply, each output column j must satisfy
//
//	Σ_i C[i,j] ≈ alpha · Σ_l e_l · B[l,j]
//
// to within the rounding-error bound derived from the absolute sums, so a
// single flipped bit anywhere in the multiply's data path (packed A, streamed
// B, or the written C panel) breaks the identity. Verification costs
// O(m·n + k·n) against the multiply's O(m·n·k) work.

// abftTolFactor scales the rounding-error bound of the checksum identity.
// The summation chains on the two sides have length k and m respectively, so
// the defect of an uncorrupted multiply is bounded by ~(k+m)·eps times the
// absolute-value mass of the column; the factor covers the constant and the
// FMA/reassociation slack of the blocked kernels. Calibrated against the
// pathological suite (Wilkinson, glued, ×1e±300, clustered): zero false
// positives with the factor at 8; a bit 57 exponent flip overshoots the
// bound by ~2^32.
const abftTolFactor = 8.0

// ChecksumError reports a failed ABFT checksum verification: the computed
// column sum of one output panel column disagrees with the checksum-row
// prediction beyond the rounding bound. It is classified as a transient
// corruption so the task-retry and server-retry ladders recompute instead of
// degrading tiers on what is almost certainly a one-off bit flip.
type ChecksumError struct {
	Col    int     // output column (within the verified panel)
	Got    float64 // Σ_i C[i,j]
	Want   float64 // checksum-row prediction
	Bound  float64 // rounding-error tolerance that was exceeded
	Kernel string  // task class attribution ("UpdateVect")
}

func (e *ChecksumError) Error() string {
	return fmt.Sprintf("blas: ABFT checksum mismatch in %s output column %d: sum %.17g, checksum predicts %.17g (tolerance %.3g)",
		e.Kernel, e.Col, e.Got, e.Want, e.Bound)
}

// Corruption marks the failure as detected silent data corruption.
func (e *ChecksumError) Corruption() bool { return true }

// Transient reports true: a recompute of the same panel is expected to clear
// a bit flip.
func (e *ChecksumError) Transient() bool { return true }

// TaskClass attributes the corruption to the kernel class whose output
// failed verification, for circuit breakers and failure accounting.
func (e *ChecksumError) TaskClass() string { return e.Kernel }

// PackAChecked is PackA plus the ABFT checksum rows: chk[l] = Σ_i op(A)[i,l]
// and abschk[l] = Σ_i |op(A)[i,l]|, computed once at pack time (O(m·k), the
// same order as the pack itself) and carried by the PackedA for every
// subsequent Verify call.
func PackAChecked(transA bool, m, k int, a []float64, lda int) *PackedA {
	pa := PackA(transA, m, k, a, lda)
	pa.chk = pool.Get(2 * k)
	chk, abschk := pa.chk[:k], pa.chk[k:2*k]
	panels := (m + gemmMR - 1) / gemmMR
	for l := 0; l < k; l++ {
		var s, as float64
		// The packed micro-panels are zero padded past row m, so summing all
		// panel lanes per k step needs no row masking.
		for ip := 0; ip < panels; ip++ {
			base := ip*gemmMR*k + l*gemmMR
			for r := 0; r < gemmMR; r++ {
				v := pa.buf[base+r]
				s += v
				as += math.Abs(v)
			}
		}
		chk[l], abschk[l] = s, as
	}
	return pa
}

// Checked reports whether the operand carries ABFT checksum rows.
func (pa *PackedA) Checked() bool { return pa.chk != nil }

// PackedData exposes the packed operand's backing buffer so fault-injection
// hooks can corrupt it after the checksum rows were computed — proving Verify
// catches corruption of the packed data itself, not just of the GEMM output.
// No other caller should touch it.
func (pa *PackedA) PackedData() []float64 { return pa.buf }

// Verify checks the ABFT checksum identity for the n columns of C written by
// PackedGemm(pa, n, alpha, b, ldb, 0, c, ldc) — the beta=0 full-overwrite
// form the UpdateVect panels use. Returns the first failing column as a
// *ChecksumError (attributed to kernel), or nil when every column is within
// the rounding bound. Callers must have built the operand with PackAChecked;
// Verify on an unchecked operand returns nil (nothing to verify against).
func (pa *PackedA) Verify(n int, alpha float64, b []float64, ldb int, c []float64, ldc int, kernel string) error {
	if pa.chk == nil {
		return nil
	}
	m, k := pa.m, pa.k
	if m == 0 || n == 0 {
		return nil
	}
	chk, abschk := pa.chk[:k], pa.chk[k:2*k]
	for j := 0; j < n; j++ {
		want, mass := simd.DotPairAbs(chk, abschk, b[j*ldb:j*ldb+k])
		want *= alpha
		mass *= math.Abs(alpha)
		got := simd.Sum(c[j*ldc : j*ldc+m])
		bound := abftTolFactor * float64(k+m) * machEps * mass
		if diff := math.Abs(got - want); diff > bound {
			return &ChecksumError{Col: j, Got: got, Want: want, Bound: bound, Kernel: kernel}
		}
	}
	return nil
}

// machEps is the double-precision unit roundoff.
const machEps = 0x1p-53
