package blas

import "tridiag/internal/pool"

// Cache-blocking parameters of the BLIS-style GEMM (see DESIGN.md §9).
// The micro-kernel computes an MR×NR tile of C; the macro loops tile the
// operands so one packed A block (MC×KC, 256 KiB) stays L2-resident while a
// packed B block (KC×NC, ≤1 MiB) streams from L3, and every inner-loop
// access is contiguous.
const (
	gemmMR = 8   // micro-tile rows (one asm kernel call covers 8×4 of C)
	gemmNR = 4   // micro-tile columns
	gemmMC = 128 // rows per A block; multiple of gemmMR
	gemmKC = 256 // depth per block
	gemmNC = 512 // columns per B block; multiple of gemmNR
)

// PackedA is op(A) repacked for the blocked GEMM: row micro-panels of
// gemmMR rows, each storing its gemmMR values per k step contiguously
// (zero padded past row m), so the micro-kernel streams A at unit stride.
// A PackedA may be shared by any number of concurrent PackedGemm calls —
// the paper's UpdateVect task group packs Q2 once per merge and lets all
// panel GEMMs of the merge reuse it.
type PackedA struct {
	m, k int
	buf  []float64 // ceil(m/MR) panels × k steps × MR values
	// chk, when non-nil, holds the ABFT checksum rows of the operand
	// (PackAChecked): chk[0:k] the column sums, chk[k:2k] the absolute
	// column sums the Verify rounding bound is built from.
	chk []float64
}

// PackA packs op(A) (m×k, op controlled by transA) into micro-panel form.
// The buffer comes from the scratch pool; call Release when no GEMM will
// use it again.
func PackA(transA bool, m, k int, a []float64, lda int) *PackedA {
	panels := (m + gemmMR - 1) / gemmMR
	pa := &PackedA{m: m, k: k, buf: pool.Get(panels * gemmMR * k)}
	for ip := 0; ip < panels; ip++ {
		i0 := ip * gemmMR
		rows := min(gemmMR, m-i0)
		dst := pa.buf[ip*gemmMR*k:]
		if !transA {
			// op(A)[i, l] = a[i + l*lda]: column slices copy contiguously.
			for l := 0; l < k; l++ {
				src := a[i0+l*lda : i0+l*lda+rows]
				d := dst[l*gemmMR : l*gemmMR+gemmMR]
				copy(d, src)
				for r := rows; r < gemmMR; r++ {
					d[r] = 0
				}
			}
		} else {
			// op(A)[i, l] = a[l + i*lda]: rows of op(A) are source columns.
			for r := 0; r < rows; r++ {
				src := a[(i0+r)*lda : (i0+r)*lda+k]
				for l := 0; l < k; l++ {
					dst[l*gemmMR+r] = src[l]
				}
			}
			for r := rows; r < gemmMR; r++ {
				for l := 0; l < k; l++ {
					dst[l*gemmMR+r] = 0
				}
			}
		}
	}
	return pa
}

// Dims returns the (m, k) shape of the packed operand.
func (pa *PackedA) Dims() (m, k int) { return pa.m, pa.k }

// Bytes returns the size of the packed buffer, for traffic accounting.
func (pa *PackedA) Bytes() int { return 8 * len(pa.buf) }

// PooledBytes returns the pool-accounted bytes of the pack buffer (its
// size-class capacity), for leak accounting of abandoned merges.
func (pa *PackedA) PooledBytes() int64 {
	return pool.AccountedBytes(pa.buf) + pool.AccountedBytes(pa.chk)
}

// Release returns the pack buffer (and any checksum rows) to the scratch
// pool. The PackedA must not be used afterwards.
func (pa *PackedA) Release() {
	pool.Put(pa.buf)
	pa.buf = nil
	pool.Put(pa.chk)
	pa.chk = nil
}

// packB packs op(B)(pc:pc+kb, jc:jc+nb) into column micro-panels of gemmNR
// columns, each storing its gemmNR values per k step contiguously (zero
// padded past column nb), into buf (ceil(nb/NR)*NR*kb floats).
func packB(transB bool, pc, jc, kb, nb int, b []float64, ldb int, buf []float64) {
	panels := (nb + gemmNR - 1) / gemmNR
	for jp := 0; jp < panels; jp++ {
		j0 := jp * gemmNR
		cols := min(gemmNR, nb-j0)
		dst := buf[jp*gemmNR*kb:]
		if !transB {
			// op(B)[l, j] = b[l + j*ldb]: source columns are contiguous.
			for jj := 0; jj < cols; jj++ {
				src := b[pc+(jc+j0+jj)*ldb : pc+(jc+j0+jj)*ldb+kb]
				for l, v := range src {
					dst[l*gemmNR+jj] = v
				}
			}
		} else {
			// op(B)[l, j] = b[j + l*ldb]: source rows are contiguous.
			for l := 0; l < kb; l++ {
				src := b[jc+j0+(pc+l)*ldb : jc+j0+(pc+l)*ldb+cols]
				copy(dst[l*gemmNR:l*gemmNR+cols], src)
			}
		}
		for jj := cols; jj < gemmNR; jj++ {
			for l := 0; l < kb; l++ {
				dst[l*gemmNR+jj] = 0
			}
		}
	}
}
