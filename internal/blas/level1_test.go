package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-13

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func almostEqual(a, b, tol float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

func TestDdot(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 3, 7, 64, 101} {
		x, y := randVec(rng, n), randVec(rng, n)
		var want float64
		for i := 0; i < n; i++ {
			want += x[i] * y[i]
		}
		if got := Ddot(n, x, 1, y, 1); !almostEqual(got, want, tol) {
			t.Errorf("Ddot n=%d: got %v want %v", n, got, want)
		}
	}
}

func TestDdotStrided(t *testing.T) {
	x := []float64{1, 99, 2, 99, 3}
	y := []float64{4, 5, 6}
	if got := Ddot(3, x, 2, y, 1); got != 1*4+2*5+3*6 {
		t.Errorf("strided Ddot: got %v", got)
	}
	// negative increment walks x backwards
	if got := Ddot(3, y, -1, y, 1); got != 6*4+5*5+4*6 {
		t.Errorf("negative-inc Ddot: got %v", got)
	}
}

func TestDaxpy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 5, 33} {
		x, y := randVec(rng, n), randVec(rng, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = y[i] + 2.5*x[i]
		}
		Daxpy(n, 2.5, x, 1, y, 1)
		for i := range want {
			if !almostEqual(y[i], want[i], tol) {
				t.Fatalf("Daxpy n=%d i=%d: got %v want %v", n, i, y[i], want[i])
			}
		}
	}
}

func TestDaxpyZeroAlphaNoop(t *testing.T) {
	y := []float64{1, 2, 3}
	Daxpy(3, 0, []float64{9, 9, 9}, 1, y, 1)
	if y[0] != 1 || y[1] != 2 || y[2] != 3 {
		t.Errorf("alpha=0 modified y: %v", y)
	}
}

func TestDscalDcopyDswap(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	Dscal(4, -2, x, 1)
	if x[0] != -2 || x[3] != -8 {
		t.Errorf("Dscal: %v", x)
	}
	y := make([]float64, 4)
	Dcopy(4, x, 1, y, 1)
	if y[2] != -6 {
		t.Errorf("Dcopy: %v", y)
	}
	z := []float64{10, 20, 30, 40}
	Dswap(4, y, 1, z, 1)
	if y[0] != 10 || z[0] != -2 {
		t.Errorf("Dswap: y=%v z=%v", y, z)
	}
}

func TestDnrm2MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 17, 200} {
		x := randVec(rng, n)
		var ss float64
		for _, v := range x {
			ss += v * v
		}
		want := math.Sqrt(ss)
		if got := Dnrm2(n, x, 1); !almostEqual(got, want, tol) {
			t.Errorf("Dnrm2 n=%d: got %v want %v", n, got, want)
		}
	}
}

func TestDnrm2Extremes(t *testing.T) {
	big := math.MaxFloat64 / 4
	if got := Dnrm2(2, []float64{big, big}, 1); math.IsInf(got, 0) {
		t.Errorf("Dnrm2 overflowed: %v", got)
	}
	tiny := 1e-300
	got := Dnrm2(2, []float64{tiny, tiny}, 1)
	want := tiny * math.Sqrt2
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("Dnrm2 underflow: got %v want %v", got, want)
	}
	if Dnrm2(3, []float64{0, 0, 0}, 1) != 0 {
		t.Error("Dnrm2 of zero vector")
	}
}

func TestIdamax(t *testing.T) {
	if got := Idamax(5, []float64{1, -7, 3, 7, -2}, 1); got != 1 {
		t.Errorf("Idamax ties should pick first: got %d", got)
	}
	if got := Idamax(0, nil, 1); got != -1 {
		t.Errorf("Idamax empty: got %d", got)
	}
}

func TestDrotPreservesNorm(t *testing.T) {
	f := func(xs, ys [4]float64, theta float64) bool {
		c, s := math.Cos(theta), math.Sin(theta)
		x, y := xs[:], ys[:]
		for i := range x { // keep magnitudes bounded so x²+y² cannot overflow
			x[i] = math.Remainder(x[i], 1e6)
			y[i] = math.Remainder(y[i], 1e6)
			if math.IsNaN(x[i]) {
				x[i] = 0
			}
			if math.IsNaN(y[i]) {
				y[i] = 0
			}
		}
		n0 := Ddot(4, x, 1, x, 1) + Ddot(4, y, 1, y, 1)
		xc, yc := append([]float64(nil), x...), append([]float64(nil), y...)
		Drot(4, xc, 1, yc, 1, c, s)
		n1 := Ddot(4, xc, 1, xc, 1) + Ddot(4, yc, 1, yc, 1)
		return almostEqual(n0, n1, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDasum(t *testing.T) {
	if got := Dasum(3, []float64{-1, 2, -3}, 1); got != 6 {
		t.Errorf("Dasum: %v", got)
	}
}
