package blas

import (
	"math/rand"
	"testing"
)

// forceGeneric runs fn with the assembly micro-kernel disabled so the
// portable kernel is exercised even on amd64.
func forceGeneric(fn func()) {
	saved := haveAsmKernel
	haveAsmKernel = false
	defer func() { haveAsmKernel = saved }()
	fn()
}

// TestBlockedGemmMatchesNaive drives the cache-blocked path directly (below
// and above the dispatch threshold) across all transpose combos, odd
// m/n/k tails around the micro-tile and block boundaries, alpha/beta edge
// cases, and lda > m shapes.
func TestBlockedGemmMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	dims := []struct{ m, n, k int }{
		{1, 1, 1}, {8, 4, 16}, {7, 3, 5}, {9, 5, 17}, {16, 8, 32},
		{65, 9, 31}, {129, 130, 40}, {33, 7, 257}, {140, 19, 300}, {8, 4, 1},
	}
	coefs := []struct{ alpha, beta float64 }{{1, 0}, {-0.5, 1}, {2, 0.25}, {0, 0.5}}
	run := func(t *testing.T) {
		for _, ta := range []bool{false, true} {
			for _, tb := range []bool{false, true} {
				for _, d := range dims {
					for _, coef := range coefs {
						ar, ac := d.m, d.k
						if ta {
							ar, ac = d.k, d.m
						}
						br, bc := d.k, d.n
						if tb {
							br, bc = d.n, d.k
						}
						lda, ldb, ldc := ar+3, br+1, d.m+2
						a := randMat(rng, ar, ac, lda)
						b := randMat(rng, br, bc, ldb)
						c := randMat(rng, d.m, d.n, ldc)
						want := append([]float64(nil), c...)
						naiveGemm(ta, tb, d.m, d.n, d.k, coef.alpha, a, lda, b, ldb, coef.beta, want, ldc)
						gemmBlocked(ta, tb, d.m, d.n, d.k, coef.alpha, a, lda, b, ldb, coef.beta, c, ldc)
						for j := 0; j < d.n; j++ {
							for i := 0; i < d.m; i++ {
								if !almostEqual(c[i+j*ldc], want[i+j*ldc], 1e-12) {
									t.Fatalf("blocked ta=%v tb=%v %v coef=%v at (%d,%d): got %v want %v",
										ta, tb, d, coef, i, j, c[i+j*ldc], want[i+j*ldc])
								}
							}
						}
					}
				}
			}
		}
	}
	t.Run("dispatch", run)
	t.Run("generic", func(t *testing.T) { forceGeneric(func() { run(t) }) })
}

// TestPackedGemmMatchesDgemm packs A once and reuses it across several
// column panels of B/C — the per-merge reuse pattern of UpdateVect.
func TestPackedGemmMatchesDgemm(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, sh := range []struct{ m, k, n, nb int }{
		{60, 45, 96, 32}, {8, 8, 4, 4}, {130, 17, 65, 16}, {37, 300, 48, 13},
	} {
		lda, ldb, ldc := sh.m+1, sh.k, sh.m+4
		a := randMat(rng, sh.m, sh.k, lda)
		b := randMat(rng, sh.k, sh.n, ldb)
		c := randMat(rng, sh.m, sh.n, ldc)
		want := append([]float64(nil), c...)
		naiveGemm(false, false, sh.m, sh.n, sh.k, 1.25, a, lda, b, ldb, 0.5, want, ldc)

		pa := PackA(false, sh.m, sh.k, a, lda)
		if m, k := pa.Dims(); m != sh.m || k != sh.k {
			t.Fatalf("Dims: got (%d,%d) want (%d,%d)", m, k, sh.m, sh.k)
		}
		if pa.Bytes() <= 0 {
			t.Fatal("Bytes: want positive")
		}
		// Panelized calls against the shared pack, as UpdateVect issues them.
		for j0 := 0; j0 < sh.n; j0 += sh.nb {
			ncol := min(sh.nb, sh.n-j0)
			PackedGemm(pa, ncol, 1.25, b[j0*ldb:], ldb, 0.5, c[j0*ldc:], ldc)
		}
		pa.Release()
		for j := 0; j < sh.n; j++ {
			for i := 0; i < sh.m; i++ {
				if !almostEqual(c[i+j*ldc], want[i+j*ldc], 1e-12) {
					t.Fatalf("packed %v at (%d,%d): got %v want %v", sh, i, j, c[i+j*ldc], want[i+j*ldc])
				}
			}
		}
	}
}

// TestPackedGemmEdgeCases covers alpha=0, k=0 and transposed-A packing.
func TestPackedGemmEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m, k, n := 13, 9, 6
	a := randMat(rng, k, m, k) // packed with transA: op(A) is m×k
	b := randMat(rng, k, n, k)
	c := randMat(rng, m, n, m)
	want := append([]float64(nil), c...)
	naiveGemm(true, false, m, n, k, -2, a, k, b, k, 0, want, m)
	pa := PackA(true, m, k, a, k)
	PackedGemm(pa, n, -2, b, k, 0, c, m)
	pa.Release()
	for i := range c {
		if !almostEqual(c[i], want[i], 1e-12) {
			t.Fatalf("transA packed at %d: got %v want %v", i, c[i], want[i])
		}
	}

	// alpha=0 scales C by beta without touching the packed operand.
	c2 := randMat(rng, m, n, m)
	want2 := append([]float64(nil), c2...)
	for i := range want2 {
		want2[i] *= 0.5
	}
	pa2 := PackA(false, m, k, randMat(rng, m, k, m), m)
	PackedGemm(pa2, n, 0, b, k, 0.5, c2, m)
	pa2.Release()
	for i := range c2 {
		if !almostEqual(c2[i], want2[i], 1e-12) {
			t.Fatalf("alpha=0 at %d", i)
		}
	}
}

// TestDgemmTTTiled re-checks the rewritten Aᵀ·Bᵀ path on shapes whose m/n
// parity hits every tail combination of the 2×2 tiling.
func TestDgemmTTTiled(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, d := range []struct{ m, n, k int }{
		{1, 1, 3}, {2, 2, 4}, {3, 3, 5}, {2, 3, 7}, {3, 2, 7}, {12, 11, 20}, {11, 12, 1},
	} {
		lda, ldb, ldc := d.k+2, d.n+1, d.m+1
		a := randMat(rng, d.k, d.m, lda)
		b := randMat(rng, d.n, d.k, ldb)
		for _, coef := range []struct{ alpha, beta float64 }{{1, 0}, {-1.5, 0.75}} {
			c := randMat(rng, d.m, d.n, ldc)
			want := append([]float64(nil), c...)
			naiveGemm(true, true, d.m, d.n, d.k, coef.alpha, a, lda, b, ldb, coef.beta, want, ldc)
			gemmTT(d.m, d.n, d.k, coef.alpha, a, lda, b, ldb, coef.beta, c, ldc)
			for j := 0; j < d.n; j++ {
				for i := 0; i < d.m; i++ {
					if !almostEqual(c[i+j*ldc], want[i+j*ldc], 1e-12) {
						t.Fatalf("gemmTT %v coef=%v at (%d,%d)", d, coef, i, j)
					}
				}
			}
		}
	}
}

// TestPackWorthwhileConsistent: a shape the packer accepts must also be one
// Dgemm would route to the blocked kernel, so pre-packing never selects a
// slower path than the plain call.
func TestPackWorthwhileConsistent(t *testing.T) {
	for _, sh := range [][3]int{{256, 256, 256}, {1000, 128, 900}, {4, 4, 4}, {16, 2, 64}} {
		m, n, k := sh[0], sh[1], sh[2]
		if PackWorthwhile(m, n, k) != blockedWorthwhile(m, n, k) {
			t.Fatalf("PackWorthwhile(%d,%d,%d) inconsistent with dispatch", m, n, k)
		}
	}
}
