package blas

import "sync"

// Dgemm computes C = alpha*op(A)*op(B) + beta*C with op(X) = X or Xᵀ
// controlled by transA/transB. C is m×n, op(A) is m×k, op(B) is k×n, all
// column-major. The no-transpose path uses a 4-column register-blocked axpy
// kernel, which is the cache-friendly order for column-major storage.
func Dgemm(transA, transB bool, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	if m == 0 || n == 0 {
		return
	}
	if alpha == 0 || k == 0 {
		scaleCols(m, n, beta, c, ldc)
		return
	}
	if blockedWorthwhile(m, n, k) {
		gemmBlocked(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
		return
	}
	switch {
	case !transA && !transB:
		gemmNN(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
	case transA && !transB:
		gemmTN(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
	case !transA && transB:
		gemmNT(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
	default:
		gemmTT(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
	}
}

func scaleCols(m, n int, beta float64, c []float64, ldc int) {
	for j := 0; j < n; j++ {
		col := c[j*ldc : j*ldc+m]
		if beta == 0 {
			for i := range col {
				col[i] = 0
			}
		} else if beta != 1 {
			for i := range col {
				col[i] *= beta
			}
		}
	}
}

// gemmNN: C = alpha*A*B + beta*C. The hot path is a 2-column × 4-k register
// tile: eight C values accumulate in registers across four rank-1 updates,
// quartering the C store traffic of a plain axpy sweep (measured ~1.7×
// faster than 4-column axpy on scalar amd64).
func gemmNN(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	scaleCols(m, n, beta, c, ldc)
	j := 0
	for ; j+2 <= n; j += 2 {
		c0 := c[j*ldc : j*ldc+m]
		c1 := c[(j+1)*ldc : (j+1)*ldc+m]
		l := 0
		for ; l+4 <= k; l += 4 {
			a0 := a[l*lda : l*lda+m]
			a1 := a[(l+1)*lda : (l+1)*lda+m]
			a2 := a[(l+2)*lda : (l+2)*lda+m]
			a3 := a[(l+3)*lda : (l+3)*lda+m]
			b00 := alpha * b[l+j*ldb]
			b10 := alpha * b[l+1+j*ldb]
			b20 := alpha * b[l+2+j*ldb]
			b30 := alpha * b[l+3+j*ldb]
			b01 := alpha * b[l+(j+1)*ldb]
			b11 := alpha * b[l+1+(j+1)*ldb]
			b21 := alpha * b[l+2+(j+1)*ldb]
			b31 := alpha * b[l+3+(j+1)*ldb]
			for i := 0; i < m; i++ {
				v0, v1, v2, v3 := a0[i], a1[i], a2[i], a3[i]
				c0[i] += v0*b00 + v1*b10 + v2*b20 + v3*b30
				c1[i] += v0*b01 + v1*b11 + v2*b21 + v3*b31
			}
		}
		// k tail: plain rank-1 updates on the two columns.
		for ; l < k; l++ {
			b0 := alpha * b[l+j*ldb]
			b1 := alpha * b[l+(j+1)*ldb]
			if b0 == 0 && b1 == 0 {
				continue
			}
			col := a[l*lda : l*lda+m]
			for i, av := range col {
				c0[i] += av * b0
				c1[i] += av * b1
			}
		}
	}
	// n tail: at most one remaining column.
	for ; j < n; j++ {
		cj := c[j*ldc : j*ldc+m]
		for l := 0; l < k; l++ {
			t := alpha * b[l+j*ldb]
			if t == 0 {
				continue
			}
			col := a[l*lda : l*lda+m]
			for i, av := range col {
				cj[i] += av * t
			}
		}
	}
}

// gemmTN: C = alpha*Aᵀ*B + beta*C. Both A(:,i) and B(:,j) are contiguous
// columns, so C entries are unit-stride dot products; a 2×2 tile of dots
// shares the operand loads.
func gemmTN(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	j := 0
	for ; j+2 <= n; j += 2 {
		b0 := b[j*ldb : j*ldb+k]
		b1 := b[(j+1)*ldb : (j+1)*ldb+k]
		c0 := c[j*ldc : j*ldc+m]
		c1 := c[(j+1)*ldc : (j+1)*ldc+m]
		i := 0
		for ; i+2 <= m; i += 2 {
			a0 := a[i*lda : i*lda+k]
			a1 := a[(i+1)*lda : (i+1)*lda+k]
			var s00, s01, s10, s11 float64
			for l := 0; l < k; l++ {
				av0, av1 := a0[l], a1[l]
				bv0, bv1 := b0[l], b1[l]
				s00 += av0 * bv0
				s01 += av0 * bv1
				s10 += av1 * bv0
				s11 += av1 * bv1
			}
			if beta == 0 {
				c0[i], c0[i+1] = alpha*s00, alpha*s10
				c1[i], c1[i+1] = alpha*s01, alpha*s11
			} else {
				c0[i] = alpha*s00 + beta*c0[i]
				c0[i+1] = alpha*s10 + beta*c0[i+1]
				c1[i] = alpha*s01 + beta*c1[i]
				c1[i+1] = alpha*s11 + beta*c1[i+1]
			}
		}
		for ; i < m; i++ {
			ai := a[i*lda : i*lda+k]
			s0 := Ddot(k, ai, 1, b0, 1)
			s1 := Ddot(k, ai, 1, b1, 1)
			if beta == 0 {
				c0[i], c1[i] = alpha*s0, alpha*s1
			} else {
				c0[i] = alpha*s0 + beta*c0[i]
				c1[i] = alpha*s1 + beta*c1[i]
			}
		}
	}
	for ; j < n; j++ {
		bj := b[j*ldb : j*ldb+k]
		cj := c[j*ldc : j*ldc+m]
		for i := 0; i < m; i++ {
			s := Ddot(k, a[i*lda:i*lda+k], 1, bj, 1)
			if beta == 0 {
				cj[i] = alpha * s
			} else {
				cj[i] = alpha*s + beta*cj[i]
			}
		}
	}
}

// gemmNT: C = alpha*A*Bᵀ + beta*C, with the same 2-column × 4-k register
// tile as gemmNN (B is simply indexed transposed).
func gemmNT(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	scaleCols(m, n, beta, c, ldc)
	j := 0
	for ; j+2 <= n; j += 2 {
		c0 := c[j*ldc : j*ldc+m]
		c1 := c[(j+1)*ldc : (j+1)*ldc+m]
		l := 0
		for ; l+4 <= k; l += 4 {
			a0 := a[l*lda : l*lda+m]
			a1 := a[(l+1)*lda : (l+1)*lda+m]
			a2 := a[(l+2)*lda : (l+2)*lda+m]
			a3 := a[(l+3)*lda : (l+3)*lda+m]
			b00 := alpha * b[j+l*ldb]
			b10 := alpha * b[j+(l+1)*ldb]
			b20 := alpha * b[j+(l+2)*ldb]
			b30 := alpha * b[j+(l+3)*ldb]
			b01 := alpha * b[j+1+l*ldb]
			b11 := alpha * b[j+1+(l+1)*ldb]
			b21 := alpha * b[j+1+(l+2)*ldb]
			b31 := alpha * b[j+1+(l+3)*ldb]
			for i := 0; i < m; i++ {
				v0, v1, v2, v3 := a0[i], a1[i], a2[i], a3[i]
				c0[i] += v0*b00 + v1*b10 + v2*b20 + v3*b30
				c1[i] += v0*b01 + v1*b11 + v2*b21 + v3*b31
			}
		}
		for ; l < k; l++ {
			b0 := alpha * b[j+l*ldb]
			b1 := alpha * b[j+1+l*ldb]
			if b0 == 0 && b1 == 0 {
				continue
			}
			col := a[l*lda : l*lda+m]
			for i, av := range col {
				c0[i] += av * b0
				c1[i] += av * b1
			}
		}
	}
	for ; j < n; j++ {
		cj := c[j*ldc : j*ldc+m]
		for l := 0; l < k; l++ {
			t := alpha * b[j+l*ldb]
			if t == 0 {
				continue
			}
			col := a[l*lda : l*lda+m]
			for i, av := range col {
				cj[i] += av * t
			}
		}
	}
}

// gemmTT: C = alpha*Aᵀ*Bᵀ + beta*C. Rows of op(A) are contiguous source
// columns; rows of op(B) stride by ldb. A 2×2 tile of dot products shares
// each strided b load across two rows of A (the same structure as gemmTN),
// instead of re-streaming b column-wise per scalar of C.
func gemmTT(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	j := 0
	for ; j+2 <= n; j += 2 {
		c0 := c[j*ldc : j*ldc+m]
		c1 := c[(j+1)*ldc : (j+1)*ldc+m]
		i := 0
		for ; i+2 <= m; i += 2 {
			a0 := a[i*lda : i*lda+k]
			a1 := a[(i+1)*lda : (i+1)*lda+k]
			var s00, s01, s10, s11 float64
			for l := 0; l < k; l++ {
				bv0 := b[j+l*ldb]
				bv1 := b[j+1+l*ldb]
				av0, av1 := a0[l], a1[l]
				s00 += av0 * bv0
				s01 += av0 * bv1
				s10 += av1 * bv0
				s11 += av1 * bv1
			}
			if beta == 0 {
				c0[i], c0[i+1] = alpha*s00, alpha*s10
				c1[i], c1[i+1] = alpha*s01, alpha*s11
			} else {
				c0[i] = alpha*s00 + beta*c0[i]
				c0[i+1] = alpha*s10 + beta*c0[i+1]
				c1[i] = alpha*s01 + beta*c1[i]
				c1[i+1] = alpha*s11 + beta*c1[i+1]
			}
		}
		for ; i < m; i++ {
			ai := a[i*lda : i*lda+k]
			var s0, s1 float64
			for l := 0; l < k; l++ {
				av := ai[l]
				s0 += av * b[j+l*ldb]
				s1 += av * b[j+1+l*ldb]
			}
			if beta == 0 {
				c0[i], c1[i] = alpha*s0, alpha*s1
			} else {
				c0[i] = alpha*s0 + beta*c0[i]
				c1[i] = alpha*s1 + beta*c1[i]
			}
		}
	}
	for ; j < n; j++ {
		cj := c[j*ldc : j*ldc+m]
		for i := 0; i < m; i++ {
			var s float64
			ai := a[i*lda : i*lda+k]
			for l := 0; l < k; l++ {
				s += ai[l] * b[j+l*ldb]
			}
			if beta == 0 {
				cj[i] = alpha * s
			} else {
				cj[i] = alpha*s + beta*cj[i]
			}
		}
	}
}

// DgemmParallel is Dgemm with the columns of C partitioned across `workers`
// goroutines. It models the fork/join multithreaded-BLAS execution of vendor
// libraries: parallelism only inside the one GEMM call, with a barrier at the
// end. workers <= 1 degrades to the serial kernel.
func DgemmParallel(workers int, transA, transB bool, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	if workers <= 1 || n < 2*workers || int64(m)*int64(n)*int64(k) < 1<<16 {
		Dgemm(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		j0 := w * chunk
		if j0 >= n {
			break
		}
		jn := min(chunk, n-j0)
		wg.Add(1)
		go func(j0, jn int) {
			defer wg.Done()
			bs := b
			if !transB {
				bs = b[j0*ldb:]
			} else {
				bs = b[j0:]
			}
			Dgemm(transA, transB, m, jn, k, alpha, a, lda, bs, ldb, beta, c[j0*ldc:], ldc)
		}(j0, jn)
	}
	wg.Wait()
}

// Dsyr2kParallel partitions the lower-triangle columns of the rank-2k update
// across `workers` goroutines (fork/join, like a multithreaded BLAS). The
// column blocks are sized so each holds roughly the same number of
// lower-triangle elements.
func Dsyr2kParallel(workers, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	if workers <= 1 || n < 4*workers || int64(n)*int64(n)*int64(k) < 1<<18 {
		Dsyr2k(n, k, alpha, a, lda, b, ldb, beta, c, ldc)
		return
	}
	// Column j of the lower triangle has n-j rows; balance total elements.
	bounds := make([]int, workers+1)
	total := float64(n) * float64(n+1) / 2
	j := 0
	for w := 1; w < workers; w++ {
		want := total * float64(w) / float64(workers)
		for j < n && float64(n)*float64(j+1)-float64(j)*float64(j+1)/2 < want {
			j++
		}
		bounds[w] = j
	}
	bounds[workers] = n
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		j0, j1 := bounds[w], bounds[w+1]
		if j0 >= j1 {
			continue
		}
		wg.Add(1)
		go func(j0, j1 int) {
			defer wg.Done()
			syr2kCols(j0, j1, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
		}(j0, j1)
	}
	wg.Wait()
}

// syr2kCols updates lower-triangle columns [j0, j1) of the rank-2k update.
func syr2kCols(j0, j1, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	for j := j0; j < j1; j++ {
		cj := c[j*ldc:]
		if beta == 0 {
			for i := j; i < n; i++ {
				cj[i] = 0
			}
		} else if beta != 1 {
			for i := j; i < n; i++ {
				cj[i] *= beta
			}
		}
		if alpha == 0 || k == 0 {
			continue
		}
		// identical loop structure to Dsyr2k so serial and parallel
		// variants produce bitwise-equal results
		l := 0
		for ; l+2 <= k; l += 2 {
			ta0 := alpha * a[j+l*lda]
			tb0 := alpha * b[j+l*ldb]
			ta1 := alpha * a[j+(l+1)*lda]
			tb1 := alpha * b[j+(l+1)*ldb]
			ca0 := a[l*lda:]
			cb0 := b[l*ldb:]
			ca1 := a[(l+1)*lda:]
			cb1 := b[(l+1)*ldb:]
			for i := j; i < n; i++ {
				cj[i] += cb0[i]*ta0 + ca0[i]*tb0 + cb1[i]*ta1 + ca1[i]*tb1
			}
		}
		for ; l < k; l++ {
			ta := alpha * a[j+l*lda]
			tb := alpha * b[j+l*ldb]
			if ta == 0 && tb == 0 {
				continue
			}
			ca := a[l*lda:]
			cb := b[l*ldb:]
			for i := j; i < n; i++ {
				cj[i] += cb[i]*ta + ca[i]*tb
			}
		}
	}
}

// Dsyr2k computes the symmetric rank-2k update C = alpha*A*Bᵀ + alpha*B*Aᵀ +
// beta*C, updating only the lower triangle of the n×n matrix C. A and B are
// n×k. This is the update kernel of the blocked Householder tridiagonal
// reduction.
func Dsyr2k(n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	if n == 0 {
		return
	}
	for j := 0; j < n; j++ {
		cj := c[j*ldc:]
		if beta == 0 {
			for i := j; i < n; i++ {
				cj[i] = 0
			}
		} else if beta != 1 {
			for i := j; i < n; i++ {
				cj[i] *= beta
			}
		}
	}
	if alpha == 0 || k == 0 {
		return
	}
	for j := 0; j < n; j++ {
		cj := c[j*ldc:]
		l := 0
		for ; l+2 <= k; l += 2 {
			ta0 := alpha * a[j+l*lda]
			tb0 := alpha * b[j+l*ldb]
			ta1 := alpha * a[j+(l+1)*lda]
			tb1 := alpha * b[j+(l+1)*ldb]
			ca0 := a[l*lda:]
			cb0 := b[l*ldb:]
			ca1 := a[(l+1)*lda:]
			cb1 := b[(l+1)*ldb:]
			for i := j; i < n; i++ {
				cj[i] += cb0[i]*ta0 + ca0[i]*tb0 + cb1[i]*ta1 + ca1[i]*tb1
			}
		}
		for ; l < k; l++ {
			ta := alpha * a[j+l*lda]
			tb := alpha * b[j+l*ldb]
			if ta == 0 && tb == 0 {
				continue
			}
			ca := a[l*lda:]
			cb := b[l*ldb:]
			for i := j; i < n; i++ {
				cj[i] += cb[i]*ta + ca[i]*tb
			}
		}
	}
}
