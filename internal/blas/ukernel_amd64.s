#include "textflag.h"

// func cpuidProbe(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidProbe(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvProbe() (eax, edx uint32)
TEXT ·xgetbvProbe(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func ukernel8x4avx(kc int, ap, bp []float64, c []float64, ldc int, alpha float64)
//
// The register micro-kernel of the blocked GEMM: an 8×4 tile of C
// accumulates in eight ymm registers across the whole kc depth, reading the
// packed A micro-panel (8 values per k step, contiguous) and the packed B
// micro-panel (4 values per k step, contiguous), then C(0:8, 0:4) +=
// alpha * acc with column stride ldc (in elements). kc must be >= 1 and the
// packed panels fully populated (zero padded at the edges by the packers).
TEXT ·ukernel8x4avx(SB), NOSPLIT, $0-96
	MOVQ kc+0(FP), CX
	MOVQ ap_base+8(FP), SI
	MOVQ bp_base+32(FP), DI
	MOVQ c_base+56(FP), DX
	MOVQ ldc+80(FP), R8
	SHLQ $3, R8             // column stride in bytes
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
loop:
	VMOVUPD (SI), Y8        // a[0:4] of this k step
	VMOVUPD 32(SI), Y9      // a[4:8]
	VBROADCASTSD (DI), Y10  // b[0]
	VBROADCASTSD 8(DI), Y11 // b[1]
	VFMADD231PD Y8, Y10, Y0
	VFMADD231PD Y9, Y10, Y1
	VFMADD231PD Y8, Y11, Y2
	VFMADD231PD Y9, Y11, Y3
	VBROADCASTSD 16(DI), Y10 // b[2]
	VBROADCASTSD 24(DI), Y11 // b[3]
	VFMADD231PD Y8, Y10, Y4
	VFMADD231PD Y9, Y10, Y5
	VFMADD231PD Y8, Y11, Y6
	VFMADD231PD Y9, Y11, Y7
	ADDQ $64, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  loop

	// C(0:8, j) += alpha * acc_j, one column at a time.
	VBROADCASTSD alpha+88(FP), Y10
	VMOVUPD (DX), Y11
	VMOVUPD 32(DX), Y12
	VFMADD231PD Y0, Y10, Y11
	VFMADD231PD Y1, Y10, Y12
	VMOVUPD Y11, (DX)
	VMOVUPD Y12, 32(DX)
	ADDQ R8, DX
	VMOVUPD (DX), Y11
	VMOVUPD 32(DX), Y12
	VFMADD231PD Y2, Y10, Y11
	VFMADD231PD Y3, Y10, Y12
	VMOVUPD Y11, (DX)
	VMOVUPD Y12, 32(DX)
	ADDQ R8, DX
	VMOVUPD (DX), Y11
	VMOVUPD 32(DX), Y12
	VFMADD231PD Y4, Y10, Y11
	VFMADD231PD Y5, Y10, Y12
	VMOVUPD Y11, (DX)
	VMOVUPD Y12, 32(DX)
	ADDQ R8, DX
	VMOVUPD (DX), Y11
	VMOVUPD 32(DX), Y12
	VFMADD231PD Y6, Y10, Y11
	VFMADD231PD Y7, Y10, Y12
	VMOVUPD Y11, (DX)
	VMOVUPD Y12, 32(DX)
	VZEROUPPER
	RET
