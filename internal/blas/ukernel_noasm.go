//go:build !amd64

package blas

// Non-amd64 platforms have no assembly micro-kernel; the blocked GEMM path
// stays disabled (Dgemm keeps the register-blocked kernels) and the packed
// entry points run the generic Go micro-kernel.
var haveAsmKernel = false

func ukernel8x4avx(kc int, ap, bp []float64, c []float64, ldc int, alpha float64) {
	panic("blas: ukernel8x4avx called without assembly support")
}
