package blas

import (
	"math/rand"
	"testing"
)

// naiveGemm is the reference O(mnk) triple loop.
func naiveGemm(transA, transB bool, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	at := func(i, l int) float64 {
		if transA {
			return a[l+i*lda]
		}
		return a[i+l*lda]
	}
	bt := func(l, j int) float64 {
		if transB {
			return b[j+l*ldb]
		}
		return b[l+j*ldb]
	}
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			var s float64
			for l := 0; l < k; l++ {
				s += at(i, l) * bt(l, j)
			}
			c[i+j*ldc] = alpha*s + beta*c[i+j*ldc]
		}
	}
}

func randMat(rng *rand.Rand, r, c, ld int) []float64 {
	m := make([]float64, ld*c)
	for j := 0; j < c; j++ {
		for i := 0; i < r; i++ {
			m[i+j*ld] = rng.NormFloat64()
		}
	}
	return m
}

func TestDgemmAllTransposeCombos(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dims := []struct{ m, n, k int }{
		{1, 1, 1}, {3, 4, 5}, {4, 4, 4}, {7, 9, 5}, {16, 17, 18}, {33, 5, 21}, {5, 32, 7},
	}
	for _, ta := range []bool{false, true} {
		for _, tb := range []bool{false, true} {
			for _, d := range dims {
				for _, coef := range []struct{ alpha, beta float64 }{{1, 0}, {-0.5, 1}, {2, 0.25}, {0, 0.5}} {
					ar, ac := d.m, d.k
					if ta {
						ar, ac = d.k, d.m
					}
					br, bc := d.k, d.n
					if tb {
						br, bc = d.n, d.k
					}
					lda, ldb, ldc := ar+2, br+1, d.m+3
					a := randMat(rng, ar, ac, lda)
					b := randMat(rng, br, bc, ldb)
					c := randMat(rng, d.m, d.n, ldc)
					want := append([]float64(nil), c...)
					naiveGemm(ta, tb, d.m, d.n, d.k, coef.alpha, a, lda, b, ldb, coef.beta, want, ldc)
					Dgemm(ta, tb, d.m, d.n, d.k, coef.alpha, a, lda, b, ldb, coef.beta, c, ldc)
					for j := 0; j < d.n; j++ {
						for i := 0; i < d.m; i++ {
							if !almostEqual(c[i+j*ldc], want[i+j*ldc], 1e-12) {
								t.Fatalf("Dgemm ta=%v tb=%v %v coef=%v at (%d,%d): got %v want %v",
									ta, tb, d, coef, i, j, c[i+j*ldc], want[i+j*ldc])
							}
						}
					}
				}
			}
		}
	}
}

func TestDgemmParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m, n, k := 40, 50, 30
	a := randMat(rng, m, k, m)
	b := randMat(rng, k, n, k)
	c1 := randMat(rng, m, n, m)
	c2 := append([]float64(nil), c1...)
	Dgemm(false, false, m, n, k, 1.5, a, m, b, k, 0.5, c1, m)
	DgemmParallel(4, false, false, m, n, k, 1.5, a, m, b, k, 0.5, c2, m)
	for i := range c1 {
		if !almostEqual(c1[i], c2[i], 1e-12) {
			t.Fatalf("parallel mismatch at %d: %v vs %v", i, c1[i], c2[i])
		}
	}
}

func TestDgemmParallelTransB(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, n, k := 30, 64, 20
	a := randMat(rng, m, k, m)
	b := randMat(rng, n, k, n)
	c1 := randMat(rng, m, n, m)
	c2 := append([]float64(nil), c1...)
	Dgemm(false, true, m, n, k, 1, a, m, b, n, 0, c1, m)
	DgemmParallel(3, false, true, m, n, k, 1, a, m, b, n, 0, c2, m)
	for i := range c1 {
		if !almostEqual(c1[i], c2[i], 1e-12) {
			t.Fatalf("parallel NT mismatch at %d", i)
		}
	}
}

func TestDsyr2kMatchesGemm(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{1, 4, 9, 20} {
		for _, k := range []int{1, 3, 8} {
			a := randMat(rng, n, k, n)
			b := randMat(rng, n, k, n)
			c := randMat(rng, n, n, n)
			// symmetrize c so the full-matrix reference is well defined
			for j := 0; j < n; j++ {
				for i := 0; i < j; i++ {
					c[i+j*n] = c[j+i*n]
				}
			}
			want := append([]float64(nil), c...)
			naiveGemm(false, true, n, n, k, 0.5, a, n, b, n, 1, want, n)
			naiveGemm(false, true, n, n, k, 0.5, b, n, a, n, 1, want, n)
			Dsyr2k(n, k, 0.5, a, n, b, n, 1, c, n)
			for j := 0; j < n; j++ {
				for i := j; i < n; i++ {
					if !almostEqual(c[i+j*n], want[i+j*n], 1e-12) {
						t.Fatalf("Dsyr2k n=%d k=%d at (%d,%d): got %v want %v", n, k, i, j, c[i+j*n], want[i+j*n])
					}
				}
			}
		}
	}
}

func TestDgemvMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, trans := range []bool{false, true} {
		for _, d := range []struct{ m, n int }{{1, 1}, {5, 3}, {3, 5}, {16, 16}, {20, 7}} {
			lda := d.m + 1
			a := randMat(rng, d.m, d.n, lda)
			nx, ny := d.n, d.m
			if trans {
				nx, ny = d.m, d.n
			}
			x := randVec(rng, nx)
			y := randVec(rng, ny)
			want := append([]float64(nil), y...)
			for i := 0; i < ny; i++ {
				var s float64
				for l := 0; l < nx; l++ {
					if trans {
						s += a[l+i*lda] * x[l]
					} else {
						s += a[i+l*lda] * x[l]
					}
				}
				want[i] = 1.5*s + 0.5*want[i]
			}
			Dgemv(trans, d.m, d.n, 1.5, a, lda, x, 1, 0.5, y, 1)
			for i := range want {
				if !almostEqual(y[i], want[i], 1e-12) {
					t.Fatalf("Dgemv trans=%v %v at %d: got %v want %v", trans, d, i, y[i], want[i])
				}
			}
		}
	}
}

func TestDgerMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m, n, lda := 6, 4, 8
	a := randMat(rng, m, n, lda)
	x, y := randVec(rng, m), randVec(rng, n)
	want := append([]float64(nil), a...)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			want[i+j*lda] += 2 * x[i] * y[j]
		}
	}
	Dger(m, n, 2, x, 1, y, 1, a, lda)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			if !almostEqual(a[i+j*lda], want[i+j*lda], 1e-12) {
				t.Fatalf("Dger at (%d,%d)", i, j)
			}
		}
	}
}

func TestDsymvMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{1, 2, 5, 12} {
		lda := n + 1
		a := randMat(rng, n, n, lda)
		x := randVec(rng, n)
		y := randVec(rng, n)
		// full symmetric reference from lower triangle
		full := make([]float64, n*n)
		for j := 0; j < n; j++ {
			for i := j; i < n; i++ {
				full[i+j*n] = a[i+j*lda]
				full[j+i*n] = a[i+j*lda]
			}
		}
		want := append([]float64(nil), y...)
		for i := 0; i < n; i++ {
			var s float64
			for l := 0; l < n; l++ {
				s += full[i+l*n] * x[l]
			}
			want[i] = 2*s - want[i]
		}
		Dsymv(n, 2, a, lda, x, 1, -1, y, 1)
		for i := range want {
			if !almostEqual(y[i], want[i], 1e-12) {
				t.Fatalf("Dsymv n=%d at %d: got %v want %v", n, i, y[i], want[i])
			}
		}
	}
}

func TestDsyr2kParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, n := range []int{17, 64, 129} {
		k := 16
		a := randMat(rng, n, k, n)
		b := randMat(rng, n, k, n)
		c1 := randMat(rng, n, n, n)
		c2 := append([]float64(nil), c1...)
		Dsyr2k(n, k, -1, a, n, b, n, 1, c1, n)
		Dsyr2kParallel(4, n, k, -1, a, n, b, n, 1, c2, n)
		for j := 0; j < n; j++ {
			for i := j; i < n; i++ {
				if !almostEqual(c1[i+j*n], c2[i+j*n], 1e-12) {
					t.Fatalf("n=%d at (%d,%d): %v vs %v", n, i, j, c1[i+j*n], c2[i+j*n])
				}
			}
		}
	}
}
