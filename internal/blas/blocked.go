package blas

import "tridiag/internal/pool"

// blockedWorthwhile reports whether the cache-blocked packed path should
// handle a GEMM of this shape. It needs the assembly micro-kernel (the
// register-blocked kernels in level3.go already saturate scalar FP ports)
// and enough work to amortize the two pack passes: a few micro-tiles in
// each dimension and a flop count comfortably above the pack traffic.
func blockedWorthwhile(m, n, k int) bool {
	if !haveAsmKernel {
		return false
	}
	if m < 2*gemmMR || n < gemmNR || k < 8 {
		return false
	}
	return int64(m)*int64(n)*int64(k) >= 1<<15
}

// PackWorthwhile reports whether packing op(A) up front pays off for GEMMs
// of the given shape — the predicate callers use to decide whether to build
// a PackedA for repeated PackedGemm calls (n is the typical per-call column
// count). It mirrors the internal dispatch of Dgemm so a pre-packed call
// never lands on a slower path than the plain one.
func PackWorthwhile(m, n, k int) bool { return blockedWorthwhile(m, n, k) }

// gemmBlocked is the BLIS-style three-level cache-blocked GEMM: pack op(A)
// into micro-panels once, then stream KC×NC blocks of packed op(B) against
// MC×KC blocks of A through the register micro-kernel.
func gemmBlocked(transA, transB bool, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	pa := PackA(transA, m, k, a, lda)
	// Deferred so the pack buffer is returned (and the accountant credited)
	// even when a task panic unwinds through the kernel.
	defer pa.Release()
	packedGemm(pa, transB, n, alpha, b, ldb, beta, c, ldc)
}

// PackedGemm computes C = alpha*Ap*B + beta*C where Ap is a pre-packed
// operand (m×k from pa.Dims) and B is k×n column-major, non-transposed.
// Safe for concurrent calls sharing one PackedA: the B pack buffer is
// per-call (pooled) and C regions are the caller's responsibility.
func PackedGemm(pa *PackedA, n int, alpha float64, b []float64, ldb int, beta float64, c []float64, ldc int) {
	packedGemm(pa, false, n, alpha, b, ldb, beta, c, ldc)
}

func packedGemm(pa *PackedA, transB bool, n int, alpha float64, b []float64, ldb int, beta float64, c []float64, ldc int) {
	m, k := pa.m, pa.k
	if m == 0 || n == 0 {
		return
	}
	if alpha == 0 || k == 0 {
		scaleCols(m, n, beta, c, ldc)
		return
	}
	ncbMax := min(n, gemmNC)
	kbMax := min(k, gemmKC)
	bbuf := pool.Get(((ncbMax + gemmNR - 1) / gemmNR) * gemmNR * kbMax)
	defer pool.Put(bbuf)
	for jc := 0; jc < n; jc += gemmNC {
		ncb := min(gemmNC, n-jc)
		for pc := 0; pc < k; pc += gemmKC {
			kb := min(gemmKC, k-pc)
			packB(transB, pc, jc, kb, ncb, b, ldb, bbuf)
			if pc == 0 {
				scaleCols(m, ncb, beta, c[jc*ldc:], ldc)
			}
			for ic := 0; ic < m; ic += gemmMC {
				mb := min(gemmMC, m-ic)
				macroKernel(pa, pc, kb, ic, mb, bbuf, ncb, alpha, c[ic+jc*ldc:], ldc)
			}
		}
	}
}

// macroKernel multiplies one MC×KC block of packed A against one KC×NC
// block of packed B, updating C(ic:ic+mb, jc:jc+ncb) micro-tile by
// micro-tile. Full 8×4 tiles go through the assembly kernel; edge tiles
// through the generic kernel (panels are zero padded, so both compute a
// full tile and only the store is masked).
func macroKernel(pa *PackedA, pc, kb, ic, mb int, bbuf []float64, ncb int, alpha float64, c []float64, ldc int) {
	for jr := 0; jr < ncb; jr += gemmNR {
		nr := min(gemmNR, ncb-jr)
		bp := bbuf[(jr/gemmNR)*gemmNR*kb:]
		for ir := 0; ir < mb; ir += gemmMR {
			mr := min(gemmMR, mb-ir)
			ap := pa.buf[((ic+ir)/gemmMR)*gemmMR*pa.k+pc*gemmMR:]
			ct := c[ir+jr*ldc:]
			if mr == gemmMR && nr == gemmNR && haveAsmKernel {
				ukernel8x4avx(kb, ap, bp, ct, ldc, alpha)
			} else {
				ukernelGeneric(kb, ap, bp, ct, ldc, mr, nr, alpha)
			}
		}
	}
}

// ukernelGeneric is the portable micro-kernel: eight accumulator chains per
// C column over the packed panels, stores masked to the valid mr×nr region.
// Used for edge tiles and on platforms without the assembly kernel.
func ukernelGeneric(kb int, ap, bp []float64, c []float64, ldc, mr, nr int, alpha float64) {
	ap = ap[: kb*gemmMR : kb*gemmMR]
	for j := 0; j < nr; j++ {
		var s0, s1, s2, s3, s4, s5, s6, s7 float64
		for l := 0; l < kb; l++ {
			bv := bp[l*gemmNR+j]
			o := l * gemmMR
			s0 += ap[o] * bv
			s1 += ap[o+1] * bv
			s2 += ap[o+2] * bv
			s3 += ap[o+3] * bv
			s4 += ap[o+4] * bv
			s5 += ap[o+5] * bv
			s6 += ap[o+6] * bv
			s7 += ap[o+7] * bv
		}
		col := c[j*ldc:]
		if mr == gemmMR {
			col[0] += alpha * s0
			col[1] += alpha * s1
			col[2] += alpha * s2
			col[3] += alpha * s3
			col[4] += alpha * s4
			col[5] += alpha * s5
			col[6] += alpha * s6
			col[7] += alpha * s7
		} else {
			ss := [gemmMR]float64{s0, s1, s2, s3, s4, s5, s6, s7}
			for r := 0; r < mr; r++ {
				col[r] += alpha * ss[r]
			}
		}
	}
}
