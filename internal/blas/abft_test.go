package blas

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// TestPackACheckedVerifyClean: the checksum identity must hold on clean
// packed multiplies across shapes straddling the micro-tile boundaries,
// alphas, and badly scaled data — a false positive here would turn healthy
// UpdateVect panels into pointless recomputes.
func TestPackACheckedVerifyClean(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	dims := []struct{ m, n, k int }{
		{1, 1, 1}, {8, 4, 16}, {7, 3, 5}, {65, 9, 31}, {129, 17, 40}, {140, 19, 127},
	}
	for _, d := range dims {
		for _, alpha := range []float64{1, -0.5, 1e300, 1e-300} {
			a := randMat(rng, d.m, d.k, d.m)
			b := randMat(rng, d.k, d.n, d.k)
			c := make([]float64, d.m*d.n)
			pa := PackAChecked(false, d.m, d.k, a, d.m)
			if !pa.Checked() {
				t.Fatalf("dims %v: PackAChecked produced an unchecked operand", d)
			}
			PackedGemm(pa, d.n, alpha, b, d.k, 0, c, d.m)
			if err := pa.Verify(d.n, alpha, b, d.k, c, d.m, "UpdateVect"); err != nil {
				t.Errorf("dims %v alpha %g: false positive on clean multiply: %v", d, alpha, err)
			}
			pa.Release()
		}
	}
}

// TestVerifyCatchesOutputFlip: a single flipped exponent bit anywhere in the
// written C panel must break the checksum identity, and the error must carry
// the corruption taxonomy the retry ladders key on.
func TestVerifyCatchesOutputFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	const m, n, k = 48, 12, 32
	a := randMat(rng, m, k, m)
	b := randMat(rng, k, n, k)
	for trial := 0; trial < 20; trial++ {
		c := make([]float64, m*n)
		pa := PackAChecked(false, m, k, a, m)
		PackedGemm(pa, n, 1, b, k, 0, c, m)
		idx := rng.Intn(m * n)
		c[idx] = math.Float64frombits(math.Float64bits(c[idx]) ^ (1 << 57))
		err := pa.Verify(n, 1, b, k, c, m, "UpdateVect")
		if err == nil {
			t.Fatalf("trial %d: flipped bit in C[%d] escaped verification", trial, idx)
		}
		var ce *ChecksumError
		if !errors.As(err, &ce) {
			t.Fatalf("trial %d: error %T is not a *ChecksumError", trial, err)
		}
		if ce.Col != idx/m {
			t.Errorf("trial %d: flip in column %d attributed to column %d", trial, idx/m, ce.Col)
		}
		if !ce.Corruption() || !ce.Transient() || ce.TaskClass() != "UpdateVect" {
			t.Errorf("trial %d: taxonomy wrong: corruption=%v transient=%v class=%q",
				trial, ce.Corruption(), ce.Transient(), ce.TaskClass())
		}
		pa.Release()
	}
}

// TestVerifyCatchesPackedCorruption: corrupting the packed operand AFTER the
// checksum rows were built (the PackV fault-injection point) must surface at
// verification of the next multiply — the multiply runs on the corrupted
// data while the checksums remember the clean column sums.
func TestVerifyCatchesPackedCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	const m, n, k = 40, 8, 24
	a := randMat(rng, m, k, m)
	b := randMat(rng, k, n, k)
	c := make([]float64, m*n)
	pa := PackAChecked(false, m, k, a, m)
	buf := pa.PackedData()
	arg, mx := 0, 0.0
	for i, v := range buf {
		if av := math.Abs(v); av > mx {
			arg, mx = i, av
		}
	}
	buf[arg] = math.Float64frombits(math.Float64bits(buf[arg]) ^ (1 << 57))
	PackedGemm(pa, n, 1, b, k, 0, c, m)
	if err := pa.Verify(n, 1, b, k, c, m, "UpdateVect"); err == nil {
		t.Fatal("corrupted packed operand escaped verification")
	}
	pa.Release()
}
