package blas

// Dgemv computes y = alpha*op(A)*x + beta*y where op(A) is A or Aᵀ.
// A is m×n column-major with leading dimension lda.
func Dgemv(trans bool, m, n int, alpha float64, a []float64, lda int, x []float64, incx int, beta float64, y []float64, incy int) {
	if m == 0 || n == 0 {
		return
	}
	leny := m
	if trans {
		leny = n
	}
	if beta != 1 {
		if beta == 0 {
			iy := startIdx(leny, incy)
			for i := 0; i < leny; i++ {
				y[iy] = 0
				iy += incy
			}
		} else {
			Dscal(leny, beta, y, incy)
		}
	}
	if alpha == 0 {
		return
	}
	if !trans {
		// y += alpha * A * x, column sweep (axpy-based, cache friendly).
		ix := startIdx(n, incx)
		if incy == 1 {
			for j := 0; j < n; j++ {
				t := alpha * x[ix]
				ix += incx
				if t == 0 {
					continue
				}
				col := a[j*lda : j*lda+m]
				yy := y[:m]
				for i := range col {
					yy[i] += t * col[i]
				}
			}
			return
		}
		for j := 0; j < n; j++ {
			t := alpha * x[ix]
			ix += incx
			iy := startIdx(m, incy)
			col := a[j*lda:]
			for i := 0; i < m; i++ {
				y[iy] += t * col[i]
				iy += incy
			}
		}
		return
	}
	// y += alpha * Aᵀ * x, dot-product per column.
	iy := startIdx(n, incy)
	for j := 0; j < n; j++ {
		col := a[j*lda:]
		var s float64
		if incx == 1 {
			s = Ddot(m, col, 1, x, 1)
		} else {
			ix := startIdx(m, incx)
			for i := 0; i < m; i++ {
				s += col[i] * x[ix]
				ix += incx
			}
		}
		y[iy] += alpha * s
		iy += incy
	}
}

// Dger computes the rank-one update A += alpha * x * yᵀ on the m×n matrix A.
func Dger(m, n int, alpha float64, x []float64, incx int, y []float64, incy int, a []float64, lda int) {
	if m == 0 || n == 0 || alpha == 0 {
		return
	}
	iy := startIdx(n, incy)
	for j := 0; j < n; j++ {
		t := alpha * y[iy]
		iy += incy
		if t == 0 {
			continue
		}
		col := a[j*lda : j*lda+m]
		if incx == 1 {
			xx := x[:m]
			for i := range col {
				col[i] += t * xx[i]
			}
		} else {
			ix := startIdx(m, incx)
			for i := 0; i < m; i++ {
				col[i] += t * x[ix]
				ix += incx
			}
		}
	}
}

// Dsyr2 computes the symmetric rank-2 update A += alpha*(x*yᵀ + y*xᵀ),
// updating only the lower triangle of the n×n matrix A.
func Dsyr2(n int, alpha float64, x []float64, incx int, y []float64, incy int, a []float64, lda int) {
	if n == 0 || alpha == 0 {
		return
	}
	if incx != 1 || incy != 1 {
		xt := make([]float64, n)
		yt := make([]float64, n)
		Dcopy(n, x, incx, xt, 1)
		Dcopy(n, y, incy, yt, 1)
		Dsyr2(n, alpha, xt, 1, yt, 1, a, lda)
		return
	}
	for j := 0; j < n; j++ {
		tx := alpha * x[j]
		ty := alpha * y[j]
		if tx == 0 && ty == 0 {
			continue
		}
		col := a[j*lda:]
		for i := j; i < n; i++ {
			col[i] += x[i]*ty + y[i]*tx
		}
	}
}

// Dsymv computes y = alpha*A*x + beta*y for a symmetric n×n matrix A stored
// in the lower triangle of column-major a.
func Dsymv(n int, alpha float64, a []float64, lda int, x []float64, incx int, beta float64, y []float64, incy int) {
	if n == 0 {
		return
	}
	if incx != 1 || incy != 1 {
		// The eigensolver kernels only use unit increments; keep the general
		// case simple and correct via a gather/scatter round-trip.
		xt := make([]float64, n)
		yt := make([]float64, n)
		Dcopy(n, x, incx, xt, 1)
		Dcopy(n, y, incy, yt, 1)
		Dsymv(n, alpha, a, lda, xt, 1, beta, yt, 1)
		Dcopy(n, yt, 1, y, incy)
		return
	}
	if beta != 1 {
		for i := 0; i < n; i++ {
			if beta == 0 {
				y[i] = 0
			} else {
				y[i] *= beta
			}
		}
	}
	if alpha == 0 {
		return
	}
	// One sweep over the lower triangle: column j contributes
	// y[j] += alpha*A(j,j)*x[j]; for i>j both y[i] += alpha*A(i,j)*x[j]
	// and y[j] += alpha*A(i,j)*x[i].
	for j := 0; j < n; j++ {
		t := alpha * x[j]
		var s float64
		col := a[j*lda:]
		y[j] += t * col[j]
		for i := j + 1; i < n; i++ {
			aij := col[i]
			y[i] += t * aij
			s += aij * x[i]
		}
		y[j] += alpha * s
	}
}
