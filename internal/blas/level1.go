// Package blas implements the subset of dense double-precision BLAS needed by
// the eigensolvers: vector kernels (level 1), matrix-vector kernels (level 2)
// and blocked matrix-matrix kernels (level 3), all on column-major storage.
// Signatures follow BLAS conventions (leading dimensions, unit/non-unit
// increments where required) so code translated from LAPACK maps directly.
package blas

import "math"

// Ddot returns the dot product of the n-element vectors x and y.
func Ddot(n int, x []float64, incx int, y []float64, incy int) float64 {
	if n <= 0 {
		return 0
	}
	if incx == 1 && incy == 1 {
		var s0, s1, s2, s3 float64
		i := 0
		for ; i+4 <= n; i += 4 {
			s0 += x[i] * y[i]
			s1 += x[i+1] * y[i+1]
			s2 += x[i+2] * y[i+2]
			s3 += x[i+3] * y[i+3]
		}
		s := s0 + s1 + s2 + s3
		for ; i < n; i++ {
			s += x[i] * y[i]
		}
		return s
	}
	var s float64
	ix, iy := startIdx(n, incx), startIdx(n, incy)
	for i := 0; i < n; i++ {
		s += x[ix] * y[iy]
		ix += incx
		iy += incy
	}
	return s
}

// Daxpy computes y += alpha*x for n-element vectors.
func Daxpy(n int, alpha float64, x []float64, incx int, y []float64, incy int) {
	if n <= 0 || alpha == 0 {
		return
	}
	if incx == 1 && incy == 1 {
		x = x[:n]
		y = y[:n]
		for i := range x {
			y[i] += alpha * x[i]
		}
		return
	}
	ix, iy := startIdx(n, incx), startIdx(n, incy)
	for i := 0; i < n; i++ {
		y[iy] += alpha * x[ix]
		ix += incx
		iy += incy
	}
}

// Dscal scales the n-element vector x by alpha.
func Dscal(n int, alpha float64, x []float64, incx int) {
	if n <= 0 {
		return
	}
	if incx == 1 {
		x = x[:n]
		for i := range x {
			x[i] *= alpha
		}
		return
	}
	ix := startIdx(n, incx)
	for i := 0; i < n; i++ {
		x[ix] *= alpha
		ix += incx
	}
}

// Dcopy copies the n-element vector x into y.
func Dcopy(n int, x []float64, incx int, y []float64, incy int) {
	if n <= 0 {
		return
	}
	if incx == 1 && incy == 1 {
		copy(y[:n], x[:n])
		return
	}
	ix, iy := startIdx(n, incx), startIdx(n, incy)
	for i := 0; i < n; i++ {
		y[iy] = x[ix]
		ix += incx
		iy += incy
	}
}

// Dswap exchanges the n-element vectors x and y.
func Dswap(n int, x []float64, incx int, y []float64, incy int) {
	if n <= 0 {
		return
	}
	ix, iy := startIdx(n, incx), startIdx(n, incy)
	for i := 0; i < n; i++ {
		x[ix], y[iy] = y[iy], x[ix]
		ix += incx
		iy += incy
	}
}

// Dnrm2 returns the Euclidean norm of the n-element vector x, with scaling to
// avoid overflow and underflow (LAPACK-style two-pass-free algorithm).
func Dnrm2(n int, x []float64, incx int) float64 {
	if n <= 0 {
		return 0
	}
	if n == 1 {
		return math.Abs(x[startIdx(1, incx)])
	}
	scale, ssq := 0.0, 1.0
	ix := startIdx(n, incx)
	for i := 0; i < n; i++ {
		v := x[ix]
		ix += incx
		if v == 0 {
			continue
		}
		av := math.Abs(v)
		if scale < av {
			r := scale / av
			ssq = 1 + ssq*r*r
			scale = av
		} else {
			r := av / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Dasum returns the sum of absolute values of the n-element vector x.
func Dasum(n int, x []float64, incx int) float64 {
	if n <= 0 {
		return 0
	}
	var s float64
	ix := startIdx(n, incx)
	for i := 0; i < n; i++ {
		s += math.Abs(x[ix])
		ix += incx
	}
	return s
}

// Idamax returns the index of the element of largest absolute value
// (0-based), or -1 if n <= 0.
func Idamax(n int, x []float64, incx int) int {
	if n <= 0 {
		return -1
	}
	best, bi := math.Abs(x[startIdx(n, incx)]), 0
	ix := startIdx(n, incx)
	for i := 0; i < n; i++ {
		if av := math.Abs(x[ix]); av > best {
			best, bi = av, i
		}
		ix += incx
	}
	return bi
}

// Drot applies the plane rotation (c, s) to the n-element vectors x and y:
// x_i, y_i = c*x_i + s*y_i, c*y_i - s*x_i.
func Drot(n int, x []float64, incx int, y []float64, incy int, c, s float64) {
	if n <= 0 {
		return
	}
	if incx == 1 && incy == 1 {
		x = x[:n]
		y = y[:n]
		for i := range x {
			xi, yi := x[i], y[i]
			x[i] = c*xi + s*yi
			y[i] = c*yi - s*xi
		}
		return
	}
	ix, iy := startIdx(n, incx), startIdx(n, incy)
	for i := 0; i < n; i++ {
		xi, yi := x[ix], y[iy]
		x[ix] = c*xi + s*yi
		y[iy] = c*yi - s*xi
		ix += incx
		iy += incy
	}
}

// startIdx returns the BLAS starting offset for a vector of n elements with
// increment inc (negative increments walk the vector backwards).
func startIdx(n, inc int) int {
	if inc >= 0 {
		return 0
	}
	return (-n + 1) * inc
}
