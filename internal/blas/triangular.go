package blas

// Triangular kernels used by the Cholesky-based generalized eigenproblem
// reduction. Only the lower-triangular variants the library needs are
// implemented; L is n×n with leading dimension ldl, non-unit diagonal.

// DtrsmLeftLowerNoTrans solves L·X = B in place: B (n×m) is overwritten
// with X, column by column (forward substitution).
func DtrsmLeftLowerNoTrans(n, m int, l []float64, ldl int, b []float64, ldb int) {
	for j := 0; j < m; j++ {
		col := b[j*ldb:]
		for i := 0; i < n; i++ {
			s := col[i]
			row := l[i:]
			for k := 0; k < i; k++ {
				s -= row[k*ldl] * col[k]
			}
			col[i] = s / l[i+i*ldl]
		}
	}
}

// DtrsmLeftLowerTrans solves Lᵀ·X = B in place (backward substitution).
func DtrsmLeftLowerTrans(n, m int, l []float64, ldl int, b []float64, ldb int) {
	for j := 0; j < m; j++ {
		col := b[j*ldb:]
		for i := n - 1; i >= 0; i-- {
			s := col[i]
			lc := l[i*ldl:]
			for k := i + 1; k < n; k++ {
				s -= lc[k] * col[k]
			}
			col[i] = s / l[i+i*ldl]
		}
	}
}

// DtrsmRightLowerTrans solves X·Lᵀ = B in place: B (m×k) is overwritten
// with X = B·L⁻ᵀ, row by row (forward substitution over columns).
func DtrsmRightLowerTrans(m, k int, l []float64, ldl int, b []float64, ldb int) {
	for j := 0; j < k; j++ {
		// X(:,j) = (B(:,j) - Σ_{p<j} X(:,p)·L(j,p)) / L(j,j)
		col := b[j*ldb:]
		for p := 0; p < j; p++ {
			f := l[j+p*ldl]
			if f == 0 {
				continue
			}
			pc := b[p*ldb:]
			for i := 0; i < m; i++ {
				col[i] -= f * pc[i]
			}
		}
		d := l[j+j*ldl]
		for i := 0; i < m; i++ {
			col[i] /= d
		}
	}
}

// Dsyrk computes the symmetric rank-k update C = alpha·A·Aᵀ + beta·C,
// updating only the lower triangle of the n×n matrix C; A is n×k.
func Dsyrk(n, k int, alpha float64, a []float64, lda int, beta float64, c []float64, ldc int) {
	for j := 0; j < n; j++ {
		cj := c[j*ldc:]
		if beta == 0 {
			for i := j; i < n; i++ {
				cj[i] = 0
			}
		} else if beta != 1 {
			for i := j; i < n; i++ {
				cj[i] *= beta
			}
		}
		if alpha == 0 || k == 0 {
			continue
		}
		for l := 0; l < k; l++ {
			t := alpha * a[j+l*lda]
			if t == 0 {
				continue
			}
			ca := a[l*lda:]
			for i := j; i < n; i++ {
				cj[i] += t * ca[i]
			}
		}
	}
}
