package testmat

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"tridiag/internal/lapack"
)

// spectrumOf solves the generated matrix with the QR iteration.
func spectrumOf(t *testing.T, m Matrix) []float64 {
	t.Helper()
	n := m.N()
	d := append([]float64(nil), m.D...)
	e := append([]float64(nil), m.E...)
	if err := lapack.Dsteqr(lapack.CompNone, n, d, e, nil, 0); err != nil {
		t.Fatalf("%s: %v", m.Name, err)
	}
	return d
}

func TestFromSpectrumRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for _, n := range []int{2, 5, 30, 100} {
		lam := make([]float64, n)
		for i := range lam {
			lam[i] = rng.NormFloat64() * 3
		}
		d, e := FromSpectrum(lam, rng)
		if len(d) != n || len(e) != n-1 {
			t.Fatalf("n=%d: got lengths %d, %d", n, len(d), len(e))
		}
		got := spectrumOf(t, Matrix{"rt", d, e})
		want := append([]float64(nil), lam...)
		sort.Float64s(want)
		scale := math.Max(math.Abs(want[0]), math.Abs(want[n-1]))
		for i := 0; i < n; i++ {
			if math.Abs(got[i]-want[i]) > 1e-12*scale*float64(n) {
				t.Errorf("n=%d eig %d: got %v want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestFromSpectrumRepeatedValues(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	// Type-1 style: one isolated eigenvalue, n-1 identical.
	n := 50
	lam := make([]float64, n)
	lam[0] = 1
	for i := 1; i < n; i++ {
		lam[i] = 1e-6
	}
	d, e := FromSpectrum(lam, rng)
	got := spectrumOf(t, Matrix{"deg", d, e})
	if math.Abs(got[n-1]-1) > 1e-10 {
		t.Errorf("isolated eigenvalue: %v", got[n-1])
	}
	for i := 0; i < n-1; i++ {
		if math.Abs(got[i]-1e-6) > 1e-10 {
			t.Errorf("repeated eigenvalue %d: %v", i, got[i])
		}
	}
}

func TestAllTypesGenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(305))
	for typ := 1; typ <= 15; typ++ {
		for _, n := range []int{1, 2, 10, 60} {
			m, err := Type(typ, n, rng)
			if err != nil {
				t.Fatalf("type %d n=%d: %v", typ, n, err)
			}
			if m.N() != n || len(m.E) != max(n-1, 0) {
				t.Fatalf("type %d n=%d: lengths %d/%d", typ, n, m.N(), len(m.E))
			}
			for _, v := range m.D {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("type %d n=%d: non-finite diagonal", typ, n)
				}
			}
			for _, v := range m.E {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("type %d n=%d: non-finite off-diagonal", typ, n)
				}
			}
		}
	}
	if _, err := Type(16, 5, rng); err == nil {
		t.Error("type 16 must error")
	}
	if _, err := Type(1, 0, rng); err == nil {
		t.Error("n=0 must error")
	}
}

func TestTypeSpectraMatchDefinitions(t *testing.T) {
	rng := rand.New(rand.NewSource(307))
	n := 40

	// Type 3: geometric decay from 1 to 1/k.
	m3, _ := Type(3, n, rng)
	got := spectrumOf(t, m3)
	if math.Abs(got[n-1]-1) > 1e-10 || math.Abs(got[0]-1/CondK) > 1e-10 {
		t.Errorf("type 3 extremes: %v %v", got[0], got[n-1])
	}

	// Type 4: arithmetic from 1/k to 1.
	m4, _ := Type(4, n, rng)
	got = spectrumOf(t, m4)
	for i := 1; i < n; i++ {
		gap := got[i] - got[i-1]
		want := (1 - 1/CondK) / float64(n-1)
		if math.Abs(gap-want) > 1e-8 {
			t.Errorf("type 4 gap %d: %v want %v", i, gap, want)
			break
		}
	}

	// Type 12 (Clement): eigenvalues are ±(n-1), ±(n-3), ...
	m12, _ := Type(12, n, rng)
	got = spectrumOf(t, m12)
	for i, want := 0, -float64(n-1); i < n; i, want = i+1, want+2 {
		if math.Abs(got[i]-want) > 1e-9*float64(n) {
			t.Errorf("clement eig %d: %v want %v", i, got[i], want)
		}
	}

	// Type 10: known cosine spectrum.
	m10, _ := Type(10, n, rng)
	got = spectrumOf(t, m10)
	for k := 1; k <= n; k++ {
		want := 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
		if math.Abs(got[k-1]-want) > 1e-12 {
			t.Errorf("(1,2,1) eig %d: %v want %v", k, got[k-1], want)
		}
	}

	// Type 11 (Wilkinson) largest pair nearly degenerate for odd n.
	m11, _ := Type(11, 21, rng)
	got = spectrumOf(t, m11)
	if math.Abs(got[20]-got[19]) > 1e-10 {
		t.Errorf("wilkinson top pair gap: %v", got[20]-got[19])
	}
}

func TestType5LogUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(309))
	m, _ := Type(5, 200, rng)
	got := spectrumOf(t, m)
	if got[0] < 1/CondK/10 || got[len(got)-1] > 1.1 {
		t.Errorf("type 5 spectrum out of range: [%v, %v]", got[0], got[len(got)-1])
	}
}

func TestAppSet(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	set := AppSet(63, rng)
	if len(set) < 6 {
		t.Fatalf("appset too small: %d", len(set))
	}
	names := map[string]bool{}
	for _, m := range set {
		if names[m.Name] {
			t.Errorf("duplicate name %s", m.Name)
		}
		names[m.Name] = true
		if m.N() < 2 {
			t.Errorf("%s: too small", m.Name)
		}
		// every matrix must be solvable
		spectrumOf(t, m)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	a, _ := Type(6, 30, rand.New(rand.NewSource(99)))
	b, _ := Type(6, 30, rand.New(rand.NewSource(99)))
	for i := range a.D {
		if a.D[i] != b.D[i] {
			t.Fatal("same seed must give identical matrices")
		}
	}
}

func TestFromSpectrumDenseCrossValidation(t *testing.T) {
	// The O(n³) dense DLATMS-style route and the Lanczos route must realize
	// the same spectrum (different matrices, same eigenvalues).
	rng := rand.New(rand.NewSource(313))
	for _, n := range []int{1, 2, 8, 40} {
		lam := make([]float64, n)
		for i := range lam {
			lam[i] = rng.NormFloat64() * 2
		}
		want := append([]float64(nil), lam...)
		sort.Float64s(want)

		d1, e1 := FromSpectrum(lam, rng)
		got1 := spectrumOf(t, Matrix{"lanczos", d1, e1})
		d2, e2 := FromSpectrumDense(lam, rng)
		got2 := spectrumOf(t, Matrix{"dense", d2, e2})

		scale := math.Max(math.Abs(want[0]), math.Abs(want[n-1])) + 1
		for i := 0; i < n; i++ {
			if math.Abs(got1[i]-want[i]) > 1e-12*scale*float64(n) {
				t.Errorf("lanczos n=%d eig %d: %v want %v", n, i, got1[i], want[i])
			}
			if math.Abs(got2[i]-want[i]) > 1e-12*scale*float64(n) {
				t.Errorf("dense n=%d eig %d: %v want %v", n, i, got2[i], want[i])
			}
		}
	}
}

func TestFromSpectrumDenseRepeated(t *testing.T) {
	// The dense route handles repeated eigenvalues without special casing.
	rng := rand.New(rand.NewSource(317))
	n := 20
	lam := make([]float64, n)
	for i := range lam {
		lam[i] = float64(i % 3) // triple degeneracy
	}
	d, e := FromSpectrumDense(lam, rng)
	got := spectrumOf(t, Matrix{"dense-rep", d, e})
	want := append([]float64(nil), lam...)
	sort.Float64s(want)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12*float64(n) {
			t.Errorf("eig %d: %v want %v", i, got[i], want[i])
		}
	}
}
