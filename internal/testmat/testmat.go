// Package testmat generates the symmetric tridiagonal test matrices of the
// paper's Table III (the LAPACK stetester suite) plus an application-like
// matrix set standing in for the stetester data files (see DESIGN.md §2).
//
// Types 1–9 prescribe an eigenvalue distribution; the tridiagonal matrix is
// realized by solving the Jacobi inverse eigenvalue problem with the Lanczos
// process on diag(λ) under full reorthogonalization (random positive
// weights). Repeated eigenvalues (types 1 and 2) have no unreduced Jacobi
// matrix, so the distinct part is realized by Lanczos and the multiple copies
// are appended with couplings at the roundoff level — the same
// reducible-up-to-roundoff structure LAPACK's dense DLATMS + DSYTRD route
// produces. Types 10–15 are classical closed-form matrices.
package testmat

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"tridiag/internal/lapack"
)

// CondK is the paper's condition parameter k (Table III): "arbitrarily set
// to 1.0e6".
const CondK = 1.0e6

// Matrix is a named symmetric tridiagonal test matrix.
type Matrix struct {
	Name string
	D    []float64 // diagonal, length n
	E    []float64 // off-diagonal, length n-1
}

// N returns the matrix order.
func (m Matrix) N() int { return len(m.D) }

// Type generates the Table III matrix of the given type (1..15) and order n.
// rng drives the random types and the inverse-eigenvalue weights; pass a
// fixed seed for reproducible experiments.
func Type(typ, n int, rng *rand.Rand) (Matrix, error) {
	if n < 1 {
		return Matrix{}, fmt.Errorf("testmat: order %d", n)
	}
	name := fmt.Sprintf("type%d", typ)
	ulp := lapack.Ulp
	switch typ {
	case 1:
		lam := make([]float64, n)
		lam[0] = 1
		for i := 1; i < n; i++ {
			lam[i] = 1 / CondK
		}
		d, e := FromSpectrum(lam, rng)
		return Matrix{name, d, e}, nil
	case 2:
		lam := make([]float64, n)
		for i := 0; i < n-1; i++ {
			lam[i] = 1
		}
		lam[n-1] = 1 / CondK
		d, e := FromSpectrum(lam, rng)
		return Matrix{name, d, e}, nil
	case 3:
		lam := make([]float64, n)
		for i := 0; i < n; i++ {
			p := 0.0
			if n > 1 {
				p = float64(i) / float64(n-1)
			}
			lam[i] = math.Pow(CondK, -p)
		}
		d, e := FromSpectrum(lam, rng)
		return Matrix{name, d, e}, nil
	case 4:
		lam := make([]float64, n)
		for i := 0; i < n; i++ {
			p := 0.0
			if n > 1 {
				p = float64(i) / float64(n-1)
			}
			lam[i] = 1 - p*(1-1/CondK)
		}
		d, e := FromSpectrum(lam, rng)
		return Matrix{name, d, e}, nil
	case 5:
		lam := make([]float64, n)
		for i := range lam {
			lam[i] = math.Exp(-rng.Float64() * math.Log(CondK))
		}
		d, e := FromSpectrum(lam, rng)
		return Matrix{name, d, e}, nil
	case 6:
		lam := make([]float64, n)
		for i := range lam {
			lam[i] = 2*rng.Float64() - 1
		}
		d, e := FromSpectrum(lam, rng)
		return Matrix{name, d, e}, nil
	case 7:
		lam := make([]float64, n)
		for i := 0; i < n-1; i++ {
			lam[i] = ulp * float64(i+1)
		}
		lam[n-1] = 1
		d, e := FromSpectrum(lam, rng)
		return Matrix{name, d, e}, nil
	case 8:
		lam := make([]float64, n)
		lam[0] = ulp
		for i := 1; i < n-1; i++ {
			lam[i] = 1 + float64(i+1)*math.Sqrt(ulp)
		}
		if n > 1 {
			lam[n-1] = 2
		}
		d, e := FromSpectrum(lam, rng)
		return Matrix{name, d, e}, nil
	case 9:
		lam := make([]float64, n)
		lam[0] = 1
		for i := 1; i < n; i++ {
			lam[i] = lam[i-1] + 100*ulp
		}
		d, e := FromSpectrum(lam, rng)
		return Matrix{name, d, e}, nil
	case 10:
		d := make([]float64, n)
		e := make([]float64, n-1)
		for i := range d {
			d[i] = 2
		}
		for i := range e {
			e[i] = 1
		}
		return Matrix{"type10 (1,2,1)", d, e}, nil
	case 11:
		// Wilkinson W⁺: diagonal |i - (n-1)/2|, unit couplings.
		d := make([]float64, n)
		e := make([]float64, n-1)
		for i := range d {
			d[i] = math.Abs(float64(i) - float64(n-1)/2)
		}
		for i := range e {
			e[i] = 1
		}
		return Matrix{"type11 Wilkinson", d, e}, nil
	case 12:
		// Clement: zero diagonal, e_i = sqrt((i+1)(n-1-i)).
		d := make([]float64, n)
		e := make([]float64, n-1)
		for i := 0; i < n-1; i++ {
			e[i] = math.Sqrt(float64(i+1) * float64(n-1-i))
		}
		return Matrix{"type12 Clement", d, e}, nil
	case 13:
		// Legendre polynomials' Jacobi matrix.
		d := make([]float64, n)
		e := make([]float64, n-1)
		for i := 1; i < n; i++ {
			fi := float64(i)
			e[i-1] = fi / math.Sqrt((2*fi-1)*(2*fi+1))
		}
		return Matrix{"type13 Legendre", d, e}, nil
	case 14:
		// Laguerre polynomials' Jacobi matrix.
		d := make([]float64, n)
		e := make([]float64, n-1)
		for i := 0; i < n; i++ {
			d[i] = float64(2*i + 1)
		}
		for i := 1; i < n; i++ {
			e[i-1] = float64(i)
		}
		return Matrix{"type14 Laguerre", d, e}, nil
	case 15:
		// Hermite polynomials' Jacobi matrix.
		d := make([]float64, n)
		e := make([]float64, n-1)
		for i := 1; i < n; i++ {
			e[i-1] = math.Sqrt(float64(i) / 2)
		}
		return Matrix{"type15 Hermite", d, e}, nil
	}
	return Matrix{}, fmt.Errorf("testmat: unknown type %d (want 1..15)", typ)
}

// FromSpectrum builds a symmetric tridiagonal matrix whose spectrum matches
// lambda to O(n·eps·‖λ‖∞): the Jacobi inverse eigenvalue problem, solved by
// the Lanczos process on diag(λ) with random positive weights and full
// reorthogonalization. Eigenvalues that coincide to relative roundoff are
// realized as appended diagonal entries with roundoff-level couplings (a
// Jacobi matrix proper cannot carry multiple eigenvalues).
func FromSpectrum(lambda []float64, rng *rand.Rand) (d, e []float64) {
	n := len(lambda)
	lam := append([]float64(nil), lambda...)
	sort.Float64s(lam)
	scale := math.Max(math.Abs(lam[0]), math.Abs(lam[n-1]))
	if scale == 0 {
		scale = 1
	}
	// Separate distinct values from repeats.
	tol := 4 * lapack.Eps * scale
	distinct := []float64{lam[0]}
	var repeats []float64
	for i := 1; i < n; i++ {
		if lam[i]-distinct[len(distinct)-1] <= tol {
			repeats = append(repeats, lam[i])
		} else {
			distinct = append(distinct, lam[i])
		}
	}

	m := len(distinct)
	d = make([]float64, n)
	e = make([]float64, max(n-1, 1))

	if m == 1 {
		// Fully degenerate spectrum.
		for i := 0; i < n; i++ {
			d[i] = lam[i]
		}
		for i := 0; i < n-1; i++ {
			e[i] = lapack.Eps * scale
		}
		return d, e[:n-1]
	}

	// Lanczos on diag(distinct) with random positive weights.
	q := make([]float64, m)
	var nrm float64
	for i := range q {
		q[i] = 0.1 + rng.Float64()
		nrm += q[i] * q[i]
	}
	nrm = math.Sqrt(nrm)
	for i := range q {
		q[i] /= nrm
	}
	alpha, beta := lanczosDiag(distinct, q)
	copy(d, alpha)
	copy(e, beta)

	// Append the repeated eigenvalues with roundoff-level couplings.
	for i, v := range repeats {
		d[m+i] = v
		e[m+i-1] = lapack.Eps * scale
	}
	return d, e[:n-1]
}

// FromSpectrumDense realizes a prescribed spectrum the way LAPACK's DLATMS +
// DSYTRD route (the stetester construction) does: a random orthogonal
// similarity Q·diag(λ)·Qᵀ formed explicitly, then Householder reduction back
// to tridiagonal form. O(n³), used to cross-validate the O(n²·m) Lanczos
// construction of FromSpectrum and available when a fully dense mixing of
// the eigenvector basis is wanted.
func FromSpectrumDense(lambda []float64, rng *rand.Rand) (d, e []float64) {
	n := len(lambda)
	if n == 1 {
		return []float64{lambda[0]}, nil
	}
	// A = Q Λ Qᵀ with Q from Householder reflectors of random vectors:
	// start from diag(λ) and apply the reflectors from both sides.
	a := make([]float64, n*n)
	for i, v := range lambda {
		a[i+i*n] = v
	}
	work := make([]float64, n)
	for k := 0; k < n-1; k++ {
		// random unit reflector v (dense), H = I - 2 v vᵀ
		v := make([]float64, n)
		var nrm float64
		for i := range v {
			v[i] = rng.NormFloat64()
			nrm += v[i] * v[i]
		}
		nrm = math.Sqrt(nrm)
		for i := range v {
			v[i] /= nrm
		}
		// A = H A H: w = A v; f = vᵀw; A -= 2 v wᵀ + 2 w vᵀ - 4 f v vᵀ
		for i := 0; i < n; i++ {
			var s float64
			for l := 0; l < n; l++ {
				s += a[i+l*n] * v[l]
			}
			work[i] = s
		}
		var f float64
		for i := 0; i < n; i++ {
			f += v[i] * work[i]
		}
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				a[i+j*n] += -2*v[i]*work[j] - 2*work[i]*v[j] + 4*f*v[i]*v[j]
			}
		}
	}
	// Reduce back to tridiagonal.
	d = make([]float64, n)
	e = make([]float64, n-1)
	tau := make([]float64, n-1)
	lapack.Dsytd2(n, a, n, d, e, tau)
	return d, e
}

// lanczosDiag runs the Lanczos process on A = diag(a) with start vector q0,
// using full reorthogonalization (twice), returning the Jacobi coefficients.
func lanczosDiag(a, q0 []float64) (alpha, beta []float64) {
	m := len(a)
	alpha = make([]float64, m)
	beta = make([]float64, max(m-1, 1))
	// Q holds all Lanczos vectors for reorthogonalization.
	Q := make([][]float64, 0, m)
	q := append([]float64(nil), q0...)
	Q = append(Q, append([]float64(nil), q...))
	var qprev []float64
	bprev := 0.0
	v := make([]float64, m)
	for j := 0; j < m; j++ {
		for i := 0; i < m; i++ {
			v[i] = a[i] * q[i]
		}
		if qprev != nil {
			for i := 0; i < m; i++ {
				v[i] -= bprev * qprev[i]
			}
		}
		var aj float64
		for i := 0; i < m; i++ {
			aj += q[i] * v[i]
		}
		alpha[j] = aj
		for i := 0; i < m; i++ {
			v[i] -= aj * q[i]
		}
		// Full reorthogonalization, applied twice for stability.
		for pass := 0; pass < 2; pass++ {
			for _, qi := range Q {
				var dot float64
				for i := 0; i < m; i++ {
					dot += qi[i] * v[i]
				}
				for i := 0; i < m; i++ {
					v[i] -= dot * qi[i]
				}
			}
		}
		if j == m-1 {
			break
		}
		var b float64
		for i := 0; i < m; i++ {
			b += v[i] * v[i]
		}
		b = math.Sqrt(b)
		if b == 0 {
			// Breakdown: the remaining invariant subspace was exhausted
			// (should not happen for distinct eigenvalues and nonzero
			// weights); restart with a fresh direction orthogonal to Q.
			for i := 0; i < m; i++ {
				v[i] = 1 / float64(i+2)
			}
			for _, qi := range Q {
				var dot float64
				for i := 0; i < m; i++ {
					dot += qi[i] * v[i]
				}
				for i := 0; i < m; i++ {
					v[i] -= dot * qi[i]
				}
			}
			b = 0
			for i := 0; i < m; i++ {
				b += v[i] * v[i]
			}
			b = math.Sqrt(b)
			if b == 0 {
				b = lapack.SafeMin
			}
		}
		beta[j] = b
		qprev = q
		bprev = b
		q = make([]float64, m)
		for i := 0; i < m; i++ {
			q[i] = v[i] / b
		}
		Q = append(Q, append([]float64(nil), q...))
	}
	return alpha, beta
}

// AppSet returns the application-like matrix collection standing in for the
// LAPACK stetester application matrices of the paper's Figure 10 (see
// DESIGN.md §2 for the substitution rationale). All are genuine operators
// from application domains with heterogeneous spectra and sizes around n.
func AppSet(n int, rng *rand.Rand) []Matrix {
	var out []Matrix
	add := func(m Matrix, err error) {
		if err == nil {
			out = append(out, m)
		}
	}

	// Orthogonal-polynomial operators (quantum / quadrature).
	add(Type(13, n, rng))
	add(Type(14, n, rng))
	add(Type(15, n, rng))

	// 1-D Anderson model: random potential, unit hopping (localization).
	{
		d := make([]float64, n)
		e := make([]float64, n-1)
		for i := range d {
			d[i] = 4 * (rng.Float64() - 0.5)
		}
		for i := range e {
			e[i] = 1
		}
		out = append(out, Matrix{"anderson", d, e})
	}

	// Weighted path-graph Laplacian (spectral partitioning / FEM chain).
	{
		w := make([]float64, n-1)
		for i := range w {
			w[i] = 0.5 + rng.Float64()
		}
		d := make([]float64, n)
		e := make([]float64, n-1)
		for i := 0; i < n-1; i++ {
			d[i] += w[i]
			d[i+1] += w[i]
			e[i] = -w[i]
		}
		out = append(out, Matrix{"path-laplacian", d, e})
	}

	// Glued Wilkinson blocks (tight clusters, electronic-structure-like).
	{
		bs := 21
		blocks := max(1, n/bs)
		nn := blocks * bs
		d := make([]float64, nn)
		e := make([]float64, nn-1)
		for b := 0; b < blocks; b++ {
			for i := 0; i < bs; i++ {
				d[b*bs+i] = math.Abs(float64(i - bs/2))
			}
			for i := 0; i < bs-1; i++ {
				e[b*bs+i] = 1
			}
			if b < blocks-1 {
				e[b*bs+bs-1] = 1e-7
			}
		}
		out = append(out, Matrix{"glued-wilkinson", d, e})
	}

	// Clustered "electronic bands": groups of close eigenvalues.
	{
		lam := make([]float64, n)
		bands := 8
		for i := range lam {
			center := float64(i%bands) * 2
			lam[i] = center + 1e-5*rng.NormFloat64()
		}
		d, e := FromSpectrum(lam, rng)
		out = append(out, Matrix{"banded-spectrum", d, e})
	}

	// Free FEM rod stiffness (hat functions, uniform mesh), tridiagonal.
	{
		h := 1.0 / float64(n+1)
		d := make([]float64, n)
		e := make([]float64, n-1)
		for i := range d {
			d[i] = 2 / h
		}
		for i := range e {
			e[i] = -1 / h
		}
		out = append(out, Matrix{"fem-rod", d, e})
	}
	return out
}
