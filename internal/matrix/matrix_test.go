package matrix

import "testing"

func TestNewDenseAndAccessors(t *testing.T) {
	m := NewDense(3, 2)
	m.Set(2, 1, 5)
	if m.At(2, 1) != 5 || m.Data[2+1*3] != 5 {
		t.Error("Set/At column-major layout")
	}
	if len(m.Col(1)) != 3 || m.Col(1)[2] != 5 {
		t.Error("Col slice")
	}
}

func TestView(t *testing.T) {
	m := NewDense(4, 4)
	for j := 0; j < 4; j++ {
		for i := 0; i < 4; i++ {
			m.Set(i, j, float64(10*i+j))
		}
	}
	v := m.View(1, 2, 2, 2)
	if v.At(0, 0) != 12 || v.At(1, 1) != 23 {
		t.Errorf("View values: %v %v", v.At(0, 0), v.At(1, 1))
	}
	v.Set(0, 0, -1)
	if m.At(1, 2) != -1 {
		t.Error("View must alias parent storage")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-bounds View must panic")
		}
	}()
	m.View(2, 2, 3, 3)
}

func TestIdentityZeroCloneEqual(t *testing.T) {
	m := NewDense(3, 3)
	m.SetIdentity()
	if m.At(0, 0) != 1 || m.At(1, 0) != 0 || m.At(2, 2) != 1 {
		t.Error("SetIdentity")
	}
	c := m.Clone()
	if !Equal(m, c) {
		t.Error("Clone/Equal")
	}
	c.Set(1, 1, 7)
	if Equal(m, c) {
		t.Error("Equal must detect difference")
	}
	c.Zero()
	if c.At(1, 1) != 0 {
		t.Error("Zero")
	}
	if Equal(m, NewDense(3, 2)) {
		t.Error("Equal must check shape")
	}
}

func TestTranspose(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(0, 1, 4)
	m.Set(1, 2, 7)
	tt := m.Transpose()
	if tt.Rows != 3 || tt.Cols != 2 || tt.At(1, 0) != 4 || tt.At(2, 1) != 7 {
		t.Error("Transpose")
	}
}

func TestFromColMajor(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	m := FromColMajor(2, 3, 2, data)
	if m.At(1, 2) != 6 {
		t.Error("FromColMajor")
	}
	defer func() {
		if recover() == nil {
			t.Error("short data must panic")
		}
	}()
	FromColMajor(4, 3, 2, data)
}

func TestCopyFrom(t *testing.T) {
	a := NewDense(2, 2)
	a.Set(0, 0, 1)
	b := NewDense(2, 2)
	b.CopyFrom(a)
	if b.At(0, 0) != 1 {
		t.Error("CopyFrom")
	}
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch must panic")
		}
	}()
	b.CopyFrom(NewDense(3, 2))
}
