// Package matrix provides a minimal column-major dense matrix type shared by
// the numerical kernels. The layout matches LAPACK conventions: element (i,j)
// of a matrix with leading dimension ld lives at Data[i+j*ld], so kernels
// translated from LAPACK keep their index arithmetic unchanged.
package matrix

import "fmt"

// Dense is a column-major matrix view. It may alias a sub-block of a larger
// allocation; Stride is the leading dimension of the underlying allocation.
type Dense struct {
	Rows   int
	Cols   int
	Stride int
	Data   []float64
}

// NewDense allocates a zeroed r×c matrix with a tight leading dimension.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", r, c))
	}
	ld := r
	if ld < 1 {
		ld = 1
	}
	return &Dense{Rows: r, Cols: c, Stride: ld, Data: make([]float64, ld*c)}
}

// FromColMajor wraps existing column-major data without copying.
func FromColMajor(r, c, ld int, data []float64) *Dense {
	if ld < r || (c > 0 && len(data) < ld*(c-1)+r) {
		panic("matrix: data too short for dimensions")
	}
	return &Dense{Rows: r, Cols: c, Stride: ld, Data: data}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i+j*m.Stride] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i+j*m.Stride] = v }

// Col returns column j as a slice aliasing the matrix storage.
func (m *Dense) Col(j int) []float64 {
	return m.Data[j*m.Stride : j*m.Stride+m.Rows]
}

// View returns an r×c sub-matrix starting at (i, j), aliasing m's storage.
func (m *Dense) View(i, j, r, c int) *Dense {
	if i < 0 || j < 0 || r < 0 || c < 0 || i+r > m.Rows || j+c > m.Cols {
		panic(fmt.Sprintf("matrix: view (%d,%d,%d,%d) outside %dx%d", i, j, r, c, m.Rows, m.Cols))
	}
	return &Dense{Rows: r, Cols: c, Stride: m.Stride, Data: m.Data[i+j*m.Stride:]}
}

// CopyFrom copies src into m; dimensions must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic("matrix: dimension mismatch in CopyFrom")
	}
	for j := 0; j < m.Cols; j++ {
		copy(m.Col(j), src.Col(j))
	}
}

// Clone returns a tight-stride deep copy of m.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	c.CopyFrom(m)
	return c
}

// Zero clears all elements of the view.
func (m *Dense) Zero() {
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = 0
		}
	}
}

// SetIdentity writes the identity pattern (1 on the diagonal, 0 elsewhere).
func (m *Dense) SetIdentity() {
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = 0
		}
		if j < m.Rows {
			col[j] = 1
		}
	}
}

// Transpose returns a new matrix holding mᵀ.
func (m *Dense) Transpose() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for j := 0; j < m.Cols; j++ {
		col := m.Col(j)
		for i := 0; i < m.Rows; i++ {
			t.Data[j+i*t.Stride] = col[i]
		}
	}
	return t
}

// Equal reports whether two matrices have identical shape and elements.
func Equal(a, b *Dense) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for j := 0; j < a.Cols; j++ {
		ca, cb := a.Col(j), b.Col(j)
		for i := range ca {
			if ca[i] != cb[i] {
				return false
			}
		}
	}
	return true
}
