package trace

import (
	"math"
	"strings"
	"testing"
	"time"

	"tridiag/internal/quark"
	"tridiag/internal/sched"
)

func sampleGraph() *quark.Graph {
	g := &quark.Graph{}
	add := func(id int, class string, worker int, start, end float64) {
		g.Tasks = append(g.Tasks, quark.TaskInfo{
			ID: id, Class: class, Label: class, Worker: worker,
			Start: time.Duration(start * float64(time.Second)),
			End:   time.Duration(end * float64(time.Second)),
		})
	}
	add(0, "STEDC", 0, 0, 1)
	add(1, "STEDC", 1, 0, 1)
	add(2, "ComputeDeflation", 0, 1, 1.2)
	add(3, "UpdateVect", 1, 1.2, 2.2)
	g.Tasks[3].Stolen = true
	g.Edges = [][2]int{{0, 2}, {1, 2}, {2, 3}}
	return g
}

func TestFromGraph(t *testing.T) {
	tl := FromGraph(sampleGraph())
	if tl.Workers != 2 || len(tl.Events) != 4 {
		t.Fatalf("workers=%d events=%d", tl.Workers, len(tl.Events))
	}
	if math.Abs(tl.Makespan-2.2) > 1e-9 {
		t.Errorf("makespan %v", tl.Makespan)
	}
}

func TestGanttOutput(t *testing.T) {
	tl := FromGraph(sampleGraph())
	out := tl.Gantt(40)
	if !strings.Contains(out, "w00") || !strings.Contains(out, "w01") {
		t.Errorf("missing worker rows:\n%s", out)
	}
	if !strings.Contains(out, "S=STEDC") || !strings.Contains(out, "U=UpdateVect") {
		t.Errorf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "S") || !strings.Contains(out, "U") {
		t.Errorf("missing symbols:\n%s", out)
	}
	// idle time on worker 0 after deflation
	if !strings.Contains(out, ".") {
		t.Errorf("expected idle cells:\n%s", out)
	}
}

func TestClassBreakdownAndIdle(t *testing.T) {
	tl := FromGraph(sampleGraph())
	bd := tl.ClassBreakdown()
	if math.Abs(bd["STEDC"]-2) > 1e-9 {
		t.Errorf("STEDC busy %v", bd["STEDC"])
	}
	if math.Abs(bd["UpdateVect"]-1) > 1e-9 {
		t.Errorf("UpdateVect busy %v", bd["UpdateVect"])
	}
	// busy = 3.2s over 2 workers * 2.2s
	want := 1 - 3.2/4.4
	if math.Abs(tl.IdleFraction()-want) > 1e-9 {
		t.Errorf("idle %v want %v", tl.IdleFraction(), want)
	}
	rep := tl.BreakdownReport()
	if !strings.Contains(rep, "STEDC") || !strings.Contains(rep, "makespan") {
		t.Errorf("report:\n%s", rep)
	}
}

func TestCSV(t *testing.T) {
	tl := FromGraph(sampleGraph())
	csv := tl.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 5 {
		t.Fatalf("csv lines: %d", len(lines))
	}
	if lines[0] != "task,class,label,worker,stolen,canceled,start,end" {
		t.Errorf("header %q", lines[0])
	}
	stolen := 0
	for _, l := range lines[1:] {
		if strings.Contains(l, ",1,") && strings.Contains(l, "UpdateVect") {
			stolen++
		}
	}
	if stolen != 1 {
		t.Errorf("expected exactly the stolen UpdateVect row flagged, got %d:\n%s", stolen, csv)
	}
}

func TestStealCountAndReport(t *testing.T) {
	tl := FromGraph(sampleGraph())
	if tl.StealCount() != 1 {
		t.Errorf("steal count %d, want 1", tl.StealCount())
	}
	rep := tl.BreakdownReport()
	if !strings.Contains(rep, "stolen") {
		t.Errorf("report missing steal line:\n%s", rep)
	}
}

func TestFromSimulation(t *testing.T) {
	g := sampleGraph()
	r, err := sched.Simulate(g, sched.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	tl := FromSimulation(g, r, 2)
	if len(tl.Events) != 4 {
		t.Fatalf("events %d", len(tl.Events))
	}
	if tl.Makespan <= 0 {
		t.Error("zero makespan")
	}
	out := tl.Gantt(30)
	if !strings.Contains(out, "makespan") {
		t.Errorf("gantt:\n%s", out)
	}
}

func TestEmptyTimeline(t *testing.T) {
	tl := &Timeline{}
	if out := tl.Gantt(20); !strings.Contains(out, "empty") {
		t.Errorf("empty gantt: %q", out)
	}
	if tl.IdleFraction() != 0 {
		t.Error("empty idle")
	}
}
