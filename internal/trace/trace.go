// Package trace renders execution timelines of task-flow runs: an ASCII
// Gantt chart (one row per worker, the textual analogue of the paper's
// Figures 3 and 4), per-kernel-class time breakdowns, idle statistics, and
// CSV export for external plotting.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"tridiag/internal/quark"
	"tridiag/internal/sched"
)

// Event is one task's placement on the timeline.
type Event struct {
	Task     int
	Class    string
	Label    string
	Worker   int
	Stolen   bool    // ran on a different worker than it was placed on
	Canceled bool    // skipped: a predecessor failed or the solve was cancelled
	Start    float64 // seconds
	End      float64
}

// Timeline is a complete schedule: real (from a quark run) or simulated.
type Timeline struct {
	Events   []Event
	Workers  int
	Makespan float64
}

// FromGraph builds a timeline from a captured real execution.
func FromGraph(g *quark.Graph) *Timeline {
	tl := &Timeline{}
	for _, t := range g.Tasks {
		ev := Event{
			Task: t.ID, Class: t.Class, Label: t.Label, Worker: t.Worker,
			Stolen: t.Stolen, Canceled: t.Canceled,
			Start: t.Start.Seconds(), End: t.End.Seconds(),
		}
		tl.Events = append(tl.Events, ev)
		if t.Worker+1 > tl.Workers {
			tl.Workers = t.Worker + 1
		}
		if ev.End > tl.Makespan {
			tl.Makespan = ev.End
		}
	}
	return tl
}

// FromSimulation builds a timeline from a replay-simulated schedule.
func FromSimulation(g *quark.Graph, r *sched.Result, workers int) *Timeline {
	tl := &Timeline{Workers: workers, Makespan: r.Makespan}
	for _, s := range r.Spans {
		t := g.Tasks[s.Task]
		tl.Events = append(tl.Events, Event{
			Task: s.Task, Class: t.Class, Label: t.Label, Worker: s.Worker,
			Start: s.Start, End: s.End,
		})
	}
	return tl
}

// classSymbols assigns a stable single-character symbol to each class.
var classSymbols = map[string]byte{
	"STEDC":            'S',
	"ComputeDeflation": 'D',
	"PermuteV":         'P',
	"LAED4":            '4',
	"ComputeLocalW":    'w',
	"ReduceW":          'R',
	"CopyBackDeflated": 'C',
	"ComputeVect":      'V',
	"UpdateVect":       'U',
	"PackV":            'K',
	"SortEigenvectors": 'E',
	"Dlamrg":           'm',
	"Scale":            's',
	"LASET":            'L',
}

func symbolFor(class string, taken map[byte]bool) byte {
	if s, ok := classSymbols[class]; ok {
		return s
	}
	for i := 0; i < len(class); i++ {
		c := class[i]
		if !taken[c] {
			return c
		}
	}
	return '#'
}

// Gantt renders the timeline as one text row per worker, width characters
// wide. Each cell shows the kernel-class symbol of the task occupying most
// of that time bucket; '.' marks idle time. A legend follows the chart.
func (tl *Timeline) Gantt(width int) string {
	if width < 10 {
		width = 10
	}
	if tl.Makespan == 0 || len(tl.Events) == 0 {
		return "(empty timeline)\n"
	}
	classes := tl.classes()
	taken := map[byte]bool{'.': true}
	sym := map[string]byte{}
	for _, c := range classes {
		s := symbolFor(c, taken)
		sym[c] = s
		taken[s] = true
	}
	rows := make([][]float64, tl.Workers) // occupancy per bucket per class idx
	chosen := make([][]byte, tl.Workers)
	occupied := make([][]float64, tl.Workers)
	for w := range chosen {
		chosen[w] = make([]byte, width)
		occupied[w] = make([]float64, width)
		rows[w] = nil
		for i := range chosen[w] {
			chosen[w][i] = '.'
		}
	}
	dt := tl.Makespan / float64(width)
	for _, ev := range tl.Events {
		if ev.Worker < 0 {
			continue
		}
		b0 := int(ev.Start / dt)
		b1 := int(ev.End / dt)
		for b := b0; b <= b1 && b < width; b++ {
			lo := float64(b) * dt
			hi := lo + dt
			overlap := min(ev.End, hi) - max(ev.Start, lo)
			if overlap > occupied[ev.Worker][b] {
				occupied[ev.Worker][b] = overlap
				chosen[ev.Worker][b] = sym[ev.Class]
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "makespan %.4fs, %d workers, %d tasks\n", tl.Makespan, tl.Workers, len(tl.Events))
	for w := 0; w < tl.Workers; w++ {
		fmt.Fprintf(&b, "w%02d |%s|\n", w, chosen[w])
	}
	b.WriteString("legend:")
	for _, c := range classes {
		fmt.Fprintf(&b, " %c=%s", sym[c], c)
	}
	b.WriteString(" .=idle\n")
	return b.String()
}

func (tl *Timeline) classes() []string {
	set := map[string]bool{}
	for _, ev := range tl.Events {
		set[ev.Class] = true
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// ClassBreakdown returns total busy seconds per kernel class.
func (tl *Timeline) ClassBreakdown() map[string]float64 {
	out := map[string]float64{}
	for _, ev := range tl.Events {
		out[ev.Class] += ev.End - ev.Start
	}
	return out
}

// BreakdownReport formats the class breakdown as a percentage table.
func (tl *Timeline) BreakdownReport() string {
	bd := tl.ClassBreakdown()
	var tot float64
	for _, v := range bd {
		tot += v
	}
	classes := tl.classes()
	sort.Slice(classes, func(i, j int) bool { return bd[classes[i]] > bd[classes[j]] })
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %10s %7s\n", "kernel", "busy (s)", "share")
	for _, c := range classes {
		fmt.Fprintf(&b, "%-20s %10.4f %6.1f%%\n", c, bd[c], 100*bd[c]/tot)
	}
	fmt.Fprintf(&b, "%-20s %10.4f\n", "total work", tot)
	fmt.Fprintf(&b, "%-20s %10.4f (idle %.1f%%)\n", "makespan", tl.Makespan, 100*tl.IdleFraction())
	if s := tl.StealCount(); s > 0 {
		fmt.Fprintf(&b, "%-20s %10d of %d tasks\n", "stolen", s, len(tl.Events))
	}
	if c := tl.CanceledCount(); c > 0 {
		fmt.Fprintf(&b, "%-20s %10d of %d tasks\n", "canceled", c, len(tl.Events))
	}
	return b.String()
}

// CanceledCount returns how many tasks were skipped instead of executed
// (failure cascade or external cancellation).
func (tl *Timeline) CanceledCount() int {
	n := 0
	for _, ev := range tl.Events {
		if ev.Canceled {
			n++
		}
	}
	return n
}

// StealCount returns how many tasks ran on a worker other than the one they
// were placed on (work-stealing migrations).
func (tl *Timeline) StealCount() int {
	n := 0
	for _, ev := range tl.Events {
		if ev.Stolen {
			n++
		}
	}
	return n
}

// IdleFraction returns the fraction of worker-seconds spent idle.
func (tl *Timeline) IdleFraction() float64 {
	if tl.Makespan == 0 || tl.Workers == 0 {
		return 0
	}
	var busy float64
	for _, ev := range tl.Events {
		busy += ev.End - ev.Start
	}
	return 1 - busy/(tl.Makespan*float64(tl.Workers))
}

// CSV exports the timeline as
// task,class,label,worker,stolen,canceled,start,end rows.
func (tl *Timeline) CSV() string {
	var b strings.Builder
	b.WriteString("task,class,label,worker,stolen,canceled,start,end\n")
	evs := append([]Event(nil), tl.Events...)
	sort.Slice(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })
	for _, ev := range evs {
		stolen, canceled := 0, 0
		if ev.Stolen {
			stolen = 1
		}
		if ev.Canceled {
			canceled = 1
		}
		fmt.Fprintf(&b, "%d,%s,%q,%d,%d,%d,%.9f,%.9f\n", ev.Task, ev.Class, ev.Label, ev.Worker, stolen, canceled, ev.Start, ev.End)
	}
	return b.String()
}
