package svd

import (
	"math"
	"math/rand"
	"testing"
)

func randMat(rng *rand.Rand, m, n, lda int) []float64 {
	a := make([]float64, lda*n)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			a[i+j*lda] = rng.NormFloat64()
		}
	}
	return a
}

// checkSVD verifies A = U Σ Vᵀ, UᵀU = I, VᵀV = I, S descending.
func checkSVD(t *testing.T, m, n int, aorig []float64, lda int, r *Result, tol float64) {
	t.Helper()
	for j := 1; j < n; j++ {
		if r.S[j] > r.S[j-1]+1e-12 {
			t.Errorf("singular values not descending at %d: %v > %v", j, r.S[j], r.S[j-1])
		}
		if r.S[j] < 0 {
			t.Errorf("negative singular value %v", r.S[j])
		}
	}
	var anorm float64
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			anorm = math.Max(anorm, math.Abs(aorig[i+j*lda]))
		}
	}
	if anorm == 0 {
		anorm = 1
	}
	// reconstruction
	worst := 0.0
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			var s float64
			for k := 0; k < n; k++ {
				s += r.U[i+k*m] * r.S[k] * r.V[j+k*n]
			}
			worst = math.Max(worst, math.Abs(s-aorig[i+j*lda]))
		}
	}
	if worst/(anorm*float64(n)) > tol {
		t.Errorf("reconstruction residual %.3e", worst/(anorm*float64(n)))
	}
	// orthogonality
	for a := 0; a < n; a++ {
		for b := a; b < n; b++ {
			var su, sv float64
			for i := 0; i < m; i++ {
				su += r.U[i+a*m] * r.U[i+b*m]
			}
			for i := 0; i < n; i++ {
				sv += r.V[i+a*n] * r.V[i+b*n]
			}
			want := 0.0
			if a == b {
				want = 1
			}
			if math.Abs(su-want) > tol*float64(n) {
				t.Errorf("UᵀU(%d,%d) = %v", a, b, su)
			}
			if math.Abs(sv-want) > tol*float64(n) {
				t.Errorf("VᵀV(%d,%d) = %v", a, b, sv)
			}
		}
	}
}

func TestSVDSquareRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	for _, n := range []int{1, 2, 5, 20, 60} {
		a := randMat(rng, n, n, n)
		orig := append([]float64(nil), a...)
		r, err := Decompose(n, n, a, n, nil)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		checkSVD(t, n, n, orig, n, r, 1e-12)
	}
}

func TestSVDTallRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(503))
	for _, d := range []struct{ m, n int }{{5, 3}, {30, 10}, {80, 40}} {
		lda := d.m + 2
		a := randMat(rng, d.m, d.n, lda)
		orig := append([]float64(nil), a...)
		r, err := Decompose(d.m, d.n, a, lda, nil)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		checkSVD(t, d.m, d.n, orig, lda, r, 1e-12)
	}
}

func TestSVDKnownValues(t *testing.T) {
	// diag(3, 2, 1) has singular values 3, 2, 1.
	n := 3
	a := []float64{3, 0, 0, 0, 2, 0, 0, 0, 1}
	orig := append([]float64(nil), a...)
	r, err := Decompose(n, n, a, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{3, 2, 1} {
		if math.Abs(r.S[i]-want) > 1e-13 {
			t.Errorf("S[%d]=%v want %v", i, r.S[i], want)
		}
	}
	checkSVD(t, n, n, orig, n, r, 1e-13)
}

func TestSVDValuesMatchEigen(t *testing.T) {
	// singular values of A = sqrt of eigenvalues of AᵀA
	rng := rand.New(rand.NewSource(507))
	n := 25
	a := randMat(rng, n, n, n)
	a2 := append([]float64(nil), a...)
	s, err := Values(n, n, a2, n)
	if err != nil {
		t.Fatal(err)
	}
	a3 := append([]float64(nil), a...)
	r, err := Decompose(n, n, a3, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s {
		if math.Abs(s[i]-r.S[i]) > 1e-10*(s[0]+1) {
			t.Errorf("values-only vs full at %d: %v vs %v", i, s[i], r.S[i])
		}
	}
}

func TestSVDIllConditioned(t *testing.T) {
	// Prescribed singular values over 6 orders of magnitude.
	rng := rand.New(rand.NewSource(509))
	n := 20
	// A = U diag(s) Vᵀ with random rotations built from QR of random matrices
	svals := make([]float64, n)
	for i := range svals {
		svals[i] = math.Pow(10, -6*float64(i)/float64(n-1))
	}
	u := randOrth(rng, n)
	v := randOrth(rng, n)
	a := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			var s float64
			for k := 0; k < n; k++ {
				s += u[i+k*n] * svals[k] * v[j+k*n]
			}
			a[i+j*n] = s
		}
	}
	orig := append([]float64(nil), a...)
	r, err := Decompose(n, n, a, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The Golub-Kahan eigenvector route loses some orthogonality between the
	// singular vectors of the *smallest* σ (the ±σ pairs cluster at zero),
	// a known trade-off of this formulation vs a dedicated bidiagonal D&C;
	// the tolerance reflects that.
	checkSVD(t, n, n, orig, n, r, 1e-9)
	for i := range svals {
		if math.Abs(r.S[i]-svals[i]) > 1e-13 {
			t.Errorf("sigma %d: got %v want %v", i, r.S[i], svals[i])
		}
	}
}

// randOrth builds a random orthogonal matrix by Gram-Schmidt on a Gaussian.
func randOrth(rng *rand.Rand, n int) []float64 {
	q := randMat(rng, n, n, n)
	for j := 0; j < n; j++ {
		col := q[j*n : j*n+n]
		for k := 0; k < j; k++ {
			prev := q[k*n : k*n+n]
			var dot float64
			for i := range col {
				dot += col[i] * prev[i]
			}
			for i := range col {
				col[i] -= dot * prev[i]
			}
		}
		var nrm float64
		for _, x := range col {
			nrm += x * x
		}
		nrm = math.Sqrt(nrm)
		for i := range col {
			col[i] /= nrm
		}
	}
	return q
}

func TestSVDErrors(t *testing.T) {
	if _, err := Decompose(2, 3, make([]float64, 6), 2, nil); err == nil {
		t.Error("m<n must error")
	}
	if _, err := Values(2, 3, make([]float64, 6), 2); err == nil {
		t.Error("m<n must error")
	}
	r, err := Decompose(3, 0, nil, 3, nil)
	if err != nil || len(r.S) != 0 {
		t.Error("n=0")
	}
}
