// Package svd implements a singular value decomposition built on the
// task-flow divide & conquer eigensolver — the extension the paper's
// conclusion proposes ("the SVD follows the same scheme ... it is also a
// good candidate for applying the ideas of this paper").
//
// The route: Householder bidiagonalization A = Q₁ B P₁ᵀ, then the
// Golub–Kahan trick — the perfect-shuffle permutation of [[0, Bᵀ], [B, 0]]
// is a symmetric tridiagonal matrix with zero diagonal whose positive
// eigenvalues are the singular values of B and whose eigenvectors interleave
// the singular vector pairs — solved with the task-flow D&C, followed by the
// two back-transformations.
package svd

import (
	"fmt"
	"math"

	"tridiag/internal/core"
	"tridiag/internal/lapack"
)

// Result is a thin SVD A = U Σ Vᵀ: S descending, U m×n and V n×n
// column-major.
type Result struct {
	M, N int
	S    []float64
	U    []float64
	V    []float64
}

// UCol returns the j-th left singular vector.
func (r *Result) UCol(j int) []float64 { return r.U[j*r.M : j*r.M+r.M] }

// VCol returns the j-th right singular vector.
func (r *Result) VCol(j int) []float64 { return r.V[j*r.N : j*r.N+r.N] }

// Decompose computes the thin SVD of the m×n (m >= n) column-major matrix a
// (leading dimension lda). a is overwritten with reduction data. opts tunes
// the underlying D&C eigensolver; nil selects defaults.
func Decompose(m, n int, a []float64, lda int, opts *core.Options) (*Result, error) {
	if m < n {
		return nil, fmt.Errorf("svd: m=%d < n=%d (decompose the transpose)", m, n)
	}
	if n == 0 {
		return &Result{M: m, N: n}, nil
	}

	// Bidiagonalize: A = Q1 * B * P1ᵀ.
	d := make([]float64, n)
	e := make([]float64, max(n-1, 1))
	tauq := make([]float64, n)
	taup := make([]float64, max(n-1, 1))
	if err := lapack.Dgebd2(m, n, a, lda, d, e, tauq, taup); err != nil {
		return nil, err
	}

	// Golub–Kahan tridiagonal: order 2n, zero diagonal, off-diagonal
	// interleaving B's diagonal and superdiagonal.
	nn := 2 * n
	gd := make([]float64, nn)
	ge := make([]float64, nn-1)
	for i := 0; i < n; i++ {
		ge[2*i] = d[i]
		if i < n-1 {
			ge[2*i+1] = e[i]
		}
	}
	z := make([]float64, nn*nn)
	if _, err := core.SolveDC(nn, gd, ge, z, nn, opts); err != nil {
		return nil, fmt.Errorf("svd: Golub-Kahan eigensolve: %w", err)
	}

	// Positive eigenvalues, descending, are the singular values; the
	// eigenvector for +σ interleaves (v₁, u₁, v₂, u₂, ...)/√2.
	res := &Result{M: m, N: n, S: make([]float64, n), U: make([]float64, m*n), V: make([]float64, n*n)}
	for j := 0; j < n; j++ {
		col := nn - 1 - j // eigenvalues ascend: the top n are +σ descending
		sigma := gd[col]
		if sigma < 0 {
			sigma = 0
		}
		res.S[j] = sigma
		zc := z[col*nn : col*nn+nn]
		u := res.U[j*m : j*m+m]
		v := res.V[j*n : j*n+n]
		var un, vn float64
		for i := 0; i < n; i++ {
			v[i] = zc[2*i]
			u[i] = zc[2*i+1]
			vn += v[i] * v[i]
			un += u[i] * u[i]
		}
		un, vn = math.Sqrt(un), math.Sqrt(vn)
		if un < lapack.Eps || vn < lapack.Eps {
			return nil, fmt.Errorf("svd: degenerate Golub-Kahan eigenvector for σ=%g (rank-deficient input beyond this solver's splitting)", sigma)
		}
		for i := 0; i < n; i++ {
			v[i] /= vn
			u[i] /= un
		}
	}

	// Back-transform: U = Q1 * [Û; 0], V = P1 * V̂.
	lapack.DormbrQ(false, m, n, n, a, lda, tauq, res.U, m)
	lapack.DormbrP(false, n, n, a, lda, taup, res.V, n)
	return res, nil
}

// Values computes only the singular values (descending) of the m×n matrix;
// a is overwritten.
func Values(m, n int, a []float64, lda int) ([]float64, error) {
	if m < n {
		return nil, fmt.Errorf("svd: m=%d < n=%d", m, n)
	}
	if n == 0 {
		return nil, nil
	}
	d := make([]float64, n)
	e := make([]float64, max(n-1, 1))
	tauq := make([]float64, n)
	taup := make([]float64, max(n-1, 1))
	if err := lapack.Dgebd2(m, n, a, lda, d, e, tauq, taup); err != nil {
		return nil, err
	}
	// dqds on the squared bidiagonal gives every singular value to high
	// relative accuracy (DLASQ1's role); fall back to the Golub-Kahan
	// eigenvalue route if the qd iteration fails.
	if s, err := lapack.DqdsSingularValues(n, d, e[:max(n-1, 0)]); err == nil {
		return s, nil
	}
	nn := 2 * n
	gd := make([]float64, nn)
	ge := make([]float64, nn-1)
	for i := 0; i < n; i++ {
		ge[2*i] = d[i]
		if i < n-1 {
			ge[2*i+1] = e[i]
		}
	}
	if err := lapack.Dsterf(nn, gd, ge); err != nil {
		return nil, err
	}
	s := make([]float64, n)
	for j := 0; j < n; j++ {
		v := gd[nn-1-j]
		if v < 0 {
			v = 0
		}
		s[j] = v
	}
	return s, nil
}
