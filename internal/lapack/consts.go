// Package lapack implements the subset of LAPACK computational kernels that
// the divide & conquer and MRRR tridiagonal eigensolvers are built from. All
// matrices are column-major (see internal/matrix). Routine names and
// semantics follow their LAPACK counterparts so the task decomposition in
// internal/core can mirror the paper's Algorithm 1 directly.
package lapack

import "math"

// Machine parameters for IEEE float64, matching LAPACK's DLAMCH values.
const (
	// Eps is the relative machine epsilon (DLAMCH('E'), unit roundoff).
	Eps = 0x1p-53
	// Ulp is the machine precision (DLAMCH('P') = eps*base).
	Ulp = 0x1p-52
	// SafeMin is the smallest number whose reciprocal does not overflow.
	SafeMin = 0x1p-1022
)

// RMin and RMax are the safe scaling range used by DLASCL-style rescaling.
var (
	RMin = math.Sqrt(SafeMin) / Ulp
	RMax = 1 / RMin
)

// Dlapy2 returns sqrt(x²+y²) without unnecessary overflow or underflow.
func Dlapy2(x, y float64) float64 {
	ax, ay := math.Abs(x), math.Abs(y)
	w := math.Max(ax, ay)
	z := math.Min(ax, ay)
	if z == 0 {
		return w
	}
	r := z / w
	return w * math.Sqrt(1+r*r)
}

// Dlapy3 returns sqrt(x²+y²+z²) safely.
func Dlapy3(x, y, z float64) float64 {
	ax, ay, az := math.Abs(x), math.Abs(y), math.Abs(z)
	w := math.Max(ax, math.Max(ay, az))
	if w == 0 {
		return 0
	}
	rx, ry, rz := ax/w, ay/w, az/w
	return w * math.Sqrt(rx*rx+ry*ry+rz*rz)
}

// Sign transfers the sign of b onto |a| (Fortran SIGN intrinsic: b==0 counts
// as positive).
func Sign(a, b float64) float64 {
	if b >= 0 {
		return math.Abs(a)
	}
	return -math.Abs(a)
}
