package lapack

import (
	"fmt"
	"math"

	"tridiag/internal/blas"
	"tridiag/internal/pool"
)

// Column types produced by the deflation scan, matching LAPACK DLAED2:
// type 1 columns are nonzero only in their first n1 rows (from the first
// subproblem), type 2 columns are dense (Givens-coupled across the cut),
// type 3 columns are nonzero only in their last n2 rows, and type 4 columns
// are deflated.
const (
	colTop = iota // 1 in LAPACK numbering
	colDense
	colBottom
	colDeflated
)

// Deflation holds the outcome of the deflation scan for one D&C merge: the
// size K of the surviving secular problem, the normalized rank-one weight
// Rho, the secular poles Dlamda and weights W (both ascending), and the
// permutation that groups the eigenvector columns into the four type classes.
// It contains no eigenvector data; column movement is done separately (and,
// in the task-flow solver, per panel) via PermutePanel and friends.
type Deflation struct {
	N, N1, K       int
	Rho            float64
	Dlamda         []float64 // len K: non-deflated eigenvalues, ascending
	W              []float64 // len K: secular weights (carry the original signs)
	Perm           []int     // len N: grouped position -> source column of Q
	GroupToSecular []int     // len K: grouped position -> secular index
	Ctot           [4]int    // column counts per type
	DeflD          []float64 // len N-K: deflated eigenvalues in final order for d[K:]
}

// C12 returns the number of columns with a nonzero top block (types 1+2).
func (df *Deflation) C12() int { return df.Ctot[colTop] + df.Ctot[colDense] }

// C23 returns the number of columns with a nonzero bottom block (types 2+3).
func (df *Deflation) C23() int { return df.Ctot[colDense] + df.Ctot[colBottom] }

// Dlaed2Deflate performs the deflation phase of a D&C merge (LAPACK DLAED2
// without the eigenvector copies). On entry d[0:n1] and d[n1:n] hold the two
// children's eigenvalues, q is the n×n block-diagonal eigenvector matrix,
// indxq sorts each child's eigenvalues ascending (second half holds indices
// local to the second child), rho is the off-diagonal coupling β, and z is
// the concatenation of the last row of Q1 and the first row of Q2.
//
// Givens rotations between deflatable close pairs are applied to q in place;
// z and d are used as scratch and destroyed.
func Dlaed2Deflate(n, n1 int, d []float64, q []float64, ldq int, indxq []int, rho float64, z []float64) (*Deflation, error) {
	return Dlaed2DeflateRot(n, n1, d, indxq, rho, z, func(pj, nj int, c, s float64) {
		blas.Drot(n, q[pj*ldq:], 1, q[nj*ldq:], 1, c, s)
	})
}

// Dlaed2DeflateRot is Dlaed2Deflate with the eigenvector side effect
// abstracted: instead of rotating columns of an n×n q, each deflating pair
// (pj, nj) is reported to rot with its Givens coefficients. The full solver
// passes an n-length column rotation; the values-only lane rotates a 2-row
// first/last-row carrier instead, and the root merge (whose carrier is never
// consumed) passes nil to skip the work entirely. The scan itself — and the
// resulting d/z trajectory — is identical either way.
func Dlaed2DeflateRot(n, n1 int, d []float64, indxq []int, rho float64, z []float64, rot func(pj, nj int, c, s float64)) (*Deflation, error) {
	if n1 < 1 || n1 >= n {
		return nil, fmt.Errorf("lapack: Dlaed2Deflate: invalid cut %d of %d", n1, n)
	}
	n2 := n - n1
	df := &Deflation{
		N:              n,
		N1:             n1,
		Dlamda:         make([]float64, 0, n),
		W:              make([]float64, 0, n),
		Perm:           make([]int, n),
		GroupToSecular: nil,
	}

	// Normalize z to unit norm. z is the concatenation of two unit-norm
	// rows, so its norm is sqrt(2); a negative rho flips the second half.
	if rho < 0 {
		blas.Dscal(n2, -1, z[n1:], 1)
	}
	t := 1 / math.Sqrt2
	blas.Dscal(n, t, z, 1)
	rho = math.Abs(2 * rho)
	df.Rho = rho

	// Global indices for the second child's sorted order.
	for i := n1; i < n; i++ {
		indxq[i] += n1
	}

	// Merge the two sorted eigenvalue lists.
	dlamda := make([]float64, n) // scratch for the merged sort keys
	for i := 0; i < n; i++ {
		dlamda[i] = d[indxq[i]]
	}
	indxc := make([]int, n)
	Dlamrg(n1, n2, dlamda, 1, 1, indxc)
	indx := make([]int, n) // ascending order of all eigenvalues -> column
	for i := 0; i < n; i++ {
		indx[i] = indxq[indxc[i]]
	}

	// Deflation tolerance.
	imax := blas.Idamax(n, z, 1)
	jmax := blas.Idamax(n, d, 1)
	tol := 8 * Eps * math.Max(math.Abs(d[jmax]), math.Abs(z[imax]))

	coltyp := make([]int, n)
	for i := 0; i < n1; i++ {
		coltyp[i] = colTop
	}
	for i := n1; i < n; i++ {
		coltyp[i] = colBottom
	}

	indxp := make([]int, n) // positions 0..k-1 non-deflated asc; k..n-1 deflated desc
	k := 0
	k2 := n

	if rho*math.Abs(z[imax]) <= tol {
		// Everything deflates: columns are simply sorted ascending.
		df.K = 0
		df.DeflD = make([]float64, n)
		for j := 0; j < n; j++ {
			df.Perm[j] = indx[j]
			df.DeflD[j] = d[indx[j]]
			coltyp[indx[j]] = colDeflated
		}
		df.Ctot[colDeflated] = n
		df.GroupToSecular = []int{}
		return df, nil
	}

	pj := -1
	for j := 0; j < n; j++ {
		nj := indx[j]
		if rho*math.Abs(z[nj]) <= tol {
			// Deflate due to small z component.
			k2--
			coltyp[nj] = colDeflated
			indxp[k2] = nj
			continue
		}
		if pj < 0 {
			pj = nj
			continue
		}
		// Check if the two eigenvalues are close enough to deflate.
		s := z[pj]
		c := z[nj]
		tau := Dlapy2(c, s)
		tdiff := d[nj] - d[pj]
		c /= tau
		s = -s / tau
		if math.Abs(tdiff*c*s) <= tol {
			// Deflation is possible: rotate the pair so z[pj] becomes 0.
			z[nj] = tau
			z[pj] = 0
			if coltyp[nj] != coltyp[pj] {
				coltyp[nj] = colDense
			}
			coltyp[pj] = colDeflated
			if rot != nil {
				rot(pj, nj, c, s)
			}
			t := d[pj]*c*c + d[nj]*s*s
			d[nj] = d[pj]*s*s + d[nj]*c*c
			d[pj] = t
			// Insert pj into the (descending) deflated tail, keeping order.
			k2--
			i := 0
			for {
				if k2+i+1 < n && d[pj] < d[indxp[k2+i+1]] {
					indxp[k2+i] = indxp[k2+i+1]
					i++
				} else {
					indxp[k2+i] = pj
					break
				}
			}
			pj = nj
		} else {
			// Record pj as a non-deflated eigenvalue.
			df.Dlamda = append(df.Dlamda, d[pj])
			df.W = append(df.W, z[pj])
			indxp[k] = pj
			k++
			pj = nj
		}
	}
	// Record the last non-deflated eigenvalue.
	df.Dlamda = append(df.Dlamda, d[pj])
	df.W = append(df.W, z[pj])
	indxp[k] = pj
	k++
	df.K = k

	// Count column types and compute the grouped permutation, which places
	// type-1 columns first, then type-2, type-3 and finally the deflated
	// type-4 columns.
	var ctot [4]int
	for _, js := range indxp[:k] {
		ctot[coltyp[js]]++
	}
	ctot[colDeflated] = n - k
	df.Ctot = ctot

	var psm [4]int
	psm[0] = 0
	psm[1] = ctot[0]
	psm[2] = ctot[0] + ctot[1]
	psm[3] = k
	df.GroupToSecular = make([]int, k)
	for j := 0; j < n; j++ {
		js := indxp[j]
		ct := coltyp[js]
		df.Perm[psm[ct]] = js
		if ct != colDeflated {
			df.GroupToSecular[psm[ct]] = j
		}
		psm[ct]++
	}

	// Deflated eigenvalues in their final order (descending).
	df.DeflD = make([]float64, n-k)
	for j := 0; j < n-k; j++ {
		df.DeflD[j] = d[df.Perm[k+j]]
	}
	return df, nil
}

// MergeWorkspace holds the compressed eigenvector storage for one merge:
// Q2Top packs the first n1 rows of the grouped type-1 and type-2 columns,
// Q2Bot the last n2 rows of the type-2 and type-3 columns, Q2Defl the full
// deflated columns, and S the k×k secular matrix (delta columns, later
// overwritten by the updated eigenvectors, as in LAPACK).
//
// PackTop/PackBot, when non-nil, hold Q2Top/Q2Bot repacked for the blocked
// GEMM (see Deflation.PackV): packed once per merge, shared read-only by
// every UpdateVect panel of that merge.
type MergeWorkspace struct {
	Q2Top   []float64 // n1 × c12
	Q2Bot   []float64 // n2 × c23
	Q2Defl  []float64 // n × c4
	S       []float64 // k × k
	WLoc    []float64 // k, scratch for Gu's product (sequential path)
	PackTop *blas.PackedA
	PackBot *blas.PackedA
}

// NewMergeWorkspace takes buffers sized for the given deflation outcome
// from the scratch pool; contents are unspecified and every consumer fully
// overwrites what it reads. Call Release when the merge is finished to
// recycle the buffers.
func NewMergeWorkspace(df *Deflation) *MergeWorkspace {
	n1, n2 := df.N1, df.N-df.N1
	k := df.K
	return &MergeWorkspace{
		Q2Top:  pool.Get(n1 * df.C12()),
		Q2Bot:  pool.Get(n2 * df.C23()),
		Q2Defl: pool.Get(df.N * df.Ctot[colDeflated]),
		S:      pool.Get(max(k*k, 1)),
		WLoc:   pool.Get(k),
	}
}

// Release returns the workspace buffers (and any packed operands) to the
// scratch pool. The workspace must not be used afterwards.
func (ws *MergeWorkspace) Release() {
	if ws.PackTop != nil {
		ws.PackTop.Release()
		ws.PackTop = nil
	}
	if ws.PackBot != nil {
		ws.PackBot.Release()
		ws.PackBot = nil
	}
	pool.Put(ws.Q2Top)
	pool.Put(ws.Q2Bot)
	pool.Put(ws.Q2Defl)
	pool.Put(ws.S)
	pool.Put(ws.WLoc)
	ws.Q2Top, ws.Q2Bot, ws.Q2Defl, ws.S, ws.WLoc = nil, nil, nil, nil, nil
}

// PooledBytes returns the pool-accounted bytes the workspace currently
// holds (buffers plus packed operands). Leak sweeps of failed merges use
// it to size their pool.Forget.
func (ws *MergeWorkspace) PooledBytes() int64 {
	b := pool.AccountedBytes(ws.Q2Top) + pool.AccountedBytes(ws.Q2Bot) +
		pool.AccountedBytes(ws.Q2Defl) + pool.AccountedBytes(ws.S) +
		pool.AccountedBytes(ws.WLoc)
	if ws.PackTop != nil {
		b += ws.PackTop.PooledBytes()
	}
	if ws.PackBot != nil {
		b += ws.PackBot.PooledBytes()
	}
	return b
}

// PermutePanel copies grouped columns [g0, g1) of q into the compressed
// workspace (the paper's PermuteV task). Deflated columns land in Q2Defl.
func (df *Deflation) PermutePanel(q []float64, ldq int, ws *MergeWorkspace, g0, g1 int) {
	n1 := df.N1
	n2 := df.N - n1
	c1 := df.Ctot[colTop]
	c12 := df.C12()
	k := df.K
	for g := g0; g < g1; g++ {
		js := df.Perm[g]
		src := q[js*ldq:]
		switch {
		case g < c1:
			copy(ws.Q2Top[g*n1:g*n1+n1], src[:n1])
		case g < c12:
			copy(ws.Q2Top[g*n1:g*n1+n1], src[:n1])
			copy(ws.Q2Bot[(g-c1)*n2:(g-c1)*n2+n2], src[n1:n1+n2])
		case g < k:
			copy(ws.Q2Bot[(g-c1)*n2:(g-c1)*n2+n2], src[n1:n1+n2])
		default:
			copy(ws.Q2Defl[(g-k)*df.N:(g-k)*df.N+df.N], src[:df.N])
		}
	}
}

// PermutedColumn returns the compressed-workspace destination of grouped
// column g — the region PermutePanel writes for it. Fault-injection hooks use
// it to corrupt exactly the slice one PermuteV panel owns, without racing
// against concurrent panels writing their own columns. For type-2 columns
// (split across Q2Top and Q2Bot) the top half is returned.
func (df *Deflation) PermutedColumn(ws *MergeWorkspace, g int) []float64 {
	n1 := df.N1
	n2 := df.N - n1
	c1 := df.Ctot[colTop]
	switch {
	case g < df.C12():
		return ws.Q2Top[g*n1 : g*n1+n1]
	case g < df.K:
		return ws.Q2Bot[(g-c1)*n2 : (g-c1)*n2+n2]
	default:
		return ws.Q2Defl[(g-df.K)*df.N : (g-df.K)*df.N+df.N]
	}
}

// CopyBackPanel writes deflated columns [j0, j1) (relative to the deflated
// group) back into q at final positions K+j (the paper's CopyBackDeflated
// task), together with their eigenvalues into d.
func (df *Deflation) CopyBackPanel(q []float64, ldq int, d []float64, ws *MergeWorkspace, j0, j1 int) {
	n := df.N
	for j := j0; j < j1; j++ {
		copy(q[(df.K+j)*ldq:(df.K+j)*ldq+n], ws.Q2Defl[j*n:j*n+n])
		d[df.K+j] = df.DeflD[j]
	}
}
