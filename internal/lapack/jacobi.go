package lapack

import (
	"fmt"
	"math"
)

// JacobiEigen computes all eigenvalues and eigenvectors of the dense
// symmetric n×n matrix a (column-major, full storage; destroyed) by the
// cyclic Jacobi method with a threshold strategy — the classical iterative
// eigensolver the paper's related-work section contrasts with ("it is not
// that efficient"), provided here as the high-accuracy reference baseline.
// On exit w holds the ascending eigenvalues and v (n×n) the eigenvectors.
func JacobiEigen(n int, a []float64, lda int, w []float64, v []float64, ldv int) error {
	if n < 0 {
		return fmt.Errorf("lapack: JacobiEigen: negative n")
	}
	if n == 0 {
		return nil
	}
	if lda < n || ldv < n {
		return fmt.Errorf("lapack: JacobiEigen: leading dimensions too small")
	}
	for j := 0; j < n; j++ {
		col := v[j*ldv : j*ldv+n]
		for i := range col {
			col[i] = 0
		}
		col[j] = 1
	}
	if n == 1 {
		w[0] = a[0]
		return nil
	}

	off := func() float64 {
		var s float64
		for j := 0; j < n; j++ {
			for i := j + 1; i < n; i++ {
				s += a[i+j*lda] * a[i+j*lda]
			}
		}
		return math.Sqrt(2 * s)
	}
	var fro float64
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			fro += a[i+j*lda] * a[i+j*lda]
		}
	}
	fro = math.Sqrt(fro)
	if fro == 0 {
		for i := 0; i < n; i++ {
			w[i] = 0
		}
		return nil
	}

	const maxSweeps = 60
	for sweep := 0; sweep < maxSweeps; sweep++ {
		if off() <= Eps*fro {
			break
		}
		if sweep == maxSweeps-1 {
			return fmt.Errorf("lapack: JacobiEigen: no convergence after %d sweeps", maxSweeps)
		}
		// Threshold: early sweeps skip tiny rotations to speed convergence.
		thresh := 0.0
		if sweep < 3 {
			thresh = 0.2 * off() / float64(n*n)
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a[q+p*lda]
				if math.Abs(apq) <= thresh {
					if math.Abs(apq) < Eps*math.Sqrt(math.Abs(a[p+p*lda]*a[q+q*lda]))+SafeMin {
						a[q+p*lda] = 0
						a[p+q*lda] = 0
						continue
					}
				}
				if apq == 0 {
					continue
				}
				// Classical Jacobi rotation annihilating a(p,q).
				theta := (a[q+q*lda] - a[p+p*lda]) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				app, aqq := a[p+p*lda], a[q+q*lda]
				a[p+p*lda] = app - t*apq
				a[q+q*lda] = aqq + t*apq
				a[q+p*lda] = 0
				a[p+q*lda] = 0
				for i := 0; i < n; i++ {
					if i == p || i == q {
						continue
					}
					aip := a[i+p*lda]
					aiq := a[i+q*lda]
					a[i+p*lda] = c*aip - s*aiq
					a[i+q*lda] = s*aip + c*aiq
					a[p+i*lda] = a[i+p*lda]
					a[q+i*lda] = a[i+q*lda]
				}
				for i := 0; i < n; i++ {
					vip := v[i+p*ldv]
					viq := v[i+q*ldv]
					v[i+p*ldv] = c*vip - s*viq
					v[i+q*ldv] = s*vip + c*viq
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		w[i] = a[i+i*lda]
	}
	// Selection sort with eigenvector column swaps (ascending).
	for i := 0; i < n-1; i++ {
		k := i
		for j := i + 1; j < n; j++ {
			if w[j] < w[k] {
				k = j
			}
		}
		if k != i {
			w[i], w[k] = w[k], w[i]
			for r := 0; r < n; r++ {
				v[r+i*ldv], v[r+k*ldv] = v[r+k*ldv], v[r+i*ldv]
			}
		}
	}
	return nil
}
