package lapack

import (
	"fmt"

	"tridiag/internal/blas"
)

// Dsyrdb reduces a dense symmetric matrix (full storage, both triangles) to
// symmetric band form with bandwidth b by successive-band-reduction panels
// (Bischof–Lang–Sun SBR; the first stage of the two-stage tridiagonalization
// the paper's reduction reference [3] builds on): each panel QR-factorizes
// the block below the band and applies the block reflector from both sides.
//
// On exit a holds the symmetric band matrix (entries beyond bandwidth b are
// zeroed) and, if q is non-nil (n×n), q is overwritten with Q1 such that
// A_in = Q1 · A_out · Q1ᵀ (q must hold the identity — or any orthogonal
// matrix to accumulate onto — on entry).
func Dsyrdb(n int, a []float64, lda, b int, q []float64, ldq int) error {
	if n < 0 {
		return fmt.Errorf("lapack: Dsyrdb: negative n")
	}
	if b < 1 {
		return fmt.Errorf("lapack: Dsyrdb: bandwidth %d", b)
	}
	if lda < n {
		return fmt.Errorf("lapack: Dsyrdb: lda=%d < n=%d", lda, n)
	}
	if n <= b+1 {
		return nil // already within the band
	}
	tau := make([]float64, b)
	tmat := make([]float64, b*b)
	for j := 0; j+b < n-1; j += b {
		m := n - j - b   // rows of the panel block
		k := min(b, n-j) // panel width
		if k <= 0 || m <= 1 {
			break
		}
		if k > m {
			k = m
		}
		panel := a[j+b+j*lda:] // A[j+b : n, j : j+k], leading dimension lda

		// Unblocked QR of the panel (DGEQR2): reflectors stored below R.
		for c := 0; c < k; c++ {
			mm := m - c
			if mm < 1 {
				break
			}
			beta, t := Dlarfg(mm, panel[c+c*lda], panel[min(c+1, m-1)+c*lda:], 1)
			tau[c] = t
			if t != 0 && c < k-1 {
				// apply H(c) to the remaining panel columns
				save := panel[c+c*lda]
				panel[c+c*lda] = 1
				v := panel[c+c*lda:]
				w := make([]float64, k-c-1)
				blas.Dgemv(true, mm, k-c-1, 1, panel[c+(c+1)*lda:], lda, v, 1, 0, w, 1)
				blas.Dger(mm, k-c-1, -t, v, 1, w, 1, panel[c+(c+1)*lda:], lda)
				panel[c+c*lda] = save
			}
			panel[c+c*lda] = beta
		}

		// Materialize the dense V (m×k, unit lower trapezoidal) and T.
		v := make([]float64, m*k)
		for c := 0; c < k; c++ {
			col := v[c*m : c*m+m]
			col[c] = 1
			for r := c + 1; r < m; r++ {
				col[r] = panel[r+c*lda]
			}
		}
		Dlarft(m, k, v, m, tau[:k], tmat, b)

		// Zero the annihilated part of the panel (and its symmetric mirror).
		for c := 0; c < k; c++ {
			for r := c + 1; r < m; r++ {
				a[(j+b+r)+(j+c)*lda] = 0
				a[(j+c)+(j+b+r)*lda] = 0
			}
			// mirror R into the upper triangle
			for r := 0; r <= c; r++ {
				a[(j+c)+(j+b+r)*lda] = a[(j+b+r)+(j+c)*lda]
			}
		}

		// A narrow final panel (k < b) leaves columns j+k..j+b-1 with
		// in-band entries in the reflector's row range: apply Qᵀ to them
		// from the left (and mirror for symmetry). Full panels have no
		// such gap.
		if k < b && j+k < j+b {
			w := min(j+b, n) - (j + k)
			g := a[(j+b)+(j+k)*lda:] // m × w block
			vg := make([]float64, k*w)
			blas.Dgemm(true, false, k, w, m, 1, v, m, g, lda, 0, vg, k)
			tv := make([]float64, k*w)
			blas.Dgemm(true, false, k, w, k, 1, tmat, b, vg, k, 0, tv, k)
			blas.Dgemm(false, false, m, w, k, -1, v, m, tv, k, 1, g, lda)
			for c := 0; c < w; c++ {
				for r := 0; r < m; r++ {
					a[(j+k+c)+(j+b+r)*lda] = a[(j+b+r)+(j+k+c)*lda]
				}
			}
		}

		// Two-sided update of the trailing block A22 = A[j+b:, j+b:]:
		// A22 ← Qᵀ A22 Q with Q = I - V·T·Vᵀ, via the symmetric rank-2k
		// form A22 - V·Wᵀ - W·Vᵀ, W = P - ½·V·S, P = A22·V·T, S = Tᵀ·Vᵀ·P.
		a22 := a[(j+b)+(j+b)*lda:]
		av := make([]float64, m*k)
		// av = A22 · V (A22 symmetric, full storage: plain GEMM)
		blas.Dgemm(false, false, m, k, m, 1, a22, lda, v, m, 0, av, m)
		p := make([]float64, m*k)
		blas.Dgemm(false, false, m, k, k, 1, av, m, tmat, b, 0, p, m)
		s := make([]float64, k*k)
		vp := make([]float64, k*k)
		blas.Dgemm(true, false, k, k, m, 1, v, m, p, m, 0, vp, k)
		blas.Dgemm(true, false, k, k, k, 1, tmat, b, vp, k, 0, s, k)
		// W = P - 0.5·V·S
		blas.Dgemm(false, false, m, k, k, -0.5, v, m, s, k, 1, p, m)
		// A22 -= V·Wᵀ + W·Vᵀ (update BOTH triangles: full storage)
		blas.Dgemm(false, true, m, m, k, -1, v, m, p, m, 1, a22, lda)
		blas.Dgemm(false, true, m, m, k, -1, p, m, v, m, 1, a22, lda)

		// Accumulate Q1 ← Q1 · (I - V·T·Vᵀ) on rows j+b..n-1.
		if q != nil {
			qv := make([]float64, n*k)
			blas.Dgemm(false, false, n, k, m, 1, q[(j+b)*ldq:], ldq, v, m, 0, qv, n)
			qvt := make([]float64, n*k)
			blas.Dgemm(false, false, n, k, k, 1, qv, n, tmat, b, 0, qvt, n)
			blas.Dgemm(false, true, n, m, k, -1, qvt, n, v, m, 1, q[(j+b)*ldq:], ldq)
		}
	}
	// Clean roundoff outside the band.
	for j := 0; j < n; j++ {
		for i := j + b + 1; i < n; i++ {
			a[i+j*lda] = 0
			a[j+i*lda] = 0
		}
	}
	return nil
}

// Dsbtrd reduces a symmetric band matrix (full storage, bandwidth b) to
// tridiagonal form by Givens bulge chasing (Schwarz/Kaufman; the second
// stage of the two-stage reduction). On exit d and e hold the tridiagonal;
// if q is non-nil the rotations are accumulated into it (right-multiplied),
// so A_in = Q · T · Qᵀ continues to hold when q entered holding the
// first-stage transformation.
//
// Rotations are applied across the full rows/columns for simplicity; the
// matrix stays banded plus a single bulge, so a windowed variant would cut
// the constant but not change the result.
func Dsbtrd(n int, a []float64, lda, b int, d, e []float64, q []float64, ldq int) error {
	if n < 0 {
		return fmt.Errorf("lapack: Dsbtrd: negative n")
	}
	if b < 1 || lda < n {
		return fmt.Errorf("lapack: Dsbtrd: bad arguments b=%d lda=%d", b, lda)
	}
	rot := func(p int, c, s float64) {
		// two-sided rotation in plane (p, p+1): columns then rows
		blas.Drot(n, a[p*lda:], 1, a[(p+1)*lda:], 1, c, s)
		blas.Drot(n, a[p:], lda, a[p+1:], lda, c, s)
		if q != nil {
			blas.Drot(n, q[p*ldq:], 1, q[(p+1)*ldq:], 1, c, s)
		}
	}
	if b > 1 {
		for j := 0; j < n-2; j++ {
			for i := min(j+b, n-1); i >= j+2; i-- {
				if a[i+j*lda] == 0 {
					continue
				}
				// annihilate A(i, j) with plane (i-1, i)
				c, s, r := Dlartg(a[(i-1)+j*lda], a[i+j*lda])
				rot(i-1, c, s)
				a[(i-1)+j*lda] = r
				a[i+j*lda] = 0
				a[j+(i-1)*lda] = r
				a[j+i*lda] = 0
				// chase the bulge down the band
				for k := i; k+b < n; k += b {
					// bulge at (k+b, k-1)
					if a[(k+b)+(k-1)*lda] == 0 {
						break
					}
					c, s, r := Dlartg(a[(k+b-1)+(k-1)*lda], a[(k+b)+(k-1)*lda])
					rot(k+b-1, c, s)
					a[(k+b-1)+(k-1)*lda] = r
					a[(k+b)+(k-1)*lda] = 0
					a[(k-1)+(k+b-1)*lda] = r
					a[(k-1)+(k+b)*lda] = 0
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		d[i] = a[i+i*lda]
		if i < n-1 {
			e[i] = a[i+1+i*lda]
		}
	}
	return nil
}

// Dsytrd2Stage reduces a dense symmetric matrix to tridiagonal form through
// the band intermediate (dense → band(b) → tridiagonal). If q is non-nil it
// must be n×n and receives the full orthogonal transformation:
// A_in = Q · tridiag(d, e) · Qᵀ.
func Dsytrd2Stage(n int, a []float64, lda, b int, d, e []float64, q []float64, ldq int) error {
	if q != nil {
		for j := 0; j < n; j++ {
			col := q[j*ldq : j*ldq+n]
			for i := range col {
				col[i] = 0
			}
			col[j] = 1
		}
	}
	if err := Dsyrdb(n, a, lda, b, q, ldq); err != nil {
		return err
	}
	return Dsbtrd(n, a, lda, b, d, e, q, ldq)
}
