package lapack

import (
	"math"
	"math/rand"
	"testing"
)

func TestDormtrBlockedMatchesUnblocked(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for _, tc := range []struct{ n, m, nb int }{
		{50, 10, 8}, {100, 100, 16}, {130, 7, 32}, {200, 40, 32}, {65, 20, 7},
	} {
		a := randSym(rng, tc.n, tc.n)
		d := make([]float64, tc.n)
		e := make([]float64, tc.n-1)
		tau := make([]float64, tc.n-1)
		Dsytd2(tc.n, a, tc.n, d, e, tau)

		c1 := make([]float64, tc.n*tc.m)
		for i := range c1 {
			c1[i] = rng.NormFloat64()
		}
		c2 := append([]float64(nil), c1...)
		for _, trans := range []bool{false, true} {
			cc1 := append([]float64(nil), c1...)
			cc2 := append([]float64(nil), c2...)
			dormtrUnblocked(trans, tc.n, tc.m, a, tc.n, tau, cc1, tc.n)
			DormtrBlocked(trans, tc.n, tc.m, a, tc.n, tau, cc2, tc.n, tc.nb)
			for i := range cc1 {
				if math.Abs(cc1[i]-cc2[i]) > 1e-11 {
					t.Fatalf("n=%d m=%d nb=%d trans=%v: mismatch at %d: %v vs %v",
						tc.n, tc.m, tc.nb, trans, i, cc1[i], cc2[i])
				}
			}
		}
	}
}

func TestDlarftDlarfbRoundTrip(t *testing.T) {
	// Applying H then Hᵀ must restore C.
	rng := rand.New(rand.NewSource(137))
	m, n, k := 30, 12, 5
	v := make([]float64, m*k)
	tau := make([]float64, k)
	// build k proper reflectors via Dlarfg on random columns with the
	// forward-columnwise structure (zeros above the unit diagonal)
	for j := 0; j < k; j++ {
		col := v[j*m : j*m+m]
		for i := j; i < m; i++ {
			col[i] = rng.NormFloat64()
		}
		beta, tj := Dlarfg(m-j, col[j], col[j+1:], 1)
		_ = beta
		tau[j] = tj
		col[j] = 1
		for i := 0; i < j; i++ {
			col[i] = 0
		}
	}
	tf := make([]float64, k*k)
	Dlarft(m, k, v, m, tau, tf, k)
	c := make([]float64, m*n)
	for i := range c {
		c[i] = rng.NormFloat64()
	}
	orig := append([]float64(nil), c...)
	work := make([]float64, n*k)
	Dlarfb(false, m, n, k, v, m, tf, k, c, m, work)
	// H changed C
	changed := false
	for i := range c {
		if math.Abs(c[i]-orig[i]) > 1e-9 {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("block reflector was a no-op")
	}
	Dlarfb(true, m, n, k, v, m, tf, k, c, m, work)
	for i := range c {
		if math.Abs(c[i]-orig[i]) > 1e-11 {
			t.Fatalf("Hᵀ·H·C != C at %d: %v vs %v", i, c[i], orig[i])
		}
	}
}

func TestDormtrDispatchLargeN(t *testing.T) {
	// The public Dormtr must stay correct across the blocked-dispatch size.
	rng := rand.New(rand.NewSource(139))
	n := 150
	a := randSym(rng, n, n)
	aorig := append([]float64(nil), a...)
	d := make([]float64, n)
	e := make([]float64, n-1)
	tau := make([]float64, n-1)
	if err := Dsytrd(n, a, n, d, e, tau, 16); err != nil {
		t.Fatal(err)
	}
	q := make([]float64, n*n)
	Dorgtr(n, a, n, tau, q, n)
	checkTridiagReduction(t, "dormtr-dispatch", n, aorig, d, e, q)
}
