package lapack

import (
	"fmt"
	"math"

	"tridiag/internal/blas"
)

// Dstein computes eigenvectors of the symmetric tridiagonal matrix (d, e)
// for the given eigenvalues w (ascending) by inverse iteration, in the role
// of LAPACK DSTEIN: the eigenvector route of last resort when the QR
// iteration fails to converge. Column j of z (n×n column-major, leading
// dimension ldz ≥ n) receives the eigenvector of w[j]. Eigenvalues closer
// than a cluster tolerance are grouped and their vectors reorthogonalized
// against each other, with tiny perturbations so the shifted factorizations
// differ.
func Dstein(n int, d, e []float64, w []float64, z []float64, ldz int) error {
	if n < 0 {
		return fmt.Errorf("lapack: Dstein: negative n=%d", n)
	}
	if n == 0 {
		return nil
	}
	if ldz < n {
		return fmt.Errorf("lapack: Dstein: ldz=%d < n=%d", ldz, n)
	}
	if n == 1 {
		z[0] = 1
		return nil
	}
	nrmT := Dlanst('M', n, d, e)
	if nrmT == 0 {
		nrmT = 1
	}
	// Cluster tolerance: LAPACK DSTEIN reorthogonalizes eigenvectors whose
	// eigenvalues lie within 1e-3·‖T‖ of each other.
	ortol := 1e-3 * nrmT
	sep := Eps * nrmT

	for g0 := 0; g0 < n; {
		g1 := g0 + 1
		for g1 < n && w[g1]-w[g1-1] <= ortol {
			g1++
		}
		steinCluster(n, d, e, w[g0:g1], z[g0*ldz:], ldz, sep)
		g0 = g1
	}
	return nil
}

// steinCluster runs inverse iteration for one cluster of close eigenvalues,
// orthogonalizing each new vector against the ones already computed for the
// cluster. Perturbed shifts keep the factorizations of repeated eigenvalues
// distinct.
func steinCluster(n int, d, e []float64, lams []float64, z []float64, ldz int, sep float64) {
	eps := Eps
	for gi, lam := range lams {
		pert := lam + float64(gi)*2*sep
		x := z[gi*ldz : gi*ldz+n]
		// Deterministic pseudo-random start vector (LAPACK uses dlarnv).
		seed := uint64(gi*2654435761 + 9176)
		reseed := func() {
			for i := 0; i < n; i++ {
				seed = seed*6364136223846793005 + 1442695040888963407
				x[i] = float64(int64(seed>>11))/float64(1<<52) - 1
			}
		}
		reseed()
		for iter := 0; iter < 8; iter++ {
			steinSolveShifted(n, d, e, pert, x)
			// Orthogonalize against the cluster's previous vectors.
			for p := 0; p < gi; p++ {
				prev := z[p*ldz : p*ldz+n]
				dot := blas.Ddot(n, prev, 1, x, 1)
				blas.Daxpy(n, -dot, prev, 1, x, 1)
			}
			nrm := blas.Dnrm2(n, x, 1)
			if nrm == 0 {
				reseed()
				continue
			}
			grown := nrm > 1/(eps*float64(n)*10)
			blas.Dscal(n, 1/nrm, x, 1)
			if grown && iter >= 1 {
				break
			}
		}
	}
}

// steinSolveShifted solves (T - lam·I)·y = x in place by Gaussian
// elimination with partial pivoting on the tridiagonal (DGTSV-style),
// perturbing pivots too small to divide by safely.
func steinSolveShifted(n int, d, e []float64, lam float64, x []float64) {
	if n == 1 {
		p := d[0] - lam
		if p == 0 {
			p = SafeMin
		}
		x[0] /= p
		return
	}
	// Working copies of the three diagonals plus the fill-in band.
	dl := make([]float64, n-1)
	dd := make([]float64, n)
	du := make([]float64, n-1)
	du2 := make([]float64, n-2)
	for i := 0; i < n; i++ {
		dd[i] = d[i] - lam
	}
	copy(dl, e[:n-1])
	copy(du, e[:n-1])

	small := SafeMin / Eps
	for i := 0; i < n-1; i++ {
		if math.Abs(dd[i]) >= math.Abs(dl[i]) {
			// No row interchange.
			if math.Abs(dd[i]) < small {
				dd[i] = math.Copysign(small, dd[i])
				if dd[i] == 0 {
					dd[i] = small
				}
			}
			f := dl[i] / dd[i]
			dd[i+1] -= f * du[i]
			x[i+1] -= f * x[i]
			if i < n-2 {
				du2[i] = 0
			}
		} else {
			// Swap rows i and i+1.
			f := dd[i] / dl[i]
			dd[i] = dl[i]
			t := dd[i+1]
			dd[i+1] = du[i] - f*t
			if i < n-2 {
				du2[i] = du[i+1]
				du[i+1] = -f * du[i+1]
			}
			du[i] = t
			x[i], x[i+1] = x[i+1], x[i]-f*x[i+1]
		}
	}
	if math.Abs(dd[n-1]) < small {
		dd[n-1] = math.Copysign(small, dd[n-1])
		if dd[n-1] == 0 {
			dd[n-1] = small
		}
	}
	// Back substitution.
	x[n-1] /= dd[n-1]
	if n > 1 {
		x[n-2] = (x[n-2] - du[n-2]*x[n-1]) / dd[n-2]
	}
	for i := n - 3; i >= 0; i-- {
		x[i] = (x[i] - du[i]*x[i+1] - du2[i]*x[i+2]) / dd[i]
	}
}

// DsteqrRobust computes the full eigendecomposition of the symmetric
// tridiagonal matrix (d, e) like Dsteqr(CompIdentity, ...), but survives QR
// non-convergence: on Dsteqr failure it restores the input and retries with
// the root-free Dsterf for the eigenvalues followed by Dstein inverse
// iteration for the eigenvectors (the tiered-solver safety net of hybrid
// D&C implementations). It reports whether the fallback path produced the
// result, so callers can track degraded solves.
func DsteqrRobust(n int, d, e []float64, z []float64, ldz int) (fellBack bool, err error) {
	if n == 0 {
		return false, nil
	}
	// Dsteqr destroys d and e even on failure: keep pristine copies.
	d0 := append([]float64(nil), d[:n]...)
	e0 := append([]float64(nil), e[:max(n-1, 0)]...)
	if err := Dsteqr(CompIdentity, n, d, e, z, ldz); err == nil {
		return false, nil
	}
	copy(d, d0)
	copy(e, e0)
	if err := Dsterf(n, d, e[:max(n-1, 0)]); err != nil {
		copy(d, d0)
		copy(e, e0)
		return true, fmt.Errorf("lapack: DsteqrRobust: Dsterf fallback failed: %w", err)
	}
	if err := Dstein(n, d0, e0, d, z, ldz); err != nil {
		return true, err
	}
	return true, nil
}
