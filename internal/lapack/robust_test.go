package lapack

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"tridiag/internal/blas"
)

// randSecular builds a valid secular problem: strictly increasing d and a
// unit-norm z with no tiny components, as the deflation step guarantees.
func randSecular(k int, rng *rand.Rand) (d, z []float64) {
	d = make([]float64, k)
	z = make([]float64, k)
	x := 0.0
	for i := range d {
		x += 0.1 + rng.Float64()
		d[i] = x
	}
	for i := range z {
		z[i] = 0.1 + rng.Float64()
		if rng.Intn(2) == 0 {
			z[i] = -z[i]
		}
	}
	nrm := blas.Dnrm2(k, z, 1)
	blas.Dscal(k, 1/nrm, z, 1)
	return d, z
}

// TestDlaed4BisectMatchesDlaed4: the bisection safeguard must agree with the
// rational iteration on well-conditioned secular problems, for every root
// index, in both the eigenvalue and the cancellation-free delta vector.
func TestDlaed4BisectMatchesDlaed4(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, k := range []int{3, 5, 17, 40} {
		for trial := 0; trial < 5; trial++ {
			d, z := randSecular(k, rng)
			rho := 0.05 + rng.Float64()
			spread := d[k-1] - d[0] + rho
			for i := 0; i < k; i++ {
				del4 := make([]float64, k)
				delB := make([]float64, k)
				lam4, err4 := Dlaed4(k, i, d, z, del4, rho)
				lamB, errB := Dlaed4Bisect(k, i, d, z, delB, rho)
				if err4 != nil {
					t.Fatalf("k=%d i=%d: Dlaed4: %v", k, i, err4)
				}
				if errB != nil {
					t.Fatalf("k=%d i=%d: Dlaed4Bisect: %v", k, i, errB)
				}
				if math.Abs(lam4-lamB) > 1e-13*spread {
					t.Errorf("k=%d i=%d: lam %v vs bisect %v", k, i, lam4, lamB)
				}
				for j := 0; j < k; j++ {
					// delta[j] = d[j] - lam; compare where it is not tiny
					// (near the root's pole both must stay consistent too,
					// relative to the local gap).
					ref := del4[j]
					tol := 1e-10 * (math.Abs(ref) + 1e-3*spread)
					if math.Abs(delB[j]-ref) > tol {
						t.Errorf("k=%d i=%d: delta[%d] %v vs bisect %v", k, i, j, ref, delB[j])
					}
				}
			}
		}
	}
}

// TestDlaed4BisectRootProperties: each bisection root must satisfy the
// secular interlacing property and leave nonzero deltas.
func TestDlaed4BisectRootProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	k := 25
	d, z := randSecular(k, rng)
	rho := 0.75
	for i := 0; i < k; i++ {
		delta := make([]float64, k)
		lam, err := Dlaed4Bisect(k, i, d, z, delta, rho)
		if err != nil {
			t.Fatal(err)
		}
		if lam <= d[i] {
			t.Errorf("i=%d: root %v not above pole %v", i, lam, d[i])
		}
		if i < k-1 && lam >= d[i+1] {
			t.Errorf("i=%d: root %v not below pole %v", i, lam, d[i+1])
		}
		if i == k-1 && lam >= d[k-1]+4*rho {
			t.Errorf("last root %v outside bracket", lam)
		}
		for j, dl := range delta {
			if dl == 0 {
				t.Errorf("i=%d: delta[%d] is exactly zero", i, j)
			}
		}
	}
}

// TestDstein: inverse iteration must reproduce accurate eigenvectors for
// both separated and pathologically clustered spectra.
func TestDstein(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, build := range []struct {
		name string
		n    int
		gen  func(n int) (d, e []float64)
	}{
		{"random", 60, func(n int) (dd, ee []float64) {
			dd = make([]float64, n)
			ee = make([]float64, n-1)
			for i := range dd {
				dd[i] = 2*rng.Float64() - 1
			}
			for i := range ee {
				ee[i] = 2*rng.Float64() - 1
			}
			return
		}},
		{"wilkinson21", 21, func(n int) (dd, ee []float64) {
			dd = make([]float64, n)
			ee = make([]float64, n-1)
			for i := range dd {
				dd[i] = math.Abs(float64(i) - float64(n-1)/2)
			}
			for i := range ee {
				ee[i] = 1
			}
			return
		}},
	} {
		d, e := build.gen(build.n)
		n := build.n
		// Reference eigenvalues from the root-free QR.
		w := append([]float64(nil), d...)
		ee := append([]float64(nil), e...)
		if err := Dsterf(n, w, ee); err != nil {
			t.Fatalf("%s: Dsterf: %v", build.name, err)
		}
		sort.Float64s(w)
		z := make([]float64, n*n)
		if err := Dstein(n, d, e, w, z, n); err != nil {
			t.Fatalf("%s: Dstein: %v", build.name, err)
		}
		nrmT := Dlanst('M', n, d, e)
		for j := 0; j < n; j++ {
			col := z[j*n : j*n+n]
			worst := 0.0
			for i := 0; i < n; i++ {
				s := d[i] * col[i]
				if i > 0 {
					s += e[i-1] * col[i-1]
				}
				if i < n-1 {
					s += e[i] * col[i+1]
				}
				if r := math.Abs(s - w[j]*col[i]); r > worst {
					worst = r
				}
			}
			if worst > 1e-12*nrmT*float64(n) {
				t.Errorf("%s: residual of vector %d: %.3e", build.name, j, worst)
			}
			for p := 0; p < j; p++ {
				dot := blas.Ddot(n, z[p*n:p*n+n], 1, col, 1)
				if math.Abs(dot) > 1e-10 {
					t.Errorf("%s: vectors %d,%d not orthogonal: %.3e", build.name, p, j, dot)
				}
			}
		}
	}
}

// TestDsteqrRobustCleanPath: when QR converges, DsteqrRobust must report no
// fallback and produce exactly Dsteqr's result.
func TestDsteqrRobustCleanPath(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 40
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	for i := range e {
		e[i] = rng.NormFloat64()
	}
	d1 := append([]float64(nil), d...)
	e1 := append([]float64(nil), e...)
	z1 := make([]float64, n*n)
	if err := Dsteqr(CompIdentity, n, d1, e1, z1, n); err != nil {
		t.Fatal(err)
	}
	d2 := append([]float64(nil), d...)
	e2 := append([]float64(nil), e...)
	z2 := make([]float64, n*n)
	fellBack, err := DsteqrRobust(n, d2, e2, z2, n)
	if err != nil {
		t.Fatal(err)
	}
	if fellBack {
		t.Error("clean matrix reported a fallback")
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("eigenvalue %d differs: %v vs %v", i, d1[i], d2[i])
		}
	}
}
