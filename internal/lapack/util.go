package lapack

import (
	"fmt"
	"math"
)

// Dlartg generates a plane rotation with cosine c and sine s such that
//
//	[  c  s ] [ f ]   [ r ]
//	[ -s  c ] [ g ] = [ 0 ]
//
// following LAPACK DLARTG (safe against overflow, r carries f's sign
// convention).
func Dlartg(f, g float64) (c, s, r float64) {
	if g == 0 {
		return 1, 0, f
	}
	if f == 0 {
		return 0, 1, g
	}
	f1, g1 := f, g
	scale := math.Max(math.Abs(f1), math.Abs(g1))
	const safmn2 = 0x1p-512
	const safmx2 = 0x1p+512
	count := 0
	if scale >= safmx2 {
		for scale >= safmx2 {
			count++
			f1 *= safmn2
			g1 *= safmn2
			scale = math.Max(math.Abs(f1), math.Abs(g1))
		}
		r = math.Sqrt(f1*f1 + g1*g1)
		c, s = f1/r, g1/r
		for i := 0; i < count; i++ {
			r *= safmx2
		}
	} else if scale <= safmn2*safmx2/2 { // very small
		for scale <= SafeMin*safmx2 {
			count++
			f1 *= safmx2
			g1 *= safmx2
			scale = math.Max(math.Abs(f1), math.Abs(g1))
		}
		r = math.Sqrt(f1*f1 + g1*g1)
		c, s = f1/r, g1/r
		for i := 0; i < count; i++ {
			r *= safmn2
		}
	} else {
		r = math.Sqrt(f1*f1 + g1*g1)
		c, s = f1/r, g1/r
	}
	if math.Abs(f) > math.Abs(g) && c < 0 {
		c, s, r = -c, -s, -r
	}
	return c, s, r
}

// Dlanst returns a norm of the symmetric tridiagonal matrix with diagonal d
// and off-diagonal e. norm is one of 'M' (max abs), '1'/'I' (one/infinity
// norm, equal by symmetry) or 'F' (Frobenius).
func Dlanst(norm byte, n int, d, e []float64) float64 {
	if n == 0 {
		return 0
	}
	switch norm {
	case 'M', 'm':
		v := math.Abs(d[0])
		for i := 1; i < n; i++ {
			v = math.Max(v, math.Abs(d[i]))
		}
		for i := 0; i < n-1; i++ {
			v = math.Max(v, math.Abs(e[i]))
		}
		return v
	case '1', 'O', 'o', 'I', 'i':
		if n == 1 {
			return math.Abs(d[0])
		}
		v := math.Max(math.Abs(d[0])+math.Abs(e[0]), math.Abs(d[n-1])+math.Abs(e[n-2]))
		for i := 1; i < n-1; i++ {
			v = math.Max(v, math.Abs(d[i])+math.Abs(e[i-1])+math.Abs(e[i]))
		}
		return v
	case 'F', 'f', 'E', 'e':
		scale, ssq := 0.0, 1.0
		acc := func(v float64) {
			if v == 0 {
				return
			}
			av := math.Abs(v)
			if scale < av {
				r := scale / av
				ssq = 1 + ssq*r*r
				scale = av
			} else {
				r := av / scale
				ssq += r * r
			}
		}
		for i := 0; i < n-1; i++ {
			acc(e[i])
			acc(e[i])
		}
		for i := 0; i < n; i++ {
			acc(d[i])
		}
		return scale * math.Sqrt(ssq)
	}
	panic(fmt.Sprintf("lapack: unknown norm %q", norm))
}

// Dlascl multiplies the m×n column-major matrix A by cto/cfrom, done safely
// in steps so intermediate values stay representable (LAPACK DLASCL, general
// type only).
func Dlascl(m, n int, cfrom, cto float64, a []float64, lda int) {
	if m == 0 || n == 0 {
		return
	}
	if cfrom == 0 || math.IsNaN(cfrom) || math.IsNaN(cto) {
		panic("lapack: invalid scaling factors in Dlascl")
	}
	cfromc, ctoc := cfrom, cto
	for {
		cfrom1 := cfromc * SafeMin
		var mul float64
		var done bool
		if cfrom1 == cfromc {
			// cfromc is inf: mul is signed zero or nan
			mul = ctoc / cfromc
			done = true
		} else {
			cto1 := ctoc / (1 / SafeMin)
			if cto1 == ctoc {
				mul = ctoc
				done = true
				cfromc = 1
			} else if math.Abs(cfrom1) > math.Abs(ctoc) && ctoc != 0 {
				mul = SafeMin
				done = false
				cfromc = cfrom1
			} else if math.Abs(cto1) > math.Abs(cfromc) {
				mul = 1 / SafeMin
				done = false
				ctoc = cto1
			} else {
				mul = ctoc / cfromc
				done = true
			}
		}
		for j := 0; j < n; j++ {
			col := a[j*lda : j*lda+m]
			for i := range col {
				col[i] *= mul
			}
		}
		if done {
			return
		}
	}
}

// Dlamrg computes a permutation merging two sorted subsets of a into one
// ascending list (LAPACK DLAMRG). The first n1 entries of a are sorted with
// stride/order dtrd1 (±1), the next n2 with dtrd1... here dtrd1, dtrd2 are +1
// or -1 giving each block's direction. index[i] (0-based) gives the position
// in a of the i-th smallest element.
func Dlamrg(n1, n2 int, a []float64, dtrd1, dtrd2 int, index []int) {
	ind1 := 0
	if dtrd1 < 0 {
		ind1 = n1 - 1
	}
	ind2 := n1
	if dtrd2 < 0 {
		ind2 = n1 + n2 - 1
	}
	i := 0
	for n1 > 0 && n2 > 0 {
		if a[ind1] <= a[ind2] {
			index[i] = ind1
			ind1 += dtrd1
			n1--
		} else {
			index[i] = ind2
			ind2 += dtrd2
			n2--
		}
		i++
	}
	for ; n1 > 0; n1-- {
		index[i] = ind1
		ind1 += dtrd1
		i++
	}
	for ; n2 > 0; n2-- {
		index[i] = ind2
		ind2 += dtrd2
		i++
	}
}

// Dlae2 computes the eigenvalues of the symmetric 2×2 matrix [[a, b], [b, c]].
// rt1 is the eigenvalue of larger absolute value (LAPACK DLAE2).
func Dlae2(a, b, c float64) (rt1, rt2 float64) {
	sm := a + c
	df := a - c
	adf := math.Abs(df)
	tb := b + b
	ab := math.Abs(tb)
	acmx, acmn := c, a
	if math.Abs(a) > math.Abs(c) {
		acmx, acmn = a, c
	}
	var rt float64
	switch {
	case adf > ab:
		r := ab / adf
		rt = adf * math.Sqrt(1+r*r)
	case adf < ab:
		r := adf / ab
		rt = ab * math.Sqrt(1+r*r)
	default:
		rt = ab * math.Sqrt2
	}
	switch {
	case sm < 0:
		rt1 = 0.5 * (sm - rt)
		rt2 = (acmx/rt1)*acmn - (b/rt1)*b
	case sm > 0:
		rt1 = 0.5 * (sm + rt)
		rt2 = (acmx/rt1)*acmn - (b/rt1)*b
	default:
		rt1 = 0.5 * rt
		rt2 = -0.5 * rt
	}
	return rt1, rt2
}

// Dlaev2 computes the eigendecomposition of the symmetric 2×2 matrix
// [[a, b], [b, c]]: eigenvalues rt1 (larger magnitude), rt2 and the unit
// right eigenvector (cs1, sn1) for rt1 (LAPACK DLAEV2).
func Dlaev2(a, b, c float64) (rt1, rt2, cs1, sn1 float64) {
	sm := a + c
	df := a - c
	adf := math.Abs(df)
	tb := b + b
	ab := math.Abs(tb)
	acmx, acmn := c, a
	if math.Abs(a) > math.Abs(c) {
		acmx, acmn = a, c
	}
	var rt float64
	switch {
	case adf > ab:
		r := ab / adf
		rt = adf * math.Sqrt(1+r*r)
	case adf < ab:
		r := adf / ab
		rt = ab * math.Sqrt(1+r*r)
	default:
		rt = ab * math.Sqrt2
	}
	var sgn1 float64
	switch {
	case sm < 0:
		rt1 = 0.5 * (sm - rt)
		sgn1 = -1
		rt2 = (acmx/rt1)*acmn - (b/rt1)*b
	case sm > 0:
		rt1 = 0.5 * (sm + rt)
		sgn1 = 1
		rt2 = (acmx/rt1)*acmn - (b/rt1)*b
	default:
		rt1 = 0.5 * rt
		rt2 = -0.5 * rt
		sgn1 = 1
	}
	// compute the eigenvector
	var cs, sgn2 float64
	if df >= 0 {
		cs = df + rt
		sgn2 = 1
	} else {
		cs = df - rt
		sgn2 = -1
	}
	acs := math.Abs(cs)
	if acs > ab {
		ct := -tb / cs
		sn1 = 1 / math.Sqrt(1+ct*ct)
		cs1 = ct * sn1
	} else {
		if ab == 0 {
			cs1, sn1 = 1, 0
		} else {
			tn := -cs / tb
			cs1 = 1 / math.Sqrt(1+tn*tn)
			sn1 = tn * cs1
		}
	}
	if sgn1 == sgn2 {
		cs1, sn1 = -sn1, cs1
	}
	return rt1, rt2, cs1, sn1
}
