package lapack

import (
	"math"
	"math/rand"
	"testing"

	"tridiag/internal/blas"
)

// randSPD builds a random symmetric positive definite matrix A = MMᵀ + n·I.
func randSPD(rng *rand.Rand, n int) []float64 {
	m := make([]float64, n*n)
	for i := range m {
		m[i] = rng.NormFloat64()
	}
	a := make([]float64, n*n)
	blas.Dgemm(false, true, n, n, n, 1, m, n, m, n, 0, a, n)
	for i := 0; i < n; i++ {
		a[i+i*n] += float64(n)
	}
	return a
}

func TestDpotrfReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	for _, tc := range []struct{ n, nb int }{{1, 4}, {5, 4}, {16, 4}, {33, 8}, {50, 16}, {20, 1}} {
		a := randSPD(rng, tc.n)
		orig := append([]float64(nil), a...)
		if err := Dpotrf(tc.n, a, tc.n, tc.nb); err != nil {
			t.Fatalf("n=%d nb=%d: %v", tc.n, tc.nb, err)
		}
		// L·Lᵀ must reproduce the lower triangle of the original.
		for j := 0; j < tc.n; j++ {
			for i := j; i < tc.n; i++ {
				var s float64
				for k := 0; k <= j; k++ {
					s += a[i+k*tc.n] * a[j+k*tc.n]
				}
				if math.Abs(s-orig[i+j*tc.n]) > 1e-11*float64(tc.n)*(math.Abs(orig[i+j*tc.n])+1) {
					t.Fatalf("n=%d nb=%d: LLᵀ(%d,%d)=%v want %v", tc.n, tc.nb, i, j, s, orig[i+j*tc.n])
				}
			}
		}
	}
}

func TestDpotrfRejectsIndefinite(t *testing.T) {
	a := []float64{1, 2, 2, 1} // eigenvalues 3, -1
	if err := Dpotrf(2, a, 2, 4); err == nil {
		t.Error("indefinite matrix must be rejected")
	}
}

func TestTriangularSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(173))
	n, m := 12, 5
	l := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			l[i+j*n] = rng.NormFloat64()
		}
		l[j+j*n] = 2 + rng.Float64()
	}
	x0 := make([]float64, n*m)
	for i := range x0 {
		x0[i] = rng.NormFloat64()
	}
	// B = L·X, solve, compare
	b := make([]float64, n*m)
	for j := 0; j < m; j++ {
		for i := 0; i < n; i++ {
			var s float64
			for k := 0; k <= i; k++ {
				s += l[i+k*n] * x0[k+j*n]
			}
			b[i+j*n] = s
		}
	}
	blas.DtrsmLeftLowerNoTrans(n, m, l, n, b, n)
	for i := range b {
		if math.Abs(b[i]-x0[i]) > 1e-10 {
			t.Fatalf("LeftLowerNoTrans at %d: %v vs %v", i, b[i], x0[i])
		}
	}
	// B = Lᵀ·X, solve transpose
	for j := 0; j < m; j++ {
		for i := 0; i < n; i++ {
			var s float64
			for k := i; k < n; k++ {
				s += l[k+i*n] * x0[k+j*n]
			}
			b[i+j*n] = s
		}
	}
	blas.DtrsmLeftLowerTrans(n, m, l, n, b, n)
	for i := range b {
		if math.Abs(b[i]-x0[i]) > 1e-10 {
			t.Fatalf("LeftLowerTrans at %d: %v vs %v", i, b[i], x0[i])
		}
	}
	// B = X·Lᵀ (m×n), solve right-transpose
	br := make([]float64, m*n)
	xr := make([]float64, m*n)
	for i := range xr {
		xr[i] = rng.NormFloat64()
	}
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			var s float64
			for k := 0; k <= j; k++ {
				s += xr[i+k*m] * l[j+k*n] // (X·Lᵀ)(i,j) = Σ_k X(i,k)·L(j,k)
			}
			br[i+j*m] = s
		}
	}
	blas.DtrsmRightLowerTrans(m, n, l, n, br, m)
	for i := range br {
		if math.Abs(br[i]-xr[i]) > 1e-10 {
			t.Fatalf("RightLowerTrans at %d: %v vs %v", i, br[i], xr[i])
		}
	}
}

func TestDsyrkMatchesGemm(t *testing.T) {
	rng := rand.New(rand.NewSource(179))
	n, k := 9, 4
	a := make([]float64, n*k)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	c := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			v := rng.NormFloat64()
			c[i+j*n] = v
			c[j+i*n] = v
		}
	}
	want := append([]float64(nil), c...)
	blas.Dgemm(false, true, n, n, k, -1, a, n, a, n, 1, want, n)
	blas.Dsyrk(n, k, -1, a, n, 1, c, n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			if math.Abs(c[i+j*n]-want[i+j*n]) > 1e-12 {
				t.Fatalf("Dsyrk (%d,%d): %v vs %v", i, j, c[i+j*n], want[i+j*n])
			}
		}
	}
}

func TestDsygstStandardForm(t *testing.T) {
	// Generalized problem vs explicit inv(L)·A·inv(Lᵀ): eigenvalues of the
	// reduced matrix must equal the generalized eigenvalues.
	rng := rand.New(rand.NewSource(181))
	n := 20
	a := randSym(rng, n, n)
	b := randSPD(rng, n)
	// mirror b's lower to upper for the reference computation
	for j := 0; j < n; j++ {
		for i := j + 1; i < n; i++ {
			b[j+i*n] = b[i+j*n]
		}
	}
	aorig := append([]float64(nil), a...)
	borig := append([]float64(nil), b...)

	if err := Dpotrf(n, b, n, 8); err != nil {
		t.Fatal(err)
	}
	Dsygst(n, a, n, b, n)
	w := make([]float64, n)
	v := make([]float64, n*n)
	ac := append([]float64(nil), a...)
	if err := JacobiEigen(n, ac, n, w, v, n); err != nil {
		t.Fatal(err)
	}
	// verify A x = λ B x with x = L⁻ᵀ y
	blas.DtrsmLeftLowerTrans(n, n, b, n, v, n)
	var anorm float64
	for _, x := range aorig {
		anorm = math.Max(anorm, math.Abs(x))
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			var ax, bx float64
			for l := 0; l < n; l++ {
				ax += aorig[i+l*n] * v[l+j*n]
				bx += borig[i+l*n] * v[l+j*n]
			}
			if math.Abs(ax-w[j]*bx) > 1e-11*anorm*float64(n) {
				t.Fatalf("generalized residual at (%d,%d): %v", i, j, ax-w[j]*bx)
			}
		}
	}
}
