package lapack

import (
	"fmt"
	"math"

	"tridiag/internal/blas"
)

// Dlarfg generates an elementary Householder reflector H = I - tau*v*vᵀ with
// v[0] = 1 such that H*(alpha, x)ᵀ = (beta, 0)ᵀ (LAPACK DLARFG). On return x
// holds v[1:], and beta and tau are returned.
func Dlarfg(n int, alpha float64, x []float64, incx int) (beta, tau float64) {
	if n <= 1 {
		return alpha, 0
	}
	xnorm := blas.Dnrm2(n-1, x, incx)
	if xnorm == 0 {
		return alpha, 0
	}
	beta = -Sign(Dlapy2(alpha, xnorm), alpha)
	safmin := SafeMin / Eps
	knt := 0
	if math.Abs(beta) < safmin {
		// xnorm and beta may be inaccurate; scale x and recompute.
		rsafmn := 1 / safmin
		for math.Abs(beta) < safmin && knt < 20 {
			knt++
			blas.Dscal(n-1, rsafmn, x, incx)
			beta *= rsafmn
			alpha *= rsafmn
		}
		xnorm = blas.Dnrm2(n-1, x, incx)
		beta = -Sign(Dlapy2(alpha, xnorm), alpha)
	}
	tau = (beta - alpha) / beta
	blas.Dscal(n-1, 1/(alpha-beta), x, incx)
	for i := 0; i < knt; i++ {
		beta *= safmin
	}
	return beta, tau
}

// Dsytd2 reduces a symmetric matrix stored in the lower triangle of a to
// tridiagonal form by an unblocked orthogonal similarity Qᵀ A Q = T
// (LAPACK DSYTD2, lower variant). On exit d and e hold the tridiagonal, tau
// the reflector scales, and the Householder vectors are stored below the
// first subdiagonal of a.
func Dsytd2(n int, a []float64, lda int, d, e, tau []float64) {
	if n <= 0 {
		return
	}
	for i := 0; i < n-1; i++ {
		// Generate H(i) to annihilate a(i+2:n, i).
		m := n - i - 1 // length of the column below the diagonal
		beta, taui := Dlarfg(m, a[i+1+i*lda], a[min(i+2, n-1)+i*lda:], 1)
		e[i] = beta
		if taui != 0 {
			// Apply H(i) from both sides to a(i+1:n, i+1:n).
			a[i+1+i*lda] = 1
			v := a[i+1+i*lda:] // v, stride 1, length m
			w := tau[i:]       // use tau[i:] as scratch for w, as LAPACK does
			blas.Dsymv(m, taui, a[i+1+(i+1)*lda:], lda, v, 1, 0, w, 1)
			alpha := -0.5 * taui * blas.Ddot(m, w, 1, v, 1)
			blas.Daxpy(m, alpha, v, 1, w, 1)
			blas.Dsyr2(m, -1, v, 1, w, 1, a[i+1+(i+1)*lda:], lda)
			a[i+1+i*lda] = e[i]
		}
		d[i] = a[i+i*lda]
		tau[i] = taui
	}
	d[n-1] = a[n-1+(n-1)*lda]
}

// Dlatrd reduces the first nb columns of a symmetric matrix (lower storage)
// to tridiagonal form and returns the matrix W needed to apply the remaining
// update as a rank-2nb update A := A - V*Wᵀ - W*Vᵀ (LAPACK DLATRD, lower).
func Dlatrd(n, nb int, a []float64, lda int, e, tau []float64, w []float64, ldw int) {
	for i := 0; i < nb; i++ {
		m := n - i // rows i..n-1
		// Update a(i:n, i) with the transformations computed so far.
		if i > 0 {
			blas.Dgemv(false, m, i, -1, a[i:], lda, w[i:], ldw, 1, a[i+i*lda:], 1)
			blas.Dgemv(false, m, i, -1, w[i:], ldw, a[i:], lda, 1, a[i+i*lda:], 1)
		}
		if i < n-1 {
			// Generate H(i) to annihilate a(i+2:n, i).
			mm := n - i - 1
			beta, taui := Dlarfg(mm, a[i+1+i*lda], a[min(i+2, n-1)+i*lda:], 1)
			e[i] = beta
			tau[i] = taui
			a[i+1+i*lda] = 1
			v := a[i+1+i*lda:]
			// w(i+1:n, i) = tau * (A - V Wᵀ - W Vᵀ)(i+1:n, i+1:n) * v
			wi := w[i+1+i*ldw:]
			blas.Dsymv(mm, 1, a[i+1+(i+1)*lda:], lda, v, 1, 0, wi, 1)
			if i > 0 {
				wtop := w[i*ldw:] // w(0:i, i) scratch
				blas.Dgemv(true, mm, i, 1, w[i+1:], ldw, v, 1, 0, wtop, 1)
				blas.Dgemv(false, mm, i, -1, a[i+1:], lda, wtop, 1, 1, wi, 1)
				blas.Dgemv(true, mm, i, 1, a[i+1:], lda, v, 1, 0, wtop, 1)
				blas.Dgemv(false, mm, i, -1, w[i+1:], ldw, wtop, 1, 1, wi, 1)
			}
			blas.Dscal(mm, taui, wi, 1)
			alpha := -0.5 * taui * blas.Ddot(mm, wi, 1, v, 1)
			blas.Daxpy(mm, alpha, v, 1, wi, 1)
		}
	}
}

// Dsytrd reduces a symmetric matrix stored in the lower triangle of a to
// tridiagonal form using the blocked algorithm (LAPACK DSYTRD, lower): panel
// reductions via Dlatrd followed by rank-2k trailing updates via Dsyr2k.
// nb is the block size (<= 1 selects the unblocked algorithm).
func Dsytrd(n int, a []float64, lda int, d, e, tau []float64, nb int) error {
	return DsytrdParallel(n, a, lda, d, e, tau, nb, 1)
}

// DsytrdParallel is Dsytrd with the rank-2k trailing updates — the level-3
// bulk of the reduction — partitioned over `workers` goroutines (fork/join,
// the multithreaded-BLAS execution model).
func DsytrdParallel(n int, a []float64, lda int, d, e, tau []float64, nb, workers int) error {
	if n < 0 {
		return fmt.Errorf("lapack: Dsytrd: negative n")
	}
	if n == 0 {
		return nil
	}
	if lda < n {
		return fmt.Errorf("lapack: Dsytrd: lda=%d < n=%d", lda, n)
	}
	if nb <= 1 || n <= nb+16 {
		Dsytd2(n, a, lda, d, e, tau)
		return nil
	}
	w := make([]float64, n*nb)
	i := 0
	for ; i < n-nb-16; i += nb {
		m := n - i
		Dlatrd(m, nb, a[i+i*lda:], lda, e[i:], tau[i:], w, m)
		// Trailing update: A(i+nb:n, i+nb:n) -= V*Wᵀ + W*Vᵀ.
		blas.Dsyr2kParallel(workers, m-nb, nb, -1, a[i+nb+i*lda:], lda, w[nb:], m, 1, a[i+nb+(i+nb)*lda:], lda)
		// Restore the subdiagonal entries overwritten by the panel.
		for j := i; j < i+nb; j++ {
			a[j+1+j*lda] = e[j]
			d[j] = a[j+j*lda]
		}
	}
	Dsytd2(n-i, a[i+i*lda:], lda, d[i:], e[i:], tau[i:])
	return nil
}

// Dormtr applies the orthogonal matrix Q from Dsytrd (lower storage) to the
// n×m matrix C from the left: C = Q*C, or QᵀC when trans is true
// (LAPACK DORMTR 'L','L'). a and tau are Dsytrd's outputs. Large problems
// dispatch to the blocked (level-3) Dlarft/Dlarfb path.
func Dormtr(trans bool, n, m int, a []float64, lda int, tau []float64, c []float64, ldc int) {
	if n >= 129 && m >= 8 {
		DormtrBlocked(trans, n, m, a, lda, tau, c, ldc, 32)
		return
	}
	dormtrUnblocked(trans, n, m, a, lda, tau, c, ldc)
}

// dormtrUnblocked applies the reflectors one at a time (level-2).
func dormtrUnblocked(trans bool, n, m int, a []float64, lda int, tau []float64, c []float64, ldc int) {
	if n <= 1 || m == 0 {
		return
	}
	w := make([]float64, m)
	apply := func(i int) {
		// Reflector i acts on rows i+1..n-1 of C with v = [1, a(i+2:n, i)].
		taui := tau[i]
		if taui == 0 {
			return
		}
		mm := n - i - 1
		save := a[i+1+i*lda]
		a[i+1+i*lda] = 1
		v := a[i+1+i*lda:]
		// w = C(i+1:n, :)ᵀ v ; C(i+1:n, :) -= tau * v * wᵀ
		blas.Dgemv(true, mm, m, 1, c[i+1:], ldc, v, 1, 0, w, 1)
		blas.Dger(mm, m, -taui, v, 1, w, 1, c[i+1:], ldc)
		a[i+1+i*lda] = save
	}
	if !trans {
		// Q*C = H(0)·H(1)···H(n-2)·C: apply in reverse order.
		for i := n - 2; i >= 0; i-- {
			apply(i)
		}
	} else {
		for i := 0; i <= n-2; i++ {
			apply(i)
		}
	}
}

// Dorgtr explicitly forms the orthogonal matrix Q from Dsytrd's reflectors
// (LAPACK DORGTR, lower): Q is written into q (n×n).
func Dorgtr(n int, a []float64, lda int, tau []float64, q []float64, ldq int) {
	// Start from the identity and apply Q from the left.
	for j := 0; j < n; j++ {
		col := q[j*ldq : j*ldq+n]
		for i := range col {
			col[i] = 0
		}
		col[j] = 1
	}
	Dormtr(false, n, n, a, lda, tau, q, ldq)
}
