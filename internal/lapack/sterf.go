package lapack

import (
	"fmt"
	"math"
	"sort"
)

// Dsterf computes all eigenvalues of a symmetric tridiagonal matrix using the
// Pal–Walker–Kahan variant of the QL/QR algorithm (LAPACK DSTERF). It is the
// root-free, eigenvalues-only counterpart of Dsteqr. On exit d holds the
// eigenvalues in ascending order and e is destroyed.
func Dsterf(n int, d, e []float64) error {
	if n < 0 {
		return fmt.Errorf("lapack: Dsterf: negative n=%d", n)
	}
	if n <= 1 {
		return nil
	}

	const maxit = 30
	eps := Eps
	eps2 := eps * eps
	safmin := SafeMin
	safmax := 1 / safmin
	ssfmax := math.Sqrt(safmax) / 3
	ssfmin := math.Sqrt(safmin) / eps2

	nmaxit := n * maxit
	jtot := 0
	failed := false

	l1 := 0
	for !failed {
		if l1 > n-1 {
			break
		}
		if l1 > 0 {
			e[l1-1] = 0
		}
		m := n - 1
		for mm := l1; mm <= n-2; mm++ {
			if math.Abs(e[mm]) <= math.Sqrt(math.Abs(d[mm]))*math.Sqrt(math.Abs(d[mm+1]))*eps {
				e[mm] = 0
				m = mm
				break
			}
		}

		l := l1
		lsv := l
		lend := m
		lendsv := lend
		l1 = m + 1
		if lend == l {
			continue
		}

		anorm := Dlanst('M', lend-l+1, d[l:], e[l:])
		iscale := 0
		if anorm == 0 {
			continue
		}
		if anorm > ssfmax {
			iscale = 1
			Dlascl(lend-l+1, 1, anorm, ssfmax, d[l:], n)
			Dlascl(lend-l, 1, anorm, ssfmax, e[l:], n)
		} else if anorm < ssfmin {
			iscale = 2
			Dlascl(lend-l+1, 1, anorm, ssfmin, d[l:], n)
			Dlascl(lend-l, 1, anorm, ssfmin, e[l:], n)
		}

		// Work with squared off-diagonals (root-free iteration).
		for i := l; i < lend; i++ {
			e[i] *= e[i]
		}

		if math.Abs(d[lend]) < math.Abs(d[l]) {
			lend, l = l, lend
		}

		if lend >= l {
			// QL variant.
		ql:
			for {
				m := lend
				if l != lend {
					for mm := l; mm <= lend-1; mm++ {
						if math.Abs(e[mm]) <= eps2*math.Abs(d[mm]*d[mm+1]) {
							m = mm
							break
						}
					}
				}
				if m < lend {
					e[m] = 0
				}
				p := d[l]
				if m == l {
					d[l] = p
					l++
					if l <= lend {
						continue
					}
					break
				}
				if m == l+1 {
					rte := math.Sqrt(e[l])
					rt1, rt2 := Dlae2(d[l], rte, d[l+1])
					d[l] = rt1
					d[l+1] = rt2
					e[l] = 0
					l += 2
					if l <= lend {
						continue
					}
					break
				}
				if jtot == nmaxit {
					failed = true
					break ql
				}
				jtot++

				rte := math.Sqrt(e[l])
				sigma := (d[l+1] - p) / (2 * rte)
				r := Dlapy2(sigma, 1)
				sigma = p - rte/(sigma+Sign(r, sigma))

				c := 1.0
				s := 0.0
				gamma := d[m] - sigma
				p = gamma * gamma
				for i := m - 1; i >= l; i-- {
					bb := e[i]
					r := p + bb
					if i != m-1 {
						e[i+1] = s * r
					}
					oldc := c
					c = p / r
					s = bb / r
					oldgam := gamma
					alpha := d[i]
					gamma = c*(alpha-sigma) - s*oldgam
					d[i+1] = oldgam + (alpha - gamma)
					if c != 0 {
						p = gamma * gamma / c
					} else {
						p = oldc * bb
					}
				}
				e[l] = s * p
				d[l] = sigma + gamma
			}
		} else {
			// QR variant.
		qr:
			for {
				m := lend
				if l != lend {
					for mm := l; mm >= lend+1; mm-- {
						if math.Abs(e[mm-1]) <= eps2*math.Abs(d[mm]*d[mm-1]) {
							m = mm
							break
						}
					}
				}
				if m > lend {
					e[m-1] = 0
				}
				p := d[l]
				if m == l {
					d[l] = p
					l--
					if l >= lend {
						continue
					}
					break
				}
				if m == l-1 {
					rte := math.Sqrt(e[l-1])
					rt1, rt2 := Dlae2(d[l], rte, d[l-1])
					d[l] = rt1
					d[l-1] = rt2
					e[l-1] = 0
					l -= 2
					if l >= lend {
						continue
					}
					break
				}
				if jtot == nmaxit {
					failed = true
					break qr
				}
				jtot++

				rte := math.Sqrt(e[l-1])
				sigma := (d[l-1] - p) / (2 * rte)
				r := Dlapy2(sigma, 1)
				sigma = p - rte/(sigma+Sign(r, sigma))

				c := 1.0
				s := 0.0
				gamma := d[m] - sigma
				p = gamma * gamma
				for i := m; i <= l-1; i++ {
					bb := e[i]
					r := p + bb
					if i != m {
						e[i-1] = s * r
					}
					oldc := c
					c = p / r
					s = bb / r
					oldgam := gamma
					alpha := d[i+1]
					gamma = c*(alpha-sigma) - s*oldgam
					d[i] = oldgam + (alpha - gamma)
					if c != 0 {
						p = gamma * gamma / c
					} else {
						p = oldc * bb
					}
				}
				e[l-1] = s * p
				d[l] = sigma + gamma
			}
		}

		switch iscale {
		case 1:
			Dlascl(lendsv-lsv+1, 1, ssfmax, anorm, d[lsv:], n)
		case 2:
			Dlascl(lendsv-lsv+1, 1, ssfmin, anorm, d[lsv:], n)
		}
	}

	if failed {
		bad := 0
		for i := 0; i < n-1; i++ {
			if e[i] != 0 {
				bad++
			}
		}
		return fmt.Errorf("lapack: Dsterf failed to converge: %d off-diagonal elements did not reach zero", bad)
	}
	sort.Float64s(d)
	return nil
}
