package lapack

import (
	"math"
	"math/rand"
	"testing"
)

// solveHalvesAndMerge reproduces one D&C merge by hand: adjust the boundary,
// solve both halves with Dsteqr, then Dlaed1.
func solveHalvesAndMerge(t *testing.T, n, cut int, d0, e0 []float64) (d, q []float64) {
	t.Helper()
	d = append([]float64(nil), d0...)
	e := append([]float64(nil), e0...)
	rho := e[cut-1]
	ae := math.Abs(rho)
	d[cut-1] -= ae
	d[cut] -= ae
	q = make([]float64, n*n)
	if err := Dsteqr(CompIdentity, cut, d[:cut], e[:cut-1], q, n); err != nil {
		t.Fatal(err)
	}
	if err := Dsteqr(CompIdentity, n-cut, d[cut:], e[cut:], q[cut+cut*n:], n); err != nil {
		t.Fatal(err)
	}
	indxq := make([]int, n)
	for i := 0; i < cut; i++ {
		indxq[i] = i
	}
	for i := cut; i < n; i++ {
		indxq[i] = i - cut
	}
	if err := Dlaed1(n, cut, d, q, n, indxq, rho, nil); err != nil {
		t.Fatal(err)
	}
	SortEigen(n, d, q, n, indxq)
	return d, q
}

func TestDlaed1SingleMergeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, tc := range []struct{ n, cut int }{
		{2, 1}, {3, 1}, {3, 2}, {10, 5}, {10, 3}, {33, 16}, {64, 32}, {50, 20},
	} {
		d0, e0 := randTridiag(rng, tc.n)
		lam, q := solveHalvesAndMerge(t, tc.n, tc.cut, d0, e0)
		checkEigenDecomp(t, "laed1", tc.n, d0, e0, lam, q, tc.n, 60)

		// eigenvalues must match a direct Dsteqr solve
		dd := append([]float64(nil), d0...)
		ee := append([]float64(nil), e0...)
		if err := Dsteqr(CompNone, tc.n, dd, ee, nil, 0); err != nil {
			t.Fatal(err)
		}
		nrm := Dlanst('M', tc.n, d0, e0) + 1
		for i := 0; i < tc.n; i++ {
			if math.Abs(lam[i]-dd[i]) > 1e-12*nrm*float64(tc.n) {
				t.Errorf("n=%d cut=%d eig %d: merge %v direct %v", tc.n, tc.cut, i, lam[i], dd[i])
			}
		}
	}
}

func TestDlaed1HighDeflation(t *testing.T) {
	// Constant-diagonal matrix with tiny coupling: almost everything deflates.
	n := 24
	d0 := make([]float64, n)
	e0 := make([]float64, n-1)
	for i := range d0 {
		d0[i] = 2
	}
	for i := range e0 {
		e0[i] = 1e-12
	}
	lam, q := solveHalvesAndMerge(t, n, n/2, d0, e0)
	checkEigenDecomp(t, "high-deflation", n, d0, e0, lam, q, n, 60)
}

func TestDlaed1NegativeRho(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	n := 16
	d0, e0 := randTridiag(rng, n)
	e0[n/2-1] = -math.Abs(e0[n/2-1]) - 0.5 // force negative coupling
	lam, q := solveHalvesAndMerge(t, n, n/2, d0, e0)
	checkEigenDecomp(t, "negative-rho", n, d0, e0, lam, q, n, 60)
}

func TestDlaed2DeflateInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 20; trial++ {
		n := 6 + rng.Intn(40)
		cut := 1 + rng.Intn(n-1)
		d0, e0 := randTridiag(rng, n)
		d := append([]float64(nil), d0...)
		e := append([]float64(nil), e0...)
		rho := e[cut-1]
		ae := math.Abs(rho)
		d[cut-1] -= ae
		d[cut] -= ae
		q := make([]float64, n*n)
		if err := Dsteqr(CompIdentity, cut, d[:cut], e[:max(cut-1, 0)], q, n); err != nil {
			t.Fatal(err)
		}
		if err := Dsteqr(CompIdentity, n-cut, d[cut:], e[cut:], q[cut+cut*n:], n); err != nil {
			t.Fatal(err)
		}
		indxq := make([]int, n)
		for i := 0; i < cut; i++ {
			indxq[i] = i
		}
		for i := cut; i < n; i++ {
			indxq[i] = i - cut
		}
		z := make([]float64, n)
		for j := 0; j < cut; j++ {
			z[j] = q[cut-1+j*n]
		}
		for j := cut; j < n; j++ {
			z[j] = q[cut+j*n]
		}
		df, err := Dlaed2Deflate(n, cut, d, q, n, indxq, rho, z)
		if err != nil {
			t.Fatal(err)
		}
		// Perm must be a bijection on [0,n)
		seen := make([]bool, n)
		for _, p := range df.Perm {
			if p < 0 || p >= n || seen[p] {
				t.Fatalf("trial %d: Perm not a bijection: %v", trial, df.Perm)
			}
			seen[p] = true
		}
		// counts must sum to n and K = c1+c2+c3
		if df.Ctot[0]+df.Ctot[1]+df.Ctot[2]+df.Ctot[3] != n {
			t.Fatalf("trial %d: type counts %v don't sum to %d", trial, df.Ctot, n)
		}
		if df.Ctot[0]+df.Ctot[1]+df.Ctot[2] != df.K {
			t.Fatalf("trial %d: K=%d vs counts %v", trial, df.K, df.Ctot)
		}
		if len(df.Dlamda) != df.K || len(df.W) != df.K || len(df.DeflD) != n-df.K {
			t.Fatalf("trial %d: slice lengths inconsistent", trial)
		}
		// Dlamda ascending
		for i := 1; i < df.K; i++ {
			if df.Dlamda[i] < df.Dlamda[i-1] {
				t.Fatalf("trial %d: Dlamda not ascending", trial)
			}
		}
		// DeflD descending (LAPACK tail order), except K==0 (ascending)
		for i := 1; i < len(df.DeflD); i++ {
			if df.K == 0 {
				if df.DeflD[i] < df.DeflD[i-1] {
					t.Fatalf("trial %d: K=0 DeflD not ascending", trial)
				}
			} else if df.DeflD[i] > df.DeflD[i-1] {
				t.Fatalf("trial %d: DeflD not descending: %v", trial, df.DeflD)
			}
		}
		// GroupToSecular must be a bijection on [0,K)
		seenK := make([]bool, df.K)
		for _, s := range df.GroupToSecular {
			if s < 0 || s >= df.K || seenK[s] {
				t.Fatalf("trial %d: GroupToSecular invalid", trial)
			}
			seenK[s] = true
		}
	}
}

func TestDlaed2DeflateAllDeflated(t *testing.T) {
	// Identical subproblems with zero coupling -> rho*|z| under tolerance.
	n, cut := 8, 4
	d := []float64{1, 2, 3, 4, 1, 2, 3, 4}
	q := make([]float64, n*n)
	for j := 0; j < n; j++ {
		q[j+j*n] = 1
	}
	indxq := []int{0, 1, 2, 3, 0, 1, 2, 3}
	z := make([]float64, n)
	z[cut-1] = 1
	z[cut] = 1
	df, err := Dlaed2Deflate(n, cut, d, q, n, indxq, 1e-30, z)
	if err != nil {
		t.Fatal(err)
	}
	if df.K != 0 {
		t.Fatalf("expected full deflation, K=%d", df.K)
	}
	want := []float64{1, 1, 2, 2, 3, 3, 4, 4}
	for i, v := range df.DeflD {
		if v != want[i] {
			t.Fatalf("DeflD[%d]=%v want %v", i, v, want[i])
		}
	}
}

func TestDstedcMatchesDsteqr(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for _, n := range []int{1, 2, 5, 26, 60, 120} {
		for _, smlsiz := range []int{4, 25} {
			d0, e0 := randTridiag(rng, n)
			d := append([]float64(nil), d0...)
			e := append([]float64(nil), e0...)
			q := make([]float64, n*n)
			if err := Dstedc(n, d, e, q, n, &DCConfig{SmallSize: smlsiz}); err != nil {
				t.Fatalf("n=%d smlsiz=%d: %v", n, smlsiz, err)
			}
			checkEigenDecomp(t, "dstedc", n, d0, e0, d, q, n, 100)

			dd := append([]float64(nil), d0...)
			ee := append([]float64(nil), e0...)
			if err := Dsteqr(CompNone, n, dd, ee, nil, 0); err != nil {
				t.Fatal(err)
			}
			nrm := Dlanst('M', n, d0, e0) + 1
			for i := 0; i < n; i++ {
				if math.Abs(d[i]-dd[i]) > 1e-11*nrm*float64(n) {
					t.Errorf("n=%d smlsiz=%d eig %d: dc=%v qr=%v", n, smlsiz, i, d[i], dd[i])
				}
			}
		}
	}
}

func TestDstedcOneTwoOne(t *testing.T) {
	n := 100
	d0 := make([]float64, n)
	e0 := make([]float64, n-1)
	for i := range d0 {
		d0[i] = 2
	}
	for i := range e0 {
		e0[i] = 1
	}
	d := append([]float64(nil), d0...)
	e := append([]float64(nil), e0...)
	q := make([]float64, n*n)
	if err := Dstedc(n, d, e, q, n, &DCConfig{SmallSize: 8}); err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= n; k++ {
		want := 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
		if math.Abs(d[k-1]-want) > 1e-11 {
			t.Errorf("eigenvalue %d: got %v want %v", k, d[k-1], want)
		}
	}
	checkEigenDecomp(t, "dstedc-121", n, d0, e0, d, q, n, 100)
}

func TestDstedcZeroMatrix(t *testing.T) {
	n := 40
	d := make([]float64, n)
	e := make([]float64, n-1)
	q := make([]float64, n*n)
	if err := Dstedc(n, d, e, q, n, &DCConfig{SmallSize: 8}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if d[i] != 0 || q[i+i*n] != 1 {
			t.Fatalf("zero matrix: d[%d]=%v q=%v", i, d[i], q[i+i*n])
		}
	}
}

func TestDstedcScaledMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for _, scale := range []float64{1e-150, 1e150} {
		n := 48
		d0, e0 := randTridiag(rng, n)
		for i := range d0 {
			d0[i] *= scale
		}
		for i := range e0 {
			e0[i] *= scale
		}
		d := append([]float64(nil), d0...)
		e := append([]float64(nil), e0...)
		q := make([]float64, n*n)
		if err := Dstedc(n, d, e, q, n, &DCConfig{SmallSize: 8}); err != nil {
			t.Fatalf("scale=%g: %v", scale, err)
		}
		checkEigenDecomp(t, "dstedc-scaled", n, d0, e0, d, q, n, 100)
	}
}

func TestDstedcGluedWilkinson(t *testing.T) {
	// Glued Wilkinson matrices produce tight clusters: a deflation stress.
	n := 84 // four W21 blocks glued with small couplings
	d0 := make([]float64, n)
	e0 := make([]float64, n-1)
	for b := 0; b < 4; b++ {
		for i := 0; i < 21; i++ {
			d0[b*21+i] = math.Abs(float64(i - 10))
		}
		for i := 0; i < 20; i++ {
			e0[b*21+i] = 1
		}
		if b < 3 {
			e0[b*21+20] = 1e-8
		}
	}
	d := append([]float64(nil), d0...)
	e := append([]float64(nil), e0...)
	q := make([]float64, n*n)
	if err := Dstedc(n, d, e, q, n, &DCConfig{SmallSize: 10}); err != nil {
		t.Fatal(err)
	}
	checkEigenDecomp(t, "glued-wilkinson", n, d0, e0, d, q, n, 200)
}

func TestPartitionSizes(t *testing.T) {
	for _, tc := range []struct{ n, sm int }{{100, 25}, {1000, 300}, {7, 3}, {25, 25}, {26, 25}} {
		sizes := PartitionSizes(tc.n, tc.sm)
		sum := 0
		for _, s := range sizes {
			sum += s
			if s > tc.sm {
				t.Errorf("n=%d sm=%d: leaf %d too large", tc.n, tc.sm, s)
			}
			if s < 1 {
				t.Errorf("n=%d sm=%d: empty leaf", tc.n, tc.sm)
			}
		}
		if sum != tc.n {
			t.Errorf("n=%d sm=%d: sizes sum to %d", tc.n, tc.sm, sum)
		}
	}
	// n=1000, smlsiz=300 gives 4 leaves of 250 each (paper's Figure 2).
	sizes := PartitionSizes(1000, 300)
	if len(sizes) != 4 || sizes[0] != 250 {
		t.Errorf("paper example: %v", sizes)
	}
}

func TestSortEigenMatchesGather(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for _, n := range []int{1, 2, 3, 7, 40, 129} {
		for trial := 0; trial < 5; trial++ {
			ldq := n + trial%3 // exercise ldq > n
			d := make([]float64, n)
			q := make([]float64, n*ldq)
			for i := range d {
				d[i] = rng.NormFloat64()
			}
			for i := range q {
				q[i] = rng.NormFloat64()
			}
			indxq := rng.Perm(n)

			// Reference: explicit gather into fresh arrays.
			wantD := make([]float64, n)
			wantQ := make([]float64, n*ldq)
			copy(wantQ, q)
			for i := 0; i < n; i++ {
				j := indxq[i]
				wantD[i] = d[j]
				copy(wantQ[i*ldq:i*ldq+n], q[j*ldq:j*ldq+n])
			}

			SortEigen(n, d, q, ldq, indxq)
			for i := 0; i < n; i++ {
				if d[i] != wantD[i] {
					t.Fatalf("n=%d trial=%d: d[%d]=%v want %v", n, trial, i, d[i], wantD[i])
				}
				if indxq[i] != i {
					t.Fatalf("n=%d trial=%d: indxq[%d]=%d, want identity on return", n, trial, i, indxq[i])
				}
				for r := 0; r < n; r++ {
					if q[r+i*ldq] != wantQ[r+i*ldq] {
						t.Fatalf("n=%d trial=%d: q[%d,%d] mismatch", n, trial, r, i)
					}
				}
			}
		}
	}
}

func TestSortEigenScratchIsLinear(t *testing.T) {
	// The sort must use an O(n) column buffer, not the former n×n shadow
	// matrix: for n=512 the old implementation allocated ~2 MB per call,
	// the cycle-following one ~4 KB.
	const n = 512
	rng := rand.New(rand.NewSource(97))
	d := make([]float64, n)
	q := make([]float64, n*n)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	perm := rng.Perm(n)
	indxq := make([]int, n)
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			copy(indxq, perm)
			SortEigen(n, d, q, n, indxq)
		}
	})
	if got, limit := res.AllocedBytesPerOp(), int64(200<<10); got > limit {
		t.Errorf("SortEigen allocates %d B/op for n=%d, want O(n) scratch (< %d B)", got, n, limit)
	}
}

func TestDgemmHookIsUsed(t *testing.T) {
	called := false
	hook := func(ta, tb bool, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
		called = true
		// delegate to the serial kernel
		naive := func() {
			for j := 0; j < n; j++ {
				for i := 0; i < m; i++ {
					var s float64
					for l := 0; l < k; l++ {
						s += a[i+l*lda] * b[l+j*ldb]
					}
					c[i+j*ldc] = alpha*s + beta*c[i+j*ldc]
				}
			}
		}
		naive()
	}
	rng := rand.New(rand.NewSource(83))
	n := 40
	d0, e0 := randTridiag(rng, n)
	d := append([]float64(nil), d0...)
	e := append([]float64(nil), e0...)
	q := make([]float64, n*n)
	if err := Dstedc(n, d, e, q, n, &DCConfig{SmallSize: 8, Gemm: hook}); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Error("gemm hook never invoked")
	}
	checkEigenDecomp(t, "hooked", n, d0, e0, d, q, n, 100)
}
