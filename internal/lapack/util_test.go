package lapack

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestDlartgProperties(t *testing.T) {
	cases := [][2]float64{
		{0, 0}, {1, 0}, {0, 1}, {3, 4}, {-3, 4}, {3, -4}, {-3, -4},
		{1e-300, 1e-300}, {1e300, 1e300}, {1e308, 1}, {1, 1e308}, {1e-308, 1e-308},
	}
	for _, fg := range cases {
		f, g := fg[0], fg[1]
		c, s, r := Dlartg(f, g)
		// c²+s² = 1
		if math.Abs(c*c+s*s-1) > 1e-14 {
			t.Errorf("Dlartg(%g,%g): c²+s²=%v", f, g, c*c+s*s)
		}
		// rotation maps (f,g) to (r,0): use scaled comparison
		scale := math.Max(math.Abs(f), math.Abs(g))
		if scale == 0 {
			continue
		}
		sf, sg := f/scale, g/scale
		sr := r / scale
		if math.Abs(c*sf+s*sg-sr) > 1e-14 {
			t.Errorf("Dlartg(%g,%g): c*f+s*g=%v != r=%v", f, g, (c*sf+s*sg)*scale, r)
		}
		if math.Abs(-s*sf+c*sg) > 1e-14 {
			t.Errorf("Dlartg(%g,%g): -s*f+c*g=%v != 0", f, g, -s*sf+c*sg)
		}
	}
}

func TestDlartgQuick(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Remainder(a, 1e150)
		b = math.Remainder(b, 1e150)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		c, s, r := Dlartg(a, b)
		if a == 0 && b == 0 {
			return c == 1 && s == 0
		}
		hyp := Dlapy2(a, b)
		return math.Abs(math.Abs(r)-hyp) <= 1e-13*hyp && math.Abs(c*c+s*s-1) < 1e-13
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDlapy(t *testing.T) {
	if got := Dlapy2(3, 4); got != 5 {
		t.Errorf("Dlapy2(3,4)=%v", got)
	}
	if got := Dlapy2(1e308, 1e308); math.IsInf(got, 0) {
		t.Errorf("Dlapy2 overflow: %v", got)
	}
	if got := Dlapy3(1, 2, 2); got != 3 {
		t.Errorf("Dlapy3(1,2,2)=%v", got)
	}
	if got := Dlapy3(0, 0, 0); got != 0 {
		t.Errorf("Dlapy3(0)=%v", got)
	}
}

func TestDlanst(t *testing.T) {
	d := []float64{1, -5, 2}
	e := []float64{3, -4}
	if got := Dlanst('M', 3, d, e); got != 5 {
		t.Errorf("M-norm: %v", got)
	}
	// one-norm: max column sum = |{-5}| + |3| + |4| = 12
	if got := Dlanst('1', 3, d, e); got != 12 {
		t.Errorf("1-norm: %v", got)
	}
	want := math.Sqrt(1 + 25 + 4 + 2*(9+16))
	if got := Dlanst('F', 3, d, e); math.Abs(got-want) > 1e-14 {
		t.Errorf("F-norm: got %v want %v", got, want)
	}
	if got := Dlanst('M', 1, []float64{-7}, nil); got != 7 {
		t.Errorf("M-norm n=1: %v", got)
	}
}

func TestDlascl(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	Dlascl(2, 2, 2, 6, a, 2)
	for i, want := range []float64{3, 6, 9, 12} {
		if a[i] != want {
			t.Errorf("Dlascl[%d]=%v want %v", i, a[i], want)
		}
	}
	// extreme ratio must be applied safely in steps
	b := []float64{1e-200}
	Dlascl(1, 1, 1e-200, 1e200, b, 1)
	if b[0] != 1e200 {
		t.Errorf("Dlascl extreme: %v", b[0])
	}
	c := []float64{1e200}
	Dlascl(1, 1, 1e200, 1e-200, c, 1)
	if math.Abs(c[0]-1e-200) > 1e-213 {
		t.Errorf("Dlascl extreme down: %v", c[0])
	}
}

func TestDlamrg(t *testing.T) {
	// two ascending blocks
	a := []float64{1, 4, 9, 2, 3, 10}
	idx := make([]int, 6)
	Dlamrg(3, 3, a, 1, 1, idx)
	prev := math.Inf(-1)
	seen := map[int]bool{}
	for _, ix := range idx {
		if a[ix] < prev {
			t.Fatalf("Dlamrg not ascending: %v -> %v", prev, a[ix])
		}
		prev = a[ix]
		seen[ix] = true
	}
	if len(seen) != 6 {
		t.Fatalf("Dlamrg not a permutation: %v", idx)
	}
	// second block descending
	b := []float64{1, 4, 9, 10, 3, 2}
	Dlamrg(3, 3, b, 1, -1, idx)
	prev = math.Inf(-1)
	for _, ix := range idx {
		if b[ix] < prev {
			t.Fatalf("Dlamrg desc block not ascending: %v", idx)
		}
		prev = b[ix]
	}
}

func TestDlamrgQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 100; iter++ {
		n1, n2 := rng.Intn(10), rng.Intn(10)
		if n1+n2 == 0 {
			continue
		}
		a := make([]float64, n1+n2)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		sort.Float64s(a[:n1])
		sort.Float64s(a[n1:])
		idx := make([]int, n1+n2)
		Dlamrg(n1, n2, a, 1, 1, idx)
		prev := math.Inf(-1)
		for _, ix := range idx {
			if a[ix] < prev {
				t.Fatalf("iter %d: not sorted", iter)
			}
			prev = a[ix]
		}
	}
}

func TestDlaev2(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		a, b, c := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		rt1, rt2, cs, sn := Dlaev2(a, b, c)
		// eigenvalues satisfy trace and det
		if math.Abs((rt1+rt2)-(a+c)) > 1e-12*(math.Abs(rt1)+math.Abs(rt2)+1) {
			t.Fatalf("trace mismatch: %v %v vs %v", rt1, rt2, a+c)
		}
		det := a*c - b*b
		if math.Abs(rt1*rt2-det) > 1e-10*(math.Abs(det)+1) {
			t.Fatalf("det mismatch")
		}
		// (cs, sn) is a unit eigenvector for rt1
		r1 := a*cs + b*sn - rt1*cs
		r2 := b*cs + c*sn - rt1*sn
		if math.Abs(r1) > 1e-12*(math.Abs(rt1)+1) || math.Abs(r2) > 1e-12*(math.Abs(rt1)+1) {
			t.Fatalf("eigenvector residual: %v %v", r1, r2)
		}
		if math.Abs(cs*cs+sn*sn-1) > 1e-13 {
			t.Fatalf("eigenvector not unit")
		}
		// rt1 has the larger magnitude
		if math.Abs(rt1) < math.Abs(rt2)-1e-13 {
			t.Fatalf("rt1 not largest: %v %v", rt1, rt2)
		}
	}
}

func TestSign(t *testing.T) {
	if Sign(3, -2) != -3 || Sign(-3, 2) != 3 || Sign(3, 0) != 3 {
		t.Error("Sign semantics")
	}
}
