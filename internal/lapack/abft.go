package lapack

import (
	"fmt"
	"math"

	"tridiag/internal/blas"
)

// Per-merge numerical invariants of the D&C merge kernels (DESIGN.md §18):
// cheap identities the exact arithmetic would satisfy, checked against
// rounding-aware bounds so silent data corruption in a kernel's output is
// caught at the merge that produced it instead of shipping to the client.

// InvariantError reports a violated merge invariant — an interlacing bound
// broken by a secular root, or the merged spectrum's trace drifting from the
// diagonal trace. Like a checksum mismatch it is classified as transient
// corruption: a recompute is expected to clear it, and the retry ladders
// count it as detected SDC rather than a numerical failure.
type InvariantError struct {
	Kernel string // task class attribution ("LAED4", "Dlamrg")
	Detail string
}

func (e *InvariantError) Error() string {
	return fmt.Sprintf("lapack: merge invariant violated in %s: %s", e.Kernel, e.Detail)
}

// Corruption marks the failure as detected silent data corruption.
func (e *InvariantError) Corruption() bool { return true }

// Transient reports true: recomputing the merge is expected to clear it.
func (e *InvariantError) Transient() bool { return true }

// TaskClass attributes the violation to the kernel class whose output broke
// the invariant.
func (e *InvariantError) TaskClass() string { return e.Kernel }

// CheckInterlacing verifies the interlacing property of the secular roots in
// d[j0:j1] against the deflated poles: for the rank-one update D + ρ·z·zᵀ
// with ρ > 0, the j-th root satisfies Dlamda[j] ≤ λ_j ≤ Dlamda[j+1] (and
// λ_{K-1} ≤ Dlamda[K-1] + ρ). The bound is slacked by a few ulps of the
// bracket width — Dlaed4 and its bisection rescue both keep roots strictly
// inside the bracket, so a violation beyond rounding means the stored root
// (or a pole it was computed from) was corrupted after the solve. O(1) per
// root.
func (df *Deflation) CheckInterlacing(d []float64, j0, j1 int) error {
	k := df.K
	if k <= 1 {
		return nil
	}
	for j := j0; j < j1; j++ {
		lo := df.Dlamda[j]
		var hi float64
		if j+1 < k {
			hi = df.Dlamda[j+1]
		} else {
			hi = df.Dlamda[k-1] + df.Rho
		}
		// A few ulps of slack on each end: the root representation is
		// λ_j = Dlamda[j] + τ with τ computed to high relative accuracy, so
		// the stored sum can round to the pole itself but never cross it by
		// more than the bracket's rounding noise.
		slack := 16 * Eps * (math.Abs(lo) + math.Abs(hi) + df.Rho)
		if v := d[j]; v < lo-slack || v > hi+slack {
			return &InvariantError{
				Kernel: "LAED4",
				Detail: fmt.Sprintf("secular root %d = %.17g outside interlacing bracket [%.17g, %.17g]", j, v, lo, hi),
			}
		}
	}
	return nil
}

// TraceBudget returns the trace-preservation invariant of this merge: the
// sum of the merged block's eigenvalues (K secular roots plus N−K deflated
// values) must equal traceIn + Rho, where traceIn is Σd over the block at
// merge entry (the deflation rotations preserve the diagonal sum exactly and
// the rank-one update adds ρ·‖z‖² = ρ) and dmax is |d|∞ at entry. The
// tolerance covers two legitimate drift sources: secular-root and summation
// rounding (O(eps) relative to the block's mass), and the rank-one mass the
// deflation threshold deliberately drops — Dlaed2's tolerance is
// 8·eps·max(|d|∞, |z|∞) with ‖z‖ = 1, so up to n dropped z entries (or the
// whole update, when ρ·|z|∞ is below threshold) discard O(n·eps·max(dmax, 1))
// of trace absolutely, even when the block's local values are far smaller.
func TraceBudget(traceIn, absIn, dmax, rho float64, n int) (want, tol float64) {
	want = traceIn + rho
	tol = 256*Eps*(absIn+float64(n)*math.Abs(rho)+math.Abs(traceIn)) +
		32*float64(n)*Eps*math.Max(dmax, 1)
	return want, tol
}

// CheckTrace verifies the merged spectrum in d[0:n] against the trace budget
// captured at merge entry. Called by the Dlamrg join, which is ordered after
// every writer of the block's eigenvalues.
func CheckTrace(d []float64, n int, want, tol float64) (defect float64, err error) {
	// Compensated summation: the tolerance is ~256·eps of the spectrum's
	// absolute mass, which naive n-term summation noise would exceed for
	// large one-signed spectra.
	var sum, c float64
	for _, v := range d[:n] {
		y := v - c
		t := sum + y
		c = (t - sum) - y
		sum = t
	}
	defect = math.Abs(sum - want)
	if defect > tol {
		return defect, &InvariantError{
			Kernel: "Dlamrg",
			Detail: fmt.Sprintf("merged spectrum trace %.17g drifted from diagonal trace %.17g by %.3g (tolerance %.3g)", sum, want, defect, tol),
		}
	}
	return defect, nil
}

// PackVChecked is PackV with ABFT checksum rows on the packed operands:
// every packed UpdateVect GEMM of the merge can then be verified against the
// checksum identity at O(m·n) cost. The unpacked fallback operands carry no
// checksums (their shapes are below the blocked-path threshold; the merge
// invariants and the solve-level audit cover them).
func (df *Deflation) PackVChecked(ws *MergeWorkspace, ncol int) (bytes int) {
	if df.K == 0 || ncol <= 0 {
		return 0
	}
	n1 := df.N1
	n2 := df.N - n1
	c12 := df.C12()
	c23 := df.C23()
	if c12 > 0 && blas.PackWorthwhile(n1, ncol, c12) {
		ws.PackTop = blas.PackAChecked(false, n1, c12, ws.Q2Top, n1)
		bytes += ws.PackTop.Bytes()
	}
	if c23 > 0 && blas.PackWorthwhile(n2, ncol, c23) {
		ws.PackBot = blas.PackAChecked(false, n2, c23, ws.Q2Bot, n2)
		bytes += ws.PackBot.Bytes()
	}
	return bytes
}

// VerifyUpdatePanel checks the ABFT checksum identity for the eigenvector
// panel q(:, j0:j1) written by UpdatePanel, against the packed operands'
// checksum rows. GEMMs that ran unpacked are not covered (no checksums were
// built for them). Returns the number of verified GEMM outputs and the first
// checksum violation, attributed to the UpdateVect class.
func (df *Deflation) VerifyUpdatePanel(q []float64, ldq int, ws *MergeWorkspace, j0, j1 int) (checked int, err error) {
	k := df.K
	ncol := j1 - j0
	if ncol <= 0 || k == 0 {
		return 0, nil
	}
	n1 := df.N1
	c1 := df.Ctot[colTop]
	if ws.PackTop != nil && ws.PackTop.Checked() {
		checked++
		if err := ws.PackTop.Verify(ncol, 1, ws.S[j0*k:], k, q[j0*ldq:], ldq, "UpdateVect"); err != nil {
			return checked, err
		}
	}
	if ws.PackBot != nil && ws.PackBot.Checked() {
		checked++
		if err := ws.PackBot.Verify(ncol, 1, ws.S[j0*k+c1:], k, q[j0*ldq+n1:], ldq, "UpdateVect"); err != nil {
			return checked, err
		}
	}
	return checked, nil
}
