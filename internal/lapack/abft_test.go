package lapack

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// TestCheckInterlacing: roots strictly inside their pole brackets pass; a
// root pushed past its bracket (the signature of a corrupted secular solve)
// fails with the LAED4-attributed corruption taxonomy.
func TestCheckInterlacing(t *testing.T) {
	const k = 8
	df := &Deflation{K: k, Rho: 0.5, Dlamda: make([]float64, k)}
	for i := range df.Dlamda {
		df.Dlamda[i] = float64(i)
	}
	d := make([]float64, k)
	for j := 0; j < k-1; j++ {
		d[j] = df.Dlamda[j] + 0.3 // inside [j, j+1]
	}
	d[k-1] = df.Dlamda[k-1] + 0.3 // inside [k-1, k-1+rho]
	if err := df.CheckInterlacing(d, 0, k); err != nil {
		t.Fatalf("false positive on interlaced roots: %v", err)
	}
	// A root that rounds to its pole must still pass (the slack covers it).
	d[3] = df.Dlamda[3]
	if err := df.CheckInterlacing(d, 0, k); err != nil {
		t.Fatalf("false positive on root at its pole: %v", err)
	}
	// An escaped root — a bit 57 exponent flip lands far outside any bracket.
	d[3] = math.Float64frombits(math.Float64bits(3.3) ^ (1 << 57))
	err := df.CheckInterlacing(d, 0, k)
	if err == nil {
		t.Fatal("escaped secular root passed interlacing")
	}
	var ie *InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("error %T is not an *InvariantError", err)
	}
	if !ie.Corruption() || !ie.Transient() || ie.TaskClass() != "LAED4" {
		t.Errorf("taxonomy wrong: corruption=%v transient=%v class=%q", ie.Corruption(), ie.Transient(), ie.TaskClass())
	}
}

// TestCheckTraceBudget: the merged spectrum's trace must match the
// entry-diagonal trace plus rho within the budget on clean merges — including
// a fully-deflated one where the dropped rank-one mass is the budget's
// absolute term — and a corrupted eigenvalue must break it.
func TestCheckTraceBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const n = 200
	d := make([]float64, n)
	var traceIn, absIn, dmax float64
	for i := range d {
		d[i] = rng.NormFloat64()
		traceIn += d[i]
		absIn += math.Abs(d[i])
		if a := math.Abs(d[i]); a > dmax {
			dmax = a
		}
	}
	rho := 0.25

	// A clean "merge": eigenvalues shifted so the trace identity holds
	// exactly up to rounding (add rho to one entry).
	merged := append([]float64(nil), d...)
	merged[0] += rho
	want, tol := TraceBudget(traceIn, absIn, dmax, rho, n)
	defect, err := CheckTrace(merged, n, want, tol)
	if err != nil {
		t.Fatalf("false positive on clean trace: %v", err)
	}
	if defect > tol {
		t.Fatalf("defect %g reported above tolerance %g without error", defect, tol)
	}

	// Full deflation: the update's trace mass is legitimately dropped when
	// rho is below the deflation threshold; the budget's absolute term must
	// absorb it.
	tiny := 4 * Eps * dmax
	want, tol = TraceBudget(traceIn, absIn, dmax, tiny, n)
	if _, err := CheckTrace(d, n, want, tol); err != nil {
		t.Fatalf("false positive on fully deflated merge: %v", err)
	}

	// Corruption: one flipped exponent bit in the spectrum.
	want, tol = TraceBudget(traceIn, absIn, dmax, rho, n)
	merged[7] = math.Float64frombits(math.Float64bits(merged[7]) ^ (1 << 57))
	_, err = CheckTrace(merged, n, want, tol)
	if err == nil {
		t.Fatal("corrupted spectrum passed the trace check")
	}
	var ie *InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("error %T is not an *InvariantError", err)
	}
	if ie.TaskClass() != "Dlamrg" || !ie.Corruption() {
		t.Errorf("taxonomy wrong: class=%q corruption=%v", ie.TaskClass(), ie.Corruption())
	}
}

// TestCheckTraceCompensated: the compensated summation must keep a large
// one-signed spectrum's summation noise inside the budget — naive summation
// noise grows with n and would trip the check spuriously.
func TestCheckTraceCompensated(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 5000
	d := make([]float64, n)
	var traceIn, absIn, dmax float64
	var c float64
	for i := range d {
		d[i] = 1 + 1e-3*rng.Float64() // one-signed: worst case for summation noise
		y := d[i] - c
		s := traceIn + y
		c = (s - traceIn) - y
		traceIn = s
		absIn += d[i]
		if d[i] > dmax {
			dmax = d[i]
		}
	}
	want, tol := TraceBudget(traceIn, absIn, dmax, 0, n)
	if _, err := CheckTrace(d, n, want, tol); err != nil {
		t.Fatalf("false positive on large one-signed spectrum: %v", err)
	}
}
