package lapack

import (
	"fmt"
	"math"

	"tridiag/internal/simd"
)

// Dlaed4 computes the i-th (0-based) eigenvalue of the rank-one modified
// diagonal matrix D + rho * z * zᵀ, following LAPACK DLAED4 (rational
// interpolation, the "middle way", with bisection safeguards).
//
// Requirements: d is strictly increasing, rho > 0, and z has unit 2-norm with
// no zero components (the deflation step guarantees all of these).
//
// On return, lam is the eigenvalue and delta[j] holds d[j]-lam computed
// without cancellation (the difference is accumulated relative to the origin
// pole). For k == 1, delta[0] = 1; for k == 2 delta holds the normalized
// eigenvector components instead (see Dlaed5), matching LAPACK semantics.
func Dlaed4(k, i int, d, z, delta []float64, rho float64) (lam float64, err error) {
	lam, _, _, err = Dlaed4OrgTau(k, i, d, z, delta, rho)
	return lam, err
}

// Dlaed4OrgTau is Dlaed4 exposing the root's representation lam = org + tau,
// where org is the origin pole and tau the (cancellation-free) offset from
// it. delta is recomputed as delta[j] = (d[j]-org) - tau at every return, so
// a later pass holding only (org, tau) can rebuild the column bit-identically
// in O(k) scratch — the values-only lane's eigenvector-free u-formation
// depends on this. For k ≤ 2 the (org, tau) pair is not meaningful for delta
// reconstruction (k == 2 stores eigenvector components per Dlaed5); callers
// re-solve those orders directly.
func Dlaed4OrgTau(k, i int, d, z, delta []float64, rho float64) (lam, org, tau float64, err error) {
	const maxit = 75
	switch {
	case k <= 0:
		return 0, 0, 0, fmt.Errorf("lapack: Dlaed4: k=%d", k)
	case i < 0 || i >= k:
		return 0, 0, 0, fmt.Errorf("lapack: Dlaed4: index %d out of range [0,%d)", i, k)
	case k == 1:
		delta[0] = 1
		t := rho * z[0] * z[0]
		return d[0] + t, d[0], t, nil
	case k == 2:
		lam, err = Dlaed5(i, d, z, delta, rho)
		return lam, 0, 0, err
	}

	eps := Eps
	rhoinv := 1 / rho

	if i == k-1 {
		// The last eigenvalue: root in (d[k-1], d[k-1]+rho).
		n := k
		ii := n - 2 // index of the second-to-last pole (0-based)

		// Initial guess: evaluate at the midpoint d[n-1] + rho/2.
		midpt := rho / 2
		for j := 0; j < n; j++ {
			delta[j] = (d[j] - d[n-1]) - midpt
		}
		psi := simd.SumRatios(z[:n-2], delta[:n-2])
		c := rhoinv + psi
		w := c + z[ii]*z[ii]/delta[n-2] + z[n-1]*z[n-1]/delta[n-1]

		var tau, dltlb, dltub float64
		if w <= 0 {
			// Root in [d[n-1]+rho/2, d[n-1]+rho].
			temp := z[n-2]*z[n-2]/(d[n-1]-d[n-2]+rho) + z[n-1]*z[n-1]/rho
			if c <= temp {
				tau = rho
			} else {
				del := d[n-1] - d[n-2]
				a := -c*del + z[n-2]*z[n-2] + z[n-1]*z[n-1]
				b := z[n-1] * z[n-1] * del
				if a < 0 {
					tau = 2 * b / (math.Sqrt(a*a+4*b*c) - a)
				} else {
					tau = (a + math.Sqrt(a*a+4*b*c)) / (2 * c)
				}
			}
			dltlb, dltub = midpt, rho
		} else {
			del := d[n-1] - d[n-2]
			a := -c*del + z[n-2]*z[n-2] + z[n-1]*z[n-1]
			b := z[n-1] * z[n-1] * del
			if a < 0 {
				tau = 2 * b / (math.Sqrt(a*a+4*b*c) - a)
			} else {
				tau = (a + math.Sqrt(a*a+4*b*c)) / (2 * c)
			}
			dltlb, dltub = 0, midpt
		}
		for j := 0; j < n; j++ {
			delta[j] = (d[j] - d[n-1]) - tau
		}

		// Final delta is recomputed from (org, tau) rather than left in its
		// incrementally-updated form, so the same expression replayed later
		// reproduces it exactly (see Dlaed4OrgTau).
		ret := func(ferr error) (float64, float64, float64, error) {
			for j := 0; j < n; j++ {
				delta[j] = (d[j] - d[n-1]) - tau
			}
			return d[n-1] + tau, d[n-1], tau, ferr
		}

		evaluate := func() (w, dpsi, dphi, erretm float64) {
			// ψ over the leading n-1 terms in one vectorized pass. The
			// reference adds the running prefix of ψ to erretm after every
			// term, which weights term j by (n-1)-j: w0=n-1, wstep=-1. The
			// pole terms j=n-2 and j=n-1 stay scalar.
			psi, dpsiv, werr := simd.SecularSums(z[:n-2], delta[:n-2], float64(n-1), -1)
			dpsi = dpsiv
			temp := z[n-2] / delta[n-2]
			psi += z[n-2] * temp
			dpsi += temp * temp
			erretm = math.Abs(werr + z[n-2]*temp)
			temp = z[n-1] / delta[n-1]
			phi := z[n-1] * temp
			dphi = temp * temp
			erretm = 8*(-phi-psi) + erretm - phi + rhoinv + math.Abs(tau)*(dpsi+dphi)
			w = rhoinv + phi + psi
			return w, dpsi, dphi, erretm
		}

		w, dpsi, dphi, erretm := evaluate()
		if math.Abs(w) <= eps*erretm {
			return ret(nil)
		}
		if w <= 0 {
			dltlb = math.Max(dltlb, tau)
		} else {
			dltub = math.Min(dltub, tau)
		}

		for iter := 0; iter < maxit; iter++ {
			c := w - delta[n-2]*dpsi - delta[n-1]*dphi
			a := (delta[n-2]+delta[n-1])*w - delta[n-2]*delta[n-1]*(dpsi+dphi)
			b := delta[n-2] * delta[n-1] * w
			if c < 0 {
				c = math.Abs(c)
			}
			var eta float64
			switch {
			case c == 0:
				eta = dltub - tau
			case a >= 0:
				eta = (a + math.Sqrt(math.Abs(a*a-4*b*c))) / (2 * c)
			default:
				eta = 2 * b / (a - math.Sqrt(math.Abs(a*a-4*b*c)))
			}
			// eta should have sign opposite to w; fall back to Newton.
			if w*eta > 0 {
				eta = -w / (dpsi + dphi)
			}
			if temp := tau + eta; temp > dltub || temp < dltlb {
				if w < 0 {
					eta = (dltub - tau) / 2
				} else {
					eta = (dltlb - tau) / 2
				}
			}
			for j := 0; j < n; j++ {
				delta[j] -= eta
			}
			tau += eta

			w, dpsi, dphi, erretm = evaluate()
			if math.Abs(w) <= eps*erretm {
				return ret(nil)
			}
			if w <= 0 {
				dltlb = math.Max(dltlb, tau)
			} else {
				dltub = math.Min(dltub, tau)
			}
		}
		return ret(fmt.Errorf("lapack: Dlaed4: no convergence for last eigenvalue (i=%d, k=%d) after %d iterations: |w|=%.3e > tol=%.3e", i, k, maxit, math.Abs(w), eps*erretm))
	}

	// Interior eigenvalue: root in (d[i], d[i+1]).
	ip1 := i + 1
	del := d[ip1] - d[i]
	midpt := del / 2
	for j := 0; j < k; j++ {
		delta[j] = (d[j] - d[i]) - midpt
	}

	psi0 := simd.SumRatios(z[:i], delta[:i])
	phi0 := simd.SumRatios(z[i+2:k], delta[i+2:k])
	c := rhoinv + psi0 + phi0
	w := c + z[i]*z[i]/delta[i] + z[ip1]*z[ip1]/delta[ip1]

	var orgati bool
	var dltlb, dltub float64
	if w > 0 {
		// Root is in the left half: origin at d[i].
		orgati = true
		a := c*del + z[i]*z[i] + z[ip1]*z[ip1]
		b := z[i] * z[i] * del
		if a > 0 {
			tau = 2 * b / (a + math.Sqrt(math.Abs(a*a-4*b*c)))
		} else {
			tau = (a - math.Sqrt(math.Abs(a*a-4*b*c))) / (2 * c)
		}
		dltlb, dltub = 0, midpt
	} else {
		// Root is in the right half: origin at d[i+1].
		orgati = false
		a := c*del - z[i]*z[i] - z[ip1]*z[ip1]
		b := z[ip1] * z[ip1] * del
		if a < 0 {
			tau = 2 * b / (a - math.Sqrt(math.Abs(a*a+4*b*c)))
		} else {
			tau = -(a + math.Sqrt(math.Abs(a*a+4*b*c))) / (2 * c)
		}
		dltlb, dltub = -midpt, 0
	}

	org = d[i]
	ii := i
	if !orgati {
		org = d[ip1]
		ii = ip1
	}
	for j := 0; j < k; j++ {
		delta[j] = (d[j] - org) - tau
	}

	ret := func(ferr error) (float64, float64, float64, error) {
		for j := 0; j < k; j++ {
			delta[j] = (d[j] - org) - tau
		}
		return org + tau, org, tau, ferr
	}

	evaluate := func() (w, dw, dpsi, dphi, erretm float64) {
		// ψ over [0,ii) and φ over (ii,k) in two vectorized passes. The
		// reference accumulates erretm as a running prefix after every term:
		// the forward ψ loop maps to weights ii-j (w0=ii, wstep=-1) and the
		// descending φ loop to weights j-ii over the ascending slice (w0=1,
		// wstep=+1). The pole terms j==i and j==i+1 stay scalar so the
		// iteration sees them at full precision.
		var psi, phi, werrPsi, werrPhi float64
		if orgati {
			psi, dpsi, werrPsi = simd.SecularSums(z[:i], delta[:i], float64(i), -1)
			phi, dphi, werrPhi = simd.SecularSums(z[i+2:k], delta[i+2:k], 2, 1)
			t := z[ip1] / delta[ip1]
			phi += z[ip1] * t
			dphi += t * t
			werrPhi += z[ip1] * t
		} else {
			psi, dpsi, werrPsi = simd.SecularSums(z[:i], delta[:i], float64(i+1), -1)
			t := z[i] / delta[i]
			psi += z[i] * t
			dpsi += t * t
			werrPsi += z[i] * t
			phi, dphi, werrPhi = simd.SecularSums(z[ip1+1:k], delta[ip1+1:k], 1, 1)
		}
		erretm = math.Abs(math.Abs(werrPsi) + werrPhi)
		w = rhoinv + phi + psi
		// Add back the ii-th (origin) term.
		temp := z[ii] / delta[ii]
		dw = dpsi + dphi + temp*temp
		temp = z[ii] * temp
		w += temp
		erretm = 8*(phi-psi) + erretm + 2*rhoinv + 3*math.Abs(temp) + math.Abs(tau)*dw
		return w, dw, dpsi, dphi, erretm
	}

	w, dw, dpsi, dphi, erretm := evaluate()
	if math.Abs(w) <= eps*erretm {
		return ret(nil)
	}
	if w <= 0 {
		dltlb = math.Max(dltlb, tau)
	} else {
		dltub = math.Min(dltub, tau)
	}

	for iter := 0; iter < maxit; iter++ {
		// Middle-way rational step on the two neighbouring poles.
		var cc float64
		if orgati {
			t := z[i] / delta[i]
			cc = w - delta[ip1]*dw - (d[i]-d[ip1])*t*t
		} else {
			t := z[ip1] / delta[ip1]
			cc = w - delta[i]*dw - (d[ip1]-d[i])*t*t
		}
		a := (delta[i]+delta[ip1])*w - delta[i]*delta[ip1]*dw
		b := delta[i] * delta[ip1] * w
		var eta float64
		switch {
		case cc == 0:
			if a == 0 {
				if orgati {
					a = z[i]*z[i] + delta[ip1]*delta[ip1]*(dpsi+dphi)
				} else {
					a = z[ip1]*z[ip1] + delta[i]*delta[i]*(dpsi+dphi)
				}
			}
			eta = b / a
		case a <= 0:
			eta = (a - math.Sqrt(math.Abs(a*a-4*b*cc))) / (2 * cc)
		default:
			eta = 2 * b / (a + math.Sqrt(math.Abs(a*a-4*b*cc)))
		}
		if w*eta >= 0 {
			eta = -w / dw
		}
		if temp := tau + eta; temp > dltub || temp < dltlb {
			if w < 0 {
				eta = (dltub - tau) / 2
			} else {
				eta = (dltlb - tau) / 2
			}
		}
		for j := 0; j < k; j++ {
			delta[j] -= eta
		}
		tau += eta

		w, dw, dpsi, dphi, erretm = evaluate()
		if math.Abs(w) <= eps*erretm {
			return ret(nil)
		}
		if w <= 0 {
			dltlb = math.Max(dltlb, tau)
		} else {
			dltub = math.Min(dltub, tau)
		}
	}
	return ret(fmt.Errorf("lapack: Dlaed4: no convergence for eigenvalue %d of %d after %d iterations: |w|=%.3e > tol=%.3e", i, k, maxit, math.Abs(w), eps*erretm))
}

// Dlaed4Bisect solves the same secular-equation problem as Dlaed4 by pure
// bisection: slower (linear convergence, O(k) per step) but guaranteed to
// converge, since the secular function is strictly increasing between
// consecutive poles and the root is always bracketed. It is the safeguard
// the solver falls back to when Dlaed4's rational iteration reports
// non-convergence, so a hard eigenvalue can degrade speed but never
// correctness. Semantics of lam and delta match Dlaed4.
func Dlaed4Bisect(k, i int, d, z, delta []float64, rho float64) (float64, error) {
	lam, _, _, err := Dlaed4BisectOrgTau(k, i, d, z, delta, rho)
	return lam, err
}

// Dlaed4BisectOrgTau is Dlaed4Bisect exposing the lam = org + tau
// representation, with the same delta-reconstruction contract as
// Dlaed4OrgTau.
func Dlaed4BisectOrgTau(k, i int, d, z, delta []float64, rho float64) (lam, org, tau float64, err error) {
	switch {
	case k <= 0:
		return 0, 0, 0, fmt.Errorf("lapack: Dlaed4Bisect: k=%d", k)
	case i < 0 || i >= k:
		return 0, 0, 0, fmt.Errorf("lapack: Dlaed4Bisect: index %d out of range [0,%d)", i, k)
	case k == 1:
		delta[0] = 1
		t := rho * z[0] * z[0]
		return d[0] + t, d[0], t, nil
	case k == 2:
		lam, err = Dlaed5(i, d, z, delta, rho)
		return lam, 0, 0, err
	}
	rhoinv := 1 / rho
	// w(tau) = 1/rho + Σ_j z_j² / ((d_j - org) - tau): strictly increasing
	// in tau wherever it is finite, with the differences accumulated
	// relative to the origin pole to avoid cancellation (as in Dlaed4).
	eval := func(org, tau float64) float64 {
		return rhoinv + simd.ShiftedSumRatios(d[:k], z[:k], org, tau)
	}
	var lo, hi float64
	if i == k-1 {
		// Root in (d[k-1], d[k-1]+rho·‖z‖²]; ‖z‖=1 after deflation, but
		// widen the bracket if rounding leaves w(hi) non-positive.
		org = d[k-1]
		lo, hi = 0, rho
		for g := 0; g < 4 && eval(org, hi) <= 0; g++ {
			hi *= 2
		}
	} else {
		// Root in (d[i], d[i+1]): pick the origin on the side of the
		// midpoint that holds the root, so delta at the nearby pole stays
		// accurate (w(midpoint) ≥ 0 ⇒ the root lies left of the midpoint).
		del := d[i+1] - d[i]
		midpt := del / 2
		if eval(d[i], midpt) >= 0 {
			org, lo, hi = d[i], 0, midpt
		} else {
			org, lo, hi = d[i+1], -midpt, 0
		}
	}
	// Bisect until the bracket collapses to adjacent floats. w(lo)<0<w(hi)
	// throughout, and the midpoint stays strictly inside the pole interval,
	// so the final tau never lands on a pole (delta stays nonzero).
	tau = lo + (hi-lo)/2
	for iter := 0; iter < 200; iter++ {
		mid := lo + (hi-lo)/2
		if mid == lo || mid == hi {
			break
		}
		if eval(org, mid) >= 0 {
			hi = mid
		} else {
			lo = mid
		}
		tau = mid
	}
	for j := 0; j < k; j++ {
		delta[j] = (d[j] - org) - tau
	}
	return org + tau, org, tau, nil
}

// Dlaed5 computes the i-th eigenvalue of a 2×2 rank-one modification
// D + rho*z*zᵀ in closed form (LAPACK DLAED5). delta receives the normalized
// eigenvector components, as in LAPACK.
func Dlaed5(i int, d, z, delta []float64, rho float64) (float64, error) {
	if i < 0 || i > 1 {
		return 0, fmt.Errorf("lapack: Dlaed5: index %d", i)
	}
	del := d[1] - d[0]
	var lam float64
	if i == 0 {
		w := 1 + 2*rho*(z[1]*z[1]-z[0]*z[0])/del
		if w > 0 {
			b := del + rho*(z[0]*z[0]+z[1]*z[1])
			c := rho * z[0] * z[0] * del
			// b > 0 always
			tau := 2 * c / (b + math.Sqrt(math.Abs(b*b-4*c)))
			lam = d[0] + tau
			delta[0] = -z[0] / tau
			delta[1] = z[1] / (del - tau)
		} else {
			b := -del + rho*(z[0]*z[0]+z[1]*z[1])
			c := rho * z[1] * z[1] * del
			var tau float64
			if b > 0 {
				tau = -2 * c / (b + math.Sqrt(b*b+4*c))
			} else {
				tau = (b - math.Sqrt(b*b+4*c)) / 2
			}
			lam = d[1] + tau
			delta[0] = -z[0] / (del + tau)
			delta[1] = -z[1] / tau
		}
	} else {
		b := -del + rho*(z[0]*z[0]+z[1]*z[1])
		c := rho * z[1] * z[1] * del
		var tau float64
		if b > 0 {
			tau = (b + math.Sqrt(b*b+4*c)) / 2
		} else {
			tau = 2 * c / (-b + math.Sqrt(b*b+4*c))
		}
		lam = d[1] + tau
		delta[0] = -z[0] / (del + tau)
		delta[1] = -z[1] / tau
	}
	temp := math.Sqrt(delta[0]*delta[0] + delta[1]*delta[1])
	delta[0] /= temp
	delta[1] /= temp
	return lam, nil
}
