package lapack

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// secularSetup builds a valid Dlaed4 input: strictly increasing d, unit-norm
// z with no tiny components.
func secularSetup(rng *rand.Rand, k int, spread float64) (d, z []float64, rho float64) {
	d = make([]float64, k)
	cur := rng.NormFloat64()
	for i := 0; i < k; i++ {
		cur += spread * (0.1 + rng.Float64())
		d[i] = cur
	}
	z = make([]float64, k)
	var nrm float64
	for i := range z {
		z[i] = 0.05 + rng.Float64()
		if rng.Intn(2) == 0 {
			z[i] = -z[i]
		}
		nrm += z[i] * z[i]
	}
	nrm = math.Sqrt(nrm)
	for i := range z {
		z[i] /= nrm
	}
	rho = 0.1 + 3*rng.Float64()
	return d, z, rho
}

// secularValue evaluates f(lam) = 1/rho + sum z_j^2/(d_j-lam) given the
// accurately computed delta array.
func secularValueFromDelta(z, delta []float64, rho float64) float64 {
	s := 1 / rho
	for j := range z {
		s += z[j] * z[j] / delta[j]
	}
	return s
}

func TestDlaed4Interlacing(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, k := range []int{3, 4, 8, 25, 60} {
		for trial := 0; trial < 5; trial++ {
			d, z, rho := secularSetup(rng, k, 1.0)
			delta := make([]float64, k)
			lams := make([]float64, k)
			for i := 0; i < k; i++ {
				lam, err := Dlaed4(k, i, d, z, delta, rho)
				if err != nil {
					t.Fatalf("k=%d i=%d: %v", k, i, err)
				}
				lams[i] = lam
				if lam <= d[i] {
					t.Errorf("k=%d i=%d: lam=%v <= d[i]=%v", k, i, lam, d[i])
				}
				if i < k-1 && lam >= d[i+1] {
					t.Errorf("k=%d i=%d: lam=%v >= d[i+1]=%v", k, i, lam, d[i+1])
				}
				if i == k-1 && lam > d[k-1]+rho {
					t.Errorf("k=%d last: lam=%v > d+rho=%v", k, lam, d[k-1]+rho)
				}
				// residual of the secular equation, using delta for accuracy
				f := secularValueFromDelta(z, delta, rho)
				// scale by the derivative-free magnitude of the terms
				var mag float64 = 1 / rho
				for j := range z {
					mag += math.Abs(z[j] * z[j] / delta[j])
				}
				if math.Abs(f) > 1e-11*mag {
					t.Errorf("k=%d i=%d: secular residual %.3e (mag %.3e)", k, i, f, mag)
				}
			}
			if !sort.Float64sAreSorted(lams) {
				t.Errorf("k=%d: eigenvalues not sorted", k)
			}
			// trace identity: sum(lam) = sum(d) + rho since ||z||=1
			var sd, sl float64
			for i := 0; i < k; i++ {
				sd += d[i]
				sl += lams[i]
			}
			if math.Abs(sl-(sd+rho)) > 1e-10*(math.Abs(sd)+rho+1)*float64(k) {
				t.Errorf("k=%d: trace mismatch: %v vs %v", k, sl, sd+rho)
			}
		}
	}
}

func TestDlaed4EigenvectorResidual(t *testing.T) {
	// v_j = (z_i/(d_i - lam_j))_i normalized must satisfy
	// (D + rho z zᵀ) v = lam v to high accuracy.
	rng := rand.New(rand.NewSource(37))
	for _, k := range []int{3, 5, 12, 40} {
		d, z, rho := secularSetup(rng, k, 1.0)
		delta := make([]float64, k)
		for j := 0; j < k; j++ {
			lam, err := Dlaed4(k, j, d, z, delta, rho)
			if err != nil {
				t.Fatal(err)
			}
			v := make([]float64, k)
			var nrm float64
			for i := 0; i < k; i++ {
				v[i] = z[i] / delta[i]
				nrm += v[i] * v[i]
			}
			nrm = math.Sqrt(nrm)
			var ztv float64
			for i := 0; i < k; i++ {
				v[i] /= nrm
				ztv += z[i] * v[i]
			}
			worst := 0.0
			for i := 0; i < k; i++ {
				r := d[i]*v[i] + rho*z[i]*ztv - lam*v[i]
				worst = math.Max(worst, math.Abs(r))
			}
			scale := math.Abs(lam) + math.Abs(d[k-1]) + rho
			if worst > 1e-13*scale*float64(k) {
				t.Errorf("k=%d j=%d: eigvec residual %.3e (scale %v)", k, j, worst, scale)
			}
		}
	}
}

func TestDlaed4ClusteredPoles(t *testing.T) {
	// Nearly equal d values stress the relative accuracy of tau.
	for _, gap := range []float64{1e-3, 1e-7, 1e-12} {
		k := 6
		d := []float64{0, gap, 2 * gap, 1, 1 + gap, 2}
		z := make([]float64, k)
		for i := range z {
			z[i] = 1 / math.Sqrt(float64(k))
		}
		rho := 0.5
		delta := make([]float64, k)
		prev := math.Inf(-1)
		for i := 0; i < k; i++ {
			lam, err := Dlaed4(k, i, d, z, delta, rho)
			if err != nil {
				t.Fatalf("gap=%g i=%d: %v", gap, i, err)
			}
			if lam <= d[i] || (i < k-1 && lam >= d[i+1]) {
				t.Errorf("gap=%g i=%d: interlacing violated: %v", gap, i, lam)
			}
			if lam <= prev {
				t.Errorf("gap=%g i=%d: not increasing", gap, i)
			}
			prev = lam
			f := secularValueFromDelta(z, delta, rho)
			var mag float64 = 1 / rho
			for j := range z {
				mag += math.Abs(z[j] * z[j] / delta[j])
			}
			if math.Abs(f) > 1e-10*mag {
				t.Errorf("gap=%g i=%d: residual %.3e", gap, i, f)
			}
		}
	}
}

func TestDlaed4TinyRho(t *testing.T) {
	// rho -> 0 means eigenvalues barely move off the poles.
	k := 5
	d := []float64{-2, -1, 0, 1, 2}
	z := make([]float64, k)
	for i := range z {
		z[i] = 1 / math.Sqrt(float64(k))
	}
	delta := make([]float64, k)
	for i := 0; i < k; i++ {
		lam, err := Dlaed4(k, i, d, z, delta, 1e-14)
		if err != nil {
			t.Fatalf("i=%d: %v", i, err)
		}
		if math.Abs(lam-d[i]) > 1e-13 {
			t.Errorf("i=%d: lam=%v too far from pole %v", i, lam, d[i])
		}
	}
}

func TestDlaed4K1K2(t *testing.T) {
	// k=1 closed form
	delta := make([]float64, 2)
	lam, err := Dlaed4(1, 0, []float64{3}, []float64{1}, delta, 0.5)
	if err != nil || lam != 3.5 || delta[0] != 1 {
		t.Errorf("k=1: lam=%v delta=%v err=%v", lam, delta[0], err)
	}
	// k=2: check against direct 2x2 eigendecomposition
	d := []float64{1, 2}
	z := []float64{math.Sqrt(0.5), math.Sqrt(0.5)}
	rho := 0.8
	// matrix [[1+0.4, 0.4],[0.4, 2+0.4]]
	a, b, c := d[0]+rho*z[0]*z[0], rho*z[0]*z[1], d[1]+rho*z[1]*z[1]
	rt1, rt2 := Dlae2(a, b, c)
	lo, hi := math.Min(rt1, rt2), math.Max(rt1, rt2)
	l0, err := Dlaed4(2, 0, d, z, delta, rho)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := Dlaed4(2, 1, d, z, delta, rho)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l0-lo) > 1e-13 || math.Abs(l1-hi) > 1e-13 {
		t.Errorf("k=2: got %v %v want %v %v", l0, l1, lo, hi)
	}
}

func TestDlaed4ErrorCases(t *testing.T) {
	delta := make([]float64, 3)
	if _, err := Dlaed4(0, 0, nil, nil, delta, 1); err == nil {
		t.Error("expected error for k=0")
	}
	if _, err := Dlaed4(3, 3, []float64{1, 2, 3}, []float64{0.6, 0.6, 0.5}, delta, 1); err == nil {
		t.Error("expected error for i out of range")
	}
}

func TestDlaed4SkewedWeights(t *testing.T) {
	// Highly non-uniform z: some roots hug their left pole, others the right.
	rng := rand.New(rand.NewSource(53))
	k := 20
	d := make([]float64, k)
	for i := range d {
		d[i] = float64(i)
	}
	z := make([]float64, k)
	var nrm float64
	for i := range z {
		z[i] = math.Pow(10, -6*rng.Float64()) // spans 1e-6 .. 1
		nrm += z[i] * z[i]
	}
	nrm = math.Sqrt(nrm)
	for i := range z {
		z[i] /= nrm
	}
	delta := make([]float64, k)
	for i := 0; i < k; i++ {
		lam, err := Dlaed4(k, i, d, z, delta, 2.5)
		if err != nil {
			t.Fatalf("i=%d: %v", i, err)
		}
		f := secularValueFromDelta(z, delta, 2.5)
		var mag float64 = 1 / 2.5
		for j := range z {
			mag += math.Abs(z[j] * z[j] / delta[j])
		}
		if math.Abs(f) > 1e-10*mag {
			t.Errorf("i=%d: residual %.3e lam=%v", i, f, lam)
		}
	}
}
