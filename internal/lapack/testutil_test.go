package lapack

import (
	"math"
	"math/rand"
	"testing"
)

// tridiagResidual returns max column norm of T*V - V*diag(lam), a measure of
// ||T - V Λ Vᵀ|| when V is orthogonal.
func tridiagResidual(n int, d, e, lam, z []float64, ldz int) float64 {
	worst := 0.0
	y := make([]float64, n)
	for j := 0; j < n; j++ {
		v := z[j*ldz : j*ldz+n]
		for i := 0; i < n; i++ {
			s := d[i] * v[i]
			if i > 0 {
				s += e[i-1] * v[i-1]
			}
			if i < n-1 {
				s += e[i] * v[i+1]
			}
			y[i] = s - lam[j]*v[i]
		}
		var nrm float64
		for _, t := range y {
			nrm += t * t
		}
		worst = math.Max(worst, math.Sqrt(nrm))
	}
	return worst
}

// orthogonality returns max |(VᵀV - I)(i,j)|.
func orthogonality(n int, z []float64, ldz int) float64 {
	worst := 0.0
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			var s float64
			zi, zj := z[i*ldz:i*ldz+n], z[j*ldz:j*ldz+n]
			for k := 0; k < n; k++ {
				s += zi[k] * zj[k]
			}
			if i == j {
				s -= 1
			}
			worst = math.Max(worst, math.Abs(s))
		}
	}
	return worst
}

func randTridiag(rng *rand.Rand, n int) (d, e []float64) {
	d = make([]float64, n)
	e = make([]float64, n-1)
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	for i := range e {
		e[i] = rng.NormFloat64()
	}
	return d, e
}

func checkEigenDecomp(t *testing.T, name string, n int, d, e, lam, z []float64, ldz int, tolScale float64) {
	t.Helper()
	nrm := Dlanst('M', n, d, e)
	if nrm == 0 {
		nrm = 1
	}
	res := tridiagResidual(n, d, e, lam, z, ldz) / (nrm * float64(n))
	orth := orthogonality(n, z, ldz) / float64(n)
	bound := tolScale * Eps
	if res > bound {
		t.Errorf("%s: relative residual %.3e exceeds %.3e", name, res, bound)
	}
	if orth > bound {
		t.Errorf("%s: orthogonality %.3e exceeds %.3e", name, orth, bound)
	}
	for i := 1; i < n; i++ {
		if lam[i] < lam[i-1] {
			t.Errorf("%s: eigenvalues not ascending at %d: %v > %v", name, i, lam[i-1], lam[i])
		}
	}
}
