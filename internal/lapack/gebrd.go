package lapack

import (
	"fmt"

	"tridiag/internal/blas"
)

// Dgebd2 reduces a real m×n matrix (m >= n) to upper bidiagonal form
// B = Q1ᵀ A P1 by an unblocked sequence of Householder reflections
// (LAPACK DGEBD2, upper path). On exit the diagonal of B is in d (length n),
// the superdiagonal in e (length n-1), and the reflectors defining Q1 and P1
// are stored in a below the diagonal and right of the superdiagonal, with
// scales in tauq and taup.
func Dgebd2(m, n int, a []float64, lda int, d, e, tauq, taup []float64) error {
	if m < n {
		return fmt.Errorf("lapack: Dgebd2: m=%d < n=%d (transpose the input)", m, n)
	}
	if lda < m {
		return fmt.Errorf("lapack: Dgebd2: lda=%d < m=%d", lda, m)
	}
	work := make([]float64, max(m, n))
	for i := 0; i < n; i++ {
		// Column reflector H(i) annihilates a(i+1:m, i).
		beta, tq := Dlarfg(m-i, a[i+i*lda], a[min(i+1, m-1)+i*lda:], 1)
		d[i] = beta
		tauq[i] = tq
		a[i+i*lda] = 1
		// Apply H(i) to a(i:m, i+1:n) from the left.
		if i < n-1 && tq != 0 {
			v := a[i+i*lda:]
			mm := m - i
			nn := n - i - 1
			c := a[i+(i+1)*lda:]
			blas.Dgemv(true, mm, nn, 1, c, lda, v, 1, 0, work, 1)
			blas.Dger(mm, nn, -tq, v, 1, work, 1, c, lda)
		}
		a[i+i*lda] = d[i]

		if i < n-1 {
			// Row reflector G(i) annihilates a(i, i+2:n).
			beta, tp := Dlarfg(n-i-1, a[i+(i+1)*lda], a[i+min(i+2, n-1)*lda:], lda)
			e[i] = beta
			taup[i] = tp
			a[i+(i+1)*lda] = 1
			// Apply G(i) to a(i+1:m, i+1:n) from the right.
			if tp != 0 {
				mm := m - i - 1
				nn := n - i - 1
				c := a[i+1+(i+1)*lda:]
				// work = C * v where v is the row a(i, i+1:n) with stride lda
				blas.Dgemv(false, mm, nn, 1, c, lda, a[i+(i+1)*lda:], lda, 0, work, 1)
				blas.Dger(mm, nn, -tp, work, 1, a[i+(i+1)*lda:], lda, c, lda)
			}
			a[i+(i+1)*lda] = e[i]
		} else if i < n {
			// no row reflector for the last column
			if i < len(taup) {
				taup[i] = 0
			}
		}
	}
	return nil
}

// DormbrQ applies Q1 from a Dgebd2 factorization to the m×k matrix C from
// the left: C = Q1 * C (trans=false) or Q1ᵀ * C. Q1 = H(0) H(1) ... H(n-1).
func DormbrQ(trans bool, m, n, k int, a []float64, lda int, tauq []float64, c []float64, ldc int) {
	w := make([]float64, k)
	apply := func(i int) {
		tq := tauq[i]
		if tq == 0 {
			return
		}
		save := a[i+i*lda]
		a[i+i*lda] = 1
		v := a[i+i*lda:]
		mm := m - i
		blas.Dgemv(true, mm, k, 1, c[i:], ldc, v, 1, 0, w, 1)
		blas.Dger(mm, k, -tq, v, 1, w, 1, c[i:], ldc)
		a[i+i*lda] = save
	}
	if !trans {
		for i := n - 1; i >= 0; i-- {
			apply(i)
		}
	} else {
		for i := 0; i < n; i++ {
			apply(i)
		}
	}
}

// DormbrP applies P1 from a Dgebd2 factorization to the n×k matrix C from
// the left: C = P1 * C (trans=false) or P1ᵀ * C. P1 = G(0) G(1) ... G(n-2),
// where G(i) acts on rows i+1..n-1 with v stored in row i of a (stride lda).
func DormbrP(trans bool, n, k int, a []float64, lda int, taup []float64, c []float64, ldc int) {
	if n <= 1 {
		return
	}
	w := make([]float64, k)
	apply := func(i int) {
		tp := taup[i]
		if tp == 0 {
			return
		}
		save := a[i+(i+1)*lda]
		a[i+(i+1)*lda] = 1
		v := a[i+(i+1)*lda:] // stride lda, length n-1-i
		mm := n - 1 - i
		blas.Dgemv(true, mm, k, 1, c[i+1:], ldc, v, lda, 0, w, 1)
		// C(i+1:n, :) -= tp * v * wᵀ with strided v
		for j := 0; j < k; j++ {
			t := -tp * w[j]
			if t == 0 {
				continue
			}
			col := c[i+1+j*ldc:]
			iv := 0
			for r := 0; r < mm; r++ {
				col[r] += t * v[iv]
				iv += lda
			}
		}
		a[i+(i+1)*lda] = save
	}
	if !trans {
		for i := n - 2; i >= 0; i-- {
			apply(i)
		}
	} else {
		for i := 0; i <= n-2; i++ {
			apply(i)
		}
	}
}
