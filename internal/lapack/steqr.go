package lapack

import (
	"fmt"
	"math"
	"sort"

	"tridiag/internal/blas"
)

// CompZ selects the eigenvector mode of Dsteqr.
type CompZ int

const (
	// CompNone computes eigenvalues only.
	CompNone CompZ = iota
	// CompIdentity initializes Z to the identity and returns the
	// eigenvectors of the tridiagonal matrix.
	CompIdentity
	// CompVectors multiplies the caller-supplied Z by the accumulated
	// rotations (eigenvectors of an original matrix reduced to T).
	CompVectors
)

// Dsteqr computes all eigenvalues and, optionally, eigenvectors of a
// symmetric tridiagonal matrix using the implicit QL or QR method
// (LAPACK DSTEQR). On exit d holds the eigenvalues in ascending order, e is
// destroyed, and z (n×n, leading dimension ldz, used unless compz ==
// CompNone) holds the corresponding eigenvectors.
func Dsteqr(compz CompZ, n int, d, e []float64, z []float64, ldz int) error {
	if n < 0 {
		return fmt.Errorf("lapack: Dsteqr: negative n=%d", n)
	}
	if n == 0 {
		return nil
	}
	wantz := compz != CompNone
	if wantz && ldz < n {
		return fmt.Errorf("lapack: Dsteqr: ldz=%d < n=%d", ldz, n)
	}
	if n == 1 {
		if compz == CompIdentity {
			z[0] = 1
		}
		return nil
	}

	const maxit = 30
	eps := Eps
	eps2 := eps * eps
	safmin := SafeMin
	safmax := 1 / safmin
	ssfmax := math.Sqrt(safmax) / 3
	ssfmin := math.Sqrt(safmin) / eps2

	if compz == CompIdentity {
		for j := 0; j < n; j++ {
			col := z[j*ldz : j*ldz+n]
			for i := range col {
				col[i] = 0
			}
			col[j] = 1
		}
	}

	nmaxit := n * maxit
	jtot := 0
	failed := false

	// rotCols applies the 2×2 rotation to columns j and j+1 of Z:
	// col_j' = c*col_j + s*col_{j+1}; col_{j+1}' = -s*col_j + c*col_{j+1}.
	rotCols := func(j int, c, s float64) {
		blas.Drot(n, z[j*ldz:], 1, z[(j+1)*ldz:], 1, c, s)
	}

	// Determine where the matrix splits and choose QL or QR iteration for
	// each unreduced block, working from l1 upward.
	l1 := 0
	for !failed {
		if l1 > n-1 {
			break
		}
		if l1 > 0 {
			e[l1-1] = 0
		}
		m := n - 1
		for mm := l1; mm <= n-2; mm++ {
			tst := math.Abs(e[mm])
			if tst == 0 {
				m = mm
				break
			}
			if tst <= (math.Sqrt(math.Abs(d[mm]))*math.Sqrt(math.Abs(d[mm+1])))*eps {
				e[mm] = 0
				m = mm
				break
			}
		}

		l := l1
		lsv := l
		lend := m
		lendsv := lend
		l1 = m + 1
		if lend == l {
			continue
		}

		// Scale the block to the safe range.
		anorm := Dlanst('M', lend-l+1, d[l:], e[l:])
		iscale := 0
		if anorm == 0 {
			continue
		}
		if anorm > ssfmax {
			iscale = 1
			Dlascl(lend-l+1, 1, anorm, ssfmax, d[l:], n)
			Dlascl(lend-l, 1, anorm, ssfmax, e[l:], n)
		} else if anorm < ssfmin {
			iscale = 2
			Dlascl(lend-l+1, 1, anorm, ssfmin, d[l:], n)
			Dlascl(lend-l, 1, anorm, ssfmin, e[l:], n)
		}

		// Choose between QL and QR.
		if math.Abs(d[lend]) < math.Abs(d[l]) {
			lend, l = l, lend
		}

		if lend > l {
			// QL iteration: look for small subdiagonal element.
		ql:
			for {
				m := lend
				if l != lend {
					for mm := l; mm <= lend-1; mm++ {
						tst := e[mm] * e[mm]
						if tst <= eps2*math.Abs(d[mm])*math.Abs(d[mm+1])+safmin {
							m = mm
							break
						}
					}
				}
				if m < lend {
					e[m] = 0
				}
				p := d[l]
				if m == l {
					// Eigenvalue found.
					d[l] = p
					l++
					if l <= lend {
						continue
					}
					break
				}
				if m == l+1 {
					// 2×2 block: use the closed form.
					var rt1, rt2 float64
					if wantz {
						var c, s float64
						rt1, rt2, c, s = Dlaev2(d[l], e[l], d[l+1])
						rotCols(l, c, s)
					} else {
						rt1, rt2 = Dlae2(d[l], e[l], d[l+1])
					}
					d[l] = rt1
					d[l+1] = rt2
					e[l] = 0
					l += 2
					if l <= lend {
						continue
					}
					break
				}
				if jtot == nmaxit {
					failed = true
					break ql
				}
				jtot++

				// Form shift (Wilkinson).
				g := (d[l+1] - p) / (2 * e[l])
				r := Dlapy2(g, 1)
				g = d[m] - p + e[l]/(g+Sign(r, g))
				s, c := 1.0, 1.0
				p = 0
				// Inner bulge-chase loop.
				for i := m - 1; i >= l; i-- {
					f := s * e[i]
					b := c * e[i]
					c, s, r = Dlartg(g, f)
					if i != m-1 {
						e[i+1] = r
					}
					g = d[i+1] - p
					r = (d[i]-g)*s + 2*c*b
					p = s * r
					d[i+1] = g + p
					g = c*r - b
					if wantz {
						rotCols(i, c, -s)
					}
				}
				d[l] -= p
				e[l] = g
			}
		} else {
			// QR iteration: look for small superdiagonal element.
		qr:
			for {
				m := lend
				if l != lend {
					for mm := l; mm >= lend+1; mm-- {
						tst := e[mm-1] * e[mm-1]
						if tst <= eps2*math.Abs(d[mm])*math.Abs(d[mm-1])+safmin {
							m = mm
							break
						}
					}
				}
				if m > lend {
					e[m-1] = 0
				}
				p := d[l]
				if m == l {
					d[l] = p
					l--
					if l >= lend {
						continue
					}
					break
				}
				if m == l-1 {
					var rt1, rt2 float64
					if wantz {
						var c, s float64
						rt1, rt2, c, s = Dlaev2(d[l-1], e[l-1], d[l])
						rotCols(l-1, c, s)
					} else {
						rt1, rt2 = Dlae2(d[l-1], e[l-1], d[l])
					}
					d[l-1] = rt1
					d[l] = rt2
					e[l-1] = 0
					l -= 2
					if l >= lend {
						continue
					}
					break
				}
				if jtot == nmaxit {
					failed = true
					break qr
				}
				jtot++

				g := (d[l-1] - p) / (2 * e[l-1])
				r := Dlapy2(g, 1)
				g = d[m] - p + e[l-1]/(g+Sign(r, g))
				s, c := 1.0, 1.0
				p = 0
				for i := m; i <= l-1; i++ {
					f := s * e[i]
					b := c * e[i]
					c, s, r = Dlartg(g, f)
					if i != m {
						e[i-1] = r
					}
					g = d[i] - p
					r = (d[i+1]-g)*s + 2*c*b
					p = s * r
					d[i] = g + p
					g = c*r - b
					if wantz {
						rotCols(i, c, s)
					}
				}
				d[l] -= p
				e[l-1] = g
			}
		}

		// Undo scaling for this block.
		switch iscale {
		case 1:
			Dlascl(lendsv-lsv+1, 1, ssfmax, anorm, d[lsv:], n)
			Dlascl(lendsv-lsv, 1, ssfmax, anorm, e[lsv:], n)
		case 2:
			Dlascl(lendsv-lsv+1, 1, ssfmin, anorm, d[lsv:], n)
			Dlascl(lendsv-lsv, 1, ssfmin, anorm, e[lsv:], n)
		}
	}

	if failed {
		bad := 0
		for i := 0; i < n-1; i++ {
			if e[i] != 0 {
				bad++
			}
		}
		return fmt.Errorf("lapack: Dsteqr failed to converge: %d off-diagonal elements did not reach zero", bad)
	}

	// Order eigenvalues (and eigenvectors).
	if !wantz {
		sort.Float64s(d)
		return nil
	}
	// Selection sort to minimize eigenvector swaps, as in LAPACK.
	for ii := 1; ii < n; ii++ {
		i := ii - 1
		k := i
		p := d[i]
		for j := ii; j < n; j++ {
			if d[j] < p {
				k = j
				p = d[j]
			}
		}
		if k != i {
			d[k] = d[i]
			d[i] = p
			blas.Dswap(n, z[i*ldz:], 1, z[k*ldz:], 1)
		}
	}
	return nil
}
