package lapack

import (
	"math"
	"math/rand"
	"testing"
)

// buildMerge runs one D&C merge up to (but not including) UpdateVect: solve
// both halves, deflate, permute into the compressed workspace, solve the
// secular equation, and form the updated eigenvector coefficients in ws.S.
func buildMerge(t *testing.T, n, cut int, d0, e0 []float64) (*Deflation, *MergeWorkspace, []float64) {
	t.Helper()
	d := append([]float64(nil), d0...)
	e := append([]float64(nil), e0...)
	rho := e[cut-1]
	ae := math.Abs(rho)
	d[cut-1] -= ae
	d[cut] -= ae
	q := make([]float64, n*n)
	if err := Dsteqr(CompIdentity, cut, d[:cut], e[:max(cut-1, 0)], q, n); err != nil {
		t.Fatal(err)
	}
	if err := Dsteqr(CompIdentity, n-cut, d[cut:], e[cut:], q[cut+cut*n:], n); err != nil {
		t.Fatal(err)
	}
	indxq := make([]int, n)
	for i := 0; i < cut; i++ {
		indxq[i] = i
	}
	for i := cut; i < n; i++ {
		indxq[i] = i - cut
	}
	z := make([]float64, n)
	for j := 0; j < cut; j++ {
		z[j] = q[cut-1+j*n]
	}
	for j := cut; j < n; j++ {
		z[j] = q[cut+j*n]
	}
	df, err := Dlaed2Deflate(n, cut, d, q, n, indxq, rho, z)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewMergeWorkspace(df)
	df.PermutePanel(q, n, ws, 0, n)
	if df.K == 0 {
		return df, ws, q
	}
	if _, err := df.SecularPanel(ws, d, 0, df.K); err != nil {
		t.Fatal(err)
	}
	for i := range ws.WLoc {
		ws.WLoc[i] = 1
	}
	df.LocalWPanel(ws, ws.WLoc, 0, df.K)
	what := make([]float64, df.K)
	df.FinishW(what, ws.WLoc)
	df.VectorsPanel(ws, what, 0, df.K)
	return df, ws, q
}

// TestUpdatePanelPackedMatchesUnpacked checks the per-merge pack-reuse path
// on randomized deflation outcomes: UpdateVect through operands pre-packed by
// PackV must produce the same eigenvectors as the plain GEMM path, panel by
// panel, for merges with low and high deflation.
func TestUpdatePanelPackedMatchesUnpacked(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	type scenario struct {
		name   string
		n, cut int
		make   func(n int) (d0, e0 []float64)
	}
	random := func(n int) ([]float64, []float64) { return randTridiag(rng, n) }
	clustered := func(n int) ([]float64, []float64) {
		// Constant diagonal with tiny couplings: heavy deflation, small K.
		d0 := make([]float64, n)
		e0 := make([]float64, n-1)
		for i := range d0 {
			d0[i] = 2
		}
		for i := range e0 {
			e0[i] = 1e-12
		}
		return d0, e0
	}
	scenarios := []scenario{
		{"low-deflation-even", 192, 96, random},
		{"low-deflation-skewed", 200, 48, random},
		{"odd-tails", 157, 61, random},
		{"small", 24, 12, random},
		{"high-deflation", 128, 64, clustered},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			d0, e0 := sc.make(sc.n)
			df, ws, q := buildMerge(t, sc.n, sc.cut, d0, e0)
			defer ws.Release()
			if df.K == 0 {
				return // nothing for UpdateVect to do
			}
			n := sc.n
			nb := 32
			qUnpacked := append([]float64(nil), q...)
			qPacked := append([]float64(nil), q...)

			var unpackedOnly int
			for j0 := 0; j0 < df.K; j0 += nb {
				j1 := min(j0+nb, df.K)
				hits, misses := df.UpdatePanel(qUnpacked, n, ws, j0, j1, nil)
				if hits != 0 {
					t.Fatalf("panel [%d,%d): packed hits before PackV", j0, j1)
				}
				unpackedOnly += misses
			}

			bytes := df.PackV(ws, nb)
			var hits, misses int
			for j0 := 0; j0 < df.K; j0 += nb {
				j1 := min(j0+nb, df.K)
				h, m := df.UpdatePanel(qPacked, n, ws, j0, j1, nil)
				hits += h
				misses += m
			}
			if bytes > 0 && hits == 0 {
				t.Fatalf("PackV packed %d bytes but no panel hit the packed path", bytes)
			}
			if bytes == 0 && hits != 0 {
				t.Fatalf("nothing packed but %d panels claimed the packed path", hits)
			}
			if hits+misses != unpackedOnly {
				t.Fatalf("GEMM count changed with packing: %d+%d vs %d", hits, misses, unpackedOnly)
			}

			tol := 1e-12 * float64(n)
			for j := 0; j < n; j++ {
				for i := 0; i < n; i++ {
					a, b := qUnpacked[i+j*n], qPacked[i+j*n]
					if math.Abs(a-b) > tol {
						t.Fatalf("q(%d,%d): unpacked %v packed %v", i, j, a, b)
					}
				}
			}
		})
	}
}

// TestMergeWorkspaceReleaseClearsPacks: Release must drop the packed operands
// so a recycled workspace never aliases a previous merge's packs.
func TestMergeWorkspaceReleaseClearsPacks(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	d0, e0 := randTridiag(rng, 96)
	df, ws, _ := buildMerge(t, 96, 48, d0, e0)
	df.PackV(ws, 32)
	ws.Release()
	if ws.PackTop != nil || ws.PackBot != nil || ws.Q2Top != nil || ws.S != nil {
		t.Fatal("Release left workspace fields live")
	}
}
