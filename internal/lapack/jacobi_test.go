package lapack

import (
	"math"
	"math/rand"
	"testing"
)

func TestJacobiEigenRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	for _, n := range []int{1, 2, 3, 10, 40} {
		a := randSym(rng, n, n)
		aorig := append([]float64(nil), a...)
		w := make([]float64, n)
		v := make([]float64, n*n)
		if err := JacobiEigen(n, a, n, w, v, n); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// A v = λ v and VᵀV = I
		var anorm float64
		for _, x := range aorig {
			anorm = math.Max(anorm, math.Abs(x))
		}
		if anorm == 0 {
			anorm = 1
		}
		worst := 0.0
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				var s float64
				for l := 0; l < n; l++ {
					s += aorig[i+l*n] * v[l+j*n]
				}
				worst = math.Max(worst, math.Abs(s-w[j]*v[i+j*n]))
			}
		}
		if worst/(anorm*float64(n)) > 1e-14 {
			t.Errorf("n=%d: Jacobi residual %.3e", n, worst/(anorm*float64(n)))
		}
		if o := orthogonality(n, v, n); o > 1e-14*float64(n) {
			t.Errorf("n=%d: Jacobi orthogonality %.3e", n, o)
		}
		for i := 1; i < n; i++ {
			if w[i] < w[i-1] {
				t.Errorf("n=%d: not ascending", n)
			}
		}
	}
}

func TestJacobiMatchesDCViaTridiagonal(t *testing.T) {
	// Same dense matrix through Jacobi and through sytrd+stedc+ormtr must
	// agree on the eigenvalues.
	rng := rand.New(rand.NewSource(153))
	n := 30
	a := randSym(rng, n, n)
	aj := append([]float64(nil), a...)
	w := make([]float64, n)
	v := make([]float64, n*n)
	if err := JacobiEigen(n, aj, n, w, v, n); err != nil {
		t.Fatal(err)
	}
	d := make([]float64, n)
	e := make([]float64, n-1)
	tau := make([]float64, n-1)
	if err := Dsytrd(n, a, n, d, e, tau, 8); err != nil {
		t.Fatal(err)
	}
	q := make([]float64, n*n)
	if err := Dstedc(n, d, e, q, n, &DCConfig{SmallSize: 10}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if math.Abs(w[i]-d[i]) > 1e-12*float64(n)*(math.Abs(d[i])+1) {
			t.Errorf("eig %d: jacobi %v dc %v", i, w[i], d[i])
		}
	}
}

func TestJacobiZeroAndDiagonal(t *testing.T) {
	n := 5
	a := make([]float64, n*n)
	w := make([]float64, n)
	v := make([]float64, n*n)
	if err := JacobiEigen(n, a, n, w, v, n); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if w[i] != 0 {
			t.Error("zero matrix")
		}
	}
	for i, x := range []float64{4, -1, 3, 0, 2} {
		a[i+i*n] = x
	}
	if err := JacobiEigen(n, a, n, w, v, n); err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, 0, 2, 3, 4}
	for i := range want {
		if w[i] != want[i] {
			t.Errorf("diag case %d: %v want %v", i, w[i], want[i])
		}
	}
}
