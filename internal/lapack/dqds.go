package lapack

import (
	"fmt"
	"math"
	"sort"
)

// DqdsEigen computes all eigenvalues of the symmetric positive semidefinite
// tridiagonal matrix B·Bᵀ given by its qd representation — B lower
// bidiagonal with B(i,i)=√q[i] and B(i+1,i)=√e[i] — using the differential
// quotient-difference algorithm with aggressive shifts (the role of LAPACK's
// DLASQ family, with a simplified shift strategy safeguarded by retry).
//
// All q[i] must be ≥ 0 and e[i] ≥ 0. On exit q holds the eigenvalues in
// ascending order, computed to high relative accuracy; e is destroyed.
func DqdsEigen(n int, q, e []float64) error {
	if n < 0 {
		return fmt.Errorf("lapack: DqdsEigen: negative n")
	}
	if n == 0 {
		return nil
	}
	for i := 0; i < n; i++ {
		if q[i] < 0 || math.IsNaN(q[i]) {
			return fmt.Errorf("lapack: DqdsEigen: q[%d]=%v must be nonnegative", i, q[i])
		}
	}
	for i := 0; i < n-1; i++ {
		if e[i] < 0 || math.IsNaN(e[i]) {
			return fmt.Errorf("lapack: DqdsEigen: e[%d]=%v must be nonnegative", i, e[i])
		}
	}

	vals := make([]float64, 0, n)
	type seg struct {
		lo, hi int
		sigma  float64
	}
	stack := []seg{{0, n, 0}}
	// scratch for speculative shifted sweeps
	qt := make([]float64, n)
	et := make([]float64, n)

	eps2 := Eps * Eps
	maxSweeps := 60*n + 200
	sweeps := 0

	for len(stack) > 0 {
		sg := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		qs := q[sg.lo:sg.hi]
		es := e[sg.lo:]
		m := sg.hi - sg.lo
		sigma := sg.sigma
		dmin := math.Inf(1)
		haveDmin := false

		for m > 0 {
			// Trailing deflation.
			if m == 1 {
				vals = append(vals, qs[0]+sigma)
				m = 0
				break
			}
			deflated := false
			for m >= 2 && es[m-2] <= eps2*(sigma+qs[m-1]) {
				vals = append(vals, qs[m-1]+sigma)
				m--
				deflated = true
				if m == 1 {
					vals = append(vals, qs[0]+sigma)
					m = 0
				}
			}
			if m == 0 {
				break
			}
			if m == 2 {
				// Closed form on the 2×2 trailing block of B·Bᵀ.
				rt1, rt2 := Dlae2(qs[0], math.Sqrt(es[0]*qs[0]), es[0]+qs[1])
				// eigenvalues of a PSD matrix; clamp tiny negatives
				vals = append(vals, math.Max(rt1, 0)+sigma, math.Max(rt2, 0)+sigma)
				m = 0
				break
			}
			// Interior split at negligible couplings.
			split := -1
			for i := 0; i < m-1; i++ {
				if es[i] <= eps2*(sigma+math.Min(qs[i], qs[i+1])) {
					split = i
					break
				}
			}
			if split >= 0 {
				es[split] = 0
				stack = append(stack, seg{sg.lo + split + 1, sg.lo + m, sigma})
				m = split + 1
				haveDmin = false
				continue
			}
			if deflated {
				haveDmin = false
			}

			if sweeps++; sweeps > maxSweeps {
				return fmt.Errorf("lapack: DqdsEigen: no convergence after %d sweeps (%d values left)", sweeps, m)
			}

			// Choose the shift: a safe fraction of the smallest pivot seen
			// in the previous sweep; zero on the first sweep of a segment.
			s := 0.0
			if haveDmin && dmin > 0 {
				s = 0.75 * dmin
			}
			// Speculative shifted sweep with retry on breakdown.
			for try := 0; ; try++ {
				copy(qt[:m], qs[:m])
				copy(et[:m-1], es[:m-1])
				d, ok := dqdsSweep(qt, et, m, s)
				if ok {
					copy(qs[:m], qt[:m])
					copy(es[:m-1], et[:m-1])
					sigma += s
					dmin = d
					haveDmin = true
					break
				}
				if try >= 6 {
					s = 0 // the unshifted dqd transform cannot break down
					continue
				}
				s *= 0.25
			}
		}
	}

	sort.Float64s(vals)
	copy(q[:n], vals)
	return nil
}

// dqdsSweep performs one differential qds transform with shift s on the
// m-element qd arrays, reporting the minimal pivot. It fails (ok=false)
// when the shift exceeds the smallest eigenvalue (a pivot turns negative).
func dqdsSweep(q, e []float64, m int, s float64) (dmin float64, ok bool) {
	d := q[0] - s
	dmin = d
	if d < 0 {
		return 0, false
	}
	for i := 0; i < m-1; i++ {
		qi := d + e[i]
		if qi == 0 {
			// exact singularity: treat as breakdown unless unshifted
			if s != 0 {
				return 0, false
			}
			qi = SafeMin
		}
		t := q[i+1] / qi
		e[i] *= t
		d = d*t - s
		if d < 0 {
			return 0, false
		}
		if d < dmin {
			dmin = d
		}
		q[i] = qi
	}
	q[m-1] = d
	return dmin, true
}

// DqdsSingularValues computes the singular values (descending) of the upper
// bidiagonal matrix with diagonal d and superdiagonal e, to high relative
// accuracy, by running dqds on the squared qd arrays (LAPACK DLASQ1's role).
// d and e are not modified.
func DqdsSingularValues(n int, d, e []float64) ([]float64, error) {
	if n == 0 {
		return nil, nil
	}
	// Scale to avoid overflow in the squares.
	mx := 0.0
	for i := 0; i < n; i++ {
		mx = math.Max(mx, math.Abs(d[i]))
	}
	for i := 0; i < n-1; i++ {
		mx = math.Max(mx, math.Abs(e[i]))
	}
	if mx == 0 {
		return make([]float64, n), nil
	}
	scale := 1.0
	if mx > RMax || mx < RMin {
		scale = 1 / mx
	}
	q := make([]float64, n)
	ee := make([]float64, n)
	for i := 0; i < n; i++ {
		v := d[i] * scale
		q[i] = v * v
	}
	for i := 0; i < n-1; i++ {
		v := e[i] * scale
		ee[i] = v * v
	}
	if err := DqdsEigen(n, q, ee); err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = math.Sqrt(q[n-1-i]) / scale
	}
	return out, nil
}
