package lapack

import (
	"fmt"
	"math"

	"tridiag/internal/blas"
	"tridiag/internal/pool"
	"tridiag/internal/simd"
)

// Values-only (ValuesOnly) merge kernels.
//
// The eigenvalue-only lane never materializes eigenvector blocks, yet each
// D&C merge needs the z-vector of the NEXT merge up: z = (last row of the
// left child's Q, first row of the right child's Q). The lane therefore
// carries, per tree node, just the first and last rows of the node's
// notional eigenvector block — a 2-row carrier stored column-major with
// leading dimension 2 (fl[2*j] = first-row entry of column j, fl[2*j+1] =
// last-row entry). A merge consumes the inner rows of its children's
// carriers as z, applies the deflation Givens rotations to a 2×nm scratch
// holding the outer rows (Dlaed2DeflateRot's rot callback), and emits the
// parent carrier via two dot products per secular column against the
// secular eigenvector u_j, reconstructed on the fly from the stored
// (origin, tau) of the Dlaed4 root in O(k) scratch. Live state is O(n) per
// tree level; the O(n²) of the full path never appears.

// SecularPanelVO is the values-only LAED4 task: it solves the secular
// equation for secular indices [j0, j1), fused with the panel's LocalW
// stabilization update (the delta column exists only inside this loop, so
// the full path's separate ComputeLocalW task has nothing to read). For
// each j it records in porg[j]/ptau[j] what UpdateZPanelVO needs to
// reconstruct the secular eigenvector: for K > 2 the root's origin pole and
// offset (delta[i] = (Dlamda[i]-org)-tau, bit-identical to the Dlaed4
// recomputation), and for K <= 2 the two closed-form vector components
// Dlaed5 left in the delta column (org/tau are not meaningful there).
// wloc follows LocalWPanel's contract (initialized to 1, nil-able); the
// root merge passes wloc=porg=ptau=nil since no parent consumes them.
func (df *Deflation) SecularPanelVO(d, porg, ptau, wloc []float64, j0, j1 int) (fallbacks int, err error) {
	k := df.K
	col := pool.Get(k)
	defer pool.Put(col)
	for j := j0; j < j1; j++ {
		lam, org, tau, err := Dlaed4OrgTau(k, j, df.Dlamda, df.W, col[:k], df.Rho)
		if err != nil {
			lam, org, tau, err = Dlaed4BisectOrgTau(k, j, df.Dlamda, df.W, col[:k], df.Rho)
			if err != nil {
				return fallbacks, fmt.Errorf("secular equation failed at index %d: %w", j, err)
			}
			fallbacks++
		}
		d[j] = lam
		if porg != nil {
			if k == 1 {
				porg[j], ptau[j] = 1, 0
			} else if k == 2 {
				porg[j], ptau[j] = col[0], col[1]
			} else {
				porg[j], ptau[j] = org, tau
			}
		}
		if wloc != nil && k > 2 {
			// LocalWPanel's update, using the live delta column.
			dj := df.Dlamda[j]
			simd.MulRatioDiff(wloc[:j], col[:j], df.Dlamda[:j], dj)
			wloc[j] *= col[j]
			simd.MulRatioDiff(wloc[j+1:k], col[j+1:k], df.Dlamda[j+1:k], dj)
		}
	}
	return fallbacks, nil
}

// UpdateZPanelVO emits the parent carrier entries for secular columns
// [j0, j1): the first and last rows of V(:, j) = Q2·u_j, computed as two
// dot products against the children's rotated outer carrier rows gathered
// in grouped order (gtop: row 0 over the C12 top-block columns; gbot: row
// nm-1 over the C23 bottom-block columns — see GatherCarrierRows). u_j is
// rebuilt exactly as VectorsPanel builds S columns — same RatioSumSq, same
// normal-range guard, same GroupToSecular row mapping — from the
// (porg, ptau) stored by SecularPanelVO, in O(k) scratch. flp is the
// parent's carrier segment for this merge (leading dimension 2). what is
// the stabilized ẑ from FinishW (ignored for K <= 2).
func (df *Deflation) UpdateZPanelVO(what, porg, ptau, gtop, gbot, flp []float64, j0, j1 int) {
	k := df.K
	if k == 0 || j1 <= j0 {
		return
	}
	c1 := df.Ctot[colTop]
	c12 := df.C12()
	c23 := df.C23()
	u := pool.Get(k)
	defer pool.Put(u)
	var col, s []float64
	if k > 2 {
		col = pool.Get(k)
		defer pool.Put(col)
		s = pool.Get(k)
		defer pool.Put(s)
	}
	for j := j0; j < j1; j++ {
		switch {
		case k == 1:
			u[0] = 1
		case k == 2:
			// porg/ptau hold Dlaed5's components in secular row order;
			// permute into grouped order as VectorsPanel does.
			var tmp [2]float64
			tmp[0], tmp[1] = porg[j], ptau[j]
			u[0] = tmp[df.GroupToSecular[0]]
			u[1] = tmp[df.GroupToSecular[1]]
		default:
			for i := 0; i < k; i++ {
				col[i] = (df.Dlamda[i] - porg[j]) - ptau[j]
			}
			sumsq := simd.RatioSumSq(s[:k], what[:k], col[:k])
			var inv float64
			if sumsq > 1e-280 && sumsq < 1e280 {
				inv = 1 / math.Sqrt(sumsq)
			} else {
				inv = 1 / blas.Dnrm2(k, s, 1)
			}
			for i := 0; i < k; i++ {
				u[i] = s[df.GroupToSecular[i]] * inv
			}
		}
		var f, l float64
		if c12 > 0 {
			f = blas.Ddot(c12, gtop, 1, u, 1)
		}
		if c23 > 0 {
			l = blas.Ddot(c23, gbot, 1, u[c1:], 1)
		}
		flp[2*j] = f
		flp[2*j+1] = l
	}
}

// GatherCarrierRows extracts, after the deflation rotations, the merge's
// two outer carrier rows from the 2×nm scratch g2 in grouped column order:
// gtop[g] = g2[0, Perm[g]] for the C12 top-block columns and
// gbot[g-c1] = g2[1, Perm[g]] for g in [Ctot[0], K) — the exact operands of
// the full path's two compressed GEMMs restricted to rows 0 and nm-1.
func (df *Deflation) GatherCarrierRows(g2, gtop, gbot []float64) {
	c1 := df.Ctot[colTop]
	for g := 0; g < df.C12(); g++ {
		gtop[g] = g2[2*df.Perm[g]]
	}
	for g := c1; g < df.K; g++ {
		gbot[g-c1] = g2[2*df.Perm[g]+1]
	}
}

// CopyBackValuesVO finalizes the deflated columns K..N-1 of the merge in
// the values-only lane: deflated eigenvalues to d[K+j] and the rotated
// carrier columns (an index permutation through Perm — no column movement)
// to the parent carrier segment flp.
func (df *Deflation) CopyBackValuesVO(d, g2, flp []float64) {
	for j := range df.DeflD {
		src := df.Perm[df.K+j]
		d[df.K+j] = df.DeflD[j]
		flp[2*(df.K+j)] = g2[2*src]
		flp[2*(df.K+j)+1] = g2[2*src+1]
	}
}

// DsteqrCarrier is the values-only leaf: full eigenvalues of the m×m leaf
// plus the 2-row eigenvector carrier (first and last rows of the leaf's Q),
// computed by DsteqrRobust on pooled m×m scratch (Dsteqr initializes it to
// identity itself, so dirty pool memory is fine). The d/e trajectory — and
// hence d — is bit-identical to the full path's leaf. fl is the leaf's
// carrier segment with leading dimension 2.
func DsteqrCarrier(m int, d, e, fl []float64) (fellBack bool, err error) {
	if m == 1 {
		fl[0], fl[1] = 1, 1
		return false, nil
	}
	z := pool.Get(m * m)
	defer pool.Put(z)
	fellBack, err = DsteqrRobust(m, d, e, z, m)
	if err != nil {
		return fellBack, err
	}
	for j := 0; j < m; j++ {
		fl[2*j] = z[j*m]
		fl[2*j+1] = z[j*m+m-1]
	}
	return fellBack, nil
}
