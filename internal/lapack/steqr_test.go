package lapack

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestDsteqrOneTwoOneSpectrum(t *testing.T) {
	// The (1,2,1) tridiagonal matrix has eigenvalues 2-2cos(kπ/(n+1)).
	for _, n := range []int{1, 2, 3, 10, 50} {
		d := make([]float64, n)
		e := make([]float64, max(n-1, 1))
		for i := range d {
			d[i] = 2
		}
		for i := 0; i < n-1; i++ {
			e[i] = 1
		}
		dc, ec := append([]float64(nil), d...), append([]float64(nil), e...)
		z := make([]float64, n*n)
		if err := Dsteqr(CompIdentity, n, dc, ec, z, n); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for k := 1; k <= n; k++ {
			want := 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
			if math.Abs(dc[k-1]-want) > 1e-12 {
				t.Errorf("n=%d eigenvalue %d: got %v want %v", n, k, dc[k-1], want)
			}
		}
		checkEigenDecomp(t, "one-two-one", n, d, e, dc, z, n, 30)
	}
}

func TestDsteqrRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{2, 3, 5, 16, 40, 97} {
		d, e := randTridiag(rng, n)
		dc, ec := append([]float64(nil), d...), append([]float64(nil), e...)
		z := make([]float64, n*n)
		if err := Dsteqr(CompIdentity, n, dc, ec, z, n); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		checkEigenDecomp(t, "random", n, d, e, dc, z, n, 50)
	}
}

func TestDsteqrSplitBlocks(t *testing.T) {
	// A matrix that splits: zero off-diagonal in the middle.
	n := 20
	rng := rand.New(rand.NewSource(5))
	d, e := randTridiag(rng, n)
	e[7] = 0
	e[13] = 0
	dc, ec := append([]float64(nil), d...), append([]float64(nil), e...)
	z := make([]float64, n*n)
	if err := Dsteqr(CompIdentity, n, dc, ec, z, n); err != nil {
		t.Fatal(err)
	}
	checkEigenDecomp(t, "split", n, d, e, dc, z, n, 50)
}

func TestDsteqrDiagonalMatrix(t *testing.T) {
	n := 8
	d := []float64{5, -3, 2, 0, 7, -1, 4, 1}
	e := make([]float64, n-1)
	dc := append([]float64(nil), d...)
	z := make([]float64, n*n)
	if err := Dsteqr(CompIdentity, n, dc, e, z, n); err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), d...)
	sort.Float64s(want)
	for i := range want {
		if dc[i] != want[i] {
			t.Errorf("diagonal case: eigenvalue %d got %v want %v", i, dc[i], want[i])
		}
	}
	checkEigenDecomp(t, "diag", n, d, e, dc, z, n, 10)
}

func TestDsteqrExtremeScales(t *testing.T) {
	// Very large and very small entries must be handled by block scaling.
	for _, scale := range []float64{1e-290, 1e290} {
		n := 12
		rng := rand.New(rand.NewSource(9))
		d, e := randTridiag(rng, n)
		for i := range d {
			d[i] *= scale
		}
		for i := range e {
			e[i] *= scale
		}
		dc, ec := append([]float64(nil), d...), append([]float64(nil), e...)
		z := make([]float64, n*n)
		if err := Dsteqr(CompIdentity, n, dc, ec, z, n); err != nil {
			t.Fatalf("scale=%g: %v", scale, err)
		}
		for _, v := range dc {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("scale=%g produced non-finite eigenvalue %v", scale, v)
			}
		}
		if orth := orthogonality(n, z, n); orth > 100*Eps*float64(n) {
			t.Errorf("scale=%g: orthogonality %v", scale, orth)
		}
	}
}

func TestDsteqrCompVectorsAccumulates(t *testing.T) {
	// With CompVectors and Z = Q0, result must be Q0 * (eigenvectors of T).
	n := 15
	rng := rand.New(rand.NewSource(17))
	d, e := randTridiag(rng, n)

	d1, e1 := append([]float64(nil), d...), append([]float64(nil), e...)
	z1 := make([]float64, n*n)
	if err := Dsteqr(CompIdentity, n, d1, e1, z1, n); err != nil {
		t.Fatal(err)
	}

	// Q0: a fixed permutation matrix (orthogonal, easy to verify product).
	q0 := make([]float64, n*n)
	for j := 0; j < n; j++ {
		q0[((j+3)%n)+j*n] = 1
	}
	z2 := append([]float64(nil), q0...)
	d2, e2 := append([]float64(nil), d...), append([]float64(nil), e...)
	if err := Dsteqr(CompVectors, n, d2, e2, z2, n); err != nil {
		t.Fatal(err)
	}
	// z2 should equal P*z1 where P is the permutation (row shift by 3).
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			want := z1[i+j*n]
			got := z2[((i+3)%n)+j*n]
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("CompVectors mismatch at (%d,%d): got %v want %v", i, j, got, want)
			}
		}
	}
}

func TestDsterfMatchesDsteqr(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{1, 2, 5, 30, 80} {
		d, e := randTridiag(rng, n)
		d1 := append([]float64(nil), d...)
		e1 := append([]float64(nil), e...)
		if err := Dsterf(n, d1, e1); err != nil {
			t.Fatalf("Dsterf n=%d: %v", n, err)
		}
		d2 := append([]float64(nil), d...)
		e2 := append([]float64(nil), e...)
		if err := Dsteqr(CompNone, n, d2, e2, nil, 0); err != nil {
			t.Fatalf("Dsteqr n=%d: %v", n, err)
		}
		nrm := Dlanst('M', n, d, e) + 1
		for i := 0; i < n; i++ {
			if math.Abs(d1[i]-d2[i]) > 1e-12*nrm*float64(n) {
				t.Errorf("n=%d eigenvalue %d: sterf %v steqr %v", n, i, d1[i], d2[i])
			}
		}
	}
}

func TestDsteqrWilkinson(t *testing.T) {
	// Wilkinson W21+ has famously close eigenvalue pairs; a good stress test.
	n := 21
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := 0; i < n; i++ {
		d[i] = math.Abs(float64(i - 10))
	}
	for i := range e {
		e[i] = 1
	}
	dc, ec := append([]float64(nil), d...), append([]float64(nil), e...)
	z := make([]float64, n*n)
	if err := Dsteqr(CompIdentity, n, dc, ec, z, n); err != nil {
		t.Fatal(err)
	}
	checkEigenDecomp(t, "wilkinson", n, d, e, dc, z, n, 50)
	// The two largest eigenvalues agree to ~1e-15 but must both be ≈10.746.
	if math.Abs(dc[n-1]-10.746194182903393) > 1e-9 {
		t.Errorf("largest eigenvalue %v", dc[n-1])
	}
}
