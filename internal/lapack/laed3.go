package lapack

import (
	"fmt"
	"math"

	"tridiag/internal/blas"
	"tridiag/internal/pool"
	"tridiag/internal/simd"
)

// SecularPanel solves the secular equation for secular indices [j0, j1)
// (the paper's LAED4 task). Column j of ws.S receives the delta vector
// (d[i]-λ_j accurately) and d[j] the eigenvalue. For K <= 2 the closed forms
// of Dlaed4 fill S columns with LAPACK's special-case semantics, handled by
// VectorsPanel.
//
// When Dlaed4's rational iteration fails to converge, the root is recomputed
// by the guaranteed-bracketed bisection Dlaed4Bisect instead of failing the
// merge; the number of rescued roots is returned so callers can account for
// degraded (slower but still correct) secular solves.
func (df *Deflation) SecularPanel(ws *MergeWorkspace, d []float64, j0, j1 int) (fallbacks int, err error) {
	k := df.K
	for j := j0; j < j1; j++ {
		lam, err := Dlaed4(k, j, df.Dlamda, df.W, ws.S[j*k:j*k+k], df.Rho)
		if err != nil {
			lam, err = Dlaed4Bisect(k, j, df.Dlamda, df.W, ws.S[j*k:j*k+k], df.Rho)
			if err != nil {
				return fallbacks, fmt.Errorf("secular equation failed at index %d: %w", j, err)
			}
			fallbacks++
		}
		d[j] = lam
	}
	return fallbacks, nil
}

// LocalWPanel accumulates this panel's factors of Gu's stabilization product
// into wloc (the paper's ComputeLocalW task). wloc must be initialized to 1;
// after all panels have been multiplied together, FinishW produces the
// stabilized ẑ. A no-op for K <= 2, where LAPACK skips the recomputation.
func (df *Deflation) LocalWPanel(ws *MergeWorkspace, wloc []float64, j0, j1 int) {
	k := df.K
	if k <= 2 {
		return
	}
	for j := j0; j < j1; j++ {
		col := ws.S[j*k : j*k+k]
		dj := df.Dlamda[j]
		simd.MulRatioDiff(wloc[:j], col[:j], df.Dlamda[:j], dj)
		wloc[j] *= col[j] // the diagonal factor dlamda(j) - λ_j
		simd.MulRatioDiff(wloc[j+1:k], col[j+1:k], df.Dlamda[j+1:k], dj)
	}
}

// FinishW combines the panel-local products (element-wise across wlocs) into
// the stabilized secular weights ẑ, stored into what (length K), restoring
// the signs of the original W (the paper's ReduceW join task). Nil entries in
// wlocs are skipped: they correspond to panels whose index range lies beyond
// K, which the matrix-independent DAG submits but which carry no work.
func (df *Deflation) FinishW(what []float64, wlocs ...[]float64) {
	k := df.K
	if k <= 2 {
		return
	}
	// Accumulate the cross-panel product directly in what (it is fully
	// overwritten below), so no temporary slice is needed: the buffer is
	// per-merge pooled scratch already released by the caller's
	// pending-counter mechanism.
	p := what[:k]
	first := true
	for _, wl := range wlocs {
		if wl == nil {
			continue
		}
		if first {
			copy(p, wl[:k])
			first = false
		} else {
			simd.MulInto(p, wl[:k])
		}
	}
	if first {
		for i := range p {
			p[i] = 1
		}
	}
	simd.NegSqrtSign(p, p, df.W[:k])
}

// VectorsPanel forms the normalized eigenvectors of the rank-one secular
// system for columns [j0, j1), overwriting the delta columns of ws.S in
// place with rows in grouped order (the paper's ComputeVect task). what is
// the stabilized ẑ from FinishW (ignored for K <= 2).
func (df *Deflation) VectorsPanel(ws *MergeWorkspace, what []float64, j0, j1 int) {
	k := df.K
	if k == 1 {
		ws.S[0] = 1
		return
	}
	if k == 2 {
		// Dlaed5 left normalized vector components in the delta columns
		// (secular row order); permute rows into grouped order.
		var tmp [2]float64
		for j := j0; j < j1; j++ {
			col := ws.S[j*k : j*k+k]
			tmp[0], tmp[1] = col[0], col[1]
			col[0] = tmp[df.GroupToSecular[0]]
			col[1] = tmp[df.GroupToSecular[1]]
		}
		return
	}
	s := pool.Get(k)
	defer pool.Put(s)
	for j := j0; j < j1; j++ {
		col := ws.S[j*k : j*k+k]
		sumsq := simd.RatioSumSq(s[:k], what[:k], col)
		// The fused sum of squares is safe only while it stays well inside
		// the normal range; otherwise recompute with the scaled 2-norm.
		var inv float64
		if sumsq > 1e-280 && sumsq < 1e280 {
			inv = 1 / math.Sqrt(sumsq)
		} else {
			inv = 1 / blas.Dnrm2(k, s, 1)
		}
		for i := 0; i < k; i++ {
			col[i] = s[df.GroupToSecular[i]] * inv
		}
	}
}

// PackV repacks the compressed GEMM operands Q2Top/Q2Bot into blocked-GEMM
// form (the PackV task): packed once per merge, every UpdateVect panel of
// the merge then reuses the packed operands instead of re-streaming Q2 from
// memory per panel. ncol is the typical panel width, used to judge whether
// the blocked path would be taken for that shape at all; operands whose
// shape the blocked kernel would decline stay unpacked (UpdatePanel falls
// back to the plain GEMM for them). Returns the packed-buffer bytes for
// traffic accounting (0 when nothing was packed).
func (df *Deflation) PackV(ws *MergeWorkspace, ncol int) (bytes int) {
	if df.K == 0 || ncol <= 0 {
		return 0
	}
	n1 := df.N1
	n2 := df.N - n1
	c12 := df.C12()
	c23 := df.C23()
	if c12 > 0 && blas.PackWorthwhile(n1, ncol, c12) {
		ws.PackTop = blas.PackA(false, n1, c12, ws.Q2Top, n1)
		bytes += ws.PackTop.Bytes()
	}
	if c23 > 0 && blas.PackWorthwhile(n2, ncol, c23) {
		ws.PackBot = blas.PackA(false, n2, c23, ws.Q2Bot, n2)
		bytes += ws.PackBot.Bytes()
	}
	return bytes
}

// UpdatePanel computes the final eigenvectors V(:, j0:j1) = Q2 * S(:, j0:j1)
// as two compressed GEMMs (the paper's UpdateVect task), writing into q.
// gemm allows the caller to substitute a multithreaded kernel (the fork/join
// baseline) — pass nil for the serial kernel. Operands pre-packed by PackV
// go through the blocked packed kernel instead; the returned counts say how
// many of the panel's GEMMs hit the packed fast path versus fell back.
func (df *Deflation) UpdatePanel(q []float64, ldq int, ws *MergeWorkspace, j0, j1 int, gemm GemmFunc) (packed, unpacked int) {
	if gemm == nil {
		gemm = blas.Dgemm
	}
	n1 := df.N1
	n2 := df.N - n1
	c1 := df.Ctot[colTop]
	c12 := df.C12()
	c23 := df.C23()
	k := df.K
	ncol := j1 - j0
	if ncol <= 0 || k == 0 {
		return 0, 0
	}
	// Top block: rows 0..n1-1 from type-1/2 columns (S rows 0..c12-1).
	if c12 != 0 {
		if ws.PackTop != nil {
			blas.PackedGemm(ws.PackTop, ncol, 1, ws.S[j0*k:], k, 0, q[j0*ldq:], ldq)
			packed++
		} else {
			gemm(false, false, n1, ncol, c12, 1, ws.Q2Top, n1, ws.S[j0*k:], k, 0, q[j0*ldq:], ldq)
			unpacked++
		}
	} else {
		for j := j0; j < j1; j++ {
			col := q[j*ldq : j*ldq+n1]
			for i := range col {
				col[i] = 0
			}
		}
	}
	// Bottom block: rows n1..n-1 from type-2/3 columns (S rows c1..c1+c23-1).
	if c23 != 0 {
		if ws.PackBot != nil {
			blas.PackedGemm(ws.PackBot, ncol, 1, ws.S[j0*k+c1:], k, 0, q[j0*ldq+n1:], ldq)
			packed++
		} else {
			gemm(false, false, n2, ncol, c23, 1, ws.Q2Bot, n2, ws.S[j0*k+c1:], k, 0, q[j0*ldq+n1:], ldq)
			unpacked++
		}
	} else {
		for j := j0; j < j1; j++ {
			col := q[j*ldq+n1 : j*ldq+n1+n2]
			for i := range col {
				col[i] = 0
			}
		}
	}
	return packed, unpacked
}

// GemmFunc is the signature of blas.Dgemm, allowing a parallel substitute.
type GemmFunc func(transA, transB bool, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int)
