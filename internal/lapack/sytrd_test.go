package lapack

import (
	"math"
	"math/rand"
	"testing"
)

func randSym(rng *rand.Rand, n, lda int) []float64 {
	a := make([]float64, lda*n)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			v := rng.NormFloat64()
			a[i+j*lda] = v
			a[j+i*lda] = v
		}
	}
	return a
}

func TestDlarfg(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for _, n := range []int{1, 2, 5, 20} {
		alpha := rng.NormFloat64()
		x := make([]float64, n-1)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		orig := append([]float64{alpha}, x...)
		beta, tau := Dlarfg(n, alpha, x, 1)
		if n == 1 {
			if beta != alpha || tau != 0 {
				t.Errorf("n=1: beta=%v tau=%v", beta, tau)
			}
			continue
		}
		// H*(alpha, xorig) = (beta, 0): v = (1, x), H = I - tau v vᵀ
		v := append([]float64{1}, x...)
		var vy float64
		for i := range v {
			vy += v[i] * orig[i]
		}
		for i := range v {
			got := orig[i] - tau*v[i]*vy
			want := 0.0
			if i == 0 {
				want = beta
			}
			if math.Abs(got-want) > 1e-13*(math.Abs(beta)+1) {
				t.Errorf("n=%d: H*y[%d]=%v want %v", n, i, got, want)
			}
		}
		// H orthogonal: tau(2 - tau*vᵀv) == 0 condition: tau*vᵀv = 2 for symmetric H...
		var vv float64
		for _, vi := range v {
			vv += vi * vi
		}
		if tau != 0 && math.Abs(tau*vv-2) > 1e-12 {
			t.Errorf("n=%d: tau*|v|²=%v, want 2", n, tau*vv)
		}
	}
	// zero tail: tau must be zero
	beta, tau := Dlarfg(4, 5, []float64{0, 0, 0}, 1)
	if beta != 5 || tau != 0 {
		t.Errorf("zero tail: beta=%v tau=%v", beta, tau)
	}
	// tiny values: scaling path
	x := []float64{1e-310, 2e-310}
	beta, tau = Dlarfg(3, 3e-310, x, 1)
	if math.IsNaN(beta) || math.IsNaN(tau) || beta == 0 {
		t.Errorf("tiny: beta=%v tau=%v", beta, tau)
	}
}

// reconstruct checks Qᵀ A Q = T by computing A*Q - Q*T columnwise.
func checkTridiagReduction(t *testing.T, name string, n int, aorig []float64, d, e []float64, q []float64) {
	t.Helper()
	// residual ||A*Q - Q*T|| / (||A||*n)
	var anorm float64
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			anorm = math.Max(anorm, math.Abs(aorig[i+j*n]))
		}
	}
	if anorm == 0 {
		anorm = 1
	}
	worst := 0.0
	aq := make([]float64, n)
	for j := 0; j < n; j++ {
		// aq = A * q(:,j)
		for i := 0; i < n; i++ {
			var s float64
			for l := 0; l < n; l++ {
				s += aorig[i+l*n] * q[l+j*n]
			}
			aq[i] = s
		}
		// qt = Q * T e_j = d_j q(:,j) + e_{j-1} q(:,j-1) + e_j q(:,j+1)
		for i := 0; i < n; i++ {
			s := d[j] * q[i+j*n]
			if j > 0 {
				s += e[j-1] * q[i+(j-1)*n]
			}
			if j < n-1 {
				s += e[j] * q[i+(j+1)*n]
			}
			worst = math.Max(worst, math.Abs(aq[i]-s))
		}
	}
	if worst/anorm > 1e-13*float64(n) {
		t.Errorf("%s: reduction residual %.3e", name, worst/anorm)
	}
	if orth := orthogonality(n, q, n); orth > 1e-13*float64(n) {
		t.Errorf("%s: Q orthogonality %.3e", name, orth)
	}
}

func TestDsytd2Reduction(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for _, n := range []int{1, 2, 3, 8, 30} {
		a := randSym(rng, n, n)
		aorig := append([]float64(nil), a...)
		d := make([]float64, n)
		e := make([]float64, max(n-1, 1))
		tau := make([]float64, max(n-1, 1))
		Dsytd2(n, a, n, d, e, tau)
		q := make([]float64, n*n)
		Dorgtr(n, a, n, tau, q, n)
		checkTridiagReduction(t, "dsytd2", n, aorig, d, e, q)
	}
}

func TestDsytrdBlockedMatchesUnblocked(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, n := range []int{40, 70, 129} {
		a1 := randSym(rng, n, n)
		a2 := append([]float64(nil), a1...)
		aorig := append([]float64(nil), a1...)

		d1 := make([]float64, n)
		e1 := make([]float64, n-1)
		tau1 := make([]float64, n-1)
		Dsytd2(n, a1, n, d1, e1, tau1)

		d2 := make([]float64, n)
		e2 := make([]float64, n-1)
		tau2 := make([]float64, n-1)
		if err := Dsytrd(n, a2, n, d2, e2, tau2, 8); err != nil {
			t.Fatal(err)
		}
		// The tridiagonal matrices should agree to roundoff.
		for i := 0; i < n; i++ {
			if math.Abs(d1[i]-d2[i]) > 1e-10*(math.Abs(d1[i])+1) {
				t.Errorf("n=%d d[%d]: %v vs %v", n, i, d1[i], d2[i])
			}
		}
		for i := 0; i < n-1; i++ {
			if math.Abs(e1[i]-e2[i]) > 1e-10*(math.Abs(e1[i])+1) {
				t.Errorf("n=%d e[%d]: %v vs %v", n, i, e1[i], e2[i])
			}
		}
		q := make([]float64, n*n)
		Dorgtr(n, a2, n, tau2, q, n)
		checkTridiagReduction(t, "dsytrd-blocked", n, aorig, d2, e2, q)
	}
}

func TestDormtrTransposeInverts(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	n, m := 25, 7
	a := randSym(rng, n, n)
	d := make([]float64, n)
	e := make([]float64, n-1)
	tau := make([]float64, n-1)
	Dsytd2(n, a, n, d, e, tau)
	c := make([]float64, n*m)
	for i := range c {
		c[i] = rng.NormFloat64()
	}
	orig := append([]float64(nil), c...)
	Dormtr(false, n, m, a, n, tau, c, n)
	Dormtr(true, n, m, a, n, tau, c, n)
	for i := range c {
		if math.Abs(c[i]-orig[i]) > 1e-12 {
			t.Fatalf("QᵀQ C != C at %d: %v vs %v", i, c[i], orig[i])
		}
	}
}

// TestFullSymmetricPipeline: dense symmetric A -> tridiagonal -> D&C ->
// back-transform, checking A V = V Λ.
func TestFullSymmetricPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for _, n := range []int{10, 45, 90} {
		a := randSym(rng, n, n)
		aorig := append([]float64(nil), a...)
		d := make([]float64, n)
		e := make([]float64, max(n-1, 1))
		tau := make([]float64, max(n-1, 1))
		if err := Dsytrd(n, a, n, d, e, tau, 8); err != nil {
			t.Fatal(err)
		}
		q := make([]float64, n*n)
		if err := Dstedc(n, d, e, q, n, &DCConfig{SmallSize: 12}); err != nil {
			t.Fatal(err)
		}
		Dormtr(false, n, n, a, n, tau, q, n)
		// check A*v_j = d_j*v_j
		var anorm float64
		for _, v := range aorig {
			anorm = math.Max(anorm, math.Abs(v))
		}
		worst := 0.0
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				var s float64
				for l := 0; l < n; l++ {
					s += aorig[i+l*n] * q[l+j*n]
				}
				worst = math.Max(worst, math.Abs(s-d[j]*q[i+j*n]))
			}
		}
		if worst/anorm > 1e-13*float64(n) {
			t.Errorf("n=%d: pipeline residual %.3e", n, worst/anorm)
		}
		if orth := orthogonality(n, q, n); orth > 1e-13*float64(n) {
			t.Errorf("n=%d: pipeline orthogonality %.3e", n, orth)
		}
	}
}

func TestDsytrdParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	n := 150
	a1 := randSym(rng, n, n)
	a2 := append([]float64(nil), a1...)
	d1 := make([]float64, n)
	e1 := make([]float64, n-1)
	tau1 := make([]float64, n-1)
	if err := Dsytrd(n, a1, n, d1, e1, tau1, 16); err != nil {
		t.Fatal(err)
	}
	d2 := make([]float64, n)
	e2 := make([]float64, n-1)
	tau2 := make([]float64, n-1)
	if err := DsytrdParallel(n, a2, n, d2, e2, tau2, 16, 4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if math.Abs(d1[i]-d2[i]) > 1e-12*(math.Abs(d1[i])+1) {
			t.Fatalf("d[%d]: %v vs %v", i, d1[i], d2[i])
		}
	}
	for i := 0; i < n-1; i++ {
		if math.Abs(e1[i]-e2[i]) > 1e-12*(math.Abs(e1[i])+1) {
			t.Fatalf("e[%d]: %v vs %v", i, e1[i], e2[i])
		}
	}
}
