package lapack

import "tridiag/internal/blas"

// Dlarft forms the upper-triangular factor T of the block reflector
// H = I - V·T·Vᵀ = H(0)·H(1)···H(k-1), with the reflectors' vectors in the
// columns of the m×k matrix v (dense storage: the implicit unit/zero
// structure must already be materialized) and scales in tau
// (LAPACK DLARFT, 'Forward', 'Columnwise').
func Dlarft(m, k int, v []float64, ldv int, tau []float64, t []float64, ldt int) {
	for i := 0; i < k; i++ {
		if tau[i] == 0 {
			for j := 0; j < i; j++ {
				t[j+i*ldt] = 0
			}
		} else {
			// t(0:i, i) = -tau[i] * V(:, 0:i)ᵀ * V(:, i)
			blas.Dgemv(true, m, i, -tau[i], v, ldv, v[i*ldv:], 1, 0, t[i*ldt:], 1)
			// t(0:i, i) = T(0:i, 0:i) * t(0:i, i): upper-triangular matvec,
			// in place. Entry j reads only positions l >= j, so an
			// ascending sweep overwrites safely.
			for j := 0; j < i; j++ {
				s := 0.0
				for l := j; l < i; l++ {
					s += t[j+l*ldt] * t[l+i*ldt]
				}
				t[j+i*ldt] = s
			}
		}
		t[i+i*ldt] = tau[i]
	}
}

// Dlarfb applies the block reflector H = I - V·T·Vᵀ (or its transpose) to
// the m×n matrix C from the left (LAPACK DLARFB 'Left', 'Forward',
// 'Columnwise' with dense V). work must have at least n*k elements.
func Dlarfb(trans bool, m, n, k int, v []float64, ldv int, t []float64, ldt int, c []float64, ldc int, work []float64) {
	if m == 0 || n == 0 || k == 0 {
		return
	}
	// W = Cᵀ V  (n×k)
	blas.Dgemm(true, false, n, k, m, 1, c, ldc, v, ldv, 0, work, n)
	// W = W · Tᵀ (no-trans H) or W · T (transposed H)
	applyT(trans, n, k, t, ldt, work, n)
	// C = C - V·Wᵀ
	blas.Dgemm(false, true, m, n, k, -1, v, ldv, work, n, 1, c, ldc)
}

// applyT computes W = W·Tᵀ (trans=false: applying H = I-V·T·Vᵀ needs Tᵀ on
// the right of W) or W = W·T, with T upper triangular k×k and W n×k.
func applyT(trans bool, n, k int, t []float64, ldt int, w []float64, ldw int) {
	if !trans {
		// W·Tᵀ: process columns left to right; column j of the result
		// sums W(:, j:k-1) weighted by row j of T.
		for j := 0; j < k; j++ {
			// result column j = sum_{l>=j} T(j,l) * W(:,l); compute in place
			// by scaling column j and accumulating the later columns.
			wj := w[j*ldw : j*ldw+n]
			blas.Dscal(n, t[j+j*ldt], wj, 1)
			for l := j + 1; l < k; l++ {
				blas.Daxpy(n, t[j+l*ldt], w[l*ldw:], 1, wj, 1)
			}
		}
		return
	}
	// W·T: process columns right to left.
	for j := k - 1; j >= 0; j-- {
		wj := w[j*ldw : j*ldw+n]
		blas.Dscal(n, t[j+j*ldt], wj, 1)
		for l := 0; l < j; l++ {
			blas.Daxpy(n, t[l+j*ldt], w[l*ldw:], 1, wj, 1)
		}
	}
}

// DormtrBlocked is the blocked (level-3) variant of Dormtr: it applies the
// orthogonal Q from Dsytrd (lower storage) to the n×m matrix C from the
// left in panels of nb reflectors via Dlarft/Dlarfb.
func DormtrBlocked(trans bool, n, m int, a []float64, lda int, tau []float64, c []float64, ldc int, nb int) {
	if n <= 1 || m == 0 {
		return
	}
	k := n - 1 // number of reflectors
	if nb < 2 || k < 2*nb {
		dormtrUnblocked(trans, n, m, a, lda, tau, c, ldc)
		return
	}
	vbuf := make([]float64, (n-1)*nb)
	tbuf := make([]float64, nb*nb)
	work := make([]float64, m*nb)

	applyBlock := func(i, ib int) {
		// Reflector i+j acts on rows (i+j+1)..n-1 of C with
		// v = [1, a(i+j+2 : n, i+j)]. Materialize the dense V panel over
		// rows i+1..n-1 (length mrows), zeros above each unit.
		mrows := n - 1 - i
		for j := 0; j < ib; j++ {
			col := vbuf[j*mrows : j*mrows+mrows]
			for r := 0; r < j; r++ {
				col[r] = 0
			}
			col[j] = 1
			g := i + j // global reflector index
			for r := j + 1; r < mrows; r++ {
				col[r] = a[(i+1+r)+g*lda]
			}
		}
		Dlarft(mrows, ib, vbuf, mrows, tau[i:i+ib], tbuf, nb)
		Dlarfb(trans, mrows, m, ib, vbuf, mrows, tbuf, nb, c[i+1:], ldc, work)
	}

	if !trans {
		// Q·C: blocks of H(0)...H(k-1) applied in reverse block order.
		start := ((k - 1) / nb) * nb
		for i := start; i >= 0; i -= nb {
			applyBlock(i, min(nb, k-i))
		}
	} else {
		for i := 0; i < k; i += nb {
			applyBlock(i, min(nb, k-i))
		}
	}
}
