package lapack

import (
	"fmt"
	"math"

	"tridiag/internal/blas"
)

// Dpotf2 computes the unblocked Cholesky factorization A = L·Lᵀ of a
// symmetric positive definite matrix stored in the lower triangle of a
// (LAPACK DPOTF2, lower). Returns an error naming the first non-positive
// pivot if A is not positive definite.
func Dpotf2(n int, a []float64, lda int) error {
	for j := 0; j < n; j++ {
		ajj := a[j+j*lda] - blas.Ddot(j, a[j:], lda, a[j:], lda)
		if ajj <= 0 || math.IsNaN(ajj) {
			return fmt.Errorf("lapack: Dpotf2: leading minor of order %d is not positive definite", j+1)
		}
		ajj = math.Sqrt(ajj)
		a[j+j*lda] = ajj
		if j < n-1 {
			// a(j+1:n, j) = (a(j+1:n, j) - A(j+1:n, 0:j)·a(j, 0:j)ᵀ) / ajj
			blas.Dgemv(false, n-j-1, j, -1, a[j+1:], lda, a[j:], lda, 1, a[j+1+j*lda:], 1)
			blas.Dscal(n-j-1, 1/ajj, a[j+1+j*lda:], 1)
		}
	}
	return nil
}

// Dpotrf computes the blocked Cholesky factorization A = L·Lᵀ (lower):
// panel Dpotf2, triangular solve of the sub-panel, rank-k trailing update.
func Dpotrf(n int, a []float64, lda int, nb int) error {
	if n < 0 {
		return fmt.Errorf("lapack: Dpotrf: negative n")
	}
	if lda < max(n, 1) {
		return fmt.Errorf("lapack: Dpotrf: lda=%d < n=%d", lda, n)
	}
	if nb <= 1 || n <= nb {
		return Dpotf2(n, a, lda)
	}
	for j := 0; j < n; j += nb {
		jb := min(nb, n-j)
		// diagonal block: A(j:j+jb, j:j+jb) -= A(j:j+jb, 0:j)·A(j:j+jb, 0:j)ᵀ
		blas.Dsyrk(jb, j, -1, a[j:], lda, 1, a[j+j*lda:], lda)
		if err := Dpotf2(jb, a[j+j*lda:], lda); err != nil {
			return fmt.Errorf("lapack: Dpotrf: block at %d: %w", j, err)
		}
		if j+jb < n {
			m := n - j - jb
			// A21 -= A(j+jb:, 0:j)·A(j:j+jb, 0:j)ᵀ
			blas.Dgemm(false, true, m, jb, j, -1, a[j+jb:], lda, a[j:], lda, 1, a[j+jb+j*lda:], lda)
			// A21 = A21·L11⁻ᵀ
			blas.DtrsmRightLowerTrans(m, jb, a[j+j*lda:], lda, a[j+jb+j*lda:], lda)
		}
	}
	return nil
}

// Dsygst reduces the generalized symmetric-definite eigenproblem
// A·x = λ·B·x (itype 1) to standard form using the Cholesky factor
// B = L·Lᵀ: C = L⁻¹·A·L⁻ᵀ, overwriting a (full symmetric storage on entry
// AND exit). l holds the Cholesky factor in its lower triangle.
func Dsygst(n int, a []float64, lda int, l []float64, ldl int) {
	// X = L⁻¹·A  (solve L·X = A column-wise)
	blas.DtrsmLeftLowerNoTrans(n, n, l, ldl, a, lda)
	// C = X·L⁻ᵀ: transpose, solve, transpose back — done in place by
	// solving along rows: C(i,:) satisfies L·C(i,:)ᵀ = X(i,:)ᵀ.
	row := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			row[j] = a[i+j*lda]
		}
		blas.DtrsmLeftLowerNoTrans(n, 1, l, ldl, row, n)
		for j := 0; j < n; j++ {
			a[i+j*lda] = row[j]
		}
	}
	// enforce exact symmetry (roundoff from the two solves)
	for j := 0; j < n; j++ {
		for i := j + 1; i < n; i++ {
			s := 0.5 * (a[i+j*lda] + a[j+i*lda])
			a[i+j*lda] = s
			a[j+i*lda] = s
		}
	}
}
