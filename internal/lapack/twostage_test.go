package lapack

import (
	"math"
	"math/rand"
	"testing"
)

func TestDsyrdbBandForm(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	for _, tc := range []struct{ n, b int }{{20, 4}, {50, 8}, {65, 16}, {30, 1}} {
		a := randSym(rng, tc.n, tc.n)
		aorig := append([]float64(nil), a...)
		q := make([]float64, tc.n*tc.n)
		for i := 0; i < tc.n; i++ {
			q[i+i*tc.n] = 1
		}
		if err := Dsyrdb(tc.n, a, tc.n, tc.b, q, tc.n); err != nil {
			t.Fatalf("n=%d b=%d: %v", tc.n, tc.b, err)
		}
		// banded
		for j := 0; j < tc.n; j++ {
			for i := j + tc.b + 1; i < tc.n; i++ {
				if a[i+j*tc.n] != 0 {
					t.Fatalf("n=%d b=%d: entry (%d,%d)=%v outside band", tc.n, tc.b, i, j, a[i+j*tc.n])
				}
			}
		}
		// symmetric
		for j := 0; j < tc.n; j++ {
			for i := 0; i < tc.n; i++ {
				if math.Abs(a[i+j*tc.n]-a[j+i*tc.n]) > 1e-12 {
					t.Fatalf("asymmetry at (%d,%d)", i, j)
				}
			}
		}
		// A_in = Q · A_band · Qᵀ
		checkSimilarity(t, tc.n, aorig, a, q)
	}
}

// checkSimilarity verifies Aorig = Q·B·Qᵀ with everything dense.
func checkSimilarity(t *testing.T, n int, aorig, b, q []float64) {
	t.Helper()
	qb := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			var s float64
			for l := 0; l < n; l++ {
				s += q[i+l*n] * b[l+j*n]
			}
			qb[i+j*n] = s
		}
	}
	var anorm float64
	for _, v := range aorig {
		anorm = math.Max(anorm, math.Abs(v))
	}
	if anorm == 0 {
		anorm = 1
	}
	worst := 0.0
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			var s float64
			for l := 0; l < n; l++ {
				s += qb[i+l*n] * q[j+l*n]
			}
			worst = math.Max(worst, math.Abs(s-aorig[i+j*n]))
		}
	}
	if worst/(anorm*float64(n)) > 1e-13 {
		t.Errorf("similarity residual %.3e", worst/(anorm*float64(n)))
	}
	if o := orthogonality(n, q, n); o > 1e-13*float64(n) {
		t.Errorf("Q orthogonality %.3e", o)
	}
}

func TestDsytrd2StageMatchesOneStage(t *testing.T) {
	rng := rand.New(rand.NewSource(163))
	for _, tc := range []struct{ n, b int }{{30, 4}, {60, 8}, {100, 16}, {45, 45}, {25, 2}} {
		a := randSym(rng, tc.n, tc.n)
		aorig := append([]float64(nil), a...)
		d := make([]float64, tc.n)
		e := make([]float64, tc.n-1)
		q := make([]float64, tc.n*tc.n)
		if err := Dsytrd2Stage(tc.n, a, tc.n, tc.b, d, e, q, tc.n); err != nil {
			t.Fatalf("n=%d b=%d: %v", tc.n, tc.b, err)
		}
		// spectrum must match the one-stage route
		d1 := append([]float64(nil), d...)
		e1 := append([]float64(nil), e...)
		if err := Dsteqr(CompNone, tc.n, d1, e1, nil, 0); err != nil {
			t.Fatal(err)
		}
		a2 := append([]float64(nil), aorig...)
		d2 := make([]float64, tc.n)
		e2 := make([]float64, tc.n-1)
		tau := make([]float64, tc.n-1)
		if err := Dsytrd(tc.n, a2, tc.n, d2, e2, tau, 8); err != nil {
			t.Fatal(err)
		}
		if err := Dsteqr(CompNone, tc.n, d2, e2, nil, 0); err != nil {
			t.Fatal(err)
		}
		var scale float64
		for _, v := range d1 {
			scale = math.Max(scale, math.Abs(v))
		}
		for i := 0; i < tc.n; i++ {
			if math.Abs(d1[i]-d2[i]) > 1e-12*(scale+1)*float64(tc.n) {
				t.Errorf("n=%d b=%d eig %d: two-stage %v one-stage %v", tc.n, tc.b, i, d1[i], d2[i])
			}
		}
		// full transformation: A = Q T Qᵀ
		tt := make([]float64, tc.n*tc.n)
		for i := 0; i < tc.n; i++ {
			tt[i+i*tc.n] = d[i]
			if i < tc.n-1 {
				tt[i+1+i*tc.n] = e[i]
				tt[i+(i+1)*tc.n] = e[i]
			}
		}
		checkSimilarity(t, tc.n, aorig, tt, q)
	}
}

func TestTwoStageFullEigenPipeline(t *testing.T) {
	// dense → band → tridiagonal → D&C → back-transform via accumulated Q.
	rng := rand.New(rand.NewSource(167))
	n, b := 80, 12
	a := randSym(rng, n, n)
	aorig := append([]float64(nil), a...)
	d := make([]float64, n)
	e := make([]float64, n-1)
	q := make([]float64, n*n)
	if err := Dsytrd2Stage(n, a, n, b, d, e, q, n); err != nil {
		t.Fatal(err)
	}
	z := make([]float64, n*n)
	if err := Dstedc(n, d, e, z, n, &DCConfig{SmallSize: 16}); err != nil {
		t.Fatal(err)
	}
	// V = Q · Z
	v := make([]float64, n*n)
	blasGemm(n, q, z, v)
	worst := 0.0
	var anorm float64
	for _, x := range aorig {
		anorm = math.Max(anorm, math.Abs(x))
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			var s float64
			for l := 0; l < n; l++ {
				s += aorig[i+l*n] * v[l+j*n]
			}
			worst = math.Max(worst, math.Abs(s-d[j]*v[i+j*n]))
		}
	}
	if worst/(anorm*float64(n)) > 1e-13 {
		t.Errorf("two-stage pipeline residual %.3e", worst/(anorm*float64(n)))
	}
	if o := orthogonality(n, v, n); o > 1e-13*float64(n) {
		t.Errorf("two-stage pipeline orthogonality %.3e", o)
	}
}

func blasGemm(n int, a, b, c []float64) {
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			var s float64
			for l := 0; l < n; l++ {
				s += a[i+l*n] * b[l+j*n]
			}
			c[i+j*n] = s
		}
	}
}

func TestDsbtrdDirectBand(t *testing.T) {
	// Construct a band matrix directly and reduce it.
	rng := rand.New(rand.NewSource(169))
	n, b := 40, 5
	a := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := j; i <= min(j+b, n-1); i++ {
			v := rng.NormFloat64()
			a[i+j*n] = v
			a[j+i*n] = v
		}
	}
	aorig := append([]float64(nil), a...)
	d := make([]float64, n)
	e := make([]float64, n-1)
	q := make([]float64, n*n)
	for i := 0; i < n; i++ {
		q[i+i*n] = 1
	}
	if err := Dsbtrd(n, a, n, b, d, e, q, n); err != nil {
		t.Fatal(err)
	}
	tt := make([]float64, n*n)
	for i := 0; i < n; i++ {
		tt[i+i*n] = d[i]
		if i < n-1 {
			tt[i+1+i*n] = e[i]
			tt[i+(i+1)*n] = e[i]
		}
	}
	checkSimilarity(t, n, aorig, tt, q)
}

func TestTwoStageErrors(t *testing.T) {
	if err := Dsyrdb(-1, nil, 1, 2, nil, 0); err == nil {
		t.Error("negative n")
	}
	if err := Dsyrdb(5, make([]float64, 25), 5, 0, nil, 0); err == nil {
		t.Error("zero bandwidth")
	}
	if err := Dsbtrd(5, make([]float64, 25), 3, 2, nil, nil, nil, 0); err == nil {
		t.Error("lda < n")
	}
	// tiny matrix: no-op band reduction
	a := []float64{3, 1, 1, 2}
	if err := Dsyrdb(2, a, 2, 4, nil, 0); err != nil {
		t.Error(err)
	}
}
