package lapack

import (
	"fmt"
	"math"

	"tridiag/internal/blas"
	"tridiag/internal/pool"
)

// Dlaed1 performs one merge step of the divide & conquer algorithm
// (LAPACK DLAED1, tridiagonal eigenvector case): the two solved subproblems
// d[0:cutpnt]/d[cutpnt:n] with block-diagonal eigenvectors in q are combined
// through the rank-one modification with weight rho.
//
// On exit d[0:k] holds the secular eigenvalues, d[k:n] the deflated ones, q
// the corresponding eigenvectors, and indxq the permutation sorting d
// ascending. gemm may be nil (serial) or a parallel substitute.
func Dlaed1(n, cutpnt int, d []float64, q []float64, ldq int, indxq []int, rho float64, gemm GemmFunc) error {
	if cutpnt < 1 || cutpnt >= n {
		return fmt.Errorf("lapack: Dlaed1: invalid cutpnt %d of %d", cutpnt, n)
	}
	// Form the z vector: last row of Q1, first row of Q2.
	z := pool.Get(n)
	defer pool.Put(z)
	blas.Dcopy(cutpnt, q[cutpnt-1:], ldq, z, 1)
	blas.Dcopy(n-cutpnt, q[cutpnt+cutpnt*ldq:], ldq, z[cutpnt:], 1)

	df, err := Dlaed2Deflate(n, cutpnt, d, q, ldq, indxq, rho, z)
	if err != nil {
		return err
	}
	ws := NewMergeWorkspace(df)
	defer ws.Release()
	df.PermutePanel(q, ldq, ws, 0, n)

	if df.K == 0 {
		df.CopyBackPanel(q, ldq, d, ws, 0, n)
		for i := 0; i < n; i++ {
			indxq[i] = i
		}
		return nil
	}

	if _, err := df.SecularPanel(ws, d, 0, df.K); err != nil {
		return err
	}
	for i := range ws.WLoc {
		ws.WLoc[i] = 1
	}
	df.LocalWPanel(ws, ws.WLoc, 0, df.K)
	what := pool.Get(df.K)
	defer pool.Put(what)
	df.FinishW(what, ws.WLoc)
	df.VectorsPanel(ws, what, 0, df.K)
	df.CopyBackPanel(q, ldq, d, ws, 0, df.N-df.K)
	df.UpdatePanel(q, ldq, ws, 0, df.K, gemm)

	Dlamrg(df.K, n-df.K, d, 1, -1, indxq)
	return nil
}

// DCConfig tunes the divide & conquer drivers.
type DCConfig struct {
	// SmallSize is the leaf cutoff (the paper's "minimal partition size"):
	// subproblems of at most this size are solved directly by Dsteqr.
	SmallSize int
	// Gemm substitutes the matrix-product kernel of the merge update; nil
	// means the serial blas.Dgemm. Vendor-library behaviour (fork/join
	// multithreaded BLAS under a sequential algorithm) is modelled by
	// passing a parallel GEMM here.
	Gemm GemmFunc
}

func (c *DCConfig) smallSize() int {
	if c == nil || c.SmallSize < 2 {
		return 25
	}
	return c.SmallSize
}

func (c *DCConfig) gemm() GemmFunc {
	if c == nil {
		return nil
	}
	return c.Gemm
}

// Dstedc computes all eigenvalues and eigenvectors of a symmetric
// tridiagonal matrix using the divide & conquer method (LAPACK
// DSTEDC/DLAED0, sequential task order). On exit d holds the ascending
// eigenvalues, q (n×n) the eigenvectors; e is destroyed. The entry
// contents of q are ignored: callers may reuse a dirty workspace.
func Dstedc(n int, d, e []float64, q []float64, ldq int, cfg *DCConfig) error {
	if n < 0 {
		return fmt.Errorf("lapack: Dstedc: negative n")
	}
	if n == 0 {
		return nil
	}
	if ldq < n {
		return fmt.Errorf("lapack: Dstedc: ldq=%d < n=%d", ldq, n)
	}
	smlsiz := cfg.smallSize()
	if n <= smlsiz {
		return Dsteqr(CompIdentity, n, d, e, q, ldq)
	}

	// Scale the matrix to unit max-norm.
	orgnrm := Dlanst('M', n, d, e)
	if orgnrm == 0 {
		// Zero matrix: eigenvalues are zero, eigenvectors the identity.
		for j := 0; j < n; j++ {
			col := q[j*ldq : j*ldq+n]
			for i := range col {
				col[i] = 0
			}
			col[j] = 1
		}
		return nil
	}
	Dlascl(n, 1, orgnrm, 1, d, n)
	Dlascl(n-1, 1, orgnrm, 1, e, n-1)
	defer Dlascl(n, 1, 1, orgnrm, d, n)

	sizes := PartitionSizes(n, smlsiz)
	// Subtract the rank-one coupling at each internal boundary.
	starts := make([]int, len(sizes)+1)
	for i, s := range sizes {
		starts[i+1] = starts[i] + s
	}
	for _, b := range starts[1 : len(starts)-1] {
		ae := math.Abs(e[b-1])
		d[b-1] -= ae
		d[b] -= ae
	}

	// Solve the leaf subproblems; a QR non-convergence on a leaf retries
	// via Dsterf + inverse iteration instead of failing the whole solve.
	// Each leaf also zeroes the off-block rows of its columns: the merge
	// kernels rotate and copy full merge-window columns and rely on the
	// structurally-zero region holding exact zeros (LAPACK's Z=I invariant),
	// so q's entry contents must not survive into the merges.
	indxq := make([]int, n)
	for i, st := range starts[:len(starts)-1] {
		sz := sizes[i]
		for j := st; j < st+sz; j++ {
			col := q[j*ldq : j*ldq+n]
			for r := range col[:st] {
				col[r] = 0
			}
			for r := st + sz; r < n; r++ {
				col[r] = 0
			}
		}
		if _, err := DsteqrRobust(sz, d[st:st+sz], e[st:st+max(sz-1, 0)], q[st+st*ldq:], ldq); err != nil {
			return fmt.Errorf("leaf [%d,%d): %w", st, st+sz, err)
		}
		for j := 0; j < sz; j++ {
			indxq[st+j] = j
		}
	}

	// Merge pairwise, bottom-up.
	for len(sizes) > 1 {
		var nsizes []int
		var nstarts []int
		for i := 0; i+1 < len(sizes); i += 2 {
			st := starts[i]
			cut := sizes[i]
			msz := sizes[i] + sizes[i+1]
			rho := e[st+cut-1]
			if err := Dlaed1(msz, cut, d[st:st+msz], q[st+st*ldq:], ldq, indxq[st:st+msz], rho, cfg.gemm()); err != nil {
				return fmt.Errorf("merge [%d,%d): %w", st, st+msz, err)
			}
			nsizes = append(nsizes, msz)
			nstarts = append(nstarts, st)
		}
		if len(sizes)%2 == 1 {
			nsizes = append(nsizes, sizes[len(sizes)-1])
			nstarts = append(nstarts, starts[len(sizes)-1])
		}
		sizes = nsizes
		starts = append(nstarts, n)
	}

	// Final sort into ascending order (the paper's SortEigenvectors task).
	SortEigen(n, d, q, ldq, indxq)
	return nil
}

// PartitionSizes splits n into the leaf sizes of the D&C tree by repeated
// halving until every piece is at most smlsiz (LAPACK DLAED0 partitioning:
// all leaves end up within a factor of two of each other).
func PartitionSizes(n, smlsiz int) []int {
	sizes := []int{n}
	for sizes[len(sizes)-1] > smlsiz {
		next := make([]int, 0, 2*len(sizes))
		for _, s := range sizes {
			next = append(next, s/2, (s+1)/2)
		}
		sizes = next
		// All entries halve together (LAPACK semantics): loop condition
		// checks the largest, which is the last (ceil halves go second).
	}
	return sizes
}

// SortEigen permutes d and the columns of q into ascending eigenvalue order
// given indxq, the merge's sorting permutation (new position i receives old
// position indxq[i]). The permutation is applied in place by following its
// cycles with a single n-element column buffer — O(n) scratch instead of the
// former n×n shadow copy, which dominated peak memory for large matrices.
// indxq is consumed: it holds the identity permutation on return.
func SortEigen(n int, d []float64, q []float64, ldq int, indxq []int) {
	col := make([]float64, n)
	for start := 0; start < n; start++ {
		j := indxq[start]
		if j == start {
			continue
		}
		// Save the cycle head, then shift each member one step back along
		// the cycle; indxq[i] = i marks position i as finalized so the
		// outer scan skips the rest of this cycle.
		dsave := d[start]
		copy(col, q[start*ldq:start*ldq+n])
		i := start
		for j != start {
			d[i] = d[j]
			copy(q[i*ldq:i*ldq+n], q[j*ldq:j*ldq+n])
			indxq[i] = i
			i = j
			j = indxq[j]
		}
		d[i] = dsave
		copy(q[i*ldq:i*ldq+n], col)
		indxq[i] = i
	}
}
