package lapack

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based invariants of the core kernels, via testing/quick.

func TestQuickDsteqrInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		d := make([]float64, n)
		e := make([]float64, n-1)
		for i := range d {
			d[i] = rng.NormFloat64() * 3
		}
		for i := range e {
			e[i] = rng.NormFloat64() * 3
		}
		dc := append([]float64(nil), d...)
		ec := append([]float64(nil), e...)
		z := make([]float64, n*n)
		if err := Dsteqr(CompIdentity, n, dc, ec, z, n); err != nil {
			return false
		}
		// trace preserved
		var trT, trL float64
		for i := 0; i < n; i++ {
			trT += d[i]
			trL += dc[i]
		}
		if math.Abs(trT-trL) > 1e-11*float64(n)*(math.Abs(trT)+1) {
			return false
		}
		// Frobenius norm preserved (orthogonal similarity)
		nf := Dlanst('F', n, d, e)
		var sl float64
		for i := 0; i < n; i++ {
			sl += dc[i] * dc[i]
		}
		if math.Abs(math.Sqrt(sl)-nf) > 1e-10*(nf+1) {
			return false
		}
		// ascending order
		for i := 1; i < n; i++ {
			if dc[i] < dc[i-1] {
				return false
			}
		}
		return orthogonality(n, z, n) < 1e-12*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickDlaed4Interlacing(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 3 + rng.Intn(20)
		d := make([]float64, k)
		z := make([]float64, k)
		cur := rng.NormFloat64()
		var nrm float64
		for i := 0; i < k; i++ {
			cur += 0.01 + rng.Float64()
			d[i] = cur
			z[i] = 0.01 + rng.Float64()
			nrm += z[i] * z[i]
		}
		nrm = math.Sqrt(nrm)
		for i := range z {
			z[i] /= nrm
		}
		rho := 0.01 + 3*rng.Float64()
		delta := make([]float64, k)
		prev := math.Inf(-1)
		for i := 0; i < k; i++ {
			lam, err := Dlaed4(k, i, d, z, delta, rho)
			if err != nil {
				return false
			}
			if lam <= d[i] || lam <= prev {
				return false
			}
			if i < k-1 && lam >= d[i+1] {
				return false
			}
			if i == k-1 && lam > d[k-1]+rho+1e-12 {
				return false
			}
			prev = lam
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestQuickDqdsTracePreserved(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		q := make([]float64, n)
		e := make([]float64, max(n-1, 1))
		// trace(B·Bᵀ) = Σ q_i + Σ e_i
		var tr float64
		for i := range q {
			q[i] = rng.Float64() * 5
			tr += q[i]
		}
		for i := 0; i < n-1; i++ {
			e[i] = rng.Float64() * 2
			tr += e[i]
		}
		if err := DqdsEigen(n, q, e); err != nil {
			return false
		}
		var sl float64
		for i := 0; i < n; i++ {
			if q[i] < 0 {
				return false
			}
			if i > 0 && q[i] < q[i-1] {
				return false
			}
			sl += q[i]
		}
		return math.Abs(sl-tr) <= 1e-10*float64(n)*(tr+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickDlamrgIsSortingPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n1 := 1 + rng.Intn(15)
		n2 := 1 + rng.Intn(15)
		a := make([]float64, n1+n2)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		// sort each block ascending (insertion)
		for b, lo := 0, 0; b < 2; b++ {
			hi := n1
			if b == 1 {
				lo, hi = n1, n1+n2
			}
			for i := lo + 1; i < hi; i++ {
				for j := i; j > lo && a[j] < a[j-1]; j-- {
					a[j], a[j-1] = a[j-1], a[j]
				}
			}
		}
		idx := make([]int, n1+n2)
		Dlamrg(n1, n2, a, 1, 1, idx)
		seen := make([]bool, n1+n2)
		prev := math.Inf(-1)
		for _, ix := range idx {
			if ix < 0 || ix >= n1+n2 || seen[ix] || a[ix] < prev {
				return false
			}
			seen[ix] = true
			prev = a[ix]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickDlartgComposition(t *testing.T) {
	// Composing a rotation with its inverse restores the input.
	f := func(a, b float64) bool {
		a = math.Remainder(a, 1e100)
		b = math.Remainder(b, 1e100)
		if math.IsNaN(a) || math.IsNaN(b) || (a == 0 && b == 0) {
			return true
		}
		c, s, r := Dlartg(a, b)
		// inverse rotation Gᵀ applied to (r, 0)
		x := c * r
		y := s * r
		// rotating forward again must give (r, 0)
		fx := c*x + s*y
		fy := -s*x + c*y
		scale := math.Abs(r) + 1
		return math.Abs(fx-r) < 1e-12*scale && math.Abs(fy) < 1e-12*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickDsytrdPreservesSpectrum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		a := randSym(rng, n, n)
		// eigenvalues of A via full pipeline vs eigenvalues of T
		d := make([]float64, n)
		e := make([]float64, max(n-1, 1))
		tau := make([]float64, max(n-1, 1))
		// reference trace and Frobenius norm
		var tr, fr float64
		for j := 0; j < n; j++ {
			tr += a[j+j*n]
			for i := 0; i < n; i++ {
				fr += a[i+j*n] * a[i+j*n]
			}
		}
		if err := Dsytrd(n, a, n, d, e, tau, 4); err != nil {
			return false
		}
		var trT, frT float64
		for i := 0; i < n; i++ {
			trT += d[i]
			frT += d[i] * d[i]
		}
		for i := 0; i < n-1; i++ {
			frT += 2 * e[i] * e[i]
		}
		return math.Abs(tr-trT) < 1e-10*(math.Abs(tr)+1)*float64(n) &&
			math.Abs(fr-frT) < 1e-9*(fr+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
