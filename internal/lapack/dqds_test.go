package lapack

import (
	"math"
	"math/rand"
	"testing"
)

// qdToTridiag builds the symmetric tridiagonal B·Bᵀ for qd arrays (q, e):
// diagonal q[i]+e[i-1], off-diagonal sqrt(q[i]·e[i]).
func qdToTridiag(n int, q, e []float64) (d, off []float64) {
	d = make([]float64, n)
	off = make([]float64, max(n-1, 1))
	for i := 0; i < n; i++ {
		d[i] = q[i]
		if i > 0 {
			d[i] += e[i-1]
		}
	}
	for i := 0; i < n-1; i++ {
		off[i] = math.Sqrt(q[i] * e[i])
	}
	return d, off[:n-1]
}

func TestDqdsMatchesSteqr(t *testing.T) {
	rng := rand.New(rand.NewSource(701))
	for _, n := range []int{1, 2, 3, 5, 20, 100, 300} {
		q := make([]float64, n)
		e := make([]float64, max(n-1, 1))
		for i := range q {
			q[i] = 0.1 + rng.Float64()
		}
		for i := 0; i < n-1; i++ {
			e[i] = 0.1 + rng.Float64()
		}
		d, off := qdToTridiag(n, q, e)
		want := append([]float64(nil), d...)
		offc := append([]float64(nil), off...)
		if err := Dsterf(n, want, offc); err != nil {
			t.Fatal(err)
		}
		qc := append([]float64(nil), q...)
		ec := append([]float64(nil), e...)
		if err := DqdsEigen(n, qc, ec); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		scale := want[n-1] + 1
		for i := 0; i < n; i++ {
			if math.Abs(qc[i]-want[i]) > 1e-12*scale*float64(n) {
				t.Errorf("n=%d eig %d: dqds %v sterf %v", n, i, qc[i], want[i])
			}
			if qc[i] < 0 {
				t.Errorf("n=%d eig %d negative: %v", n, i, qc[i])
			}
		}
	}
}

func TestDqdsRelativeAccuracyGraded(t *testing.T) {
	// Graded qd arrays spanning 12 orders of magnitude: dqds must deliver
	// the tiny eigenvalues to high RELATIVE accuracy, which QR cannot.
	n := 40
	q := make([]float64, n)
	e := make([]float64, n-1)
	for i := 0; i < n; i++ {
		q[i] = math.Pow(10, -12*float64(i)/float64(n-1))
	}
	for i := 0; i < n-1; i++ {
		e[i] = q[i] * 1e-3
	}
	qc := append([]float64(nil), q...)
	ec := append([]float64(nil), e...)
	if err := DqdsEigen(n, qc, ec); err != nil {
		t.Fatal(err)
	}
	// With weak coupling the eigenvalues are near q[i]+e[i-1]+e[i] (Gerschgorin
	// within a relative 2e-3); check the smallest one's relative position.
	if qc[0] <= 0 {
		t.Fatalf("smallest eigenvalue nonpositive: %v", qc[0])
	}
	rel := qc[0] / 1e-12
	if rel < 0.99 || rel > 1.01 {
		t.Errorf("smallest eigenvalue lost relative accuracy: %v (rel %v)", qc[0], rel)
	}
}

func TestDqdsZeroAndSplitCases(t *testing.T) {
	// zero coupling: eigenvalues are exactly the q values
	n := 6
	q := []float64{3, 1, 4, 1.5, 9, 2.6}
	e := make([]float64, n-1)
	qc := append([]float64(nil), q...)
	if err := DqdsEigen(n, qc, e); err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), q...)
	sortFloats(want)
	for i := range want {
		if math.Abs(qc[i]-want[i]) > 1e-14 {
			t.Errorf("diag case %d: %v vs %v", i, qc[i], want[i])
		}
	}
	// zero matrix
	zq := make([]float64, 4)
	ze := make([]float64, 3)
	if err := DqdsEigen(4, zq, ze); err != nil {
		t.Fatal(err)
	}
	for _, v := range zq {
		if v != 0 {
			t.Errorf("zero matrix eigenvalue %v", v)
		}
	}
	// invalid input
	if err := DqdsEigen(2, []float64{-1, 1}, []float64{0.5}); err == nil {
		t.Error("negative q must error")
	}
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

func TestDqdsSingularValues(t *testing.T) {
	rng := rand.New(rand.NewSource(703))
	n := 50
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	for i := range e {
		e[i] = rng.NormFloat64()
	}
	s, err := DqdsSingularValues(n, d, e)
	if err != nil {
		t.Fatal(err)
	}
	// Compare against the Golub-Kahan route via Dsterf.
	nn := 2 * n
	gd := make([]float64, nn)
	ge := make([]float64, nn-1)
	for i := 0; i < n; i++ {
		ge[2*i] = d[i]
		if i < n-1 {
			ge[2*i+1] = e[i]
		}
	}
	if err := Dsterf(nn, gd, ge); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n; j++ {
		want := gd[nn-1-j]
		if math.Abs(s[j]-want) > 1e-11*(math.Abs(want)+1) {
			t.Errorf("sigma %d: dqds %v gk %v", j, s[j], want)
		}
		if j > 0 && s[j] > s[j-1] {
			t.Errorf("singular values not descending at %d", j)
		}
	}
}

func TestDqdsSingularValuesScaled(t *testing.T) {
	for _, scale := range []float64{1e-160, 1e160} {
		n := 10
		d := make([]float64, n)
		e := make([]float64, n-1)
		for i := range d {
			d[i] = scale * float64(i+1)
		}
		for i := range e {
			e[i] = scale * 0.5
		}
		s, err := DqdsSingularValues(n, d, e)
		if err != nil {
			t.Fatalf("scale %g: %v", scale, err)
		}
		for _, v := range s {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("scale %g: non-finite singular value", scale)
			}
		}
		if s[0] < scale*float64(n)/2 || s[0] > scale*float64(n)*2 {
			t.Errorf("scale %g: largest sigma %v implausible", scale, s[0])
		}
	}
}

func TestDqdsLargeRandomPerformanceShape(t *testing.T) {
	// Not a benchmark, but guards against quadratic sweep blowup: a 1000
	// value problem must finish (the sweep cap would trip otherwise).
	rng := rand.New(rand.NewSource(707))
	n := 1000
	q := make([]float64, n)
	e := make([]float64, n-1)
	for i := range q {
		q[i] = 0.01 + rng.Float64()
	}
	for i := range e {
		e[i] = 0.01 + rng.Float64()
	}
	if err := DqdsEigen(n, q, e); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if q[i] < q[i-1] {
			t.Fatal("not sorted")
		}
	}
}
