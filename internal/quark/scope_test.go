package quark

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// TestScopeFailureIsolation pins the scope contract batched solves depend on:
// a failure inside one scope cascades only through that scope's dependency
// chain, its Err/Skipped reflect exactly that subgraph, and sibling scopes
// over disjoint handles run to completion with clean Err/Skipped.
func TestScopeFailureIsolation(t *testing.T) {
	rt := New(4)
	defer rt.Shutdown()

	const chains = 8
	const depth = 6
	var ran [chains]atomic.Int64
	scopes := make([]*Scope, chains)
	for c := 0; c < chains; c++ {
		c := c
		sc := rt.NewScope()
		scopes[c] = sc
		h := sc.Handle(fmt.Sprintf("chain-%d", c))
		for i := 0; i < depth; i++ {
			i := i
			sc.Submit("Link", fmt.Sprintf("c%d/%d", c, i), func() {
				if c == 3 && i == 2 {
					panic("injected: chain 3 breaks mid-way")
				}
				ran[c].Add(1)
			}, ReadWrite(h))
		}
	}
	rt.Wait()

	for c := 0; c < chains; c++ {
		sc := scopes[c]
		if c == 3 {
			if sc.Err() == nil {
				t.Fatalf("chain 3: scope Err is nil after injected panic")
			}
			var te *TaskError
			if !errors.As(sc.Err(), &te) {
				t.Fatalf("chain 3: scope Err %v is not a *TaskError", sc.Err())
			}
			// Tasks 3..5 depend on the failed task 2 and must be skipped.
			if got := sc.Skipped(); got != depth-3 {
				t.Fatalf("chain 3: Skipped=%d, want %d", got, depth-3)
			}
			if got := ran[c].Load(); got != 2 {
				t.Fatalf("chain 3: %d tasks ran, want 2", got)
			}
			continue
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("chain %d: unexpected scope error %v", c, err)
		}
		if got := sc.Skipped(); got != 0 {
			t.Fatalf("chain %d: Skipped=%d, want 0", c, got)
		}
		if got := ran[c].Load(); got != depth {
			t.Fatalf("chain %d: %d tasks ran, want %d", c, got, depth)
		}
	}
}

// TestScopeRuntimeLevelSubmitsUnscoped checks that plain runtime submissions
// coexist with scoped ones: a runtime-level failure never shows up in any
// scope's Err, and scoped failures stay out of other scopes.
func TestScopeRuntimeLevelSubmitsUnscoped(t *testing.T) {
	rt := New(2)
	defer rt.Shutdown()
	sc := rt.NewScope()
	hs := sc.Handle("scoped")
	hr := rt.Handle("bare")

	var scoped atomic.Int64
	sc.Submit("Work", "scoped", func() { scoped.Add(1) }, ReadWrite(hs))
	rt.Submit("Work", "bare-fail", func() { panic("runtime-level failure") }, ReadWrite(hr))
	sc.SubmitPrio("Work", "scoped-2", 5, func() { scoped.Add(1) }, ReadWrite(hs))
	rt.Wait()

	if err := sc.Err(); err != nil {
		t.Fatalf("runtime-level failure leaked into scope: %v", err)
	}
	if got := sc.Skipped(); got != 0 {
		t.Fatalf("scope Skipped=%d, want 0", got)
	}
	if got := scoped.Load(); got != 2 {
		t.Fatalf("scoped tasks ran %d times, want 2", got)
	}
	if sc.Workers() != rt.Workers() {
		t.Fatalf("scope Workers %d != runtime Workers %d", sc.Workers(), rt.Workers())
	}
}
