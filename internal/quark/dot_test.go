package quark

import (
	"strings"
	"testing"
	"time"
)

func sampleGraph() *Graph {
	g := &Graph{}
	add := func(id int, class string, dur float64) {
		g.Tasks = append(g.Tasks, TaskInfo{
			ID: id, Class: class, Label: class, Worker: 0,
			End: time.Duration(dur * float64(time.Second)),
		})
	}
	// diamond: 0 -> {1, 2} -> 3
	add(0, "STEDC", 1)
	add(1, "LAED4", 2)
	add(2, "PermuteV", 5)
	add(3, "UpdateVect", 1)
	g.Edges = [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}}
	return g
}

func TestDotOutput(t *testing.T) {
	dot := sampleGraph().Dot()
	for _, want := range []string{"digraph", "t0 -> t1", "t2 -> t3", "STEDC", "UpdateVect", "fillcolor"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q:\n%s", want, dot)
		}
	}
	// unknown classes get fallback colors without panicking
	g := sampleGraph()
	g.Tasks[0].Class = "Exotic"
	if !strings.Contains(g.Dot(), "Exotic") {
		t.Error("unknown class missing")
	}
}

func TestCriticalPath(t *testing.T) {
	g := sampleGraph()
	length, path := g.CriticalPath()
	// longest path: 0 (1s) -> 2 (5s) -> 3 (1s) = 7s
	if length < 6.999 || length > 7.001 {
		t.Errorf("critical path length %v, want 7", length)
	}
	want := []int{0, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("path %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Errorf("path %v, want %v", path, want)
		}
	}
	if w := g.TotalWork(); w < 8.999 || w > 9.001 {
		t.Errorf("total work %v, want 9", w)
	}
}

func TestCriticalPathEmptyAndSingle(t *testing.T) {
	g := &Graph{}
	if l, p := g.CriticalPath(); l != 0 || p != nil {
		t.Error("empty graph")
	}
	g.Tasks = append(g.Tasks, TaskInfo{ID: 0, End: time.Second, Worker: 0})
	l, p := g.CriticalPath()
	if l < 0.999 || len(p) != 1 {
		t.Errorf("single task: %v %v", l, p)
	}
}

func TestClassCounts(t *testing.T) {
	c := sampleGraph().ClassCounts()
	if c["STEDC"] != 1 || c["LAED4"] != 1 || len(c) != 4 {
		t.Errorf("counts %v", c)
	}
}
