package quark

import (
	"fmt"
	"sort"
	"strings"
)

// Dot renders the captured graph in Graphviz dot format, one node per task
// colored by kernel class (the paper's Figure 2 view).
func (g *Graph) Dot() string {
	var b strings.Builder
	b.WriteString("digraph taskflow {\n  rankdir=TB;\n  node [shape=box, style=filled, fontsize=10];\n")
	colors := classColors(g)
	for _, t := range g.Tasks {
		fmt.Fprintf(&b, "  t%d [label=%q, fillcolor=%q];\n", t.ID, t.Class, colors[t.Class])
	}
	for _, e := range g.Edges {
		fmt.Fprintf(&b, "  t%d -> t%d;\n", e[0], e[1])
	}
	b.WriteString("}\n")
	return b.String()
}

// palette mirrors the paper's Table II kernel color coding where applicable.
var palette = map[string]string{
	"UpdateVect":       "#4daf4a",
	"ComputeVect":      "#984ea3",
	"LAED4":            "#377eb8",
	"ComputeLocalW":    "#a6cee3",
	"SortEigenvectors": "#ffff99",
	"STEDC":            "#e41a1c",
	"LASET":            "#fdbf6f",
	"ComputeDeflation": "#ff7f00",
	"PermuteV":         "#b2df8a",
	"CopyBackDeflated": "#fb9a99",
	"ReduceW":          "#cab2d6",
	"Scale":            "#dddddd",
	"Dlamrg":           "#eeeeee",
}

func classColors(g *Graph) map[string]string {
	fallback := []string{"#8dd3c7", "#ffffb3", "#bebada", "#fb8072", "#80b1d3", "#fdb462"}
	out := map[string]string{}
	var unknown []string
	for _, t := range g.Tasks {
		if _, ok := out[t.Class]; ok {
			continue
		}
		if c, ok := palette[t.Class]; ok {
			out[t.Class] = c
		} else {
			unknown = append(unknown, t.Class)
			out[t.Class] = ""
		}
	}
	sort.Strings(unknown)
	for i, c := range unknown {
		out[c] = fallback[i%len(fallback)]
	}
	return out
}

// ClassCounts returns how many tasks of each class the graph holds.
func (g *Graph) ClassCounts() map[string]int {
	out := map[string]int{}
	for _, t := range g.Tasks {
		out[t.Class]++
	}
	return out
}

// CriticalPath returns the longest duration-weighted path through the DAG
// and its length: the lower bound on any schedule's makespan.
func (g *Graph) CriticalPath() (length float64, path []int) {
	n := len(g.Tasks)
	adj := make([][]int, n)
	indeg := make([]int, n)
	for _, e := range g.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		indeg[e[1]]++
	}
	dist := make([]float64, n)
	prev := make([]int, n)
	for i := range prev {
		prev[i] = -1
		dist[i] = g.Tasks[i].Duration().Seconds()
	}
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	best := -1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if best < 0 || dist[u] > dist[best] {
			best = u
		}
		for _, v := range adj[u] {
			if cand := dist[u] + g.Tasks[v].Duration().Seconds(); cand > dist[v] {
				dist[v] = cand
				prev[v] = u
			}
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if best < 0 {
		return 0, nil
	}
	for u := best; u >= 0; u = prev[u] {
		path = append(path, u)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return dist[best], path
}

// TotalWork returns the sum of all task durations in seconds.
func (g *Graph) TotalWork() float64 {
	var s float64
	for _, t := range g.Tasks {
		s += t.Duration().Seconds()
	}
	return s
}
