package quark

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSequentialConsistencyRAW(t *testing.T) {
	rt := New(4)
	defer rt.Shutdown()
	h := rt.Handle("x")
	var x int
	var got int
	rt.Submit("W", "write", func() { x = 42 }, Write(h))
	rt.Submit("R", "read", func() { got = x }, Read(h))
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("read-after-write: got %d", got)
	}
}

func TestWriteAfterReadOrdering(t *testing.T) {
	// WAR: the write must wait for the slow reader.
	rt := New(4)
	defer rt.Shutdown()
	h := rt.Handle("x")
	x := 1
	var seen int64
	rt.Submit("R", "slow-read", func() {
		time.Sleep(10 * time.Millisecond)
		atomic.StoreInt64(&seen, int64(x))
	}, Read(h))
	rt.Submit("W", "write", func() { x = 2 }, Write(h))
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt64(&seen) != 1 {
		t.Errorf("writer overtook reader: saw %d", seen)
	}
}

func TestChainOfInOut(t *testing.T) {
	rt := New(8)
	defer rt.Shutdown()
	h := rt.Handle("acc")
	acc := 0
	for i := 0; i < 100; i++ {
		i := i
		rt.Submit("A", fmt.Sprintf("step%d", i), func() { acc = acc*2 + i%2 }, ReadWrite(h))
	}
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < 100; i++ {
		want = want*2 + i%2
	}
	if acc != want {
		t.Errorf("InOut chain ran out of order: %d != %d", acc, want)
	}
}

func TestReadersRunConcurrently(t *testing.T) {
	// Two readers of the same handle must be able to overlap: each waits
	// for the other to start, which deadlocks if they were serialized.
	rt := New(2)
	defer rt.Shutdown()
	h := rt.Handle("x")
	var wg sync.WaitGroup
	wg.Add(2)
	meet := func() {
		wg.Done()
		wg.Wait()
	}
	done := make(chan error, 1)
	go func() {
		rt.Submit("R", "r1", meet, Read(h))
		rt.Submit("R", "r2", meet, Read(h))
		done <- rt.Wait()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("readers were serialized (deadlock)")
	}
}

func TestGathervGroupConcurrent(t *testing.T) {
	// Gatherv tasks on one handle must overlap each other.
	rt := New(2)
	defer rt.Shutdown()
	h := rt.Handle("V")
	var wg sync.WaitGroup
	wg.Add(2)
	meet := func() {
		wg.Done()
		wg.Wait()
	}
	done := make(chan error, 1)
	go func() {
		rt.Submit("G", "g1", meet, Gather(h))
		rt.Submit("G", "g2", meet, Gather(h))
		done <- rt.Wait()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("gatherv tasks were serialized (deadlock)")
	}
}

func TestWriterWaitsForGathervGroup(t *testing.T) {
	rt := New(4)
	defer rt.Shutdown()
	h := rt.Handle("V")
	var count int64
	for i := 0; i < 6; i++ {
		rt.Submit("G", "g", func() {
			time.Sleep(2 * time.Millisecond)
			atomic.AddInt64(&count, 1)
		}, Gather(h))
	}
	var atJoin int64
	rt.Submit("J", "join", func() { atJoin = atomic.LoadInt64(&count) }, ReadWrite(h))
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if atJoin != 6 {
		t.Errorf("join ran before gatherv group finished: saw %d of 6", atJoin)
	}
}

func TestReaderWaitsForGatherers(t *testing.T) {
	rt := New(4)
	defer rt.Shutdown()
	h := rt.Handle("V")
	x := 0
	rt.Submit("G", "g", func() {
		time.Sleep(5 * time.Millisecond)
		x = 7
	}, Gather(h))
	var got int
	rt.Submit("R", "r", func() { got = x }, Read(h))
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Errorf("reader overtook gatherv writer: %d", got)
	}
}

func TestIndependentHandlesOverlap(t *testing.T) {
	rt := New(2)
	defer rt.Shutdown()
	h1, h2 := rt.Handle("a"), rt.Handle("b")
	var wg sync.WaitGroup
	wg.Add(2)
	meet := func() { wg.Done(); wg.Wait() }
	done := make(chan error, 1)
	go func() {
		rt.Submit("W", "w1", meet, Write(h1))
		rt.Submit("W", "w2", meet, Write(h2))
		done <- rt.Wait()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("independent writers were serialized")
	}
}

func TestPanicSurfacesAsError(t *testing.T) {
	rt := New(2)
	defer rt.Shutdown()
	h := rt.Handle("x")
	rt.Submit("B", "boom", func() { panic("kernel exploded") }, Write(h))
	ran := false
	rt.Submit("R", "after", func() { ran = true }, Read(h))
	err := rt.Wait()
	if err == nil {
		t.Fatal("expected error from panicking task")
	}
	if !ran {
		t.Error("downstream task should still run after failure")
	}
	// error value panics are unwrapped
	rt2 := New(1)
	defer rt2.Shutdown()
	sentinel := errors.New("sentinel")
	rt2.Submit("B", "boom2", func() { panic(sentinel) })
	if err := rt2.Wait(); !errors.Is(err, sentinel) {
		t.Errorf("expected sentinel, got %v", err)
	}
}

func TestPriorityJumpsQueue(t *testing.T) {
	rt := New(1)
	defer rt.Shutdown()
	block := make(chan struct{})
	var order []string
	var mu sync.Mutex
	add := func(s string) func() {
		return func() {
			mu.Lock()
			order = append(order, s)
			mu.Unlock()
		}
	}
	rt.Submit("B", "block", func() { <-block })
	rt.Submit("N", "normal", add("normal"))
	rt.SubmitPrio("P", "prio", 5, add("prio"))
	close(block)
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "prio" {
		t.Errorf("priority order: %v", order)
	}
}

func TestGraphCaptureRespectsEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	rt := New(4, WithGraphCapture())
	defer rt.Shutdown()
	handles := make([]*Handle, 5)
	for i := range handles {
		handles[i] = rt.Handle(fmt.Sprintf("h%d", i))
	}
	modes := []AccessMode{In, Out, InOut, Gatherv}
	n := 120
	for i := 0; i < n; i++ {
		var acc []Access
		used := map[int]bool{}
		for j := 0; j < 1+rng.Intn(3); j++ {
			hi := rng.Intn(len(handles))
			if used[hi] {
				continue
			}
			used[hi] = true
			acc = append(acc, Access{handles[hi], modes[rng.Intn(len(modes))]})
		}
		sleep := time.Duration(rng.Intn(200)) * time.Microsecond
		rt.Submit("K", fmt.Sprintf("t%d", i), func() { time.Sleep(sleep) }, acc...)
	}
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	g := rt.Graph()
	if len(g.Tasks) != n {
		t.Fatalf("captured %d tasks, want %d", len(g.Tasks), n)
	}
	for _, e := range g.Edges {
		a, b := g.Tasks[e[0]], g.Tasks[e[1]]
		if b.Start < a.End {
			t.Fatalf("edge %d->%d violated: %v starts before %v ends", e[0], e[1], b.Start, a.End)
		}
	}
	for _, ti := range g.Tasks {
		if ti.Worker < 0 || ti.End < ti.Start {
			t.Fatalf("task %d has bogus timing: %+v", ti.ID, ti)
		}
	}
}

func TestWaitThenSubmitAgain(t *testing.T) {
	rt := New(2)
	defer rt.Shutdown()
	h := rt.Handle("x")
	x := 0
	rt.Submit("A", "a", func() { x = 1 }, Write(h))
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	rt.Submit("B", "b", func() { x *= 10 }, ReadWrite(h))
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if x != 10 {
		t.Errorf("phased submission: %d", x)
	}
}

func TestManyTasksStress(t *testing.T) {
	rt := New(8)
	defer rt.Shutdown()
	const nh = 16
	handles := make([]*Handle, nh)
	counters := make([]int64, nh)
	for i := range handles {
		handles[i] = rt.Handle(fmt.Sprintf("c%d", i))
	}
	const n = 5000
	for i := 0; i < n; i++ {
		hi := i % nh
		rt.Submit("inc", "i", func() { counters[hi]++ }, ReadWrite(handles[hi]))
	}
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range counters {
		total += c
	}
	if total != n {
		t.Errorf("lost updates: %d of %d", total, n)
	}
}
