package quark

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSequentialConsistencyRAW(t *testing.T) {
	rt := New(4)
	defer rt.Shutdown()
	h := rt.Handle("x")
	var x int
	var got int
	rt.Submit("W", "write", func() { x = 42 }, Write(h))
	rt.Submit("R", "read", func() { got = x }, Read(h))
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("read-after-write: got %d", got)
	}
}

func TestWriteAfterReadOrdering(t *testing.T) {
	// WAR: the write must wait for the slow reader.
	rt := New(4)
	defer rt.Shutdown()
	h := rt.Handle("x")
	x := 1
	var seen int64
	rt.Submit("R", "slow-read", func() {
		time.Sleep(10 * time.Millisecond)
		atomic.StoreInt64(&seen, int64(x))
	}, Read(h))
	rt.Submit("W", "write", func() { x = 2 }, Write(h))
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt64(&seen) != 1 {
		t.Errorf("writer overtook reader: saw %d", seen)
	}
}

func TestChainOfInOut(t *testing.T) {
	rt := New(8)
	defer rt.Shutdown()
	h := rt.Handle("acc")
	acc := 0
	for i := 0; i < 100; i++ {
		i := i
		rt.Submit("A", fmt.Sprintf("step%d", i), func() { acc = acc*2 + i%2 }, ReadWrite(h))
	}
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < 100; i++ {
		want = want*2 + i%2
	}
	if acc != want {
		t.Errorf("InOut chain ran out of order: %d != %d", acc, want)
	}
}

func TestReadersRunConcurrently(t *testing.T) {
	// Two readers of the same handle must be able to overlap: each waits
	// for the other to start, which deadlocks if they were serialized.
	rt := New(2)
	defer rt.Shutdown()
	h := rt.Handle("x")
	var wg sync.WaitGroup
	wg.Add(2)
	meet := func() {
		wg.Done()
		wg.Wait()
	}
	done := make(chan error, 1)
	go func() {
		rt.Submit("R", "r1", meet, Read(h))
		rt.Submit("R", "r2", meet, Read(h))
		done <- rt.Wait()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("readers were serialized (deadlock)")
	}
}

func TestGathervGroupConcurrent(t *testing.T) {
	// Gatherv tasks on one handle must overlap each other.
	rt := New(2)
	defer rt.Shutdown()
	h := rt.Handle("V")
	var wg sync.WaitGroup
	wg.Add(2)
	meet := func() {
		wg.Done()
		wg.Wait()
	}
	done := make(chan error, 1)
	go func() {
		rt.Submit("G", "g1", meet, Gather(h))
		rt.Submit("G", "g2", meet, Gather(h))
		done <- rt.Wait()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("gatherv tasks were serialized (deadlock)")
	}
}

func TestWriterWaitsForGathervGroup(t *testing.T) {
	rt := New(4)
	defer rt.Shutdown()
	h := rt.Handle("V")
	var count int64
	for i := 0; i < 6; i++ {
		rt.Submit("G", "g", func() {
			time.Sleep(2 * time.Millisecond)
			atomic.AddInt64(&count, 1)
		}, Gather(h))
	}
	var atJoin int64
	rt.Submit("J", "join", func() { atJoin = atomic.LoadInt64(&count) }, ReadWrite(h))
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if atJoin != 6 {
		t.Errorf("join ran before gatherv group finished: saw %d of 6", atJoin)
	}
}

func TestReaderWaitsForGatherers(t *testing.T) {
	rt := New(4)
	defer rt.Shutdown()
	h := rt.Handle("V")
	x := 0
	rt.Submit("G", "g", func() {
		time.Sleep(5 * time.Millisecond)
		x = 7
	}, Gather(h))
	var got int
	rt.Submit("R", "r", func() { got = x }, Read(h))
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Errorf("reader overtook gatherv writer: %d", got)
	}
}

func TestIndependentHandlesOverlap(t *testing.T) {
	rt := New(2)
	defer rt.Shutdown()
	h1, h2 := rt.Handle("a"), rt.Handle("b")
	var wg sync.WaitGroup
	wg.Add(2)
	meet := func() { wg.Done(); wg.Wait() }
	done := make(chan error, 1)
	go func() {
		rt.Submit("W", "w1", meet, Write(h1))
		rt.Submit("W", "w2", meet, Write(h2))
		done <- rt.Wait()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("independent writers were serialized")
	}
}

func TestPanicSurfacesAsError(t *testing.T) {
	rt := New(2)
	defer rt.Shutdown()
	h := rt.Handle("x")
	rt.Submit("B", "boom", func() { panic("kernel exploded") }, Write(h))
	ran := false
	rt.Submit("R", "after", func() { ran = true }, Read(h))
	err := rt.Wait()
	if err == nil {
		t.Fatal("expected error from panicking task")
	}
	if ran {
		t.Error("successor of a failed task must be skipped, not run")
	}
	if rt.Skipped() != 1 {
		t.Errorf("skipped count %d, want 1", rt.Skipped())
	}
	// error value panics are unwrapped
	rt2 := New(1)
	defer rt2.Shutdown()
	sentinel := errors.New("sentinel")
	rt2.Submit("B", "boom2", func() { panic(sentinel) })
	if err := rt2.Wait(); !errors.Is(err, sentinel) {
		t.Errorf("expected sentinel, got %v", err)
	}
}

func TestFailureSkipsTransitiveSuccessors(t *testing.T) {
	rt := New(4)
	defer rt.Shutdown()
	h1, h2 := rt.Handle("a"), rt.Handle("b")
	var ranA, ranB, ranOther int64
	rt.Submit("B", "boom", func() { panic("root failure") }, Write(h1))
	rt.Submit("A", "succ", func() { atomic.AddInt64(&ranA, 1) }, ReadWrite(h1))
	rt.Submit("B2", "succ-of-succ", func() { atomic.AddInt64(&ranB, 1) }, Read(h1))
	// an unrelated branch must be unaffected by the failure
	rt.Submit("O", "independent", func() { atomic.AddInt64(&ranOther, 1) }, Write(h2))
	err := rt.Wait()
	if err == nil || !strings.Contains(err.Error(), "root failure") {
		t.Fatalf("expected root failure, got %v", err)
	}
	if ranA != 0 || ranB != 0 {
		t.Errorf("transitive successors ran: %d %d", ranA, ranB)
	}
	if ranOther != 1 {
		t.Errorf("independent branch skipped: %d", ranOther)
	}
	if rt.Skipped() != 2 {
		t.Errorf("skipped %d, want 2", rt.Skipped())
	}
	// tasks submitted after the failure completed are skipped too
	ranLate := false
	rt.Submit("L", "late", func() { ranLate = true }, Read(h1))
	if err := rt.Wait(); err == nil {
		t.Fatal("error must persist")
	}
	if ranLate {
		t.Error("late successor of a failed task ran")
	}
}

func TestRootCauseErrorNotMasked(t *testing.T) {
	// A failing join whose successors would panic on nil state: Wait must
	// report the join's error, and the would-be secondary panics never fire.
	rt := New(4)
	defer rt.Shutdown()
	h := rt.Handle("merge")
	var state *struct{ v int }
	rt.Submit("Join", "deflate", func() {
		panic(errors.New("corrupted merge"))
	}, Write(h))
	for i := 0; i < 8; i++ {
		rt.Submit("Panel", fmt.Sprintf("panel%d", i), func() {
			_ = state.v // would nil-deref if executed
		}, Read(h))
	}
	err := rt.Wait()
	if err == nil || !strings.Contains(err.Error(), "corrupted merge") {
		t.Fatalf("root cause lost: %v", err)
	}
	if !strings.Contains(err.Error(), "deflate") {
		t.Errorf("error should name the failing task: %v", err)
	}
	if rt.Skipped() != 8 {
		t.Errorf("skipped %d, want 8", rt.Skipped())
	}
}

func TestPriorityOrderAndFIFOTieBreak(t *testing.T) {
	// Numeric priority levels must be respected (5 before 1 before 0) and
	// tasks of equal priority must run in submission order. The seed
	// runtime's prepend-on-any-priority queue failed both: levels were
	// ignored and same-priority tasks ran in reverse (LIFO) order.
	rt := New(1)
	defer rt.Shutdown()
	block := make(chan struct{})
	var mu sync.Mutex
	var order []string
	add := func(s string) func() {
		return func() {
			mu.Lock()
			order = append(order, s)
			mu.Unlock()
		}
	}
	rt.Submit("B", "block", func() { <-block })
	rt.SubmitPrio("T", "p1-a", 1, add("p1-a"))
	rt.SubmitPrio("T", "p5-a", 5, add("p5-a"))
	rt.Submit("T", "p0-a", add("p0-a"))
	rt.SubmitPrio("T", "p5-b", 5, add("p5-b"))
	rt.SubmitPrio("T", "p1-b", 1, add("p1-b"))
	rt.Submit("T", "p0-b", add("p0-b"))
	close(block)
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	want := []string{"p5-a", "p5-b", "p1-a", "p1-b", "p0-a", "p0-b"}
	if len(order) != len(want) {
		t.Fatalf("ran %d tasks, want %d: %v", len(order), len(want), order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
}

func TestRandomDAGStressAcrossWorkers(t *testing.T) {
	// Hundreds of tasks with random In/Out/InOut/Gatherv mixes at several
	// pool sizes, validated two ways: every captured dependency edge is
	// respected by the measured timings, and an InOut counter chain per
	// handle observes sequentially consistent updates. Run with -race to
	// check the scheduler's synchronization.
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(97 + workers)))
			rt := New(workers, WithGraphCapture())
			defer rt.Shutdown()
			const nh = 7
			handles := make([]*Handle, nh)
			vals := make([]int, nh)
			writes := make([]int, nh)
			for i := range handles {
				handles[i] = rt.Handle(fmt.Sprintf("h%d", i))
			}
			modes := []AccessMode{In, Out, InOut, Gatherv}
			const n = 400
			for i := 0; i < n; i++ {
				var acc []Access
				used := map[int]bool{}
				var bump []int
				for j := 0; j < 1+rng.Intn(3); j++ {
					hi := rng.Intn(nh)
					if used[hi] {
						continue
					}
					used[hi] = true
					m := modes[rng.Intn(len(modes))]
					acc = append(acc, Access{handles[hi], m})
					if m == InOut {
						bump = append(bump, hi)
						writes[hi]++
					}
				}
				prio := rng.Intn(4)
				rt.SubmitPrio("K", fmt.Sprintf("t%d", i), prio, func() {
					for _, hi := range bump {
						vals[hi]++ // safe iff InOut chains are serialized
					}
				}, acc...)
			}
			if err := rt.Wait(); err != nil {
				t.Fatal(err)
			}
			for hi := range vals {
				if vals[hi] != writes[hi] {
					t.Errorf("handle %d: %d updates, want %d (lost under contention)", hi, vals[hi], writes[hi])
				}
			}
			g := rt.Graph()
			if len(g.Tasks) != n {
				t.Fatalf("captured %d tasks, want %d", len(g.Tasks), n)
			}
			for _, e := range g.Edges {
				a, b := g.Tasks[e[0]], g.Tasks[e[1]]
				if b.Start < a.End {
					t.Fatalf("edge %d->%d violated: succ started %v before pred ended %v", e[0], e[1], b.Start, a.End)
				}
			}
			for _, ti := range g.Tasks {
				if ti.Worker < 0 || ti.Worker >= workers {
					t.Fatalf("task %d ran on bogus worker %d", ti.ID, ti.Worker)
				}
				if ti.Home < 0 || ti.Home >= workers {
					t.Fatalf("task %d placed on bogus deque %d", ti.ID, ti.Home)
				}
				if ti.Stolen != (ti.Worker != ti.Home) {
					t.Fatalf("task %d steal flag inconsistent: worker %d home %d stolen %v", ti.ID, ti.Worker, ti.Home, ti.Stolen)
				}
			}
			if workers == 1 && rt.Steals() != 0 {
				t.Errorf("single worker cannot steal, got %d", rt.Steals())
			}
		})
	}
}

func TestPriorityJumpsQueue(t *testing.T) {
	rt := New(1)
	defer rt.Shutdown()
	block := make(chan struct{})
	var order []string
	var mu sync.Mutex
	add := func(s string) func() {
		return func() {
			mu.Lock()
			order = append(order, s)
			mu.Unlock()
		}
	}
	rt.Submit("B", "block", func() { <-block })
	rt.Submit("N", "normal", add("normal"))
	rt.SubmitPrio("P", "prio", 5, add("prio"))
	close(block)
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "prio" {
		t.Errorf("priority order: %v", order)
	}
}

func TestGraphCaptureRespectsEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	rt := New(4, WithGraphCapture())
	defer rt.Shutdown()
	handles := make([]*Handle, 5)
	for i := range handles {
		handles[i] = rt.Handle(fmt.Sprintf("h%d", i))
	}
	modes := []AccessMode{In, Out, InOut, Gatherv}
	n := 120
	for i := 0; i < n; i++ {
		var acc []Access
		used := map[int]bool{}
		for j := 0; j < 1+rng.Intn(3); j++ {
			hi := rng.Intn(len(handles))
			if used[hi] {
				continue
			}
			used[hi] = true
			acc = append(acc, Access{handles[hi], modes[rng.Intn(len(modes))]})
		}
		sleep := time.Duration(rng.Intn(200)) * time.Microsecond
		rt.Submit("K", fmt.Sprintf("t%d", i), func() { time.Sleep(sleep) }, acc...)
	}
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	g := rt.Graph()
	if len(g.Tasks) != n {
		t.Fatalf("captured %d tasks, want %d", len(g.Tasks), n)
	}
	for _, e := range g.Edges {
		a, b := g.Tasks[e[0]], g.Tasks[e[1]]
		if b.Start < a.End {
			t.Fatalf("edge %d->%d violated: %v starts before %v ends", e[0], e[1], b.Start, a.End)
		}
	}
	for _, ti := range g.Tasks {
		if ti.Worker < 0 || ti.End < ti.Start {
			t.Fatalf("task %d has bogus timing: %+v", ti.ID, ti)
		}
	}
}

func TestWaitThenSubmitAgain(t *testing.T) {
	rt := New(2)
	defer rt.Shutdown()
	h := rt.Handle("x")
	x := 0
	rt.Submit("A", "a", func() { x = 1 }, Write(h))
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	rt.Submit("B", "b", func() { x *= 10 }, ReadWrite(h))
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if x != 10 {
		t.Errorf("phased submission: %d", x)
	}
}

func TestProgressHeartbeat(t *testing.T) {
	var beats atomic.Int64
	rt := New(4, WithProgress(func() { beats.Add(1) }))
	defer rt.Shutdown()
	h := rt.Handle("x")
	const tasks = 50
	for i := 0; i < tasks; i++ {
		rt.Submit("A", fmt.Sprintf("t%d", i), func() {}, ReadWrite(h))
	}
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := beats.Load(); got != tasks {
		t.Errorf("progress fired %d times for %d executed tasks", got, tasks)
	}
}

func TestProgressNotReportedForSkippedTasks(t *testing.T) {
	var beats atomic.Int64
	rt := New(2, WithProgress(func() { beats.Add(1) }))
	defer rt.Shutdown()
	h := rt.Handle("x")
	boom := errors.New("boom")
	rt.Submit("A", "fail", func() { panic(boom) }, Write(h))
	for i := 0; i < 20; i++ {
		rt.Submit("B", fmt.Sprintf("skipped%d", i), func() {}, ReadWrite(h))
	}
	if err := rt.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait: %v, want boom", err)
	}
	// Only the executed failing task may beat: a cancellation cascade that
	// reports heartbeats would hide the stall it causes from a watchdog.
	if got := beats.Load(); got != 1 {
		t.Errorf("progress fired %d times, want 1 (skipped tasks must not beat)", got)
	}
}

func TestTaskErrorCarriesClass(t *testing.T) {
	rt := New(2)
	defer rt.Shutdown()
	h := rt.Handle("x")
	boom := errors.New("boom")
	rt.Submit("LAED4", "secular", func() { panic(boom) }, Write(h))
	err := rt.Wait()
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("Wait error %v does not expose *TaskError", err)
	}
	if te.Class != "LAED4" || te.Label != "secular" {
		t.Errorf("TaskError = %+v, want class LAED4 label secular", te)
	}
	if te.TaskClass() != "LAED4" {
		t.Errorf("TaskClass() = %q", te.TaskClass())
	}
	if !errors.Is(err, boom) {
		t.Error("TaskError chain lost the root cause")
	}
	want := `task "secular" (LAED4): boom`
	if !strings.Contains(err.Error(), want) {
		t.Errorf("error text %q does not contain %q", err.Error(), want)
	}
}

func TestManyTasksStress(t *testing.T) {
	rt := New(8)
	defer rt.Shutdown()
	const nh = 16
	handles := make([]*Handle, nh)
	counters := make([]int64, nh)
	for i := range handles {
		handles[i] = rt.Handle(fmt.Sprintf("c%d", i))
	}
	const n = 5000
	for i := 0; i < n; i++ {
		hi := i % nh
		rt.Submit("inc", "i", func() { counters[hi]++ }, ReadWrite(handles[hi]))
	}
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range counters {
		total += c
	}
	if total != n {
		t.Errorf("lost updates: %d of %d", total, n)
	}
}

// BenchmarkTaskThroughput measures pure scheduling overhead: chains of no-op
// tasks over a handful of handles, so the cost is submission, dependency
// tracking, deque operations and wakeups rather than kernel work.
func BenchmarkTaskThroughput(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("W%d", workers), func(b *testing.B) {
			const nh = 8
			for i := 0; i < b.N; i++ {
				rt := New(workers)
				handles := make([]*Handle, nh)
				for j := range handles {
					handles[j] = rt.Handle("h")
				}
				for j := 0; j < 2000; j++ {
					rt.SubmitPrio("noop", "n", j%3, func() {}, ReadWrite(handles[j%nh]))
				}
				if err := rt.Wait(); err != nil {
					b.Fatal(err)
				}
				rt.Shutdown()
			}
		})
	}
}
