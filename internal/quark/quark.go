// Package quark implements a QUARK-style dynamic task runtime: a master
// goroutine submits tasks in sequential program order, declaring how each
// task accesses shared data through typed handles (In / Out / InOut /
// Gatherv); the runtime infers dependencies from those declarations and
// executes tasks out of order on a pool of worker goroutines as their
// dependencies resolve.
//
// The Gatherv mode reproduces the extension the paper adds to QUARK: a group
// of tasks that all write disjoint parts of one large object (e.g. panels of
// the eigenvector matrix) may run concurrently with each other, while any
// ordinary reader or writer submitted afterwards waits for the whole group.
// This keeps the number of declared dependencies per task constant instead
// of Θ(n/nb).
//
// Scheduling policy (see DESIGN.md §"Scheduler"): every worker owns a ready
// deque ordered by (priority descending, submission order ascending). A ready
// task is placed on the deque of the worker that last wrote one of the
// handles it touches (locality: panel tasks land where their panel data is
// cache-warm), falling back to the worker that completed its last dependency,
// falling back to round-robin. Idle workers steal the highest-priority task
// from a randomly chosen victim. Enqueues wake at most one sleeping worker
// (targeted wakeup) instead of broadcasting to the whole pool.
//
// Failure-aware cancellation: when a task panics, every transitive successor
// is skipped instead of executed (their kernels would run against
// half-initialized state); Wait reports the root-cause error only.
//
// External cancellation: a runtime created with WithContext aborts when the
// context is cancelled or its deadline expires. The kernel currently running
// on each worker finishes (tasks are never interrupted mid-kernel), every
// not-yet-started task is skipped and marked Canceled, and Wait returns
// ctx.Err() promptly instead of draining the DAG first.
//
// Fault injection: when the faultinject registry is armed (chaos tests
// only), each task consults it before running its kernel; the disabled cost
// is a single atomic load per task.
package quark

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tridiag/internal/faultinject"
	"tridiag/internal/pool"
)

// AccessMode declares how a task uses a handle.
type AccessMode int

const (
	// In marks read-only access.
	In AccessMode = iota
	// Out marks write-only access.
	Out
	// InOut marks read-write access.
	InOut
	// Gatherv marks concurrent-group write access: Gatherv tasks on the
	// same handle are unordered among themselves (the submitter guarantees
	// they touch disjoint parts) but act as writers towards everyone else.
	Gatherv
)

// Handle identifies a unit of data tracked for dependency analysis. Handles
// must be created by Runtime.Handle and used only from the submitting
// goroutine.
type Handle struct {
	name       string
	lastWriter *task
	readers    []*task
	gatherers  []*task
	lastWorker int // worker that last completed a writing task on this handle
}

// TaskError is the failure of one task: the kernel class and label of the
// task whose kernel failed (or panicked), wrapping the underlying cause.
// Watchdogs and circuit breakers key retry policy on the class
// (faultinject.ClassOf reads it through the TaskClass method).
type TaskError struct {
	Class string
	Label string
	Err   error
}

func (e *TaskError) Error() string {
	return fmt.Sprintf("task %q (%s): %v", e.Label, e.Class, e.Err)
}

// Unwrap exposes the underlying cause (e.g. a faultinject.ErrInjected).
func (e *TaskError) Unwrap() error { return e.Err }

// TaskClass returns the kernel class of the failed task.
func (e *TaskError) TaskClass() string { return e.Class }

// Access pairs a handle with the mode a task uses it in.
type Access struct {
	H    *Handle
	Mode AccessMode
}

// Read, Write, ReadWrite and Gather are convenience constructors for Access.
func Read(h *Handle) Access      { return Access{h, In} }
func Write(h *Handle) Access     { return Access{h, Out} }
func ReadWrite(h *Handle) Access { return Access{h, InOut} }
func Gather(h *Handle) Access    { return Access{h, Gatherv} }

type task struct {
	id       int // submission order; FIFO tie-break within a priority level
	class    string
	label    string
	priority int
	fn       func()
	pending  int
	succs    []*task
	done     bool
	canceled bool      // a transitive predecessor failed; skip fn
	hints    []*Handle // non-Gatherv handles in declared order, locality hints
	writes   []*Handle // handles written (Out/InOut/Gatherv)
	home     int       // deque the task was placed on (-1 before placement)
	scope    *Scope    // failure-attribution scope (nil for runtime-level submits)
}

// TaskInfo describes one executed task in a captured graph.
type TaskInfo struct {
	ID       int
	Class    string // kernel class (e.g. "LAED4"), used for trace coloring
	Label    string
	Priority int
	Worker   int           // worker that executed the task (-1 if never executed)
	Home     int           // deque the task was placed on when it became ready
	Stolen   bool          // executed by a worker other than its home deque's owner
	Canceled bool          // skipped because a transitive predecessor failed
	Start    time.Duration // relative to runtime creation
	End      time.Duration
}

// Duration returns the task's measured execution time.
func (ti TaskInfo) Duration() time.Duration { return ti.End - ti.Start }

// Graph is the captured task DAG of a run: every submitted task plus every
// inferred dependency edge, with measured execution times. It feeds the
// trace renderers and the schedule replay simulator.
type Graph struct {
	Tasks []TaskInfo
	Edges [][2]int // (from, to) task IDs; from must complete before to starts
}

// taskHeap is a binary max-heap ordered by (priority desc, id asc): the pop
// order is numeric priority first, submission order within a priority level.
type taskHeap []*task

func heapLess(a, b *task) bool {
	if a.priority != b.priority {
		return a.priority > b.priority
	}
	return a.id < b.id
}

func (h *taskHeap) push(t *task) {
	*h = append(*h, t)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !heapLess((*h)[i], (*h)[p]) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *taskHeap) pop() *task {
	old := *h
	n := len(old)
	if n == 0 {
		return nil
	}
	top := old[0]
	old[0] = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	n--
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && heapLess(old[l], old[best]) {
			best = l
		}
		if r < n && heapLess(old[r], old[best]) {
			best = r
		}
		if best == i {
			break
		}
		old[i], old[best] = old[best], old[i]
		i = best
	}
	return top
}

// workerState is one worker's ready deque plus its wakeup channel. The deque
// mutex is only held for push/pop, never across task execution, so victims
// remain stealable while their owner runs a kernel.
type workerState struct {
	mu   sync.Mutex
	heap taskHeap
	wake chan struct{} // buffered(1): a pending token survives races with sleep
	rng  *rand.Rand    // victim selection; owned by the worker goroutine
}

// Runtime schedules tasks over a fixed pool of worker goroutines.
type Runtime struct {
	mu        sync.Mutex // dependency graph, counters, capture, error state
	workers   int
	ws        []*workerState
	idleMu    sync.Mutex // idle registry (leaf lock: taken with mu or ws.mu held)
	idle      []bool
	rr        int // round-robin placement cursor for hint-less tasks
	submitted int
	completed int
	steals    int64
	skipped   int64
	firstErr  error
	closed    bool
	capture   bool
	graph     *Graph
	start     time.Time
	wg        sync.WaitGroup
	done      *sync.Cond // on mu; broadcast when completed == submitted

	ctx     context.Context // nil unless WithContext
	ctxErr  error           // on mu; set once when ctx is cancelled
	aborted atomic.Bool     // fast-path mirror of ctxErr != nil
	stop    chan struct{}   // closed by Shutdown; ends the context watcher

	taskTimer func(class string, d time.Duration) // WithTaskTimer observer, may be nil
	progress  func()                              // WithProgress observer, may be nil

	retryPred func(class string, err error) bool // WithTaskRetry predicate, may be nil
	retries   atomic.Int64                       // kernels re-executed after a retryable failure
}

// Option configures a Runtime.
type Option func(*Runtime)

// WithGraphCapture records the task DAG and per-task timings, retrievable
// via Graph after Wait.
func WithGraphCapture() Option {
	return func(rt *Runtime) { rt.capture = true }
}

// WithContext binds the runtime to ctx: when ctx is cancelled (or its
// deadline expires), in-flight kernels finish, all remaining tasks are
// skipped and marked Canceled, and Wait returns ctx.Err().
func WithContext(ctx context.Context) Option {
	return func(rt *Runtime) { rt.ctx = ctx }
}

// WithTaskTimer registers an observer called once per executed task with the
// task's class and measured kernel wall time (skipped tasks are not
// reported). The observer runs on worker goroutines outside the runtime
// locks, so it must be concurrency-safe and cheap — one atomic add per task
// is the intended shape.
func WithTaskTimer(obs func(class string, d time.Duration)) Option {
	return func(rt *Runtime) { rt.taskTimer = obs }
}

// WithProgress registers an observer called once after every executed task's
// kernel finishes (skipped tasks are not reported): the heartbeat external
// watchdogs use to distinguish a solve that is making progress from one that
// is stalled. The observer runs on worker goroutines outside the runtime
// locks, so it must be concurrency-safe and cheap — storing a timestamp into
// an atomic is the intended shape.
func WithProgress(fn func()) Option {
	return func(rt *Runtime) { rt.progress = fn }
}

// WithTaskRetry registers a task re-execution predicate: when a task's
// kernel fails (error or panic) and pred(class, err) is true, the kernel is
// invoked once more in place — same worker, same closure — before the
// failure is declared. This is the task-granular self-healing path for
// detected silent data corruption (an ABFT checksum mismatch or violated
// merge invariant): the corrupted panel alone is recomputed instead of
// failing the whole solve. The submitter must only approve classes whose
// kernels are idempotent (they fully overwrite their outputs and do not
// transform state in place); the predicate runs on worker goroutines and
// must be concurrency-safe. Retries are counted in Retries.
func WithTaskRetry(pred func(class string, err error) bool) Option {
	return func(rt *Runtime) { rt.retryPred = pred }
}

// New creates a runtime with the given number of workers (<=0 selects
// GOMAXPROCS). Call Shutdown when done.
func New(workers int, opts ...Option) *Runtime {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rt := &Runtime{
		workers: workers,
		idle:    make([]bool, workers),
		start:   time.Now(),
	}
	rt.done = sync.NewCond(&rt.mu)
	for _, o := range opts {
		o(rt)
	}
	if rt.capture {
		rt.graph = &Graph{}
	}
	rt.ws = make([]*workerState, workers)
	for w := range rt.ws {
		rt.ws[w] = &workerState{
			wake: make(chan struct{}, 1),
			rng:  rand.New(rand.NewSource(int64(w)*2654435769 + 1)),
		}
	}
	rt.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go rt.worker(w)
	}
	if rt.ctx != nil {
		if err := rt.ctx.Err(); err != nil {
			// Already cancelled: guarantee synchronously that no task will
			// ever run, rather than racing the watcher against Submit.
			rt.ctxErr = err
			rt.aborted.Store(true)
		} else {
			rt.stop = make(chan struct{})
			rt.wg.Add(1)
			go rt.watchContext()
		}
	}
	return rt
}

// watchContext aborts the runtime when its context is cancelled; Shutdown
// closes stop so the watcher never outlives the runtime (no goroutine leak).
func (rt *Runtime) watchContext() {
	defer rt.wg.Done()
	select {
	case <-rt.ctx.Done():
		rt.abort(rt.ctx.Err())
	case <-rt.stop:
	}
}

// abort records the cancellation cause, wakes Wait, and wakes every worker
// so queued tasks drain (each is skipped, not run).
func (rt *Runtime) abort(cause error) {
	rt.mu.Lock()
	if rt.ctxErr == nil {
		rt.ctxErr = cause
		rt.aborted.Store(true)
		rt.done.Broadcast()
	}
	rt.mu.Unlock()
	for _, ws := range rt.ws {
		select {
		case ws.wake <- struct{}{}:
		default:
		}
	}
}

// Workers returns the size of the worker pool.
func (rt *Runtime) Workers() int { return rt.workers }

// Handle creates a named data handle for dependency tracking.
func (rt *Runtime) Handle(name string) *Handle {
	return &Handle{name: name, lastWorker: -1}
}

// Submit registers a task in sequential program order. class groups tasks of
// the same kernel for tracing; label distinguishes instances. The task may
// start running before Submit returns. Priority 0 is normal; tasks are
// scheduled by numeric priority (higher first), submission order within a
// priority level.
func (rt *Runtime) Submit(class, label string, fn func(), accesses ...Access) {
	rt.SubmitPrio(class, label, 0, fn, accesses...)
}

// SubmitPrio is Submit with an explicit priority.
func (rt *Runtime) SubmitPrio(class, label string, priority int, fn func(), accesses ...Access) {
	rt.submitPrio(nil, class, label, priority, fn, accesses...)
}

// Scope groups a subset of a runtime's tasks for per-group failure
// attribution: each scope records its own first error and skip count, so
// several independent task subgraphs (e.g. the matrices of a batched solve)
// can share one worker pool while one subgraph's failure cascade stays
// invisible to its batch-mates. Scopes only attribute — dependency analysis
// still runs over the whole runtime, so subgraphs must use disjoint handles
// to stay independent. Like Submit, scope submissions must come from the
// single submitting goroutine.
type Scope struct {
	rt       *Runtime
	firstErr error // on rt.mu; first *TaskError of a task in this scope
	skipped  int64 // on rt.mu; tasks in this scope skipped by a failure cascade
}

// NewScope creates a failure-attribution scope over this runtime.
func (rt *Runtime) NewScope() *Scope { return &Scope{rt: rt} }

// Handle creates a named data handle, as Runtime.Handle does. Handles are
// runtime-wide; scoping a handle's creator does not partition dependency
// analysis, it only attributes the submitting tasks.
func (s *Scope) Handle(name string) *Handle { return s.rt.Handle(name) }

// Workers returns the size of the underlying runtime's worker pool.
func (s *Scope) Workers() int { return s.rt.Workers() }

// Submit registers a task attributed to this scope.
func (s *Scope) Submit(class, label string, fn func(), accesses ...Access) {
	s.rt.submitPrio(s, class, label, 0, fn, accesses...)
}

// SubmitPrio is Submit with an explicit priority.
func (s *Scope) SubmitPrio(class, label string, priority int, fn func(), accesses ...Access) {
	s.rt.submitPrio(s, class, label, priority, fn, accesses...)
}

// Err returns the first error of a task in this scope, or nil. Call after
// Runtime.Wait; a runtime-level context cancellation is not a scope error
// (the caller sees it from Wait) — Err is specifically "did *this* subgraph
// fail".
func (s *Scope) Err() error {
	s.rt.mu.Lock()
	defer s.rt.mu.Unlock()
	return s.firstErr
}

// Skipped returns how many of this scope's tasks were skipped because a
// transitive predecessor failed or the runtime was cancelled.
func (s *Scope) Skipped() int64 {
	s.rt.mu.Lock()
	defer s.rt.mu.Unlock()
	return s.skipped
}

func (rt *Runtime) submitPrio(sc *Scope, class, label string, priority int, fn func(), accesses ...Access) {
	t := &task{class: class, label: label, priority: priority, fn: fn, home: -1, scope: sc}

	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		panic("quark: Submit after Shutdown")
	}
	t.id = rt.submitted
	rt.submitted++

	// deps are the unfinished predecessors (for scheduling); allDeps also
	// keeps already-finished ones so the captured graph carries every true
	// dependency edge, even when a predecessor completed before this Submit.
	deps := make(map[*task]struct{})
	allDeps := make(map[*task]struct{})
	addDep := func(d *task) {
		if d == nil {
			return
		}
		allDeps[d] = struct{}{}
		if !d.done {
			deps[d] = struct{}{}
		}
	}
	for _, ac := range accesses {
		h := ac.H
		switch ac.Mode {
		case In:
			addDep(h.lastWriter)
			for _, g := range h.gatherers {
				addDep(g)
			}
			h.readers = append(h.readers, t)
			t.hints = append(t.hints, h)
		case Gatherv:
			addDep(h.lastWriter)
			for _, r := range h.readers {
				addDep(r)
			}
			h.gatherers = append(h.gatherers, t)
			t.writes = append(t.writes, h)
			// Gatherv handles are merge-wide shared objects; they carry no
			// panel locality, so they are excluded from the hint scan.
		case Out, InOut:
			addDep(h.lastWriter)
			for _, r := range h.readers {
				addDep(r)
			}
			for _, g := range h.gatherers {
				addDep(g)
			}
			h.lastWriter = t
			h.readers = h.readers[:0:0]
			h.gatherers = h.gatherers[:0:0]
			t.hints = append(t.hints, h)
			t.writes = append(t.writes, h)
		default:
			panic(fmt.Sprintf("quark: unknown access mode %d", ac.Mode))
		}
	}
	t.pending = len(deps)
	for d := range deps {
		d.succs = append(d.succs, t)
	}
	// A dependency that already failed or was skipped cannot reach us through
	// succs (they were consumed at its completion); a still-pending one will
	// cancel us via finishLocked. Either way, propagate eagerly so tasks
	// submitted after a failure are skipped too.
	for d := range allDeps {
		if d.canceled {
			t.canceled = true
		}
	}
	if rt.ctxErr != nil {
		// Cancelled runtime: never start new work. Tasks with unfinished
		// predecessors are cancelled through the skip cascade instead.
		t.canceled = true
	}

	if rt.capture {
		rt.graph.Tasks = append(rt.graph.Tasks, TaskInfo{
			ID: t.id, Class: class, Label: label, Priority: priority,
			Worker: -1, Home: -1,
		})
		for d := range allDeps {
			rt.graph.Edges = append(rt.graph.Edges, [2]int{d.id, t.id})
		}
	}

	if t.pending == 0 {
		if t.canceled {
			rt.skipLocked(t)
		} else {
			rt.enqueueLocked(t, -1)
		}
	}
}

// placeLocked picks a deque for a ready task: the most recent writer-worker
// among the task's declared handles (scanned from the last declared access
// backwards, skipping Gatherv accesses — the paper's panel handles come last
// in core's access lists, so UpdateVect lands where ComputeVect warmed the
// cache), else fallback (the worker that completed the last dependency), else
// round-robin.
func (rt *Runtime) placeLocked(t *task, fallback int) int {
	for i := len(t.hints) - 1; i >= 0; i-- {
		if w := t.hints[i].lastWorker; w >= 0 {
			return w
		}
	}
	if fallback >= 0 {
		return fallback
	}
	w := rt.rr % rt.workers
	rt.rr++
	return w
}

// enqueueLocked places a ready task on a worker deque and wakes a sleeper.
func (rt *Runtime) enqueueLocked(t *task, fallback int) {
	w := rt.placeLocked(t, fallback)
	t.home = w
	t.hints = nil
	if rt.capture {
		rt.graph.Tasks[t.id].Home = w
	}
	ws := rt.ws[w]
	ws.mu.Lock()
	ws.heap.push(t)
	ws.mu.Unlock()
	rt.wakeFor(w)
}

// wakeFor wakes the owner of deque w if it sleeps, else any one sleeping
// worker (which will steal). At most one worker is woken per enqueue; busy
// workers pull further tasks themselves when they finish their current one.
func (rt *Runtime) wakeFor(w int) {
	target := -1
	rt.idleMu.Lock()
	if rt.idle[w] {
		target = w
	} else {
		for i, id := range rt.idle {
			if id {
				target = i
				break
			}
		}
	}
	if target >= 0 {
		rt.idle[target] = false
	}
	rt.idleMu.Unlock()
	if target >= 0 {
		select {
		case rt.ws[target].wake <- struct{}{}:
		default:
		}
	}
}

func (rt *Runtime) setIdle(id int, v bool) {
	rt.idleMu.Lock()
	rt.idle[id] = v
	rt.idleMu.Unlock()
}

func (rt *Runtime) isClosed() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.closed
}

// findWork pops the worker's own deque, then steals the highest-priority
// task from the other deques, scanned once in a randomized rotation.
func (rt *Runtime) findWork(id int) *task {
	me := rt.ws[id]
	me.mu.Lock()
	t := me.heap.pop()
	me.mu.Unlock()
	if t != nil || rt.workers == 1 {
		return t
	}
	off := me.rng.Intn(rt.workers)
	for i := 0; i < rt.workers; i++ {
		v := (id + off + i) % rt.workers
		if v == id {
			continue
		}
		vs := rt.ws[v]
		vs.mu.Lock()
		t = vs.heap.pop()
		vs.mu.Unlock()
		if t != nil {
			return t
		}
	}
	return nil
}

func (rt *Runtime) worker(id int) {
	defer rt.wg.Done()
	me := rt.ws[id]
	for {
		t := rt.findWork(id)
		if t == nil {
			// Register idle before the re-scan: an enqueuer either sees the
			// idle flag (and sends a wake token) or enqueued before the flag
			// was set (and the re-scan finds the task). Either way no task is
			// stranded with this worker asleep.
			rt.setIdle(id, true)
			if t = rt.findWork(id); t == nil {
				if rt.isClosed() {
					// Final scan after observing closed: Submits by the
					// master happen-before Shutdown, so anything enqueued
					// before close is visible now. Later successor enqueues
					// are handled by the enqueuing (still-running) worker.
					if t = rt.findWork(id); t == nil {
						rt.setIdle(id, false)
						return
					}
				} else {
					<-me.wake
					rt.setIdle(id, false)
					continue
				}
			}
			rt.setIdle(id, false)
		}
		rt.run(id, t)
	}
}

func (rt *Runtime) run(id int, t *task) {
	if rt.aborted.Load() {
		// The context was cancelled after this task became ready: skip its
		// kernel and cascade the cancellation to its successors.
		rt.mu.Lock()
		rt.skipLocked(t)
		rt.mu.Unlock()
		return
	}
	start := time.Since(rt.start)
	runKernel := func() error {
		if faultinject.Active() {
			// Probes are bounded by the runtime's context (when it has one) so
			// an injected delay can never outlive a cancelled solve.
			fctx := rt.ctx
			if fctx == nil {
				fctx = context.Background()
			}
			return safeCall(func() {
				if ferr := faultinject.FireCtx(fctx, t.class); ferr != nil {
					panic(ferr)
				}
				t.fn()
			})
		}
		return safeCall(t.fn)
	}
	err := runKernel()
	if err != nil && rt.retryPred != nil && !rt.aborted.Load() && rt.retryPred(t.class, err) {
		// Task-granular self-healing: re-execute the kernel once in place.
		// The predicate gates this to idempotent classes failing with
		// detected-corruption errors, so the recompute overwrites the
		// corrupted output instead of cascading the failure.
		rt.retries.Add(1)
		err = runKernel()
	}
	end := time.Since(rt.start)
	if rt.taskTimer != nil {
		rt.taskTimer(t.class, end-start)
	}
	if rt.progress != nil {
		rt.progress()
	}

	rt.mu.Lock()
	t.done = true
	if err != nil {
		// Reusing canceled as "failed": both mean "successors must be
		// skipped", including ones submitted after this completion.
		t.canceled = true
		if rt.firstErr == nil {
			rt.firstErr = &TaskError{Class: t.class, Label: t.label, Err: err}
		}
		if t.scope != nil && t.scope.firstErr == nil {
			t.scope.firstErr = &TaskError{Class: t.class, Label: t.label, Err: err}
		}
	}
	for _, h := range t.writes {
		h.lastWorker = id
	}
	if t.home != id {
		rt.steals++
	}
	if rt.capture {
		ti := &rt.graph.Tasks[t.id]
		ti.Worker = id
		ti.Stolen = t.home != id
		ti.Start = start
		ti.End = end
	}
	rt.completed++
	rt.finishLocked(t, id, err != nil)
	if rt.completed == rt.submitted {
		rt.done.Broadcast()
	}
	rt.mu.Unlock()
}

// skipLocked completes a canceled task without running it and cascades the
// cancellation to its successors.
func (rt *Runtime) skipLocked(t *task) {
	t.done = true
	rt.completed++
	rt.skipped++
	if t.scope != nil {
		t.scope.skipped++
	}
	if rt.capture {
		rt.graph.Tasks[t.id].Canceled = true
	}
	rt.finishLocked(t, -1, true)
	if rt.completed == rt.submitted {
		rt.done.Broadcast()
	}
}

// finishLocked propagates a completion to the task's successors: failed (or
// skipped) tasks mark their successors canceled; successors whose last
// dependency resolved are either enqueued or skipped in turn. Skipping is
// iterative so a long canceled chain cannot overflow the stack.
func (rt *Runtime) finishLocked(t *task, worker int, failed bool) {
	type item struct {
		t      *task
		failed bool
	}
	stack := []item{{t, failed}}
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range it.t.succs {
			if it.failed {
				s.canceled = true
			}
			s.pending--
			if s.pending == 0 {
				if s.canceled {
					s.done = true
					rt.completed++
					rt.skipped++
					if s.scope != nil {
						s.scope.skipped++
					}
					if rt.capture {
						rt.graph.Tasks[s.id].Canceled = true
					}
					stack = append(stack, item{s, true})
				} else {
					rt.enqueueLocked(s, worker)
				}
			}
		}
		it.t.succs = nil
		it.t.writes = nil
	}
}

func safeCall(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = e
			} else {
				err = fmt.Errorf("panic: %v", r)
			}
		}
	}()
	fn()
	return nil
}

// Wait blocks until every submitted task has completed or been skipped and
// returns the root-cause error, if any: transitive successors of a failed
// task are skipped rather than run, so secondary failures (kernels operating
// on half-initialized state) never occur and never mask the first error.
//
// If the runtime's context is cancelled, Wait returns promptly with
// ctx.Err() without waiting for the DAG to drain (a task failure observed
// before the cancellation still takes precedence as the root cause); the
// remaining tasks are skipped asynchronously and reclaimed by Shutdown.
func (rt *Runtime) Wait() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for rt.completed < rt.submitted && rt.ctxErr == nil {
		rt.done.Wait()
	}
	if rt.firstErr != nil {
		return rt.firstErr
	}
	return rt.ctxErr
}

// Steals returns how many tasks were executed by a worker other than the one
// whose deque they were placed on.
func (rt *Runtime) Steals() int64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.steals
}

// Skipped returns how many tasks were skipped because a transitive
// predecessor failed.
func (rt *Runtime) Skipped() int64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.skipped
}

// Retries returns how many kernels were re-executed in place by the
// WithTaskRetry self-healing policy.
func (rt *Runtime) Retries() int64 { return rt.retries.Load() }

// Graph returns the captured DAG. Call after Wait; requires
// WithGraphCapture.
func (rt *Runtime) Graph() *Graph {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.graph
}

// Shutdown drains remaining tasks and stops the workers. Once the workers
// have joined it also enforces the scratch pool's retention cap: runtime
// shutdown is the solve-completion boundary, so transient mid-solve
// overshoot in the freelists never outlives the solve that caused it.
func (rt *Runtime) Shutdown() {
	rt.mu.Lock()
	already := rt.closed
	rt.closed = true
	rt.mu.Unlock()
	if !already && rt.stop != nil {
		close(rt.stop)
	}
	for _, ws := range rt.ws {
		select {
		case ws.wake <- struct{}{}:
		default:
		}
	}
	rt.wg.Wait()
	if !already {
		pool.TrimToCap()
	}
}
