// Package quark implements a QUARK-style dynamic task runtime: a master
// goroutine submits tasks in sequential program order, declaring how each
// task accesses shared data through typed handles (In / Out / InOut /
// Gatherv); the runtime infers dependencies from those declarations and
// executes tasks out of order on a pool of worker goroutines as their
// dependencies resolve.
//
// The Gatherv mode reproduces the extension the paper adds to QUARK: a group
// of tasks that all write disjoint parts of one large object (e.g. panels of
// the eigenvector matrix) may run concurrently with each other, while any
// ordinary reader or writer submitted afterwards waits for the whole group.
// This keeps the number of declared dependencies per task constant instead
// of Θ(n/nb).
package quark

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// AccessMode declares how a task uses a handle.
type AccessMode int

const (
	// In marks read-only access.
	In AccessMode = iota
	// Out marks write-only access.
	Out
	// InOut marks read-write access.
	InOut
	// Gatherv marks concurrent-group write access: Gatherv tasks on the
	// same handle are unordered among themselves (the submitter guarantees
	// they touch disjoint parts) but act as writers towards everyone else.
	Gatherv
)

// Handle identifies a unit of data tracked for dependency analysis. Handles
// must be created by Runtime.Handle and used only from the submitting
// goroutine.
type Handle struct {
	name       string
	lastWriter *task
	readers    []*task
	gatherers  []*task
}

// Access pairs a handle with the mode a task uses it in.
type Access struct {
	H    *Handle
	Mode AccessMode
}

// Read, Write, ReadWrite and Gather are convenience constructors for Access.
func Read(h *Handle) Access      { return Access{h, In} }
func Write(h *Handle) Access     { return Access{h, Out} }
func ReadWrite(h *Handle) Access { return Access{h, InOut} }
func Gather(h *Handle) Access    { return Access{h, Gatherv} }

type task struct {
	id       int
	class    string
	label    string
	priority int
	fn       func()
	pending  int
	succs    []*task
	done     bool
}

// TaskInfo describes one executed task in a captured graph.
type TaskInfo struct {
	ID       int
	Class    string // kernel class (e.g. "LAED4"), used for trace coloring
	Label    string
	Priority int
	Worker   int
	Start    time.Duration // relative to runtime creation
	End      time.Duration
}

// Duration returns the task's measured execution time.
func (ti TaskInfo) Duration() time.Duration { return ti.End - ti.Start }

// Graph is the captured task DAG of a run: every submitted task plus every
// inferred dependency edge, with measured execution times. It feeds the
// trace renderers and the schedule replay simulator.
type Graph struct {
	Tasks []TaskInfo
	Edges [][2]int // (from, to) task IDs; from must complete before to starts
}

// Runtime schedules tasks over a fixed pool of worker goroutines.
type Runtime struct {
	mu        sync.Mutex
	cond      *sync.Cond
	workers   int
	queue     []*task // ready queue: FIFO with priority-to-front
	submitted int
	completed int
	firstErr  error
	closed    bool
	capture   bool
	graph     *Graph
	start     time.Time
	wg        sync.WaitGroup
}

// Option configures a Runtime.
type Option func(*Runtime)

// WithGraphCapture records the task DAG and per-task timings, retrievable
// via Graph after Wait.
func WithGraphCapture() Option {
	return func(rt *Runtime) { rt.capture = true }
}

// New creates a runtime with the given number of workers (<=0 selects
// GOMAXPROCS). Call Shutdown when done.
func New(workers int, opts ...Option) *Runtime {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rt := &Runtime{workers: workers, start: time.Now()}
	rt.cond = sync.NewCond(&rt.mu)
	for _, o := range opts {
		o(rt)
	}
	if rt.capture {
		rt.graph = &Graph{}
	}
	rt.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go rt.worker(w)
	}
	return rt
}

// Workers returns the size of the worker pool.
func (rt *Runtime) Workers() int { return rt.workers }

// Handle creates a named data handle for dependency tracking.
func (rt *Runtime) Handle(name string) *Handle { return &Handle{name: name} }

// Submit registers a task in sequential program order. class groups tasks of
// the same kernel for tracing; label distinguishes instances. The task may
// start running before Submit returns. Priority 0 is normal; higher
// priorities jump the ready queue.
func (rt *Runtime) Submit(class, label string, fn func(), accesses ...Access) {
	rt.SubmitPrio(class, label, 0, fn, accesses...)
}

// SubmitPrio is Submit with an explicit priority.
func (rt *Runtime) SubmitPrio(class, label string, priority int, fn func(), accesses ...Access) {
	t := &task{class: class, label: label, priority: priority, fn: fn}

	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		panic("quark: Submit after Shutdown")
	}
	t.id = rt.submitted
	rt.submitted++

	// deps are the unfinished predecessors (for scheduling); allDeps also
	// keeps already-finished ones so the captured graph carries every true
	// dependency edge, even when a predecessor completed before this Submit.
	deps := make(map[*task]struct{})
	allDeps := make(map[*task]struct{})
	addDep := func(d *task) {
		if d == nil {
			return
		}
		allDeps[d] = struct{}{}
		if !d.done {
			deps[d] = struct{}{}
		}
	}
	for _, ac := range accesses {
		h := ac.H
		switch ac.Mode {
		case In:
			addDep(h.lastWriter)
			for _, g := range h.gatherers {
				addDep(g)
			}
			h.readers = append(h.readers, t)
		case Gatherv:
			addDep(h.lastWriter)
			for _, r := range h.readers {
				addDep(r)
			}
			h.gatherers = append(h.gatherers, t)
		case Out, InOut:
			addDep(h.lastWriter)
			for _, r := range h.readers {
				addDep(r)
			}
			for _, g := range h.gatherers {
				addDep(g)
			}
			h.lastWriter = t
			h.readers = h.readers[:0:0]
			h.gatherers = h.gatherers[:0:0]
		default:
			panic(fmt.Sprintf("quark: unknown access mode %d", ac.Mode))
		}
	}
	t.pending = len(deps)
	for d := range deps {
		d.succs = append(d.succs, t)
	}

	if rt.capture {
		rt.graph.Tasks = append(rt.graph.Tasks, TaskInfo{
			ID: t.id, Class: class, Label: label, Priority: priority, Worker: -1,
		})
		for d := range allDeps {
			rt.graph.Edges = append(rt.graph.Edges, [2]int{d.id, t.id})
		}
	}

	if t.pending == 0 {
		rt.enqueueLocked(t)
	}
}

func (rt *Runtime) enqueueLocked(t *task) {
	if t.priority > 0 {
		rt.queue = append([]*task{t}, rt.queue...)
	} else {
		rt.queue = append(rt.queue, t)
	}
	rt.cond.Broadcast()
}

func (rt *Runtime) worker(id int) {
	defer rt.wg.Done()
	for {
		rt.mu.Lock()
		for len(rt.queue) == 0 && !rt.closed {
			rt.cond.Wait()
		}
		if len(rt.queue) == 0 && rt.closed {
			rt.mu.Unlock()
			return
		}
		t := rt.queue[0]
		rt.queue = rt.queue[1:]
		rt.mu.Unlock()

		start := time.Since(rt.start)
		err := safeCall(t.fn)
		end := time.Since(rt.start)

		rt.mu.Lock()
		t.done = true
		if err != nil && rt.firstErr == nil {
			rt.firstErr = fmt.Errorf("task %q (%s): %w", t.label, t.class, err)
		}
		if rt.capture {
			ti := &rt.graph.Tasks[t.id]
			ti.Worker = id
			ti.Start = start
			ti.End = end
		}
		for _, s := range t.succs {
			s.pending--
			if s.pending == 0 {
				rt.enqueueLocked(s)
			}
		}
		t.succs = nil
		rt.completed++
		rt.cond.Broadcast()
		rt.mu.Unlock()
	}
}

func safeCall(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = e
			} else {
				err = fmt.Errorf("panic: %v", r)
			}
		}
	}()
	fn()
	return nil
}

// Wait blocks until every submitted task has completed and returns the first
// task error, if any. Tasks downstream of a failed task still run (kernels
// are total functions); the error is surfaced here.
func (rt *Runtime) Wait() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for rt.completed < rt.submitted {
		rt.cond.Wait()
	}
	return rt.firstErr
}

// Graph returns the captured DAG. Call after Wait; requires
// WithGraphCapture.
func (rt *Runtime) Graph() *Graph {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.graph
}

// Shutdown drains remaining tasks and stops the workers.
func (rt *Runtime) Shutdown() {
	rt.mu.Lock()
	rt.closed = true
	rt.cond.Broadcast()
	rt.mu.Unlock()
	rt.wg.Wait()
}
