package quark

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestPreCancelledContextRunsNothing: a runtime bound to an already-cancelled
// context must never execute a task — Wait returns ctx.Err() and every
// submitted task is marked Canceled.
func TestPreCancelledContextRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rt := New(4, WithContext(ctx), WithGraphCapture())
	defer rt.Shutdown()

	var ran atomic.Int64
	h := rt.Handle("h")
	for i := 0; i < 50; i++ {
		rt.Submit("T", "t", func() { ran.Add(1) }, ReadWrite(h))
	}
	err := rt.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait: %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 0 {
		t.Errorf("%d tasks ran on a pre-cancelled runtime", got)
	}
	rt.Shutdown()
	for _, ti := range rt.Graph().Tasks {
		if !ti.Canceled {
			t.Errorf("task %d not marked Canceled", ti.ID)
		}
		if ti.Worker >= 0 {
			t.Errorf("task %d executed on worker %d", ti.ID, ti.Worker)
		}
	}
}

// TestMidRunCancellationSkipsPending: cancelling while a task runs lets that
// kernel finish, skips everything still pending, and wakes Wait with
// ctx.Err() instead of draining the DAG first.
func TestMidRunCancellationSkipsPending(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	rt := New(2, WithContext(ctx), WithGraphCapture())
	defer rt.Shutdown()

	block := make(chan struct{})
	started := make(chan struct{})
	var ran atomic.Int64
	h := rt.Handle("h")
	rt.Submit("Head", "head", func() {
		close(started)
		<-block
		ran.Add(1)
	}, ReadWrite(h))
	for i := 0; i < 100; i++ {
		rt.Submit("Chain", "link", func() { ran.Add(1) }, ReadWrite(h))
	}

	<-started
	cancel()
	// Wait must return even though the head task is still blocked inside its
	// kernel and 100 successors are pending.
	waitDone := make(chan error, 1)
	go func() { waitDone <- rt.Wait() }()
	select {
	case err := <-waitDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Wait: %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait did not return after cancellation")
	}
	close(block) // let the in-flight kernel finish; Shutdown drains the rest
	rt.Shutdown()
	if got := ran.Load(); got != 1 {
		t.Errorf("%d tasks ran, want only the in-flight head", got)
	}
	canceled := 0
	for _, ti := range rt.Graph().Tasks {
		if ti.Canceled {
			canceled++
		}
	}
	if canceled != 100 {
		t.Errorf("%d tasks marked Canceled, want all 100 pending", canceled)
	}
}

// TestDeadlineAborts: a deadline expiry behaves like a cancellation and
// reports context.DeadlineExceeded.
func TestDeadlineAborts(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	rt := New(2, WithContext(ctx))
	defer rt.Shutdown()

	h := rt.Handle("h")
	for i := 0; i < 1000; i++ {
		rt.Submit("Slow", "slow", func() { time.Sleep(time.Millisecond) }, ReadWrite(h))
	}
	err := rt.Wait()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait: %v, want context.DeadlineExceeded", err)
	}
}

// TestTaskFailureBeatsLateCancellation: a genuine task failure observed
// before the cancellation stays the root cause reported by Wait.
func TestTaskFailureBeatsLateCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	rt := New(2, WithContext(ctx))
	defer rt.Shutdown()

	h := rt.Handle("h")
	rt.Submit("Boom", "boom", func() { panic("kernel bug") }, ReadWrite(h))
	if err := rt.Wait(); err == nil || errors.Is(err, context.Canceled) {
		t.Fatalf("Wait: %v, want the task failure", err)
	}
	cancel()
	if err := rt.Wait(); errors.Is(err, context.Canceled) {
		t.Errorf("late cancellation masked the root-cause failure: %v", err)
	}
}

// TestCancelledRuntimeSubmitSkips: tasks submitted after the cancellation
// are skipped immediately, keeping Submit safe for a master mid-submission.
func TestCancelledRuntimeSubmitSkips(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	rt := New(2, WithContext(ctx))
	defer rt.Shutdown()
	cancel()
	// The watcher goroutine observes the cancel asynchronously; an empty
	// runtime's Wait returns nil until then, so poll for the abort.
	deadline := time.After(2 * time.Second)
	for {
		if err := rt.Wait(); errors.Is(err, context.Canceled) {
			break
		}
		select {
		case <-deadline:
			t.Fatal("cancellation never observed")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	var ran atomic.Int64
	rt.Submit("Late", "late", func() { ran.Add(1) })
	rt.Shutdown()
	if ran.Load() != 0 {
		t.Error("task submitted after cancellation ran")
	}
}
