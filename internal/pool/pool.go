// Package pool recycles float64 scratch slices through size-classed
// sync.Pools. The D&C solver allocates per-merge scratch (deflation z
// vectors, Gu stabilization products, compressed eigenvector workspaces,
// GEMM pack buffers) on every merge of every solve; recycling them keeps
// the hot path allocation-free after warmup instead of churning the GC.
//
// Slices are pooled by power-of-two capacity class. Get returns a slice
// with unspecified contents — callers must fully overwrite what they read.
//
// The pool carries an atomic byte accountant: Get charges the size-class
// capacity of the returned slice and Put credits it back, so InUseBytes
// reports the pooled workspace currently checked out process-wide. The
// solve service (eigen.Server) budgets admission against this accountant.
// Callers that deliberately leak a pooled slice to the GC (e.g. the
// workspace of a failed merge, which may alias live data) must report it
// via Forget so the accountant matches reality. The accounting assumes the
// package contract: only slices obtained from Get are handed to Put.
package pool

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// maxClass bounds pooled capacities at 2^maxClass floats (1 GiB); larger
// requests fall through to plain allocation.
const maxClass = 27

var classes [maxClass + 1]sync.Pool

// inUse is the accountant: bytes of size-class capacity checked out by Get
// and not yet returned by Put or written off by Forget.
var inUse atomic.Int64

// Get returns a float64 slice of length n with unspecified contents.
func Get(n int) []float64 {
	if n <= 0 {
		return nil
	}
	c := bits.Len(uint(n - 1))
	if c > maxClass {
		return make([]float64, n)
	}
	inUse.Add(8 << c)
	if v := classes[c].Get(); v != nil {
		return v.([]float64)[:n]
	}
	return make([]float64, n, 1<<c)
}

// Put recycles a slice previously returned by Get. Slices whose capacity is
// not an exact power of two (not allocated by Get) are dropped for the GC.
// The caller must not retain any reference to s.
func Put(s []float64) {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	cls := bits.Len(uint(c - 1))
	if cls > maxClass {
		return
	}
	inUse.Add(-(8 << cls))
	classes[cls].Put(s[:c])
}

// InUseBytes returns the pooled bytes currently checked out: everything Get
// charged minus everything Put and Forget credited back.
func InUseBytes() int64 { return inUse.Load() }

// Forget credits bytes back to the accountant without recycling the backing
// memory. Callers that intentionally abandon pooled slices to the GC (failed
// merges whose buffers may alias live data) report the accounted bytes here
// so the leak does not show up as permanently checked-out workspace.
func Forget(bytes int64) { inUse.Add(-bytes) }

// ClassBytes returns the bytes the accountant charges for Get(n): the
// size-class capacity in bytes, or 0 when the request falls through to
// plain (unaccounted) allocation. It is the unit admission-control
// estimates are built from.
func ClassBytes(n int) int64 {
	if n <= 0 {
		return 0
	}
	c := bits.Len(uint(n - 1))
	if c > maxClass {
		return 0
	}
	return 8 << c
}

// AccountedBytes returns what the accountant charged for a slice returned
// by Get (its size-class capacity in bytes), 0 for slices the pool does not
// track. Leak sweeps use it to size their Forget.
func AccountedBytes(s []float64) int64 {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return 0
	}
	if bits.Len(uint(c-1)) > maxClass {
		return 0
	}
	return int64(c) * 8
}
