// Package pool recycles float64 scratch slices through size-classed
// sync.Pools. The D&C solver allocates per-merge scratch (deflation z
// vectors, Gu stabilization products, compressed eigenvector workspaces,
// GEMM pack buffers) on every merge of every solve; recycling them keeps
// the hot path allocation-free after warmup instead of churning the GC.
//
// Slices are pooled by power-of-two capacity class. Get returns a slice
// with unspecified contents — callers must fully overwrite what they read.
package pool

import (
	"math/bits"
	"sync"
)

// maxClass bounds pooled capacities at 2^maxClass floats (1 GiB); larger
// requests fall through to plain allocation.
const maxClass = 27

var classes [maxClass + 1]sync.Pool

// Get returns a float64 slice of length n with unspecified contents.
func Get(n int) []float64 {
	if n <= 0 {
		return nil
	}
	c := bits.Len(uint(n - 1))
	if c > maxClass {
		return make([]float64, n)
	}
	if v := classes[c].Get(); v != nil {
		return v.([]float64)[:n]
	}
	return make([]float64, n, 1<<c)
}

// Put recycles a slice previously returned by Get. Slices whose capacity is
// not an exact power of two (not allocated by Get) are dropped for the GC.
// The caller must not retain any reference to s.
func Put(s []float64) {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	cls := bits.Len(uint(c - 1))
	if cls > maxClass {
		return
	}
	classes[cls].Put(s[:c])
}
