// Package pool recycles float64 scratch slices through size-classed,
// sharded freelists. The D&C solver allocates per-merge scratch (deflation
// z vectors, Gu stabilization products, compressed eigenvector workspaces,
// GEMM pack buffers) on every merge of every solve; recycling them keeps
// the hot path allocation-free after warmup instead of churning the GC.
//
// Slices are pooled by power-of-two capacity class. Get returns a slice
// with unspecified contents — callers must fully overwrite what they read.
//
// Unlike the earlier sync.Pool implementation, retention is bounded and
// explicit rather than at the GC's whim: each size class keeps at most a
// few idle buffers per shard, idle bytes are tracked exactly
// (RetainedBytes), Put stops retaining beyond a hard ceiling derived from
// the configurable retain limit, and Trim/TrimAll/TrimToCap release idle
// memory at well-defined points (solve completion via the task runtime's
// shutdown, server idle periods) instead of leaving it to pool victim
// caches. Shards give workers goroutine-affine local caches: a goroutine
// hashes to a home shard by its stack address, so a worker that keeps
// solving reuses the buffers it just warmed without bouncing them through
// a global lock, and only falls back to stealing from sibling shards on a
// local miss.
//
// The pool carries an atomic byte accountant: Get charges the size-class
// capacity of the returned slice and Put credits it back, so InUseBytes
// reports the pooled workspace currently checked out process-wide. The
// solve service (eigen.Server) budgets admission against this accountant.
// Callers that deliberately leak a pooled slice to the GC (e.g. the
// workspace of a failed merge, which may alias live data) must report it
// via Forget so the accountant matches reality.
//
// The accounting assumes the package contract: only slices obtained from
// Get are handed to Put, exactly once. Violations are defended in depth:
// a credit that would drive the accountant negative is clamped to zero and
// counted (Counters().ForeignPuts), an immediate double Put of a buffer
// already idle in its home shard is detected and counted
// (Counters().DoublePuts), and the pooldebug build tag enables a full
// ownership map that panics on any foreign or double Put.
package pool

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"unsafe"
)

// maxClass bounds pooled capacities at 2^maxClass floats (1 GiB); larger
// requests fall through to plain allocation.
const maxClass = 27

const (
	// numShards is the number of goroutine-affine freelist stripes
	// (power of two). Workers hash to a home shard, so concurrent solves
	// mostly hit disjoint locks.
	numShards = 8
	// slotsPerClass bounds the idle buffers one shard retains per size
	// class; across shards a class retains at most
	// numShards*slotsPerClass buffers regardless of the byte limit.
	slotsPerClass = 4
)

// defaultRetainLimit is the default steady-state cap on idle pooled bytes
// (see SetRetainLimit). Put stops retaining at twice this value; trim
// points bring retention back under it.
const defaultRetainLimit = 512 << 20

type classList struct {
	bufs [slotsPerClass][]float64
	n    int
}

type shard struct {
	mu      sync.Mutex
	classes [maxClass + 1]classList
	_       [64]byte // keep shards off each other's cache lines
}

var shards [numShards]shard

// inUse is the accountant: bytes of size-class capacity checked out by Get
// and not yet returned by Put or written off by Forget. It is the single
// atomic the admission budget reads.
var inUse atomic.Int64

// retained is the idle bytes currently parked in the freelists (exact:
// updated under the owning shard's lock as buffers enter and leave).
var retained atomic.Int64

// retainLimit is the target ceiling for retained bytes. Put refuses to
// retain beyond 2*retainLimit (transient mid-solve overshoot is allowed up
// to that hard ceiling); TrimToCap — wired into task-runtime shutdown —
// brings retention back to the limit, and idle servers trim to zero.
var retainLimit atomic.Int64

func init() { retainLimit.Store(defaultRetainLimit) }

// counters are diagnostic tallies surfaced by Counters; they are separate
// atomics so the accountant itself stays a single counter.
var (
	cGets        atomic.Int64
	cHits        atomic.Int64
	cSteals      atomic.Int64
	cPuts        atomic.Int64
	cDroppedCap  atomic.Int64
	cForeignPuts atomic.Int64
	cDoublePuts  atomic.Int64
	cTrimmed     atomic.Int64
)

// stripeOf picks the calling goroutine's home shard by hashing its stack
// address: goroutine stacks are distinct memory blocks, so the high bits of
// a local's address are a stable, allocation-free goroutine fingerprint
// (stable until the stack moves, which is rare and only re-homes the
// goroutine to another valid shard).
func stripeOf() int {
	var marker byte
	return int(uintptr(unsafe.Pointer(&marker))>>14) & (numShards - 1)
}

// Get returns a float64 slice of length n with unspecified contents.
func Get(n int) []float64 {
	if n <= 0 {
		return nil
	}
	c := bits.Len(uint(n - 1))
	if c > maxClass {
		return make([]float64, n)
	}
	inUse.Add(8 << c)
	cGets.Add(1)
	home := stripeOf()
	if s := shards[home].pop(c); s != nil {
		cHits.Add(1)
		debugOnGet(s)
		return s[:n]
	}
	// Local miss: steal from sibling shards before paying an allocation.
	for i := 1; i < numShards; i++ {
		if s := shards[(home+i)&(numShards-1)].pop(c); s != nil {
			cSteals.Add(1)
			debugOnGet(s)
			return s[:n]
		}
	}
	s := make([]float64, n, 1<<c)
	debugOnGet(s[:cap(s)])
	return s
}

func (sh *shard) pop(c int) []float64 {
	sh.mu.Lock()
	cl := &sh.classes[c]
	if cl.n == 0 {
		sh.mu.Unlock()
		return nil
	}
	cl.n--
	s := cl.bufs[cl.n]
	cl.bufs[cl.n] = nil
	sh.mu.Unlock()
	retained.Add(-int64(8) << c)
	return s
}

// Put recycles a slice previously returned by Get. Slices whose capacity is
// not an exact power of two (not allocated by Get) are dropped for the GC.
// The caller must not retain any reference to s.
func Put(s []float64) {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	cls := bits.Len(uint(c - 1))
	if cls > maxClass {
		return
	}
	s = s[:c]
	home := stripeOf()
	// Immediate double Put lands in the same home shard while the first
	// copy is still idle there: detect it before corrupting the accountant
	// a second time.
	if shards[home].contains(cls, s) {
		cDoublePuts.Add(1)
		debugOnDoublePut(s)
		return
	}
	debugOnPut(s)
	bytes := int64(8) << cls
	// Credit the accountant with a clamp at zero: every legitimate Put
	// matches a prior Get charge, so a credit that would go negative proves
	// a foreign or double Put — count it and drop the suspect buffer (its
	// real owner may still be using it).
	for {
		cur := inUse.Load()
		if cur < bytes {
			if inUse.CompareAndSwap(cur, 0) {
				cForeignPuts.Add(1)
				return
			}
			continue
		}
		if inUse.CompareAndSwap(cur, cur-bytes) {
			break
		}
	}
	cPuts.Add(1)
	// Retain only within the hard ceiling; beyond it the buffer goes to
	// the GC (the checkout itself was already credited above).
	if retained.Load()+bytes > 2*retainLimit.Load() {
		cDroppedCap.Add(1)
		return
	}
	if !shards[home].push(cls, s) {
		cDroppedCap.Add(1)
	}
}

func (sh *shard) contains(c int, s []float64) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cl := &sh.classes[c]
	for i := 0; i < cl.n; i++ {
		if &cl.bufs[i][0] == &s[0] {
			return true
		}
	}
	return false
}

func (sh *shard) push(c int, s []float64) bool {
	sh.mu.Lock()
	cl := &sh.classes[c]
	if cl.n == slotsPerClass {
		sh.mu.Unlock()
		return false
	}
	cl.bufs[cl.n] = s
	cl.n++
	sh.mu.Unlock()
	retained.Add(int64(8) << c)
	return true
}

// InUseBytes returns the pooled bytes currently checked out: everything Get
// charged minus everything Put and Forget credited back.
func InUseBytes() int64 { return inUse.Load() }

// RetainedBytes returns the idle bytes currently parked in the freelists,
// waiting for reuse. InUseBytes + RetainedBytes is the pool's total claim
// on the heap.
func RetainedBytes() int64 { return retained.Load() }

// SetRetainLimit sets the target ceiling for idle pooled bytes and returns
// the previous value. Put stops retaining at twice the limit; TrimToCap
// enforces the limit itself. A non-positive limit disables retention
// growth entirely (everything Put is dropped once current retention
// reaches zero).
func SetRetainLimit(bytes int64) int64 { return retainLimit.Swap(bytes) }

// RetainLimit returns the current retain limit.
func RetainLimit() int64 { return retainLimit.Load() }

// Trim drops idle buffers, largest classes first, until RetainedBytes is at
// most target. It returns the bytes released. Checked-out buffers are
// untouched; concurrent Get/Put remain safe.
func Trim(target int64) int64 {
	if target < 0 {
		target = 0
	}
	var freed int64
	for c := maxClass; c >= 0 && retained.Load() > target; c-- {
		for i := range shards {
			sh := &shards[i]
			sh.mu.Lock()
			cl := &sh.classes[c]
			for cl.n > 0 && retained.Load() > target {
				cl.n--
				cl.bufs[cl.n] = nil
				b := int64(8) << c
				retained.Add(-b)
				freed += b
			}
			sh.mu.Unlock()
		}
	}
	if freed > 0 {
		cTrimmed.Add(freed)
	}
	return freed
}

// TrimAll drops every idle buffer, returning the bytes released. Idle
// servers call this so a quiet process holds no pooled memory at all.
func TrimAll() int64 { return Trim(0) }

// TrimToCap brings retention back under the configured retain limit. It is
// the solve-completion trim point: the task runtime calls it on shutdown so
// transient mid-solve overshoot never outlives the solve.
func TrimToCap() int64 { return Trim(retainLimit.Load()) }

// Forget credits bytes back to the accountant without recycling the backing
// memory. Callers that intentionally abandon pooled slices to the GC (failed
// merges whose buffers may alias live data) report the accounted bytes here
// so the leak does not show up as permanently checked-out workspace.
func Forget(bytes int64) { inUse.Add(-bytes) }

// ClassBytes returns the bytes the accountant charges for Get(n): the
// size-class capacity in bytes, or 0 when the request falls through to
// plain (unaccounted) allocation. It is the unit admission-control
// estimates are built from.
func ClassBytes(n int) int64 {
	if n <= 0 {
		return 0
	}
	c := bits.Len(uint(n - 1))
	if c > maxClass {
		return 0
	}
	return 8 << c
}

// AccountedBytes returns what the accountant charged for a slice returned
// by Get (its size-class capacity in bytes), 0 for slices the pool does not
// track. Leak sweeps use it to size their Forget.
func AccountedBytes(s []float64) int64 {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return 0
	}
	if bits.Len(uint(c-1)) > maxClass {
		return 0
	}
	return int64(c) * 8
}

// CounterSnapshot is a point-in-time copy of the pool's diagnostic tallies.
type CounterSnapshot struct {
	InUseBytes    int64 // checked-out bytes (the accountant)
	RetainedBytes int64 // idle bytes in the freelists
	RetainLimit   int64 // configured retention target
	Gets          int64 // Get calls served from a size class
	Hits          int64 // Gets satisfied by the home shard
	Steals        int64 // Gets satisfied by a sibling shard
	Puts          int64 // accepted Put calls
	DroppedCap    int64 // Puts dropped by slot or byte caps
	ForeignPuts   int64 // Puts whose credit would go negative (clamped)
	DoublePuts    int64 // Puts of a buffer already idle in its shard
	TrimmedBytes  int64 // cumulative bytes released by Trim
}

// Counters returns the pool's diagnostic tallies. The individual loads are
// not mutually atomic; treat the snapshot as advisory.
func Counters() CounterSnapshot {
	return CounterSnapshot{
		InUseBytes:    inUse.Load(),
		RetainedBytes: retained.Load(),
		RetainLimit:   retainLimit.Load(),
		Gets:          cGets.Load(),
		Hits:          cHits.Load(),
		Steals:        cSteals.Load(),
		Puts:          cPuts.Load(),
		DroppedCap:    cDroppedCap.Load(),
		ForeignPuts:   cForeignPuts.Load(),
		DoublePuts:    cDoublePuts.Load(),
		TrimmedBytes:  cTrimmed.Load(),
	}
}
