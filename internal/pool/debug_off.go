//go:build !pooldebug

package pool

// Release builds compile the ownership hooks away entirely; misuse defence
// falls back to the clamp-and-count checks in Put. Build with -tags
// pooldebug to turn contract violations into panics.

func debugOnGet([]float64)       {}
func debugOnPut([]float64)       {}
func debugOnDoublePut([]float64) {}
