//go:build pooldebug

package pool

import "testing"

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic under pooldebug", what)
		}
	}()
	f()
}

func TestPooldebugForeignPutPanics(t *testing.T) {
	mustPanic(t, "foreign Put", func() {
		Put(make([]float64, 128))
	})
}

func TestPooldebugDoublePutPanics(t *testing.T) {
	s := Get(128)
	Put(s)
	mustPanic(t, "double Put", func() {
		Put(s)
	})
	TrimAll()
}

func TestPooldebugRoundTripClean(t *testing.T) {
	// The ownership map must not flag the legal Get/Put/Get cycle.
	for i := 0; i < 10; i++ {
		s := Get(512)
		Put(s)
	}
	TrimAll()
}
