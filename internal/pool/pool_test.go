package pool

import "testing"

func TestGetLengthAndClass(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 9, 1000, 1 << 10, (1 << 10) + 1} {
		s := Get(n)
		if len(s) != n {
			t.Fatalf("Get(%d): len %d", n, len(s))
		}
		if c := cap(s); c&(c-1) != 0 {
			t.Fatalf("Get(%d): cap %d not a power of two", n, c)
		}
		Put(s)
	}
}

func TestGetZeroAndPutForeign(t *testing.T) {
	if s := Get(0); s != nil {
		t.Fatal("Get(0) should be nil")
	}
	if s := Get(-3); s != nil {
		t.Fatal("Get(-3) should be nil")
	}
	Put(nil)                  // must not panic
	Put(make([]float64, 100)) // non-power-of-two cap: dropped, no panic
}

func TestRecycleRoundTrip(t *testing.T) {
	s := Get(100)
	for i := range s {
		s[i] = float64(i)
	}
	Put(s)
	// A subsequent Get of the same class may return the same backing array
	// with unspecified contents; it must still have the right length.
	r := Get(65)
	if len(r) != 65 || cap(r) < 65 {
		t.Fatalf("recycled Get(65): len=%d cap=%d", len(r), cap(r))
	}
	Put(r)
}
