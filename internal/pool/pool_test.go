package pool

import "testing"

func TestGetLengthAndClass(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 9, 1000, 1 << 10, (1 << 10) + 1} {
		s := Get(n)
		if len(s) != n {
			t.Fatalf("Get(%d): len %d", n, len(s))
		}
		if c := cap(s); c&(c-1) != 0 {
			t.Fatalf("Get(%d): cap %d not a power of two", n, c)
		}
		Put(s)
	}
}

func TestGetZeroAndPutForeign(t *testing.T) {
	if s := Get(0); s != nil {
		t.Fatal("Get(0) should be nil")
	}
	if s := Get(-3); s != nil {
		t.Fatal("Get(-3) should be nil")
	}
	Put(nil)                  // must not panic
	Put(make([]float64, 100)) // non-power-of-two cap: dropped, no panic
}

func TestAccountantGetPut(t *testing.T) {
	base := InUseBytes()
	s := Get(100) // class 128 → 1024 bytes
	if got := InUseBytes() - base; got != 1024 {
		t.Fatalf("after Get(100): charged %d bytes, want 1024", got)
	}
	if b := AccountedBytes(s); b != 1024 {
		t.Fatalf("AccountedBytes(Get(100)) = %d, want 1024", b)
	}
	r := Get(1 << 12) // exact power of two: 4096 floats
	if got := InUseBytes() - base; got != 1024+8<<12 {
		t.Fatalf("after second Get: charged %d bytes, want %d", got, 1024+8<<12)
	}
	Put(s)
	Put(r)
	if got := InUseBytes() - base; got != 0 {
		t.Fatalf("after Put: %d bytes still charged", got)
	}
}

func TestAccountantForgetAndClassBytes(t *testing.T) {
	base := InUseBytes()
	s := Get(200) // class 256 → 2048 bytes
	if got := InUseBytes() - base; got != 2048 {
		t.Fatalf("charged %d, want 2048", got)
	}
	// Leak s to the GC on purpose: Forget must square the books.
	Forget(AccountedBytes(s))
	if got := InUseBytes() - base; got != 0 {
		t.Fatalf("after Forget: %d bytes still charged", got)
	}
	if b := ClassBytes(200); b != 2048 {
		t.Fatalf("ClassBytes(200) = %d, want 2048", b)
	}
	if b := ClassBytes(0); b != 0 {
		t.Fatalf("ClassBytes(0) = %d, want 0", b)
	}
	// Requests beyond the largest class are unaccounted plain allocations.
	if b := ClassBytes(1 << 29); b != 0 {
		t.Fatalf("ClassBytes(huge) = %d, want 0", b)
	}
	huge := make([]float64, 100) // not from Get: never accounted
	if b := AccountedBytes(huge); b != 0 {
		t.Fatalf("AccountedBytes(foreign) = %d, want 0", b)
	}
}

func TestRetainedBytesAndTrim(t *testing.T) {
	TrimAll()
	if got := RetainedBytes(); got != 0 {
		t.Fatalf("RetainedBytes after TrimAll = %d", got)
	}
	bufs := make([][]float64, 6)
	for i := range bufs {
		bufs[i] = Get(1 << 10)
	}
	for _, b := range bufs {
		Put(b)
	}
	ret := RetainedBytes()
	if ret <= 0 {
		t.Fatalf("RetainedBytes after Puts = %d, want > 0", ret)
	}
	target := ret / 2
	Trim(target)
	if got := RetainedBytes(); got > target {
		t.Fatalf("Trim(%d) left %d retained", target, got)
	}
	if freed := TrimAll(); RetainedBytes() != 0 {
		t.Fatalf("TrimAll freed %d but %d still retained", freed, RetainedBytes())
	}
}

func TestRetainLimitStopsRetention(t *testing.T) {
	prev := SetRetainLimit(0)
	defer SetRetainLimit(prev)
	TrimAll()
	s := Get(1 << 10)
	base := InUseBytes()
	Put(s)
	if got := RetainedBytes(); got != 0 {
		t.Fatalf("retained %d bytes with a zero retain limit", got)
	}
	// The checkout itself must still be credited even though the buffer
	// was dropped.
	if got := base - InUseBytes(); got != 8<<10 {
		t.Fatalf("dropped Put credited %d bytes, want %d", got, 8<<10)
	}
}

func TestTrimToCap(t *testing.T) {
	prev := SetRetainLimit(4 * 8 << 10) // four class-1024 buffers
	defer SetRetainLimit(prev)
	TrimAll()
	bufs := make([][]float64, 8)
	for i := range bufs {
		bufs[i] = Get(1 << 10)
	}
	for _, b := range bufs {
		Put(b)
	}
	TrimToCap()
	if got, lim := RetainedBytes(), RetainLimit(); got > lim {
		t.Fatalf("TrimToCap left %d retained, limit %d", got, lim)
	}
	TrimAll()
}

func TestRecycleRoundTrip(t *testing.T) {
	s := Get(100)
	for i := range s {
		s[i] = float64(i)
	}
	Put(s)
	// A subsequent Get of the same class may return the same backing array
	// with unspecified contents; it must still have the right length.
	r := Get(65)
	if len(r) != 65 || cap(r) < 65 {
		t.Fatalf("recycled Get(65): len=%d cap=%d", len(r), cap(r))
	}
	Put(r)
}
