//go:build pooldebug

package pool

import (
	"fmt"
	"sync"
	"unsafe"
)

// With the pooldebug build tag the pool keeps an ownership map keyed by the
// backing array address: Get marks a buffer checked out, Put marks it
// returned, and any Put of a buffer that is not currently checked out —
// a foreign slice or a second Put — panics at the violation site instead of
// silently corrupting the accountant. The map also survives buffers the
// release path would drop, so violations are caught regardless of caps.
//
// Address reuse caveat: once a buffer is dropped to the GC its address may
// be recycled by an unrelated allocation; the map is advisory for such
// dead entries. In practice violations are caught while the buffer is
// still live, which is when they matter.

var (
	ownMu sync.Mutex
	// owned maps backing-array address → checked out (true) or idle/
	// returned (false).
	owned = map[uintptr]bool{}
)

func keyOf(s []float64) uintptr {
	return uintptr(unsafe.Pointer(&s[0]))
}

func debugOnGet(s []float64) {
	ownMu.Lock()
	owned[keyOf(s)] = true
	ownMu.Unlock()
}

func debugOnPut(s []float64) {
	k := keyOf(s)
	ownMu.Lock()
	out, known := owned[k]
	if known {
		owned[k] = false
	}
	ownMu.Unlock()
	if !known {
		panic(fmt.Sprintf("pool: Put of foreign slice (cap %d) never obtained from Get", cap(s)))
	}
	if !out {
		panic(fmt.Sprintf("pool: double Put of slice (cap %d)", cap(s)))
	}
}

func debugOnDoublePut(s []float64) {
	panic(fmt.Sprintf("pool: double Put of slice (cap %d) still idle in its shard", cap(s)))
}
