//go:build !pooldebug

package pool

import "testing"

// These tests exercise the release-build defence (clamp-and-count); under
// the pooldebug tag the same violations panic instead — see
// debug_on_test.go.

func TestForeignPutClampAndCount(t *testing.T) {
	TrimAll()
	// A foreign Put while nothing is checked out would drive the old
	// implementation negative.
	if InUseBytes() > 0 {
		t.Skip("other checkouts in flight; clamp not provable")
	}
	before := Counters()
	Put(make([]float64, 128)) // power-of-two cap, never from Get
	after := Counters()
	if got := InUseBytes(); got < 0 {
		t.Fatalf("InUseBytes went negative after foreign Put: %d", got)
	}
	if after.ForeignPuts != before.ForeignPuts+1 {
		t.Fatalf("ForeignPuts = %d, want %d", after.ForeignPuts, before.ForeignPuts+1)
	}
	if after.RetainedBytes != before.RetainedBytes {
		t.Fatalf("foreign slice was retained: %d -> %d", before.RetainedBytes, after.RetainedBytes)
	}
}

func TestDoublePutDetected(t *testing.T) {
	TrimAll()
	s := Get(256)
	hold := Get(256) // keep the accountant above one class so no clamp fires
	defer Put(hold)
	before := Counters()
	base := InUseBytes()
	Put(s)
	Put(s) // contract violation: same buffer again
	after := Counters()
	if after.DoublePuts != before.DoublePuts+1 {
		t.Fatalf("DoublePuts = %d, want %d", after.DoublePuts, before.DoublePuts+1)
	}
	if got := base - InUseBytes(); got != 2048 {
		t.Fatalf("double Put credited the accountant twice: released %d bytes, want 2048", got)
	}
	TrimAll()
}
