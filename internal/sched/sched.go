// Package sched replays a captured task graph on P virtual workers. It is
// the substitution for the paper's 16-core testbed on single-core hosts (see
// DESIGN.md §2): every task keeps its real measured duration, the real
// dependency structure is honoured, and a greedy list scheduler matching the
// quark runtime's policy assigns tasks to virtual workers: per-worker ready
// queues ordered by (priority descending, submission order ascending), newly
// ready successors placed on the queue of the worker that completed their
// last dependency (the runtime's locality fallback — the captured graph does
// not carry handle identities, so the handle-affinity hint is approximated by
// this completer placement), and idle workers stealing the highest-priority
// task from the other queues. The simulator scans victims in a deterministic
// rotation where the runtime randomizes; both are work-conserving, so
// makespans agree up to tie-breaks. An optional bandwidth model stretches
// memory-bound tasks when several run concurrently, reproducing the
// saturation plateau of the paper's Figure 5.
package sched

import (
	"fmt"
	"math"
	"sort"

	"tridiag/internal/quark"
)

// MemoryBoundClasses lists the kernel classes the paper identifies as
// bandwidth-limited (copies rather than compute).
var MemoryBoundClasses = map[string]bool{
	"PermuteV":         true,
	"CopyBackDeflated": true,
	"SortEigenvectors": true,
	"LASET":            true,
	"Scale":            true,
	"Redistribute":     true,
	"PackV":            true,
}

// Config tunes a simulation run.
type Config struct {
	// Workers is the number of virtual workers P.
	Workers int
	// BandwidthStreams, if positive, caps the aggregate speed of
	// concurrently running memory-bound tasks: with c such tasks running,
	// each progresses at rate min(1, BandwidthStreams/c). The paper's
	// machine saturates one socket at about 4 concurrent streams.
	BandwidthStreams float64
	// StreamsPerSocket and WorkersPerSocket model the paper's two-socket
	// topology when BandwidthStreams is zero: the effective cap is
	// StreamsPerSocket × ⌈Workers / WorkersPerSocket⌉ — "4 threads
	// saturate the bandwidth of the first socket ... till we start using
	// the second socket (>8 threads)" (paper §V). Zero values disable the
	// bandwidth model entirely.
	StreamsPerSocket float64
	WorkersPerSocket int
	// MemoryBound overrides the default memory-bound class set.
	MemoryBound map[string]bool
}

// effectiveStreams resolves the bandwidth cap for the configured topology.
func (c Config) effectiveStreams() float64 {
	if c.BandwidthStreams > 0 {
		return c.BandwidthStreams
	}
	if c.StreamsPerSocket > 0 && c.WorkersPerSocket > 0 {
		sockets := (c.Workers + c.WorkersPerSocket - 1) / c.WorkersPerSocket
		return c.StreamsPerSocket * float64(sockets)
	}
	return 0
}

// Span is one task's placement in the simulated schedule.
type Span struct {
	Task   int
	Worker int
	Start  float64 // seconds
	End    float64
}

// Result reports the simulated schedule.
type Result struct {
	Makespan     float64
	TotalWork    float64
	CriticalPath float64
	Spans        []Span
	ClassTime    map[string]float64 // summed busy seconds per kernel class
	IdleFraction float64            // fraction of worker-seconds spent idle
}

// Speedup returns TotalWork / Makespan, the parallel speedup relative to the
// single-worker schedule of the same graph.
func (r *Result) Speedup() float64 {
	if r.Makespan == 0 {
		return 1
	}
	return r.TotalWork / r.Makespan
}

type simTask struct {
	id        int
	class     string
	priority  int
	remaining float64 // seconds of full-speed work left
	memBound  bool
	pending   int
	succs     []int
	worker    int
	start     float64
}

// simQueue is one virtual worker's ready queue: a max-heap ordered by
// (priority desc, id asc), mirroring the runtime's deque order.
type simQueue []*simTask

func simLess(a, b *simTask) bool {
	if a.priority != b.priority {
		return a.priority > b.priority
	}
	return a.id < b.id
}

func (q *simQueue) push(t *simTask) {
	*q = append(*q, t)
	i := len(*q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !simLess((*q)[i], (*q)[p]) {
			break
		}
		(*q)[i], (*q)[p] = (*q)[p], (*q)[i]
		i = p
	}
}

func (q *simQueue) pop() *simTask {
	old := *q
	n := len(old)
	if n == 0 {
		return nil
	}
	top := old[0]
	old[0] = old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	n--
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && simLess(old[l], old[best]) {
			best = l
		}
		if r < n && simLess(old[r], old[best]) {
			best = r
		}
		if best == i {
			break
		}
		old[i], old[best] = old[best], old[i]
		i = best
	}
	return top
}

// Simulate list-schedules the graph on cfg.Workers virtual workers and
// returns the resulting schedule. Task durations are taken from the captured
// timings; the graph must come from a run with graph capture enabled.
func Simulate(g *quark.Graph, cfg Config) (*Result, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("sched: need at least one worker")
	}
	mem := cfg.MemoryBound
	if mem == nil {
		mem = MemoryBoundClasses
	}
	n := len(g.Tasks)
	tasks := make([]simTask, n)
	var totalWork float64
	for i, ti := range g.Tasks {
		if ti.Worker < 0 {
			return nil, fmt.Errorf("sched: task %d was never executed (graph capture incomplete?)", i)
		}
		d := ti.Duration().Seconds()
		tasks[i] = simTask{id: i, class: ti.Class, priority: ti.Priority, remaining: d, memBound: mem[ti.Class], worker: -1}
		totalWork += d
	}
	for _, e := range g.Edges {
		tasks[e[0]].succs = append(tasks[e[0]].succs, e[1])
		tasks[e[1]].pending++
	}

	// Initially ready tasks are placed round-robin in submission order,
	// matching the runtime's hint-less placement of the leaf tasks.
	queues := make([]simQueue, cfg.Workers)
	{
		ready := make([]int, 0, n)
		for i := range tasks {
			if tasks[i].pending == 0 {
				ready = append(ready, i)
			}
		}
		sort.Ints(ready)
		for i, t := range ready {
			queues[i%cfg.Workers].push(&tasks[t])
		}
	}

	// obtain pops w's own queue, else steals the best task from another
	// queue (deterministic rotation where the runtime randomizes).
	obtain := func(w int) *simTask {
		if t := queues[w].pop(); t != nil {
			return t
		}
		for i := 1; i < cfg.Workers; i++ {
			if t := queues[(w+i)%cfg.Workers].pop(); t != nil {
				return t
			}
		}
		return nil
	}

	free := make([]bool, cfg.Workers)
	for w := range free {
		free[w] = true
	}
	running := make([]int, 0, cfg.Workers)
	spans := make([]Span, 0, n)
	classTime := make(map[string]float64)

	now := 0.0
	completed := 0
	const eps = 1e-15

	for completed < n {
		// Keep assigning until no free worker can obtain a task (own queue
		// or steal): the scheduler is work-conserving, like the runtime.
		for assigned := true; assigned; {
			assigned = false
			for w := 0; w < cfg.Workers; w++ {
				if !free[w] {
					continue
				}
				t := obtain(w)
				if t == nil {
					continue
				}
				free[w] = false
				t.worker = w
				t.start = now
				running = append(running, t.id)
				assigned = true
			}
		}
		if len(running) == 0 {
			return nil, fmt.Errorf("sched: deadlock at t=%v with %d/%d tasks done (cyclic graph?)", now, completed, n)
		}

		// Progress rates: memory-bound tasks share the bandwidth cap.
		memRunning := 0
		for _, t := range running {
			if tasks[t].memBound {
				memRunning++
			}
		}
		streams := cfg.effectiveStreams()
		rate := func(t int) float64 {
			if tasks[t].memBound && streams > 0 && float64(memRunning) > streams {
				return streams / float64(memRunning)
			}
			return 1
		}

		// Advance to the next completion.
		dt := math.Inf(1)
		for _, t := range running {
			if ttf := tasks[t].remaining / rate(t); ttf < dt {
				dt = ttf
			}
		}
		now += dt
		next := running[:0]
		for _, t := range running {
			tasks[t].remaining -= dt * rate(t)
			if tasks[t].remaining <= eps {
				spans = append(spans, Span{Task: t, Worker: tasks[t].worker, Start: tasks[t].start, End: now})
				classTime[tasks[t].class] += now - tasks[t].start
				free[tasks[t].worker] = true
				completed++
				// Newly ready successors land on the completer's queue,
				// like the runtime's locality fallback.
				for _, s := range tasks[t].succs {
					tasks[s].pending--
					if tasks[s].pending == 0 {
						queues[tasks[t].worker].push(&tasks[s])
					}
				}
			} else {
				next = append(next, t)
			}
		}
		running = next
	}

	cp, _ := g.CriticalPath()
	res := &Result{
		Makespan:     now,
		TotalWork:    totalWork,
		CriticalPath: cp,
		Spans:        spans,
		ClassTime:    classTime,
	}
	if now > 0 {
		busy := 0.0
		for _, s := range spans {
			busy += s.End - s.Start
		}
		res.IdleFraction = 1 - busy/(now*float64(cfg.Workers))
	}
	return res, nil
}

// SpeedupCurve simulates the graph for every worker count in ps and returns
// makespan(1)/makespan(p) for each (the paper's Figure 5 measurement).
// streamsPerSocket models the two-socket bandwidth topology (8 workers per
// socket, as on the paper's machine); 0 disables the bandwidth model.
func SpeedupCurve(g *quark.Graph, ps []int, streamsPerSocket float64) ([]float64, error) {
	base, err := Simulate(g, Config{Workers: 1, StreamsPerSocket: streamsPerSocket, WorkersPerSocket: 8})
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(ps))
	for i, p := range ps {
		r, err := Simulate(g, Config{Workers: p, StreamsPerSocket: streamsPerSocket, WorkersPerSocket: 8})
		if err != nil {
			return nil, err
		}
		out[i] = base.Makespan / r.Makespan
	}
	return out, nil
}
