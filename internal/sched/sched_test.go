package sched

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"tridiag/internal/quark"
)

// buildGraph constructs a synthetic captured graph: durs in seconds, edges as
// pairs. Workers/timings are synthesized as if measured.
func buildGraph(durs []float64, edges [][2]int) *quark.Graph {
	g := &quark.Graph{}
	for i, d := range durs {
		g.Tasks = append(g.Tasks, quark.TaskInfo{
			ID: i, Class: "K", Label: "t", Worker: 0,
			Start: 0, End: time.Duration(d * float64(time.Second)),
		})
	}
	g.Edges = edges
	return g
}

func TestSimulateChain(t *testing.T) {
	// A pure chain cannot be parallelized.
	g := buildGraph([]float64{1, 2, 3}, [][2]int{{0, 1}, {1, 2}})
	for _, p := range []int{1, 4} {
		r, err := Simulate(g, Config{Workers: p})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Makespan-6) > 1e-9 {
			t.Errorf("P=%d chain makespan %v, want 6", p, r.Makespan)
		}
	}
}

func TestSimulateIndependent(t *testing.T) {
	g := buildGraph([]float64{1, 1, 1, 1}, nil)
	r1, _ := Simulate(g, Config{Workers: 1})
	r2, _ := Simulate(g, Config{Workers: 2})
	r4, _ := Simulate(g, Config{Workers: 4})
	if math.Abs(r1.Makespan-4) > 1e-9 || math.Abs(r2.Makespan-2) > 1e-9 || math.Abs(r4.Makespan-1) > 1e-9 {
		t.Errorf("independent: %v %v %v", r1.Makespan, r2.Makespan, r4.Makespan)
	}
	if s := r4.Speedup(); math.Abs(s-4) > 1e-9 {
		t.Errorf("speedup %v", s)
	}
	if r4.IdleFraction > 1e-9 {
		t.Errorf("idle %v", r4.IdleFraction)
	}
}

func TestSimulateForkJoin(t *testing.T) {
	// 0 -> {1,2,3} -> 4
	g := buildGraph([]float64{1, 2, 2, 2, 1},
		[][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 4}, {2, 4}, {3, 4}})
	r, err := Simulate(g, Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Makespan-4) > 1e-9 {
		t.Errorf("fork-join makespan %v, want 4", r.Makespan)
	}
	r2, _ := Simulate(g, Config{Workers: 2})
	if math.Abs(r2.Makespan-6) > 1e-9 {
		t.Errorf("fork-join P=2 makespan %v, want 6", r2.Makespan)
	}
}

func TestSimulateBandwidthCap(t *testing.T) {
	g := &quark.Graph{}
	for i := 0; i < 8; i++ {
		g.Tasks = append(g.Tasks, quark.TaskInfo{
			ID: i, Class: "PermuteV", Worker: 0, Start: 0, End: time.Second,
		})
	}
	// Without a cap, 8 workers finish in 1s; with 4 streams, aggregate rate
	// is 4 tasks/s -> 8 task-seconds take 2s.
	r, err := Simulate(g, Config{Workers: 8, BandwidthStreams: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Makespan-2) > 1e-6 {
		t.Errorf("bandwidth-capped makespan %v, want 2", r.Makespan)
	}
	rU, _ := Simulate(g, Config{Workers: 8})
	if math.Abs(rU.Makespan-1) > 1e-9 {
		t.Errorf("uncapped makespan %v, want 1", rU.Makespan)
	}
	// Compute-bound classes are unaffected by the cap.
	for i := range g.Tasks {
		g.Tasks[i].Class = "UpdateVect"
	}
	rC, _ := Simulate(g, Config{Workers: 8, BandwidthStreams: 4})
	if math.Abs(rC.Makespan-1) > 1e-9 {
		t.Errorf("compute-bound capped makespan %v, want 1", rC.Makespan)
	}
}

func TestSimulateGrahamBound(t *testing.T) {
	// Greedy list scheduling satisfies makespan <= T1/P + T_inf and
	// makespan >= max(T1/P, T_inf) on arbitrary DAGs.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 20 + rng.Intn(80)
		durs := make([]float64, n)
		for i := range durs {
			durs[i] = 0.01 + rng.Float64()
		}
		var edges [][2]int
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.08 {
					edges = append(edges, [2]int{i, j})
				}
			}
		}
		g := buildGraph(durs, edges)
		cp, _ := g.CriticalPath()
		for _, p := range []int{1, 2, 4, 16} {
			r, err := Simulate(g, Config{Workers: p})
			if err != nil {
				t.Fatal(err)
			}
			lower := math.Max(r.TotalWork/float64(p), cp)
			upper := r.TotalWork/float64(p) + cp
			if r.Makespan < lower-1e-9 || r.Makespan > upper+1e-9 {
				t.Fatalf("trial %d P=%d: makespan %v outside [%v, %v]", trial, p, r.Makespan, lower, upper)
			}
			if p == 1 && math.Abs(r.Makespan-r.TotalWork) > 1e-9 {
				t.Fatalf("P=1 must serialize: %v vs %v", r.Makespan, r.TotalWork)
			}
		}
	}
}

func TestSimulateSpansConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 50
	durs := make([]float64, n)
	for i := range durs {
		durs[i] = 0.01 + rng.Float64()
	}
	var edges [][2]int
	for i := 0; i < n-1; i++ {
		if rng.Float64() < 0.5 {
			edges = append(edges, [2]int{i, i + 1 + rng.Intn(n-i-1)})
		}
	}
	g := buildGraph(durs, edges)
	r, err := Simulate(g, Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Spans) != n {
		t.Fatalf("%d spans for %d tasks", len(r.Spans), n)
	}
	// No worker overlap; all edges respected.
	end := map[int]float64{}
	byWorker := map[int][]Span{}
	for _, s := range r.Spans {
		end[s.Task] = s.End
		byWorker[s.Worker] = append(byWorker[s.Worker], s)
	}
	start := map[int]float64{}
	for _, s := range r.Spans {
		start[s.Task] = s.Start
	}
	for _, e := range edges {
		if start[e[1]] < end[e[0]]-1e-9 {
			t.Fatalf("edge %v violated in simulation", e)
		}
	}
	for w, spans := range byWorker {
		for i := range spans {
			for j := i + 1; j < len(spans); j++ {
				a, b := spans[i], spans[j]
				if a.Start < b.End-1e-9 && b.Start < a.End-1e-9 {
					t.Fatalf("worker %d runs tasks %d and %d simultaneously", w, a.Task, b.Task)
				}
			}
		}
	}
}

func TestSimulatePriorityOrder(t *testing.T) {
	// Four independent unit tasks on one worker: the high-priority ones must
	// run first regardless of submission order, with FIFO tie-break within a
	// priority level.
	g := buildGraph([]float64{1, 1, 1, 1}, nil)
	g.Tasks[1].Priority = 5
	g.Tasks[3].Priority = 5
	r, err := Simulate(g, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	order := make([]int, 0, 4)
	for _, s := range r.Spans {
		order = append(order, s.Task)
	}
	want := []int{1, 3, 0, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
}

func TestSimulatePriorityShortensCriticalPath(t *testing.T) {
	// Task 0 heads a long chain (0->2->3) competing with a short independent
	// task 1 for a single free slot at t=0 on 2 workers, alongside filler
	// task 4. Prioritizing the chain head gives makespan 3; running it late
	// gives 4. The simulator must honour the captured priorities.
	durs := []float64{1, 1, 1, 1, 2}
	edges := [][2]int{{0, 2}, {2, 3}}
	hi := buildGraph(durs, edges)
	hi.Tasks[0].Priority = 10
	r, err := Simulate(hi, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Makespan-3) > 1e-9 {
		t.Errorf("prioritized chain makespan %v, want 3", r.Makespan)
	}
	lo := buildGraph(durs, edges)
	lo.Tasks[1].Priority = 10
	lo.Tasks[4].Priority = 10
	r2, err := Simulate(lo, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r2.Makespan-4) > 1e-9 {
		t.Errorf("deprioritized chain makespan %v, want 4", r2.Makespan)
	}
}

func TestSimulateStealingBalancesQueues(t *testing.T) {
	// One root fans out to 8 equal children; all land on the completer's
	// queue, so without stealing one worker would serialize them (makespan
	// 9). With stealing across 4 workers the children spread out: 1 + 2 = 3.
	durs := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1}
	var edges [][2]int
	for c := 1; c < 9; c++ {
		edges = append(edges, [2]int{0, c})
	}
	g := buildGraph(durs, edges)
	r, err := Simulate(g, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Makespan-3) > 1e-9 {
		t.Errorf("fan-out makespan %v, want 3 (stealing broken?)", r.Makespan)
	}
	workers := map[int]bool{}
	for _, s := range r.Spans {
		if s.Task != 0 {
			workers[s.Worker] = true
		}
	}
	if len(workers) != 4 {
		t.Errorf("children ran on %d workers, want all 4", len(workers))
	}
}

func TestSimulateErrors(t *testing.T) {
	g := buildGraph([]float64{1}, nil)
	if _, err := Simulate(g, Config{Workers: 0}); err == nil {
		t.Error("workers=0 must error")
	}
	g.Tasks[0].Worker = -1
	if _, err := Simulate(g, Config{Workers: 1}); err == nil {
		t.Error("unexecuted task must error")
	}
}

func TestSpeedupCurveMonotoneWork(t *testing.T) {
	g := buildGraph([]float64{1, 1, 1, 1, 1, 1, 1, 1}, nil)
	curve, err := SpeedupCurve(g, []int{1, 2, 4, 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 4, 8}
	for i := range curve {
		if math.Abs(curve[i]-want[i]) > 1e-9 {
			t.Errorf("curve[%d]=%v want %v", i, curve[i], want[i])
		}
	}
}

func TestForkJoinGraphSerializesChain(t *testing.T) {
	// three serial tasks with two parallel tasks between them
	g := &quark.Graph{}
	add := func(id int, class string, dur float64) {
		g.Tasks = append(g.Tasks, quark.TaskInfo{
			ID: id, Class: class, Worker: 0,
			End: time.Duration(dur * float64(time.Second)),
		})
	}
	add(0, "S", 1)
	add(1, "GEMM", 2)
	add(2, "GEMM", 2)
	add(3, "S", 1)
	fj := ForkJoinGraph(g, map[string]bool{"GEMM": true})
	r, err := Simulate(fj, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// serial(1) -> parallel(2,2 overlap) -> serial(1) = 4s
	if math.Abs(r.Makespan-4) > 1e-9 {
		t.Errorf("fork/join makespan %v, want 4", r.Makespan)
	}
	// without the transform everything is independent: 2s on 4 workers
	r0, _ := Simulate(g, Config{Workers: 4})
	if math.Abs(r0.Makespan-2) > 1e-9 {
		t.Errorf("untransformed makespan %v, want 2", r0.Makespan)
	}
	// original edges must be retained
	g.Edges = [][2]int{{1, 2}}
	fj2 := ForkJoinGraph(g, map[string]bool{"GEMM": true})
	found := false
	for _, e := range fj2.Edges {
		if e == [2]int{1, 2} {
			found = true
		}
	}
	if !found {
		t.Error("original edge dropped by transform")
	}
}
