package sched

import "tridiag/internal/quark"

// ForkJoinGraph rewires a captured task graph into a fork/join execution
// model: tasks whose class is NOT in parallelClasses form a sequential chain
// in submission order, while parallel-class tasks may overlap between two
// consecutive chain elements (the multithreaded-BLAS-under-a-sequential-
// algorithm model of the paper's Figure 6, and — with more classes marked
// parallel — the "parallel merge kernels, sequential algorithm" model of
// Figure 3(b)).
//
// The original dependency edges are retained, so orderings among the
// parallel tasks themselves (e.g. ComputeVect before UpdateVect of the same
// panel) stay intact; the chain and join edges are added on top. Task
// durations are unchanged.
func ForkJoinGraph(g *quark.Graph, parallelClasses map[string]bool) *quark.Graph {
	out := &quark.Graph{
		Tasks: append([]quark.TaskInfo(nil), g.Tasks...),
		Edges: append([][2]int(nil), g.Edges...),
	}
	lastSerial := -1
	var pendingParallel []int
	for _, t := range g.Tasks {
		if parallelClasses[t.Class] {
			if lastSerial >= 0 {
				out.Edges = append(out.Edges, [2]int{lastSerial, t.ID})
			}
			pendingParallel = append(pendingParallel, t.ID)
			continue
		}
		// Join: the next serial task waits for every outstanding parallel
		// task, then continues the chain.
		for _, p := range pendingParallel {
			out.Edges = append(out.Edges, [2]int{p, t.ID})
		}
		pendingParallel = pendingParallel[:0]
		if lastSerial >= 0 {
			out.Edges = append(out.Edges, [2]int{lastSerial, t.ID})
		}
		lastSerial = t.ID
	}
	return out
}

// ParallelBLASClasses marks only the GEMM-backed update as parallel: the
// execution model of LAPACK DSTEDC on a multithreaded BLAS (Figure 6).
var ParallelBLASClasses = map[string]bool{"UpdateVect": true}

// ParallelMergeClasses marks all panel kernels of the merge as parallel
// while the algorithm skeleton stays sequential: the intermediate
// optimization level of Figure 3(b).
var ParallelMergeClasses = map[string]bool{
	"UpdateVect":       true,
	"LAED4":            true,
	"ComputeVect":      true,
	"ComputeLocalW":    true,
	"PermuteV":         true,
	"CopyBackDeflated": true,
}
