//go:build amd64

package simd

// cpuidProbe and xgetbvProbe are implemented in simd_amd64.s.
func cpuidProbe(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
func xgetbvProbe() (eax, edx uint32)

// The AVX2+FMA secular kernels (simd_amd64.s). Each processes exactly
// len/4 quads — the Go wrappers pass 4-aligned slices and handle the tails —
// and accumulates with separate multiply and add so the results are bitwise
// identical to the portable lane-ordered fallbacks (see the package comment).
//
//go:noescape
func secularSumsAVX(z, delta []float64, w0, wstep float64) (s, ds, ws float64)

//go:noescape
func shiftedSumAVX(d, z []float64, org, tau float64) float64

//go:noescape
func mulRatioDiffAVX(w, num, den []float64, dj float64)

//go:noescape
func ratioSumSqAVX(dst, num, den []float64) float64

//go:noescape
func mulIntoAVX(dst, src []float64)

//go:noescape
func negSqrtSignAVX(dst, p, sgn []float64)

// haveSIMD reports whether the assembly kernels may be used: AVX2 and FMA in
// CPUID plus OS ymm-state saving in XGETBV (the standard AVX usability
// test, matching internal/blas's micro-kernel gate).
var haveSIMD = detectAVX2FMA()

func detectAVX2FMA() bool {
	maxID, _, _, _ := cpuidProbe(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidProbe(1, 0)
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
	)
	if ecx1&osxsave == 0 || ecx1&fma == 0 {
		return false
	}
	if xa, _ := xgetbvProbe(); xa&6 != 6 {
		return false
	}
	_, ebx7, _, _ := cpuidProbe(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

//go:noescape
func tridiagResidualAVX(dd, em, ep, vm, vv, vp []float64, lam float64) (r2, v2 float64)

//go:noescape
func dotPairAbsAVX(x, ax, y []float64) (dot, absdot float64)

//go:noescape
func sumAVX(x []float64) float64
