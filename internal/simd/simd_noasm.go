//go:build !amd64

package simd

// Non-amd64 platforms have no assembly kernels: every entry point runs the
// portable lane-ordered fallback, which computes bitwise-identical results.
var haveSIMD = false

func secularSumsAVX(z, delta []float64, w0, wstep float64) (s, ds, ws float64) {
	panic("simd: secularSumsAVX called without assembly support")
}

func shiftedSumAVX(d, z []float64, org, tau float64) float64 {
	panic("simd: shiftedSumAVX called without assembly support")
}

func mulRatioDiffAVX(w, num, den []float64, dj float64) {
	panic("simd: mulRatioDiffAVX called without assembly support")
}

func ratioSumSqAVX(dst, num, den []float64) float64 {
	panic("simd: ratioSumSqAVX called without assembly support")
}

func mulIntoAVX(dst, src []float64) {
	panic("simd: mulIntoAVX called without assembly support")
}

func negSqrtSignAVX(dst, p, sgn []float64) {
	panic("simd: negSqrtSignAVX called without assembly support")
}

func tridiagResidualAVX(dd, em, ep, vm, vv, vp []float64, lam float64) (r2, v2 float64) {
	panic("simd: tridiagResidualAVX called without assembly support")
}

func dotPairAbsAVX(x, ax, y []float64) (dot, absdot float64) {
	panic("simd: dotPairAbsAVX called without assembly support")
}

func sumAVX(x []float64) float64 {
	panic("simd: sumAVX called without assembly support")
}
