#include "textflag.h"

// func cpuidProbe(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidProbe(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvProbe() (eax, edx uint32)
TEXT ·xgetbvProbe(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// lanes<> = (0.0, 1.0, 2.0, 3.0), the per-lane offsets of the weight vector.
DATA lanes<>+0(SB)/8, $0x0000000000000000
DATA lanes<>+8(SB)/8, $0x3FF0000000000000
DATA lanes<>+16(SB)/8, $0x4000000000000000
DATA lanes<>+24(SB)/8, $0x4008000000000000
GLOBL lanes<>(SB), RODATA, $32

// signmask<> = four copies of -0.0 (the sign bit).
DATA signmask<>+0(SB)/8, $0x8000000000000000
DATA signmask<>+8(SB)/8, $0x8000000000000000
DATA signmask<>+16(SB)/8, $0x8000000000000000
DATA signmask<>+24(SB)/8, $0x8000000000000000
GLOBL signmask<>(SB), RODATA, $32

// func secularSumsAVX(z, delta []float64, w0, wstep float64) (s, ds, ws float64)
//
// One pass of the secular evaluation over len(z) (a multiple of 4) terms:
// t = z/delta, p = z*t, accumulating s += p, ds += t*t and ws += w*p with
// w = w0 + j*wstep. Accumulators use separate VMULPD+VADDPD (no FMA) so the
// lane sums match the portable fallback bitwise; the loop is bounded by the
// VDIVPD anyway. Lane reduction is (l0+l2)+(l1+l3).
TEXT ·secularSumsAVX(SB), NOSPLIT, $0-88
	MOVQ z_base+0(FP), SI
	MOVQ z_len+8(FP), CX
	SHRQ $2, CX
	MOVQ delta_base+24(FP), DI
	VXORPD Y0, Y0, Y0            // s lanes
	VXORPD Y1, Y1, Y1            // ds lanes
	VXORPD Y2, Y2, Y2            // ws lanes
	VBROADCASTSD w0+48(FP), Y12
	VBROADCASTSD wstep+56(FP), Y13
	VMOVUPD lanes<>(SB), Y14
	VFMADD231PD Y14, Y13, Y12    // wv = w0 + lane*wstep (exact: integer weights)
	VADDPD Y13, Y13, Y13         // 2*wstep
	VADDPD Y13, Y13, Y13         // 4*wstep
loop:
	VMOVUPD (SI), Y8             // z quad
	VMOVUPD (DI), Y9             // delta quad
	VDIVPD Y9, Y8, Y10           // t = z/delta
	VMULPD Y10, Y8, Y11          // p = z*t
	VADDPD Y11, Y0, Y0           // s += p
	VMULPD Y10, Y10, Y9          // t*t
	VADDPD Y9, Y1, Y1            // ds += t*t
	VMULPD Y12, Y11, Y11         // wv*p
	VADDPD Y11, Y2, Y2           // ws += wv*p
	VADDPD Y13, Y12, Y12         // wv += 4*wstep
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  loop

	VEXTRACTF128 $1, Y0, X8
	VADDPD X8, X0, X0
	VHADDPD X0, X0, X0
	MOVSD X0, s+64(FP)
	VEXTRACTF128 $1, Y1, X8
	VADDPD X8, X1, X1
	VHADDPD X1, X1, X1
	MOVSD X1, ds+72(FP)
	VEXTRACTF128 $1, Y2, X8
	VADDPD X8, X2, X2
	VHADDPD X2, X2, X2
	MOVSD X2, ws+80(FP)
	VZEROUPPER
	RET

// func shiftedSumAVX(d, z []float64, org, tau float64) float64
//
// Σ z²/((d-org)-tau) over len(d) (a multiple of 4) terms: the secular
// function body with the cancellation-free two-step shift (Dlaed4Bisect).
TEXT ·shiftedSumAVX(SB), NOSPLIT, $0-72
	MOVQ d_base+0(FP), SI
	MOVQ d_len+8(FP), CX
	SHRQ $2, CX
	MOVQ z_base+24(FP), DI
	VXORPD Y0, Y0, Y0
	VBROADCASTSD org+48(FP), Y12
	VBROADCASTSD tau+56(FP), Y13
loop:
	VMOVUPD (SI), Y8             // d quad
	VMOVUPD (DI), Y9             // z quad
	VSUBPD Y12, Y8, Y8           // d - org
	VSUBPD Y13, Y8, Y8           // (d-org) - tau
	VMULPD Y9, Y9, Y9            // z²
	VDIVPD Y8, Y9, Y9            // z²/t
	VADDPD Y9, Y0, Y0
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  loop

	VEXTRACTF128 $1, Y0, X8
	VADDPD X8, X0, X0
	VHADDPD X0, X0, X0
	MOVSD X0, ret+64(FP)
	VZEROUPPER
	RET

// func mulRatioDiffAVX(w, num, den []float64, dj float64)
//
// w *= num/(den-dj) elementwise over len(w) (a multiple of 4) — the
// ComputeLocalW inner loop. Purely lane-local: bitwise identical to the
// scalar loop in any order.
TEXT ·mulRatioDiffAVX(SB), NOSPLIT, $0-80
	MOVQ w_base+0(FP), SI
	MOVQ w_len+8(FP), CX
	SHRQ $2, CX
	MOVQ num_base+24(FP), DI
	MOVQ den_base+48(FP), R8
	VBROADCASTSD dj+72(FP), Y12
loop:
	VMOVUPD (R8), Y9             // den quad
	VSUBPD Y12, Y9, Y9           // den - dj
	VMOVUPD (DI), Y8             // num quad
	VDIVPD Y9, Y8, Y8            // num/(den-dj)
	VMOVUPD (SI), Y10
	VMULPD Y8, Y10, Y10
	VMOVUPD Y10, (SI)
	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, R8
	DECQ CX
	JNZ  loop
	VZEROUPPER
	RET

// func ratioSumSqAVX(dst, num, den []float64) float64
//
// dst = num/den elementwise, returning Σ dst² — the fused form and
// sum-of-squares pass of ComputeVect. Lengths are a multiple of 4.
TEXT ·ratioSumSqAVX(SB), NOSPLIT, $0-80
	MOVQ dst_base+0(FP), SI
	MOVQ dst_len+8(FP), CX
	SHRQ $2, CX
	MOVQ num_base+24(FP), DI
	MOVQ den_base+48(FP), R8
	VXORPD Y0, Y0, Y0
loop:
	VMOVUPD (DI), Y8             // num quad
	VMOVUPD (R8), Y9             // den quad
	VDIVPD Y9, Y8, Y8            // t = num/den
	VMOVUPD Y8, (SI)
	VMULPD Y8, Y8, Y8            // t²
	VADDPD Y8, Y0, Y0
	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, R8
	DECQ CX
	JNZ  loop

	VEXTRACTF128 $1, Y0, X8
	VADDPD X8, X0, X0
	VHADDPD X0, X0, X0
	MOVSD X0, ret+72(FP)
	VZEROUPPER
	RET

// func mulIntoAVX(dst, src []float64)
//
// dst *= src elementwise over len(dst) (a multiple of 4) — the ReduceW
// cross-panel product.
TEXT ·mulIntoAVX(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), SI
	MOVQ dst_len+8(FP), CX
	SHRQ $2, CX
	MOVQ src_base+24(FP), DI
loop:
	VMOVUPD (SI), Y8
	VMOVUPD (DI), Y9
	VMULPD Y9, Y8, Y8
	VMOVUPD Y8, (SI)
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  loop
	VZEROUPPER
	RET

// func negSqrtSignAVX(dst, p, sgn []float64)
//
// dst = copysign(sqrt(-p), sgn) elementwise over len(dst) (a multiple of 4)
// — ReduceW's final stabilized-weight formation. dst may alias p.
TEXT ·negSqrtSignAVX(SB), NOSPLIT, $0-72
	MOVQ dst_base+0(FP), SI
	MOVQ dst_len+8(FP), CX
	SHRQ $2, CX
	MOVQ p_base+24(FP), DI
	MOVQ sgn_base+48(FP), R8
	VMOVUPD signmask<>(SB), Y13
loop:
	VMOVUPD (DI), Y8             // p quad
	VXORPD Y13, Y8, Y8           // -p (flip sign bit, as Go negation does)
	VSQRTPD Y8, Y8               // sqrt(-p)
	VMOVUPD (R8), Y9             // sgn quad
	VANDPD Y13, Y9, Y9           // sign bits of sgn
	VANDNPD Y8, Y13, Y8          // |sqrt(-p)|
	VORPD Y9, Y8, Y8             // copysign
	VMOVUPD Y8, (SI)
	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, R8
	DECQ CX
	JNZ  loop
	VZEROUPPER
	RET

// func tridiagResidualAVX(dd, em, ep, vm, vv, vp []float64, lam float64) (r2, v2 float64)
//
// Interior rows of the fused residual/norm pass (TridiagResidual), octs
// (two quads) over the common 8-aligned length:
//
//	s = fma(-lam, vv, fma(ep, vp, fma(em, vm, dd*vv)))
//	r2 += s*s   (fused)       v2 += vv*vv   (fused)
//
// Unlike the secular kernels this one fuses multiply-adds — the loop has no
// division to hide instructions behind, so FMA halves the arithmetic —
// and the portable fallback matches bitwise by using math.FMA in the same
// lane order. Two accumulator sets (one per quad) keep the FMA dependency
// chains apart; the reduction is A+B per lane, then (l0+l2)+(l1+l3).
TEXT ·tridiagResidualAVX(SB), NOSPLIT, $0-168
	MOVQ dd_base+0(FP), SI
	MOVQ dd_len+8(FP), CX
	SHRQ $3, CX
	MOVQ em_base+24(FP), DI
	MOVQ ep_base+48(FP), R8
	MOVQ vm_base+72(FP), R9
	MOVQ vv_base+96(FP), R10
	MOVQ vp_base+120(FP), R11
	VBROADCASTSD lam+144(FP), Y12
	VXORPD signmask<>(SB), Y12, Y12 // -lam
	VXORPD Y0, Y0, Y0            // r2 lanes, quad A
	VXORPD Y1, Y1, Y1            // v2 lanes, quad A
	VXORPD Y2, Y2, Y2            // r2 lanes, quad B
	VXORPD Y3, Y3, Y3            // v2 lanes, quad B
loop:
	PREFETCHT0 512(R10)          // vv stream: the only cold one (vm/vp share its lines)
	VMOVUPD (SI), Y8             // dd quad A
	VMOVUPD (R10), Y9            // vv quad A
	VMULPD Y9, Y8, Y8            // s = dd·vv
	VMOVUPD (DI), Y10            // em quad A
	VMOVUPD (R9), Y11            // vm quad A
	VFMADD231PD Y11, Y10, Y8     // s += em·vm
	VMOVUPD (R8), Y10            // ep quad A
	VMOVUPD (R11), Y11           // vp quad A
	VFMADD231PD Y11, Y10, Y8     // s += ep·vp
	VFMADD231PD Y9, Y12, Y8      // s += (-lam)·vv
	VFMADD231PD Y8, Y8, Y0       // r2A += s·s
	VFMADD231PD Y9, Y9, Y1       // v2A += vv·vv
	VMOVUPD 32(SI), Y13          // dd quad B
	VMOVUPD 32(R10), Y14         // vv quad B
	VMULPD Y14, Y13, Y13         // s = dd·vv
	VMOVUPD 32(DI), Y10          // em quad B
	VMOVUPD 32(R9), Y11          // vm quad B
	VFMADD231PD Y11, Y10, Y13    // s += em·vm
	VMOVUPD 32(R8), Y10          // ep quad B
	VMOVUPD 32(R11), Y11         // vp quad B
	VFMADD231PD Y11, Y10, Y13    // s += ep·vp
	VFMADD231PD Y14, Y12, Y13    // s += (-lam)·vv
	VFMADD231PD Y13, Y13, Y2     // r2B += s·s
	VFMADD231PD Y14, Y14, Y3     // v2B += vv·vv
	ADDQ $64, SI
	ADDQ $64, DI
	ADDQ $64, R8
	ADDQ $64, R9
	ADDQ $64, R10
	ADDQ $64, R11
	DECQ CX
	JNZ  loop

	VADDPD Y2, Y0, Y0            // r2 lanes: A + B
	VADDPD Y3, Y1, Y1            // v2 lanes: A + B
	VEXTRACTF128 $1, Y0, X8
	VADDPD X8, X0, X0
	VHADDPD X0, X0, X0
	MOVSD X0, r2+152(FP)
	VEXTRACTF128 $1, Y1, X8
	VADDPD X8, X1, X1
	VHADDPD X1, X1, X1
	MOVSD X1, v2+160(FP)
	VZEROUPPER
	RET

// func dotPairAbsAVX(x, ax, y []float64) (dot, absdot float64)
//
// One pass of the ABFT checksum dot products over the common 4-aligned
// length: dot += x·y and absdot += ax·|y| per lane. Separate VMULPD+VADDPD;
// reduction is (l0+l2)+(l1+l3).
TEXT ·dotPairAbsAVX(SB), NOSPLIT, $0-88
	MOVQ x_base+0(FP), SI
	MOVQ x_len+8(FP), CX
	SHRQ $2, CX
	MOVQ ax_base+24(FP), DI
	MOVQ y_base+48(FP), R8
	VMOVUPD signmask<>(SB), Y13
	VXORPD Y0, Y0, Y0            // dot lanes
	VXORPD Y1, Y1, Y1            // absdot lanes
loop:
	VMOVUPD (R8), Y9             // y quad
	VMOVUPD (SI), Y8             // x quad
	VMULPD Y9, Y8, Y8            // x·y
	VADDPD Y8, Y0, Y0
	VANDNPD Y9, Y13, Y9          // |y|
	VMOVUPD (DI), Y8             // ax quad
	VMULPD Y9, Y8, Y8            // ax·|y|
	VADDPD Y8, Y1, Y1
	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, R8
	DECQ CX
	JNZ  loop

	VEXTRACTF128 $1, Y0, X8
	VADDPD X8, X0, X0
	VHADDPD X0, X0, X0
	MOVSD X0, dot+72(FP)
	VEXTRACTF128 $1, Y1, X8
	VADDPD X8, X1, X1
	VHADDPD X1, X1, X1
	MOVSD X1, absdot+80(FP)
	VZEROUPPER
	RET

// func sumAVX(x []float64) float64
//
// Σ x over len(x) (a multiple of 4) with lane accumulators; reduction is
// (l0+l2)+(l1+l3).
TEXT ·sumAVX(SB), NOSPLIT, $0-32
	MOVQ x_base+0(FP), SI
	MOVQ x_len+8(FP), CX
	SHRQ $2, CX
	VXORPD Y0, Y0, Y0
loop:
	VMOVUPD (SI), Y8
	VADDPD Y8, Y0, Y0
	ADDQ $32, SI
	DECQ CX
	JNZ  loop

	VEXTRACTF128 $1, Y0, X8
	VADDPD X8, X0, X0
	VHADDPD X0, X0, X0
	MOVSD X0, ret+24(FP)
	VZEROUPPER
	RET
