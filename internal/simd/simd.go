// Package simd provides the vector kernels of the secular phase of the D&C
// eigensolver: the ψ/φ/erretm partial sums of the secular function and its
// derivative (Dlaed4's inner loops), the fused reciprocal-difference products
// of Gu's stabilization (ComputeLocalW), the form-and-normalize ratios of the
// secular eigenvectors (ComputeVect), and the cross-panel product reduction
// (ReduceW). On amd64 with AVX2+FMA the kernels dispatch to hand-written
// assembly (simd_amd64.s), gated by the same CPUID/XGETBV usability test as
// the blocked-GEMM micro-kernel; everywhere else they run portable Go.
//
// Kernel semantics are fixed independently of dispatch: the assembly and the
// portable fallbacks process elements in the same order — four interleaved
// lane accumulators over the 4-aligned prefix, combined as (l0+l2)+(l1+l3),
// then the scalar tail — with the same rounding (the accumulations use
// separate multiply and add, never FMA contractions, and divisions and square
// roots are correctly rounded on both paths). A solve therefore computes
// bitwise-identical results whether the assembly kernels are active or not.
// The loops are division-bound, so skipping FMA in the surrounding adds
// costs nothing.
package simd

import "math"

// active gates dispatch to the assembly kernels. Flipped only by SetSIMD
// (benchmarks and property tests); not safe to toggle concurrently with
// kernel calls.
var active = haveSIMD

// Available reports whether the AVX2+FMA assembly kernels exist on this
// platform and CPU.
func Available() bool { return haveSIMD }

// Active reports whether kernel calls currently dispatch to assembly.
func Active() bool { return active }

// SetSIMD enables or disables the assembly kernels. Enabling is a no-op when
// the hardware does not support them. Intended for benchmarks and tests
// (scalar-vs-SIMD columns); do not toggle concurrently with kernel use.
func SetSIMD(on bool) { active = on && haveSIMD }

// SecularSums accumulates, over j in [0, len(z)), the three sums of one
// secular-function evaluation pass with t_j = z[j]/delta[j]:
//
//	s  = Σ z[j]·t_j          (ψ or φ, the secular partial sum)
//	ds = Σ t_j·t_j           (its derivative)
//	ws = Σ (w0+j·wstep)·z[j]·t_j
//
// ws is the running-prefix error accumulation of LAPACK DLAED4 rewritten as
// a weighted single pass: the reference adds the prefix sum of ψ to erretm
// after every term, which weights term j by the number of remaining terms.
// Forward (ascending) accumulation over m terms uses w0=m, wstep=-1; the
// reference's descending φ loop maps to w0=1, wstep=+1 over the same slice
// in ascending order. Weights must be exactly representable integers.
func SecularSums(z, delta []float64, w0, wstep float64) (s, ds, ws float64) {
	n := len(z)
	n4 := n &^ 3
	if n4 > 0 {
		if active {
			s, ds, ws = secularSumsAVX(z[:n4], delta[:n4], w0, wstep)
		} else {
			s, ds, ws = secularSumsGo(z[:n4], delta[:n4], w0, wstep)
		}
	}
	for j := n4; j < n; j++ {
		t := z[j] / delta[j]
		p := z[j] * t
		s += p
		ds += t * t
		ws += (w0 + float64(j)*wstep) * p
	}
	return s, ds, ws
}

func secularSumsGo(z, delta []float64, w0, wstep float64) (s, ds, ws float64) {
	var s0, s1, s2, s3, d0, d1, d2, d3, u0, u1, u2, u3 float64
	wv0, wv1, wv2, wv3 := w0, w0+wstep, w0+2*wstep, w0+3*wstep
	wstep4 := 4 * wstep
	for j := 0; j+3 < len(z); j += 4 {
		t0 := z[j] / delta[j]
		t1 := z[j+1] / delta[j+1]
		t2 := z[j+2] / delta[j+2]
		t3 := z[j+3] / delta[j+3]
		p0 := z[j] * t0
		p1 := z[j+1] * t1
		p2 := z[j+2] * t2
		p3 := z[j+3] * t3
		s0 += p0
		s1 += p1
		s2 += p2
		s3 += p3
		d0 += t0 * t0
		d1 += t1 * t1
		d2 += t2 * t2
		d3 += t3 * t3
		u0 += wv0 * p0
		u1 += wv1 * p1
		u2 += wv2 * p2
		u3 += wv3 * p3
		wv0 += wstep4
		wv1 += wstep4
		wv2 += wstep4
		wv3 += wstep4
	}
	return (s0 + s2) + (s1 + s3), (d0 + d2) + (d1 + d3), (u0 + u2) + (u1 + u3)
}

// SumRatios returns Σ (z[j]·z[j])/den[j], the plain secular partial sum used
// by Dlaed4's initial-guess evaluations.
func SumRatios(z, den []float64) float64 {
	return ShiftedSumRatios(den, z, 0, 0)
}

// ShiftedSumRatios returns Σ z[j]·z[j] / ((d[j]-org)-tau), the secular
// function body evaluated with the cancellation-free two-step shift — the
// inner loop of the bisection safeguard Dlaed4Bisect.
func ShiftedSumRatios(d, z []float64, org, tau float64) (s float64) {
	n := len(d)
	n4 := n &^ 3
	if n4 > 0 {
		if active {
			s = shiftedSumAVX(d[:n4], z[:n4], org, tau)
		} else {
			s = shiftedSumGo(d[:n4], z[:n4], org, tau)
		}
	}
	for j := n4; j < n; j++ {
		s += z[j] * z[j] / ((d[j] - org) - tau)
	}
	return s
}

func shiftedSumGo(d, z []float64, org, tau float64) float64 {
	var s0, s1, s2, s3 float64
	for j := 0; j+3 < len(d); j += 4 {
		s0 += z[j] * z[j] / ((d[j] - org) - tau)
		s1 += z[j+1] * z[j+1] / ((d[j+1] - org) - tau)
		s2 += z[j+2] * z[j+2] / ((d[j+2] - org) - tau)
		s3 += z[j+3] * z[j+3] / ((d[j+3] - org) - tau)
	}
	return (s0 + s2) + (s1 + s3)
}

// MulRatioDiff performs w[i] *= num[i] / (den[i] - dj) elementwise — one
// panel column's factors of Gu's stabilization product (ComputeLocalW),
// with the pole term i==j carved out by the caller. The three slices must
// have equal length.
func MulRatioDiff(w, num, den []float64, dj float64) {
	n := len(w)
	n4 := n &^ 3
	if n4 > 0 && active {
		mulRatioDiffAVX(w[:n4], num[:n4], den[:n4], dj)
	} else {
		n4 = 0
	}
	for i := n4; i < n; i++ {
		w[i] *= num[i] / (den[i] - dj)
	}
}

// RatioSumSq sets dst[i] = num[i]/den[i] elementwise and returns Σ dst[i]²
// — the fused form-and-sum-of-squares pass of ComputeVect. The caller is
// responsible for guarding against overflow/underflow of the squared sum
// (fall back to a scaled norm when the result is not a normal float).
func RatioSumSq(dst, num, den []float64) (s float64) {
	n := len(dst)
	n4 := n &^ 3
	if n4 > 0 {
		if active {
			s = ratioSumSqAVX(dst[:n4], num[:n4], den[:n4])
		} else {
			s = ratioSumSqGo(dst[:n4], num[:n4], den[:n4])
		}
	}
	for i := n4; i < n; i++ {
		t := num[i] / den[i]
		dst[i] = t
		s += t * t
	}
	return s
}

func ratioSumSqGo(dst, num, den []float64) float64 {
	var s0, s1, s2, s3 float64
	for i := 0; i+3 < len(dst); i += 4 {
		t0 := num[i] / den[i]
		t1 := num[i+1] / den[i+1]
		t2 := num[i+2] / den[i+2]
		t3 := num[i+3] / den[i+3]
		dst[i] = t0
		dst[i+1] = t1
		dst[i+2] = t2
		dst[i+3] = t3
		s0 += t0 * t0
		s1 += t1 * t1
		s2 += t2 * t2
		s3 += t3 * t3
	}
	return (s0 + s2) + (s1 + s3)
}

// MulInto performs dst[i] *= src[i] elementwise — the cross-panel reduction
// of Gu's partial products (ReduceW).
func MulInto(dst, src []float64) {
	n := len(dst)
	n4 := n &^ 3
	if n4 > 0 && active {
		mulIntoAVX(dst[:n4], src[:n4])
	} else {
		n4 = 0
	}
	for i := n4; i < n; i++ {
		dst[i] *= src[i]
	}
}

// NegSqrtSign sets dst[i] = copysign(sqrt(-p[i]), sgn[i]) elementwise — the
// final step of ReduceW, restoring the original secular weight signs onto
// the stabilized magnitudes. dst and p may alias. Unlike the Fortran SIGN
// intrinsic this is bit copysign (sgn is a secular weight and never -0, so
// the distinction is unobservable in the solver).
func NegSqrtSign(dst, p, sgn []float64) {
	n := len(dst)
	n4 := n &^ 3
	if n4 > 0 && active {
		negSqrtSignAVX(dst[:n4], p[:n4], sgn[:n4])
	} else {
		n4 = 0
	}
	for i := n4; i < n; i++ {
		dst[i] = math.Copysign(math.Sqrt(-p[i]), sgn[i])
	}
}
