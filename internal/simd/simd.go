// Package simd provides the vector kernels of the secular phase of the D&C
// eigensolver: the ψ/φ/erretm partial sums of the secular function and its
// derivative (Dlaed4's inner loops), the fused reciprocal-difference products
// of Gu's stabilization (ComputeLocalW), the form-and-normalize ratios of the
// secular eigenvectors (ComputeVect), and the cross-panel product reduction
// (ReduceW). On amd64 with AVX2+FMA the kernels dispatch to hand-written
// assembly (simd_amd64.s), gated by the same CPUID/XGETBV usability test as
// the blocked-GEMM micro-kernel; everywhere else they run portable Go.
//
// Kernel semantics are fixed independently of dispatch: the assembly and the
// portable fallbacks process elements in the same order — four interleaved
// lane accumulators over the 4-aligned prefix, combined as (l0+l2)+(l1+l3),
// then the scalar tail — with the same rounding (the accumulations use
// separate multiply and add, never FMA contractions, and divisions and square
// roots are correctly rounded on both paths). A solve therefore computes
// bitwise-identical results whether the assembly kernels are active or not.
// The loops are division-bound, so skipping FMA in the surrounding adds
// costs nothing.
package simd

import "math"

// active gates dispatch to the assembly kernels. Flipped only by SetSIMD
// (benchmarks and property tests); not safe to toggle concurrently with
// kernel calls.
var active = haveSIMD

// Available reports whether the AVX2+FMA assembly kernels exist on this
// platform and CPU.
func Available() bool { return haveSIMD }

// Active reports whether kernel calls currently dispatch to assembly.
func Active() bool { return active }

// SetSIMD enables or disables the assembly kernels. Enabling is a no-op when
// the hardware does not support them. Intended for benchmarks and tests
// (scalar-vs-SIMD columns); do not toggle concurrently with kernel use.
func SetSIMD(on bool) { active = on && haveSIMD }

// SecularSums accumulates, over j in [0, len(z)), the three sums of one
// secular-function evaluation pass with t_j = z[j]/delta[j]:
//
//	s  = Σ z[j]·t_j          (ψ or φ, the secular partial sum)
//	ds = Σ t_j·t_j           (its derivative)
//	ws = Σ (w0+j·wstep)·z[j]·t_j
//
// ws is the running-prefix error accumulation of LAPACK DLAED4 rewritten as
// a weighted single pass: the reference adds the prefix sum of ψ to erretm
// after every term, which weights term j by the number of remaining terms.
// Forward (ascending) accumulation over m terms uses w0=m, wstep=-1; the
// reference's descending φ loop maps to w0=1, wstep=+1 over the same slice
// in ascending order. Weights must be exactly representable integers.
func SecularSums(z, delta []float64, w0, wstep float64) (s, ds, ws float64) {
	n := len(z)
	n4 := n &^ 3
	if n4 > 0 {
		if active {
			s, ds, ws = secularSumsAVX(z[:n4], delta[:n4], w0, wstep)
		} else {
			s, ds, ws = secularSumsGo(z[:n4], delta[:n4], w0, wstep)
		}
	}
	for j := n4; j < n; j++ {
		t := z[j] / delta[j]
		p := z[j] * t
		s += p
		ds += t * t
		ws += (w0 + float64(j)*wstep) * p
	}
	return s, ds, ws
}

func secularSumsGo(z, delta []float64, w0, wstep float64) (s, ds, ws float64) {
	var s0, s1, s2, s3, d0, d1, d2, d3, u0, u1, u2, u3 float64
	wv0, wv1, wv2, wv3 := w0, w0+wstep, w0+2*wstep, w0+3*wstep
	wstep4 := 4 * wstep
	for j := 0; j+3 < len(z); j += 4 {
		t0 := z[j] / delta[j]
		t1 := z[j+1] / delta[j+1]
		t2 := z[j+2] / delta[j+2]
		t3 := z[j+3] / delta[j+3]
		p0 := z[j] * t0
		p1 := z[j+1] * t1
		p2 := z[j+2] * t2
		p3 := z[j+3] * t3
		s0 += p0
		s1 += p1
		s2 += p2
		s3 += p3
		d0 += t0 * t0
		d1 += t1 * t1
		d2 += t2 * t2
		d3 += t3 * t3
		u0 += wv0 * p0
		u1 += wv1 * p1
		u2 += wv2 * p2
		u3 += wv3 * p3
		wv0 += wstep4
		wv1 += wstep4
		wv2 += wstep4
		wv3 += wstep4
	}
	return (s0 + s2) + (s1 + s3), (d0 + d2) + (d1 + d3), (u0 + u2) + (u1 + u3)
}

// SumRatios returns Σ (z[j]·z[j])/den[j], the plain secular partial sum used
// by Dlaed4's initial-guess evaluations.
func SumRatios(z, den []float64) float64 {
	return ShiftedSumRatios(den, z, 0, 0)
}

// ShiftedSumRatios returns Σ z[j]·z[j] / ((d[j]-org)-tau), the secular
// function body evaluated with the cancellation-free two-step shift — the
// inner loop of the bisection safeguard Dlaed4Bisect.
func ShiftedSumRatios(d, z []float64, org, tau float64) (s float64) {
	n := len(d)
	n4 := n &^ 3
	if n4 > 0 {
		if active {
			s = shiftedSumAVX(d[:n4], z[:n4], org, tau)
		} else {
			s = shiftedSumGo(d[:n4], z[:n4], org, tau)
		}
	}
	for j := n4; j < n; j++ {
		s += z[j] * z[j] / ((d[j] - org) - tau)
	}
	return s
}

func shiftedSumGo(d, z []float64, org, tau float64) float64 {
	var s0, s1, s2, s3 float64
	for j := 0; j+3 < len(d); j += 4 {
		s0 += z[j] * z[j] / ((d[j] - org) - tau)
		s1 += z[j+1] * z[j+1] / ((d[j+1] - org) - tau)
		s2 += z[j+2] * z[j+2] / ((d[j+2] - org) - tau)
		s3 += z[j+3] * z[j+3] / ((d[j+3] - org) - tau)
	}
	return (s0 + s2) + (s1 + s3)
}

// MulRatioDiff performs w[i] *= num[i] / (den[i] - dj) elementwise — one
// panel column's factors of Gu's stabilization product (ComputeLocalW),
// with the pole term i==j carved out by the caller. The three slices must
// have equal length.
func MulRatioDiff(w, num, den []float64, dj float64) {
	n := len(w)
	n4 := n &^ 3
	if n4 > 0 && active {
		mulRatioDiffAVX(w[:n4], num[:n4], den[:n4], dj)
	} else {
		n4 = 0
	}
	for i := n4; i < n; i++ {
		w[i] *= num[i] / (den[i] - dj)
	}
}

// RatioSumSq sets dst[i] = num[i]/den[i] elementwise and returns Σ dst[i]²
// — the fused form-and-sum-of-squares pass of ComputeVect. The caller is
// responsible for guarding against overflow/underflow of the squared sum
// (fall back to a scaled norm when the result is not a normal float).
func RatioSumSq(dst, num, den []float64) (s float64) {
	n := len(dst)
	n4 := n &^ 3
	if n4 > 0 {
		if active {
			s = ratioSumSqAVX(dst[:n4], num[:n4], den[:n4])
		} else {
			s = ratioSumSqGo(dst[:n4], num[:n4], den[:n4])
		}
	}
	for i := n4; i < n; i++ {
		t := num[i] / den[i]
		dst[i] = t
		s += t * t
	}
	return s
}

func ratioSumSqGo(dst, num, den []float64) float64 {
	var s0, s1, s2, s3 float64
	for i := 0; i+3 < len(dst); i += 4 {
		t0 := num[i] / den[i]
		t1 := num[i+1] / den[i+1]
		t2 := num[i+2] / den[i+2]
		t3 := num[i+3] / den[i+3]
		dst[i] = t0
		dst[i+1] = t1
		dst[i+2] = t2
		dst[i+3] = t3
		s0 += t0 * t0
		s1 += t1 * t1
		s2 += t2 * t2
		s3 += t3 * t3
	}
	return (s0 + s2) + (s1 + s3)
}

// MulInto performs dst[i] *= src[i] elementwise — the cross-panel reduction
// of Gu's partial products (ReduceW).
func MulInto(dst, src []float64) {
	n := len(dst)
	n4 := n &^ 3
	if n4 > 0 && active {
		mulIntoAVX(dst[:n4], src[:n4])
	} else {
		n4 = 0
	}
	for i := n4; i < n; i++ {
		dst[i] *= src[i]
	}
}

// NegSqrtSign sets dst[i] = copysign(sqrt(-p[i]), sgn[i]) elementwise — the
// final step of ReduceW, restoring the original secular weight signs onto
// the stabilized magnitudes. dst and p may alias. Unlike the Fortran SIGN
// intrinsic this is bit copysign (sgn is a secular weight and never -0, so
// the distinction is unobservable in the solver).
func NegSqrtSign(dst, p, sgn []float64) {
	n := len(dst)
	n4 := n &^ 3
	if n4 > 0 && active {
		negSqrtSignAVX(dst[:n4], p[:n4], sgn[:n4])
	} else {
		n4 = 0
	}
	for i := n4; i < n; i++ {
		dst[i] = math.Copysign(math.Sqrt(-p[i]), sgn[i])
	}
}

// TridiagResidual accumulates, for one eigenpair (lam, v) of the symmetric
// tridiagonal matrix (d, e), the squared residual norm and the squared
// vector norm in one fused pass:
//
//	r2 = Σ_i (T·v − lam·v)_i²       v2 = Σ_i v_i²
//
// — the per-column work of the always-on result audit (eigen, DESIGN.md
// §18). The boundary rows (no sub-/super-diagonal term) and a short tail
// run here; interior rows run in octs (two quads) in the kernel.
//
// Unlike the secular kernels this one uses FMA: the audit sweep is
// arithmetic-bound (11 FP ops per lane without fusion), and the audit path
// has no VDIVPD to hide the extra instructions behind, so fusing roughly
// halves its cost. The portable fallback mirrors the fused lane expression
// with math.FMA (a single hardware instruction on amd64/arm64), keeping the
// two dispatch paths bitwise identical.
func TridiagResidual(d, e, v []float64, lam float64) (r2, v2 float64) {
	n := len(v)
	if n == 0 {
		return 0, 0
	}
	if n == 1 {
		s := d[0]*v[0] - lam*v[0]
		return s * s, v[0] * v[0]
	}
	s := d[0]*v[0] + e[0]*v[1] - lam*v[0]
	r2 = s * s
	v2 = v[0] * v[0]
	in := (n - 2) &^ 7
	if in > 0 {
		var ir2, iv2 float64
		if active {
			ir2, iv2 = tridiagResidualAVX(d[1:1+in], e[0:in], e[1:1+in], v[0:in], v[1:1+in], v[2:2+in], lam)
		} else {
			ir2, iv2 = tridiagResidualGo(d[1:1+in], e[0:in], e[1:1+in], v[0:in], v[1:1+in], v[2:2+in], lam)
		}
		r2 += ir2
		v2 += iv2
	}
	for i := 1 + in; i < n-1; i++ {
		s := ((d[i]*v[i] + e[i-1]*v[i-1]) + e[i]*v[i+1]) - lam*v[i]
		r2 += s * s
		v2 += v[i] * v[i]
	}
	s = d[n-1]*v[n-1] + e[n-2]*v[n-2] - lam*v[n-1]
	r2 += s * s
	v2 += v[n-1] * v[n-1]
	return r2, v2
}

// tridiagResidualGo is the portable interior-row kernel: all six slices have
// the same 8-aligned length, lane j covering interior row i = base+j with
// dd=d[i], em=e[i-1], ep=e[i], vm=v[i-1], vv=v[i], vp=v[i+1]. The fused
// lane expression, the two accumulator sets (one per quad of the oct), and
// the A_l+B_l then (l0+l2)+(l1+l3) reduction mirror the assembly exactly.
func tridiagResidualGo(dd, em, ep, vm, vv, vp []float64, lam float64) (r2, v2 float64) {
	nlam := -lam
	var ra, rb, na, nb [4]float64
	for j := 0; j+7 < len(vv); j += 8 {
		for l := 0; l < 4; l++ {
			i := j + l
			s := dd[i] * vv[i]
			s = math.FMA(em[i], vm[i], s)
			s = math.FMA(ep[i], vp[i], s)
			s = math.FMA(nlam, vv[i], s)
			ra[l] = math.FMA(s, s, ra[l])
			na[l] = math.FMA(vv[i], vv[i], na[l])
		}
		for l := 0; l < 4; l++ {
			i := j + 4 + l
			s := dd[i] * vv[i]
			s = math.FMA(em[i], vm[i], s)
			s = math.FMA(ep[i], vp[i], s)
			s = math.FMA(nlam, vv[i], s)
			rb[l] = math.FMA(s, s, rb[l])
			nb[l] = math.FMA(vv[i], vv[i], nb[l])
		}
	}
	r0, r1, r2l, r3 := ra[0]+rb[0], ra[1]+rb[1], ra[2]+rb[2], ra[3]+rb[3]
	n0, n1, n2, n3 := na[0]+nb[0], na[1]+nb[1], na[2]+nb[2], na[3]+nb[3]
	return (r0 + r2l) + (r1 + r3), (n0 + n2) + (n1 + n3)
}

// DotPairAbs accumulates the two dot products of one ABFT checksum
// verification (internal/blas, DESIGN.md §18) in a single pass:
//
//	dot = Σ x[j]·y[j]        absdot = Σ ax[j]·|y[j]|
//
// with x the checksum row, ax the absolute checksum row and y the streamed
// B column. Lane-ordered accumulation; bitwise identical with and without
// assembly.
func DotPairAbs(x, ax, y []float64) (dot, absdot float64) {
	n := len(y)
	n4 := n &^ 3
	if n4 > 0 {
		if active {
			dot, absdot = dotPairAbsAVX(x[:n4], ax[:n4], y[:n4])
		} else {
			dot, absdot = dotPairAbsGo(x[:n4], ax[:n4], y[:n4])
		}
	}
	for j := n4; j < n; j++ {
		dot += x[j] * y[j]
		absdot += ax[j] * math.Abs(y[j])
	}
	return dot, absdot
}

func dotPairAbsGo(x, ax, y []float64) (dot, absdot float64) {
	var d0, d1, d2, d3, a0, a1, a2, a3 float64
	for j := 0; j+3 < len(y); j += 4 {
		d0 += x[j] * y[j]
		d1 += x[j+1] * y[j+1]
		d2 += x[j+2] * y[j+2]
		d3 += x[j+3] * y[j+3]
		a0 += ax[j] * math.Abs(y[j])
		a1 += ax[j+1] * math.Abs(y[j+1])
		a2 += ax[j+2] * math.Abs(y[j+2])
		a3 += ax[j+3] * math.Abs(y[j+3])
	}
	return (d0 + d2) + (d1 + d3), (a0 + a2) + (a1 + a3)
}

// Sum returns Σ x[j] with lane-ordered accumulation — the output-column
// summation of the ABFT checksum verification. Bitwise identical with and
// without assembly.
func Sum(x []float64) (s float64) {
	n := len(x)
	n4 := n &^ 3
	if n4 > 0 {
		if active {
			s = sumAVX(x[:n4])
		} else {
			s = sumGo(x[:n4])
		}
	}
	for j := n4; j < n; j++ {
		s += x[j]
	}
	return s
}

func sumGo(x []float64) float64 {
	var s0, s1, s2, s3 float64
	for j := 0; j+3 < len(x); j += 4 {
		s0 += x[j]
		s1 += x[j+1]
		s2 += x[j+2]
		s3 += x[j+3]
	}
	return (s0 + s2) + (s1 + s3)
}
