package simd

import (
	"math"
	"math/rand"
	"testing"
)

// testLengths exercises every tail shape (0–3 leftover lanes), the pure-tail
// lengths 1–3, and larger panels.
var testLengths = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 31, 64, 257, 1024}

type inputCase struct {
	name string
	gen  func(rng *rand.Rand, n int) (z, den []float64)
}

// inputCases covers the regimes the secular phase actually sees: generic
// spectra, near-pole clustered denominators with gaps near eps, denormal
// z-components after deflation scaling, and extreme ±1e±300 magnitudes.
var inputCases = []inputCase{
	{"random", func(rng *rand.Rand, n int) ([]float64, []float64) {
		z := make([]float64, n)
		den := make([]float64, n)
		for i := range z {
			z[i] = 2*rng.Float64() - 1
			den[i] = (0.5 + rng.Float64()) * sign1(rng)
		}
		return z, den
	}},
	{"clustered-poles", func(rng *rand.Rand, n int) ([]float64, []float64) {
		z := make([]float64, n)
		den := make([]float64, n)
		for i := range z {
			z[i] = 2*rng.Float64() - 1
			// Gaps within a few ulps of a pole: |den| in [eps, 16eps).
			den[i] = (1 + 15*rng.Float64()) * 0x1p-52 * sign1(rng)
		}
		return z, den
	}},
	{"denormal-z", func(rng *rand.Rand, n int) ([]float64, []float64) {
		z := make([]float64, n)
		den := make([]float64, n)
		for i := range z {
			z[i] = float64(1+rng.Intn(1<<20)) * 5e-324
			den[i] = (0.5 + rng.Float64()) * sign1(rng)
		}
		return z, den
	}},
	{"huge-1e300", func(rng *rand.Rand, n int) ([]float64, []float64) {
		z := make([]float64, n)
		den := make([]float64, n)
		for i := range z {
			z[i] = (0.5 + rng.Float64()) * 1e300 * sign1(rng)
			den[i] = (0.5 + rng.Float64()) * 1e300 * sign1(rng)
		}
		return z, den
	}},
	{"tiny-1e-300", func(rng *rand.Rand, n int) ([]float64, []float64) {
		z := make([]float64, n)
		den := make([]float64, n)
		for i := range z {
			z[i] = (0.5 + rng.Float64()) * 1e-300 * sign1(rng)
			den[i] = (0.5 + rng.Float64()) * sign1(rng)
		}
		return z, den
	}},
}

func sign1(rng *rand.Rand) float64 {
	if rng.Intn(2) == 0 {
		return -1
	}
	return 1
}

// ulpDiff returns the distance in representable float64s between a and b,
// with NaN==NaN treated as 0 and differing infinities as maximal.
func ulpDiff(a, b float64) uint64 {
	if math.IsNaN(a) && math.IsNaN(b) {
		return 0
	}
	ia, ib := int64(math.Float64bits(a)), int64(math.Float64bits(b))
	// Map to a monotone integer line so negatives compare correctly.
	if ia < 0 {
		ia = math.MinInt64 - ia
	}
	if ib < 0 {
		ib = math.MinInt64 - ib
	}
	d := ia - ib
	if d < 0 {
		d = -d
	}
	return uint64(d)
}

const maxULP = 4 // acceptance bound; the design target is bitwise (0 ulp)

func checkULP(t *testing.T, what string, got, want float64) {
	t.Helper()
	if d := ulpDiff(got, want); d > maxULP {
		t.Errorf("%s: SIMD=%g (%#x) scalar=%g (%#x): %d ulp apart",
			what, got, math.Float64bits(got), want, math.Float64bits(want), d)
	}
}

// forEachCase runs f for every input family and length, once with the
// assembly kernels forced off and once forced on, handing both results to
// the comparison callback.
func compareDispatch(t *testing.T, f func(z, den []float64) []float64) {
	if !Available() {
		t.Skip("no AVX2+FMA assembly kernels on this platform")
	}
	defer SetSIMD(Available())
	rng := rand.New(rand.NewSource(20150525))
	for _, tc := range inputCases {
		t.Run(tc.name, func(t *testing.T) {
			for _, n := range testLengths {
				z, den := tc.gen(rng, n)
				SetSIMD(false)
				want := f(append([]float64(nil), z...), append([]float64(nil), den...))
				SetSIMD(true)
				got := f(append([]float64(nil), z...), append([]float64(nil), den...))
				for i := range want {
					if d := ulpDiff(got[i], want[i]); d > maxULP {
						t.Errorf("n=%d out[%d]: SIMD=%g scalar=%g (%d ulp)", n, i, got[i], want[i], d)
					}
				}
			}
		})
	}
}

func TestSecularSumsMatchesScalar(t *testing.T) {
	compareDispatch(t, func(z, den []float64) []float64 {
		// Forward ψ weights (w0=n, step -1) and descending-φ weights (w0=1,
		// step +1), both as used by Dlaed4.
		s1, d1, w1 := SecularSums(z, den, float64(len(z)), -1)
		s2, d2, w2 := SecularSums(z, den, 1, 1)
		return []float64{s1, d1, w1, s2, d2, w2}
	})
}

func TestShiftedSumRatiosMatchesScalar(t *testing.T) {
	compareDispatch(t, func(z, den []float64) []float64 {
		var org, tau float64
		if len(den) > 0 {
			org = den[0]
			tau = den[len(den)-1] * 0x1p-30
		}
		return []float64{
			ShiftedSumRatios(den, z, org, tau),
			SumRatios(z, den),
		}
	})
}

func TestMulRatioDiffMatchesScalar(t *testing.T) {
	compareDispatch(t, func(z, den []float64) []float64 {
		w := make([]float64, len(z))
		for i := range w {
			w[i] = 1 - float64(i%7)/3
		}
		MulRatioDiff(w, z, den, 0.25)
		return w
	})
}

func TestRatioSumSqMatchesScalar(t *testing.T) {
	compareDispatch(t, func(z, den []float64) []float64 {
		dst := make([]float64, len(z))
		s := RatioSumSq(dst, z, den)
		return append(dst, s)
	})
}

func TestMulIntoMatchesScalar(t *testing.T) {
	compareDispatch(t, func(z, den []float64) []float64 {
		dst := append([]float64(nil), z...)
		MulInto(dst, den)
		return dst
	})
}

func TestNegSqrtSignMatchesScalar(t *testing.T) {
	compareDispatch(t, func(z, den []float64) []float64 {
		// p must be ≤ 0 (a product of an even sign pattern negated), so feed
		// -|z·den| and use den as the sign carrier.
		p := make([]float64, len(z))
		for i := range p {
			p[i] = -math.Abs(z[i] * den[i])
		}
		dst := make([]float64, len(p))
		NegSqrtSign(dst, p, den)
		// Also the aliased form used by ReduceW (dst == p).
		NegSqrtSign(p, p, den)
		return append(dst, p...)
	})
}

// TestSecularSumsAgainstNaive checks the weighted-prefix rewrite against a
// literal transcription of LAPACK's per-term running accumulation on benign
// all-positive inputs (no cancellation), where reassociation error stays
// well under the acceptance bound.
func TestSecularSumsAgainstNaive(t *testing.T) {
	defer SetSIMD(Available())
	rng := rand.New(rand.NewSource(7))
	for _, n := range testLengths {
		z := make([]float64, n)
		den := make([]float64, n)
		for i := range z {
			z[i] = 0.5 + rng.Float64()
			den[i] = 0.5 + rng.Float64()
		}
		// Naive forward pass: psi += p; erretm += psi after every term.
		var psi, dpsi, erretm float64
		for j := 0; j < n; j++ {
			tj := z[j] / den[j]
			psi += z[j] * tj
			dpsi += tj * tj
			erretm += psi
		}
		for _, on := range []bool{false, true} {
			SetSIMD(on)
			s, ds, ws := SecularSums(z, den, float64(n), -1)
			rel := func(a, b float64) float64 { return math.Abs(a-b) / math.Max(math.Abs(b), 1e-300) }
			if rel(s, psi) > 1e-13 || rel(ds, dpsi) > 1e-13 || rel(ws, erretm) > 1e-13 {
				t.Errorf("n=%d simd=%v: got (%g,%g,%g) want (%g,%g,%g)", n, on, s, ds, ws, psi, dpsi, erretm)
			}
		}
	}
}

// TestDescendingWeightMapping checks the φ mapping: LAPACK's descending loop
// over j=k-1..ii+1 with erretm += phi per term weights term j (ascending
// index) by j-ii, i.e. w0=1, wstep=+1 over the ascending slice.
func TestDescendingWeightMapping(t *testing.T) {
	defer SetSIMD(Available())
	rng := rand.New(rand.NewSource(11))
	n := 13
	z := make([]float64, n)
	den := make([]float64, n)
	for i := range z {
		z[i] = 0.5 + rng.Float64()
		den[i] = -(0.5 + rng.Float64())
	}
	var phi, erretm float64
	for j := n - 1; j >= 0; j-- {
		tj := z[j] / den[j]
		phi += z[j] * tj
		erretm += phi
	}
	for _, on := range []bool{false, true} {
		SetSIMD(on)
		s, _, ws := SecularSums(z, den, 1, 1)
		if math.Abs(s-phi) > 1e-13*math.Abs(phi) || math.Abs(ws-erretm) > 1e-13*math.Abs(erretm) {
			t.Errorf("simd=%v: got s=%g ws=%g want phi=%g erretm=%g", on, s, ws, phi, erretm)
		}
	}
}

func TestSetSIMD(t *testing.T) {
	defer SetSIMD(Available())
	SetSIMD(false)
	if Active() {
		t.Fatal("Active() true after SetSIMD(false)")
	}
	SetSIMD(true)
	if Active() != Available() {
		t.Fatalf("Active()=%v, want Available()=%v", Active(), Available())
	}
}
