package simd

import (
	"math/rand"
	"testing"
)

func benchInputs(k int) (z, den []float64) {
	rng := rand.New(rand.NewSource(1))
	z = make([]float64, k)
	den = make([]float64, k)
	for i := range z {
		z[i] = 2*rng.Float64() - 1
		den[i] = 0.5 + rng.Float64()
		if i%2 == 0 {
			den[i] = -den[i]
		}
	}
	return z, den
}

func benchBoth(b *testing.B, k int, f func(z, den []float64)) {
	z, den := benchInputs(k)
	for _, mode := range []struct {
		name string
		on   bool
	}{{"scalar", false}, {"simd", true}} {
		b.Run(mode.name, func(b *testing.B) {
			if mode.on && !Available() {
				b.Skip("no AVX2+FMA")
			}
			defer SetSIMD(Available())
			SetSIMD(mode.on)
			b.SetBytes(int64(16 * k))
			for i := 0; i < b.N; i++ {
				f(z, den)
			}
		})
	}
}

func BenchmarkSecularSums(b *testing.B) {
	for _, k := range []int{64, 256, 1024} {
		b.Run(sizeName(k), func(b *testing.B) {
			benchBoth(b, k, func(z, den []float64) {
				SecularSums(z, den, float64(len(z)), -1)
			})
		})
	}
}

func BenchmarkShiftedSumRatios(b *testing.B) {
	for _, k := range []int{64, 256, 1024} {
		b.Run(sizeName(k), func(b *testing.B) {
			benchBoth(b, k, func(z, den []float64) {
				ShiftedSumRatios(den, z, 0.1, 1e-8)
			})
		})
	}
}

func BenchmarkRatioSumSq(b *testing.B) {
	dst := make([]float64, 1024)
	for _, k := range []int{64, 256, 1024} {
		b.Run(sizeName(k), func(b *testing.B) {
			benchBoth(b, k, func(z, den []float64) {
				RatioSumSq(dst[:len(z)], z, den)
			})
		})
	}
}

func sizeName(k int) string {
	switch k {
	case 64:
		return "k=64"
	case 256:
		return "k=256"
	default:
		return "k=1024"
	}
}
