package simd

import (
	"math"
	"math/rand"
	"testing"
)

// TestTridiagResidualMatchesScalar: the fused residual/norm kernel must agree
// with the portable fallback across every tail shape and input family.
func TestTridiagResidualMatchesScalar(t *testing.T) {
	compareDispatch(t, func(z, den []float64) []float64 {
		n := len(z)
		if n == 0 {
			return nil
		}
		e := make([]float64, n-1)
		for i := range e {
			e[i] = den[i] * 0.25
		}
		lam := 0.0
		if n > 1 {
			lam = z[0] + den[n-1]*0x1p-20
		}
		r2, v2 := TridiagResidual(den, e, z, lam)
		return []float64{r2, v2}
	})
}

// TestTridiagResidualExact: against a hand-computed 3×3 case, including the
// boundary rows that run outside the quad loop.
func TestTridiagResidualExact(t *testing.T) {
	d := []float64{2, 3, 4}
	e := []float64{1, -1}
	v := []float64{0.5, -0.25, 0.125}
	lam := 1.5
	// T·v = (2·0.5 + 1·(−0.25), 1·0.5 + 3·(−0.25) + (−1)·0.125, (−1)·(−0.25) + 4·0.125)
	tv := []float64{0.75, -0.375, 0.75}
	var wantR2, wantV2 float64
	for i := range v {
		s := tv[i] - lam*v[i]
		wantR2 += s * s
		wantV2 += v[i] * v[i]
	}
	r2, v2 := TridiagResidual(d, e, v, lam)
	if math.Abs(r2-wantR2) > 1e-15 || math.Abs(v2-wantV2) > 1e-15 {
		t.Fatalf("TridiagResidual = (%g, %g), want (%g, %g)", r2, v2, wantR2, wantV2)
	}
	// n=1: residual is (d[0]−lam)·v[0].
	r2, v2 = TridiagResidual([]float64{5}, nil, []float64{2}, 3)
	if r2 != 16 || v2 != 4 {
		t.Fatalf("n=1: got (%g, %g), want (16, 4)", r2, v2)
	}
}

// TestDotPairAbsMatchesScalar: the fused checksum dot pair must agree with
// the portable fallback, including sign handling of |y|.
func TestDotPairAbsMatchesScalar(t *testing.T) {
	compareDispatch(t, func(z, den []float64) []float64 {
		ax := make([]float64, len(z))
		for i := range ax {
			ax[i] = math.Abs(z[i])
		}
		dot, absdot := DotPairAbs(z, ax, den)
		return []float64{dot, absdot}
	})
}

// TestSumMatchesScalar: the lane summation must agree with the portable
// fallback across tail shapes.
func TestSumMatchesScalar(t *testing.T) {
	compareDispatch(t, func(z, den []float64) []float64 {
		return []float64{Sum(z), Sum(den)}
	})
}

// TestSumNegZero: summing an empty and an all-(-0) slice — the lane
// accumulators start at +0, so the sign of zero follows IEEE addition.
func TestSumNegZero(t *testing.T) {
	if Sum(nil) != 0 {
		t.Fatal("Sum(nil) != 0")
	}
	neg := math.Copysign(0, -1)
	got := Sum([]float64{neg, neg, neg, neg, neg})
	if got != 0 {
		t.Fatalf("Sum of -0s = %g, want 0", got)
	}
}

// BenchmarkTridiagResidual measures the audit sweep's per-column kernel.
func BenchmarkTridiagResidual(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 2000
	d := make([]float64, n)
	e := make([]float64, n-1)
	v := make([]float64, n)
	for i := range d {
		d[i] = rng.NormFloat64()
		v[i] = rng.NormFloat64()
	}
	for i := range e {
		e[i] = rng.NormFloat64()
	}
	for _, on := range []bool{false, true} {
		name := "scalar"
		if on {
			if !Available() {
				continue
			}
			name = "avx"
		}
		b.Run(name, func(b *testing.B) {
			defer SetSIMD(Available())
			SetSIMD(on)
			b.SetBytes(n * 8)
			for i := 0; i < b.N; i++ {
				TridiagResidual(d, e, v, 0.5)
			}
		})
	}
}
