package core

import (
	"math"
	"math/rand"
	"testing"

	"tridiag/internal/lapack"
)

func randTridiag(rng *rand.Rand, n int) (d, e []float64) {
	d = make([]float64, n)
	e = make([]float64, max(n-1, 1))
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	for i := 0; i < n-1; i++ {
		e[i] = rng.NormFloat64()
	}
	return
}

func residualAndOrth(n int, d0, e0, lam, z []float64, ldz int) (res, orth float64) {
	y := make([]float64, n)
	for j := 0; j < n; j++ {
		v := z[j*ldz : j*ldz+n]
		for i := 0; i < n; i++ {
			s := d0[i] * v[i]
			if i > 0 {
				s += e0[i-1] * v[i-1]
			}
			if i < n-1 {
				s += e0[i] * v[i+1]
			}
			y[i] = s - lam[j]*v[i]
		}
		var nrm float64
		for _, t := range y {
			nrm += t * t
		}
		res = math.Max(res, math.Sqrt(nrm))
	}
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			var s float64
			zi, zj := z[i*ldz:i*ldz+n], z[j*ldz:j*ldz+n]
			for k := 0; k < n; k++ {
				s += zi[k] * zj[k]
			}
			if i == j {
				s -= 1
			}
			orth = math.Max(orth, math.Abs(s))
		}
	}
	return res, orth
}

func checkSolve(t *testing.T, name string, n int, d0, e0 []float64, opts *Options) {
	t.Helper()
	d := append([]float64(nil), d0...)
	e := append([]float64(nil), e0...)
	q := make([]float64, n*n)
	_, err := SolveDC(n, d, e, q, n, opts)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	for i := 1; i < n; i++ {
		if d[i] < d[i-1] {
			t.Fatalf("%s: eigenvalues not sorted at %d", name, i)
		}
	}
	nrm := lapack.Dlanst('M', n, d0, e0)
	if nrm == 0 {
		nrm = 1
	}
	res, orth := residualAndOrth(n, d0, e0, d, q, n)
	if res/(nrm*float64(n)) > 200*lapack.Eps {
		t.Errorf("%s: residual %.3e", name, res/(nrm*float64(n)))
	}
	if orth/float64(n) > 200*lapack.Eps {
		t.Errorf("%s: orthogonality %.3e", name, orth/float64(n))
	}
	// eigenvalues must match a direct QR solve
	dd := append([]float64(nil), d0...)
	ee := append([]float64(nil), e0...)
	if err := lapack.Dsteqr(lapack.CompNone, n, dd, ee, nil, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if math.Abs(d[i]-dd[i]) > 1e-11*(nrm+1)*float64(n) {
			t.Errorf("%s: eigenvalue %d mismatch: %v vs %v", name, i, d[i], dd[i])
		}
	}
}

func TestSolveDCAllModes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 150
	d0, e0 := randTridiag(rng, n)
	for _, mode := range []Mode{ModeTaskFlow, ModeLevelSync, ModeScaLAPACK, ModeForkJoin, ModeSequential} {
		for _, workers := range []int{1, 4} {
			opts := &Options{Mode: mode, Workers: workers, MinPartition: 20, PanelSize: 16}
			checkSolve(t, mode.String(), n, d0, e0, opts)
		}
	}
}

func TestSolveDCExtraWorkspace(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 120
	d0, e0 := randTridiag(rng, n)
	checkSolve(t, "extra-ws", n, d0, e0,
		&Options{Workers: 4, MinPartition: 16, PanelSize: 16, ExtraWorkspace: true})
}

func TestSolveDCPanelSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 130
	d0, e0 := randTridiag(rng, n)
	for _, nb := range []int{1, 7, 32, 64, 1000} {
		checkSolve(t, "nb", n, d0, e0, &Options{Workers: 3, MinPartition: 24, PanelSize: nb})
	}
}

func TestSolveDCSmallSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 3, 4, 5, 9, 17, 33} {
		d0, e0 := randTridiag(rng, n)
		checkSolve(t, "small", n, d0, e0, &Options{Workers: 2, MinPartition: 4, PanelSize: 4})
	}
}

func TestSolveDCHighDeflation(t *testing.T) {
	// Constant diagonal with negligible couplings: everything deflates.
	n := 160
	d0 := make([]float64, n)
	e0 := make([]float64, n-1)
	for i := range d0 {
		d0[i] = 1
	}
	for i := range e0 {
		e0[i] = 1e-16
	}
	d := append([]float64(nil), d0...)
	e := append([]float64(nil), e0...)
	q := make([]float64, n*n)
	res, err := SolveDC(n, d, e, q, n, &Options{Workers: 4, MinPartition: 20, PanelSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if r := res.Stats.DeflationRatio(); r < 0.95 {
		t.Errorf("expected near-total deflation, got ratio %v", r)
	}
	rres, orth := residualAndOrth(n, d0, e0, d, q, n)
	if rres > 1e-11 || orth > 1e-12 {
		t.Errorf("high-deflation accuracy: res=%v orth=%v", rres, orth)
	}
}

func TestSolveDCLowDeflation(t *testing.T) {
	// The (1,2,1) Toeplitz matrix has extended (sine) eigenvectors, so its
	// z vectors are dense and little deflation is possible.
	n := 200
	d0 := make([]float64, n)
	e0 := make([]float64, n-1)
	for i := range d0 {
		d0[i] = 2
	}
	for i := range e0 {
		e0[i] = 1
	}
	d := append([]float64(nil), d0...)
	e := append([]float64(nil), e0...)
	q := make([]float64, n*n)
	res, err := SolveDC(n, d, e, q, n, &Options{Workers: 4, MinPartition: 25, PanelSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if r := res.Stats.DeflationRatio(); r > 0.5 {
		t.Errorf("unexpectedly high deflation %v for (1,2,1)", r)
	}
}

func TestSolveDCZeroMatrix(t *testing.T) {
	n := 64
	d := make([]float64, n)
	e := make([]float64, n-1)
	q := make([]float64, n*n)
	if _, err := SolveDC(n, d, e, q, n, &Options{Workers: 2, MinPartition: 8}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if d[i] != 0 || q[i+i*n] != 1 {
			t.Fatal("zero matrix should yield identity eigenvectors")
		}
	}
}

func TestSolveDCGraphShapeFigure2(t *testing.T) {
	// The paper's Figure 2: n=1000, minimal partition 300, nb=500 gives four
	// leaves of 250 and a fixed, matrix-independent task census.
	n := 1000
	d := make([]float64, n)
	e := make([]float64, n-1)
	rng := rand.New(rand.NewSource(6))
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	for i := range e {
		e[i] = rng.NormFloat64()
	}
	q := make([]float64, n*n)
	res, err := SolveDC(n, d, e, q, n, &Options{
		Workers: 2, MinPartition: 300, PanelSize: 500, CaptureGraph: true})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	if g == nil {
		t.Fatal("graph not captured")
	}
	counts := g.ClassCounts()
	if counts["STEDC"] != 4 {
		t.Errorf("expected 4 leaf tasks, got %d", counts["STEDC"])
	}
	if counts["ComputeDeflation"] != 3 || counts["ReduceW"] != 3 {
		t.Errorf("expected 3 merges: %v", counts)
	}
	// merges of 500 with nb=500 have 1 panel; the root merge of 1000 has 2.
	if counts["LAED4"] != 1+1+2 {
		t.Errorf("expected 4 LAED4 tasks, got %d", counts["LAED4"])
	}
	if counts["UpdateVect"] != 4 {
		t.Errorf("expected 4 UpdateVect tasks, got %d", counts["UpdateVect"])
	}
	// every edge must be time-respected
	for _, ed := range g.Edges {
		if g.Tasks[ed[1]].Start < g.Tasks[ed[0]].End {
			t.Fatalf("edge %v violated in execution", ed)
		}
	}
}

func TestSolveDCMatrixIndependentDAG(t *testing.T) {
	// The same sizes with totally different deflation behaviour must yield
	// the identical task census (the paper's matrix-independent DAG).
	n := 300
	build := func(deflating bool) map[string]int {
		d := make([]float64, n)
		e := make([]float64, n-1)
		rng := rand.New(rand.NewSource(7))
		for i := range d {
			if deflating {
				d[i] = 1
			} else {
				d[i] = rng.NormFloat64()
			}
		}
		for i := range e {
			if deflating {
				e[i] = 1e-14
			} else {
				e[i] = rng.NormFloat64()
			}
		}
		q := make([]float64, n*n)
		res, err := SolveDC(n, d, e, q, n, &Options{
			Workers: 3, MinPartition: 40, PanelSize: 32, CaptureGraph: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.Graph.ClassCounts()
	}
	a, b := build(true), build(false)
	for k, v := range a {
		if b[k] != v {
			t.Errorf("task census differs for %s: %d vs %d", k, v, b[k])
		}
	}
	if len(a) != len(b) {
		t.Errorf("class sets differ: %v vs %v", a, b)
	}
}

func TestSolveDCStatsCubicDominance(t *testing.T) {
	// Eq. 8: the last merge level should dominate the cubic work for a
	// low-deflation matrix. A (1,2,1) Toeplitz with a small diagonal ramp
	// avoids both localization and the mirror symmetry that would deflate
	// half the root merge.
	n := 400
	d0 := make([]float64, n)
	e0 := make([]float64, n-1)
	for i := range d0 {
		d0[i] = 2 + 0.001*float64(i)
	}
	for i := range e0 {
		e0[i] = 1
	}
	d := append([]float64(nil), d0...)
	e := append([]float64(nil), e0...)
	q := make([]float64, n*n)
	res, err := SolveDC(n, d, e, q, n, &Options{Workers: 2, MinPartition: 50, PanelSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	perLevel := res.Stats.OpsPerLevel()
	maxLvl := 0
	for l := range perLevel {
		if l > maxLvl {
			maxLvl = l
		}
	}
	var others int64
	for l, v := range perLevel {
		if l != maxLvl {
			others += v
		}
	}
	if perLevel[maxLvl] <= others {
		t.Errorf("root level %d ops %d should dominate all other levels' %d", maxLvl, perLevel[maxLvl], others)
	}
}

func TestSolveDCWilkinsonTypes(t *testing.T) {
	// Wilkinson and Clement matrices, paper Table III types 11/12.
	n := 121
	dW := make([]float64, n)
	eW := make([]float64, n-1)
	for i := 0; i < n; i++ {
		dW[i] = math.Abs(float64(i - (n-1)/2))
	}
	for i := range eW {
		eW[i] = 1
	}
	checkSolve(t, "wilkinson", n, dW, eW, &Options{Workers: 4, MinPartition: 16, PanelSize: 16})

	dC := make([]float64, n)
	eC := make([]float64, n-1)
	for i := 1; i < n; i++ {
		eC[i-1] = math.Sqrt(float64(i) * float64(n-i))
	}
	checkSolve(t, "clement", n, dC, eC, &Options{Workers: 4, MinPartition: 16, PanelSize: 16})
}

func TestSolveDCInvalidArgs(t *testing.T) {
	if _, err := SolveDC(-1, nil, nil, nil, 0, nil); err == nil {
		t.Error("negative n must error")
	}
	if _, err := SolveDC(10, make([]float64, 10), make([]float64, 9), make([]float64, 100), 5, nil); err == nil {
		t.Error("ldq < n must error")
	}
	if _, err := SolveDC(0, nil, nil, nil, 0, nil); err != nil {
		t.Errorf("n=0 should succeed: %v", err)
	}
}
