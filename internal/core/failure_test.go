package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"tridiag/internal/faultinject"
	"tridiag/internal/pool"
	"tridiag/internal/testmat"
)

// TestCorruptedInputSurfacesRootError: a NaN in the input corrupts the very
// first task (Scale fails inside Dlascl). The runtime must skip every
// downstream task instead of letting them panic on the poisoned data, and
// SolveDC must report exactly the root cause — not a secondary panic from a
// merge that should never have run.
func TestCorruptedInputSurfacesRootError(t *testing.T) {
	n := 512
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = 2
	}
	for i := range e {
		e[i] = 1
	}
	d[200] = math.NaN()
	q := make([]float64, n*n)
	res, err := SolveDC(n, d, e, q, n, &Options{
		MinPartition: 64, PanelSize: 32, Workers: 4, CaptureGraph: true,
	})
	if err == nil {
		t.Fatal("corrupted input must surface an error")
	}
	if !strings.Contains(err.Error(), "Scale") {
		t.Errorf("error does not name the failing root task: %v", err)
	}
	// The root cause must not be masked by a downstream task's panic.
	for _, downstream := range []string{"STEDC", "deflate", "LAED4", "ReduceW", "Dlamrg"} {
		if strings.Contains(err.Error(), downstream) {
			t.Errorf("root error masked by downstream task %q: %v", downstream, err)
		}
	}
	if res == nil || res.Graph == nil {
		t.Fatal("graph capture missing")
	}
	ran, canceled := 0, 0
	for _, ti := range res.Graph.Tasks {
		switch {
		case ti.Canceled:
			canceled++
			if ti.Worker >= 0 {
				t.Errorf("canceled task %q ran on worker %d", ti.Label, ti.Worker)
			}
		case ti.Worker >= 0:
			ran++
		default:
			t.Errorf("task %q neither ran nor was canceled", ti.Label)
		}
	}
	if ran != 1 {
		t.Errorf("%d tasks ran after the root failure, want only the failing Scale task", ran)
	}
	if canceled != len(res.Graph.Tasks)-1 {
		t.Errorf("canceled %d of %d tasks, want all downstream", canceled, len(res.Graph.Tasks))
	}
}

// TestFailedMergeLeakAccounting: a mid-pipeline injected failure skips merge
// release chains, abandoning pooled workspace to the GC. The solve must
// report those bytes in Stats.LeakedBytes, and the sweep must write them off
// the pool accountant so a long-lived process's budget arithmetic stays
// honest across failed solves.
func TestFailedMergeLeakAccounting(t *testing.T) {
	defer faultinject.Disable()
	base := pool.InUseBytes()
	rng := rand.New(rand.NewSource(31))
	sawLeak := false
	for i := 0; i < 20 && !sawLeak; i++ {
		// LAED4 sits mid-merge: its failure strands the workspace already
		// acquired by ComputeDeflation/Redistribute.
		faultinject.Enable(int64(i), faultinject.Probe{Class: "LAED4", Kind: faultinject.KindError, P: 0.5})
		m, err := testmat.Type(4, 160+rng.Intn(60), rng)
		if err != nil {
			t.Fatal(err)
		}
		n := m.N()
		q := make([]float64, n*n)
		res, serr := SolveDC(n, m.D, m.E, q, n, &Options{Workers: 4, MinPartition: 24})
		faultinject.Disable()
		if serr == nil {
			continue // probe never fired on this draw
		}
		if res == nil || res.Stats == nil {
			t.Fatal("failed solve must still carry stats")
		}
		if lb := res.Stats.LeakedBytes(); lb > 0 {
			sawLeak = true
			t.Logf("run %d: leaked %d bytes after injected LAED4 failure", i, lb)
		}
	}
	if !sawLeak {
		t.Fatal("no failed solve ever reported leaked workspace; the sweep was not exercised")
	}
	// Whatever was leaked must have been written off the accountant: the
	// books return to the baseline even though the buffers went to the GC.
	if got := pool.InUseBytes(); got != base {
		t.Errorf("pool accountant off baseline after failed solves: %d, want %d", got, base)
	}
}

// TestParallelModesIdenticalEigenpairs: the three parallel execution models
// run the same sequential task semantics, so on the paper's matrix types they
// must produce identical eigenpairs — eigenvalues to roundoff and eigenvector
// columns matching up to sign — not merely valid decompositions.
func TestParallelModesIdenticalEigenpairs(t *testing.T) {
	rng := rand.New(rand.NewSource(811))
	for _, typ := range []int{2, 4, 10, 11, 12} {
		m, err := testmat.Type(typ, 120, rng)
		if err != nil {
			t.Fatal(err)
		}
		n := m.N()
		nrm := 1.0
		for _, v := range m.D {
			nrm = math.Max(nrm, math.Abs(v))
		}
		for _, v := range m.E {
			nrm = math.Max(nrm, math.Abs(v))
		}
		var refD, refQ []float64
		for _, mode := range []Mode{ModeTaskFlow, ModeLevelSync, ModeScaLAPACK} {
			d := append([]float64(nil), m.D...)
			e := append([]float64(nil), m.E...)
			q := make([]float64, n*n)
			if _, err := SolveDC(n, d, e, q, n, &Options{
				Mode: mode, Workers: 4, MinPartition: 20, PanelSize: 16,
			}); err != nil {
				t.Fatalf("type %d mode %v: %v", typ, mode, err)
			}
			if refD == nil {
				refD, refQ = d, q
				continue
			}
			for i := 0; i < n; i++ {
				if math.Abs(d[i]-refD[i]) > 1e-12*nrm*float64(n) {
					t.Errorf("type %d mode %v: eigenvalue %d differs: %v vs %v", typ, mode, i, d[i], refD[i])
				}
			}
			for j := 0; j < n; j++ {
				col := q[j*n : j*n+n]
				ref := refQ[j*n : j*n+n]
				sign := 1.0
				if col[blasIamax(col)]*ref[blasIamax(col)] < 0 {
					sign = -1
				}
				for i := 0; i < n; i++ {
					if math.Abs(sign*col[i]-ref[i]) > 1e-10 {
						t.Errorf("type %d mode %v: eigenvector %d differs at row %d: %v vs %v",
							typ, mode, j, i, sign*col[i], ref[i])
						break
					}
				}
			}
		}
	}
}

// blasIamax returns the index of the entry with largest magnitude.
func blasIamax(x []float64) int {
	best, bi := 0.0, 0
	for i, v := range x {
		if a := math.Abs(v); a > best {
			best, bi = a, i
		}
	}
	return bi
}
