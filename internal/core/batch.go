package core

import (
	"context"
	"fmt"

	"tridiag/internal/pool"
	"tridiag/internal/quark"
)

// BatchProblem is one matrix of a batched solve, with the same in-place
// contract as SolveDC: on success D holds the ascending eigenvalues and Q
// (N×N, column leading dimension LDQ) the orthonormal eigenvectors; E is
// destroyed; Q's entry contents are ignored. Under Options.ValuesOnly the
// eigenvector fields are never touched: Q may be nil and LDQ is ignored.
type BatchProblem struct {
	N    int
	D, E []float64
	Q    []float64
	LDQ  int
}

// BatchItem is the per-matrix outcome of a batched solve. Err is nil when
// this matrix's subgraph completed; a non-nil Err (a task failure inside this
// matrix, a shape error, or the batch's context cancellation) means the
// matrix's D/E/Q contents are unspecified — batch-mates are unaffected.
type BatchItem struct {
	Result *Result
	Err    error
}

// BatchResult is the outcome of SolveDCBatch: per-matrix items in input
// order, plus batch-level aggregates — Stats carries the task-time totals of
// the whole shared runtime, Graph the combined DAG when CaptureGraph was set.
type BatchResult struct {
	Items []BatchItem
	Stats *Stats
	Graph *quark.Graph
}

// SolveDCBatch solves many independent tridiagonal systems as ONE task DAG on
// ONE shared runtime: every matrix's leaf and merge tasks are submitted into
// the same worker pool, so leaves from different matrices interleave across
// workers and the scheduler has width even when each matrix alone is too
// small to feed it. Workspace is drawn from the shared process pool, so
// packed-GEMM buffers and secular scratch recycle across batch-mates instead
// of being re-reserved per matrix.
//
// Failure isolation: each matrix's tasks run in their own quark scope over
// disjoint handles, so one matrix's failure skip-cascade stays inside its own
// subtree — its BatchItem carries the root-cause error, its batch-mates
// complete normally. The returned error is batch-level only (context
// cancellation); per-matrix failures never fail the batch.
func SolveDCBatch(probs []BatchProblem, opts *Options) (*BatchResult, error) {
	return SolveDCBatchContext(context.Background(), probs, opts)
}

// SolveDCBatchContext is SolveDCBatch bounded by a context. On cancellation
// the in-flight kernels finish and every remaining task is skipped; matrices
// whose subgraphs had already fully completed keep their valid results, the
// rest carry ctx's error in their item.
func SolveDCBatchContext(ctx context.Context, probs []BatchProblem, opts *Options) (*BatchResult, error) {
	o := opts.withDefaults()
	// The batch always runs as one task flow: the level-synchronized modes
	// barrier on the whole runtime (which would couple batch-mates) and the
	// sequential/fork-join modes have no task graph to share.
	o.Mode = ModeTaskFlow

	br := &BatchResult{Items: make([]BatchItem, len(probs)), Stats: newStats()}
	for i := range br.Items {
		br.Items[i].Result = &Result{Stats: newStats()}
	}
	if err := ctx.Err(); err != nil {
		for i := range br.Items {
			br.Items[i].Err = err
		}
		return br, err
	}
	if len(probs) == 0 {
		return br, nil
	}

	rtOpts := []quark.Option{quark.WithContext(ctx), quark.WithTaskTimer(br.Stats.addTaskTime)}
	if o.CaptureGraph {
		rtOpts = append(rtOpts, quark.WithGraphCapture())
	}
	if o.Progress != nil {
		rtOpts = append(rtOpts, quark.WithProgress(o.Progress))
	}
	rt := quark.New(o.Workers, rtOpts...)

	scopes := make([]*quark.Scope, len(probs))
	merges := make([][]*mergeState, len(probs))
	fls := make([][]float64, len(probs))
	for i := range probs {
		p := &probs[i]
		if p.N < 0 {
			br.Items[i].Err = fmt.Errorf("core: negative n")
			continue
		}
		if p.N == 0 {
			continue
		}
		if !o.ValuesOnly && p.LDQ < p.N {
			br.Items[i].Err = fmt.Errorf("core: ldq=%d < n=%d", p.LDQ, p.N)
			continue
		}
		// No single-leaf bypass here: even a tiny matrix becomes runtime
		// tasks (one leaf + sort), because scheduler width across the batch
		// is the whole point. submitTaskFlow handles n <= MinPartition as a
		// one-leaf tree.
		scopes[i] = rt.NewScope()
		// ModeTaskFlow never hits the level barrier, so no barrier func.
		var err error
		if o.ValuesOnly {
			fls[i] = pool.Get(2 * p.N)
			err = submitTaskFlowVO(scopes[i], p.N, p.D, p.E, fls[i], &o, br.Items[i].Result.Stats, &merges[i])
		} else {
			err = submitTaskFlow(scopes[i], nil, p.N, p.D, p.E, p.Q, p.LDQ, &o, br.Items[i].Result.Stats, &merges[i])
		}
		if err != nil {
			br.Items[i].Err = err
		}
	}

	rt.Wait()
	ctxErr := ctx.Err()
	if o.CaptureGraph {
		br.Graph = rt.Graph()
	}
	// Shutdown joins the workers; only after it can abandoned merge
	// workspaces be swept safely (see SolveDCContext).
	rt.Shutdown()
	for i := range probs {
		pool.Put(fls[i])
		var leaked int64
		for _, ms := range merges[i] {
			leaked += ms.sweepLeaked()
		}
		br.Items[i].Result.Stats.addLeaked(leaked)
		br.Stats.addLeaked(leaked)
		sc := scopes[i]
		if sc == nil || br.Items[i].Err != nil {
			continue
		}
		if err := sc.Err(); err != nil {
			br.Items[i].Err = err
		} else if ctxErr != nil && sc.Skipped() > 0 {
			// Cancelled mid-batch with this matrix's subgraph incomplete.
			// A matrix whose tasks all ran before the cancellation keeps
			// its valid result (Skipped()==0: every task was submitted
			// before Wait, so zero skips means the subgraph completed).
			br.Items[i].Err = ctxErr
		}
	}
	return br, ctxErr
}
