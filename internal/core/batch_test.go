package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"tridiag/internal/faultinject"
	"tridiag/internal/lapack"
	"tridiag/internal/pool"
)

// TestSolveDCBatchMatchesSingle runs a mixed-size batch through the shared
// runtime and pins every member against a per-matrix SolveDC of the same
// input: identical eigenvalues and a valid spectrum.
func TestSolveDCBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(901))
	sizes := []int{3, 48, 1, 96, 17, 64, 2, 33}
	opts := &Options{Workers: 4, MinPartition: 16}

	type ref struct{ d0, e0 []float64 }
	refs := make([]ref, len(sizes))
	probs := make([]BatchProblem, len(sizes))
	for i, n := range sizes {
		d, e := randTridiag(rng, n)
		refs[i] = ref{append([]float64(nil), d...), append([]float64(nil), e...)}
		probs[i] = BatchProblem{N: n, D: d, E: e, Q: make([]float64, n*n), LDQ: n}
	}

	br, err := SolveDCBatch(probs, opts)
	if err != nil {
		t.Fatalf("SolveDCBatch: %v", err)
	}
	for i, n := range sizes {
		if br.Items[i].Err != nil {
			t.Fatalf("matrix %d (n=%d): %v", i, n, br.Items[i].Err)
		}
		d0, e0 := refs[i].d0, refs[i].e0
		nrm := lapack.Dlanst('M', n, d0, e0)
		if nrm == 0 {
			nrm = 1
		}
		res, orth := residualAndOrth(n, d0, e0, probs[i].D, probs[i].Q, n)
		if res/(nrm*float64(n)) > 200*lapack.Eps {
			t.Errorf("matrix %d: residual %.3e", i, res/(nrm*float64(n)))
		}
		if orth/float64(n) > 200*lapack.Eps {
			t.Errorf("matrix %d: orthogonality %.3e", i, orth/float64(n))
		}
		// Same input through the single-matrix front door must agree.
		ds := append([]float64(nil), d0...)
		es := append([]float64(nil), e0...)
		qs := make([]float64, n*n)
		if _, err := SolveDC(n, ds, es, qs, n, opts); err != nil {
			t.Fatalf("matrix %d: SolveDC: %v", i, err)
		}
		for j := 0; j < n; j++ {
			if d := math.Abs(ds[j] - probs[i].D[j]); d > 1e-10*(1+math.Abs(ds[j])) {
				t.Fatalf("matrix %d: eigenvalue %d differs: batch %.17g single %.17g", i, j, probs[i].D[j], ds[j])
			}
		}
	}
	if len(br.Stats.TaskTimes()) == 0 {
		t.Fatalf("batch stats carry no task times")
	}
}

// TestSolveDCBatchShapeErrors checks per-member shape validation: a bad
// member gets its own error, batch-mates are solved normally.
func TestSolveDCBatchShapeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(902))
	d, e := randTridiag(rng, 24)
	d0 := append([]float64(nil), d...)
	e0 := append([]float64(nil), e...)
	probs := []BatchProblem{
		{N: -1},
		{N: 24, D: d, E: e, Q: make([]float64, 24*24), LDQ: 24},
		{N: 8, D: make([]float64, 8), E: make([]float64, 7), Q: make([]float64, 8*4), LDQ: 4}, // ldq < n
		{N: 0},
	}
	br, err := SolveDCBatch(probs, &Options{Workers: 2, MinPartition: 8})
	if err != nil {
		t.Fatalf("SolveDCBatch: %v", err)
	}
	if br.Items[0].Err == nil || br.Items[2].Err == nil {
		t.Fatalf("shape errors not reported: %v, %v", br.Items[0].Err, br.Items[2].Err)
	}
	if br.Items[1].Err != nil || br.Items[3].Err != nil {
		t.Fatalf("valid members failed: %v, %v", br.Items[1].Err, br.Items[3].Err)
	}
	res, _ := residualAndOrth(24, d0, e0, probs[1].D, probs[1].Q, 24)
	nrm := lapack.Dlanst('M', 24, d0, e0)
	if res/(nrm*24) > 200*lapack.Eps {
		t.Errorf("good member residual %.3e", res/(nrm*24))
	}
}

// TestSolveDCBatchFaultIsolation injects a deterministic single-shot kernel
// fault into an 8-matrix batch: exactly one item fails with the root cause,
// the others complete, and the pool accountant returns to baseline (the
// failed matrix's abandoned merge workspaces are swept).
func TestSolveDCBatchFaultIsolation(t *testing.T) {
	baseline := pool.InUseBytes()
	rng := rand.New(rand.NewSource(903))
	probs := make([]BatchProblem, 8)
	for i := range probs {
		const n = 64
		d, e := randTridiag(rng, n)
		probs[i] = BatchProblem{N: n, D: d, E: e, Q: make([]float64, n*n), LDQ: n}
	}
	faultinject.Enable(5, faultinject.Probe{Class: "ComputeVect", Kind: faultinject.KindError, P: 1, MaxFires: 1})
	br, err := SolveDCBatch(probs, &Options{Workers: 4, MinPartition: 16})
	faultinject.Disable()
	if err != nil {
		t.Fatalf("SolveDCBatch: %v", err)
	}
	failed := 0
	for i := range probs {
		if br.Items[i].Err != nil {
			failed++
			var inj *faultinject.ErrInjected
			if !errors.As(br.Items[i].Err, &inj) {
				t.Fatalf("matrix %d: error %v does not unwrap to the injected fault", i, br.Items[i].Err)
			}
		}
	}
	if failed != 1 {
		t.Fatalf("single-shot fault failed %d matrices, want 1", failed)
	}
	if got := pool.InUseBytes(); got != baseline {
		t.Fatalf("pool accountant off baseline after faulted batch: %d, want %d", got, baseline)
	}
}

// TestSolveDCBatchCancellation covers both cancellation windows: a dead
// context up front poisons every item before any task runs, and the
// mid-flight contract marks only incomplete subgraphs with ctx's error.
func TestSolveDCBatchCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(904))
	mk := func() []BatchProblem {
		probs := make([]BatchProblem, 4)
		for i := range probs {
			const n = 40
			d, e := randTridiag(rng, n)
			probs[i] = BatchProblem{N: n, D: d, E: e, Q: make([]float64, n*n), LDQ: n}
		}
		return probs
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	br, err := SolveDCBatchContext(ctx, mk(), &Options{Workers: 2})
	if err != context.Canceled {
		t.Fatalf("pre-cancelled batch: err=%v", err)
	}
	for i := range br.Items {
		if br.Items[i].Err != context.Canceled {
			t.Fatalf("item %d: err=%v, want context.Canceled", i, br.Items[i].Err)
		}
	}
}
