package core

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"time"

	"tridiag/internal/lapack"
)

// TestSolveDCReusedWorkspace is the regression test for the in-process
// slowdown bug: the merge kernels (full-column deflation rotations and
// deflated-column copies) require the structurally-zero off-block regions
// of q to hold exact zeros. A fresh Go allocation provided them for free;
// a reused workspace carried the previous solve's eigenvectors there,
// silently corrupting results AND collapsing deflation (the ~2.5× "GC
// pressure" slowdown). The leaf tasks now establish the zeros, so a solve
// into a dirty q — here poisoned with NaN, which propagates loudly through
// any stale read — must produce bit-identical results to a fresh one.
func TestSolveDCReusedWorkspace(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 300
	d0, e0 := randTridiag(rng, n)
	for _, tc := range []struct {
		name string
		opts *Options
	}{
		{"taskflow-w4", &Options{Workers: 4}},
		{"sequential", &Options{Mode: ModeSequential}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			solve := func(q []float64) ([]float64, int64) {
				d := append([]float64(nil), d0...)
				e := append([]float64(nil), e0...)
				res, err := SolveDC(n, d, e, q, n, tc.opts)
				if err != nil {
					t.Fatal(err)
				}
				var ops int64
				if res.Stats != nil {
					ops = res.Stats.Ops["UpdateVect"]
				}
				return d, ops
			}

			qFresh := make([]float64, n*n)
			dFresh, opsFresh := solve(qFresh)

			qDirty := make([]float64, n*n)
			for i := range qDirty {
				qDirty[i] = math.NaN()
			}
			dDirty, opsDirty := solve(qDirty)

			for i := range dFresh {
				if dFresh[i] != dDirty[i] {
					t.Fatalf("eigenvalue %d differs with reused q: %v vs %v", i, dFresh[i], dDirty[i])
				}
			}
			for i := range qFresh {
				if qFresh[i] != qDirty[i] {
					t.Fatalf("eigenvector entry %d differs with reused q: %v vs %v (stale contents leaked)", i, qFresh[i], qDirty[i])
				}
			}
			if opsFresh != opsDirty {
				t.Fatalf("UpdateVect ops differ with reused q: %d vs %d (deflation collapsed)", opsFresh, opsDirty)
			}
			nrm := lapack.Dlanst('M', n, d0, e0)
			res, _ := residualAndOrth(n, d0, e0, dDirty, qDirty, n)
			if res/(nrm*float64(n)) > 200*lapack.Eps {
				t.Fatalf("residual with reused q: %.3e", res/(nrm*float64(n)))
			}
		})
	}
}

// TestSolveDCSteadyState runs many sequential solves in one process — the
// dcbench perf pattern that exposed the slowdown — and asserts steady
// state: constant per-solve work, a bounded wall-time ratio between the
// last half and the first quarter, and bounded heap growth.
func TestSolveDCSteadyState(t *testing.T) {
	reps := 20
	if testing.Short() {
		reps = 8
	}
	n := 1000
	rng := rand.New(rand.NewSource(7))
	d0, e0 := randTridiag(rng, n)

	for _, workers := range []int{1, 4} {
		t.Run(map[int]string{1: "w1", 4: "w4"}[workers], func(t *testing.T) {
			q := make([]float64, n*n) // reused across all reps, never cleared
			d := make([]float64, n)
			e := make([]float64, n-1)

			var baseHeap uint64
			times := make([]time.Duration, 0, reps)
			var ops0 int64
			for rep := 0; rep < reps; rep++ {
				copy(d, d0)
				copy(e, e0)
				start := time.Now()
				res, err := SolveDC(n, d, e, q, n, &Options{Workers: workers})
				el := time.Since(start)
				if err != nil {
					t.Fatalf("rep %d: %v", rep, err)
				}
				times = append(times, el)
				ops := res.Stats.Ops["UpdateVect"]
				if rep == 0 {
					ops0 = ops
				} else if ops != ops0 {
					t.Fatalf("rep %d: UpdateVect ops %d != rep 0's %d (per-solve work not steady)", rep, ops, ops0)
				}
				if rep == 1 {
					baseHeap = forcedHeapAlloc()
				}
			}

			// Wall-clock: the bug showed 3-8× degradation; the shared VM is
			// noisy, so the tolerance is loose but still far below the bug.
			first := median(times[:max(reps/4, 2)])
			last := median(times[reps/2:])
			if ratio := float64(last) / float64(first); ratio > 2.5 {
				t.Errorf("steady-state slowdown: last-half median %v vs first-quarter %v (%.2fx)", last, first, ratio)
			}

			// Heap: after the retention caps, repeated solves must not grow
			// the live set (64 MiB slack for allocator/GC jitter).
			endHeap := forcedHeapAlloc()
			if endHeap > baseHeap+64<<20 {
				t.Errorf("heap grew across solves: %d -> %d bytes", baseHeap, endHeap)
			}
		})
	}
}

func forcedHeapAlloc() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

func median(ts []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ts...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}
