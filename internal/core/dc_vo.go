package core

import (
	"fmt"
	"math"

	"tridiag/internal/blas"
	"tridiag/internal/lapack"
	"tridiag/internal/pool"
	"tridiag/internal/quark"
)

// Values-only task flow (Options.ValuesOnly): the same D&C tree and join
// structure as submitTaskFlow with every eigenvector task class gone. No
// PermuteV/ComputeVect/UpdateVect/PackV/CopyBackDeflated tasks are submitted
// and no n×n block exists anywhere: each tree node carries only the first
// and last rows of its notional eigenvector block in the 2×n carrier fl
// (column-major, leading dimension 2 — see internal/lapack/laed_vo.go),
// which is exactly what the parent merge needs to form its z-vector.
// Deflation moves carrier columns by index permutation (CopyBackValuesVO)
// instead of column movement, the secular panels fuse LAED4 with the LocalW
// stabilization update, and the UpdateZ panels replace the UpdateVect GEMMs
// with two dot products per secular column. Live pooled state is O(nm) per
// in-flight merge — O(n·depth) across the solve — and eigenvalues are moved
// once, by a final O(n) gather at the root, instead of per-merge column
// sorts.
func submitTaskFlowVO(rt taskRuntime, n int, d, e, fl []float64, o *Options, st *Stats, merges *[]*mergeState) error {
	sizes := lapack.PartitionSizes(n, o.MinPartition)
	starts := make([]int, len(sizes)+1)
	for i, s := range sizes {
		starts[i+1] = starts[i] + s
	}

	orgnrm := lapack.Dlanst('M', n, d, e)
	if orgnrm == 0 {
		// Zero matrix: d is already identically zero, nothing to do.
		return nil
	}

	hScale := rt.Handle("scale")
	rt.Submit("Scale", "scale+partition", func() {
		if orgnrm != 1 {
			lapack.Dlascl(n, 1, orgnrm, 1, d, n)
			lapack.Dlascl(n-1, 1, orgnrm, 1, e, n-1)
		}
		// Rank-one tear at every internal boundary.
		for _, b := range starts[1 : len(starts)-1] {
			ae := math.Abs(e[b-1])
			d[b-1] -= ae
			d[b] -= ae
		}
		st.count("Scale", int64(n))
		corruptHook("Scale", d[:n])
	}, quark.Write(hScale))

	indxq := make([]int, n)

	// Leaf solves: full leaf eigenvalues plus the 2-row carrier; the d/e
	// trajectory is bit-identical to the full path's DsteqrRobust leaves.
	level := make([]*node, len(sizes))
	for i := range sizes {
		st0, sz := starts[i], sizes[i]
		nd := &node{start: st0, size: sz,
			hV: rt.Handle(fmt.Sprintf("V[%d:%d]", st0, st0+sz)),
			hD: rt.Handle(fmt.Sprintf("d[%d:%d]", st0, st0+sz))}
		level[i] = nd
		rt.Submit("STEDC", fmt.Sprintf("leaf[%d:%d]", st0, st0+sz), func() {
			fellBack, err := lapack.DsteqrCarrier(sz, d[st0:st0+sz], e[st0:st0+max(sz-1, 0)], fl[2*st0:])
			if err != nil {
				panic(err)
			}
			if fellBack {
				st.count("STEDCFallback", 1)
			}
			for j := 0; j < sz; j++ {
				indxq[st0+j] = j
			}
			st.count("STEDC", int64(sz)*int64(sz)*int64(sz))
			corruptHook("STEDC", d[st0:st0+sz])
		}, quark.Read(hScale), quark.Write(nd.hV), quark.Write(nd.hD))
	}

	// Merge levels, bottom-up. The unique merge of width n is the root: its
	// carrier has no consumer, so the whole stabilization/UpdateZ chain is
	// skipped there — the root costs one deflation scan plus the secular
	// solves.
	lvl := 0
	for len(level) > 1 {
		lvl++
		var next []*node
		for i := 0; i+1 < len(level); i += 2 {
			left, right := level[i], level[i+1]
			parent := &node{start: left.start, size: left.size + right.size,
				hV: rt.Handle(fmt.Sprintf("V[%d:%d]", left.start, left.start+left.size+right.size)),
				hD: rt.Handle(fmt.Sprintf("d[%d:%d]", left.start, left.start+left.size+right.size))}
			*merges = append(*merges, submitMergeVO(rt, parent, left, right, lvl, parent.size == n, d, e, fl, indxq, o, st))
			next = append(next, parent)
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}

	// The values-only analogue of SortEigenvectors: one O(n) gather through
	// the root's merge permutation, then the scale-back.
	root := level[0]
	rt.Submit("SortEigenvalues", "sort", func() {
		tmp := pool.Get(n)
		defer pool.Put(tmp)
		for i := 0; i < n; i++ {
			tmp[i] = d[indxq[i]]
		}
		copy(d[:n], tmp[:n])
		if orgnrm != 1 {
			lapack.Dlascl(n, 1, 1, orgnrm, d, n)
		}
		st.count("SortEigenvalues", int64(n))
		corruptHook("SortEigenvalues", d[:n])
	}, quark.ReadWrite(root.hV), quark.ReadWrite(root.hD))
	return nil
}

// submitMergeVO submits one values-only merge: the Compute-deflation and
// ReduceW joins and the LAED4 panels of the full path, with the eigenvector
// panel classes replaced by the UpdateZ panels that emit the parent's 2-row
// carrier. isRoot drops the carrier chain entirely (no consumer above).
func submitMergeVO(rt taskRuntime, parent, left, right *node, lvl int, isRoot bool, d, e, fl []float64, indxq []int, o *Options, st *Stats) *mergeState {
	prio := lvl * prioStride
	start := parent.start
	nm := parent.size
	n1 := left.size
	nb := o.PanelSize
	if nb <= 0 {
		nb = adaptivePanelNB(nm, rt.Workers())
	}
	npanels := (nm + nb - 1) / nb
	ms := &mergeState{wlocs: make([][]float64, npanels), nbSec: nb}
	if !isRoot {
		// Workspace consumers: the UpdateZ panels; the last one to finish
		// recycles the merge's O(nm) pooled state through done().
		ms.pending.Store(int32(npanels))
	}

	dd := d[start : start+nm]
	flm := fl[2*start:] // this merge's 2×nm carrier window
	ixq := indxq[start : start+nm]
	rhoAddr := start + n1 - 1 // e index of the coupling element

	hS := rt.Handle(fmt.Sprintf("ws[%d:%d]", start, start+nm))
	hSec := make([]*quark.Handle, npanels)
	for p := 0; p < npanels; p++ {
		hSec[p] = rt.Handle(fmt.Sprintf("sec[%d]@%d", p, start))
	}
	name := func(kind string, p int) string {
		return fmt.Sprintf("%s[%d:%d]p%d", kind, start, start+nm, p)
	}

	// Compute deflation: z from the children's inner carrier rows, the
	// deflation scan with its Givens rotations applied to a pooled 2-row
	// copy of the outer carrier rows, then the deflated eigenvalues and
	// carrier columns placed by index permutation — the task that replaces
	// ComputeDeflation + every PermuteV + every CopyBackDeflated panel.
	rt.SubmitPrio("ComputeDeflation", fmt.Sprintf("deflate[%d:%d]", start, start+nm), prio+prioJoin, func() {
		rho := e[rhoAddr]
		// Trace invariant capture, as on the full path (see submitMerge).
		var traceIn, absIn, dmaxIn float64
		if !o.DisableABFT {
			traceIn, absIn, dmaxIn = kahanSum(dd)
		}
		z := pool.Get(nm)
		defer pool.Put(z)
		for j := 0; j < n1; j++ {
			z[j] = flm[2*j+1] // last row of the left child's block
		}
		for j := n1; j < nm; j++ {
			z[j] = flm[2*j] // first row of the right child's block
		}
		var g2 []float64
		var rot func(pj, nj int, c, s float64)
		if !isRoot {
			// The outer rows: row 0 lives only in the left block's columns,
			// row nm-1 only in the right block's (the off-block rows are
			// structural zeros). g2 is consumed within this task.
			g2 = pool.Get(2 * nm)
			defer pool.Put(g2)
			for j := 0; j < n1; j++ {
				g2[2*j], g2[2*j+1] = flm[2*j], 0
			}
			for j := n1; j < nm; j++ {
				g2[2*j], g2[2*j+1] = 0, flm[2*j+1]
			}
			rot = func(pj, nj int, c, s float64) {
				blas.Drot(2, g2[2*pj:], 1, g2[2*nj:], 1, c, s)
			}
		}
		df, err := lapack.Dlaed2DeflateRot(nm, n1, dd, ixq, rho, z, rot)
		if err != nil {
			panic(err)
		}
		ms.df = df
		if !isRoot {
			ms.what = pool.Get(df.K)
			ms.porg = pool.Get(df.K)
			ms.ptau = pool.Get(df.K)
			ms.vgtop = pool.Get(df.C12())
			ms.vgbot = pool.Get(df.C23())
			df.GatherCarrierRows(g2, ms.vgtop, ms.vgbot)
			df.CopyBackValuesVO(dd, g2, flm)
		} else {
			for j := range df.DeflD {
				dd[df.K+j] = df.DeflD[j]
			}
		}
		if o.PanelSize <= 0 {
			ms.nbSec = secularPanelNB(df.K, npanels, rt.Workers())
		}
		if !o.DisableABFT {
			ms.traceWant, ms.traceTol = lapack.TraceBudget(traceIn, absIn, dmaxIn, df.Rho, nm)
			ms.abft = true
		}
		st.count("ComputeDeflation", int64(nm))
		ms.statIdx = st.recordMerge(lvl, nm, df.K, ms.nbSec)
		corruptHook("ComputeDeflation", df.Dlamda)
	}, quark.ReadWrite(parent.hV), quark.ReadWrite(parent.hD),
		quark.Read(left.hV), quark.Read(right.hV),
		quark.Read(left.hD), quark.Read(right.hD),
		quark.Write(hS))

	// LAED4 fused with the LocalW stabilization update: the delta column
	// exists only inside the panel loop here, so there is no separate
	// ComputeLocalW task (and nothing for one to read). The root skips the
	// stabilization (no ẑ consumer).
	for p := 0; p < npanels; p++ {
		p := p
		rt.SubmitPrio("LAED4", name("LAED4", p), prio+prioSecular, func() {
			k := ms.df.K
			j0 := p * ms.nbSec
			j1 := min(j0+ms.nbSec, k)
			if j0 >= j1 {
				return
			}
			var wl, porg, ptau []float64
			if !isRoot {
				porg, ptau = ms.porg, ms.ptau
				if k > 2 {
					// Reuse the panel's buffer on an ABFT retry re-invocation
					// (pool.Get only on the first pass keeps the accountant
					// honest); reinitializing to 1 makes the kernel idempotent.
					// Publish the buffer before running the kernel: if the
					// kernel panics, sweepLeaked must see wl to write it off
					// the accountant.
					if wl = ms.wlocs[p]; wl == nil {
						wl = pool.Get(k)
						ms.wlocs[p] = wl
					}
					for i := range wl {
						wl[i] = 1
					}
				}
			}
			nfb, err := ms.df.SecularPanelVO(dd, porg, ptau, wl, j0, j1)
			if err != nil {
				panic(err)
			}
			if nfb > 0 {
				st.count("LAED4Bisect", int64(nfb))
			}
			st.count("LAED4", int64(j1-j0)*int64(k))
			corruptHook("LAED4", dd[j0:j1])
			if !o.DisableABFT {
				st.count("ABFTInvariant", 1)
				if ierr := ms.df.CheckInterlacing(dd, j0, j1); ierr != nil {
					st.count("ABFTInvariantFail", 1)
					panic(ierr)
				}
			}
		}, quark.Gather(hS), quark.Gather(parent.hD), quark.ReadWrite(hSec[p]))
	}

	if !isRoot {
		// ReduceW: the second join, combining the panel products into ẑ.
		rt.SubmitPrio("ReduceW", fmt.Sprintf("ReduceW[%d:%d]", start, start+nm), prio+prioJoin, func() {
			ms.df.FinishW(ms.what, ms.wlocs...)
			for p, wl := range ms.wlocs {
				pool.Put(wl)
				ms.wlocs[p] = nil
			}
			st.count("ReduceW", int64(ms.df.K))
			corruptHook("ReduceW", ms.what)
		}, quark.ReadWrite(hS))

		// UpdateZ: the parent carrier entries per secular panel — the
		// values-only replacement for the UpdateVect GEMMs (two dots per
		// column against the gathered outer carrier rows).
		for p := 0; p < npanels; p++ {
			p := p
			rt.SubmitPrio("UpdateZ", name("UpdateZ", p), prio+prioUpdate, func() {
				defer ms.done()
				k := ms.df.K
				j0 := p * ms.nbSec
				j1 := min(j0+ms.nbSec, k)
				if j0 >= j1 {
					return
				}
				ms.df.UpdateZPanelVO(ms.what, ms.porg, ms.ptau, ms.vgtop, ms.vgbot, flm, j0, j1)
				st.count("UpdateZ", int64(j1-j0)*int64(k))
				// Corrupt this panel's carrier columns; the parent merge's
				// corrupted z makes the final spectrum inconsistent with the
				// original matrix, which the solve-level inertia audit flags.
				corruptHook("UpdateZ", flm[2*j0:2*j1])
			}, quark.Gather(hS), quark.Gather(parent.hV), quark.ReadWrite(hSec[p]))
		}
	}

	// Dlamrg: the sorting permutation for the merged spectrum. Values are
	// gathered once at the root (SortEigenvalues) instead of moving columns
	// per merge.
	rt.SubmitPrio("Dlamrg", fmt.Sprintf("Dlamrg[%d:%d]", start, start+nm), prio+prioDlamrg, func() {
		k := ms.df.K
		corruptHook("Dlamrg", dd)
		if ms.abft {
			st.count("ABFTInvariant", 1)
			defect, terr := lapack.CheckTrace(dd, nm, ms.traceWant, ms.traceTol)
			st.setMergeTraceDefect(ms.statIdx, defect)
			if terr != nil {
				st.count("ABFTInvariantFail", 1)
				panic(terr)
			}
		}
		if k == 0 {
			for i := 0; i < nm; i++ {
				ixq[i] = i
			}
			return
		}
		lapack.Dlamrg(k, nm-k, dd, 1, -1, ixq)
		st.count("Dlamrg", int64(nm))
	}, quark.ReadWrite(parent.hD))
	return ms
}
