package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"tridiag/internal/blas"
	"tridiag/internal/testmat"
)

// TestModesAgreeOnSuite: every execution mode must produce the same
// eigenvalues (and valid eigenvectors) on representative Table III types.
func TestModesAgreeOnSuite(t *testing.T) {
	rng := rand.New(rand.NewSource(801))
	for _, typ := range []int{2, 4, 10, 11, 12} {
		m, err := testmat.Type(typ, 140, rng)
		if err != nil {
			t.Fatal(err)
		}
		n := m.N()
		var ref []float64
		for _, mode := range []Mode{ModeSequential, ModeTaskFlow, ModeLevelSync, ModeScaLAPACK, ModeForkJoin} {
			d := append([]float64(nil), m.D...)
			e := append([]float64(nil), m.E...)
			q := make([]float64, n*n)
			if _, err := SolveDC(n, d, e, q, n, &Options{
				Mode: mode, Workers: 3, MinPartition: 24, PanelSize: 20,
			}); err != nil {
				t.Fatalf("type %d mode %v: %v", typ, mode, err)
			}
			res, orth := residualAndOrth(n, m.D, m.E, d, q, n)
			nrm := 1.0
			for _, v := range m.D {
				nrm = math.Max(nrm, math.Abs(v))
			}
			for _, v := range m.E {
				nrm = math.Max(nrm, math.Abs(v))
			}
			if res/(nrm*float64(n)) > 1e-13 || orth/float64(n) > 1e-13 {
				t.Errorf("type %d mode %v: res %.2e orth %.2e", typ, mode, res, orth)
			}
			if ref == nil {
				ref = d
				continue
			}
			for i := 0; i < n; i++ {
				if math.Abs(d[i]-ref[i]) > 1e-11*nrm*float64(n) {
					t.Errorf("type %d mode %v: eig %d differs: %v vs %v", typ, mode, i, d[i], ref[i])
				}
			}
		}
	}
}

// TestPanelBoundaryAroundK: panel sizes that straddle the deflation count k
// in every possible alignment must stay correct (the matrix-independent DAG
// dispatches empty panels at runtime).
func TestPanelBoundaryAroundK(t *testing.T) {
	// a matrix with a reproducible mid-range k at the root merge
	n := 96
	d0 := make([]float64, n)
	e0 := make([]float64, n-1)
	for i := range d0 {
		d0[i] = 2 + 0.001*float64(i)
	}
	for i := range e0 {
		e0[i] = 1
	}
	for nb := 1; nb <= 12; nb++ {
		d := append([]float64(nil), d0...)
		e := append([]float64(nil), e0...)
		q := make([]float64, n*n)
		if _, err := SolveDC(n, d, e, q, n, &Options{
			Workers: 2, MinPartition: 16, PanelSize: nb,
		}); err != nil {
			t.Fatalf("nb=%d: %v", nb, err)
		}
		res, orth := residualAndOrth(n, d0, e0, d, q, n)
		if res > 1e-11 || orth > 1e-12 {
			t.Errorf("nb=%d: res %.2e orth %.2e", nb, res, orth)
		}
	}
}

// TestExtraWorkspaceEquivalence: the extra-workspace overlap option must not
// change the numerical result (same sequential task semantics, different
// schedule freedom).
func TestExtraWorkspaceEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 40 + rng.Intn(60)
		d0 := make([]float64, n)
		e0 := make([]float64, n-1)
		for i := range d0 {
			d0[i] = rng.NormFloat64()
		}
		for i := range e0 {
			e0[i] = rng.NormFloat64()
		}
		var got [2][]float64
		for v, extra := range []bool{false, true} {
			d := append([]float64(nil), d0...)
			e := append([]float64(nil), e0...)
			q := make([]float64, n*n)
			if _, err := SolveDC(n, d, e, q, n, &Options{
				Workers: 4, MinPartition: 12, PanelSize: 8, ExtraWorkspace: extra,
			}); err != nil {
				return false
			}
			got[v] = d
		}
		for i := 0; i < n; i++ {
			if got[0][i] != got[1][i] {
				// identical sequential semantics: results must agree to
				// the last bit is too strict under scheduling variation;
				// allow roundoff-level differences
				if math.Abs(got[0][i]-got[1][i]) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestLeafOnlyProblem: a problem at most one leaf wide takes the direct
// Dsteqr path.
func TestLeafOnlyProblem(t *testing.T) {
	n := 30
	rng := rand.New(rand.NewSource(807))
	d0, e0 := randTridiag(rng, n)
	d := append([]float64(nil), d0...)
	e := append([]float64(nil), e0...)
	q := make([]float64, n*n)
	res, err := SolveDC(n, d, e, q, n, &Options{MinPartition: 64, CaptureGraph: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph != nil && len(res.Graph.Tasks) > 0 {
		t.Error("single-leaf problems should not build a task graph")
	}
	r, orth := residualAndOrth(n, d0, e0, d, q, n)
	if r > 1e-12 || orth > 1e-13 {
		t.Errorf("leaf-only: res %.2e orth %.2e", r, orth)
	}
}

// TestStatsString smoke-tests the statistics report format.
func TestStatsString(t *testing.T) {
	rng := rand.New(rand.NewSource(809))
	n := 80
	d, e := randTridiag(rng, n)
	q := make([]float64, n*n)
	res, err := SolveDC(n, d, e, q, n, &Options{MinPartition: 16, PanelSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats.String()
	for _, want := range []string{"UpdateVect", "LAED4", "tasks", "ops"} {
		if !strings.Contains(s, want) {
			t.Errorf("stats report missing %q:\n%s", want, s)
		}
	}
	if res.Stats.DeflationRatio() < 0 || res.Stats.DeflationRatio() > 1 {
		t.Error("deflation ratio out of range")
	}
}

// TestPackReuseRecorded: a large low-deflation solve must route UpdateVect
// GEMMs through per-merge packed operands (on platforms with the blocked
// kernel) and record the hit/miss/bytes statistics coherently either way.
func TestPackReuseRecorded(t *testing.T) {
	rng := rand.New(rand.NewSource(811))
	n := 400
	d, e := randTridiag(rng, n)
	q := make([]float64, n*n)
	res, err := SolveDC(n, d, e, q, n, &Options{MinPartition: 64, PanelSize: 32, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	hits, misses, bytes, rate := res.Stats.PackReuse()
	if hits+misses == 0 {
		t.Fatal("no UpdateVect GEMMs recorded")
	}
	if hits > 0 && bytes == 0 {
		t.Errorf("packed hits (%d) without packed bytes", hits)
	}
	if hits == 0 && bytes > 0 {
		t.Errorf("packed %d bytes but every GEMM missed", bytes)
	}
	if rate < 0 || rate > 1 {
		t.Errorf("reuse rate %v out of range", rate)
	}
	// The root merge of a random matrix deflates little: with the blocked
	// kernel available its wide GEMMs must reuse the pack across panels.
	if blas.PackWorthwhile(n/2, 32, n/2) && hits < int64(2*(n/(2*32))) {
		t.Errorf("expected pack reuse across panels, hits=%d misses=%d", hits, misses)
	}
}
